package cinct

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cinct/internal/tempo"
	"cinct/internal/trajstr"
)

// ErrNotAppendable reports an index layout that cannot accept new
// sealed shards: the legacy temporal container pairing a sharded
// spatial index with one corpus-wide timestamp store (rebuild it with
// BuildTemporal to migrate), or a locate-capability mismatch between
// the existing shards and the writer's build options.
var ErrNotAppendable = errors.New("cinct: index layout not appendable")

// asSharded returns the index's sharded form, wrapping a monolithic
// index as a single-shard ShardedIndex so a seal can always extend by
// shard concatenation. The wrapper shares the underlying immutable
// core, so promotion is O(1).
func (ix *Index) asSharded() *ShardedIndex {
	if ix.sharded != nil {
		return ix.sharded
	}
	return &ShardedIndex{
		shards: []*Index{ix},
		bounds: []int{0, ix.corpus.NumTrajectories()},
		edges:  ix.corpus.NumEdges(),
		hasLoc: ix.hasLoc,
	}
}

// withShard returns a new ShardedIndex: si's shards plus one more
// (already built) shard owning the next contiguous global-ID range.
// si itself is unchanged — extension goes through spliced, the one
// audited copy-on-write shard-set primitive shared with compaction,
// so in-flight queries against the old value stay correct.
func (si *ShardedIndex) withShard(shard *Index) (*ShardedIndex, error) {
	return si.spliced(len(si.shards), len(si.shards), shard)
}

// withShard extends a temporal index with one sealed shard and its
// timestamp store, promoting a monolithic base to the sharded layout.
// Like the spatial form it is a tail splice; the legacy layout
// (sharded spatial index, single global store) cannot be extended
// because its store is indexed by global IDs and cannot absorb a
// per-shard column range.
func (t *TemporalIndex) withShard(shard *Index, store *tempo.Store) (*TemporalIndex, error) {
	return t.spliced(len(t.stores), len(t.stores), shard, store)
}

// sealShard compacts validated rows into one compressed monolithic
// index — the unit a seal appends.
func sealShard(trajs [][]uint32, opts *Options) (*Index, error) {
	corpus, err := trajstr.New(trajs)
	if err != nil {
		return nil, err
	}
	return buildOne(corpus, opts), nil
}

// AppendSealed compacts trajs into one additional CiNCT-compressed
// shard and returns a new ShardedIndex serving the old corpus plus
// the new trajectories (global IDs continue past the existing range).
// si is unchanged: indexes stay immutable, so concurrent readers of
// the old value are unaffected — swap the returned value in wherever
// the old one was published. Live, incrementally queryable ingestion
// is Writer's job; AppendSealed is its compaction primitive.
func (si *ShardedIndex) AppendSealed(trajs [][]uint32, opts *Options) (*ShardedIndex, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	shard, err := sealShard(trajs, opts)
	if err != nil {
		return nil, err
	}
	return si.withShard(shard)
}

// AppendSealed compacts trajs with their timestamp columns into one
// additional shard (spatial index + tempo store) and returns a new
// TemporalIndex serving the union. Semantics mirror
// ShardedIndex.AppendSealed.
func (t *TemporalIndex) AppendSealed(trajs [][]uint32, times [][]int64, opts *Options) (*TemporalIndex, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if opts.SampleRate == 0 {
		return nil, fmt.Errorf("cinct: temporal index requires SampleRate > 0")
	}
	if len(times) != len(trajs) {
		return nil, fmt.Errorf("cinct: %d timestamp columns for %d trajectories", len(times), len(trajs))
	}
	for k := range trajs {
		if len(times[k]) != len(trajs[k]) {
			return nil, fmt.Errorf("cinct: trajectory %d has %d edges but %d timestamps",
				k, len(trajs[k]), len(times[k]))
		}
	}
	shard, err := sealShard(trajs, opts)
	if err != nil {
		return nil, err
	}
	return t.withShard(shard, tempo.New(times))
}

// WriterConfig tunes a Writer. The zero value is valid: default build
// options, manual sealing only.
type WriterConfig struct {
	// Build tunes the compression of sealed shards (nil means
	// DefaultOptions; Shards is ignored — each seal produces exactly
	// one shard).
	Build *Options
	// SealThreshold starts a background seal whenever an Append leaves
	// the delta holding at least this many trajectories. 0 disables
	// auto-sealing (call Seal explicitly).
	SealThreshold int
	// OnSeal, when non-nil, is called after every successful seal with
	// the number of trajectories compacted — the hook serving layers
	// use to invalidate caches and persist the new sealed state. It
	// runs on the sealing goroutine with no Writer locks held.
	OnSeal func(sealed int)
	// Logf, when non-nil, receives diagnostic lines from background
	// work (auto-seal and compaction failures). nil discards them.
	Logf func(format string, args ...any)
	// OnError, when non-nil, is called whenever a background operation
	// fails, with op naming it ("seal", "compact") and the error. It
	// runs on the failing goroutine with no Writer locks held, so
	// background failures are observable instead of silently dropped.
	OnError func(op string, err error)
	// OnAppend, when non-nil, is called after every successful Append
	// or AppendBatch with the first assigned global ID and the landed
	// rows (times is nil on spatial writers). It runs on the appending
	// goroutine with no Writer locks held, after the rows are already
	// visible to Search — the hook standing-query layers use to test
	// new trajectories against registered predicates. The slices are
	// the caller's: read them during the call, do not retain or mutate.
	OnAppend func(firstID int, trajs [][]uint32, times [][]int64)
}

// Writer is the live ingestion layer: an immutable sealed index
// (growing one compressed shard per seal) plus an uncompressed
// in-memory delta shard absorbing appends. Appended trajectories are
// queryable immediately — Search merges delta hits with sealed hits
// in canonical (Trajectory, Offset) order through the same streaming
// core every index uses — and are assigned stable global IDs that
// survive sealing: a seal only moves rows from the delta
// representation to a compressed shard, never renumbers them.
//
// All methods are safe for concurrent use. Seal compacts without
// blocking readers or appenders: the build runs off-lock against a
// snapshot, and only the final generation swap takes the write lock
// (the same swap pattern the serving engine uses for reloads).
//
// Durability: the delta lives in memory only. Sealed state can be
// persisted with Snapshot + Save; anything still in the delta at
// process exit is lost unless the caller seals first.
type Writer struct {
	opts      *Options
	temporal  bool
	threshold int
	onSeal    func(int)
	logf      func(format string, args ...any)
	onError   func(op string, err error)
	onAppend  func(firstID int, trajs [][]uint32, times [][]int64)

	// mu guards the published (sealed, temp, delta, gen) binding.
	// sealed/temp are immutable values swapped wholesale; delta is
	// append-only with the snapshot protocol described in deltaShard.
	mu     sync.RWMutex
	sealed *Index         // nil until the first seal (when starting empty)
	temp   *TemporalIndex // non-nil iff temporal with sealed state
	delta  *deltaShard
	gen    uint64

	sealMu sync.Mutex // serializes seals; never held with mu
	// compactMu serializes compaction rounds (concurrent rounds could
	// pick overlapping victim shards); never held with mu or sealMu.
	compactMu sync.Mutex
	sealing   atomic.Bool // gates background-seal spawning
	// bgMu orders background-seal spawns against Close: Add only runs
	// under bgMu with bgClosed unset, and Close sets bgClosed before
	// Wait — satisfying the WaitGroup contract that an Add from a zero
	// counter must not race a Wait.
	bgMu     sync.Mutex
	bgClosed bool
	bg       sync.WaitGroup
}

// NewWriter returns an empty spatial writer.
func NewWriter(cfg WriterConfig) (*Writer, error) {
	return newWriter(nil, nil, false, cfg)
}

// NewTemporalWriter returns an empty temporal writer: every Append
// must carry a timestamp column, and interval queries are supported.
func NewTemporalWriter(cfg WriterConfig) (*Writer, error) {
	return newWriter(nil, nil, true, cfg)
}

// NewWriterAt returns a spatial writer whose sealed state starts at an
// existing index (monolithic or sharded); appended trajectories take
// global IDs after ix's.
func NewWriterAt(ix *Index, cfg WriterConfig) (*Writer, error) {
	if ix == nil {
		return nil, fmt.Errorf("cinct: NewWriterAt requires an index (use NewWriter to start empty)")
	}
	return newWriter(ix, nil, false, cfg)
}

// NewTemporalWriterAt returns a temporal writer over an existing
// temporal index.
func NewTemporalWriterAt(t *TemporalIndex, cfg WriterConfig) (*Writer, error) {
	if t == nil {
		return nil, fmt.Errorf("cinct: NewTemporalWriterAt requires an index (use NewTemporalWriter to start empty)")
	}
	return newWriter(t.Index, t, true, cfg)
}

func newWriter(ix *Index, t *TemporalIndex, temporal bool, cfg WriterConfig) (*Writer, error) {
	opts := cfg.Build
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if opts.SampleRate == 0 {
		// A count-only writer would answer occurrence queries from the
		// delta and then lose that ability at the first (possibly
		// background) seal — query behavior must not flip across a
		// compaction, so locate support is mandatory.
		return nil, fmt.Errorf("%w: writer requires SampleRate > 0", ErrNotAppendable)
	}
	base := 0
	if ix != nil {
		if ix.hasLoc != (opts.SampleRate > 0) {
			return nil, fmt.Errorf("%w: base index locate support (%v) disagrees with build options (SampleRate %d)",
				ErrNotAppendable, ix.hasLoc, opts.SampleRate)
		}
		if t != nil && ix.sharded != nil && !t.aligned() {
			return nil, fmt.Errorf("%w: legacy single-store temporal layout", ErrNotAppendable)
		}
		base = ix.NumTrajectories()
	}
	return &Writer{
		opts:      opts,
		temporal:  temporal,
		threshold: cfg.SealThreshold,
		onSeal:    cfg.OnSeal,
		logf:      cfg.Logf,
		onError:   cfg.OnError,
		onAppend:  cfg.OnAppend,
		sealed:    ix,
		temp:      t,
		delta:     newDeltaShard(base, temporal),
		gen:       1,
	}, nil
}

// Temporal reports whether the writer stores timestamps.
func (w *Writer) Temporal() bool { return w.temporal }

// Generation returns the writer's data generation: it advances on
// every Append batch and every seal, so serving layers can key caches
// on it.
func (w *Writer) Generation() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.gen
}

// Append adds one trajectory (with its timestamp column on a temporal
// writer; times must be nil on a spatial one) and returns its global
// ID. The trajectory is immediately visible to Search.
func (w *Writer) Append(edges []uint32, times []int64) (int, error) {
	if err := validateAppend(edges, times, w.temporal); err != nil {
		return 0, err
	}
	w.mu.Lock()
	id := w.delta.base + len(w.delta.trajs)
	w.delta.append(edges, times)
	w.gen++
	n := len(w.delta.trajs)
	w.mu.Unlock()
	if w.onAppend != nil {
		var cols [][]int64
		if w.temporal {
			cols = [][]int64{times}
		}
		w.onAppend(id, [][]uint32{edges}, cols)
	}
	w.maybeAutoSeal(n)
	return id, nil
}

// AppendBatch appends trajectories atomically: either every row is
// accepted (returning the first assigned ID; rows get consecutive
// IDs) or none is. times must be nil for a spatial writer, and
// row-aligned for a temporal one.
func (w *Writer) AppendBatch(trajs [][]uint32, times [][]int64) (int, error) {
	if w.temporal != (times != nil) || (times != nil && len(times) != len(trajs)) {
		return 0, fmt.Errorf("%w: %d timestamp columns for %d trajectories on a %s writer",
			ErrBadAppend, len(times), len(trajs), map[bool]string{true: "temporal", false: "spatial"}[w.temporal])
	}
	for k, tr := range trajs {
		var col []int64
		if w.temporal {
			col = times[k]
		}
		if err := validateAppend(tr, col, w.temporal); err != nil {
			return 0, fmt.Errorf("row %d: %w", k, err)
		}
	}
	if len(trajs) == 0 {
		w.mu.RLock()
		defer w.mu.RUnlock()
		return w.delta.base + len(w.delta.trajs), nil
	}
	w.mu.Lock()
	first := w.delta.base + len(w.delta.trajs)
	for k, tr := range trajs {
		var col []int64
		if w.temporal {
			col = times[k]
		}
		w.delta.append(tr, col)
	}
	w.gen++
	n := len(w.delta.trajs)
	w.mu.Unlock()
	if w.onAppend != nil {
		w.onAppend(first, trajs, times)
	}
	w.maybeAutoSeal(n)
	return first, nil
}

// maybeAutoSeal spawns at most one background seal once the delta
// crosses the configured threshold.
func (w *Writer) maybeAutoSeal(deltaLen int) {
	if w.threshold <= 0 || deltaLen < w.threshold {
		return
	}
	if !w.sealing.CompareAndSwap(false, true) {
		return
	}
	w.bgMu.Lock()
	if w.bgClosed {
		w.bgMu.Unlock()
		w.sealing.Store(false)
		return
	}
	w.bg.Add(1)
	w.bgMu.Unlock()
	go func() {
		defer w.bg.Done()
		defer w.sealing.Store(false)
		if _, err := w.Seal(); err != nil {
			// Rows were validated on Append, but a seal can still fail
			// (corrupt state, resource exhaustion) — route it to the
			// owner instead of swallowing it; the rows stay in the
			// delta, so a later Seal retries them.
			w.reportError("seal", err)
		}
	}()
}

// reportError routes a background failure through the configured Logf
// and OnError hooks.
func (w *Writer) reportError(op string, err error) {
	if w.logf != nil {
		w.logf("cinct: background %s failed: %v", op, err)
	}
	if w.onError != nil {
		w.onError(op, err)
	}
}

// Seal compacts the current delta into one CiNCT-compressed shard and
// swaps it into the sealed index, returning the number of
// trajectories compacted (0 when the delta was empty). Appends and
// searches proceed during the compaction: the build runs against a
// snapshot of the delta prefix, rows appended meanwhile simply remain
// in the (rebased) delta, and readers observe either the old state or
// the new one — never a mix — because the swap is a single
// write-locked pointer update. Global IDs are unchanged by sealing.
func (w *Writer) Seal() (int, error) {
	w.sealMu.Lock()
	defer w.sealMu.Unlock()
	// Capture the delta prefix (slice headers and length) under the
	// lock: the header fields themselves are rewritten by concurrent
	// appends, and only the captured prefix is immutable.
	w.mu.RLock()
	d := w.delta
	n := len(d.trajs)
	trajs := d.trajs[:n:n]
	var times [][]int64
	if w.temporal {
		times = d.times[:n:n]
	}
	sealedIx, sealedT := w.sealed, w.temp
	w.mu.RUnlock()
	if n == 0 {
		return 0, nil
	}
	shard, err := sealShard(trajs, w.opts)
	if err != nil {
		return 0, err
	}
	var newIx *Index
	var newT *TemporalIndex
	if w.temporal {
		store := tempo.New(times)
		if sealedT == nil {
			newT = &TemporalIndex{Index: shard, stores: []*tempo.Store{store}}
			newIx = shard
		} else {
			newT, err = sealedT.withShard(shard, store)
			if err != nil {
				return 0, err
			}
			newIx = newT.Index
		}
	} else {
		if sealedIx == nil {
			newIx = shard
		} else {
			nsi, werr := sealedIx.asSharded().withShard(shard)
			if werr != nil {
				return 0, werr
			}
			newIx = &Index{sharded: nsi, hasLoc: nsi.hasLoc}
		}
	}
	w.mu.Lock()
	w.sealed, w.temp = newIx, newT
	w.delta = d.tail(n)
	w.gen++
	w.mu.Unlock()
	if w.onSeal != nil {
		w.onSeal(n)
	}
	return n, nil
}

// Close stops the background sealer (later threshold crossings no
// longer spawn seals) and waits for any in-flight one to finish. It
// does not seal the remaining delta — the writer stays usable, with
// manual Seal only; call Seal first if that data should be compacted
// (and persisted by your OnSeal hook).
func (w *Writer) Close() {
	w.bgMu.Lock()
	w.bgClosed = true
	w.bgMu.Unlock()
	w.bg.Wait()
}

// view captures a consistent (sealed, temporal, delta) triple.
func (w *Writer) view() (*Index, *TemporalIndex, *deltaSnap) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sealed, w.temp, w.delta.snap()
}

// Search executes a Query over the union of sealed shards and the
// live delta: per-shard candidate collection runs in parallel, the
// delta contributes one more unit (brute-force scanned, summary-pruned
// under intervals), and hits stream through the canonical
// (Trajectory, Offset) k-way merge. Results reflect a consistent
// snapshot taken at call time; appends that land later are not seen
// by an already-running iteration. Interval queries require a
// temporal writer.
func (w *Writer) Search(ctx context.Context, q Query) (*Results, error) {
	if q.Interval != nil && !w.temporal {
		return nil, ErrNoTimestamps
	}
	ix, t, snap := w.view()
	var units []*unitCursor
	hasLoc := true
	if ix != nil {
		units = assembleUnits(ix, t)
		hasLoc = ix.hasLoc
	}
	if snap.len() > 0 {
		units = append(units, &unitCursor{d: snap, base: snap.base, n: snap.len()})
	}
	return runSearch(ctx, q, units, hasLoc)
}

// NumTrajectories returns the total trajectory count: sealed plus
// delta.
func (w *Writer) NumTrajectories() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.delta.base + len(w.delta.trajs)
}

// SealedTrajectories returns the number of trajectories living in
// compressed shards.
func (w *Writer) SealedTrajectories() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.delta.base
}

// DeltaTrajectories returns the number of trajectories still in the
// uncompressed delta.
func (w *Writer) DeltaTrajectories() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.delta.trajs)
}

// Snapshot returns the current sealed state: the spatial index and,
// for temporal writers, the temporal index wrapping it. Both are nil
// while nothing has been sealed. The returned values are immutable —
// safe to Save concurrently with further appends and seals.
func (w *Writer) Snapshot() (*Index, *TemporalIndex) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.sealed, w.temp
}

// Stats reports the sealed index's breakdown with Trajectories
// covering the delta too (the delta's rows are uncompressed and
// contribute nothing to the size fields).
func (w *Writer) Stats() Stats {
	w.mu.RLock()
	ix := w.sealed
	deltaN := len(w.delta.trajs)
	w.mu.RUnlock()
	var s Stats
	if ix != nil {
		s = ix.Stats()
	}
	s.Trajectories += deltaN
	return s
}

// Trajectory reconstructs trajectory id — decompressed from a sealed
// shard, or copied out of the delta.
func (w *Writer) Trajectory(id int) ([]uint32, error) {
	ix, _, snap := w.view()
	sealedN := snap.base
	switch {
	case id < 0 || id >= sealedN+snap.len():
		return nil, fmt.Errorf("cinct: trajectory %d out of range [0,%d)", id, sealedN+snap.len())
	case id < sealedN:
		return ix.Trajectory(id)
	}
	row := snap.trajs[id-sealedN]
	out := make([]uint32, len(row))
	copy(out, row)
	return out, nil
}

// TrajectoryLen returns the edge count of trajectory id, or -1 when
// id is out of range.
func (w *Writer) TrajectoryLen(id int) int {
	ix, _, snap := w.view()
	switch {
	case id < 0 || id >= snap.base+snap.len():
		return -1
	case id < snap.base:
		return ix.TrajectoryLen(id)
	}
	return len(snap.trajs[id-snap.base])
}

// SubPath extracts edges [from, to) of trajectory id.
func (w *Writer) SubPath(id, from, to int) ([]uint32, error) {
	ix, _, snap := w.view()
	sealedN := snap.base
	switch {
	case id < 0 || id >= sealedN+snap.len():
		return nil, fmt.Errorf("cinct: trajectory %d out of range [0,%d)", id, sealedN+snap.len())
	case id < sealedN:
		return ix.SubPath(id, from, to)
	}
	row := snap.trajs[id-sealedN]
	if from < 0 || to > len(row) || from > to {
		return nil, fmt.Errorf("cinct: SubPath[%d,%d) out of range [0,%d)", from, to, len(row))
	}
	out := make([]uint32, to-from)
	copy(out, row[from:to])
	return out, nil
}
