package cinct

import (
	"context"
	"math/rand"
	"testing"
)

// TestPickCompaction pins the tiered victim-selection policy on
// hand-written shard-size profiles.
func TestPickCompaction(t *testing.T) {
	p := CompactionPolicy{MinShards: 4, MaxShards: 16, TierRatio: 8}
	cases := []struct {
		name   string
		sizes  []int
		policy CompactionPolicy
		lo, hi int
	}{
		{"empty", nil, p, 0, 0},
		{"single", []int{100}, p, 0, 0},
		{"below fan-out", []int{100, 100, 100}, p, 0, 0},
		{"l0 tier full", []int{100, 100, 100, 100}, p, 0, 4},
		{"newest run wins", []int{100000, 90, 100, 110, 95}, p, 1, 5},
		{"big base not dragged in", []int{5000, 100, 100, 100, 100}, p, 1, 5},
		{"max shards truncates to newest",
			[]int{1, 1, 1, 1, 1, 1}, CompactionPolicy{MinShards: 2, MaxShards: 4, TierRatio: 8}, 2, 6},
		{"dwarf absorbed by newer neighbor", []int{10, 10000, 9000}, p, 0, 2},
		{"tiny newest not absorbed backwards", []int{10000, 10}, p, 0, 0},
		{"geometric tiers stay put", []int{64000, 8000, 1000, 100}, p, 0, 0},
		{"full compaction", []int{64000, 8000, 1000, 100}, FullCompaction, 0, 4},
	}
	for _, tc := range cases {
		lo, hi := pickCompaction(tc.sizes, tc.policy)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%s: pickCompaction(%v) = [%d,%d), want [%d,%d)",
				tc.name, tc.sizes, lo, hi, tc.lo, tc.hi)
		}
	}
}

// TestCompactRange pins the copy-on-write merge primitive for both
// index flavors: the compacted index answers exactly like the
// original, trajectory IDs are untouched, and the receiver is
// unchanged.
func TestCompactRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var trajs [][]uint32
	var times [][]int64
	for i := 0; i < 60; i++ {
		tr := genTraj(rng)
		trajs = append(trajs, tr)
		times = append(times, genTimes(rng, len(tr)))
	}
	opts := DefaultOptions()
	opts.Shards = 4

	t.Run("spatial", func(t *testing.T) {
		si, err := BuildSharded(trajs, opts)
		if err != nil {
			t.Fatal(err)
		}
		compacted, err := si.CompactRange(1, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(compacted.shards); got != 2 {
			t.Fatalf("compacted holds %d shards, want 2", got)
		}
		if got := len(si.shards); got != 4 {
			t.Fatalf("CompactRange mutated the receiver: %d shards", got)
		}
		if got, want := compacted.NumTrajectories(), len(trajs); got != want {
			t.Fatalf("compacted holds %d trajectories, want %d", got, want)
		}
		for i := 0; i < 10; i++ {
			path := genPath(rng, trajs)
			got, err := compacted.Find(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteMatches(trajs, path)
			if len(got) != len(want) {
				t.Fatalf("Find(%v) = %v, want %v", path, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("Find(%v) = %v, want %v", path, got, want)
				}
			}
		}
		for _, id := range []int{0, len(trajs) / 2, len(trajs) - 1} {
			got, err := compacted.Trajectory(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(trajs[id]) {
				t.Fatalf("Trajectory(%d) len %d, want %d", id, len(got), len(trajs[id]))
			}
		}
		if _, err := si.CompactRange(2, 3, nil); err == nil {
			t.Fatal("single-shard CompactRange accepted")
		}
	})

	t.Run("temporal", func(t *testing.T) {
		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatal(err)
		}
		compacted, err := tix.CompactRange(0, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(compacted.stores); got != 2 {
			t.Fatalf("compacted holds %d stores, want 2", got)
		}
		q := Query{Path: genPath(rng, trajs), Kind: Occurrences,
			Interval: &Interval{From: -1 << 60, To: 1 << 60}}
		got := searchHitsT(t, compacted, q)
		want, _ := oracleSearch(trajs, times, q)
		if !sameHits(got, want) {
			t.Fatalf("compacted temporal Search = %v, want %v", got, want)
		}
	})
}

// TestSplicedValidation pins the audited invariants of the one
// shard-set mutation primitive: mid-list inserts and row-count-changing
// replacements must be rejected — either would renumber trajectories
// under live cursors.
func TestSplicedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var trajs [][]uint32
	for i := 0; i < 30; i++ {
		trajs = append(trajs, genTraj(rng))
	}
	opts := DefaultOptions()
	opts.Shards = 3
	si, err := BuildSharded(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := sealShard([][]uint32{{1, 2}, {3}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := si.spliced(1, 1, repl); err == nil {
		t.Fatal("mid-list insert accepted")
	}
	if _, err := si.spliced(0, 2, repl); err == nil {
		t.Fatal("row-count-changing replacement accepted")
	}
	if _, err := si.spliced(2, 5, repl); err == nil {
		t.Fatal("out-of-range splice accepted")
	}
}

// TestWriterCompactConvergence drives Writer.Compact to its tiered
// fixpoint after a burst of tiny seals: the shard count must come down
// to the policy bound while every answer stays oracle-exact, and a
// full compaction must reach exactly one shard.
func TestWriterCompactConvergence(t *testing.T) {
	w, err := NewTemporalWriter(WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	var trajs [][]uint32
	var times [][]int64
	for seal := 0; seal < 16; seal++ {
		for i := 0; i < 3; i++ {
			tr := genTraj(rng)
			col := genTimes(rng, len(tr))
			if _, err := w.Append(tr, col); err != nil {
				t.Fatal(err)
			}
			trajs = append(trajs, tr)
			times = append(times, col)
		}
		if _, err := w.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.SealedShards(); got != 16 {
		t.Fatalf("pre-compaction shard count = %d, want 16", got)
	}

	check := func(tag string) {
		t.Helper()
		for i := 0; i < 8; i++ {
			q := Query{Path: genPath(rng, trajs), Kind: Kind(rng.Intn(3))}
			if rng.Intn(2) == 0 {
				q.Interval = &Interval{From: -1 << 60, To: 1 << 60}
			}
			gotHits, gotCount := drainWriter(t, w, q)
			wantHits, wantCount := oracleSearch(trajs, times, q)
			if q.Kind == CountOnly {
				if gotCount != wantCount {
					t.Fatalf("%s: Count(%+v) = %d, oracle %d", tag, q, gotCount, wantCount)
				}
				continue
			}
			if !sameHits(gotHits, wantHits) {
				t.Fatalf("%s: Search(%+v) = %v, oracle %v", tag, q, gotHits, wantHits)
			}
		}
	}

	policy := CompactionPolicy{MinShards: 4, MaxShards: 16, TierRatio: 8}
	rounds := 0
	for {
		res, err := w.Compact(policy)
		if err != nil {
			t.Fatalf("Compact round %d: %v", rounds, err)
		}
		if res.Merged == 0 {
			break
		}
		if res.ShardsAfter != res.ShardsBefore-res.Merged+1 {
			t.Fatalf("round %d: inconsistent result %+v", rounds, res)
		}
		rounds++
		check("mid-compaction")
		if rounds > 16 {
			t.Fatal("tiered compaction failed to converge")
		}
	}
	if got := w.SealedShards(); got >= 16 {
		t.Fatalf("tiered fixpoint left %d shards, want fewer than 16", got)
	}
	check("tiered-fixpoint")

	res, err := w.Compact(FullCompaction)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 && w.SealedShards() != 1 {
		t.Fatalf("full compaction merged nothing at %d shards", w.SealedShards())
	}
	if got := w.SealedShards(); got != 1 {
		t.Fatalf("full compaction left %d shards, want 1", got)
	}
	check("full")

	// Rows appended after compaction keep extending the ID space.
	tr := genTraj(rng)
	col := genTimes(rng, len(tr))
	id, err := w.Append(tr, col)
	if err != nil {
		t.Fatal(err)
	}
	if id != len(trajs) {
		t.Fatalf("post-compaction Append assigned ID %d, want %d", id, len(trajs))
	}
	trajs = append(trajs, tr)
	times = append(times, col)
	check("post-compaction-append")
}

// TestWriterCursorSurvivesCompaction pins the compaction-boundary
// paging guarantee, the cursor-epoch contract of the tentpole: a
// cursor taken before shards are merged resumes the exact suffix
// afterwards, because compaction preserves every global trajectory ID.
func TestWriterCursorSurvivesCompaction(t *testing.T) {
	w, err := NewWriter(WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := []uint32{7, 8}
	var trajs [][]uint32
	rng := rand.New(rand.NewSource(51))
	for seal := 0; seal < 6; seal++ {
		for i := 0; i < 5; i++ {
			tr := append(genTraj(rng), 7, 8) // guarantee a hit per row
			if _, err := w.Append(tr, nil); err != nil {
				t.Fatal(err)
			}
			trajs = append(trajs, tr)
		}
		if _, err := w.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.SealedShards(); got != 6 {
		t.Fatalf("setup produced %d shards, want 6", got)
	}

	full, _ := drainWriter(t, w, Query{Path: path, Kind: Occurrences})

	r, err := w.Search(context.Background(), Query{Path: path, Kind: Occurrences, Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	page1 := drain(t, r)
	cursor := r.Cursor()
	if cursor == "" {
		t.Fatal("bounded page handed out no cursor")
	}

	// The boundary under test: merge everything while the cursor is
	// outstanding.
	if _, err := w.Compact(FullCompaction); err != nil {
		t.Fatal(err)
	}
	if got := w.SealedShards(); got != 1 {
		t.Fatalf("compaction left %d shards, want 1", got)
	}

	rest, _ := drainWriter(t, w, Query{Path: path, Kind: Occurrences, Cursor: cursor})
	got := append(append([]Hit{}, page1...), rest...)
	if !sameHits(got, full) {
		t.Fatalf("pre-compaction page + post-compaction resume = %v, want %v", got, full)
	}
}
