package cinct

// One benchmark family per table/figure of the paper's evaluation
// (§VI). Sizes are reported as custom metrics (bits/sym) alongside
// timings, so a single `go test -bench=. -benchmem` regenerates the
// quantitative skeleton of every experiment. cmd/experiments prints
// the same data as formatted rows, at selectable scale.

import (
	"fmt"
	"sync"
	"testing"

	"cinct/internal/bwzip"
	"cinct/internal/etgraph"
	"cinct/internal/experiments"
	"cinct/internal/fmindex"
	"cinct/internal/mel"
	"cinct/internal/press"
	"cinct/internal/repair"
	"cinct/internal/trajgen"
)

// Bench-scale corpora are built once and shared.
var (
	benchOnce sync.Once
	benchSets map[string]*experiments.Prepared
)

func benchData(b *testing.B, name string) *experiments.Prepared {
	b.Helper()
	benchOnce.Do(func() {
		benchSets = map[string]*experiments.Prepared{}
		cfg := func(seed int64, n, l int) trajgen.Config {
			return trajgen.Config{GridW: 16, GridH: 16, NumTrajs: n, MeanLen: l, Seed: seed}
		}
		gens := map[string]trajgen.Dataset{
			"singapore":  trajgen.Singapore(cfg(201, 3000, 45)),
			"singapore2": trajgen.Singapore2(cfg(201, 3000, 45)),
			"roma":       trajgen.Roma(cfg(203, 800, 40)),
			"mogen":      trajgen.MOGen(cfg(204, 3000, 40)),
			"chess":      trajgen.Chess(cfg(205, 12000, 10)),
			"randwalk":   trajgen.RandWalk(1<<12, 4, 400000, 206),
		}
		for n, d := range gens {
			p, err := experiments.Prepare(d)
			if err != nil {
				panic(err)
			}
			benchSets[n] = p
		}
	})
	p, ok := benchSets[name]
	if !ok {
		b.Fatalf("unknown bench dataset %q", name)
	}
	return p
}

// BenchmarkTable3Stats regenerates the Table III statistics line per
// dataset.
func BenchmarkTable3Stats(b *testing.B) {
	for _, name := range []string{"singapore", "singapore2", "roma", "mogen", "chess"} {
		b.Run(name, func(b *testing.B) {
			p := benchData(b, name)
			var row experiments.Table3Row
			for i := 0; i < b.N; i++ {
				row = experiments.Table3(p)
			}
			b.ReportMetric(row.H0T, "H0(T)")
			b.ReportMetric(row.H0Phi, "H0(phi)")
			b.ReportMetric(row.AvgDeg, "avg-deg")
		})
	}
}

// BenchmarkFig10Search measures one suffix-range query of length 20
// per iteration, for every dataset × method, reporting index size as
// bits/sym.
func BenchmarkFig10Search(b *testing.B) {
	for _, name := range []string{"singapore", "singapore2", "roma", "mogen", "chess"} {
		p := benchData(b, name)
		queries := p.SampleQueries(256, 20, 10)
		for _, built := range experiments.BuildAll(p, 63) {
			built := built
			b.Run(fmt.Sprintf("%s/%s", name, built.Name), func(b *testing.B) {
				b.ReportMetric(built.BitsPerSymbol, "bits/sym")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					built.Search(queries[i%len(queries)])
				}
			})
		}
	}
}

// BenchmarkFig11SearchLength sweeps the pattern length on the
// Singapore analog (CiNCT vs the two compressed baselines).
func BenchmarkFig11SearchLength(b *testing.B) {
	p := benchData(b, "singapore")
	builts := experiments.BuildAll(p, 63)
	for _, plen := range []int{2, 5, 10, 20} {
		queries := p.SampleQueries(256, plen, int64(plen))
		for _, built := range builts {
			built := built
			b.Run(fmt.Sprintf("P%d/%s", plen, built.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					built.Search(queries[i%len(queries)])
				}
			})
		}
	}
}

// BenchmarkFig12SigmaScaling measures CiNCT and UFMI as the alphabet
// grows with d̄ = 4 fixed (σ-independence, Theorem 5).
func BenchmarkFig12SigmaScaling(b *testing.B) {
	for _, sigma := range []int{1 << 10, 1 << 12, 1 << 14} {
		d := trajgen.RandWalk(sigma, 4, 100*sigma, int64(sigma))
		p, err := experiments.Prepare(d)
		if err != nil {
			b.Fatal(err)
		}
		queries := p.SampleQueries(256, 20, 12)
		_, cinctIx := experiments.BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
		ufmi := experiments.BuildBaseline(p, fmindex.UFMI, 63)
		for _, built := range []experiments.Built{cinctIx, ufmi} {
			built := built
			b.Run(fmt.Sprintf("sigma%d/%s", sigma, built.Name), func(b *testing.B) {
				b.ReportMetric(built.BitsPerSymbol, "bits/sym")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					built.Search(queries[i%len(queries)])
				}
			})
		}
	}
}

// BenchmarkFig13DegreeScaling measures CiNCT as the ET-graph densifies
// (the sparsity assumption's limits).
func BenchmarkFig13DegreeScaling(b *testing.B) {
	for _, deg := range []int{4, 16, 64} {
		d := trajgen.RandWalk(1<<12, deg, 400000, int64(deg))
		p, err := experiments.Prepare(d)
		if err != nil {
			b.Fatal(err)
		}
		queries := p.SampleQueries(256, 20, 13)
		_, built := experiments.BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
		b.Run(fmt.Sprintf("deg%d/CiNCT", deg), func(b *testing.B) {
			b.ReportMetric(built.BitsPerSymbol, "bits/sym")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				built.Search(queries[i%len(queries)])
			}
		})
	}
}

// BenchmarkFig14Labeling compares the optimal bigram-sorted labeling
// against random labeling (Theorem 3 in practice).
func BenchmarkFig14Labeling(b *testing.B) {
	p := benchData(b, "singapore2")
	queries := p.SampleQueries(256, 20, 14)
	for _, strat := range []struct {
		name string
		s    etgraph.Strategy
	}{{"bigram", etgraph.BigramSorted}, {"random", etgraph.RandomShuffle}} {
		_, built := experiments.BuildCiNCT(p, 63, strat.s, 99)
		b.Run(strat.name, func(b *testing.B) {
			b.ReportMetric(built.BitsPerSymbol, "bits/sym")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				built.Search(queries[i%len(queries)])
			}
		})
	}
}

// BenchmarkFig15Extract measures sub-path extraction per symbol
// (1024-symbol extracts from row 0).
func BenchmarkFig15Extract(b *testing.B) {
	for _, name := range []string{"singapore", "roma", "mogen", "chess"} {
		p := benchData(b, name)
		for _, built := range experiments.BuildAll(p, 63) {
			built := built
			b.Run(fmt.Sprintf("%s/%s", name, built.Name), func(b *testing.B) {
				const l = 1024
				for i := 0; i < b.N; i++ {
					built.Extract(0, l)
				}
				// ns/op divided by l gives the paper's ns/symbol.
				b.ReportMetric(float64(l), "symbols/op")
			})
		}
	}
}

// BenchmarkFig16Construction measures full index construction
// (including BWT) per method on the Singapore analog.
func BenchmarkFig16Construction(b *testing.B) {
	p := benchData(b, "singapore")
	b.Run("CiNCT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
		}
	})
	for _, m := range fmindex.Methods {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.BuildBaseline(p, m, 63)
			}
		})
	}
	b.Run("BWT-shared-stage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Prepare(p.Dataset); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable4Compression times each compressor and reports its
// ratio.
func BenchmarkTable4Compression(b *testing.B) {
	p := benchData(b, "singapore2")
	var symbols int64
	for _, tr := range p.Dataset.Trajs {
		symbols += int64(len(tr))
	}
	raw := float64(symbols * 32)

	b.Run("CiNCT", func(b *testing.B) {
		var bits int
		for i := 0; i < b.N; i++ {
			ix, _ := experiments.BuildCiNCT(p, 63, etgraph.BigramSorted, 0)
			bits = ix.Sizes().Total()
		}
		b.ReportMetric(raw/float64(bits), "ratio")
	})
	b.Run("MEL", func(b *testing.B) {
		var bits int64
		for i := 0; i < b.N; i++ {
			l := mel.Build(p.Dataset.Graph, p.Dataset.Trajs)
			bits = l.CompressedSizeBits(p.Dataset.Trajs)
		}
		b.ReportMetric(raw/float64(bits), "ratio")
	})
	b.Run("Re-Pair", func(b *testing.B) {
		var bits int64
		for i := 0; i < b.N; i++ {
			bits = repair.Compress(p.Corpus.Text, p.Corpus.Sigma).SizeBits()
		}
		b.ReportMetric(raw/float64(bits), "ratio")
	})
	b.Run("bwzip", func(b *testing.B) {
		var bits int64
		for i := 0; i < b.N; i++ {
			bits = bwzip.Compress(p.Corpus.Text, p.Corpus.Sigma).SizeBits()
		}
		b.ReportMetric(raw/float64(bits), "ratio")
	})
	b.Run("PRESS", func(b *testing.B) {
		var bits int64
		for i := 0; i < b.N; i++ {
			bits = press.Compress(p.Dataset.Graph, p.Dataset.Trajs).SizeBits()
		}
		b.ReportMetric(raw/float64(bits), "ratio")
	})
}

// BenchmarkTable5Entropy recomputes the RML-vs-MEL entropy comparison.
func BenchmarkTable5Entropy(b *testing.B) {
	for _, name := range []string{"singapore2", "roma"} {
		b.Run(name, func(b *testing.B) {
			p := benchData(b, name)
			var row experiments.Table5Row
			for i := 0; i < b.N; i++ {
				var err error
				row, err = experiments.Table5(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.RML, "H0-RML")
			b.ReportMetric(row.MEL, "H0-MEL")
		})
	}
}

// BenchmarkBuildSharded measures full index construction as the shard
// count grows; on a multi-core machine the K-shard build should
// approach K× the monolithic throughput (the per-shard SA-IS + BWT +
// wavelet builds dominate and run concurrently).
func BenchmarkBuildSharded(b *testing.B) {
	p := benchData(b, "randwalk")
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Shards = shards
			for i := 0; i < b.N; i++ {
				if _, err := Build(p.Dataset.Trajs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountSharded measures the fan-out count query against the
// monolithic path on the same corpus.
func BenchmarkCountSharded(b *testing.B) {
	p := benchData(b, "randwalk")
	path := p.Dataset.Trajs[0][:10]
	for _, shards := range []int{1, 4, 8} {
		opts := DefaultOptions()
		opts.Shards = shards
		ix, err := Build(p.Dataset.Trajs, opts)
		if err != nil {
			b.Fatal(err)
		}
		want := ix.Count(path)
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := ix.Count(path); got != want {
					b.Fatalf("Count = %d, want %d", got, want)
				}
			}
		})
	}
}

// BenchmarkPublicAPI covers the library surface a user touches.
func BenchmarkPublicAPI(b *testing.B) {
	p := benchData(b, "singapore2")
	ix, err := Build(p.Dataset.Trajs, nil)
	if err != nil {
		b.Fatal(err)
	}
	path := p.Dataset.Trajs[0][:10]
	b.Run("Count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Count(path)
		}
	})
	b.Run("Find10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Find(path, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SubPath32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.SubPath(0, 0, min(32, ix.TrajectoryLen(0))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
