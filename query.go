package cinct

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Kind selects what a Query produces.
type Kind uint8

const (
	// Occurrences yields every occurrence of the path as a (Trajectory,
	// Offset) hit in canonical order — the streaming form of Find.
	Occurrences Kind = iota
	// Trajectories yields each distinct trajectory containing the path
	// exactly once, in ascending ID order, with Offset == -1 — the
	// streaming form of FindTrajectories.
	Trajectories
	// CountOnly computes the occurrence count without yielding hits —
	// the form of Count and CountInInterval.
	CountOnly
)

// String returns the wire spelling used by the HTTP query endpoint.
func (k Kind) String() string {
	switch k {
	case Occurrences:
		return "occurrences"
	case Trajectories:
		return "trajectories"
	case CountOnly:
		return "count"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString parses the wire spelling of a Kind; the empty string
// means Occurrences (the endpoint default).
func KindFromString(s string) (Kind, error) {
	switch s {
	case "", "occurrences":
		return Occurrences, nil
	case "trajectories":
		return Trajectories, nil
	case "count":
		return CountOnly, nil
	}
	return 0, fmt.Errorf("%w: unknown kind %q", ErrBadQuery, s)
}

// Interval is a closed timestamp range [From, To]. An empty range
// (From > To) matches nothing.
type Interval struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// Query is the one declarative descriptor behind every retrieval
// operation: a path constraint, an optional temporal constraint, the
// result kind, and paging. Every legacy per-operation method (Count,
// Find, FindTrajectories, FindInInterval, CountInInterval) is a thin
// wrapper over a Query value executed by Search.
type Query struct {
	// Path is the edge sequence in travel order. An empty path matches
	// nothing.
	Path []uint32
	// Interval restricts hits to occurrences whose first edge was
	// entered within the interval (the strict path query). nil means no
	// temporal constraint. Non-nil requires an index with timestamps.
	Interval *Interval
	// Kind selects the result shape.
	Kind Kind
	// Limit bounds the number of hits: 0 means unlimited, negative is
	// an error (the one limit rule, enforced at every layer). CountOnly
	// ignores Limit.
	Limit int
	// Cursor resumes a previous Search just past the last hit it
	// yielded (see Results.Cursor). It must come from the same query
	// shape (path, interval, kind); Limit may differ between pages.
	// Empty starts from the beginning. CountOnly ignores Cursor.
	Cursor string
}

var (
	// ErrBadQuery reports a Query that violates the descriptor rules
	// (negative limit, unknown kind).
	ErrBadQuery = errors.New("cinct: bad query")
	// ErrBadCursor reports a Query.Cursor that is malformed or was
	// issued for a different query shape.
	ErrBadCursor = errors.New("cinct: bad cursor")
	// ErrNoTimestamps reports an interval-constrained Query executed
	// against an index without timestamp columns.
	ErrNoTimestamps = errors.New("cinct: interval query on index without timestamps")
)

// validate enforces the descriptor rules shared by every layer.
func (q Query) validate() error {
	if q.Limit < 0 {
		return fmt.Errorf("%w: negative limit %d (0 means unlimited)", ErrBadQuery, q.Limit)
	}
	switch q.Kind {
	case Occurrences, Trajectories, CountOnly:
		return nil
	}
	return fmt.Errorf("%w: unknown kind %d", ErrBadQuery, uint8(q.Kind))
}

// MarshalBinary returns the canonical byte encoding of the query — the
// value the engine hashes for cache keys. Two queries are semantically
// identical iff their encodings are byte-identical: every field lives
// in a self-delimiting slot, so no two distinct descriptors can
// collide. It validates the descriptor first.
func (q Query) MarshalBinary() ([]byte, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	b := make([]byte, 0, 16+4*len(q.Path)+len(q.Cursor))
	b = append(b, 1, byte(q.Kind)) // encoding version, kind
	b = binary.AppendVarint(b, int64(q.Limit))
	if q.Interval != nil {
		b = append(b, 1)
		b = binary.AppendVarint(b, q.Interval.From)
		b = binary.AppendVarint(b, q.Interval.To)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(q.Cursor)))
	b = append(b, q.Cursor...)
	b = binary.AppendUvarint(b, uint64(len(q.Path)))
	for _, e := range q.Path {
		b = binary.AppendUvarint(b, uint64(e))
	}
	return b, nil
}

// fingerprint hashes the resumable shape of the query — kind, path and
// interval, but not Limit or Cursor — so a cursor binds to the result
// sequence it positions into, independent of page size. Like
// MarshalBinary, every field occupies a self-delimiting slot (interval
// presence byte, path length prefix): without those, a spatial query's
// path bytes could mimic another query's interval bounds and a foreign
// cursor would validate instead of failing.
func (q Query) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(q.Kind)
	if q.Interval != nil {
		buf[1] = 1
	}
	h.Write(buf[:2])
	if q.Interval != nil {
		binary.LittleEndian.PutUint64(buf[:8], uint64(q.Interval.From))
		h.Write(buf[:8])
		binary.LittleEndian.PutUint64(buf[:8], uint64(q.Interval.To))
		h.Write(buf[:8])
	}
	binary.LittleEndian.PutUint64(buf[:8], uint64(len(q.Path)))
	h.Write(buf[:8])
	for _, e := range q.Path {
		binary.LittleEndian.PutUint32(buf[:4], e)
		h.Write(buf[:4])
	}
	return h.Sum64()
}

const cursorVersion = 1

// CursorAfter returns the opaque cursor that resumes this query just
// past hit h — the token Results.Cursor hands out after a bounded
// page. It is exported so replaying layers (the engine cache, the HTTP
// client) can mint the same token for a partially consumed page.
func (q Query) CursorAfter(h Hit) string {
	b := make([]byte, 0, 1+8+2*binary.MaxVarintLen64)
	b = append(b, cursorVersion)
	b = binary.LittleEndian.AppendUint64(b, q.fingerprint())
	b = binary.AppendVarint(b, int64(h.Trajectory))
	b = binary.AppendVarint(b, int64(h.Offset))
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeCursor unpacks q.Cursor into the exclusive resume position:
// hits at or before (afterTraj, afterOff) in canonical order are
// skipped. ok is false when the query carries no cursor.
func (q Query) decodeCursor() (afterTraj, afterOff int, ok bool, err error) {
	if q.Cursor == "" {
		return 0, 0, false, nil
	}
	raw, derr := base64.RawURLEncoding.DecodeString(q.Cursor)
	if derr != nil || len(raw) < 1+8 || raw[0] != cursorVersion {
		return 0, 0, false, fmt.Errorf("%w: malformed token", ErrBadCursor)
	}
	if binary.LittleEndian.Uint64(raw[1:9]) != q.fingerprint() {
		return 0, 0, false, fmt.Errorf("%w: cursor was issued for a different query", ErrBadCursor)
	}
	rest := raw[9:]
	traj, n := binary.Varint(rest)
	if n <= 0 {
		return 0, 0, false, fmt.Errorf("%w: malformed token", ErrBadCursor)
	}
	off, m := binary.Varint(rest[n:])
	if m <= 0 || n+m != len(rest) {
		return 0, 0, false, fmt.Errorf("%w: malformed token", ErrBadCursor)
	}
	return int(traj), int(off), true, nil
}
