package cinct

import (
	"bufio"
	"fmt"
	"io"

	"cinct/internal/tempo"
)

// TemporalIndex pairs a spatial CiNCT index with a delta-compressed
// timestamp store, answering the *strict path query* of Krogh et al.
// (GIS 2014): find trajectories that traveled along path P within a
// time interval. The paper (§VII) positions CiNCT as the spatial
// engine of exactly such systems (SNT-index, CTR); this type is the
// combination, with timestamps compressed losslessly as in CTR [3].
type TemporalIndex struct {
	*Index
	times *tempo.Store
}

// TemporalMatch is one strict-path-query hit.
type TemporalMatch struct {
	Match
	// EnteredAt is when the trajectory entered the path's first edge.
	EnteredAt int64
}

// BuildTemporal indexes trajectories with their timestamp columns:
// times[k][i] is when trajectory k entered its i-th edge. opts may be
// nil. The index must keep locate support (SampleRate > 0) — strict
// path queries need to identify trajectories.
func BuildTemporal(trajs [][]uint32, times [][]int64, opts *Options) (*TemporalIndex, error) {
	if len(times) != len(trajs) {
		return nil, fmt.Errorf("cinct: %d timestamp columns for %d trajectories",
			len(times), len(trajs))
	}
	for k := range trajs {
		if len(times[k]) != len(trajs[k]) {
			return nil, fmt.Errorf("cinct: trajectory %d has %d edges but %d timestamps",
				k, len(trajs[k]), len(times[k]))
		}
	}
	if opts != nil && opts.SampleRate == 0 {
		return nil, fmt.Errorf("cinct: temporal index requires SampleRate > 0")
	}
	ix, err := Build(trajs, opts)
	if err != nil {
		return nil, err
	}
	return &TemporalIndex{Index: ix, times: tempo.New(times)}, nil
}

// FindInInterval runs a strict path query: occurrences of path whose
// first edge was entered at a time in [from, to]. limit <= 0 returns
// all.
func (t *TemporalIndex) FindInInterval(path []uint32, from, to int64, limit int) ([]TemporalMatch, error) {
	hits, err := t.Find(path, 0)
	if err != nil {
		return nil, err
	}
	var out []TemporalMatch
	for _, h := range hits {
		if limit > 0 && len(out) >= limit {
			break
		}
		at := t.times.At(h.Trajectory, h.Offset)
		if at >= from && at <= to {
			out = append(out, TemporalMatch{Match: h, EnteredAt: at})
		}
	}
	return out, nil
}

// Timestamps returns the full timestamp column of a trajectory.
func (t *TemporalIndex) Timestamps(id int) []int64 { return t.times.Column(id) }

// TimestampBits returns the compressed size of the temporal store in
// bits (reported separately from the spatial index, as the paper keeps
// the two concerns separate).
func (t *TemporalIndex) TimestampBits() int { return t.times.SizeBits() }

// Save writes the spatial index followed by the timestamp store.
func (t *TemporalIndex) Save(w io.Writer) (int64, error) {
	n1, err := t.Index.Save(w)
	if err != nil {
		return n1, err
	}
	n2, err := t.times.Save(w)
	return n1 + n2, err
}

// LoadTemporal reads an index written by TemporalIndex.Save.
func LoadTemporal(r io.Reader) (*TemporalIndex, error) {
	br := bufio.NewReader(r)
	ix, err := Load(br)
	if err != nil {
		return nil, err
	}
	ts, err := tempo.Load(br)
	if err != nil {
		return nil, err
	}
	if ts.NumTrajectories() != ix.NumTrajectories() {
		return nil, fmt.Errorf("cinct: %d timestamp columns for %d trajectories",
			ts.NumTrajectories(), ix.NumTrajectories())
	}
	return &TemporalIndex{Index: ix, times: ts}, nil
}
