package cinct

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"cinct/internal/tempo"
)

// TemporalIndex pairs a spatial CiNCT index with a delta-compressed
// timestamp store, answering the *strict path query* of Krogh et al.
// (GIS 2014): find trajectories that traveled along path P within a
// time interval. The paper (§VII) positions CiNCT as the spatial
// engine of exactly such systems (SNT-index, CTR); this type is the
// combination, with timestamps compressed losslessly as in CTR [3].
//
// Timestamps are sharded alongside the spatial index: a K-shard
// spatial index carries K tempo stores, one per contiguous trajectory
// range, and interval queries fan out over the shards in parallel with
// results merged into canonical (Trajectory, Offset) order — answers
// are identical to the monolithic index over the same corpus.
type TemporalIndex struct {
	*Index
	// stores holds one tempo store per spatial shard when the layout
	// is aligned (the only layout Build produces), or a single
	// corpus-wide store for monolithic indexes and for legacy files
	// that paired a sharded spatial index with one global store.
	stores []*tempo.Store
}

// TemporalMatch is one strict-path-query hit.
type TemporalMatch struct {
	Match
	// EnteredAt is when the trajectory entered the path's first edge.
	EnteredAt int64
}

// ErrCorruptTimestamps reports temporal data inconsistent with the
// spatial index it was loaded with.
var ErrCorruptTimestamps = errors.New("cinct: timestamp store inconsistent with spatial index")

// BuildTemporal indexes trajectories with their timestamp columns:
// times[k][i] is when trajectory k entered its i-th edge. opts may be
// nil. The index must keep locate support (SampleRate > 0) — strict
// path queries need to identify trajectories. With Options.Shards > 1
// the timestamp columns are partitioned into per-shard stores mirroring
// the spatial partition.
func BuildTemporal(trajs [][]uint32, times [][]int64, opts *Options) (*TemporalIndex, error) {
	if len(times) != len(trajs) {
		return nil, fmt.Errorf("cinct: %d timestamp columns for %d trajectories",
			len(times), len(trajs))
	}
	for k := range trajs {
		if len(times[k]) != len(trajs[k]) {
			return nil, fmt.Errorf("cinct: trajectory %d has %d edges but %d timestamps",
				k, len(trajs[k]), len(times[k]))
		}
	}
	if opts != nil && opts.SampleRate == 0 {
		return nil, fmt.Errorf("cinct: temporal index requires SampleRate > 0")
	}
	ix, err := Build(trajs, opts)
	if err != nil {
		return nil, err
	}
	t := &TemporalIndex{Index: ix}
	if si := ix.sharded; si != nil {
		// One store per shard, built concurrently (cheap next to the
		// spatial build, but there is no reason to serialize K encodes).
		t.stores = make([]*tempo.Store, len(si.shards))
		var wg sync.WaitGroup
		wg.Add(len(si.shards))
		for s := range si.shards {
			go func(s int) {
				defer wg.Done()
				t.stores[s] = tempo.New(times[si.bounds[s]:si.bounds[s+1]])
			}(s)
		}
		wg.Wait()
	} else {
		t.stores = []*tempo.Store{tempo.New(times)}
	}
	return t, nil
}

// aligned reports whether the timestamp stores mirror the spatial
// shards one-to-one (always true for built indexes; false only for
// legacy files pairing a sharded spatial index with one global store).
func (t *TemporalIndex) aligned() bool {
	si := t.Index.sharded
	return si != nil && len(t.stores) == len(si.shards)
}

// storeFor resolves a global trajectory ID to its store and local ID.
func (t *TemporalIndex) storeFor(id int) (*tempo.Store, int) {
	if t.aligned() {
		s, local := t.Index.sharded.shardOf(id)
		return t.stores[s], local
	}
	return t.stores[0], id
}

// findInIntervalOne answers the strict path query against one
// monolithic spatial index and its store, streaming the time filter
// into the locate loop instead of materializing a sorted full hit set
// first:
//
//  1. every located occurrence is pruned against the trajectory's
//     (min, max) time summary before any timestamp decode, so a
//     selective interval discards most candidates without touching the
//     compressed blob;
//  2. survivors are sorted canonically and only then timestamp-decoded
//     (O(BlockSize) per probe via checkpoints), stopping as soon as
//     limit matches are confirmed — the decode work, the dominant cost
//     of the old path, is bounded by the limit instead of the hit
//     count.
//
// Like Index.Find, every occurrence in the suffix range is still
// located once; limit bounds the filtering, not the locate scan.
// Results are the first limit temporal matches in (Trajectory, Offset)
// order — identical to filtering the full sorted hit set.
func findInIntervalOne(ix *Index, ts *tempo.Store, path []uint32, from, to int64, limit int) ([]TemporalMatch, error) {
	cands, err := intervalCandidates(ix, ts, path, from, to)
	if err != nil || len(cands) == 0 {
		return nil, err
	}
	sortMatches(cands)
	var out []TemporalMatch
	for _, m := range cands {
		at := ts.At(m.Trajectory, m.Offset)
		if at < from || at > to {
			continue
		}
		out = append(out, TemporalMatch{Match: m, EnteredAt: at})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// countInIntervalOne counts strict-path-query matches against one
// monolithic spatial index and its store. Order is irrelevant for a
// count, so candidates are probed straight out of the locate loop —
// no sort, no materialized matches.
func countInIntervalOne(ix *Index, ts *tempo.Store, path []uint32, from, to int64) (int, error) {
	cands, err := intervalCandidates(ix, ts, path, from, to)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, m := range cands {
		if at := ts.At(m.Trajectory, m.Offset); at >= from && at <= to {
			n++
		}
	}
	return n, nil
}

// intervalCandidates locates every occurrence of path whose trajectory
// (min, max) time summary intersects [from, to]. Trajectories entirely
// outside the interval are skipped before any timestamp decode.
func intervalCandidates(ix *Index, ts *tempo.Store, path []uint32, from, to int64) ([]Match, error) {
	var cands []Match
	err := ix.locateOccurrences(path, func(doc, offset int) {
		if lo, hi := ts.MinMax(doc); hi < from || lo > to {
			return
		}
		cands = append(cands, Match{Trajectory: doc, Offset: offset})
	})
	return cands, err
}

// FindInInterval runs a strict path query: occurrences of path whose
// first edge was entered at a time in [from, to]. limit <= 0 returns
// all. Matches are sorted by (Trajectory, Offset) and a positive limit
// keeps the first limit matches in that order, so answers are
// identical whether the index is sharded or not.
func (t *TemporalIndex) FindInInterval(path []uint32, from, to int64, limit int) ([]TemporalMatch, error) {
	if t.aligned() {
		si := t.Index.sharded
		if len(si.shards) == 1 {
			return findInIntervalOne(si.shards[0], t.stores[0], path, from, to, limit)
		}
		parts := make([][]TemporalMatch, len(si.shards))
		errs := make([]error, len(si.shards))
		si.fanOut(func(s int, ix *Index) {
			parts[s], errs[s] = findInIntervalOne(ix, t.stores[s], path, from, to, limit)
		})
		var out []TemporalMatch
		for s, part := range parts {
			if errs[s] != nil {
				return nil, errs[s]
			}
			for _, m := range part {
				m.Trajectory += si.bounds[s]
				out = append(out, m)
			}
		}
		// Truncate only after the canonical merge, mirroring
		// ShardedIndex.Find: each shard returned a superset of its
		// contribution to the global first-limit.
		sortTemporalMatches(out)
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out, nil
	}
	if t.Index.sharded == nil {
		return findInIntervalOne(t.Index, t.stores[0], path, from, to, limit)
	}
	return t.legacyFindInInterval(path, from, to, limit)
}

// legacyFindInInterval handles the one layout a build can no longer
// produce: a sharded spatial index paired with a single corpus-wide
// store (files written before stores were sharded). The spatial fan-out
// still runs sharded; the time filter runs over global IDs with the
// same summary pruning, checkpointed probes, and limit early exit.
func (t *TemporalIndex) legacyFindInInterval(path []uint32, from, to int64, limit int) ([]TemporalMatch, error) {
	hits, err := t.Find(path, 0) // canonical (Trajectory, Offset) order
	if err != nil {
		return nil, err
	}
	ts := t.stores[0]
	var out []TemporalMatch
	for _, h := range hits {
		if lo, hi := ts.MinMax(h.Trajectory); hi < from || lo > to {
			continue
		}
		at := ts.At(h.Trajectory, h.Offset)
		if at < from || at > to {
			continue
		}
		out = append(out, TemporalMatch{Match: h, EnteredAt: at})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// CountInInterval counts strict-path-query matches: occurrences of
// path whose first edge was entered at a time in [from, to].
func (t *TemporalIndex) CountInInterval(path []uint32, from, to int64) (int, error) {
	if t.aligned() {
		si := t.Index.sharded
		counts := make([]int, len(si.shards))
		errs := make([]error, len(si.shards))
		si.fanOut(func(s int, ix *Index) {
			counts[s], errs[s] = countInIntervalOne(ix, t.stores[s], path, from, to)
		})
		total := 0
		for s, c := range counts {
			if errs[s] != nil {
				return 0, errs[s]
			}
			total += c
		}
		return total, nil
	}
	if t.Index.sharded == nil {
		return countInIntervalOne(t.Index, t.stores[0], path, from, to)
	}
	hits, err := t.legacyFindInInterval(path, from, to, 0)
	return len(hits), err
}

// sortTemporalMatches orders matches by (Trajectory, Offset) — the
// canonical order FindInInterval promises.
func sortTemporalMatches(ms []TemporalMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Trajectory != ms[j].Trajectory {
			return ms[i].Trajectory < ms[j].Trajectory
		}
		return ms[i].Offset < ms[j].Offset
	})
}

// Timestamps returns the full timestamp column of a trajectory.
func (t *TemporalIndex) Timestamps(id int) []int64 {
	ts, local := t.storeFor(id)
	return ts.Column(local)
}

// TimestampBits returns the compressed size of the temporal store in
// bits (reported separately from the spatial index, as the paper keeps
// the two concerns separate). Sharded stores sum.
func (t *TemporalIndex) TimestampBits() int {
	n := 0
	for _, ts := range t.stores {
		n += ts.SizeBits()
	}
	return n
}

// Temporal container format (versioned):
//
//	magic   "CNCTtemp"                 8 bytes
//	version uvarint                    currently 2
//	K       uvarint                    timestamp store count
//	spatial index                      Index.Save (either spatial format)
//	frames  K × (uvarint len, bytes)   each a tempo store
//
// Version 1 had no magic: it was the spatial index immediately
// followed by one corpus-wide tempo store. LoadTemporal still accepts
// it (the magic cannot collide with either spatial layout).
const (
	temporalMagic   = "CNCTtemp"
	temporalVersion = 2
)

// ErrBadTemporalContainer reports a malformed temporal index stream.
var ErrBadTemporalContainer = errors.New("cinct: bad temporal index container")

// Save writes the versioned temporal container: the spatial index
// followed by the length-prefixed timestamp store frames.
func (t *TemporalIndex) Save(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := bw.Write(buf[:k])
		return err
	}
	if _, err := bw.WriteString(temporalMagic); err != nil {
		return n, err
	}
	n += int64(len(temporalMagic))
	if err := writeUvarint(temporalVersion); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(t.stores))); err != nil {
		return n, err
	}
	k, err := t.Index.Save(bw)
	n += k
	if err != nil {
		return n, err
	}
	var frame bytes.Buffer
	for s, ts := range t.stores {
		frame.Reset()
		if _, err := ts.Save(&frame); err != nil {
			return n, fmt.Errorf("cinct: saving timestamp store %d: %w", s, err)
		}
		if err := writeUvarint(uint64(frame.Len())); err != nil {
			return n, err
		}
		m, err := bw.Write(frame.Bytes())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadTemporal reads an index written by TemporalIndex.Save — the
// current container or the legacy unversioned layout — and validates
// the timestamp stores against the spatial index: column counts and
// every per-trajectory length must match, so shape corruption fails
// the load instead of panicking inside a query.
func LoadTemporal(r io.Reader) (*TemporalIndex, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(temporalMagic)); err == nil && string(magic) == temporalMagic {
		return loadTemporalV2(br)
	}
	// Legacy layout: spatial index then one corpus-wide store.
	ix, err := Load(br)
	if err != nil {
		return nil, err
	}
	ts, err := tempo.Load(br)
	if err != nil {
		return nil, err
	}
	t := &TemporalIndex{Index: ix, stores: []*tempo.Store{ts}}
	if err := t.validateStores(); err != nil {
		return nil, err
	}
	return t, nil
}

func loadTemporalV2(br *bufio.Reader) (*TemporalIndex, error) {
	if _, err := br.Discard(len(temporalMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTemporalContainer, err)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || version != temporalVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTemporalContainer, version)
	}
	k, err := binary.ReadUvarint(br)
	if err != nil || k == 0 || k > 1<<20 {
		return nil, fmt.Errorf("%w: store count %d", ErrBadTemporalContainer, k)
	}
	ix, err := Load(br)
	if err != nil {
		return nil, err
	}
	t := &TemporalIndex{Index: ix, stores: make([]*tempo.Store, k)}
	for s := range t.stores {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: store %d frame length", ErrBadTemporalContainer, s)
		}
		// LimitReader confines each store loader to its frame; the
		// drain repositions br at the next frame even if the loader
		// under-consumed.
		lr := io.LimitReader(br, int64(frameLen))
		ts, err := tempo.Load(bufio.NewReader(lr))
		if err != nil {
			return nil, fmt.Errorf("cinct: loading timestamp store %d: %w", s, err)
		}
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("%w: store %d frame", ErrBadTemporalContainer, s)
		}
		t.stores[s] = ts
	}
	if err := t.validateStores(); err != nil {
		return nil, err
	}
	return t, nil
}

// validateStores checks that the timestamp stores cover exactly the
// spatial index's trajectories: the store layout must be a recognized
// shape (per-shard or corpus-wide) and every column length must equal
// its trajectory's edge count — the invariant that makes every At
// probe issued by a query in-range by construction.
func (t *TemporalIndex) validateStores() error {
	bounds := []int{0, t.Index.NumTrajectories()}
	switch si := t.Index.sharded; {
	case t.aligned():
		bounds = si.bounds
	case len(t.stores) != 1:
		return fmt.Errorf("%w: %d timestamp stores for %d shards",
			ErrCorruptTimestamps, len(t.stores), t.Index.Shards())
	}
	for s, ts := range t.stores {
		n := bounds[s+1] - bounds[s]
		if ts.NumTrajectories() != n {
			return fmt.Errorf("%w: store %d holds %d columns for %d trajectories",
				ErrCorruptTimestamps, s, ts.NumTrajectories(), n)
		}
		for local := 0; local < n; local++ {
			if want := t.Index.TrajectoryLen(bounds[s] + local); ts.Len(local) != want {
				return fmt.Errorf("%w: trajectory %d has %d edges but %d timestamps",
					ErrCorruptTimestamps, bounds[s]+local, want, ts.Len(local))
			}
		}
	}
	return nil
}
