package cinct

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"cinct/internal/tempo"
)

// TemporalIndex pairs a spatial CiNCT index with a delta-compressed
// timestamp store, answering the *strict path query* of Krogh et al.
// (GIS 2014): find trajectories that traveled along path P within a
// time interval. The paper (§VII) positions CiNCT as the spatial
// engine of exactly such systems (SNT-index, CTR); this type is the
// combination, with timestamps compressed losslessly as in CTR [3].
//
// Timestamps are sharded alongside the spatial index: a K-shard
// spatial index carries K tempo stores, one per contiguous trajectory
// range, and interval queries fan out over the shards in parallel with
// results merged into canonical (Trajectory, Offset) order — answers
// are identical to the monolithic index over the same corpus.
type TemporalIndex struct {
	*Index
	// stores holds one tempo store per spatial shard when the layout
	// is aligned (the only layout Build produces), or a single
	// corpus-wide store for monolithic indexes and for legacy files
	// that paired a sharded spatial index with one global store.
	stores []*tempo.Store
}

// TemporalMatch is one strict-path-query hit.
type TemporalMatch struct {
	Match
	// EnteredAt is when the trajectory entered the path's first edge.
	EnteredAt int64
}

// ErrCorruptTimestamps reports temporal data inconsistent with the
// spatial index it was loaded with.
var ErrCorruptTimestamps = errors.New("cinct: timestamp store inconsistent with spatial index")

// BuildTemporal indexes trajectories with their timestamp columns:
// times[k][i] is when trajectory k entered its i-th edge. opts may be
// nil. The index must keep locate support (SampleRate > 0) — strict
// path queries need to identify trajectories. With Options.Shards > 1
// the timestamp columns are partitioned into per-shard stores mirroring
// the spatial partition.
func BuildTemporal(trajs [][]uint32, times [][]int64, opts *Options) (*TemporalIndex, error) {
	if len(times) != len(trajs) {
		return nil, fmt.Errorf("cinct: %d timestamp columns for %d trajectories",
			len(times), len(trajs))
	}
	for k := range trajs {
		if len(times[k]) != len(trajs[k]) {
			return nil, fmt.Errorf("cinct: trajectory %d has %d edges but %d timestamps",
				k, len(trajs[k]), len(times[k]))
		}
	}
	if opts != nil && opts.SampleRate == 0 {
		return nil, fmt.Errorf("cinct: temporal index requires SampleRate > 0")
	}
	ix, err := Build(trajs, opts)
	if err != nil {
		return nil, err
	}
	t := &TemporalIndex{Index: ix}
	if si := ix.sharded; si != nil {
		// One store per shard, built concurrently (cheap next to the
		// spatial build, but there is no reason to serialize K encodes).
		t.stores = make([]*tempo.Store, len(si.shards))
		var wg sync.WaitGroup
		wg.Add(len(si.shards))
		for s := range si.shards {
			go func(s int) {
				defer wg.Done()
				t.stores[s] = tempo.New(times[si.bounds[s]:si.bounds[s+1]])
			}(s)
		}
		wg.Wait()
	} else {
		t.stores = []*tempo.Store{tempo.New(times)}
	}
	return t, nil
}

// aligned reports whether the timestamp stores mirror the spatial
// shards one-to-one (always true for built indexes; false only for
// legacy files pairing a sharded spatial index with one global store).
func (t *TemporalIndex) aligned() bool {
	si := t.Index.sharded
	return si != nil && len(t.stores) == len(si.shards)
}

// storeFor resolves a global trajectory ID to its store and local ID.
func (t *TemporalIndex) storeFor(id int) (*tempo.Store, int) {
	if t.aligned() {
		s, local := t.Index.sharded.shardOf(id)
		return t.stores[s], local
	}
	return t.stores[0], id
}

// FindInInterval runs a strict path query: occurrences of path whose
// first edge was entered at a time in [from, to]. limit <= 0 returns
// all. Matches are sorted by (Trajectory, Offset) and a positive limit
// keeps the first limit matches in that order, so answers are
// identical whether the index is sharded or not.
//
// FindInInterval is the legacy form of Search with an Interval and
// Kind Occurrences; new code should prefer Search. The pushdown
// behavior is Search's: every located occurrence is pruned against the
// trajectory's (min, max) time summary before any timestamp decode,
// survivors are sorted canonically, and timestamps are then decoded
// lazily (O(BlockSize) per probe via checkpoints) while streaming, so
// the decode work — the dominant cost of the pre-pushdown path — is
// bounded by the limit instead of the hit count. Like Index.Find,
// every occurrence in the suffix range is still located once; limit
// bounds the filtering, not the locate scan.
func (t *TemporalIndex) FindInInterval(path []uint32, from, to int64, limit int) ([]TemporalMatch, error) {
	if limit < 0 {
		limit = 0
	}
	q := Query{Path: path, Interval: &Interval{From: from, To: to}, Kind: Occurrences, Limit: limit}
	r, err := t.Search(context.Background(), q)
	if err != nil {
		return nil, err
	}
	var out []TemporalMatch
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		out = append(out, TemporalMatch{Match: h.Match, EnteredAt: h.EnteredAt})
	}
	return out, nil
}

// CountInInterval counts strict-path-query matches: occurrences of
// path whose first edge was entered at a time in [from, to].
//
// CountInInterval is the legacy form of Search with an Interval and
// Kind CountOnly; new code should prefer Search.
func (t *TemporalIndex) CountInInterval(path []uint32, from, to int64) (int, error) {
	q := Query{Path: path, Interval: &Interval{From: from, To: to}, Kind: CountOnly}
	r, err := t.Search(context.Background(), q)
	if err != nil {
		return 0, err
	}
	return r.Count()
}

// Timestamps returns the full timestamp column of a trajectory.
func (t *TemporalIndex) Timestamps(id int) []int64 {
	ts, local := t.storeFor(id)
	return ts.Column(local)
}

// TimestampBits returns the compressed size of the temporal store in
// bits (reported separately from the spatial index, as the paper keeps
// the two concerns separate). Sharded stores sum.
func (t *TemporalIndex) TimestampBits() int {
	n := 0
	for _, ts := range t.stores {
		n += ts.SizeBits()
	}
	return n
}

// Temporal container format (versioned):
//
//	magic   "CNCTtemp"                 8 bytes
//	version uvarint                    currently 2
//	K       uvarint                    timestamp store count
//	spatial index                      Index.Save (either spatial format)
//	frames  K × (uvarint len, bytes)   each a tempo store
//
// Version 1 had no magic: it was the spatial index immediately
// followed by one corpus-wide tempo store. LoadTemporal still accepts
// it (the magic cannot collide with either spatial layout).
const (
	temporalMagic   = "CNCTtemp"
	temporalVersion = 2
)

// ErrBadTemporalContainer reports a malformed temporal index stream.
var ErrBadTemporalContainer = errors.New("cinct: bad temporal index container")

// Save writes the versioned temporal container: the spatial index
// followed by the length-prefixed timestamp store frames.
func (t *TemporalIndex) Save(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := bw.Write(buf[:k])
		return err
	}
	if _, err := bw.WriteString(temporalMagic); err != nil {
		return n, err
	}
	n += int64(len(temporalMagic))
	if err := writeUvarint(temporalVersion); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(t.stores))); err != nil {
		return n, err
	}
	k, err := t.Index.Save(bw)
	n += k
	if err != nil {
		return n, err
	}
	var frame bytes.Buffer
	for s, ts := range t.stores {
		frame.Reset()
		if _, err := ts.Save(&frame); err != nil {
			return n, fmt.Errorf("cinct: saving timestamp store %d: %w", s, err)
		}
		if err := writeUvarint(uint64(frame.Len())); err != nil {
			return n, err
		}
		m, err := bw.Write(frame.Bytes())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadTemporal reads an index written by TemporalIndex.Save — the
// current container or the legacy unversioned layout — and validates
// the timestamp stores against the spatial index: column counts and
// every per-trajectory length must match, so shape corruption fails
// the load instead of panicking inside a query.
func LoadTemporal(r io.Reader) (*TemporalIndex, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(v3Magic)); err == nil && isV3Magic(magic) {
		ix, stores, err := loadV3(br, v3FlavorTemporal)
		if err != nil {
			return nil, err
		}
		t := &TemporalIndex{Index: ix, stores: stores}
		if err := t.validateStores(); err != nil {
			return nil, err
		}
		return t, nil
	}
	if magic, err := br.Peek(len(temporalMagic)); err == nil && string(magic) == temporalMagic {
		return loadTemporalV2(br)
	}
	// Legacy layout: spatial index then one corpus-wide store.
	ix, err := Load(br)
	if err != nil {
		return nil, err
	}
	ts, err := tempo.Load(br)
	if err != nil {
		return nil, err
	}
	t := &TemporalIndex{Index: ix, stores: []*tempo.Store{ts}}
	if err := t.validateStores(); err != nil {
		return nil, err
	}
	return t, nil
}

func loadTemporalV2(br *bufio.Reader) (*TemporalIndex, error) {
	if _, err := br.Discard(len(temporalMagic)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTemporalContainer, err)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || version != temporalVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTemporalContainer, version)
	}
	k, err := binary.ReadUvarint(br)
	if err != nil || k == 0 || k > 1<<20 {
		return nil, fmt.Errorf("%w: store count %d", ErrBadTemporalContainer, k)
	}
	ix, err := Load(br)
	if err != nil {
		return nil, err
	}
	t := &TemporalIndex{Index: ix, stores: make([]*tempo.Store, k)}
	for s := range t.stores {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: store %d frame length", ErrBadTemporalContainer, s)
		}
		// LimitReader confines each store loader to its frame; the
		// drain repositions br at the next frame even if the loader
		// under-consumed.
		lr := io.LimitReader(br, int64(frameLen))
		ts, err := tempo.Load(bufio.NewReader(lr))
		if err != nil {
			return nil, fmt.Errorf("cinct: loading timestamp store %d: %w", s, err)
		}
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("%w: store %d frame", ErrBadTemporalContainer, s)
		}
		t.stores[s] = ts
	}
	if err := t.validateStores(); err != nil {
		return nil, err
	}
	return t, nil
}

// validateStores checks that the timestamp stores cover exactly the
// spatial index's trajectories: the store layout must be a recognized
// shape (per-shard or corpus-wide) and every column length must equal
// its trajectory's edge count — the invariant that makes every At
// probe issued by a query in-range by construction.
func (t *TemporalIndex) validateStores() error {
	bounds := []int{0, t.Index.NumTrajectories()}
	switch si := t.Index.sharded; {
	case t.aligned():
		bounds = si.bounds
	case len(t.stores) != 1:
		return fmt.Errorf("%w: %d timestamp stores for %d shards",
			ErrCorruptTimestamps, len(t.stores), t.Index.Shards())
	}
	for s, ts := range t.stores {
		n := bounds[s+1] - bounds[s]
		if ts.NumTrajectories() != n {
			return fmt.Errorf("%w: store %d holds %d columns for %d trajectories",
				ErrCorruptTimestamps, s, ts.NumTrajectories(), n)
		}
		for local := 0; local < n; local++ {
			if want := t.Index.TrajectoryLen(bounds[s] + local); ts.Len(local) != want {
				return fmt.Errorf("%w: trajectory %d has %d edges but %d timestamps",
					ErrCorruptTimestamps, bounds[s]+local, want, ts.Len(local))
			}
		}
	}
	return nil
}
