package cinct

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"cinct/internal/trajgen"
)

// testCorpus returns a small deterministic corpus with known structure.
func testCorpus() [][]uint32 {
	return [][]uint32{
		{10, 11, 14, 15}, // A B E F (paper's T1, arbitrary IDs)
		{10, 11, 12},     // A B C
		{11, 12},         // B C
		{10, 13},         // A D
	}
}

func TestCountPaperExample(t *testing.T) {
	ix, err := Build(testCorpus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Path A→B occurs in T1 and T2.
	if got := ix.Count([]uint32{10, 11}); got != 2 {
		t.Fatalf("Count(A,B) = %d, want 2", got)
	}
	// Path B→C occurs in T2 and T3.
	if got := ix.Count([]uint32{11, 12}); got != 2 {
		t.Fatalf("Count(B,C) = %d, want 2", got)
	}
	// Path A→B→C only in T2.
	if got := ix.Count([]uint32{10, 11, 12}); got != 1 {
		t.Fatalf("Count(A,B,C) = %d, want 1", got)
	}
	// Path B→A never occurs (direction matters).
	if got := ix.Count([]uint32{11, 10}); got != 0 {
		t.Fatalf("Count(B,A) = %d, want 0", got)
	}
	// Unknown edge.
	if got := ix.Count([]uint32{999}); got != 0 {
		t.Fatalf("Count(unknown) = %d, want 0", got)
	}
	// Empty path.
	if got := ix.Count(nil); got != 0 {
		t.Fatalf("Count(empty) = %d, want 0", got)
	}
}

func TestFindReportsTrajectoryAndOffset(t *testing.T) {
	ix, err := Build(testCorpus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.Find([]uint32{11, 12}, 0) // B→C
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("Find(B,C) returned %d hits, want 2", len(hits))
	}
	want := map[int]int{1: 1, 2: 0} // traj 1 offset 1, traj 2 offset 0
	for _, h := range hits {
		off, ok := want[h.Trajectory]
		if !ok {
			t.Fatalf("unexpected trajectory %d", h.Trajectory)
		}
		if h.Offset != off {
			t.Fatalf("trajectory %d: offset %d, want %d", h.Trajectory, h.Offset, off)
		}
		delete(want, h.Trajectory)
	}
	// Limit.
	hits, err = ix.Find([]uint32{11, 12}, 1)
	if err != nil || len(hits) != 1 {
		t.Fatalf("limited Find returned %d hits (%v)", len(hits), err)
	}
	// Miss.
	hits, err = ix.Find([]uint32{15, 10}, 0)
	if err != nil || hits != nil {
		t.Fatalf("miss should return nil hits, got %v (%v)", hits, err)
	}
}

func TestTrajectoryReconstruction(t *testing.T) {
	trajs := testCorpus()
	ix, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range trajs {
		got, err := ix.Trajectory(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trajectory %d: %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trajectory %d differs at %d: %v vs %v", id, i, got, want)
			}
		}
	}
}

func TestSubPath(t *testing.T) {
	trajs := testCorpus()
	ix, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.SubPath(0, 1, 3) // edges 1..2 of T1 = B E
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 11 || got[1] != 14 {
		t.Fatalf("SubPath(0,1,3) = %v, want [11 14]", got)
	}
	if _, err := ix.SubPath(0, 2, 1); err == nil {
		t.Fatal("inverted range should error")
	}
	if _, err := ix.SubPath(0, 0, 99); err == nil {
		t.Fatal("overlong range should error")
	}
	empty, err := ix.SubPath(0, 2, 2)
	if err != nil || len(empty) != 0 {
		t.Fatal("empty range should return no edges")
	}
}

func TestCountOnlyIndex(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleRate = 0
	ix, err := Build(testCorpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Count([]uint32{10, 11}); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if _, err := ix.Find([]uint32{10, 11}, 0); !errors.Is(err, ErrNoLocate) {
		t.Fatalf("Find should return ErrNoLocate, got %v", err)
	}
	if _, err := ix.Trajectory(0); !errors.Is(err, ErrNoLocate) {
		t.Fatalf("Trajectory should return ErrNoLocate, got %v", err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Fatal("empty corpus should error")
	}
	if _, err := Build([][]uint32{{1}, {}}, nil); err == nil {
		t.Fatal("empty trajectory should error")
	}
	if _, err := Build([][]uint32{{1}}, &Options{Block: 17}); err == nil {
		t.Fatal("invalid block size should error")
	}
	if _, err := Build([][]uint32{{1}}, &Options{Block: 63, SampleRate: -1}); err == nil {
		t.Fatal("negative sample rate should error")
	}
	// Block 0 means default and must work.
	if _, err := Build([][]uint32{{1, 2}}, &Options{SampleRate: 4}); err != nil {
		t.Fatalf("Block=0 should default: %v", err)
	}
}

func TestStats(t *testing.T) {
	ix, err := Build(testCorpus(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Trajectories != 4 || s.Edges != 6 {
		t.Fatalf("stats header: %+v", s)
	}
	if s.TextLen != 16 { // the paper's |T| for this corpus
		t.Fatalf("TextLen = %d, want 16", s.TextLen)
	}
	if s.BitsPerSymbol <= 0 {
		t.Fatal("BitsPerSymbol must be positive")
	}
	if s.MaxLabel < 2 {
		t.Fatalf("MaxLabel = %d", s.MaxLabel)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 80, MeanLen: 20, Seed: 9}
	d := trajgen.Singapore2(cfg)
	ix, err := Build(d.Trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Counts agree on sampled paths.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		k := rng.Intn(len(d.Trajs))
		tr := d.Trajs[k]
		if len(tr) < 3 {
			continue
		}
		start := rng.Intn(len(tr) - 2)
		path := tr[start : start+2+rng.Intn(min(3, len(tr)-start-1))]
		if got, want := loaded.Count(path), ix.Count(path); got != want {
			t.Fatalf("Count differs after reload: %d vs %d", got, want)
		}
	}
	// Trajectory reconstruction from the loaded index.
	for _, id := range []int{0, len(d.Trajs) / 2, len(d.Trajs) - 1} {
		got, err := loaded.Trajectory(id)
		if err != nil {
			t.Fatal(err)
		}
		want := d.Trajs[id]
		if len(got) != len(want) {
			t.Fatalf("trajectory %d: length %d vs %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trajectory %d differs at %d", id, i)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage stream"))); err == nil {
		t.Fatal("garbage should not load")
	}
}

// End-to-end on a realistic corpus: every sampled sub-path must be
// findable, and every hit must actually contain the path.
func TestIntegrationFindIsCorrect(t *testing.T) {
	cfg := trajgen.Config{GridW: 10, GridH: 10, NumTrajs: 150, MeanLen: 30, Seed: 11}
	d := trajgen.Roma(cfg)
	ix, err := Build(d.Trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(len(d.Trajs))
		tr := d.Trajs[k]
		if len(tr) < 5 {
			continue
		}
		start := rng.Intn(len(tr) - 4)
		m := 2 + rng.Intn(3)
		path := tr[start : start+m]
		hits, err := ix.Find(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Count(path) != len(hits) {
			t.Fatalf("Count=%d but %d hits", ix.Count(path), len(hits))
		}
		found := false
		for _, h := range hits {
			sub, err := ix.SubPath(h.Trajectory, h.Offset, h.Offset+m)
			if err != nil {
				t.Fatal(err)
			}
			for i := range path {
				if sub[i] != path[i] {
					t.Fatalf("hit at traj %d off %d does not contain the path",
						h.Trajectory, h.Offset)
				}
			}
			if h.Trajectory == k && h.Offset == start {
				found = true
			}
		}
		if !found {
			t.Fatalf("planted occurrence (traj %d, off %d) not reported", k, start)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
