package cinct

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"unsafe"

	"cinct/internal/core"
	"cinct/internal/flat"
	"cinct/internal/mmapfile"
	"cinct/internal/tempo"
	"cinct/internal/trajstr"
)

// Container format v3: a single flat file readable in place. Where v1
// streams varints that Load must decode into heap structures, v3 lays
// every structure out as 64-bit little-endian words so a reader wraps
// the file's bytes directly — OpenMapped memory-maps the file and
// serves queries from the mapping (O(1) open, kernel-managed paging,
// pages shared across processes), and Load falls back to one aligned
// read of the same layout.
//
//	header   8 words (64 bytes)
//	  [0] magic "CNCTidx3"
//	  [1] version (3)
//	  [2] flavor: 1 spatial, 2 temporal
//	  [3] section count S
//	  [4] file size in bytes
//	  [5] K: spatial shard count (0 = monolithic)
//	  [6] T: timestamp store count (0 for spatial files)
//	  [7] reserved (0)
//	TOC      S × 4 words: {kind, shard, byte offset, byte length}
//	  kind 1: spatial frame (flat corpus metadata ++ flat core index)
//	  kind 2: timestamp store (flat tempo store)
//	sections zero-padded to 4096-byte boundaries, in TOC order
//
// Every section offset is page-aligned and every length a multiple of
// 8, so any structure in the file can be viewed as a []uint64 without
// copying. The file size is a whole number of pages.

const (
	v3Magic    = "CNCTidx3"
	v3Version  = 3
	v3PageSize = 4096

	v3FlavorSpatial  = 1
	v3FlavorTemporal = 2

	v3KindSpatial = 1
	v3KindTempo   = 2
)

// ErrCorrupt reports a malformed v3 container. Errors from OpenMapped,
// Load and LoadTemporal on v3 files wrap it (possibly alongside the
// more specific flat/section error).
var ErrCorrupt = errors.New("cinct: corrupt v3 container")

// isV3Magic reports whether b begins with the v3 container magic.
func isV3Magic(b []byte) bool {
	return len(b) >= len(v3Magic) && string(b[:len(v3Magic)]) == v3Magic
}

// IsV3Container reports whether b (the first bytes of a file, at
// least 8) begins with the v3 container magic — the sniff callers use
// to decide between OpenMapped and the streaming loaders.
func IsV3Container(b []byte) bool { return isV3Magic(b) }

func v3MagicWord() uint64 {
	var w uint64
	for i := len(v3Magic) - 1; i >= 0; i-- {
		w = w<<8 | uint64(v3Magic[i])
	}
	return w
}

// SaveV3 writes the index in container format v3. The v3 file is what
// OpenMapped serves in place; Load accepts it too (alongside v1/v2).
func (ix *Index) SaveV3(w io.Writer) (int64, error) {
	return saveV3(w, ix, nil)
}

// SaveV3 writes the temporal index in container format v3.
func (t *TemporalIndex) SaveV3(w io.Writer) (int64, error) {
	return saveV3(w, t.Index, t.stores)
}

type v3Section struct {
	kind  uint64
	shard uint64
	words []uint64
}

func saveV3(w io.Writer, ix *Index, stores []*tempo.Store) (int64, error) {
	var secs []v3Section
	appendSpatial := func(one *Index, shard int) {
		fw := flat.NewWriter()
		one.corpus.AppendFlatMeta(fw)
		one.core.AppendFlat(fw)
		secs = append(secs, v3Section{kind: v3KindSpatial, shard: uint64(shard), words: fw.Words()})
	}
	shardCount := uint64(0)
	if si := ix.sharded; si != nil {
		shardCount = uint64(len(si.shards))
		for s, shard := range si.shards {
			appendSpatial(shard, s)
		}
	} else {
		appendSpatial(ix, 0)
	}
	flavor := uint64(v3FlavorSpatial)
	if stores != nil {
		flavor = v3FlavorTemporal
		for s, ts := range stores {
			fw := flat.NewWriter()
			ts.AppendFlat(fw)
			secs = append(secs, v3Section{kind: v3KindTempo, shard: uint64(s), words: fw.Words()})
		}
	}

	alignUp := func(n int64) int64 { return (n + v3PageSize - 1) &^ (v3PageSize - 1) }
	tocBytes := int64(8*8) + int64(len(secs))*4*8
	offset := alignUp(tocBytes)
	toc := make([]uint64, 0, len(secs)*4)
	for _, s := range secs {
		length := int64(len(s.words)) * 8
		toc = append(toc, s.kind, s.shard, uint64(offset), uint64(length))
		offset = alignUp(offset + length)
	}
	fileSize := offset

	header := [8]uint64{
		v3MagicWord(), v3Version, flavor,
		uint64(len(secs)), uint64(fileSize), shardCount, uint64(len(stores)), 0,
	}

	bw := bufio.NewWriter(w)
	var written int64
	var pad [v3PageSize]byte
	writeWords := func(words []uint64) error {
		var buf [8]byte
		for _, v := range words {
			buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			buf[4], buf[5], buf[6], buf[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
			written += 8
		}
		return nil
	}
	padTo := func(target int64) error {
		for written < target {
			chunk := target - written
			if chunk > v3PageSize {
				chunk = v3PageSize
			}
			if _, err := bw.Write(pad[:chunk]); err != nil {
				return err
			}
			written += chunk
		}
		return nil
	}
	if err := writeWords(header[:]); err != nil {
		return written, err
	}
	if err := writeWords(toc); err != nil {
		return written, err
	}
	for i, s := range secs {
		if err := padTo(int64(toc[4*i+2])); err != nil {
			return written, err
		}
		if err := writeWords(s.words); err != nil {
			return written, err
		}
	}
	if err := padTo(fileSize); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// OpenMapped memory-maps a v3 container and returns an index whose
// structures read directly from the mapping: open cost is independent
// of index size, resident memory is whatever the kernel pages in (and
// can be evicted under pressure), and processes serving the same file
// share physical pages. The mapping lives as long as the returned
// Index is reachable; it is released by the garbage collector, so no
// Close is needed (or offered — queries may outlive any safe close
// point).
func OpenMapped(path string) (*Index, error) {
	f, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	ix, _, err := viewContainer(f.Words(), v3FlavorSpatial)
	if err != nil {
		f.Close()
		return nil, err
	}
	ix.retain(f)
	return ix, nil
}

// OpenMappedTemporal is OpenMapped for temporal (flavor 2) containers.
func OpenMappedTemporal(path string) (*TemporalIndex, error) {
	f, err := mmapfile.Open(path)
	if err != nil {
		return nil, err
	}
	ix, stores, err := viewContainer(f.Words(), v3FlavorTemporal)
	if err == nil {
		t := &TemporalIndex{Index: ix, stores: stores}
		if err = t.validateStores(); err == nil {
			ix.retain(f)
			return t, nil
		}
	}
	f.Close()
	return nil, err
}

// retain pins the mapping to the index — and to every shard, since a
// running query may hold a shard *Index without the facade.
func (ix *Index) retain(f *mmapfile.File) {
	ix.backing = f
	if ix.sharded != nil {
		for _, shard := range ix.sharded.shards {
			shard.backing = f
		}
	}
}

// Mapped reports whether the index serves from a memory-mapped v3
// container (false for heap-loaded indexes, including v3 files read
// through Load on hosts without mmap).
func (ix *Index) Mapped() bool { return ix.backing != nil && ix.backing.Mapped() }

// loadV3 reads a whole v3 stream into an aligned heap buffer and views
// it there — the non-mmap path used by Load/LoadTemporal.
func loadV3(br *bufio.Reader, flavor uint64) (*Index, []*tempo.Store, error) {
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(data)%8 != 0 {
		return nil, nil, fmt.Errorf("%w: %d bytes is not a whole number of words", ErrCorrupt, len(data))
	}
	words := make([]uint64, len(data)/8)
	if len(words) > 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), len(data)), data)
	}
	return viewContainer(words, flavor)
}

// viewContainer parses a v3 container from its word image, wrapping
// (not copying) every structure. wantFlavor distinguishes the spatial
// and temporal entry points. Every error wraps ErrCorrupt (section
// errors additionally carry their specific flat/package error).
func viewContainer(words []uint64, wantFlavor uint64) (ix *Index, stores []*tempo.Store, err error) {
	defer func() {
		if err != nil && !errors.Is(err, ErrCorrupt) {
			err = fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
	}()
	return viewContainerInner(words, wantFlavor)
}

func viewContainerInner(words []uint64, wantFlavor uint64) (*Index, []*tempo.Store, error) {
	if !flat.CanView() {
		return nil, nil, fmt.Errorf("%w: v3 containers require a little-endian host", ErrCorrupt)
	}
	if len(words) < 8 {
		return nil, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if words[0] != v3MagicWord() || words[1] != v3Version {
		return nil, nil, fmt.Errorf("%w: bad magic or version", ErrCorrupt)
	}
	flavor, nSec := words[2], words[3]
	fileSize, shardCount, storeCount := words[4], words[5], words[6]
	if flavor != wantFlavor {
		kinds := map[uint64]string{v3FlavorSpatial: "spatial", v3FlavorTemporal: "temporal"}
		return nil, nil, fmt.Errorf("%w: %s container opened as %s",
			ErrCorrupt, kinds[flavor], kinds[wantFlavor])
	}
	if fileSize != uint64(len(words))*8 || fileSize%v3PageSize != 0 {
		return nil, nil, fmt.Errorf("%w: header claims %d bytes, have %d",
			ErrCorrupt, fileSize, len(words)*8)
	}
	wantSpatial := shardCount
	if wantSpatial == 0 {
		wantSpatial = 1
	}
	wantStores := storeCount
	if flavor == v3FlavorSpatial && wantStores != 0 {
		return nil, nil, fmt.Errorf("%w: spatial container with %d timestamp stores",
			ErrCorrupt, wantStores)
	}
	if flavor == v3FlavorTemporal && wantStores == 0 {
		return nil, nil, fmt.Errorf("%w: temporal container without timestamp stores", ErrCorrupt)
	}
	// Bound every header count before any arithmetic on them: a section
	// needs at least one TOC word, so nSec (and hence shardCount and
	// storeCount) can never exceed the file's word count. Checking the
	// fields individually first keeps wantSpatial+wantStores from
	// wrapping uint64 on attacker-controlled headers.
	if nSec > uint64(len(words)) || shardCount > nSec || storeCount > nSec {
		return nil, nil, fmt.Errorf("%w: header counts (%d sections, %d shards, %d stores) exceed %d words",
			ErrCorrupt, nSec, shardCount, storeCount, len(words))
	}
	if nSec != wantSpatial+wantStores {
		return nil, nil, fmt.Errorf("%w: %d sections for %d shards + %d stores",
			ErrCorrupt, nSec, wantSpatial, wantStores)
	}
	tocEnd := 8 + 4*nSec
	if tocEnd > uint64(len(words)) {
		return nil, nil, fmt.Errorf("%w: truncated TOC", ErrCorrupt)
	}

	sectionWords := func(i uint64, wantKind, wantShard uint64) ([]uint64, error) {
		kind, shard := words[8+4*i], words[8+4*i+1]
		off, length := words[8+4*i+2], words[8+4*i+3]
		if kind != wantKind || shard != wantShard {
			return nil, fmt.Errorf("%w: TOC entry %d is (kind=%d shard=%d), want (%d, %d)",
				ErrCorrupt, i, kind, shard, wantKind, wantShard)
		}
		if off%v3PageSize != 0 || length%8 != 0 || off < tocEnd*8 ||
			off > fileSize || length > fileSize-off {
			return nil, fmt.Errorf("%w: TOC entry %d spans [%d,%d+%d) of %d bytes",
				ErrCorrupt, i, off, off, length, fileSize)
		}
		return words[off/8 : off/8+length/8], nil
	}

	shards := make([]*Index, wantSpatial)
	corpora := make([]*trajstr.Corpus, wantSpatial)
	hasLoc := false
	for s := uint64(0); s < wantSpatial; s++ {
		sw, err := sectionWords(s, v3KindSpatial, s)
		if err != nil {
			return nil, nil, err
		}
		cur := flat.NewCursor(sw)
		corpus, err := trajstr.ViewFlatMeta(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("cinct: shard %d: %w", s, err)
		}
		ci, err := core.ViewFlat(cur)
		if err != nil {
			return nil, nil, fmt.Errorf("cinct: shard %d: %w", s, err)
		}
		if cur.Remaining() != 0 {
			return nil, nil, fmt.Errorf("%w: shard %d has %d trailing words",
				ErrCorrupt, s, cur.Remaining())
		}
		if got, want := ci.Len(), corpus.TextLenFromTables(); got != want {
			return nil, nil, fmt.Errorf("%w: shard %d core holds %d symbols, tables imply %d",
				ErrCorruptIndex, s, got, want)
		}
		if got, want := ci.Sigma(), corpus.Sigma; got != want {
			return nil, nil, fmt.Errorf("%w: shard %d core alphabet %d, corpus alphabet %d",
				ErrCorruptIndex, s, got, want)
		}
		loc := ci.SampleRate() > 0
		if s > 0 && loc != hasLoc {
			return nil, nil, fmt.Errorf("%w: shards disagree on locate support", ErrCorrupt)
		}
		hasLoc = loc
		shards[s] = &Index{corpus: corpus, core: ci, hasLoc: loc}
		corpora[s] = corpus
	}

	var ix *Index
	if shardCount == 0 {
		ix = shards[0]
	} else {
		si := &ShardedIndex{shards: shards, bounds: make([]int, 1, wantSpatial+1), hasLoc: hasLoc}
		total := 0
		for _, shard := range shards {
			total += shard.corpus.NumTrajectories()
			si.bounds = append(si.bounds, total)
		}
		si.edges = trajstr.CountDistinctEdges(corpora)
		ix = &Index{sharded: si, hasLoc: hasLoc}
	}

	var stores []*tempo.Store
	if wantStores > 0 {
		stores = make([]*tempo.Store, wantStores)
		for s := uint64(0); s < wantStores; s++ {
			sw, err := sectionWords(wantSpatial+s, v3KindTempo, s)
			if err != nil {
				return nil, nil, err
			}
			cur := flat.NewCursor(sw)
			ts, err := tempo.ViewFlat(cur)
			if err != nil {
				return nil, nil, fmt.Errorf("cinct: timestamp store %d: %w", s, err)
			}
			if cur.Remaining() != 0 {
				return nil, nil, fmt.Errorf("%w: store %d has %d trailing words",
					ErrCorrupt, s, cur.Remaining())
			}
			stores[s] = ts
		}
	}
	return ix, stores, nil
}
