package cinct

import (
	"reflect"
	"testing"

	"cinct/internal/trajgen"
)

// TestShardedFindLimitMatchesMonolithic is the regression test for the
// sharded fan-out's limit semantics: for every shard count and every
// limit, Find must return exactly the monolithic index's first-K
// matches in canonical (Trajectory, Offset) order — the limit is
// applied after the global merge, never per shard.
func TestShardedFindLimitMatchesMonolithic(t *testing.T) {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 240, MeanLen: 18, Seed: 97}
	trajs := trajgen.Singapore2(cfg).Trajs
	mono, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Use paths with many occurrences spread over the whole ID space,
	// so per-shard results are non-trivial for every shard.
	var paths [][]uint32
	for k := 0; k < 24; k++ {
		tr := trajs[(k*11)%len(trajs)]
		m := 1 + k%3
		if m > len(tr) {
			m = len(tr)
		}
		paths = append(paths, tr[:m])
	}

	for _, shards := range []int{2, 3, 5, 8} {
		opts := DefaultOptions()
		opts.Shards = shards
		sharded, err := Build(trajs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range paths {
			all, err := mono.Find(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, limit := range []int{0, 1, 2, 3, 5, 17, len(all), len(all) + 3} {
				want, err := mono.Find(path, limit)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.Find(path, limit)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d Find(%v, %d) = %v, want %v",
						shards, path, limit, got, want)
				}
				// The limited answer must be the prefix of the full one.
				if limit > 0 && len(want) > limit {
					t.Fatalf("monolithic Find returned %d matches for limit %d", len(want), limit)
				}
				wantIDs, err := mono.FindTrajectories(path, limit)
				if err != nil {
					t.Fatal(err)
				}
				gotIDs, err := sharded.FindTrajectories(path, limit)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotIDs, wantIDs) {
					t.Fatalf("shards=%d FindTrajectories(%v, %d) = %v, want %v",
						shards, path, limit, gotIDs, wantIDs)
				}
			}
		}
	}
}
