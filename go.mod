module cinct

go 1.24
