// Package cinct is a compressed self-index for network-constrained
// trajectories (NCTs), reproducing "CiNCT: Compression and Retrieval
// for Massive Vehicular Trajectories via Relative Movement Labeling"
// (Koide, Tadokoro, Xiao, Ishikawa — ICDE 2018).
//
// An Index stores a corpus of trajectories — each a sequence of road
// edge IDs — in entropy-compressed form while answering, without
// decompressing the corpus:
//
//   - Count / Find: how many times (and where) does a given path occur?
//   - Trajectory: reconstruct any stored trajectory;
//   - SubPath: decompress an arbitrary slice of a stored trajectory.
//
// The compression exploits the sparsity of road networks: a vehicle on
// edge w can move to only a handful of next edges, so re-labeling each
// BWT symbol by the rank of its transition (relative movement labeling)
// yields a tiny-alphabet, low-entropy sequence whose Huffman-shaped
// wavelet tree is both smaller and faster than any general-purpose
// FM-index over raw edge IDs.
//
// Basic usage:
//
//	ix, err := cinct.Build(trajs, nil)
//	n := ix.Count([]uint32{e1, e2, e3})  // trajectories passing e1→e2→e3
//	hits := ix.Find([]uint32{e1, e2, e3}, 10)
//	full := ix.Trajectory(hits[0].Trajectory)
//
// Count, Find, FindTrajectories and the temporal interval queries are
// thin wrappers over the unified streaming form — one Query descriptor
// executed by Search, which yields hits lazily in canonical order,
// honors context cancellation, and resumes from opaque cursors:
//
//	res, _ := ix.Search(ctx, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 10})
//	for hit, err := range res.All() { ... }
//	token := res.Cursor() // resume the exact suffix in a later Search
//
// # Sharding
//
// For massive corpora the index can be partitioned into K independent
// shards (Options.Shards, or BuildSharded): trajectories are split
// into K contiguous ranges balanced by edge count, each range gets its
// own complete CiNCT index, the K indexes are built concurrently, and
// every query fans out over the shards in parallel with results merged
// under global trajectory IDs. Query answers are identical to the
// unsharded index over the same corpus; build time on a multi-core
// machine approaches 1/K of the monolithic build. Save/Load handle
// both the single-index and the sharded container format
// transparently.
package cinct

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"cinct/internal/core"
	"cinct/internal/etgraph"
	"cinct/internal/mmapfile"
	"cinct/internal/trajstr"
	"cinct/internal/wavelet"
)

// Options tunes index construction. The zero value is NOT valid; use
// DefaultOptions or pass nil to Build.
type Options struct {
	// Block is the RRR block size b ∈ {15, 31, 63} (§III-C2). Larger
	// compresses better and searches slightly slower; the paper shows
	// CiNCT is nearly insensitive to it. 0 means 63.
	Block int
	// Uncompressed stores plain bit vectors instead of RRR (mainly for
	// ablation).
	Uncompressed bool
	// RandomLabeling uses randomly shuffled RML labels instead of the
	// optimal bigram-sorted strategy (the Fig. 14 ablation).
	RandomLabeling bool
	// Seed drives RandomLabeling.
	Seed int64
	// SampleRate is the suffix-array sampling rate for Find/Trajectory/
	// SubPath (locate support). 0 disables locate: the index only
	// counts. Default 64.
	SampleRate int
	// Shards partitions the corpus into this many independently built
	// and queried sub-indexes (see the package-level Sharding section).
	// 0 or 1 builds the classic monolithic index; values above the
	// trajectory count are clamped. BuildSharded treats 0 as
	// runtime.GOMAXPROCS(0).
	Shards int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() *Options {
	return &Options{Block: 63, SampleRate: 64}
}

func (o *Options) coreOptions() core.Options {
	// Normalize the Block default in one place so the zero value never
	// reaches the spec constructor.
	block := o.Block
	if block == 0 {
		block = 63
	}
	spec := wavelet.RRRSpec(block)
	if o.Uncompressed {
		spec = wavelet.PlainSpec
	}
	strat := etgraph.BigramSorted
	if o.RandomLabeling {
		strat = etgraph.RandomShuffle
	}
	return core.Options{Spec: spec, Strategy: strat, Seed: o.Seed, SASample: o.SampleRate}
}

// Index is a compressed, searchable trajectory corpus. An Index is
// immutable after Build/Load and safe for concurrent use by multiple
// goroutines.
//
// An Index is either monolithic (one core self-index over the whole
// corpus) or a facade over a ShardedIndex; the query API behaves
// identically in both cases.
type Index struct {
	sharded *ShardedIndex // non-nil iff built with Shards > 1

	corpus *trajstr.Corpus
	core   *core.Index
	hasLoc bool

	// backing pins the memory-mapped v3 container this index reads
	// from (nil for heap-loaded indexes). The mapping is released by
	// the garbage collector once the index is unreachable.
	backing *mmapfile.File
}

// Match is one occurrence of a query path.
type Match struct {
	// Trajectory is the ID (build-order position) of the matching
	// trajectory.
	Trajectory int
	// Offset is the 0-based position within the trajectory (in travel
	// order) where the path starts.
	Offset int
}

// ErrNoLocate is returned by operations that need locate support on an
// index built with SampleRate == 0.
var ErrNoLocate = errors.New("cinct: index built without locate support (SampleRate = 0)")

// Build indexes a corpus. Each trajectory is a non-empty sequence of
// road edge IDs in travel order; IDs need not be dense. opts may be
// nil for defaults. With Options.Shards > 1 the returned Index is
// transparently backed by a ShardedIndex (see Sharded).
func Build(trajs [][]uint32, opts *Options) (*Index, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if opts.Shards > 1 {
		si, err := buildSharded(trajs, opts, opts.Shards)
		if err != nil {
			return nil, err
		}
		return &Index{sharded: si, hasLoc: si.hasLoc}, nil
	}
	corpus, err := trajstr.New(trajs)
	if err != nil {
		return nil, err
	}
	return buildOne(corpus, opts), nil
}

func validateOptions(opts *Options) error {
	switch opts.Block {
	case 0, 15, 31, 63:
	default:
		return fmt.Errorf("cinct: Block must be 15, 31 or 63; got %d", opts.Block)
	}
	if opts.SampleRate < 0 {
		return fmt.Errorf("cinct: SampleRate must be >= 0; got %d", opts.SampleRate)
	}
	if opts.Shards < 0 {
		return fmt.Errorf("cinct: Shards must be >= 0; got %d", opts.Shards)
	}
	return nil
}

// buildOne builds a monolithic index over one (already encoded)
// corpus. It is the unit of work of the sharded build: each shard is a
// buildOne over its partition.
func buildOne(corpus *trajstr.Corpus, opts *Options) *Index {
	co := opts.coreOptions()
	ix := &Index{
		corpus: corpus,
		core:   core.Build(corpus.Text, corpus.Sigma, co),
		hasLoc: co.SASample > 0,
	}
	// The corpus text is recoverable from the self-index; drop it so
	// the resident footprint is the compressed structures only.
	if ix.hasLoc {
		ix.corpus.Text = nil
	}
	return ix
}

// Sharded returns the backing ShardedIndex when the index was built or
// loaded with more than one shard, and nil for a monolithic index.
func (ix *Index) Sharded() *ShardedIndex { return ix.sharded }

// Shards returns the number of corpus partitions (1 for a monolithic
// index).
func (ix *Index) Shards() int {
	if ix.sharded != nil {
		return len(ix.sharded.shards)
	}
	return 1
}

// NumTrajectories returns the number of indexed trajectories.
func (ix *Index) NumTrajectories() int {
	if ix.sharded != nil {
		return ix.sharded.NumTrajectories()
	}
	return ix.corpus.NumTrajectories()
}

// NumEdges returns the number of distinct road edges in the corpus.
func (ix *Index) NumEdges() int {
	if ix.sharded != nil {
		return ix.sharded.NumEdges()
	}
	return ix.corpus.NumEdges()
}

// Len returns the total symbol count |T| of the underlying trajectory
// string (edges + separators). A sharded index has one terminator per
// shard, so its Len exceeds the monolithic index of the same corpus by
// Shards()-1.
func (ix *Index) Len() int {
	if ix.sharded != nil {
		return ix.sharded.Len()
	}
	return ix.core.Len()
}

// Count returns the number of occurrences of the path (edge IDs in
// travel order) across the corpus. A trajectory that traverses the
// path twice contributes two. An empty path returns 0.
//
// Count is the legacy form of Search with Kind CountOnly; new code
// should prefer Search, which adds context cancellation.
func (ix *Index) Count(path []uint32) int {
	r, err := ix.Search(context.Background(), Query{Path: path, Kind: CountOnly})
	if err != nil {
		// A CountOnly query over a background context fails only when
		// a corrupt mapped index panics under the backward search.
		return 0
	}
	n, _ := r.Count()
	return n
}

// countOne answers a count against one monolithic index — the
// O(|path|) backward search of the paper, the per-shard unit of
// Search's CountOnly fan-out.
func (ix *Index) countOne(path []uint32) int {
	if len(path) == 0 {
		return 0
	}
	pat, ok := ix.corpus.ReversedPattern(path)
	if !ok {
		return 0
	}
	return int(ix.core.Count(pat))
}

// Find returns up to limit occurrences of the path (limit <= 0 means
// all). The same trajectory appears once per occurrence. Matches are
// sorted by (Trajectory, Offset), and a positive limit keeps the
// first limit matches in that order — so answers are identical
// whether the index is sharded or not. Every occurrence in the suffix
// range is still located; the limit bounds the materialized result,
// not the locate scan. Requires locate support.
//
// Find is the legacy form of Search with Kind Occurrences; new code
// should prefer Search, which streams hits lazily, honors context
// cancellation, and supports cursor-based resumption.
func (ix *Index) Find(path []uint32, limit int) ([]Match, error) {
	if limit < 0 {
		limit = 0
	}
	r, err := ix.Search(context.Background(), Query{Path: path, Kind: Occurrences, Limit: limit})
	if err != nil {
		return nil, err
	}
	var out []Match
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		out = append(out, h.Match)
	}
	return out, nil
}

// locateOccurrences enumerates every occurrence of path in a
// monolithic index, calling visit(trajectory, travel-order offset) in
// suffix-range (i.e. unspecified) order, checking ctx periodically so
// a cancelled query stops scanning. It is the one locate loop behind
// every Search kind, so the pattern-reversal and offset arithmetic
// cannot drift between the spatial and temporal answers. LF-walk work
// accumulates into st. Requires locate support.
func (ix *Index) locateOccurrences(ctx context.Context, path []uint32, st *QueryStats, visit func(doc, offset int)) error {
	if !ix.hasLoc {
		return ErrNoLocate
	}
	if len(path) == 0 {
		return nil
	}
	pat, ok := ix.corpus.ReversedPattern(path)
	if !ok {
		return nil
	}
	sp, ep, ok := ix.core.SuffixRange(pat)
	if !ok {
		return nil
	}
	for j := sp; j < ep; j++ {
		if (j-sp)&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		pos, lf := ix.core.LocateSteps(j)
		st.LFSteps += lf
		doc, endOff, inDoc := ix.docAt(pos)
		if !inDoc {
			continue
		}
		// pos holds the path's last edge; the match starts m-1 earlier
		// in travel order.
		visit(doc, endOff-(len(path)-1))
	}
	return nil
}

// sortMatches orders matches by matchLess — the canonical order every
// query path promises, and the one that lets sharded results merge by
// concatenation (shards hold contiguous global ID ranges).
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool { return matchLess(ms[i], ms[j]) })
}

// docAt maps a text position to (trajectory, travel-order offset)
// without the corpus text (which Build dropped): it relies only on the
// document start/length tables.
func (ix *Index) docAt(pos int64) (doc, offset int, ok bool) {
	return ix.corpus.DocAtByTables(int(pos))
}

// FindTrajectories returns the IDs of up to limit *distinct*
// trajectories containing the path (limit <= 0 means all), in
// ascending order. Unlike Find, a trajectory traversing the path
// several times appears once. Requires locate support.
//
// FindTrajectories is the legacy form of Search with Kind
// Trajectories; new code should prefer Search.
func (ix *Index) FindTrajectories(path []uint32, limit int) ([]int, error) {
	if limit < 0 {
		limit = 0
	}
	r, err := ix.Search(context.Background(), Query{Path: path, Kind: Trajectories, Limit: limit})
	if err != nil {
		return nil, err
	}
	ids := make([]int, 0)
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		ids = append(ids, h.Trajectory)
	}
	return ids, nil
}

// Trajectory reconstructs trajectory id (0 <= id < NumTrajectories) in
// travel order from the compressed index alone. Requires locate
// support.
func (ix *Index) Trajectory(id int) ([]uint32, error) {
	return ix.SubPath(id, 0, ix.TrajectoryLen(id))
}

// TrajectoryLen returns the length (edge count) of trajectory id.
func (ix *Index) TrajectoryLen(id int) int {
	if ix.sharded != nil {
		return ix.sharded.TrajectoryLen(id)
	}
	return ix.corpus.TrajectoryLen(id)
}

// SubPath extracts edges [from, to) of trajectory id in travel order —
// the paper's sub-path extraction query (§IV-C) lifted to trajectory
// coordinates. Requires locate support.
func (ix *Index) SubPath(id, from, to int) ([]uint32, error) {
	if ix.sharded != nil {
		return ix.sharded.SubPath(id, from, to)
	}
	if !ix.hasLoc {
		return nil, ErrNoLocate
	}
	ln := ix.corpus.TrajectoryLen(id) // panics on bad id, as documented
	if from < 0 || to > ln || from > to {
		return nil, fmt.Errorf("cinct: SubPath[%d,%d) out of range [0,%d)", from, to, ln)
	}
	if from == to {
		return nil, nil
	}
	// Trajectory id occupies text [start, start+ln) storing the
	// *reversed* edges; travel offsets [from, to) map to text
	// [start+ln-to, start+ln-from).
	start := int64(ix.corpus.DocStart(id))
	a := start + int64(ln-to)
	b := start + int64(ln-from)
	var out []uint32
	if err := containCorrupt(func() error {
		syms := ix.core.ExtractRange(a, b)
		out = make([]uint32, len(syms))
		for i, s := range syms {
			out[len(syms)-1-i] = ix.corpus.EdgeFor(s)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats summarizes the index. The JSON tags define the wire form the
// cinctd daemon serves under /v1/indexes.
type Stats struct {
	// Shards is the number of corpus partitions (1 when monolithic).
	Shards int `json:"shards"`
	// Trajectories and Edges describe the corpus.
	Trajectories int `json:"trajectories"`
	Edges        int `json:"edges"`
	// TextLen is |T|.
	TextLen int `json:"textLen"`
	// MaxLabel is the labeled-BWT alphabet size (max ET-graph
	// out-degree).
	MaxLabel int `json:"maxLabel"`
	// ETGraphEdges is |E_T|.
	ETGraphEdges int `json:"etGraphEdges"`
	// AvgOutDegree is d̄ of the ET-graph (Table III).
	AvgOutDegree float64 `json:"avgOutDegree"`
	// LabelEntropy is H0 of the RML-labeled BWT in bits per symbol —
	// the paper's headline statistic (Table III's H0(φ) column).
	LabelEntropy float64 `json:"labelEntropy"`
	// SizeBits breaks down the footprint.
	WaveletBits int `json:"waveletBits"`
	GraphBits   int `json:"graphBits"`
	CArrayBits  int `json:"cArrayBits"`
	LocateBits  int `json:"locateBits"`
	// BitsPerSymbol is the paper's headline size metric (with
	// ET-graph, without locate structures).
	BitsPerSymbol float64 `json:"bitsPerSymbol"`
}

// Stats reports size and shape statistics. On a sharded index the
// breakdown aggregates over shards: sizes and counts sum, MaxLabel is
// the max, LabelEntropy and AvgOutDegree are corpus-weighted averages.
func (ix *Index) Stats() Stats {
	if ix.sharded != nil {
		return ix.sharded.Stats()
	}
	s := ix.core.Sizes()
	g := ix.core.Graph()
	return Stats{
		Shards:        1,
		Trajectories:  ix.corpus.NumTrajectories(),
		Edges:         ix.corpus.NumEdges(),
		TextLen:       ix.core.Len(),
		MaxLabel:      ix.core.MaxLabel(),
		ETGraphEdges:  g.NumEdges(),
		AvgOutDegree:  g.AvgOutDegree(),
		LabelEntropy:  ix.core.LabelEntropy(),
		WaveletBits:   s.LabeledWT,
		GraphBits:     s.ETGraph,
		CArrayBits:    s.CArray,
		LocateBits:    s.Locate,
		BitsPerSymbol: ix.core.BitsPerSymbol(true),
	}
}

// Save writes the index to w; Load reads it back. A monolithic index
// writes the corpus metadata (edge map, document table) followed by
// the compressed core index; a sharded index writes the shard
// container format (see ShardedIndex.Save).
func (ix *Index) Save(w io.Writer) (int64, error) {
	if ix.sharded != nil {
		return ix.sharded.Save(w)
	}
	return ix.saveOne(w)
}

// saveOne writes the single-index (seed v1) format.
func (ix *Index) saveOne(w io.Writer) (int64, error) {
	n1, err := ix.corpus.SaveMeta(w)
	if err != nil {
		return n1, err
	}
	n2, err := ix.core.Save(w)
	return n1 + n2, err
}

// Load reads an index written by Save or SaveV3 — any format: the
// sharded and v3 containers are recognized by their magics, anything
// else is parsed as the original single-index layout.
func Load(r io.Reader) (*Index, error) {
	// One shared buffered reader: the sub-loaders each call
	// bufio.NewReader, which returns this same object rather than
	// wrapping again — so no bytes are lost to read-ahead.
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(v3Magic)); err == nil && isV3Magic(magic) {
		ix, _, err := loadV3(br, v3FlavorSpatial)
		return ix, err
	}
	if magic, err := br.Peek(len(shardMagic)); err == nil && string(magic) == shardMagic {
		si, err := LoadSharded(br)
		if err != nil {
			return nil, err
		}
		return &Index{sharded: si, hasLoc: si.hasLoc}, nil
	}
	return loadOne(br)
}

// ErrCorruptIndex reports an index stream whose corpus metadata and
// compressed core disagree — each half parsed, but pairing them would
// let a query walk out of bounds.
var ErrCorruptIndex = errors.New("cinct: corpus metadata inconsistent with core index")

// loadOne reads the single-index (seed v1) format and cross-validates
// the halves: the document tables must describe exactly the text the
// core index was built over, so shape corruption fails the load
// instead of panicking inside a query.
func loadOne(br *bufio.Reader) (*Index, error) {
	corpus, err := trajstr.LoadMeta(br)
	if err != nil {
		return nil, err
	}
	ci, err := core.Load(br)
	if err != nil {
		return nil, err
	}
	if got, want := ci.Len(), corpus.TextLenFromTables(); got != want {
		return nil, fmt.Errorf("%w: core holds %d symbols, document tables imply %d",
			ErrCorruptIndex, got, want)
	}
	if got, want := ci.Sigma(), corpus.Sigma; got != want {
		return nil, fmt.Errorf("%w: core alphabet %d, corpus alphabet %d",
			ErrCorruptIndex, got, want)
	}
	return &Index{corpus: corpus, core: ci, hasLoc: ci.SampleRate() > 0}, nil
}
