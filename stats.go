package cinct

import "fmt"

// QueryStats is the cost account of one executed Search: every counter
// is a unit of work the paper's complexity analysis prices — LF-mapping
// steps bound locate cost, varint decodes bound timestamp-probe cost —
// so the serving layers can meter, log and admission-control queries by
// the work they actually performed rather than by wall clock alone.
//
// Counters accumulate per search unit (shard or delta snapshot) on
// plain fields: each unit is touched by exactly one goroutine during
// the parallel collect/count phase and only by the single merge
// goroutine afterwards, so no atomics are needed and the hot path stays
// allocation-free. Read the aggregate with Results.Stats.
type QueryStats struct {
	// LFSteps counts LF-mapping steps spent in SA-sample locate walks
	// (at most SampleRate per occurrence).
	LFSteps int64 `json:"lfSteps"`
	// DecodeSteps counts timestamp varint decodes spent in interval
	// probes (at most tempo.BlockSize per probe; delta probes count 1).
	DecodeSteps int64 `json:"decodeSteps"`
	// ShardsProbed counts search units whose locate or count phase ran;
	// ShardsSkipped counts units dismissed without any index work
	// because the resume cursor already lies past their ID range.
	ShardsProbed  int64 `json:"shardsProbed"`
	ShardsSkipped int64 `json:"shardsSkipped"`
	// SummaryPruned counts candidate occurrences rejected by the
	// per-trajectory (min, max) timestamp summary — matches dismissed
	// without touching the compressed timestamp columns.
	SummaryPruned int64 `json:"summaryPruned"`
	// CandidateRows counts occurrences retained as merge candidates
	// after cursor skipping, summary pruning and limit bounding.
	CandidateRows int64 `json:"candidateRows"`
	// DeltaRows counts uncompressed delta trajectories brute-scanned.
	DeltaRows int64 `json:"deltaRows"`
	// HitsEmitted counts hits actually yielded through Results.All.
	HitsEmitted int64 `json:"hitsEmitted"`
}

// add folds o into s.
func (s *QueryStats) add(o QueryStats) {
	s.LFSteps += o.LFSteps
	s.DecodeSteps += o.DecodeSteps
	s.ShardsProbed += o.ShardsProbed
	s.ShardsSkipped += o.ShardsSkipped
	s.SummaryPruned += o.SummaryPruned
	s.CandidateRows += o.CandidateRows
	s.DeltaRows += o.DeltaRows
	s.HitsEmitted += o.HitsEmitted
}

// Cost collapses the account into one scalar — the total decode-side
// work (LF steps, varint decodes, delta rows scanned) — the currency
// the engine's cost histogram and slow-query log report.
func (s QueryStats) Cost() int64 {
	return s.LFSteps + s.DecodeSteps + s.DeltaRows
}

// String renders the account in the fixed key=value form the
// slow-query log emits.
func (s QueryStats) String() string {
	return fmt.Sprintf("lf=%d decode=%d shards=%d skipped=%d pruned=%d cands=%d delta=%d hits=%d",
		s.LFSteps, s.DecodeSteps, s.ShardsProbed, s.ShardsSkipped,
		s.SummaryPruned, s.CandidateRows, s.DeltaRows, s.HitsEmitted)
}

// Stats returns the work account accumulated so far: complete after
// the stream is drained (or immediately for CountOnly queries), a
// snapshot of the work done to date while iteration is still in
// flight. Like the Results it reads through, it is not safe for use
// concurrent with All or Count.
func (r *Results) Stats() QueryStats {
	var s QueryStats
	for _, u := range r.units {
		s.add(u.st)
	}
	s.HitsEmitted = int64(r.n)
	return s
}
