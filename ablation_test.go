package cinct

// Ablation benchmarks for the design choices DESIGN.md calls out:
// RRR block size b (the paper's only tuning knob, §III-C2), the SA
// sample rate behind locate (a library extension, so the paper has no
// figure for it), and compressed vs uncompressed wavelet bit vectors.

import (
	"fmt"
	"testing"

	"cinct/internal/trajgen"
)

func ablationCorpus(b *testing.B) [][]uint32 {
	b.Helper()
	cfg := trajgen.Config{GridW: 14, GridH: 14, NumTrajs: 4000, MeanLen: 40, Seed: 77}
	return trajgen.Singapore2(cfg).Trajs
}

// BenchmarkAblationBlockSize sweeps b ∈ {15, 31, 63}: compression
// improves and search slows slightly with b — the paper's Fig. 10
// shows CiNCT nearly flat on both axes.
func BenchmarkAblationBlockSize(b *testing.B) {
	trajs := ablationCorpus(b)
	for _, block := range []int{15, 31, 63} {
		opts := DefaultOptions()
		opts.Block = block
		ix, err := Build(trajs, opts)
		if err != nil {
			b.Fatal(err)
		}
		path := trajs[0][:10]
		b.Run(fmt.Sprintf("b%d", block), func(b *testing.B) {
			b.ReportMetric(ix.Stats().BitsPerSymbol, "bits/sym")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Count(path)
			}
		})
	}
}

// BenchmarkAblationUncompressed compares RRR against plain bit vectors
// inside the HWT (speed floor vs size).
func BenchmarkAblationUncompressed(b *testing.B) {
	trajs := ablationCorpus(b)
	for _, unc := range []bool{false, true} {
		opts := DefaultOptions()
		opts.Uncompressed = unc
		ix, err := Build(trajs, opts)
		if err != nil {
			b.Fatal(err)
		}
		path := trajs[0][:10]
		name := "rrr63"
		if unc {
			name = "plain"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(ix.Stats().BitsPerSymbol, "bits/sym")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Count(path)
			}
		})
	}
}

// BenchmarkAblationSampleRate sweeps the locate sampling rate: Find
// walks at most rate LF steps per hit, so latency grows and space
// shrinks with the rate.
func BenchmarkAblationSampleRate(b *testing.B) {
	trajs := ablationCorpus(b)
	for _, rate := range []int{16, 64, 256} {
		opts := DefaultOptions()
		opts.SampleRate = rate
		ix, err := Build(trajs, opts)
		if err != nil {
			b.Fatal(err)
		}
		path := trajs[0][:6]
		b.Run(fmt.Sprintf("rate%d", rate), func(b *testing.B) {
			s := ix.Stats()
			b.ReportMetric(float64(s.LocateBits)/float64(s.TextLen), "locate-bits/sym")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Find(path, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRandomLabeling quantifies Theorem 3's practical
// value: random labels cost both bits and time.
func BenchmarkAblationRandomLabeling(b *testing.B) {
	trajs := ablationCorpus(b)
	for _, random := range []bool{false, true} {
		opts := DefaultOptions()
		opts.RandomLabeling = random
		opts.Seed = 5
		ix, err := Build(trajs, opts)
		if err != nil {
			b.Fatal(err)
		}
		path := trajs[0][:10]
		name := "bigram"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(ix.Stats().BitsPerSymbol, "bits/sym")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Count(path)
			}
		})
	}
}
