package cinct

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"cinct/internal/tempo"
	"cinct/internal/trajgen"
)

// bruteMatches is the Search ground truth computed straight off the
// corpus: every (trajectory, offset) where path occurs, canonically
// ordered by construction.
func bruteMatches(trajs [][]uint32, path []uint32) []Match {
	var out []Match
	if len(path) == 0 {
		return out
	}
	for k, tr := range trajs {
		for off := 0; off+len(path) <= len(tr); off++ {
			ok := true
			for i := range path {
				if tr[off+i] != path[i] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, Match{Trajectory: k, Offset: off})
			}
		}
	}
	return out
}

// drain collects a Results stream.
func drain(t *testing.T, r *Results) []Hit {
	t.Helper()
	var out []Hit
	for h, err := range r.All() {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		out = append(out, h)
	}
	return out
}

func searchHits(t *testing.T, ix *Index, q Query) []Hit {
	t.Helper()
	r, err := ix.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("Search(%+v): %v", q, err)
	}
	return drain(t, r)
}

// TestSearchDifferential pins every Query kind against a brute-force
// corpus scan, over monolithic and sharded indexes and the full limit
// matrix — the acceptance property that all legacy operations are
// expressible as Query values.
func TestSearchDifferential(t *testing.T) {
	trajs := shardedTestCorpus(t)
	ctx := context.Background()
	for _, shards := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Shards = shards
		ix, err := Build(trajs, opts)
		if err != nil {
			t.Fatal(err)
		}
		for qi, path := range queryPaths(trajs) {
			want := bruteMatches(trajs, path)
			wantIDs := []int{}
			for _, m := range want {
				if len(wantIDs) == 0 || wantIDs[len(wantIDs)-1] != m.Trajectory {
					wantIDs = append(wantIDs, m.Trajectory)
				}
			}
			// CountOnly must equal the occurrence total.
			r, err := ix.Search(ctx, Query{Path: path, Kind: CountOnly})
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := r.Count(); n != len(want) {
				t.Fatalf("shards=%d q%d: CountOnly = %d, brute force %d", shards, qi, n, len(want))
			}
			for _, limit := range []int{0, 1, 3, 10, 1 << 20} {
				hits := searchHits(t, ix, Query{Path: path, Kind: Occurrences, Limit: limit})
				exp := want
				if limit > 0 && len(exp) > limit {
					exp = exp[:limit]
				}
				if len(hits) != len(exp) {
					t.Fatalf("shards=%d q%d limit=%d: %d hits, want %d", shards, qi, limit, len(hits), len(exp))
				}
				for i := range hits {
					if hits[i].Match != exp[i] {
						t.Fatalf("shards=%d q%d limit=%d: hit %d = %+v, want %+v",
							shards, qi, limit, i, hits[i].Match, exp[i])
					}
				}
				tids := searchHits(t, ix, Query{Path: path, Kind: Trajectories, Limit: limit})
				expIDs := wantIDs
				if limit > 0 && len(expIDs) > limit {
					expIDs = expIDs[:limit]
				}
				if len(tids) != len(expIDs) {
					t.Fatalf("shards=%d q%d limit=%d: %d trajectories, want %d",
						shards, qi, limit, len(tids), len(expIDs))
				}
				for i := range tids {
					if tids[i].Trajectory != expIDs[i] || tids[i].Offset != -1 {
						t.Fatalf("shards=%d q%d limit=%d: trajectory hit %d = %+v, want id %d offset -1",
							shards, qi, limit, i, tids[i], expIDs[i])
					}
				}
			}
		}
	}
}

// TestSearchTemporalDifferential pins interval-constrained Search
// (all three kinds) against brute force over monolithic and sharded
// temporal indexes.
func TestSearchTemporalDifferential(t *testing.T) {
	trajs, times := timedCorpus(5)
	ctx := context.Background()
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatal(err)
		}
		for qi, path := range queryPaths(trajs) {
			all := bruteMatches(trajs, path)
			for ii, iv := range testIntervals(times) {
				var want []Hit
				var wantIDs []Hit
				for _, m := range all {
					at := times[m.Trajectory][m.Offset]
					if at < iv[0] || at > iv[1] {
						continue
					}
					want = append(want, Hit{Match: m, EnteredAt: at})
					if len(wantIDs) == 0 || wantIDs[len(wantIDs)-1].Trajectory != m.Trajectory {
						wantIDs = append(wantIDs, Hit{Match: Match{Trajectory: m.Trajectory, Offset: -1}, EnteredAt: at})
					}
				}
				q := Query{Path: path, Interval: &Interval{From: iv[0], To: iv[1]}}
				r, err := tix.Search(ctx, Query{Path: q.Path, Interval: q.Interval, Kind: CountOnly})
				if err != nil {
					t.Fatal(err)
				}
				if n, _ := r.Count(); n != len(want) {
					t.Fatalf("shards=%d q%d iv%d: CountOnly = %d, brute force %d", shards, qi, ii, n, len(want))
				}
				for _, limit := range []int{0, 1, 4} {
					rq := q
					rq.Kind, rq.Limit = Occurrences, limit
					res, err := tix.Search(ctx, rq)
					if err != nil {
						t.Fatal(err)
					}
					hits := drain(t, res)
					exp := want
					if limit > 0 && len(exp) > limit {
						exp = exp[:limit]
					}
					if len(hits) != len(exp) {
						t.Fatalf("shards=%d q%d iv%d limit=%d: %d hits, want %d",
							shards, qi, ii, limit, len(hits), len(exp))
					}
					for i := range hits {
						if hits[i] != exp[i] {
							t.Fatalf("shards=%d q%d iv%d limit=%d: hit %d = %+v, want %+v",
								shards, qi, ii, limit, i, hits[i], exp[i])
						}
					}
					rq.Kind = Trajectories
					res, err = tix.Search(ctx, rq)
					if err != nil {
						t.Fatal(err)
					}
					tids := drain(t, res)
					expIDs := wantIDs
					if limit > 0 && len(expIDs) > limit {
						expIDs = expIDs[:limit]
					}
					if len(tids) != len(expIDs) {
						t.Fatalf("shards=%d q%d iv%d limit=%d: %d trajectories, want %d",
							shards, qi, ii, limit, len(tids), len(expIDs))
					}
					for i := range tids {
						if tids[i] != expIDs[i] {
							t.Fatalf("shards=%d q%d iv%d limit=%d: trajectory hit %d = %+v, want %+v",
								shards, qi, ii, limit, i, tids[i], expIDs[i])
						}
					}
				}
			}
		}
	}
}

// TestSearchLimitRule pins the unified limit semantics at the library
// layer: 0 means unlimited, negative is ErrBadQuery — for every kind,
// spatial and temporal.
func TestSearchLimitRule(t *testing.T) {
	trajs, times := timedCorpus(9)
	tix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := trajs[0][:2]
	for _, kind := range []Kind{Occurrences, Trajectories, CountOnly} {
		if _, err := tix.Search(ctx, Query{Path: path, Kind: kind, Limit: -1}); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("kind %v limit -1: err = %v, want ErrBadQuery", kind, err)
		}
		iv := &Interval{From: 0, To: 1 << 60}
		if _, err := tix.Search(ctx, Query{Path: path, Interval: iv, Kind: kind, Limit: -1}); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("kind %v interval limit -1: err = %v, want ErrBadQuery", kind, err)
		}
	}
	// Limit 0 returns everything.
	want := bruteMatches(trajs, path)
	hits := searchHits(t, tix.Index, Query{Path: path, Kind: Occurrences, Limit: 0})
	if len(hits) != len(want) {
		t.Fatalf("limit 0 returned %d hits, want all %d", len(hits), len(want))
	}
	// Unknown kind is rejected too.
	if _, err := tix.Search(ctx, Query{Path: path, Kind: Kind(99)}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("unknown kind: err = %v, want ErrBadQuery", err)
	}
	// Interval queries against a spatial-only index are refused.
	if _, err := tix.Index.Search(ctx, Query{Path: path, Interval: &Interval{From: 0, To: 1}}); !errors.Is(err, ErrNoTimestamps) {
		t.Fatalf("interval on spatial index: err = %v, want ErrNoTimestamps", err)
	}
}

// TestSearchCursorResume pins the paging contract: following cursors
// page by page reproduces the unpaged stream exactly, for every kind,
// spatial and temporal, monolithic and sharded; and a cursor taken
// mid-iteration resumes with the exact suffix.
func TestSearchCursorResume(t *testing.T) {
	trajs, times := timedCorpus(13)
	ctx := context.Background()
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := times[4][0]-2000, times[4][0]+8000
		queries := []Query{
			{Path: trajs[4][:2], Kind: Occurrences},
			{Path: trajs[4][:2], Kind: Trajectories},
			{Path: trajs[4][:2], Interval: &Interval{From: lo, To: hi}, Kind: Occurrences},
			{Path: trajs[4][:2], Interval: &Interval{From: lo, To: hi}, Kind: Trajectories},
		}
		for qi, q := range queries {
			res, err := tix.Search(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			full := drain(t, res)
			if res.Cursor() != "" {
				t.Fatalf("shards=%d q%d: exhausted stream still hands out a cursor", shards, qi)
			}
			// Page through with cursors at several page sizes.
			for _, pageSize := range []int{1, 2, 3} {
				var paged []Hit
				cursor := ""
				for page := 0; ; page++ {
					pq := q
					pq.Limit, pq.Cursor = pageSize, cursor
					r, err := tix.Search(ctx, pq)
					if err != nil {
						t.Fatal(err)
					}
					hits := drain(t, r)
					paged = append(paged, hits...)
					cursor = r.Cursor()
					if cursor == "" {
						break
					}
					if page > len(full)+2 {
						t.Fatalf("shards=%d q%d page size %d: cursor chain does not terminate", shards, qi, pageSize)
					}
				}
				if len(paged) != len(full) {
					t.Fatalf("shards=%d q%d page size %d: %d paged hits, want %d",
						shards, qi, pageSize, len(paged), len(full))
				}
				for i := range paged {
					if paged[i] != full[i] {
						t.Fatalf("shards=%d q%d page size %d: paged[%d] = %+v, want %+v",
							shards, qi, pageSize, i, paged[i], full[i])
					}
				}
			}
			// Mid-iteration break: the cursor resumes the exact suffix.
			if len(full) >= 2 {
				res, err := tix.Search(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				var taken int
				for _, herr := range res.All() {
					if herr != nil {
						t.Fatal(herr)
					}
					taken++
					if taken == len(full)/2 {
						break
					}
				}
				rq := q
				rq.Cursor = res.Cursor()
				r2, err := tix.Search(ctx, rq)
				if err != nil {
					t.Fatal(err)
				}
				suffix := drain(t, r2)
				want := full[taken:]
				if len(suffix) != len(want) {
					t.Fatalf("shards=%d q%d: resumed suffix has %d hits, want %d", shards, qi, len(suffix), len(want))
				}
				for i := range suffix {
					if suffix[i] != want[i] {
						t.Fatalf("shards=%d q%d: suffix[%d] = %+v, want %+v", shards, qi, i, suffix[i], want[i])
					}
				}
			}
		}
	}
}

// TestSearchBadCursor pins cursor validation: garbage tokens and
// tokens minted for a different query shape are ErrBadCursor.
func TestSearchBadCursor(t *testing.T) {
	trajs := shardedTestCorpus(t)
	ix, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := trajs[0][:2]
	if _, err := ix.Search(ctx, Query{Path: path, Cursor: "!!not base64!!"}); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("garbage cursor: err = %v, want ErrBadCursor", err)
	}
	// Token minted for a different path.
	other := Query{Path: trajs[1][:3], Kind: Occurrences}
	token := other.CursorAfter(Hit{Match: Match{Trajectory: 1, Offset: 0}})
	if _, err := ix.Search(ctx, Query{Path: path, Cursor: token}); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("foreign cursor: err = %v, want ErrBadCursor", err)
	}
	// Token minted for a different kind of the same path.
	tq := Query{Path: path, Kind: Trajectories}
	token = tq.CursorAfter(Hit{Match: Match{Trajectory: 1, Offset: -1}})
	if _, err := ix.Search(ctx, Query{Path: path, Kind: Occurrences, Cursor: token}); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("cross-kind cursor: err = %v, want ErrBadCursor", err)
	}
}

// TestCursorFingerprintSelfDelimiting is the regression test for a
// shape-confusion bug: without an interval-presence flag and a path
// length prefix in the fingerprint, a spatial query's path bytes can
// mimic another query's interval bounds, letting a foreign cursor
// validate. These pairs hash identically under a flat concatenation.
func TestCursorFingerprintSelfDelimiting(t *testing.T) {
	pairs := [][2]Query{
		{
			// Path entries [1,0,2,0,7] spell the same LE bytes as
			// From=1, To=2 followed by path [7] when fields are merely
			// concatenated.
			{Path: []uint32{1, 0, 2, 0, 7}, Kind: Occurrences},
			{Path: []uint32{7}, Interval: &Interval{From: 1, To: 2}, Kind: Occurrences},
		},
		{
			{Path: []uint32{0}, Kind: Occurrences},
			{Path: []uint32{0, 0}, Kind: Occurrences},
		},
		{
			{Path: []uint32{5}, Interval: &Interval{From: 0, To: 0}, Kind: Occurrences},
			{Path: []uint32{0, 0, 0, 0, 5}, Kind: Occurrences},
		},
	}
	for i, p := range pairs {
		if p[0].fingerprint() == p[1].fingerprint() {
			t.Errorf("pair %d: fingerprints collide across query shapes (%+v vs %+v)", i, p[0], p[1])
		}
		token := p[0].CursorAfter(Hit{Match: Match{Trajectory: 3, Offset: 1}})
		q := p[1]
		q.Cursor = token
		if _, _, _, err := q.decodeCursor(); !errors.Is(err, ErrBadCursor) {
			t.Errorf("pair %d: foreign cursor accepted (err = %v)", i, err)
		}
	}
}

// denseTimedCorpus generates a corpus over a small road network, so
// individual edges occur many times — the regime where early stopping
// of timestamp decoding is observable.
func denseTimedCorpus(seed int64) ([][]uint32, [][]int64) {
	cfg := trajgen.Config{GridW: 5, GridH: 5, NumTrajs: 200, MeanLen: 30, Seed: seed}
	d := trajgen.MOGen(cfg)
	rng := rand.New(rand.NewSource(seed))
	times := make([][]int64, len(d.Trajs))
	for k, tr := range d.Trajs {
		col := make([]int64, len(tr))
		t := rng.Int63n(86400)
		for i := range col {
			col[i] = t
			t += 10 + rng.Int63n(30)
		}
		times[k] = col
	}
	return d.Trajs, times
}

// frequentEdge returns the most frequent single-edge path.
func frequentEdge(trajs [][]uint32) []uint32 {
	freq := map[uint32]int{}
	for _, tr := range trajs {
		for _, e := range tr {
			freq[e]++
		}
	}
	var best uint32
	bestN := -1
	for e, n := range freq {
		if n > bestN || (n == bestN && e < best) {
			best, bestN = e, n
		}
	}
	return []uint32{best}
}

// atSteps sums the decode counters across a temporal index's stores.
func atSteps(tix *TemporalIndex) int64 {
	var n int64
	for _, ts := range tix.stores {
		n += ts.AtSteps()
	}
	return n
}

func resetAtSteps(tix *TemporalIndex) {
	for _, ts := range tix.stores {
		ts.ResetAtSteps()
	}
}

// TestSearchCancellationStopsDecoding is the streaming-semantics
// acceptance test: cancelling the context mid-iteration stops the
// shard-side timestamp decoding, observed through the tempo AtSteps
// instrumentation counters.
func TestSearchCancellationStopsDecoding(t *testing.T) {
	trajs, times := denseTimedCorpus(21)
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatal(err)
		}
		// A frequent path with the widest interval: many hits, every one
		// needing a timestamp probe.
		path := frequentEdge(trajs)
		q := Query{Path: path, Interval: &Interval{From: 0, To: 1 << 62}, Kind: Occurrences}

		// Baseline: a full drain's decode work.
		resetAtSteps(tix)
		full := 0
		r, err := tix.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for _, herr := range r.All() {
			if herr != nil {
				t.Fatal(herr)
			}
			full++
		}
		fullSteps := atSteps(tix)
		if full < 8 {
			t.Skipf("corpus gave only %d hits; need more to observe early stop", full)
		}

		// Cancelled run: consume 2 hits, cancel, expect the stream to
		// fail and the decode counters to freeze well short of the
		// full-drain total.
		resetAtSteps(tix)
		ctx, cancel := context.WithCancel(context.Background())
		r, err = tix.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		var got int
		var streamErr error
		for _, herr := range r.All() {
			if herr != nil {
				streamErr = herr
				break
			}
			got++
			if got == 2 {
				cancel()
			}
		}
		if !errors.Is(streamErr, context.Canceled) {
			t.Fatalf("shards=%d: stream error = %v, want context.Canceled", shards, streamErr)
		}
		frozen := atSteps(tix)
		if frozen >= fullSteps {
			t.Fatalf("shards=%d: cancelled run decoded %d steps, full drain %d — no early stop",
				shards, frozen, fullSteps)
		}
		// The counters must not advance once the stream has failed.
		for _, herr := range r.All() {
			if herr == nil {
				t.Fatal("failed stream yielded a hit")
			}
		}
		if after := atSteps(tix); after != frozen {
			t.Fatalf("shards=%d: decode counter advanced after cancellation: %d -> %d", shards, frozen, after)
		}
		cancel()
	}
}

// TestSearchLimitBoundsDecoding pins the lazy-probe property: with a
// small limit on a wide interval, the number of timestamp decodes is
// bounded by the hits actually yielded (plus per-shard lookahead), not
// by the occurrence count.
func TestSearchLimitBoundsDecoding(t *testing.T) {
	trajs, times := denseTimedCorpus(27)
	opts := DefaultOptions()
	opts.Shards = 3
	tix, err := BuildTemporal(trajs, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := frequentEdge(trajs)
	total, err := tix.CountInInterval(path, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if total < 20 {
		t.Skipf("only %d occurrences; need more to observe bounded decoding", total)
	}
	q := Query{Path: path, Interval: &Interval{From: 0, To: 1 << 62}, Kind: Occurrences, Limit: 3}
	resetAtSteps(tix)
	r, err := tix.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits := drain(t, r); len(hits) != 3 {
		t.Fatalf("limit 3 yielded %d hits", len(hits))
	}
	// Every probe decodes at most BlockSize varints; the probe count is
	// limit + shards (each shard primes one head) at worst since the
	// widest interval rejects nothing.
	maxProbes := int64(3 + tix.Shards())
	if steps := atSteps(tix); steps > maxProbes*int64(tempo.BlockSize) {
		t.Fatalf("limit-3 search decoded %d steps over %d occurrences; want <= %d",
			steps, total, maxProbes*int64(tempo.BlockSize))
	}
}
