package server

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/trajgen"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := trajgen.Config{GridW: 6, GridH: 6, NumTrajs: 40, MeanLen: 10, Seed: 5}
	ix, err := cinct.Build(trajgen.Singapore2(cfg).Trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{})
	eng.Register("ix", ix)
	return eng
}

// TestServerGracefulShutdown serves on a real listener, completes a
// request, shuts down cleanly, and verifies the port is released.
func TestServerGracefulShutdown(t *testing.T) {
	eng := testEngine(t)
	defer eng.CloseAll()
	srv := New(eng, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	base := "http://" + l.Addr().String()
	resp, err := http.Get(base + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("indexes: HTTP %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if _, err := http.Get(base + "/v1/indexes"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestServerRequestTimeout maps an expired request context to 504.
func TestServerRequestTimeout(t *testing.T) {
	eng := testEngine(t)
	defer eng.CloseAll()
	srv := New(eng, Config{RequestTimeout: time.Nanosecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Shutdown(context.Background())

	resp, err := http.Get("http://" + l.Addr().String() + "/v1/ix/count?path=1,2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired context: HTTP %d, want 504", resp.StatusCode)
	}
}
