package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"cinct/internal/engine"
	"cinct/internal/gps"
)

// gpsRouter serves the raw-ingestion front door and standing queries:
// device traces go in as NDJSON point batches, matched trajectories
// come back out as push notifications over SSE (or its long-poll
// fallback).
type gpsRouter struct {
	eng *engine.Engine
}

func (gr *gpsRouter) Routes() []Route {
	return []Route{
		{Method: http.MethodPost, Pattern: "/v1/{index}/gps", Handler: gr.ingestGPS},
		{Method: http.MethodPost, Pattern: "/v1/{index}/subscribe", Handler: gr.subscribe},
		{Method: http.MethodGet, Pattern: "/v1/{index}/subscriptions/{id}/events", Handler: gr.events, Streaming: true},
		{Method: http.MethodGet, Pattern: "/v1/{index}/subscriptions/{id}/poll", Handler: gr.poll, Streaming: true},
		{Method: http.MethodDelete, Pattern: "/v1/{index}/subscriptions/{id}", Handler: gr.cancel},
	}
}

// ingestGPS serves POST /v1/{index}/gps: the body is an NDJSON batch
// of gps.Trace lines — raw (lat, lon, t) observations, optionally with
// per-trace matcher overrides. Each trace is map-matched against the
// index's road network and, on acceptance, appended through the
// ordinary write path (WAL, delta, standing-query notifications).
// Traces succeed or fail independently; the response carries one typed
// result per line, in order.
func (gr *gpsRouter) ingestGPS(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	var traces []gps.Trace
	sc := bufio.NewScanner(io.LimitReader(r.Body, maxIngestBody))
	sc.Buffer(make([]byte, 0, 64*1024), maxIngestLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var tr gps.Trace
		if err := json.Unmarshal(line, &tr); err != nil {
			return fmt.Errorf("%w: trace %d: %v", errBadRequest, len(traces), err)
		}
		if len(tr.Points) == 0 {
			return fmt.Errorf("%w: trace %d: missing or empty points", errBadRequest, len(traces))
		}
		traces = append(traces, tr)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if len(traces) == 0 {
		return fmt.Errorf("%w: empty gps batch", errBadRequest)
	}
	res, err := gr.eng.IngestGPS(ctx, name, traces)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, GPSResponse{Index: name, GPSResult: res})
}

// maxSubscribeBody bounds the POST /v1/{index}/subscribe request body.
const maxSubscribeBody = 1 << 20

// subscribe serves POST /v1/{index}/subscribe: it registers a standing
// query and returns the subscription ID plus the endpoints to consume
// it. Notifications accumulate in the subscription's buffer from the
// moment this call returns, so nothing appended between subscribing
// and attaching to the events stream is lost (up to the buffer bound).
func (gr *gpsRouter) subscribe(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	var req SubscribeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxSubscribeBody)).Decode(&req); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	s, err := gr.eng.Subscribe(name, req.Predicate(), engine.SubscribeOptions{
		TTL:    time.Duration(req.TTLSeconds) * time.Second,
		Buffer: req.Buffer,
	})
	if err != nil {
		return err
	}
	base := "/v1/" + url.PathEscape(name) + "/subscriptions/" + url.PathEscape(s.ID())
	return writeJSON(w, http.StatusOK, SubscribeResponse{
		Index:        name,
		Subscription: s.ID(),
		ExpiresAt:    s.ExpiresAt().Unix(),
		Events:       base + "/events",
		Poll:         base + "/poll",
		Cancel:       base,
	})
}

// sseKeepalive is the comment-line cadence that keeps idle SSE
// connections from being reaped by intermediaries.
const sseKeepalive = 15 * time.Second

// events serves GET /v1/{index}/subscriptions/{id}/events as a
// Server-Sent Events stream: one "notification" event per standing-
// query match (data: the JSON Notification), comment keepalives while
// idle, and a final "end" event when the subscription closes (cancel,
// expiry, index close or shutdown). A subscription has one buffer, so
// attach exactly one consumer — SSE or poll, not both.
func (gr *gpsRouter) events(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	s, err := gr.eng.GetSubscription(name, r.PathValue("id"))
	if err != nil {
		return err
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		return fmt.Errorf("%w: transport does not support streaming", errBadRequest)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil // client went away; the subscription outlives us
		case <-keepalive.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return nil
			}
			flusher.Flush()
		case n, open := <-s.C():
			if !open {
				io.WriteString(w, "event: end\ndata: {}\n\n") //nolint:errcheck // stream is ending either way
				flusher.Flush()
				return nil
			}
			body, err := json.Marshal(n)
			if err != nil {
				return nil
			}
			if _, err := fmt.Fprintf(w, "event: notification\ndata: %s\n\n", body); err != nil {
				return nil
			}
			flusher.Flush()
		}
	}
}

// pollWait bounds the ?wait window of the long-poll fallback.
const (
	defaultPollWait = 30 * time.Second
	maxPollWait     = 120 * time.Second
	maxPollBatch    = 256
)

// poll serves GET /v1/{index}/subscriptions/{id}/poll — the long-poll
// fallback for clients that cannot hold an SSE stream: it blocks up to
// ?wait seconds for the first notification, then drains whatever else
// is already buffered (bounded) and returns the batch. An empty batch
// with closed=false just means nothing arrived; poll again.
func (gr *gpsRouter) poll(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	id := r.PathValue("id")
	s, err := gr.eng.GetSubscription(name, id)
	if err != nil {
		return err
	}
	waitSecs, err := intParam(r, "wait", int(defaultPollWait/time.Second))
	if err != nil {
		return err
	}
	wait := time.Duration(waitSecs) * time.Second
	if wait < 0 {
		wait = 0
	}
	if wait > maxPollWait {
		wait = maxPollWait
	}
	resp := PollResponse{Index: name, Subscription: id, Notifications: []engine.Notification{}}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
	case n, open := <-s.C():
		if !open {
			resp.Closed = true
			break
		}
		resp.Notifications = append(resp.Notifications, n)
		// First one in hand: sweep the rest of the buffer without
		// waiting any further.
	drain:
		for len(resp.Notifications) < maxPollBatch {
			select {
			case n, open := <-s.C():
				if !open {
					resp.Closed = true
					break drain
				}
				resp.Notifications = append(resp.Notifications, n)
			default:
				break drain
			}
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

// cancel serves DELETE /v1/{index}/subscriptions/{id}: the standing
// query is unregistered and its stream closes.
func (gr *gpsRouter) cancel(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	id := r.PathValue("id")
	if err := gr.eng.Unsubscribe(name, id); err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, CancelResponse{Index: name, Subscription: id, Cancelled: true})
}
