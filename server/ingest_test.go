package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cinct"
	"cinct/internal/engine"
)

// TestIngestEndToEnd drives the HTTP write path: NDJSON ingest into
// spatial and temporal indexes, immediate visibility through the
// unified query endpoint, explicit and inline (?seal=true) sealing,
// and the client round trip.
func TestIngestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{SealThreshold: -1})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL, nil)

	marker := []uint32{401, 402}
	n0, err := c.Count(ctx, "spatial4", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n0 != 0 {
		t.Fatalf("marker pre-exists: %d", n0)
	}

	// Spatial ingest via the client, no seal.
	resp, err := c.Ingest(ctx, "spatial4", []IngestRecord{
		{Edges: append([]uint32{3}, marker...)},
		{Edges: marker},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Appended != 2 || resp.FirstID != len(fx.trajs) || resp.Delta != 2 || resp.Sealed != 0 {
		t.Fatalf("IngestResponse = %+v", resp)
	}
	n, err := c.Count(ctx, "spatial4", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("post-ingest count over HTTP = %d, want 2", n)
	}
	// Delta rows reconstruct over HTTP.
	tr, err := c.Trajectory(ctx, "spatial4", len(fx.trajs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 || tr[1] != marker[0] {
		t.Fatalf("delta trajectory over HTTP = %v", tr)
	}

	// Explicit seal: counts unchanged, delta drained, file persisted.
	sres, err := c.Seal(ctx, "spatial4")
	if err != nil {
		t.Fatal(err)
	}
	if sres.Sealed != 2 || sres.Delta != 0 {
		t.Fatalf("SealResponse = %+v", sres)
	}
	if n, err = c.Count(ctx, "spatial4", marker); err != nil || n != 2 {
		t.Fatalf("post-seal count = %d, %v", n, err)
	}
	if _, err := c.Reload(ctx, "spatial4"); err != nil {
		t.Fatal(err)
	}
	if n, err = c.Count(ctx, "spatial4", marker); err != nil || n != 2 {
		t.Fatalf("post-reload count = %d, %v (seal not persisted)", n, err)
	}

	// Temporal ingest with inline seal; interval filter must see the
	// new rows' timestamps.
	tresp, err := c.Ingest(ctx, "temporal4", []IngestRecord{
		{Edges: marker, Times: []int64{1_000_000, 1_000_005}},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if tresp.Appended != 1 || tresp.Sealed != 1 || tresp.Delta != 0 {
		t.Fatalf("temporal IngestResponse = %+v", tresp)
	}
	hits, err := c.FindInInterval(ctx, "temporal4", marker, 999_999, 1_000_001, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Trajectory != len(fx.trajs) || hits[0].EnteredAt != 1_000_000 {
		t.Fatalf("FindInInterval over ingested row = %+v", hits)
	}

	// Wire-shape checks the client can't see: missing times on a
	// temporal index and malformed NDJSON are 400s.
	post := func(index, body, params string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/"+index+"/ingest"+params, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if got := post("temporal4", `{"edges":[1,2]}`, ""); got != http.StatusBadRequest {
		t.Fatalf("missing times on temporal: HTTP %d, want 400", got)
	}
	if got := post("spatial4", `{"edges":[1],"times":[5]}`, ""); got != http.StatusBadRequest {
		t.Fatalf("times on spatial: HTTP %d, want 400", got)
	}
	if got := post("spatial4", `{not json`, ""); got != http.StatusBadRequest {
		t.Fatalf("malformed NDJSON: HTTP %d, want 400", got)
	}
	if got := post("spatial4", "", ""); got != http.StatusBadRequest {
		t.Fatalf("empty batch: HTTP %d, want 400", got)
	}
	if got := post("nosuch", `{"edges":[1]}`, ""); got != http.StatusNotFound {
		t.Fatalf("unknown index: HTTP %d, want 404", got)
	}
}

// TestIngestQueryParity pins that an ingested corpus answers the
// unified query endpoint identically to the in-process engine — the
// delta must be invisible at the wire level.
func TestIngestQueryParity(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{SealThreshold: -1})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL, nil)

	path := fx.trajs[0][:2]
	if _, err := c.Ingest(ctx, "spatial1", []IngestRecord{{Edges: append([]uint32(nil), path...)}}, false); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"occurrences", "trajectories", "count"} {
		req := QueryRequest{Path: path, Kind: kind, Limit: 4}
		q, err := req.Query()
		if err != nil {
			t.Fatal(err)
		}
		wantHits, wantCount, wantCursor := wireFromEngine(t, eng, "spatial1", q)
		status, raw := postQuery(t, ts.URL, "spatial1", req)
		if status != http.StatusOK {
			t.Fatalf("kind %s: HTTP %d", kind, status)
		}
		hits, sum := parseStream(t, raw)
		if len(hits) != len(wantHits) || sum.Count != wantCount || sum.Cursor != wantCursor {
			t.Fatalf("kind %s: wire (%d hits, count %d, cursor %q) != engine (%d, %d, %q)",
				kind, len(hits), sum.Count, sum.Cursor, len(wantHits), wantCount, wantCursor)
		}
		for i := range hits {
			if hits[i] != wantHits[i] {
				t.Fatalf("kind %s: hit %d = %+v, engine %+v", kind, i, hits[i], wantHits[i])
			}
		}
	}
}

// TestStaleCursorHTTP pins the wire mapping of the stale-cursor
// audit: a cursor served before a reload answers 410 Gone afterwards,
// with the typed error message intact.
func TestStaleCursorHTTP(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL, nil)

	path := fx.trajs[0][:2]
	page, err := c.SearchPage(ctx, "spatial4", cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if page.Cursor == "" {
		t.Skip("corpus gave a single-hit stream; no cursor to invalidate")
	}
	if _, err := c.Reload(ctx, "spatial4"); err != nil {
		t.Fatal(err)
	}
	status, raw := postQuery(t, ts.URL, "spatial4", QueryRequest{Path: path, Cursor: page.Cursor})
	if status != http.StatusGone {
		t.Fatalf("stale cursor: HTTP %d (%s), want 410", status, raw)
	}
	if !strings.Contains(string(raw), "stale cursor") {
		t.Fatalf("stale cursor body lacks typed message: %s", raw)
	}
}

// TestCompactEndpoint drives POST /v1/{index}/compact end to end: a
// run of sealed ingest batches fans the shard set out, a full
// compaction over HTTP merges it back to one shard without changing
// any answer, and a cursor taken before the compaction still resumes
// afterwards.
func TestCompactEndpoint(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir)
	eng := engine.New(engine.Options{SealThreshold: -1})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	ctx := context.Background()
	c := NewClient(ts.URL, nil)

	marker := []uint32{411, 412}
	for i := 0; i < 4; i++ {
		if _, err := c.Ingest(ctx, "spatial4", []IngestRecord{
			{Edges: append([]uint32{uint32(i)}, marker...)},
		}, true); err != nil {
			t.Fatal(err)
		}
	}
	nBefore, err := c.Count(ctx, "spatial4", marker)
	if err != nil {
		t.Fatal(err)
	}
	if nBefore != 4 {
		t.Fatalf("pre-compaction marker count = %d, want 4", nBefore)
	}
	// A bounded page taken before the merge must resume after it.
	page, err := c.SearchPage(ctx, "spatial4", cinct.Query{Path: marker, Kind: cinct.Occurrences, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if page.Cursor == "" {
		t.Fatal("bounded page handed out no cursor")
	}

	resp, err := c.Compact(ctx, "spatial4", true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Index != "spatial4" || resp.Merged == 0 || resp.ShardsAfter != 1 {
		t.Fatalf("CompactResponse = %+v, want a merge down to 1 shard", resp)
	}
	if n, err := c.Count(ctx, "spatial4", marker); err != nil || n != nBefore {
		t.Fatalf("post-compaction count = %d, %v (want %d)", n, err, nBefore)
	}
	rest, err := c.SearchPage(ctx, "spatial4", cinct.Query{Path: marker, Kind: cinct.Occurrences, Cursor: page.Cursor})
	if err != nil {
		t.Fatalf("cursor across compaction: %v", err)
	}
	if got := len(page.Hits) + len(rest.Hits); got != nBefore {
		t.Fatalf("page + resume = %d hits, want %d", got, nBefore)
	}

	// Idempotent: nothing left to merge.
	resp, err = c.Compact(ctx, "spatial4", true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Merged != 0 {
		t.Fatalf("second compaction merged %d shards", resp.Merged)
	}

	// The tiered default (full=false) on an in-policy index is a no-op
	// at the wire level too.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/spatial4/compact", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("tiered compact: HTTP %d, want 200", res.StatusCode)
	}

	if _, err := c.Compact(ctx, "nosuch", true); err == nil {
		t.Fatal("compacting an unknown index succeeded")
	}
}
