package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"cinct/internal/cluster"
	"cinct/internal/engine"
)

func badPathID(raw string) error {
	return fmt.Errorf("%w: bad trajectory id %q", errBadRequest, raw)
}

// DefaultLimit caps find-style responses when the client sends no
// limit parameter; limit=0 explicitly requests all matches.
const DefaultLimit = 100

// systemRouter serves catalog-level endpoints: listing and lifecycle.
type systemRouter struct {
	eng *engine.Engine
}

func (sr *systemRouter) Routes() []Route {
	return []Route{
		{Method: http.MethodGet, Pattern: "/v1/indexes", Handler: sr.listIndexes},
		{Method: http.MethodPost, Pattern: "/v1/{index}/reload", Handler: sr.reloadIndex},
		{Method: http.MethodPost, Pattern: "/v1/{index}/ingest", Handler: sr.ingest},
		{Method: http.MethodPost, Pattern: "/v1/{index}/seal", Handler: sr.seal},
		{Method: http.MethodPost, Pattern: "/v1/{index}/compact", Handler: sr.compact},
	}
}

// maxIngestBody bounds one NDJSON ingest batch; maxIngestLine bounds
// one record.
const (
	maxIngestBody = 64 << 20
	maxIngestLine = 1 << 20
)

// ingest serves the write path: the body is an NDJSON batch of
// IngestRecord lines, appended atomically to the named index's live
// delta and queryable as soon as the response is written. With
// ?seal=true the delta is compacted into a compressed shard before
// replying (useful for scripted loads that want durability per
// batch); otherwise sealing is left to the background sealer or an
// explicit POST /v1/{index}/seal.
func (sr *systemRouter) ingest(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	var trajs [][]uint32
	var times [][]int64
	sawTimes := false
	sc := bufio.NewScanner(io.LimitReader(r.Body, maxIngestBody))
	sc.Buffer(make([]byte, 0, 64*1024), maxIngestLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec IngestRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("%w: record %d: %v", errBadRequest, len(trajs), err)
		}
		if len(rec.Edges) == 0 {
			return fmt.Errorf("%w: record %d: missing or empty edges", errBadRequest, len(trajs))
		}
		trajs = append(trajs, rec.Edges)
		times = append(times, rec.Times)
		if rec.Times != nil {
			sawTimes = true
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if len(trajs) == 0 {
		return fmt.Errorf("%w: empty ingest batch", errBadRequest)
	}
	if !sawTimes {
		times = nil // spatial batch: the engine expects no column slice at all
	}
	res, err := sr.eng.Append(ctx, name, trajs, times)
	if err != nil {
		return err
	}
	resp := IngestResponse{
		Index:      name,
		Appended:   res.Appended,
		FirstID:    res.FirstID,
		Delta:      res.Delta,
		Generation: res.Generation,
	}
	if seal := r.URL.Query().Get("seal"); seal == "true" || seal == "1" {
		sres, err := sr.eng.Seal(ctx, name)
		if err != nil {
			return err
		}
		resp.Sealed = sres.Sealed
		resp.Delta = sres.Delta
		resp.Generation = sres.Generation
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (sr *systemRouter) seal(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	res, err := sr.eng.Seal(ctx, name)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, SealResponse{
		Index: name, Sealed: res.Sealed, Delta: res.Delta, Generation: res.Generation,
	})
}

// compact merges the named index's sealed shards down to the engine's
// tiered policy — or, with ?full=true, all the way to a single shard —
// and persists the compacted state. Queries and ingestion proceed
// throughout; the call returns once the shard set reaches its fixpoint.
func (sr *systemRouter) compact(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	full := r.URL.Query().Get("full")
	res, err := sr.eng.Compact(ctx, name, full == "true" || full == "1")
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, CompactResponse{
		Index: name, Merged: res.Merged, Rows: res.Rows, Rounds: res.Rounds,
		ShardsBefore: res.ShardsBefore, ShardsAfter: res.ShardsAfter,
		Generation: res.Generation,
	})
}

func (sr *systemRouter) listIndexes(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	resp := ListResponse{Indexes: make([]engine.Info, 0)}
	for _, name := range sr.eng.Names() {
		info, err := sr.eng.Info(name)
		if err != nil {
			// Closed between Names and Info: skip rather than fail the
			// whole listing.
			continue
		}
		resp.Indexes = append(resp.Indexes, info)
	}
	hits, misses, entries := sr.eng.CacheStats()
	inflight, capacity := sr.eng.PoolStats()
	segs, walBytes, fsyncs := sr.eng.WALStats()
	resp.Runtime = RuntimeInfo{
		CacheHits:    int64(hits),
		CacheMisses:  int64(misses),
		CacheEntries: entries,
		PoolInflight: inflight,
		PoolCapacity: capacity,
		WALSegments:  segs,
		WALBytes:     walBytes,
		WALFsyncs:    fsyncs,
	}
	if cl := sr.eng.Cluster(); cl != nil {
		resp.Cluster = &ClusterInfo{
			Self:             cl.Self(),
			SlotTrajectories: cl.SlotTrajectories(),
			Fingerprint:      fmt.Sprintf("%016x", cl.Fingerprint()),
			Peers:            cl.Health(),
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (sr *systemRouter) reloadIndex(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	gen, err := sr.eng.Reload(name)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, ReloadResponse{Index: name, Generation: gen})
}

// queryRouter serves per-index query endpoints.
type queryRouter struct {
	eng *engine.Engine
}

func (qr *queryRouter) Routes() []Route {
	return []Route{
		{Method: http.MethodPost, Pattern: "/v1/{index}/query", Handler: qr.query},
		{Method: http.MethodGet, Pattern: "/v1/{index}/count", Handler: qr.count},
		{Method: http.MethodGet, Pattern: "/v1/{index}/find", Handler: qr.find},
		{Method: http.MethodGet, Pattern: "/v1/{index}/trajectory/{id}", Handler: qr.trajectory},
		{Method: http.MethodGet, Pattern: "/v1/{index}/subpath", Handler: qr.subPath},
		{Method: http.MethodGet, Pattern: "/v1/{index}/temporal/find", Handler: qr.temporalFind},
		{Method: http.MethodGet, Pattern: "/v1/{index}/temporal/count", Handler: qr.temporalCount},
	}
}

// maxQueryBody bounds the POST /v1/{index}/query request body.
const maxQueryBody = 1 << 20

// query serves the unified streaming endpoint: the body is a
// QueryRequest, the response is NDJSON — one QueryHit per line in
// canonical order, then one QuerySummary carrying the count and, for
// bounded pages with more results, the opaque resume cursor. Hits are
// written (and flushed) as the engine's iterator produces them, so a
// large result set streams without the server materializing it beyond
// what the cache layer retains. Errors before the first byte map to
// normal JSON error responses; a mid-stream failure terminates the
// stream with an error-carrying summary record.
func (qr *queryRouter) query(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxQueryBody)).Decode(&req); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if len(req.Path) == 0 {
		return fmt.Errorf("%w: missing or empty path", errBadRequest)
	}
	q, err := req.Query()
	if err != nil {
		return err
	}
	// A coordinator's fan-out request carries the owned-scope header:
	// serve only ring-owned trajectories (never fanning out again), and
	// refuse it when this node isn't clustered or disagrees about the
	// routing configuration — answering with a mismatched ring would
	// silently duplicate or lose trajectories in the merged result.
	scope := engine.ScopeAuto
	if sc := r.Header.Get(cluster.ScopeHeader); sc != "" {
		if sc != cluster.ScopeOwned {
			return fmt.Errorf("%w: unknown query scope %q", errBadRequest, sc)
		}
		cl := qr.eng.Cluster()
		if cl == nil {
			return fmt.Errorf("%w: owned scope on a non-clustered node", errBadRequest)
		}
		if got, want := r.Header.Get(cluster.RingHeader), strconv.FormatUint(cl.Fingerprint(), 10); got != want {
			return fmt.Errorf("%w: ring fingerprint mismatch (coordinator %q, this node %s)", errBadRequest, got, want)
		}
		scope = engine.ScopeOwned
	}
	res, err := qr.eng.SearchScoped(ctx, name, q, scope)
	if err != nil {
		return err
	}
	defer res.Close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeRecord := func(v any) error {
		body, err := EncodeJSON(v)
		if err != nil {
			return err
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	var streamErr error
	for h, herr := range res.All() {
		if herr != nil {
			streamErr = herr
			break
		}
		rec := QueryHit{Trajectory: h.Trajectory, Offset: h.Offset}
		if q.Interval != nil {
			at := h.EnteredAt
			rec.EnteredAt = &at
		}
		if err := writeRecord(rec); err != nil {
			// The client went away mid-stream; nothing left to tell it.
			return nil
		}
	}
	sum := QuerySummary{}
	if streamErr == nil {
		n, cerr := res.Count()
		if cerr != nil {
			streamErr = cerr
		} else {
			sum.Done = true
			sum.Count = n
			sum.Cursor = res.Cursor()
			if scope == engine.ScopeOwned {
				sum.Ident = res.Ident()
			}
		}
	}
	if streamErr != nil {
		sum.Error = streamErr.Error()
		var pe *engine.PartialError
		if errors.As(streamErr, &pe) {
			sum.Partial = pe.Peers
		}
	}
	writeRecord(sum) //nolint:errcheck // stream is best-effort past this point
	return nil
}

// temporalParams parses the shared strict-path-query parameters; a
// missing bound defaults to the widest interval.
func temporalParams(r *http.Request) (path []uint32, from, to int64, err error) {
	if path, err = parsePath(r); err != nil {
		return nil, 0, 0, err
	}
	if from, err = int64Param(r, "from", math.MinInt64); err != nil {
		return nil, 0, 0, err
	}
	if to, err = int64Param(r, "to", math.MaxInt64); err != nil {
		return nil, 0, 0, err
	}
	return path, from, to, nil
}

func (qr *queryRouter) count(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	path, err := parsePath(r)
	if err != nil {
		return err
	}
	n, err := qr.eng.Count(ctx, name, path)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, CountResponse{Index: name, Path: path, Count: n})
}

func (qr *queryRouter) find(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	path, err := parsePath(r)
	if err != nil {
		return err
	}
	limit, err := intParam(r, "limit", DefaultLimit)
	if err != nil {
		return err
	}
	hits, err := qr.eng.Find(ctx, name, path, limit)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, FindResponse{
		Index: name, Path: path, Limit: limit, Matches: WireMatches(hits),
	})
}

func (qr *queryRouter) trajectory(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return badPathID(r.PathValue("id"))
	}
	edges, err := qr.eng.Trajectory(ctx, name, id)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, TrajectoryResponse{
		Index: name, ID: id, Edges: WireEdges(edges),
	})
}

func (qr *queryRouter) subPath(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	id, err := requiredIntParam(r, "traj")
	if err != nil {
		return err
	}
	from, err := requiredIntParam(r, "from")
	if err != nil {
		return err
	}
	to, err := requiredIntParam(r, "to")
	if err != nil {
		return err
	}
	edges, err := qr.eng.SubPath(ctx, name, id, from, to)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, SubPathResponse{
		Index: name, ID: id, From: from, To: to, Edges: WireEdges(edges),
	})
}

func (qr *queryRouter) temporalFind(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	path, from, to, err := temporalParams(r)
	if err != nil {
		return err
	}
	limit, err := intParam(r, "limit", DefaultLimit)
	if err != nil {
		return err
	}
	hits, err := qr.eng.FindInInterval(ctx, name, path, from, to, limit)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, TemporalFindResponse{
		Index: name, Path: path, From: from, To: to, Limit: limit,
		Matches: WireTemporalMatches(hits),
	})
}

func (qr *queryRouter) temporalCount(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
	name := r.PathValue("index")
	path, from, to, err := temporalParams(r)
	if err != nil {
		return err
	}
	n, err := qr.eng.CountInInterval(ctx, name, path, from, to)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, TemporalCountResponse{
		Index: name, Path: path, From: from, To: to, Count: n,
	})
}
