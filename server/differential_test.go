package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/querygen"
	"cinct/internal/trajgen"
)

// corpusFixture builds a corpus with timestamps and persists four
// index flavors into dir: spatial and temporal, each monolithic and
// sharded.
type corpusFixture struct {
	trajs [][]uint32
	times [][]int64
	// names of the indexes written, keyed spatial/temporal.
	spatial  []string
	temporal []string
}

func writeFixture(t *testing.T, dir string) *corpusFixture {
	t.Helper()
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: 160, MeanLen: 15, Seed: 11}
	fx := &corpusFixture{trajs: trajgen.Singapore2(cfg).Trajs}
	fx.times = make([][]int64, len(fx.trajs))
	for k, tr := range fx.trajs {
		col := make([]int64, len(tr))
		at := int64(100 * k)
		for i := range col {
			col[i] = at
			at += int64(5 + (k+i)%20)
		}
		fx.times[k] = col
	}
	for _, shards := range []int{1, 4} {
		opts := cinct.DefaultOptions()
		opts.Shards = shards

		name := fmt.Sprintf("spatial%d", shards)
		ix, err := cinct.Build(fx.trajs, opts)
		if err != nil {
			t.Fatal(err)
		}
		writeIndexFile(t, filepath.Join(dir, name+engine.ExtSpatial), ix.Save)
		fx.spatial = append(fx.spatial, name)

		tname := fmt.Sprintf("temporal%d", shards)
		tix, err := cinct.BuildTemporal(fx.trajs, fx.times, opts)
		if err != nil {
			t.Fatal(err)
		}
		writeIndexFile(t, filepath.Join(dir, tname+engine.ExtTemporal), tix.Save)
		fx.temporal = append(fx.temporal, tname)
	}
	return fx
}

func writeIndexFile(t *testing.T, path string, save func(io.Writer) (int64, error)) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// get fetches a URL and returns status and raw body bytes.
func get(t *testing.T, base, path string, q url.Values) (int, []byte) {
	t.Helper()
	u := base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// expect encodes v canonically and compares byte-for-byte.
func expect(t *testing.T, label string, status int, body []byte, wantStatus int, v any) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("%s: HTTP %d (want %d): %s", label, status, wantStatus, body)
	}
	want, err := EncodeJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("%s: body differs from in-process engine call\n got: %s\nwant: %s", label, body, want)
	}
}

// TestDifferentialHTTP is the serving-layer acceptance test: every
// endpoint's body must be byte-identical to the canonical encoding of
// the equivalent in-process Engine call, over spatial and temporal,
// monolithic and sharded indexes.
func TestDifferentialHTTP(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)

	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	queries := querygen.New(fx.trajs, 1, 4, 7).Draw(12)
	queries = append(queries, []uint32{1 << 30}) // matches nothing
	limits := []int{0, 1, 3, 50}

	for _, name := range append(append([]string{}, fx.spatial...), fx.temporal...) {
		for qi, path := range queries {
			pq := url.Values{"path": {pathParam(path)}}

			n, err := eng.Count(ctx, name, path)
			if err != nil {
				t.Fatal(err)
			}
			status, body := get(t, ts.URL, "/v1/"+name+"/count", pq)
			expect(t, fmt.Sprintf("%s count q%d", name, qi), status, body, 200,
				CountResponse{Index: name, Path: path, Count: n})

			for _, limit := range limits {
				hits, err := eng.Find(ctx, name, path, limit)
				if err != nil {
					t.Fatal(err)
				}
				fq := url.Values{"path": {pathParam(path)}, "limit": {strconv.Itoa(limit)}}
				status, body = get(t, ts.URL, "/v1/"+name+"/find", fq)
				expect(t, fmt.Sprintf("%s find q%d limit %d", name, qi, limit), status, body, 200,
					FindResponse{Index: name, Path: path, Limit: limit, Matches: WireMatches(hits)})
			}
		}

		for _, id := range []int{0, 1, len(fx.trajs) / 2, len(fx.trajs) - 1} {
			edges, err := eng.Trajectory(ctx, name, id)
			if err != nil {
				t.Fatal(err)
			}
			status, body := get(t, ts.URL, "/v1/"+name+"/trajectory/"+strconv.Itoa(id), nil)
			expect(t, fmt.Sprintf("%s trajectory %d", name, id), status, body, 200,
				TrajectoryResponse{Index: name, ID: id, Edges: WireEdges(edges)})

			ln := len(fx.trajs[id])
			from, to := ln/3, ln-ln/4
			sub, err := eng.SubPath(ctx, name, id, from, to)
			if err != nil {
				t.Fatal(err)
			}
			sq := url.Values{
				"traj": {strconv.Itoa(id)},
				"from": {strconv.Itoa(from)},
				"to":   {strconv.Itoa(to)},
			}
			status, body = get(t, ts.URL, "/v1/"+name+"/subpath", sq)
			expect(t, fmt.Sprintf("%s subpath %d [%d,%d)", name, id, from, to), status, body, 200,
				SubPathResponse{Index: name, ID: id, From: from, To: to, Edges: WireEdges(sub)})
		}
	}

	// Temporal find and count: on temporal indexes they must mirror the
	// engine over varied interval shapes and limits; on spatial indexes
	// they must refuse. The fixture's timestamps span [0, ~20000), so
	// the intervals cover all-time, selective slices, and empty ranges.
	intervals := [][2]int64{
		{math.MinInt64, math.MaxInt64},
		{0, 4000},
		{2500, 2600},
		{19000, 30000},
		{-100, -1},
	}
	for _, name := range fx.temporal {
		for qi, path := range queries {
			for ii, iv := range intervals {
				from, to := iv[0], iv[1]
				q := url.Values{
					"path": {pathParam(path)},
					"from": {strconv.FormatInt(from, 10)},
					"to":   {strconv.FormatInt(to, 10)},
				}
				for _, limit := range []int{0, 1, 3} {
					hits, err := eng.FindInInterval(ctx, name, path, from, to, limit)
					if err != nil {
						t.Fatal(err)
					}
					fq := url.Values{}
					for k, v := range q {
						fq[k] = v
					}
					fq.Set("limit", strconv.Itoa(limit))
					status, body := get(t, ts.URL, "/v1/"+name+"/temporal/find", fq)
					expect(t, fmt.Sprintf("%s temporal/find q%d iv%d limit %d", name, qi, ii, limit),
						status, body, 200,
						TemporalFindResponse{Index: name, Path: path, From: from, To: to, Limit: limit,
							Matches: WireTemporalMatches(hits)})
				}
				n, err := eng.CountInInterval(ctx, name, path, from, to)
				if err != nil {
					t.Fatal(err)
				}
				status, body := get(t, ts.URL, "/v1/"+name+"/temporal/count", q)
				expect(t, fmt.Sprintf("%s temporal/count q%d iv%d", name, qi, ii), status, body, 200,
					TemporalCountResponse{Index: name, Path: path, From: from, To: to, Count: n})
			}
		}
	}

	// Monolithic and sharded temporal indexes over the same corpus must
	// give byte-identical answers (modulo the index name on the wire).
	for qi, path := range queries {
		for ii, iv := range intervals {
			for _, limit := range []int{0, 2} {
				mono, err := eng.FindInInterval(ctx, fx.temporal[0], path, iv[0], iv[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				shrd, err := eng.FindInInterval(ctx, fx.temporal[1], path, iv[0], iv[1], limit)
				if err != nil {
					t.Fatal(err)
				}
				monoWire, err := EncodeJSON(WireTemporalMatches(mono))
				if err != nil {
					t.Fatal(err)
				}
				shrdWire, err := EncodeJSON(WireTemporalMatches(shrd))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(monoWire, shrdWire) {
					t.Fatalf("q%d iv%d limit %d: sharded temporal differs from monolithic\n mono: %s\nshard: %s",
						qi, ii, limit, monoWire, shrdWire)
				}
			}
			monoN, err := eng.CountInInterval(ctx, fx.temporal[0], path, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			shrdN, err := eng.CountInInterval(ctx, fx.temporal[1], path, iv[0], iv[1])
			if err != nil {
				t.Fatal(err)
			}
			if monoN != shrdN {
				t.Fatalf("q%d iv%d: sharded temporal count %d, monolithic %d", qi, ii, shrdN, monoN)
			}
		}
	}
	for _, ep := range []string{"find", "count"} {
		status, _ := get(t, ts.URL, "/v1/"+fx.spatial[0]+"/temporal/"+ep,
			url.Values{"path": {"1,2"}})
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("temporal/%s on spatial index: HTTP %d, want 422", ep, status)
		}
	}

	// Catalog listing vs in-process listing (runtime gauges included:
	// no query runs between here and the GET, so the counters agree).
	list := ListResponse{Indexes: make([]engine.Info, 0)}
	for _, name := range eng.Names() {
		info, err := eng.Info(name)
		if err != nil {
			t.Fatal(err)
		}
		list.Indexes = append(list.Indexes, info)
	}
	hits, misses, entries := eng.CacheStats()
	inflight, capacity := eng.PoolStats()
	segs, walBytes, fsyncs := eng.WALStats()
	list.Runtime = RuntimeInfo{
		CacheHits: int64(hits), CacheMisses: int64(misses), CacheEntries: entries,
		PoolInflight: inflight, PoolCapacity: capacity,
		WALSegments: segs, WALBytes: walBytes, WALFsyncs: fsyncs,
	}
	status, body := get(t, ts.URL, "/v1/indexes", nil)
	expect(t, "indexes", status, body, 200, list)

	// Differential over the Client as well: the -remote CLI path must
	// see the same answers as in-process calls.
	cl := NewClient(ts.URL, nil)
	for _, name := range fx.temporal {
		path := queries[0]
		wantN, err := eng.Count(ctx, name, path)
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := cl.Count(ctx, name, path)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN {
			t.Fatalf("client Count = %d, want %d", gotN, wantN)
		}
		wantHits, err := eng.Find(ctx, name, path, 5)
		if err != nil {
			t.Fatal(err)
		}
		gotHits, err := cl.Find(ctx, name, path, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotHits) != len(wantHits) {
			t.Fatalf("client Find: %d hits, want %d", len(gotHits), len(wantHits))
		}
		for i := range gotHits {
			if gotHits[i] != wantHits[i] {
				t.Fatalf("client Find[%d] = %+v, want %+v", i, gotHits[i], wantHits[i])
			}
		}
		wantTM, err := eng.FindInInterval(ctx, name, path, math.MinInt64, math.MaxInt64, 3)
		if err != nil {
			t.Fatal(err)
		}
		gotTM, err := cl.FindInInterval(ctx, name, path, math.MinInt64, math.MaxInt64, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTM) != len(wantTM) {
			t.Fatalf("client FindInInterval: %d hits, want %d", len(gotTM), len(wantTM))
		}
		wantTC, err := eng.CountInInterval(ctx, name, path, 0, 4000)
		if err != nil {
			t.Fatal(err)
		}
		gotTC, err := cl.CountInInterval(ctx, name, path, 0, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if gotTC != wantTC {
			t.Fatalf("client CountInInterval = %d, want %d", gotTC, wantTC)
		}
	}

	// Error mapping.
	status, _ = get(t, ts.URL, "/v1/nosuch/count", url.Values{"path": {"1,2"}})
	if status != http.StatusNotFound {
		t.Fatalf("unknown index: HTTP %d, want 404", status)
	}
	status, _ = get(t, ts.URL, "/v1/"+fx.spatial[0]+"/count", url.Values{"path": {"abc"}})
	if status != http.StatusBadRequest {
		t.Fatalf("bad path: HTTP %d, want 400", status)
	}
	status, _ = get(t, ts.URL, "/v1/"+fx.spatial[0]+"/trajectory/999999", nil)
	if status != http.StatusBadRequest {
		t.Fatalf("out-of-range trajectory: HTTP %d, want 400", status)
	}

	// Reload via HTTP bumps the generation.
	gen, err := cl.Reload(ctx, fx.spatial[0])
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation after reload = %d, want 2", gen)
	}
}
