package server

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// ErrRateLimited reports a request rejected by the per-client token
// bucket; the status mapper turns it into 429 with a Retry-After hint,
// and the Client surfaces it as a typed error so callers can back off.
var ErrRateLimited = errors.New("server: rate limited")

// rateLimitError carries the time until the client's bucket refills
// enough for one request, so the 429 response can say when to retry.
type rateLimitError struct {
	retryAfter time.Duration
}

func (e *rateLimitError) Error() string {
	return fmt.Sprintf("server: rate limited, retry in %s", e.retryAfter.Round(time.Millisecond))
}

func (e *rateLimitError) Is(target error) bool { return target == ErrRateLimited }

// maxBuckets bounds the limiter's client table; when it fills, buckets
// idle long enough to have fully refilled are evicted (forgetting a
// full bucket changes nothing a client can observe).
const maxBuckets = 4096

// rateLimiter is a per-client token bucket: rate tokens/second with a
// burst-sized bucket per key. It is deliberately lazy — a client's
// bucket refills arithmetically from its last-touched timestamp, so
// there is no background goroutine.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow spends one token from key's bucket. When the bucket is empty
// it reports how long until one token accrues.
func (l *rateLimiter) allow(key string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// evictLocked drops buckets idle long enough to have refilled to full
// burst — and, if every client is active, the stalest ones anyway, so
// the table stays bounded under key churn (spoofed client IDs).
func (l *rateLimiter) evictLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	var stalest string
	var stalestAt time.Time
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
			continue
		}
		if stalest == "" || b.last.Before(stalestAt) {
			stalest, stalestAt = k, b.last
		}
	}
	if len(l.buckets) >= maxBuckets && stalest != "" {
		delete(l.buckets, stalest)
	}
}

// clientKey identifies the caller for rate limiting: the X-Client-ID
// header when present (so pooled proxies can split their tenants),
// otherwise the remote IP.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
