package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/querygen"
)

// postQuery posts a QueryRequest and returns status and raw NDJSON
// body.
func postQuery(t *testing.T, base, index string, req QueryRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/"+index+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// parseStream decodes an NDJSON query response into hits + summary.
func parseStream(t *testing.T, raw []byte) ([]QueryHit, QuerySummary) {
	t.Helper()
	var hits []QueryHit
	var sum QuerySummary
	sawSummary := false
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			t.Fatalf("record after summary: %s", line)
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if _, ok := probe["done"]; ok {
			if err := json.Unmarshal(line, &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var h QueryHit
		if err := json.Unmarshal(line, &h); err != nil {
			t.Fatal(err)
		}
		hits = append(hits, h)
	}
	if !sawSummary {
		t.Fatalf("stream has no summary record: %s", raw)
	}
	return hits, sum
}

// wireFromEngine renders an engine Search the way the handler must.
func wireFromEngine(t *testing.T, eng *engine.Engine, name string, q cinct.Query) ([]QueryHit, int, string) {
	t.Helper()
	r, err := eng.Search(context.Background(), name, q)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var hits []QueryHit
	for h, herr := range r.All() {
		if herr != nil {
			t.Fatal(herr)
		}
		rec := QueryHit{Trajectory: h.Trajectory, Offset: h.Offset}
		if q.Interval != nil {
			at := h.EnteredAt
			rec.EnteredAt = &at
		}
		hits = append(hits, rec)
	}
	n, err := r.Count()
	if err != nil {
		t.Fatal(err)
	}
	return hits, n, r.Cursor()
}

// TestQueryEndpointDifferential pins POST /v1/{index}/query against
// the in-process engine for every kind over spatial and temporal,
// monolithic and sharded indexes — including the Trajectories kind,
// which closes the FindTrajectories HTTP parity gap: the streamed IDs
// must be byte-identical to the canonical encoding of the in-process
// engine's answer.
func TestQueryEndpointDifferential(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	queries := querygen.New(fx.trajs, 1, 4, 3).Draw(10)
	queries = append(queries, []uint32{1 << 30})
	kinds := []string{"occurrences", "trajectories", "count"}
	limits := []int{0, 1, 3, 50}

	names := append(append([]string{}, fx.spatial...), fx.temporal...)
	for _, name := range names {
		for qi, path := range queries {
			for _, kind := range kinds {
				for _, limit := range limits {
					req := QueryRequest{Path: path, Kind: kind, Limit: limit}
					q, err := req.Query()
					if err != nil {
						t.Fatal(err)
					}
					wantHits, wantCount, wantCursor := wireFromEngine(t, eng, name, q)
					status, raw := postQuery(t, ts.URL, name, req)
					if status != 200 {
						t.Fatalf("%s %s q%d limit %d: HTTP %d: %s", name, kind, qi, limit, status, raw)
					}
					gotHits, sum := parseStream(t, raw)
					if !sum.Done || sum.Error != "" {
						t.Fatalf("%s %s q%d limit %d: bad summary %+v", name, kind, qi, limit, sum)
					}
					a, _ := json.Marshal(gotHits)
					b, _ := json.Marshal(wantHits)
					if !bytes.Equal(a, b) {
						t.Fatalf("%s %s q%d limit %d: hits differ\n got: %s\nwant: %s", name, kind, qi, limit, a, b)
					}
					if sum.Count != wantCount || sum.Cursor != wantCursor {
						t.Fatalf("%s %s q%d limit %d: summary (%d,%q), engine (%d,%q)",
							name, kind, qi, limit, sum.Count, sum.Cursor, wantCount, wantCursor)
					}
				}
			}
		}
	}

	// The Trajectories kind must agree with the legacy in-process
	// FindTrajectories, pinning the parity gap closed end to end.
	for _, name := range names {
		for qi, path := range queries {
			for _, limit := range limits {
				want, err := eng.FindTrajectories(ctx, name, path, limit)
				if err != nil {
					t.Fatal(err)
				}
				_, raw := postQuery(t, ts.URL, name, QueryRequest{Path: path, Kind: "trajectories", Limit: limit})
				hits, _ := parseStream(t, raw)
				if len(hits) != len(want) {
					t.Fatalf("%s q%d limit %d: %d streamed trajectories, engine %d",
						name, qi, limit, len(hits), len(want))
				}
				for i := range hits {
					if hits[i].Trajectory != want[i] || hits[i].Offset != -1 {
						t.Fatalf("%s q%d limit %d: streamed[%d] = %+v, engine id %d",
							name, qi, limit, i, hits[i], want[i])
					}
				}
			}
		}
	}

	// Interval-constrained queries over the temporal indexes.
	intervals := [][2]int64{{math.MinInt64, math.MaxInt64}, {0, 4000}, {2500, 2600}, {-100, -1}}
	for _, name := range fx.temporal {
		for qi, path := range queries {
			for ii, iv := range intervals {
				from, to := iv[0], iv[1]
				for _, kind := range kinds {
					req := QueryRequest{Path: path, Kind: kind, From: &from, To: &to, Limit: 3}
					q, err := req.Query()
					if err != nil {
						t.Fatal(err)
					}
					wantHits, wantCount, wantCursor := wireFromEngine(t, eng, name, q)
					status, raw := postQuery(t, ts.URL, name, req)
					if status != 200 {
						t.Fatalf("%s %s q%d iv%d: HTTP %d: %s", name, kind, qi, ii, status, raw)
					}
					gotHits, sum := parseStream(t, raw)
					a, _ := json.Marshal(gotHits)
					b, _ := json.Marshal(wantHits)
					if !bytes.Equal(a, b) || sum.Count != wantCount || sum.Cursor != wantCursor {
						t.Fatalf("%s %s q%d iv%d: stream differs from engine\n got: %s (%d,%q)\nwant: %s (%d,%q)",
							name, kind, qi, ii, a, sum.Count, sum.Cursor, b, wantCount, wantCursor)
					}
				}
			}
		}
	}

	// An interval query against a spatial index is 422.
	from := int64(0)
	status, _ := postQuery(t, ts.URL, fx.spatial[0], QueryRequest{Path: queries[0], From: &from})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("interval on spatial index: HTTP %d, want 422", status)
	}
}

// TestQueryEndpointCursorPagination walks cursor-linked pages at the
// raw HTTP level and through Client.Search, asserting the
// concatenation equals the unpaged stream.
func TestQueryEndpointCursorPagination(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()

	// A frequent path: first edges of trajectory 0.
	path := fx.trajs[0][:1]
	name := fx.temporal[1] // sharded temporal: the hardest layout
	_, raw := postQuery(t, ts.URL, name, QueryRequest{Path: path, Kind: "occurrences"})
	full, fullSum := parseStream(t, raw)
	if fullSum.Cursor != "" {
		t.Fatalf("unpaged stream ended with cursor %q", fullSum.Cursor)
	}
	if len(full) < 4 {
		t.Fatalf("corpus gave only %d hits; fixture too small for pagination test", len(full))
	}

	var paged []QueryHit
	cursor := ""
	for {
		_, raw := postQuery(t, ts.URL, name, QueryRequest{Path: path, Kind: "occurrences", Limit: 3, Cursor: cursor})
		hits, sum := parseStream(t, raw)
		paged = append(paged, hits...)
		if sum.Error != "" {
			t.Fatalf("page failed: %s", sum.Error)
		}
		if sum.Cursor == "" {
			break
		}
		cursor = sum.Cursor
		if len(paged) > len(full)+3 {
			t.Fatal("cursor chain does not terminate")
		}
	}
	a, _ := json.Marshal(paged)
	b, _ := json.Marshal(full)
	if !bytes.Equal(a, b) {
		t.Fatalf("concatenated pages differ from unpaged result\n got: %s\nwant: %s", a, b)
	}

	// Client.Search pages transparently with a small page size.
	cl := NewClient(ts.URL, nil)
	cl.PageSize = 3
	var viaClient []cinct.Hit
	for h, err := range cl.Search(context.Background(), name, cinct.Query{Path: path, Kind: cinct.Occurrences}) {
		if err != nil {
			t.Fatal(err)
		}
		viaClient = append(viaClient, h)
	}
	if len(viaClient) != len(full) {
		t.Fatalf("Client.Search yielded %d hits, want %d", len(viaClient), len(full))
	}
	for i := range viaClient {
		if viaClient[i].Trajectory != full[i].Trajectory || viaClient[i].Offset != full[i].Offset {
			t.Fatalf("Client.Search[%d] = %+v, want %+v", i, viaClient[i], full[i])
		}
	}

	// Client-side Limit truncates mid-page-chain.
	var bounded []cinct.Hit
	for h, err := range cl.Search(context.Background(), name, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 4}) {
		if err != nil {
			t.Fatal(err)
		}
		bounded = append(bounded, h)
	}
	if len(bounded) != 4 {
		t.Fatalf("Client.Search with Limit 4 yielded %d hits", len(bounded))
	}
}

// TestLimitRuleCrossLayer is the satellite's table test: one limit
// rule — 0 means unlimited, negative is an error — enforced
// identically at the library, engine, HTTP endpoint and client layers.
func TestLimitRuleCrossLayer(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, nil)
	ctx := context.Background()
	path := fx.trajs[0][:1]
	name := fx.spatial[1]
	all := len(bruteOccurrences(fx.trajs, path))

	lib, err := cinct.Build(fx.trajs, nil)
	if err != nil {
		t.Fatal(err)
	}

	layers := []struct {
		name string
		// run returns (hits, err) for a Query with the given limit.
		run func(limit int) (int, error)
	}{
		{"library", func(limit int) (int, error) {
			r, err := lib.Search(ctx, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: limit})
			if err != nil {
				return 0, err
			}
			n := 0
			for _, herr := range r.All() {
				if herr != nil {
					return 0, herr
				}
				n++
			}
			return n, nil
		}},
		{"engine", func(limit int) (int, error) {
			r, err := eng.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: limit})
			if err != nil {
				return 0, err
			}
			defer r.Close()
			return r.Count()
		}},
		{"http", func(limit int) (int, error) {
			body, _ := json.Marshal(QueryRequest{Path: path, Limit: limit})
			resp, err := http.Post(ts.URL+"/v1/"+name+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != 200 {
				return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, raw)
			}
			n := 0
			for _, line := range bytes.Split(raw, []byte("\n")) {
				if len(line) == 0 || bytes.Contains(line, []byte(`"done"`)) {
					continue
				}
				n++
			}
			return n, nil
		}},
		{"client", func(limit int) (int, error) {
			page, err := cl.SearchPage(ctx, name, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: limit})
			if err != nil {
				return 0, err
			}
			return len(page.Hits), nil
		}},
	}
	cases := []struct {
		limit   int
		want    int // expected hits; -1 means an error is required
		errText string
	}{
		{limit: 0, want: all},
		{limit: 1, want: 1},
		{limit: all + 10, want: all},
		{limit: -1, want: -1, errText: "bad query"},
		{limit: -50, want: -1, errText: "bad query"},
	}
	for _, layer := range layers {
		for _, tc := range cases {
			n, err := layer.run(tc.limit)
			if tc.want < 0 {
				if err == nil {
					t.Errorf("%s limit %d: no error, want one mentioning %q", layer.name, tc.limit, tc.errText)
					continue
				}
				if !strings.Contains(err.Error(), tc.errText) && !strings.Contains(err.Error(), "HTTP 400") {
					t.Errorf("%s limit %d: err %q does not reflect the limit rule", layer.name, tc.limit, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s limit %d: %v", layer.name, tc.limit, err)
				continue
			}
			if n != tc.want {
				t.Errorf("%s limit %d: %d hits, want %d", layer.name, tc.limit, n, tc.want)
			}
		}
	}

	// The HTTP layer maps the violation to 400 specifically.
	body, _ := json.Marshal(QueryRequest{Path: path, Limit: -1})
	resp, err := http.Post(ts.URL+"/v1/"+name+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative limit over HTTP: %d, want 400", resp.StatusCode)
	}
}

// bruteOccurrences scans the corpus for every occurrence of path.
func bruteOccurrences(trajs [][]uint32, path []uint32) []cinct.Match {
	var out []cinct.Match
	for k, tr := range trajs {
		for off := 0; off+len(path) <= len(tr); off++ {
			ok := true
			for i := range path {
				if tr[off+i] != path[i] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, cinct.Match{Trajectory: k, Offset: off})
			}
		}
	}
	return out
}

// TestQueryEndpointBadRequests pins the 400 mapping for malformed
// bodies, kinds and cursors.
func TestQueryEndpointBadRequests(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	name := fx.spatial[0]

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/"+name+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := post(`{not json`); s != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", s)
	}
	if s := post(`{"path":[1,2],"kind":"nonsense"}`); s != http.StatusBadRequest {
		t.Fatalf("unknown kind: HTTP %d, want 400", s)
	}
	if s := post(`{"path":[]}`); s != http.StatusBadRequest {
		t.Fatalf("empty path: HTTP %d, want 400", s)
	}
	if s := post(`{"path":[1,2],"cursor":"@@@"}`); s != http.StatusBadRequest {
		t.Fatalf("bad cursor: HTTP %d, want 400", s)
	}
	status, _ := postQuery(t, ts.URL, "nosuch", QueryRequest{Path: []uint32{1}})
	if status != http.StatusNotFound {
		t.Fatalf("unknown index: HTTP %d, want 404", status)
	}
}
