package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cinct"
	"cinct/internal/cluster"
	"cinct/internal/engine"
	"cinct/internal/querygen"
)

// clusterSlotW keeps the routing slots small relative to the fixture's
// 160 trajectories so both nodes own real shares of every result set.
const clusterSlotW = 16

// clusterNode is one in-process daemon of a test cluster: a real TCP
// listener (peers reach each other over loopback HTTP), an engine with
// a cluster view, and the server on top.
type clusterNode struct {
	addr string // http://127.0.0.1:port
	cl   *cluster.Cluster
	eng  *engine.Engine
	srv  *Server
	lis  net.Listener
}

func (n *clusterNode) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		t.Logf("shutdown %s: %v", n.addr, err)
	}
	n.cl.Stop()
	n.eng.CloseAll()
}

// startNode boots one cluster node on lis, loading dir.
func startNode(t *testing.T, dir, self string, peers []string, lis net.Listener) *clusterNode {
	t.Helper()
	cl, err := cluster.New(cluster.Config{
		Self: self, Peers: peers, SlotTrajectories: clusterSlotW,
		Timeout: 5 * time.Second, RetryBackoff: time.Millisecond, HedgeAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Cluster: cl})
	if _, err := eng.OpenDir(dir); err != nil {
		eng.CloseAll()
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	go srv.Serve(lis) //nolint:errcheck // exits on Shutdown
	return &clusterNode{addr: self, cl: cl, eng: eng, srv: srv, lis: lis}
}

// startCluster boots n nodes over one data dir (phase 1: every node
// holds the full corpus; the ring decides who answers for what).
func startCluster(t *testing.T, dir string, n int) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = startNode(t, dir, addrs[i], peers, listeners[i])
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.stop(t)
		}
	})
	return nodes
}

// restartNode stops the node and boots a fresh engine + server on the
// same address, as a process restart would.
func restartNode(t *testing.T, dir string, nodes []*clusterNode, i int) {
	t.Helper()
	old := nodes[i]
	old.stop(t)
	hostport := strings.TrimPrefix(old.addr, "http://")
	var lis net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		lis, err = net.Listen("tcp", hostport)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", hostport, err)
	}
	var peers []string
	for j, nd := range nodes {
		if j != i {
			peers = append(peers, nd.addr)
		}
	}
	nodes[i] = startNode(t, dir, old.addr, peers, lis)
}

// queryResult is one decoded POST /v1/{index}/query exchange: the raw
// hit lines (byte-comparable), the summary, and the response envelope.
type queryResult struct {
	status int
	header http.Header
	hits   []string
	sum    QuerySummary
	raw    []byte
}

// postQuery runs one query page, optionally with extra headers.
func postClusterQuery(t *testing.T, base, index string, req QueryRequest, hdr map[string]string) *queryResult {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/"+index+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	res := &queryResult{status: resp.StatusCode, header: resp.Header, raw: raw}
	if resp.StatusCode != http.StatusOK {
		return res
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatalf("empty query stream from %s", base)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &res.sum); err != nil {
		t.Fatalf("bad summary %q: %v", lines[len(lines)-1], err)
	}
	res.hits = lines[:len(lines)-1]
	return res
}

// drainQuery follows cursors from base until the stream is exhausted,
// returning every hit line in order. pageLimit is the per-page limit.
func drainQuery(t *testing.T, base, index string, req QueryRequest, pageLimit int) []string {
	t.Helper()
	var all []string
	req.Limit = pageLimit
	req.Cursor = ""
	for page := 0; ; page++ {
		res := postClusterQuery(t, base, index, req, nil)
		if res.status != http.StatusOK {
			t.Fatalf("page %d: HTTP %d: %s", page, res.status, res.raw)
		}
		if res.sum.Error != "" {
			t.Fatalf("page %d: stream error: %s", page, res.sum.Error)
		}
		all = append(all, res.hits...)
		if res.sum.Cursor == "" || len(res.hits) == 0 {
			return all
		}
		req.Cursor = res.sum.Cursor
		if page > 10_000 {
			t.Fatal("cursor chain does not terminate")
		}
	}
}

func sameHits(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: hit %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// refServer boots a plain single-node server over dir as the oracle.
func refServer(t *testing.T, dir string) (*engine.Engine, string) {
	t.Helper()
	eng := engine.New(engine.Options{})
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); eng.CloseAll() })
	return eng, ts.URL
}

// clusterQueries draws the differential query mix: generated paths
// plus a miss.
func clusterQueries(fx *corpusFixture) [][]uint32 {
	qs := querygen.New(fx.trajs, 1, 4, 23).Draw(6)
	return append(qs, []uint32{1 << 30})
}

// TestClusterDifferential is the tentpole acceptance test: every query
// answered by any node of a 2-node cluster must be byte-identical to
// the single-node answer, across spatial and temporal indexes, query
// kinds, limits, intervals, and cursor pagination.
func TestClusterDifferential(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	refEng, refURL := refServer(t, dir)
	nodes := startCluster(t, dir, 2)
	queries := clusterQueries(fx)

	indexes := append(append([]string{}, fx.spatial...), fx.temporal...)
	limits := []int{0, 1, 3, 50}
	kinds := []string{"occurrences", "trajectories"}

	for _, name := range indexes {
		temporal := strings.HasPrefix(name, "temporal")
		for qi, path := range queries {
			reqs := []QueryRequest{{Path: path}}
			if temporal {
				from, to := int64(0), int64(4000)
				reqs = append(reqs, QueryRequest{Path: path, From: &from, To: &to})
			}
			for ri, base := range reqs {
				for _, kind := range kinds {
					for _, limit := range limits {
						req := base
						req.Kind = kind
						req.Limit = limit
						label := fmt.Sprintf("%s q%d r%d %s limit=%d", name, qi, ri, kind, limit)
						want := postClusterQuery(t, refURL, name, req, nil)
						if want.status != http.StatusOK {
							t.Fatalf("%s: oracle HTTP %d: %s", label, want.status, want.raw)
						}
						for ni, nd := range nodes {
							got := postClusterQuery(t, nd.addr, name, req, nil)
							if got.status != http.StatusOK {
								t.Fatalf("%s node%d: HTTP %d: %s", label, ni, got.status, got.raw)
							}
							sameHits(t, fmt.Sprintf("%s node%d", label, ni), got.hits, want.hits)
							if got.sum.Count != want.sum.Count {
								t.Fatalf("%s node%d: count %d, want %d", label, ni, got.sum.Count, want.sum.Count)
							}
						}
					}
				}
				// count kind answers locally (full corpus on every node).
				req := base
				req.Kind = "count"
				want := postClusterQuery(t, refURL, name, req, nil)
				for ni, nd := range nodes {
					got := postClusterQuery(t, nd.addr, name, req, nil)
					if got.status != http.StatusOK || got.sum.Count != want.sum.Count {
						t.Fatalf("%s q%d r%d count node%d: HTTP %d count %d, want %d",
							name, qi, ri, ni, got.status, got.sum.Count, want.sum.Count)
					}
				}
			}
		}
	}

	// Cursor pagination: walking page-by-page through the cluster must
	// reconstruct exactly the single-node stream, for every page size.
	for _, name := range []string{fx.spatial[1], fx.temporal[1]} {
		for qi, path := range queries[:3] {
			req := QueryRequest{Path: path}
			want := drainQuery(t, refURL, name, req, 0)
			for _, pageLimit := range []int{1, 7, 64} {
				for ni, nd := range nodes {
					got := drainQuery(t, nd.addr, name, req, pageLimit)
					sameHits(t, fmt.Sprintf("%s q%d page=%d node%d walk", name, qi, pageLimit, ni), got, want)
				}
			}
		}
	}

	// In-process scatter-gather differential: node engines must agree
	// with the reference engine hit-for-hit, not just over HTTP.
	ctx := context.Background()
	for _, name := range []string{fx.spatial[0], fx.temporal[0]} {
		for qi, path := range queries[:3] {
			q := cinct.Query{Path: path}
			var want []cinct.Hit
			res, err := refEng.Search(ctx, name, q)
			if err != nil {
				t.Fatal(err)
			}
			for h, herr := range res.All() {
				if herr != nil {
					t.Fatal(herr)
				}
				want = append(want, h)
			}
			res.Close()
			for ni, nd := range nodes {
				nres, err := nd.eng.Search(ctx, name, q)
				if err != nil {
					t.Fatalf("%s q%d node%d: %v", name, qi, ni, err)
				}
				var got []cinct.Hit
				for h, herr := range nres.All() {
					if herr != nil {
						t.Fatalf("%s q%d node%d: %v", name, qi, ni, herr)
					}
					got = append(got, h)
				}
				nres.Close()
				if len(got) != len(want) {
					t.Fatalf("%s q%d node%d: %d hits in-process, want %d", name, qi, ni, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s q%d node%d hit %d: %+v, want %+v", name, qi, ni, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestClusterOwnedScopePartition pins the routing invariant behind the
// merge: the owner-scoped answers of the two nodes are disjoint and
// their union is exactly the full result set.
func TestClusterOwnedScopePartition(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	_, refURL := refServer(t, dir)
	nodes := startCluster(t, dir, 2)

	fp := strconv.FormatUint(nodes[0].cl.Fingerprint(), 10)
	for _, name := range []string{fx.spatial[0], fx.temporal[1]} {
		for qi, path := range clusterQueries(fx) {
			req := QueryRequest{Path: path}
			want := postClusterQuery(t, refURL, name, req, nil)
			seen := make(map[string]int)
			total := 0
			for ni, nd := range nodes {
				got := postClusterQuery(t, nd.addr, name, req, map[string]string{
					cluster.ScopeHeader: cluster.ScopeOwned,
					cluster.RingHeader:  fp,
				})
				if got.status != http.StatusOK {
					t.Fatalf("%s q%d node%d owned: HTTP %d: %s", name, qi, ni, got.status, got.raw)
				}
				if got.sum.Ident == "" {
					t.Fatalf("%s q%d node%d owned: summary has no ident", name, qi, ni)
				}
				for _, h := range got.hits {
					seen[h]++
				}
				total += len(got.hits)
			}
			if total != len(want.hits) {
				t.Fatalf("%s q%d: owned legs total %d hits, full result has %d", name, qi, total, len(want.hits))
			}
			for _, h := range want.hits {
				if seen[h] != 1 {
					t.Fatalf("%s q%d: hit %s served by %d owners, want exactly 1", name, qi, h, seen[h])
				}
			}
		}
	}

	// Owned scope is a cooperation protocol, not a public API: a wrong
	// ring fingerprint or a non-clustered node must refuse it.
	req := QueryRequest{Path: []uint32{1}}
	bad := postClusterQuery(t, nodes[0].addr, fx.spatial[0], req, map[string]string{
		cluster.ScopeHeader: cluster.ScopeOwned,
		cluster.RingHeader:  "12345",
	})
	if bad.status != http.StatusBadRequest {
		t.Fatalf("ring mismatch: HTTP %d, want 400", bad.status)
	}
	_, refURL2 := refServer(t, dir)
	bad = postClusterQuery(t, refURL2, fx.spatial[0], req, map[string]string{
		cluster.ScopeHeader: cluster.ScopeOwned,
		cluster.RingHeader:  fp,
	})
	if bad.status != http.StatusBadRequest {
		t.Fatalf("owned scope on non-clustered node: HTTP %d, want 400", bad.status)
	}
}

// TestClusterPartialOnDeadPeer kills one node and asserts the
// coordinator fails loudly — typed 502 with the unreachable peer in
// X-CiNCT-Partial — instead of returning silently truncated results.
func TestClusterPartialOnDeadPeer(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	nodes := startCluster(t, dir, 2)

	nodes[1].stop(t)

	req := QueryRequest{Path: clusterQueries(fx)[0]}
	res := postClusterQuery(t, nodes[0].addr, fx.spatial[0], req, nil)
	if res.status != http.StatusBadGateway {
		t.Fatalf("query with dead peer: HTTP %d, want 502: %s", res.status, res.raw)
	}
	if got := res.header.Get(cluster.PartialHeader); got != nodes[1].addr {
		t.Fatalf("%s = %q, want %q", cluster.PartialHeader, got, nodes[1].addr)
	}

	// The Client surfaces it as a typed partial error naming the peer.
	cl := NewClient(nodes[0].addr, nil)
	_, err := cl.SearchPage(context.Background(), fx.spatial[0], cinct.Query{Path: req.Path})
	if !errors.Is(err, engine.ErrPartial) {
		t.Fatalf("client error %v, want engine.ErrPartial", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || len(ae.PartialPeers) != 1 || ae.PartialPeers[0] != nodes[1].addr {
		t.Fatalf("client error %#v, want PartialPeers [%s]", err, nodes[1].addr)
	}

	// Local-only paths stay up: count never fans out, and the health
	// listing now reports the peer down.
	creq := QueryRequest{Path: req.Path, Kind: "count"}
	if res := postClusterQuery(t, nodes[0].addr, fx.spatial[0], creq, nil); res.status != http.StatusOK {
		t.Fatalf("count with dead peer: HTTP %d, want 200", res.status)
	}
	// stop is idempotent enough for the cleanup pass; restart the node
	// so t.Cleanup's stop has something healthy to tear down.
	restartNode(t, dir, nodes, 1)
}

// pickSpreadQuery returns a query and page limit such that after the
// first page both nodes still own upcoming hits — so a resumed cursor
// must consult every node.
func pickSpreadQuery(t *testing.T, refURL, name string, fx *corpusFixture, nodes []*clusterNode) (QueryRequest, int) {
	t.Helper()
	for _, path := range clusterQueries(fx) {
		req := QueryRequest{Path: path}
		full := drainQuery(t, refURL, name, req, 0)
		for limit := 1; limit <= 3 && limit < len(full); limit++ {
			owners := make(map[string]bool)
			for _, line := range full[limit:] {
				var h QueryHit
				if err := json.Unmarshal([]byte(line), &h); err != nil {
					t.Fatal(err)
				}
				owners[nodes[0].cl.OwnerOf(h.Trajectory)] = true
			}
			if len(owners) == len(nodes) {
				return req, limit
			}
		}
	}
	t.Fatal("no query spreads residual hits across all nodes; tune the fixture")
	panic("unreachable")
}

// TestClusterCursorResumeAcrossPeerRestart pins the cursor envelope's
// node identity: a resume after a peer restart with unchanged files
// continues exactly; a resume after the peer's index file changed
// yields a typed 410, never wrong pages.
func TestClusterCursorResumeAcrossPeerRestart(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	_, refURL := refServer(t, dir)
	nodes := startCluster(t, dir, 2)
	name := fx.spatial[0]

	req, limit := pickSpreadQuery(t, refURL, name, fx, nodes)
	full := drainQuery(t, refURL, name, req, 0)

	page := req
	page.Limit = limit
	first := postClusterQuery(t, nodes[0].addr, name, page, nil)
	if first.status != http.StatusOK || first.sum.Cursor == "" {
		t.Fatalf("first page: HTTP %d cursor %q", first.status, first.sum.Cursor)
	}
	sameHits(t, "first page", first.hits, full[:limit])

	// Same files, new process: the per-node identity in the cursor
	// still matches, so the resume streams the exact continuation.
	restartNode(t, dir, nodes, 1)
	resume := req
	resume.Cursor = first.sum.Cursor
	rest := postClusterQuery(t, nodes[0].addr, name, resume, nil)
	if rest.status != http.StatusOK {
		t.Fatalf("resume after restart: HTTP %d: %s", rest.status, rest.raw)
	}
	sameHits(t, "resume after restart", rest.hits, full[limit:])

	// Changed file on the peer: its load-time fingerprint differs, the
	// peer answers 410 for the stale leg, and the coordinator passes
	// the typed staleness through instead of serving wrong pages.
	trajs2 := append(append([][]uint32{}, fx.trajs...), []uint32{1, 2, 3, 4})
	opts := cinct.DefaultOptions()
	opts.Shards = 1
	ix2, err := cinct.Build(trajs2, opts)
	if err != nil {
		t.Fatal(err)
	}
	writeIndexFile(t, filepath.Join(dir, name+engine.ExtSpatial), ix2.Save)
	restartNode(t, dir, nodes, 1)

	stale := postClusterQuery(t, nodes[0].addr, name, resume, nil)
	if stale.status != http.StatusGone {
		t.Fatalf("resume against changed peer: HTTP %d, want 410: %s", stale.status, stale.raw)
	}
}

// TestClusterChurnRace is the -race soak: queries keep scatter-
// gathering while a peer restarts repeatedly. Every query must either
// succeed with the exact single-node answer or fail typed (502
// partial / 504 deadline) — never return truncated data.
func TestClusterChurnRace(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	_, refURL := refServer(t, dir)
	nodes := startCluster(t, dir, 2)
	name := fx.temporal[1]

	req := QueryRequest{Path: clusterQueries(fx)[0]}
	want := postClusterQuery(t, refURL, name, req, nil)
	if want.status != http.StatusOK {
		t.Fatalf("oracle: HTTP %d", want.status)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res := postClusterQuery(t, nodes[0].addr, name, req, nil)
				switch res.status {
				case http.StatusOK:
					if res.sum.Error != "" {
						// Mid-stream partial: the summary must carry the
						// typed marker, and the prefix must be a prefix.
						if len(res.sum.Partial) == 0 {
							t.Errorf("mid-stream error without partial peers: %s", res.sum.Error)
							return
						}
						continue
					}
					sameHits(t, "churn query", res.hits, want.hits)
				case http.StatusBadGateway:
					if res.header.Get(cluster.PartialHeader) == "" {
						t.Errorf("502 without %s header: %s", cluster.PartialHeader, res.raw)
						return
					}
				case http.StatusGatewayTimeout, http.StatusServiceUnavailable:
					// Acceptable transients under churn.
				default:
					t.Errorf("churn query: HTTP %d: %s", res.status, res.raw)
					return
				}
			}
		}()
	}
	for round := 0; round < 3; round++ {
		time.Sleep(50 * time.Millisecond)
		restartNode(t, dir, nodes, 1)
	}
	time.Sleep(50 * time.Millisecond)
	close(done)
	wg.Wait()
}

// TestClusterHealthListing asserts /v1/indexes on a clustered node
// carries the cluster block with peer health.
func TestClusterHealthListing(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir)
	nodes := startCluster(t, dir, 2)

	// One fan-out query seeds per-peer stats.
	res := postClusterQuery(t, nodes[0].addr, "spatial1", QueryRequest{Path: []uint32{1, 2}}, nil)
	if res.status != http.StatusOK {
		t.Fatalf("seed query: HTTP %d", res.status)
	}

	status, body := get(t, nodes[0].addr, "/v1/indexes", nil)
	if status != http.StatusOK {
		t.Fatalf("/v1/indexes: HTTP %d", status)
	}
	var list ListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Cluster == nil {
		t.Fatal("clustered /v1/indexes has no cluster block")
	}
	if list.Cluster.Self != nodes[0].addr {
		t.Fatalf("cluster.self = %q, want %q", list.Cluster.Self, nodes[0].addr)
	}
	if list.Cluster.SlotTrajectories != clusterSlotW {
		t.Fatalf("cluster.slotTrajectories = %d, want %d", list.Cluster.SlotTrajectories, clusterSlotW)
	}
	if len(list.Cluster.Peers) != 1 || list.Cluster.Peers[0].Addr != nodes[1].addr {
		t.Fatalf("cluster.peers = %+v, want exactly %q", list.Cluster.Peers, nodes[1].addr)
	}
	ph := list.Cluster.Peers[0]
	if !ph.Healthy || ph.Requests == 0 {
		t.Fatalf("peer health %+v, want healthy with requests > 0", ph)
	}
}
