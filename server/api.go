// Package server exposes a cinct engine over HTTP: a moby-style
// router/handler split (each endpoint is a Route owned by a Router,
// assembled onto one mux by Server), canonical JSON wire types shared
// by the daemon and the Client, request-scoped timeouts, and graceful
// shutdown. The daemon binary lives in cmd/cinctd; the same handlers
// serve httptest instances in the differential tests.
package server

import (
	"encoding/json"
	"math"

	"cinct"
	"cinct/internal/cluster"
	"cinct/internal/engine"
	"cinct/internal/wire"
)

// Match mirrors cinct.Match on the wire.
type Match struct {
	Trajectory int `json:"trajectory"`
	Offset     int `json:"offset"`
}

// TemporalMatch mirrors cinct.TemporalMatch on the wire.
type TemporalMatch struct {
	Match
	EnteredAt int64 `json:"enteredAt"`
}

// RuntimeInfo is the engine-wide gauge block of GET /v1/indexes: the
// result cache, the query worker pool and the aggregate WAL footprint
// at the moment of the call — the same numbers GET /metrics exposes,
// in JSON for humans and scripts.
type RuntimeInfo struct {
	CacheHits    int64 `json:"cacheHits"`
	CacheMisses  int64 `json:"cacheMisses"`
	CacheEntries int   `json:"cacheEntries"`
	PoolInflight int   `json:"poolInflight"`
	PoolCapacity int   `json:"poolCapacity"`
	WALSegments  int   `json:"walSegments"`
	WALBytes     int64 `json:"walBytes"`
	WALFsyncs    int64 `json:"walFsyncs"`
}

// ClusterInfo is the cluster block of GET /v1/indexes, present only on
// clustered daemons: this node's advertised address, the routing
// parameters (which must agree across the cluster — Fingerprint is the
// quick equality check), and each peer's observed health.
type ClusterInfo struct {
	Self             string               `json:"self"`
	SlotTrajectories int                  `json:"slotTrajectories"`
	Fingerprint      string               `json:"fingerprint"`
	Peers            []cluster.PeerHealth `json:"peers"`
}

// ListResponse is the body of GET /v1/indexes.
type ListResponse struct {
	Indexes []engine.Info `json:"indexes"`
	Runtime RuntimeInfo   `json:"runtime"`
	Cluster *ClusterInfo  `json:"cluster,omitempty"`
}

// CountResponse is the body of GET /v1/{index}/count.
type CountResponse struct {
	Index string   `json:"index"`
	Path  []uint32 `json:"path"`
	Count int      `json:"count"`
}

// FindResponse is the body of GET /v1/{index}/find.
type FindResponse struct {
	Index   string   `json:"index"`
	Path    []uint32 `json:"path"`
	Limit   int      `json:"limit"`
	Matches []Match  `json:"matches"`
}

// TrajectoryResponse is the body of GET /v1/{index}/trajectory/{id}.
type TrajectoryResponse struct {
	Index string   `json:"index"`
	ID    int      `json:"id"`
	Edges []uint32 `json:"edges"`
}

// SubPathResponse is the body of GET /v1/{index}/subpath.
type SubPathResponse struct {
	Index string   `json:"index"`
	ID    int      `json:"id"`
	From  int      `json:"from"`
	To    int      `json:"to"`
	Edges []uint32 `json:"edges"`
}

// TemporalFindResponse is the body of GET /v1/{index}/temporal/find.
type TemporalFindResponse struct {
	Index   string          `json:"index"`
	Path    []uint32        `json:"path"`
	From    int64           `json:"from"`
	To      int64           `json:"to"`
	Limit   int             `json:"limit"`
	Matches []TemporalMatch `json:"matches"`
}

// TemporalCountResponse is the body of GET /v1/{index}/temporal/count.
type TemporalCountResponse struct {
	Index string   `json:"index"`
	Path  []uint32 `json:"path"`
	From  int64    `json:"from"`
	To    int64    `json:"to"`
	Count int      `json:"count"`
}

// QueryRequest is the body of POST /v1/{index}/query — the wire form
// of cinct.Query, shared with the cluster fan-out through the wire
// package. Kind is spelled "occurrences" (the default), "trajectories"
// or "count". From/To, when either is present, form the closed
// interval constraint; a missing bound defaults to the widest value,
// mirroring the legacy temporal endpoints.
type QueryRequest = wire.Request

// WireQuery converts a library descriptor to the wire form (what
// Client.Search posts).
func WireQuery(q cinct.Query) QueryRequest { return wire.FromQuery(q) }

// QueryHit is one hit record in the NDJSON stream of POST
// /v1/{index}/query. For trajectories-kind queries Offset is -1.
// EnteredAt is present only for interval-constrained queries.
type QueryHit struct {
	Trajectory int    `json:"trajectory"`
	Offset     int    `json:"offset"`
	EnteredAt  *int64 `json:"enteredAt,omitempty"`
}

// QuerySummary is the final NDJSON record of POST /v1/{index}/query:
// done marks a complete stream, count is the hit count (or the full
// occurrence count for count-kind queries), cursor — when present —
// resumes the query past the last streamed hit, and error carries a
// mid-stream failure (in which case done is false and the earlier
// records form a valid prefix of the result). Ident is emitted only on
// owner-scoped (cluster fan-out) streams: the serving index's identity
// token, which coordinators fold into cluster resume cursors. Partial
// accompanies a cluster fan-out error, listing the unreachable peers.
type QuerySummary struct {
	Done    bool     `json:"done"`
	Count   int      `json:"count"`
	Cursor  string   `json:"cursor,omitempty"`
	Ident   string   `json:"ident,omitempty"`
	Error   string   `json:"error,omitempty"`
	Partial []string `json:"partial,omitempty"`
}

// ReloadResponse is the body of POST /v1/{index}/reload.
type ReloadResponse struct {
	Index      string `json:"index"`
	Generation uint64 `json:"generation"`
}

// IngestRecord is one NDJSON line of POST /v1/{index}/ingest: a
// trajectory's edges in travel order and, for temporal indexes, the
// aligned entry-timestamp column.
type IngestRecord struct {
	Edges []uint32 `json:"edges"`
	Times []int64  `json:"times,omitempty"`
}

// IngestResponse is the body of POST /v1/{index}/ingest. The batch is
// atomic: either every record was appended (with consecutive global
// IDs starting at FirstID) or none was.
type IngestResponse struct {
	Index    string `json:"index"`
	Appended int    `json:"appended"`
	FirstID  int    `json:"firstId"`
	// Delta is the uncompressed delta's size after the batch (and
	// after the optional seal).
	Delta      int    `json:"deltaTrajectories"`
	Generation uint64 `json:"generation"`
	// Sealed is the number of trajectories compacted when the request
	// asked for ?seal=true.
	Sealed int `json:"sealed,omitempty"`
}

// SealResponse is the body of POST /v1/{index}/seal.
type SealResponse struct {
	Index      string `json:"index"`
	Sealed     int    `json:"sealed"`
	Delta      int    `json:"deltaTrajectories"`
	Generation uint64 `json:"generation"`
}

// CompactResponse is the body of POST /v1/{index}/compact: the sealed
// shard set before and after the merge rounds. Merged is 0 when the
// shard set was already within policy. Compaction never renumbers
// trajectories, so cursors issued before the call stay valid.
type CompactResponse struct {
	Index        string `json:"index"`
	Merged       int    `json:"merged"`
	Rows         int    `json:"rows"`
	Rounds       int    `json:"rounds"`
	ShardsBefore int    `json:"shardsBefore"`
	ShardsAfter  int    `json:"shardsAfter"`
	Generation   uint64 `json:"generation"`
}

// GPSResponse is the body of POST /v1/{index}/gps: one typed result
// per input trace (in order), plus the batch totals. Accepted traces
// were appended atomically with consecutive IDs; rejected ones carry a
// reason code from the gps/mapmatch catalog.
type GPSResponse struct {
	Index string `json:"index"`
	engine.GPSResult
}

// SubscribeRequest is the body of POST /v1/{index}/subscribe: the
// standing-query predicate plus lifecycle knobs. From/To, when either
// is present, constrain matches to entry times within the closed
// interval (temporal indexes only).
type SubscribeRequest struct {
	Path []uint32 `json:"path"`
	From *int64   `json:"from,omitempty"`
	To   *int64   `json:"to,omitempty"`
	// TTLSeconds bounds the subscription's lifetime (0 = server
	// default, 15 minutes).
	TTLSeconds int `json:"ttlSeconds,omitempty"`
	// Buffer is the per-subscriber notification buffer (0 = server
	// default, 64). When it is full, notifications are dropped and
	// counted rather than blocking ingestion.
	Buffer int `json:"buffer,omitempty"`
}

// Predicate converts the wire form to the engine descriptor.
func (sr SubscribeRequest) Predicate() engine.Predicate {
	p := engine.Predicate{Path: sr.Path}
	if sr.From != nil || sr.To != nil {
		iv := &cinct.Interval{From: math.MinInt64, To: math.MaxInt64}
		if sr.From != nil {
			iv.From = *sr.From
		}
		if sr.To != nil {
			iv.To = *sr.To
		}
		p.Interval = iv
	}
	return p
}

// SubscribeResponse is the body of POST /v1/{index}/subscribe: the
// subscription ID plus the paths to consume it — Events streams SSE,
// Poll is the long-poll fallback, and DELETE on Cancel ends it.
type SubscribeResponse struct {
	Index        string `json:"index"`
	Subscription string `json:"subscription"`
	// ExpiresAt is the TTL deadline in Unix seconds.
	ExpiresAt int64  `json:"expiresAt"`
	Events    string `json:"events"`
	Poll      string `json:"poll"`
	Cancel    string `json:"cancel"`
}

// PollResponse is the body of GET
// /v1/{index}/subscriptions/{id}/poll: the notifications that arrived
// within the wait window (possibly none), and whether the subscription
// has ended — a closed subscription never produces more, so the client
// should stop polling.
type PollResponse struct {
	Index         string                `json:"index"`
	Subscription  string                `json:"subscription"`
	Notifications []engine.Notification `json:"notifications"`
	Closed        bool                  `json:"closed"`
}

// CancelResponse is the body of DELETE /v1/{index}/subscriptions/{id}.
type CancelResponse struct {
	Index        string `json:"index"`
	Subscription string `json:"subscription"`
	Cancelled    bool   `json:"cancelled"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WireMatches converts library matches to wire form (never null in
// JSON).
func WireMatches(hits []cinct.Match) []Match {
	out := make([]Match, len(hits))
	for i, h := range hits {
		out[i] = Match{Trajectory: h.Trajectory, Offset: h.Offset}
	}
	return out
}

// WireTemporalMatches converts library temporal matches to wire form.
func WireTemporalMatches(hits []cinct.TemporalMatch) []TemporalMatch {
	out := make([]TemporalMatch, len(hits))
	for i, h := range hits {
		out[i] = TemporalMatch{
			Match:     Match{Trajectory: h.Trajectory, Offset: h.Offset},
			EnteredAt: h.EnteredAt,
		}
	}
	return out
}

// WireEdges returns edges, de-nil-ed so it marshals as [] rather than
// null.
func WireEdges(edges []uint32) []uint32 {
	if edges == nil {
		return []uint32{}
	}
	return edges
}

// EncodeJSON is the canonical response encoding: compact json.Marshal
// plus a trailing newline. Handlers, the Client, and the differential
// tests all use it, so "byte-identical to the in-process call" is a
// checkable property rather than an aspiration.
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
