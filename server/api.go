// Package server exposes a cinct engine over HTTP: a moby-style
// router/handler split (each endpoint is a Route owned by a Router,
// assembled onto one mux by Server), canonical JSON wire types shared
// by the daemon and the Client, request-scoped timeouts, and graceful
// shutdown. The daemon binary lives in cmd/cinctd; the same handlers
// serve httptest instances in the differential tests.
package server

import (
	"encoding/json"

	"cinct"
	"cinct/internal/engine"
)

// Match mirrors cinct.Match on the wire.
type Match struct {
	Trajectory int `json:"trajectory"`
	Offset     int `json:"offset"`
}

// TemporalMatch mirrors cinct.TemporalMatch on the wire.
type TemporalMatch struct {
	Match
	EnteredAt int64 `json:"enteredAt"`
}

// ListResponse is the body of GET /v1/indexes.
type ListResponse struct {
	Indexes []engine.Info `json:"indexes"`
}

// CountResponse is the body of GET /v1/{index}/count.
type CountResponse struct {
	Index string   `json:"index"`
	Path  []uint32 `json:"path"`
	Count int      `json:"count"`
}

// FindResponse is the body of GET /v1/{index}/find.
type FindResponse struct {
	Index   string   `json:"index"`
	Path    []uint32 `json:"path"`
	Limit   int      `json:"limit"`
	Matches []Match  `json:"matches"`
}

// TrajectoryResponse is the body of GET /v1/{index}/trajectory/{id}.
type TrajectoryResponse struct {
	Index string   `json:"index"`
	ID    int      `json:"id"`
	Edges []uint32 `json:"edges"`
}

// SubPathResponse is the body of GET /v1/{index}/subpath.
type SubPathResponse struct {
	Index string   `json:"index"`
	ID    int      `json:"id"`
	From  int      `json:"from"`
	To    int      `json:"to"`
	Edges []uint32 `json:"edges"`
}

// TemporalFindResponse is the body of GET /v1/{index}/temporal/find.
type TemporalFindResponse struct {
	Index   string          `json:"index"`
	Path    []uint32        `json:"path"`
	From    int64           `json:"from"`
	To      int64           `json:"to"`
	Limit   int             `json:"limit"`
	Matches []TemporalMatch `json:"matches"`
}

// TemporalCountResponse is the body of GET /v1/{index}/temporal/count.
type TemporalCountResponse struct {
	Index string   `json:"index"`
	Path  []uint32 `json:"path"`
	From  int64    `json:"from"`
	To    int64    `json:"to"`
	Count int      `json:"count"`
}

// ReloadResponse is the body of POST /v1/{index}/reload.
type ReloadResponse struct {
	Index      string `json:"index"`
	Generation uint64 `json:"generation"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WireMatches converts library matches to wire form (never null in
// JSON).
func WireMatches(hits []cinct.Match) []Match {
	out := make([]Match, len(hits))
	for i, h := range hits {
		out[i] = Match{Trajectory: h.Trajectory, Offset: h.Offset}
	}
	return out
}

// WireTemporalMatches converts library temporal matches to wire form.
func WireTemporalMatches(hits []cinct.TemporalMatch) []TemporalMatch {
	out := make([]TemporalMatch, len(hits))
	for i, h := range hits {
		out[i] = TemporalMatch{
			Match:     Match{Trajectory: h.Trajectory, Offset: h.Offset},
			EnteredAt: h.EnteredAt,
		}
	}
	return out
}

// WireEdges returns edges, de-nil-ed so it marshals as [] rather than
// null.
func WireEdges(edges []uint32) []uint32 {
	if edges == nil {
		return []uint32{}
	}
	return edges
}

// EncodeJSON is the canonical response encoding: compact json.Marshal
// plus a trailing newline. Handlers, the Client, and the differential
// tests all use it, so "byte-identical to the in-process call" is a
// checkable property rather than an aspiration.
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
