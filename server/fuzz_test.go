package server

import (
	"encoding/json"
	"errors"
	"testing"

	"cinct"
)

// FuzzQueryUnmarshal pins the wire-to-descriptor path of POST
// /v1/{index}/query: any JSON body either produces a Query whose
// canonical encoding round-trips, or fails with a typed error
// (cinct.ErrBadQuery for descriptor violations) — never a panic. Seed
// corpus lives under testdata/fuzz/ (regenerate with
// scripts/genfuzzseeds).
func FuzzQueryUnmarshal(f *testing.F) {
	f.Add([]byte(`{"path":[1,2,3]}`))
	f.Add([]byte(`{"path":[1],"kind":"count","limit":10}`))
	f.Add([]byte(`{"path":[2,3],"kind":"trajectories","from":0,"to":999,"cursor":"AQ"}`))
	f.Add([]byte(`{"path":[4294967295],"limit":-1}`))
	f.Add([]byte(`{"kind":"nosuch"}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		var req QueryRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not JSON: rejected before any cinct code runs
		}
		q, err := req.Query()
		if err != nil {
			if !errors.Is(err, cinct.ErrBadQuery) {
				t.Fatalf("Query(): untyped error %v", err)
			}
			return
		}
		enc, err := q.MarshalBinary()
		if err != nil {
			if !errors.Is(err, cinct.ErrBadQuery) {
				t.Fatalf("MarshalBinary: untyped error %v", err)
			}
			return
		}
		if len(enc) == 0 {
			t.Fatal("MarshalBinary returned empty encoding")
		}
		// The wire round trip must be loss-free: re-rendering the
		// descriptor and converting back yields the same encoding.
		q2, err := WireQuery(q).Query()
		if err != nil {
			t.Fatalf("WireQuery round trip: %v", err)
		}
		enc2, err := q2.MarshalBinary()
		if err != nil {
			t.Fatalf("WireQuery round trip encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("round trip changed the query: %x vs %x", enc, enc2)
		}
	})
}
