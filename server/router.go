package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"unicode"

	"cinct"
	"cinct/internal/engine"
)

// APIFunc is the signature every endpoint handler implements: pure
// request → response-or-error, with transport concerns (status
// mapping, JSON envelope, timeouts) handled once by the server's
// middleware. This is moby's HttpApiFunc shape minus the bits cinct
// does not need.
type APIFunc func(ctx context.Context, w http.ResponseWriter, r *http.Request) error

// Route binds one method+pattern (net/http ServeMux syntax, with
// {wildcards}) to a handler.
type Route struct {
	Method  string
	Pattern string
	Handler APIFunc
	// Streaming marks a long-lived response (SSE, long-poll): the
	// request bypasses the per-request timeout (it would sever the
	// stream mid-life) and the concurrency gate (a handful of standing
	// streams must not starve the short-request budget). Rate limiting
	// and accounting still apply.
	Streaming bool
}

// Router is a group of related routes; the Server assembles all
// routers onto one mux.
type Router interface {
	Routes() []Route
}

// errBadRequest wraps parameter parse failures so the status mapper
// can distinguish them from engine errors.
var errBadRequest = errors.New("bad request")

// httpStatus maps an error to its response status code.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrOutOfRange), errors.Is(err, errBadRequest),
		errors.Is(err, cinct.ErrBadQuery), errors.Is(err, cinct.ErrBadCursor),
		errors.Is(err, cinct.ErrBadAppend), errors.Is(err, engine.ErrBadSubscription):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrStaleCursor):
		// The cursor was valid once; the index it pointed into is gone.
		return http.StatusGone
	case errors.Is(err, engine.ErrPartial):
		// Scatter-gather could not reach every owner; the local data
		// alone would be a silently truncated answer, so fail loudly.
		return http.StatusBadGateway
	case errors.Is(err, engine.ErrNotTemporal), errors.Is(err, engine.ErrNoFile),
		errors.Is(err, cinct.ErrNoLocate), errors.Is(err, cinct.ErrNoTimestamps),
		errors.Is(err, cinct.ErrNotAppendable), errors.Is(err, engine.ErrNoRoadnet):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrOverloaded):
		// Shed by admission control (engine worker pool or server gate).
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON sends v with the canonical encoding.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	body, err := EncodeJSON(v)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err = w.Write(body)
	return err
}

// parsePath parses the ?path= parameter: edge IDs separated by commas
// and/or whitespace, e.g. "17,42,99" or "17 42 99".
func parsePath(r *http.Request) ([]uint32, error) {
	raw := r.URL.Query().Get("path")
	fields := strings.FieldsFunc(raw, func(c rune) bool {
		return c == ',' || unicode.IsSpace(c)
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("%w: missing or empty path parameter", errBadRequest)
	}
	out := make([]uint32, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: bad edge ID %q", errBadRequest, f)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, key string, def int) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s %q", errBadRequest, key, raw)
	}
	return v, nil
}

// int64Param parses an optional int64 query parameter.
func int64Param(r *http.Request, key string, def int64) (int64, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s %q", errBadRequest, key, raw)
	}
	return v, nil
}

// requiredIntParam parses a mandatory integer query parameter.
func requiredIntParam(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("%w: missing %s parameter", errBadRequest, key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s %q", errBadRequest, key, raw)
	}
	return v, nil
}
