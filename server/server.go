package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cinct/internal/cluster"
	"cinct/internal/engine"
)

// Config tunes a Server. The zero value serves on :8132 with a 30s
// per-request timeout, no rate limiting and no concurrency gate.
type Config struct {
	// Addr is the listen address for ListenAndServe.
	Addr string
	// RequestTimeout bounds each request's context; engine queries
	// waiting on a worker slot fail with 504 when it expires. 0 means
	// 30s; negative disables the per-request deadline.
	RequestTimeout time.Duration
	// Logger receives one access-log line per request and one line per
	// failed request; nil discards both.
	Logger *log.Logger
	// RateLimit is the per-client request budget in requests/second
	// (keyed by X-Client-ID, falling back to remote IP). Clients over
	// budget get 429 with a Retry-After hint. 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth per client; 0 means
	// max(2×RateLimit, 1).
	RateBurst int
	// MaxInflight caps concurrently served API requests; requests
	// beyond it are shed with 503 rather than queued. 0 disables the
	// gate.
	MaxInflight int
}

func (c Config) addr() string {
	if c.Addr == "" {
		return ":8132"
	}
	return c.Addr
}

func (c Config) timeout() time.Duration {
	switch {
	case c.RequestTimeout > 0:
		return c.RequestTimeout
	case c.RequestTimeout < 0:
		return 0
	}
	return 30 * time.Second
}

func (c Config) burst() int {
	if c.RateBurst > 0 {
		return c.RateBurst
	}
	if b := int(2 * c.RateLimit); b > 1 {
		return b
	}
	return 1
}

// Server assembles the routers over one engine into an http.Server
// with graceful shutdown. Construct with New, then ListenAndServe (or
// mount Handler() on a test server).
type Server struct {
	eng     *engine.Engine
	cfg     Config
	routers []Router
	httpSrv *http.Server

	metrics  *serverMetrics
	limiter  *rateLimiter
	inflight chan struct{}
	reqSeq   atomic.Uint64
}

// New builds a server over eng.
func New(eng *engine.Engine, cfg Config) *Server {
	s := &Server{
		eng: eng,
		cfg: cfg,
		routers: []Router{
			&systemRouter{eng: eng},
			&queryRouter{eng: eng},
			&gpsRouter{eng: eng},
		},
		metrics: newServerMetrics(eng.Metrics()),
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.burst())
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	s.httpSrv = &http.Server{
		Addr:              cfg.addr(),
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the fully assembled mux (usable directly under
// httptest): every API route behind the middleware chain, plus the
// Prometheus scrape endpoint, which bypasses the chain so overload
// never blinds the monitoring that would diagnose it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routers {
		for _, route := range r.Routes() {
			mux.Handle(route.Method+" "+route.Pattern, s.wrap(route))
		}
	}
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	return mux
}

// serveMetrics renders the engine's registry (which the server's HTTP
// series are registered into) in the Prometheus text format.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.eng.Metrics().WriteTo(w); err != nil && s.cfg.Logger != nil {
		s.cfg.Logger.Printf("GET /metrics: %v", err)
	}
}

// wrap composes the middleware chain around one endpoint and
// terminates it with the error → (status, JSON envelope) mapping.
// Outermost first: request ID + access log, metrics recorder, rate
// limiter, concurrency gate, timeout — so a rejected request is still
// logged and counted, and never consumes a gate slot or a deadline
// timer. Streaming routes keep the observability layers but skip the
// gate and the timeout: a standing stream lives for minutes by design
// and must neither be severed by the request deadline nor pin a
// short-request concurrency slot.
func (s *Server) wrap(route Route) http.Handler {
	h := route.Handler
	if route.Streaming {
		h = chain(h,
			s.requestID(),
			s.metricsRecorder(),
			s.rateLimit(),
		)
	} else {
		h = chain(h,
			s.requestID(),
			s.metricsRecorder(),
			s.rateLimit(),
			s.gate(),
			s.timeout(),
		)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		err := h(r.Context(), w, r)
		if err == nil {
			return
		}
		status := httpStatus(err)
		var pe *engine.PartialError
		if errors.As(err, &pe) {
			// Name the unreachable peers in a header as well as the
			// body, so a proxy or a thin client can tell "partial
			// cluster" apart from any other 502 without parsing JSON.
			w.Header().Set(cluster.PartialHeader, strings.Join(pe.Peers, ","))
		}
		switch status {
		case http.StatusTooManyRequests:
			var rl *rateLimitError
			if errors.As(err, &rl) {
				w.Header().Set("Retry-After", retryAfterSeconds(rl.retryAfter))
			} else {
				w.Header().Set("Retry-After", "1")
			}
		case http.StatusServiceUnavailable:
			// Shed load is transient by construction; any in-flight
			// request finishing frees capacity.
			w.Header().Set("Retry-After", "1")
		}
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s: %d %v", r.Method, r.URL.Path, status, err)
		}
		if werr := writeJSON(w, status, ErrorResponse{Error: err.Error()}); werr != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s: writing error response: %v", r.Method, r.URL.Path, werr)
		}
	})
}

// retryAfterSeconds renders a wait as the integral seconds Retry-After
// requires, rounding up so "retry after 0s" never lies.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// ListenAndServe serves until the listener fails or Shutdown is
// called; a clean shutdown returns nil.
func (s *Server) ListenAndServe() error {
	err := s.httpSrv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Serve serves on an existing listener (tests bind :0 and read
// l.Addr() back).
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests (bounded by ctx) and stops the
// listener; it does not close the engine, which the caller owns.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}
