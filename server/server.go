package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"cinct/internal/engine"
)

// Config tunes a Server. The zero value serves on :8132 with a 30s
// per-request timeout.
type Config struct {
	// Addr is the listen address for ListenAndServe.
	Addr string
	// RequestTimeout bounds each request's context; engine queries
	// waiting on a worker slot fail with 504 when it expires. 0 means
	// 30s; negative disables the per-request deadline.
	RequestTimeout time.Duration
	// Logger receives one line per failed request; nil discards.
	Logger *log.Logger
}

func (c Config) addr() string {
	if c.Addr == "" {
		return ":8132"
	}
	return c.Addr
}

func (c Config) timeout() time.Duration {
	switch {
	case c.RequestTimeout > 0:
		return c.RequestTimeout
	case c.RequestTimeout < 0:
		return 0
	}
	return 30 * time.Second
}

// Server assembles the routers over one engine into an http.Server
// with graceful shutdown. Construct with New, then ListenAndServe (or
// mount Handler() on a test server).
type Server struct {
	eng     *engine.Engine
	cfg     Config
	routers []Router
	httpSrv *http.Server
}

// New builds a server over eng.
func New(eng *engine.Engine, cfg Config) *Server {
	s := &Server{
		eng: eng,
		cfg: cfg,
		routers: []Router{
			&systemRouter{eng: eng},
			&queryRouter{eng: eng},
		},
	}
	s.httpSrv = &http.Server{
		Addr:              cfg.addr(),
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the fully assembled mux (usable directly under
// httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.routers {
		for _, route := range r.Routes() {
			mux.Handle(route.Method+" "+route.Pattern, s.wrap(route.Handler))
		}
	}
	return mux
}

// wrap is the one middleware layer: request-scoped timeout, error →
// (status, JSON envelope) mapping, failure logging.
func (s *Server) wrap(h APIFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if d := s.cfg.timeout(); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		err := h(ctx, w, r)
		if err == nil {
			return
		}
		status := httpStatus(err)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s: %d %v", r.Method, r.URL.Path, status, err)
		}
		if werr := writeJSON(w, status, ErrorResponse{Error: err.Error()}); werr != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s: writing error response: %v", r.Method, r.URL.Path, werr)
		}
	})
}

// ListenAndServe serves until the listener fails or Shutdown is
// called; a clean shutdown returns nil.
func (s *Server) ListenAndServe() error {
	err := s.httpSrv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Serve serves on an existing listener (tests bind :0 and read
// l.Addr() back).
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains in-flight requests (bounded by ctx) and stops the
// listener; it does not close the engine, which the caller owns.
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	return nil
}
