package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/gps"
	"cinct/internal/wire"
)

// DefaultPageSize is the page length Client.Search requests per POST
// when the caller did not bound the query (Limit 0) or set PageSize.
const DefaultPageSize = 1000

// Client speaks the cinctd wire protocol; it is what cmd/cinct's
// -remote mode uses, and its method set deliberately mirrors
// engine.Engine so a CLI command can target either transparently.
type Client struct {
	base string
	hc   *http.Client
	// PageSize bounds each page Client.Search fetches while draining an
	// unbounded query; 0 means DefaultPageSize. Set before first use.
	PageSize int
}

// NewClient targets a daemon at base (e.g. "http://localhost:8132").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: orDefault(httpClient)}
}

func orDefault(hc *http.Client) *http.Client {
	if hc == nil {
		return http.DefaultClient
	}
	return hc
}

// APIError is the typed form of a non-2xx daemon reply: the HTTP
// status, the server's error message, and — for 429/503 — the parsed
// Retry-After hint. errors.Is maps it back onto the sentinel the
// server mapped from, so `errors.Is(err, server.ErrRateLimited)` and
// `errors.Is(err, engine.ErrOverloaded)` work end-to-end across the
// wire.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the parsed Retry-After hint. A zero duration is a
	// valid hint ("retry immediately"); check HasRetryAfter to
	// distinguish it from "no hint sent".
	RetryAfter    time.Duration
	HasRetryAfter bool
	// PartialPeers lists the unreachable peers of a partial cluster
	// result (the X-CiNCT-Partial header of a 502).
	PartialPeers []string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
	}
	return fmt.Sprintf("server: HTTP %d", e.Status)
}

// Is maps wire statuses back to the typed errors the server mapped
// from, so remote and in-process callers handle overload identically.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrRateLimited:
		return e.Status == http.StatusTooManyRequests
	case engine.ErrOverloaded:
		return e.Status == http.StatusServiceUnavailable
	case engine.ErrNotFound:
		return e.Status == http.StatusNotFound
	case engine.ErrPartial:
		return e.Status == http.StatusBadGateway
	case engine.ErrStaleCursor:
		return e.Status == http.StatusGone
	}
	return false
}

// apiError builds the typed error for a non-2xx response whose body
// has already been read.
func apiError(resp *http.Response, body []byte) *APIError {
	e := &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	var er ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		e.Message = er.Error
	}
	if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
		e.RetryAfter, e.HasRetryAfter = d, true
	}
	if p := resp.Header.Get("X-CiNCT-Partial"); p != "" {
		for _, peer := range strings.Split(p, ",") {
			if peer = strings.TrimSpace(peer); peer != "" {
				e.PartialPeers = append(e.PartialPeers, peer)
			}
		}
	}
	return e
}

// parseRetryAfter decodes the Retry-After header's two RFC 9110
// shapes: delay-seconds (integral or, leniently, fractional — some
// proxies emit "1.5") and HTTP-date. "0" is a valid hint meaning
// "retry immediately" and must not be conflated with an absent header;
// negative delays and dates in the past clamp to 0.
func parseRetryAfter(v string) (time.Duration, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil {
		if secs < 0 {
			secs = 0
		}
		return time.Duration(secs * float64(time.Second)), true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// pathParam spells a query path the way the server parses it.
func pathParam(path []uint32) string {
	parts := make([]string, len(path))
	for i, e := range path {
		parts[i] = strconv.FormatUint(uint64(e), 10)
	}
	return strings.Join(parts, ",")
}

// call performs one request and decodes the JSON body into out,
// translating non-2xx replies into errors carrying the server's
// message.
func (c *Client) call(ctx context.Context, method, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, body)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// Indexes lists the daemon's catalog.
func (c *Client) Indexes(ctx context.Context) ([]engine.Info, error) {
	var resp ListResponse
	if err := c.call(ctx, http.MethodGet, "/v1/indexes", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Indexes, nil
}

// Count counts occurrences of path in the named index.
func (c *Client) Count(ctx context.Context, index string, path []uint32) (int, error) {
	var resp CountResponse
	q := url.Values{"path": {pathParam(path)}}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/count", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Find locates up to limit occurrences of path (limit 0 = all; the
// limit is sent explicitly so the server default never applies).
func (c *Client) Find(ctx context.Context, index string, path []uint32, limit int) ([]cinct.Match, error) {
	var resp FindResponse
	q := url.Values{"path": {pathParam(path)}, "limit": {strconv.Itoa(limit)}}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/find", q, &resp); err != nil {
		return nil, err
	}
	out := make([]cinct.Match, len(resp.Matches))
	for i, m := range resp.Matches {
		out[i] = cinct.Match{Trajectory: m.Trajectory, Offset: m.Offset}
	}
	return out, nil
}

// Trajectory fetches a full trajectory by ID.
func (c *Client) Trajectory(ctx context.Context, index string, id int) ([]uint32, error) {
	var resp TrajectoryResponse
	p := "/v1/" + url.PathEscape(index) + "/trajectory/" + strconv.Itoa(id)
	if err := c.call(ctx, http.MethodGet, p, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Edges, nil
}

// SubPath fetches edges [from, to) of a trajectory.
func (c *Client) SubPath(ctx context.Context, index string, id, from, to int) ([]uint32, error) {
	var resp SubPathResponse
	q := url.Values{
		"traj": {strconv.Itoa(id)},
		"from": {strconv.Itoa(from)},
		"to":   {strconv.Itoa(to)},
	}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/subpath", q, &resp); err != nil {
		return nil, err
	}
	return resp.Edges, nil
}

// FindInInterval runs a strict path query against a temporal index.
func (c *Client) FindInInterval(ctx context.Context, index string, path []uint32, from, to int64, limit int) ([]cinct.TemporalMatch, error) {
	var resp TemporalFindResponse
	q := url.Values{
		"path":  {pathParam(path)},
		"from":  {strconv.FormatInt(from, 10)},
		"to":    {strconv.FormatInt(to, 10)},
		"limit": {strconv.Itoa(limit)},
	}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/temporal/find", q, &resp); err != nil {
		return nil, err
	}
	out := make([]cinct.TemporalMatch, len(resp.Matches))
	for i, m := range resp.Matches {
		out[i] = cinct.TemporalMatch{
			Match:     cinct.Match{Trajectory: m.Trajectory, Offset: m.Offset},
			EnteredAt: m.EnteredAt,
		}
	}
	return out, nil
}

// CountInInterval counts strict-path-query matches against a temporal
// index.
func (c *Client) CountInInterval(ctx context.Context, index string, path []uint32, from, to int64) (int, error) {
	var resp TemporalCountResponse
	q := url.Values{
		"path": {pathParam(path)},
		"from": {strconv.FormatInt(from, 10)},
		"to":   {strconv.FormatInt(to, 10)},
	}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/temporal/count", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// QueryPage is one decoded page of POST /v1/{index}/query: the hits in
// canonical order, the count reported by the summary record, and the
// resume cursor ("" when the server exhausted the stream).
type QueryPage struct {
	Hits   []cinct.Hit
	Count  int
	Cursor string
}

// SearchPage executes exactly one Query page against the daemon,
// decoding the NDJSON stream as it arrives (the shared wire codec —
// the same decoder the cluster fan-out uses). Most callers want
// Search, which follows cursors transparently. A mid-stream partial
// cluster result surfaces as *engine.PartialError.
func (c *Client) SearchPage(ctx context.Context, index string, q cinct.Query) (*QueryPage, error) {
	body, err := json.Marshal(WireQuery(q))
	if err != nil {
		return nil, err
	}
	u := c.base + "/v1/" + url.PathEscape(index) + "/query"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, apiError(resp, msg)
	}
	page, err := wire.ReadPage(resp.Body)
	if err != nil {
		var se *wire.StreamError
		if errors.As(err, &se) {
			if len(se.Partial) > 0 {
				return nil, &engine.PartialError{Peers: se.Partial}
			}
			return nil, fmt.Errorf("server: %s", se.Msg)
		}
		return nil, err
	}
	return &QueryPage{Hits: page.Hits, Count: page.Count, Cursor: page.Cursor}, nil
}

// Search executes a Query against the daemon and returns a lazy hit
// iterator that pages transparently: it fetches cursor-linked pages of
// at most PageSize hits until the stream is exhausted or Limit hits
// have been yielded, so iterating an unbounded query never holds more
// than one page in memory. For CountOnly queries the iterator yields
// nothing; use SearchPage (or Count) for the number. A transport or
// server failure is yielded once as the final element's error.
func (c *Client) Search(ctx context.Context, index string, q cinct.Query) iter.Seq2[cinct.Hit, error] {
	return func(yield func(cinct.Hit, error) bool) {
		pageSize := c.PageSize
		if pageSize <= 0 {
			pageSize = DefaultPageSize
		}
		yielded := 0
		cursor := q.Cursor
		for {
			pq := q
			pq.Cursor = cursor
			pq.Limit = pageSize
			if q.Limit > 0 && q.Limit-yielded < pageSize {
				pq.Limit = q.Limit - yielded
			}
			page, err := c.SearchPage(ctx, index, pq)
			if err != nil {
				yield(cinct.Hit{}, err)
				return
			}
			for _, h := range page.Hits {
				if !yield(h, nil) {
					return
				}
			}
			yielded += len(page.Hits)
			if q.Kind == cinct.CountOnly || page.Cursor == "" ||
				len(page.Hits) == 0 || (q.Limit > 0 && yielded >= q.Limit) {
				return
			}
			cursor = page.Cursor
		}
	}
}

// Reload asks the daemon to re-read one index from disk; it returns
// the new generation number.
func (c *Client) Reload(ctx context.Context, index string) (uint64, error) {
	var resp ReloadResponse
	if err := c.call(ctx, http.MethodPost, "/v1/"+url.PathEscape(index)+"/reload", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Generation, nil
}

// Ingest appends a batch of trajectories to a live index over the
// daemon's NDJSON write endpoint. The batch is atomic and immediately
// queryable; with seal the server compacts the delta before replying.
// Temporal indexes require every record to carry Times.
func (c *Client) Ingest(ctx context.Context, index string, recs []IngestRecord, seal bool) (*IngestResponse, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return nil, err
		}
	}
	u := c.base + "/v1/" + url.PathEscape(index) + "/ingest"
	if seal {
		u += "?seal=true"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, raw)
	}
	var out IngestResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestGPS posts a batch of raw GPS traces to the daemon's
// map-matching ingest endpoint. Traces are accepted or rejected
// independently; the response carries one typed result per trace in
// input order.
func (c *Client) IngestGPS(ctx context.Context, index string, traces []gps.Trace) (*GPSResponse, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, tr := range traces {
		if err := enc.Encode(tr); err != nil {
			return nil, err
		}
	}
	u := c.base + "/v1/" + url.PathEscape(index) + "/gps"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, raw)
	}
	var out GPSResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Subscribe registers a standing query on the daemon and returns the
// subscription handle (ID, expiry, consume endpoints). Follow up with
// Notifications (SSE) or Poll, and Unsubscribe when done.
func (c *Client) Subscribe(ctx context.Context, index string, req SubscribeRequest) (*SubscribeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	u := c.base + "/v1/" + url.PathEscape(index) + "/subscribe"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, raw)
	}
	var out SubscribeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Unsubscribe cancels a standing query; its streams close.
func (c *Client) Unsubscribe(ctx context.Context, index, id string) error {
	p := "/v1/" + url.PathEscape(index) + "/subscriptions/" + url.PathEscape(id)
	return c.call(ctx, http.MethodDelete, p, nil, nil)
}

// Poll long-polls one subscription: it blocks up to wait for the first
// notification, then returns whatever batch is buffered. A response
// with Closed set means the subscription ended and polling should stop.
func (c *Client) Poll(ctx context.Context, index, id string, wait time.Duration) (*PollResponse, error) {
	var resp PollResponse
	q := url.Values{"wait": {strconv.Itoa(int(wait / time.Second))}}
	p := "/v1/" + url.PathEscape(index) + "/subscriptions/" + url.PathEscape(id) + "/poll"
	if err := c.call(ctx, http.MethodGet, p, q, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Notifications attaches to a subscription's SSE stream and yields
// notifications as the daemon pushes them. The iterator ends cleanly
// when the subscription closes (cancel, expiry, shutdown) and yields
// one final error for transport failures. Cancel ctx to detach without
// ending the subscription.
func (c *Client) Notifications(ctx context.Context, index, id string) iter.Seq2[engine.Notification, error] {
	return func(yield func(engine.Notification, error) bool) {
		u := c.base + "/v1/" + url.PathEscape(index) + "/subscriptions/" + url.PathEscape(id) + "/events"
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			yield(engine.Notification{}, err)
			return
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := c.hc.Do(req)
		if err != nil {
			yield(engine.Notification{}, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			yield(engine.Notification{}, apiError(resp, raw))
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		var event string
		var data bytes.Buffer
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				// Blank line dispatches the accumulated event.
				if event == "end" {
					return
				}
				if event == "notification" && data.Len() > 0 {
					var n engine.Notification
					if err := json.Unmarshal(data.Bytes(), &n); err != nil {
						yield(engine.Notification{}, fmt.Errorf("server: bad notification: %w", err))
						return
					}
					if !yield(n, nil) {
						return
					}
				}
				event, data = "", bytes.Buffer{}
			case strings.HasPrefix(line, ":"):
				// Keepalive comment.
			case strings.HasPrefix(line, "event:"):
				event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
			case strings.HasPrefix(line, "data:"):
				data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
			}
		}
		if err := sc.Err(); err != nil && ctx.Err() == nil {
			yield(engine.Notification{}, err)
		}
	}
}

// Seal asks the daemon to compact one index's delta into a compressed
// shard (persisting it for file-backed indexes).
func (c *Client) Seal(ctx context.Context, index string) (*SealResponse, error) {
	var resp SealResponse
	if err := c.call(ctx, http.MethodPost, "/v1/"+url.PathEscape(index)+"/seal", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Compact asks the daemon to merge one index's sealed shards per its
// tiered policy, or down to a single shard when full is set.
func (c *Client) Compact(ctx context.Context, index string, full bool) (*CompactResponse, error) {
	var q url.Values
	if full {
		q = url.Values{"full": {"true"}}
	}
	var resp CompactResponse
	if err := c.call(ctx, http.MethodPost, "/v1/"+url.PathEscape(index)+"/compact", q, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
