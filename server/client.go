package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"cinct"
	"cinct/internal/engine"
)

// Client speaks the cinctd wire protocol; it is what cmd/cinct's
// -remote mode uses, and its method set deliberately mirrors
// engine.Engine so a CLI command can target either transparently.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a daemon at base (e.g. "http://localhost:8132").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: orDefault(httpClient)}
}

func orDefault(hc *http.Client) *http.Client {
	if hc == nil {
		return http.DefaultClient
	}
	return hc
}

// pathParam spells a query path the way the server parses it.
func pathParam(path []uint32) string {
	parts := make([]string, len(path))
	for i, e := range path {
		parts[i] = strconv.FormatUint(uint64(e), 10)
	}
	return strings.Join(parts, ",")
}

// call performs one request and decodes the JSON body into out,
// translating non-2xx replies into errors carrying the server's
// message.
func (c *Client) call(ctx context.Context, method, path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// Indexes lists the daemon's catalog.
func (c *Client) Indexes(ctx context.Context) ([]engine.Info, error) {
	var resp ListResponse
	if err := c.call(ctx, http.MethodGet, "/v1/indexes", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Indexes, nil
}

// Count counts occurrences of path in the named index.
func (c *Client) Count(ctx context.Context, index string, path []uint32) (int, error) {
	var resp CountResponse
	q := url.Values{"path": {pathParam(path)}}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/count", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Find locates up to limit occurrences of path (limit 0 = all; the
// limit is sent explicitly so the server default never applies).
func (c *Client) Find(ctx context.Context, index string, path []uint32, limit int) ([]cinct.Match, error) {
	var resp FindResponse
	q := url.Values{"path": {pathParam(path)}, "limit": {strconv.Itoa(limit)}}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/find", q, &resp); err != nil {
		return nil, err
	}
	out := make([]cinct.Match, len(resp.Matches))
	for i, m := range resp.Matches {
		out[i] = cinct.Match{Trajectory: m.Trajectory, Offset: m.Offset}
	}
	return out, nil
}

// Trajectory fetches a full trajectory by ID.
func (c *Client) Trajectory(ctx context.Context, index string, id int) ([]uint32, error) {
	var resp TrajectoryResponse
	p := "/v1/" + url.PathEscape(index) + "/trajectory/" + strconv.Itoa(id)
	if err := c.call(ctx, http.MethodGet, p, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Edges, nil
}

// SubPath fetches edges [from, to) of a trajectory.
func (c *Client) SubPath(ctx context.Context, index string, id, from, to int) ([]uint32, error) {
	var resp SubPathResponse
	q := url.Values{
		"traj": {strconv.Itoa(id)},
		"from": {strconv.Itoa(from)},
		"to":   {strconv.Itoa(to)},
	}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/subpath", q, &resp); err != nil {
		return nil, err
	}
	return resp.Edges, nil
}

// FindInInterval runs a strict path query against a temporal index.
func (c *Client) FindInInterval(ctx context.Context, index string, path []uint32, from, to int64, limit int) ([]cinct.TemporalMatch, error) {
	var resp TemporalFindResponse
	q := url.Values{
		"path":  {pathParam(path)},
		"from":  {strconv.FormatInt(from, 10)},
		"to":    {strconv.FormatInt(to, 10)},
		"limit": {strconv.Itoa(limit)},
	}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/temporal/find", q, &resp); err != nil {
		return nil, err
	}
	out := make([]cinct.TemporalMatch, len(resp.Matches))
	for i, m := range resp.Matches {
		out[i] = cinct.TemporalMatch{
			Match:     cinct.Match{Trajectory: m.Trajectory, Offset: m.Offset},
			EnteredAt: m.EnteredAt,
		}
	}
	return out, nil
}

// CountInInterval counts strict-path-query matches against a temporal
// index.
func (c *Client) CountInInterval(ctx context.Context, index string, path []uint32, from, to int64) (int, error) {
	var resp TemporalCountResponse
	q := url.Values{
		"path": {pathParam(path)},
		"from": {strconv.FormatInt(from, 10)},
		"to":   {strconv.FormatInt(to, 10)},
	}
	if err := c.call(ctx, http.MethodGet, "/v1/"+url.PathEscape(index)+"/temporal/count", q, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Reload asks the daemon to re-read one index from disk; it returns
// the new generation number.
func (c *Client) Reload(ctx context.Context, index string) (uint64, error) {
	var resp ReloadResponse
	if err := c.call(ctx, http.MethodPost, "/v1/"+url.PathEscape(index)+"/reload", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Generation, nil
}
