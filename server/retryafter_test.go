package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestParseRetryAfter pins the header decoder over every RFC 9110
// shape the wild emits — most importantly "0", a valid "retry
// immediately" hint that must be distinguishable from an absent
// header, and fractional seconds from lenient proxies.
func TestParseRetryAfter(t *testing.T) {
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	cases := []struct {
		name  string
		value string
		ok    bool
		min   time.Duration
		max   time.Duration
	}{
		{name: "absent", value: "", ok: false},
		{name: "blank", value: "   ", ok: false},
		{name: "zero", value: "0", ok: true, min: 0, max: 0},
		{name: "integral", value: "7", ok: true, min: 7 * time.Second, max: 7 * time.Second},
		{name: "fractional", value: "1.5", ok: true, min: 1500 * time.Millisecond, max: 1500 * time.Millisecond},
		{name: "negative clamps", value: "-3", ok: true, min: 0, max: 0},
		{name: "padded", value: " 2 ", ok: true, min: 2 * time.Second, max: 2 * time.Second},
		{name: "http date", value: future, ok: true, min: 80 * time.Second, max: 91 * time.Second},
		{name: "past date clamps", value: past, ok: true, min: 0, max: 0},
		{name: "garbage", value: "soon", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, ok := parseRetryAfter(tc.value)
			if ok != tc.ok {
				t.Fatalf("parseRetryAfter(%q) ok = %v, want %v", tc.value, ok, tc.ok)
			}
			if !ok {
				return
			}
			if d < tc.min || d > tc.max {
				t.Fatalf("parseRetryAfter(%q) = %v, want in [%v, %v]", tc.value, d, tc.min, tc.max)
			}
		})
	}
}

// TestClientRetryAfterZero pins the end-to-end regression: a 429 with
// "Retry-After: 0" must reach the caller as an explicit zero hint, not
// as a missing one.
func TestClientRetryAfterZero(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"rate limited"}` + "\n"))
	}))
	defer ts.Close()

	cl := NewClient(ts.URL, nil)
	_, err := cl.Indexes(t.Context())
	if err == nil {
		t.Fatal("expected an error")
	}
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("error type %T, want *APIError", err)
	}
	if !ae.HasRetryAfter || ae.RetryAfter != 0 {
		t.Fatalf("HasRetryAfter=%v RetryAfter=%v, want explicit zero hint", ae.HasRetryAfter, ae.RetryAfter)
	}
}
