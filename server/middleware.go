package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cinct/internal/engine"
	"cinct/internal/metrics"
)

// Middleware wraps an APIFunc with one transport concern. The server
// composes a fixed chain of these around every route — the moby
// router-middleware shape — so each concern (logging, metrics, rate
// limiting, admission, timeouts) is an isolated, testable layer
// instead of a clause in one monolithic wrapper.
type Middleware func(APIFunc) APIFunc

// chain applies mws to h, first element outermost: chain(h, a, b)
// runs a → b → h.
func chain(h APIFunc, mws ...Middleware) APIFunc {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// reqIDKey carries the request's sequence number through the context.
type reqIDKey struct{}

// RequestID returns the request's server-assigned sequence number, or
// 0 outside a server-handled request.
func RequestID(ctx context.Context) uint64 {
	id, _ := ctx.Value(reqIDKey{}).(uint64)
	return id
}

// requestID tags each request with a monotonic ID and, when a logger
// is configured, writes one access-log line per request carrying the
// ID, outcome status and wall time — the line failures correlate with.
func (s *Server) requestID() Middleware {
	return func(next APIFunc) APIFunc {
		return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
			id := s.reqSeq.Add(1)
			ctx = context.WithValue(ctx, reqIDKey{}, id)
			start := time.Now()
			err := next(ctx, w, r)
			if s.cfg.Logger != nil {
				status := http.StatusOK
				if err != nil {
					status = httpStatus(err)
				}
				s.cfg.Logger.Printf("req#%d %s %s %d %s", id, r.Method, r.URL.Path, status, time.Since(start).Round(time.Microsecond))
			}
			return err
		}
	}
}

// serverMetrics is the HTTP layer's instrument set, registered into
// the engine's registry so one /metrics scrape covers both layers.
type serverMetrics struct {
	requests    *metrics.CounterVec // by status code
	seconds     *metrics.Histogram
	inflight    *metrics.Gauge
	rateLimited *metrics.Counter
	shed        *metrics.Counter
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		requests:    reg.CounterVec("cinct_http_requests_total", "HTTP requests served, by status code.", "code"),
		seconds:     reg.Histogram("cinct_http_request_seconds", "HTTP request wall time.", metrics.ExpBuckets(0.0001, 4, 10)),
		inflight:    reg.Gauge("cinct_http_inflight", "HTTP requests currently being served."),
		rateLimited: reg.Counter("cinct_http_rate_limited_total", "Requests rejected by the per-client rate limiter."),
		shed:        reg.Counter("cinct_http_shed_total", "Requests rejected by the concurrency gate."),
	}
}

// metricsRecorder observes every request into the server series.
func (s *Server) metricsRecorder() Middleware {
	return func(next APIFunc) APIFunc {
		return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
			start := time.Now()
			s.metrics.inflight.Inc()
			err := next(ctx, w, r)
			s.metrics.inflight.Dec()
			s.metrics.seconds.Observe(time.Since(start).Seconds())
			status := http.StatusOK
			if err != nil {
				status = httpStatus(err)
			}
			s.metrics.requests.With(strconv.Itoa(status)).Inc()
			return err
		}
	}
}

// rateLimit rejects clients that exceed their token bucket with
// ErrRateLimited (→ 429 + Retry-After). A nil limiter (Config.RateLimit
// 0) is a no-op.
func (s *Server) rateLimit() Middleware {
	return func(next APIFunc) APIFunc {
		if s.limiter == nil {
			return next
		}
		return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
			if ok, retry := s.limiter.allow(clientKey(r), time.Now()); !ok {
				s.metrics.rateLimited.Inc()
				return &rateLimitError{retryAfter: retry}
			}
			return next(ctx, w, r)
		}
	}
}

// gate bounds in-flight API requests. Unlike the engine's worker pool
// (which queues), the gate fails fast: a full server is better served
// telling clients to back off than stacking goroutines — the request
// it would queue behind holds an engine slot anyway.
func (s *Server) gate() Middleware {
	return func(next APIFunc) APIFunc {
		if s.inflight == nil {
			return next
		}
		return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
			select {
			case s.inflight <- struct{}{}:
			default:
				s.metrics.shed.Inc()
				return fmt.Errorf("%w: %d requests in flight", engine.ErrOverloaded, cap(s.inflight))
			}
			defer func() { <-s.inflight }()
			return next(ctx, w, r)
		}
	}
}

// timeout bounds the request context; engine work past the deadline
// fails with context.DeadlineExceeded (→ 504).
func (s *Server) timeout() Middleware {
	return func(next APIFunc) APIFunc {
		d := s.cfg.timeout()
		if d <= 0 {
			return next
		}
		return func(ctx context.Context, w http.ResponseWriter, r *http.Request) error {
			ctx, cancel := context.WithTimeout(ctx, d)
			defer cancel()
			return next(ctx, w, r)
		}
	}
}
