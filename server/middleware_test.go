package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"cinct"
	"cinct/internal/engine"
)

// TestHTTPStatusTable pins the status code for every typed error the
// stack can surface, wrapped the way real call sites wrap them — the
// wire contract clients key retry behavior off.
func TestHTTPStatusTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"not found", engine.ErrNotFound, http.StatusNotFound},
		{"out of range", engine.ErrOutOfRange, http.StatusBadRequest},
		{"bad request", errBadRequest, http.StatusBadRequest},
		{"bad query", cinct.ErrBadQuery, http.StatusBadRequest},
		{"bad cursor", cinct.ErrBadCursor, http.StatusBadRequest},
		{"bad append", cinct.ErrBadAppend, http.StatusBadRequest},
		{"stale cursor", engine.ErrStaleCursor, http.StatusGone},
		{"not temporal", engine.ErrNotTemporal, http.StatusUnprocessableEntity},
		{"no file", engine.ErrNoFile, http.StatusUnprocessableEntity},
		{"no locate", cinct.ErrNoLocate, http.StatusUnprocessableEntity},
		{"no timestamps", cinct.ErrNoTimestamps, http.StatusUnprocessableEntity},
		{"not appendable", cinct.ErrNotAppendable, http.StatusUnprocessableEntity},
		{"rate limited", ErrRateLimited, http.StatusTooManyRequests},
		{"rate limited typed", &rateLimitError{retryAfter: time.Second}, http.StatusTooManyRequests},
		{"overloaded", engine.ErrOverloaded, http.StatusServiceUnavailable},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"corrupt", engine.ErrCorrupt, http.StatusInternalServerError},
		{"unknown", errors.New("boom"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := httpStatus(tc.err); got != tc.want {
			t.Errorf("httpStatus(%s) = %d, want %d", tc.name, got, tc.want)
		}
		// Wrapped the way handlers wrap engine errors.
		if got := httpStatus(fmt.Errorf("context: %w", tc.err)); got != tc.want {
			t.Errorf("httpStatus(wrapped %s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestParsePathWhitespace pins the separator contract: commas and any
// Unicode whitespace — including the \n and \r that used to fall
// through to ParseUint and 400 the request.
func TestParsePathWhitespace(t *testing.T) {
	for _, raw := range []string{"1,2,3", "1 2 3", "1\t2\t3", "1\n2\n3", "1\r\n2\r\n3", " 1, 2,\n3 "} {
		r := httptest.NewRequest(http.MethodGet, "/v1/x/count?path="+url.QueryEscape(raw), nil)
		got, err := parsePath(r)
		if err != nil {
			t.Fatalf("parsePath(%q): %v", raw, err)
		}
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("parsePath(%q) = %v, want [1 2 3]", raw, got)
		}
	}
	for _, raw := range []string{"", " \n ", "1,x,3"} {
		r := httptest.NewRequest(http.MethodGet, "/v1/x/count?path="+url.QueryEscape(raw), nil)
		if _, err := parsePath(r); !errors.Is(err, errBadRequest) {
			t.Fatalf("parsePath(%q): err = %v, want errBadRequest", raw, err)
		}
	}
}

// TestRateLimitEndToEnd floods a rate-limited server and checks the
// whole contract: 429 status, Retry-After header, typed client error,
// per-client isolation via X-Client-ID, and the rate-limited counter.
func TestRateLimitEndToEnd(t *testing.T) {
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	ts := httptest.NewServer(New(eng, Config{RateLimit: 1, RateBurst: 2}).Handler())
	defer ts.Close()
	ctx := context.Background()

	get := func(clientID string) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/indexes", nil)
		if err != nil {
			return nil, err
		}
		if clientID != "" {
			req.Header.Set("X-Client-ID", clientID)
		}
		return http.DefaultClient.Do(req)
	}

	// Burst of 2 passes, the third request is over budget.
	limited := false
	for i := 0; i < 3; i++ {
		resp, err := get("flood")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if i < 2 {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: HTTP %d, want 200", i, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: HTTP %d, want 429", i, resp.StatusCode)
		}
		limited = true
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
			t.Fatalf("429 Retry-After = %q, want integral seconds >= 1", resp.Header.Get("Retry-After"))
		}
		if !strings.Contains(string(body), "rate limited") {
			t.Fatalf("429 body = %s, want JSON error mentioning the limit", body)
		}
	}
	if !limited {
		t.Fatal("flood never hit the limiter")
	}

	// A different client has its own bucket.
	resp, err := get("other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("independent client: HTTP %d, want 200", resp.StatusCode)
	}

	// The Client surfaces the typed error with the parsed hint.
	cl := NewClient(ts.URL, nil)
	var lastErr error
	for i := 0; i < 4 && lastErr == nil; i++ {
		_, lastErr = cl.Indexes(ctx)
	}
	if !errors.Is(lastErr, ErrRateLimited) {
		t.Fatalf("client flood err = %v, want ErrRateLimited", lastErr)
	}
	var ae *APIError
	if !errors.As(lastErr, &ae) || ae.Status != http.StatusTooManyRequests || ae.RetryAfter < time.Second {
		t.Fatalf("client flood err = %#v, want APIError{429, RetryAfter >= 1s}", lastErr)
	}

	// The registry counted the rejections.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(scrape), "cinct_http_rate_limited_total") ||
		strings.Contains(string(scrape), "cinct_http_rate_limited_total 0\n") {
		t.Fatalf("scrape does not show rate-limited rejections:\n%s", scrape)
	}
	if !strings.Contains(string(scrape), `cinct_http_requests_total{code="429"}`) {
		t.Fatalf("scrape missing 429 request counter:\n%s", scrape)
	}
}

// TestOverloadShedEndToEnd saturates a one-worker engine with an
// undrained stream, then checks both shed paths map to 503 with
// Retry-After and come back typed through the Client: the engine's
// cost-aware admission control and the server's concurrency gate.
func TestOverloadShedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{Workers: 1, CacheEntries: -1, ShedCost: 1000})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{MaxInflight: 8}).Handler())
	defer ts.Close()
	ctx := context.Background()
	path := fx.trajs[0][:1]

	// Hold the only engine worker slot in-process.
	hold, err := eng.Search(ctx, "spatial1", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()

	// Engine-level shed: an unbounded scan over HTTP → 503, typed.
	cl := NewClient(ts.URL, nil)
	_, err = cl.SearchPage(ctx, "spatial1", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if !errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("unbounded search on saturated engine: err = %v, want engine.ErrOverloaded", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.RetryAfter < time.Second {
		t.Fatalf("shed err = %#v, want APIError{503, RetryAfter >= 1s}", err)
	}

	// Server-gate shed: with MaxInflight 1 and the slot pinned by a
	// request queued on the engine's worker pool, the next request
	// bounces at the gate with 503.
	ts2 := httptest.NewServer(New(eng, Config{MaxInflight: 1}).Handler())
	defer ts2.Close()
	blocked := make(chan error, 1)
	go func() {
		// Cheap count: queues on the engine pool (cost below ShedCost),
		// holding ts2's single gate slot.
		cl2 := NewClient(ts2.URL, nil)
		_, err := cl2.Count(ctx, "spatial1", path)
		blocked <- err
	}()
	var gateErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, gateErr = NewClient(ts2.URL, nil).Indexes(ctx)
		if errors.Is(gateErr, engine.ErrOverloaded) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !errors.Is(gateErr, engine.ErrOverloaded) {
		t.Fatalf("gate shed err = %v, want engine.ErrOverloaded (503)", gateErr)
	}
	hold.Close()
	if err := <-blocked; err != nil {
		t.Fatalf("queued count after release: %v", err)
	}
}

// TestMetricsEndpoint checks the scrape surface end to end: the
// endpoint serves the Prometheus text format outside the middleware
// chain, and a query moves the engine counters it exposes.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	fx := writeFixture(t, dir)
	eng := engine.New(engine.Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()
	ctx := context.Background()

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("GET /metrics Content-Type = %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	counter := func(scrape, name string) int64 {
		for _, line := range strings.Split(scrape, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				v, err := strconv.ParseInt(rest, 10, 64)
				if err != nil {
					t.Fatalf("parsing %s value %q: %v", name, rest, err)
				}
				return v
			}
		}
		return 0
	}

	before := scrape()
	for _, series := range []string{
		"cinct_query_seconds_bucket", "cinct_query_cost_steps_bucket",
		"cinct_cache_hits_total", "cinct_cache_misses_total",
		"cinct_pool_inflight", "cinct_pool_capacity",
		"cinct_wal_bytes", "cinct_seal_seconds_count", "cinct_compaction_seconds_count",
		"cinct_http_requests_total", "cinct_http_inflight",
	} {
		if !strings.Contains(before, series) {
			t.Fatalf("scrape missing series %q:\n%s", series, before)
		}
	}

	cl := NewClient(ts.URL, nil)
	if _, err := cl.Count(ctx, "spatial1", fx.trajs[0][:2]); err != nil {
		t.Fatal(err)
	}
	after := scrape()
	if got := counter(after, `cinct_queries_total{kind="count"}`); got < 1 {
		t.Fatalf("cinct_queries_total{kind=count} = %d after a count, want >= 1", got)
	}
	if b, a := counter(before, "cinct_query_seconds_count"), counter(after, "cinct_query_seconds_count"); a <= b {
		t.Fatalf("cinct_query_seconds_count did not advance (%d -> %d)", b, a)
	}
	if b, a := counter(before, `cinct_http_requests_total{code="200"}`), counter(after, `cinct_http_requests_total{code="200"}`); a <= b {
		t.Fatalf("cinct_http_requests_total{code=200} did not advance (%d -> %d)", b, a)
	}
}
