package server

import (
	"context"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/gps"
	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// gpsFixture stands up a daemon over one temporal index whose corpus
// lives on a roadnet grid, with the grid attached for GPS ingest.
type gpsFixture struct {
	eng    *engine.Engine
	client *Client
	graph  *roadnet.Graph
	rng    *rand.Rand
}

func newGPSFixture(t *testing.T) *gpsFixture {
	t.Helper()
	g := roadnet.Grid(8, 8, 41)
	rng := rand.New(rand.NewSource(42))
	var trajs [][]uint32
	var times [][]int64
	for i := 0; i < 10; i++ {
		row := wireWalk(g, rng, 10)
		col := make([]int64, len(row))
		for j := range col {
			col[j] = int64(1000*i + 10*j)
		}
		trajs = append(trajs, row)
		times = append(times, col)
	}
	tix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Options{SealThreshold: -1})
	t.Cleanup(e.Shutdown)
	t.Cleanup(e.CloseAll)
	e.RegisterTemporal("roads", tix)
	e.AttachRoadnet("roads", g, mapmatch.Config{})

	srv := New(e, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &gpsFixture{eng: e, client: NewClient(ts.URL, nil), graph: g, rng: rng}
}

// wireWalk is a U-turn-free random walk returning wire-shaped edges.
func wireWalk(g *roadnet.Graph, rng *rand.Rand, length int) []uint32 {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []uint32{uint32(cur)}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			break
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, uint32(cur))
	}
	return path
}

func edgePath(edges []uint32) []roadnet.EdgeID {
	out := make([]roadnet.EdgeID, len(edges))
	for i, e := range edges {
		out[i] = roadnet.EdgeID(e)
	}
	return out
}

// TestGPSIngestDifferential is the PR's acceptance flow end to end:
// simulate a noisy trace along a known edge path, ingest it over HTTP,
// find the matched trajectory via /v1/{index}/query, check it equals
// the ground-truth path, and receive exactly one SSE notification on a
// standing query registered for that path.
func TestGPSIngestDifferential(t *testing.T) {
	fx := newGPSFixture(t)
	ctx := context.Background()

	truth := wireWalk(fx.graph, fx.rng, 12)
	tr := gps.Simulate(fx.graph, edgePath(truth), 0.02, 90_000, 15, fx.rng)

	// Standing query on the ground-truth path, registered before the
	// ingest; consume over SSE concurrently.
	sub, err := fx.client.Subscribe(ctx, "roads", SubscribeRequest{Path: truth})
	if err != nil {
		t.Fatal(err)
	}
	sseCtx, cancelSSE := context.WithCancel(ctx)
	defer cancelSSE()
	got := make(chan engine.Notification, 8)
	sseErr := make(chan error, 1)
	go func() {
		defer close(got)
		for n, err := range fx.client.Notifications(sseCtx, "roads", sub.Subscription) {
			if err != nil {
				sseErr <- err
				return
			}
			got <- n
		}
	}()

	res, err := fx.client.IngestGPS(ctx, "roads", []gps.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Rejected != 0 || !res.Results[0].Accepted {
		t.Fatalf("ingest response %+v", res)
	}
	id := res.Results[0].ID

	// The matched trajectory is findable through the ordinary query
	// endpoint...
	var hits []cinct.Hit
	for h, err := range fx.client.Search(ctx, "roads", cinct.Query{Path: truth, Kind: cinct.Trajectories}) {
		if err != nil {
			t.Fatal(err)
		}
		hits = append(hits, h)
	}
	foundIngested := false
	for _, h := range hits {
		if h.Trajectory == id {
			foundIngested = true
		}
	}
	if !foundIngested {
		t.Fatalf("query for %v returned %v, missing ingested id %d", truth, hits, id)
	}

	// ...and reconstructs to exactly the ground-truth path.
	edges, err := fx.client.Trajectory(ctx, "roads", id)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != len(truth) {
		t.Fatalf("trajectory %v, want %v", edges, truth)
	}
	for i := range truth {
		if edges[i] != truth[i] {
			t.Fatalf("edge %d: %d != %d", i, edges[i], truth[i])
		}
	}

	// Exactly one notification arrives for the standing query.
	select {
	case n := <-got:
		if n.Index != "roads" || n.Trajectory != id || n.Offset != 0 || n.EnteredAt != 90_000 {
			t.Fatalf("notification %+v, want trajectory %d at offset 0 entered 90000", n, id)
		}
	case err := <-sseErr:
		t.Fatalf("SSE stream: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE notification")
	}
	select {
	case n, ok := <-got:
		if ok {
			t.Fatalf("unexpected second notification %+v", n)
		}
	case <-time.After(200 * time.Millisecond):
	}

	// Cancel ends the subscription; the SSE stream terminates cleanly.
	if err := fx.client.Unsubscribe(ctx, "roads", sub.Subscription); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-got:
		if ok {
			t.Fatal("notification after cancel")
		}
	case err := <-sseErr:
		t.Fatalf("SSE stream after cancel: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after cancel")
	}
	if err := fx.client.Unsubscribe(ctx, "roads", sub.Subscription); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("double cancel: %v", err)
	}
}

// TestGPSIngestRejectsOverWire: per-trace reject reasons survive the
// wire, and a roadnet-less index maps ErrNoRoadnet to 422.
func TestGPSIngestRejectsOverWire(t *testing.T) {
	fx := newGPSFixture(t)
	ctx := context.Background()

	good := gps.Simulate(fx.graph, edgePath(wireWalk(fx.graph, fx.rng, 8)), 0.02, 1000, 10, fx.rng)
	offNetwork := gps.Trace{Points: []gps.Point{{Lat: 500, Lon: 500, T: 1}, {Lat: 501, Lon: 500, T: 2}}}
	untimed := gps.Simulate(fx.graph, edgePath(wireWalk(fx.graph, fx.rng, 8)), 0.02, 0, 0, fx.rng)

	res, err := fx.client.IngestGPS(ctx, "roads", []gps.Trace{good, offNetwork, untimed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Rejected != 2 {
		t.Fatalf("ingest response %+v", res)
	}
	if res.Results[1].Reject != string(mapmatch.RejectNoCandidates) {
		t.Fatalf("off-network reject %+v", res.Results[1])
	}
	if res.Results[2].Reject != gps.RejectUntimed {
		t.Fatalf("untimed reject %+v", res.Results[2])
	}

	// No roadnet attached → 422 with the typed error.
	ix, err := cinct.Build([][]uint32{{1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fx.eng.Register("bare", ix)
	_, err = fx.client.IngestGPS(ctx, "bare", []gps.Trace{good})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("no-roadnet ingest: %v", err)
	}
}

// TestSubscribePollFallback exercises the long-poll path: subscribe,
// ingest a matching trace, poll the batch out, cancel, poll again and
// see closed.
func TestSubscribePollFallback(t *testing.T) {
	fx := newGPSFixture(t)
	ctx := context.Background()

	truth := wireWalk(fx.graph, fx.rng, 10)
	sub, err := fx.client.Subscribe(ctx, "roads", SubscribeRequest{Path: truth[:3], Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := gps.Simulate(fx.graph, edgePath(truth), 0.02, 5000, 10, fx.rng)
	if _, err := fx.client.IngestGPS(ctx, "roads", []gps.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	poll, err := fx.client.Poll(ctx, "roads", sub.Subscription, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(poll.Notifications) != 1 || poll.Closed {
		t.Fatalf("poll %+v, want one notification", poll)
	}
	if poll.Notifications[0].Subscription != sub.Subscription {
		t.Fatalf("notification %+v", poll.Notifications[0])
	}

	// An empty window returns an empty batch, not an error.
	empty, err := fx.client.Poll(ctx, "roads", sub.Subscription, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Notifications) != 0 || empty.Closed {
		t.Fatalf("empty poll %+v", empty)
	}

	if err := fx.client.Unsubscribe(ctx, "roads", sub.Subscription); err != nil {
		t.Fatal(err)
	}
	// The subscription is gone from the registry, so polling reports
	// not-found.
	if _, err := fx.client.Poll(ctx, "roads", sub.Subscription, 0); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("poll after cancel: %v", err)
	}
}

// TestSubscribeValidationOverWire maps bad subscriptions to 400/422.
func TestSubscribeValidationOverWire(t *testing.T) {
	fx := newGPSFixture(t)
	ctx := context.Background()

	_, err := fx.client.Subscribe(ctx, "roads", SubscribeRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("empty path: %v", err)
	}
	ix, err := cinct.Build([][]uint32{{1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fx.eng.Register("plain", ix)
	from := int64(1)
	_, err = fx.client.Subscribe(ctx, "plain", SubscribeRequest{Path: []uint32{1}, From: &from})
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("interval on spatial: %v", err)
	}
	if _, err := fx.client.Subscribe(ctx, "nosuch", SubscribeRequest{Path: []uint32{1}}); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("unknown index: %v", err)
	}
}
