package cinct

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"cinct/internal/trajgen"
)

func shardedTestCorpus(t testing.TB) [][]uint32 {
	t.Helper()
	cfg := trajgen.Config{GridW: 10, GridH: 10, NumTrajs: 300, MeanLen: 22, Seed: 31}
	return trajgen.Singapore2(cfg).Trajs
}

// queryPaths samples sub-paths of the corpus plus a path that matches
// nothing and a path with an unknown edge.
func queryPaths(trajs [][]uint32) [][]uint32 {
	paths := make([][]uint32, 0, 42)
	for k := 0; k < 40; k++ {
		tr := trajs[(k*7)%len(trajs)]
		if len(tr) < 3 {
			continue
		}
		m := 2 + k%3
		if m > len(tr) {
			m = len(tr)
		}
		paths = append(paths, tr[:m])
	}
	paths = append(paths, []uint32{1 << 30}) // edge absent from every shard
	paths = append(paths, trajs[0][:1])
	return paths
}

// TestShardedDifferential is the acceptance test: every public query
// on a K-sharded index must answer byte-for-byte identically to the
// monolithic index over the same corpus.
func TestShardedDifferential(t *testing.T) {
	trajs := shardedTestCorpus(t)
	mono, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 8} {
		opts := DefaultOptions()
		opts.Shards = k
		sharded, err := Build(trajs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Shards() != k {
			t.Fatalf("Shards() = %d, want %d", sharded.Shards(), k)
		}
		if sharded.Sharded() == nil {
			t.Fatal("Sharded() must expose the backing ShardedIndex")
		}
		assertSameAnswers(t, mono, sharded, trajs)
	}
}

func assertSameAnswers(t *testing.T, mono, sharded *Index, trajs [][]uint32) {
	t.Helper()
	if got, want := sharded.NumTrajectories(), mono.NumTrajectories(); got != want {
		t.Fatalf("NumTrajectories = %d, want %d", got, want)
	}
	if got, want := sharded.NumEdges(), mono.NumEdges(); got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	for _, path := range queryPaths(trajs) {
		if got, want := sharded.Count(path), mono.Count(path); got != want {
			t.Fatalf("Count(%v) = %d, want %d", path, got, want)
		}
		got, err := sharded.Find(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mono.Find(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Find(%v) = %v, want %v", path, got, want)
		}
		// A positive limit keeps the first limit matches in canonical
		// order on both index kinds.
		gotLim, err := sharded.Find(path, 2)
		if err != nil {
			t.Fatal(err)
		}
		wantLim := want
		if len(wantLim) > 2 {
			wantLim = wantLim[:2]
		}
		if !reflect.DeepEqual(gotLim, wantLim) {
			t.Fatalf("Find(%v, 2) = %v, want %v", path, gotLim, wantLim)
		}
		gotIDs, err := sharded.FindTrajectories(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantIDs, err := mono.FindTrajectories(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("FindTrajectories(%v) = %v, want %v", path, gotIDs, wantIDs)
		}
		// Limits apply after the canonical sort, so limited
		// FindTrajectories agrees too.
		gotIDs, err = sharded.FindTrajectories(path, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantIDs) > 3 {
			wantIDs = wantIDs[:3]
		}
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("FindTrajectories(%v, 3) = %v, want %v", path, gotIDs, wantIDs)
		}
	}
	for id := 0; id < mono.NumTrajectories(); id += 17 {
		if got, want := sharded.TrajectoryLen(id), mono.TrajectoryLen(id); got != want {
			t.Fatalf("TrajectoryLen(%d) = %d, want %d", id, got, want)
		}
		got, err := sharded.Trajectory(id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := mono.Trajectory(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Trajectory(%d) = %v, want %v", id, got, want)
		}
		ln := mono.TrajectoryLen(id)
		from, to := ln/4, ln-ln/4
		gotSub, err := sharded.SubPath(id, from, to)
		if err != nil {
			t.Fatal(err)
		}
		wantSub, err := mono.SubPath(id, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotSub, wantSub) {
			t.Fatalf("SubPath(%d,%d,%d) = %v, want %v", id, from, to, gotSub, wantSub)
		}
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	trajs := shardedTestCorpus(t)
	opts := DefaultOptions()
	opts.Shards = 4
	ix, err := Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, m := ix.Stats(), mono.Stats()
	if s.Shards != 4 || m.Shards != 1 {
		t.Fatalf("Shards stat: sharded %d, mono %d", s.Shards, m.Shards)
	}
	if s.Trajectories != m.Trajectories || s.Edges != m.Edges {
		t.Fatalf("corpus stats diverge: %+v vs %+v", s, m)
	}
	// Each shard adds one '#' terminator to the text.
	if s.TextLen != m.TextLen+3 {
		t.Fatalf("TextLen = %d, want %d", s.TextLen, m.TextLen+3)
	}
	if ix.Len() != s.TextLen {
		t.Fatalf("Len() = %d, Stats().TextLen = %d", ix.Len(), s.TextLen)
	}
	if s.BitsPerSymbol <= 0 || s.LabelEntropy <= 0 || s.AvgOutDegree <= 0 {
		t.Fatalf("aggregate stats not positive: %+v", s)
	}
	if s.WaveletBits <= 0 || s.GraphBits <= 0 || s.CArrayBits <= 0 || s.LocateBits <= 0 {
		t.Fatalf("aggregate size breakdown not positive: %+v", s)
	}
}

// TestShardedSaveLoadRoundTrip asserts a sharded index survives
// serialization with identical answers, through both Load and
// LoadSharded.
func TestShardedSaveLoadRoundTrip(t *testing.T) {
	trajs := shardedTestCorpus(t)
	opts := DefaultOptions()
	opts.Shards = 3
	ix, err := Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ix.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Save reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 3 {
		t.Fatalf("loaded Shards() = %d, want 3", loaded.Shards())
	}
	assertSameAnswers(t, ix, loaded, trajs)

	si, err := LoadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if si.NumShards() != 3 || si.NumTrajectories() != len(trajs) {
		t.Fatalf("LoadSharded: %d shards, %d trajectories", si.NumShards(), si.NumTrajectories())
	}
}

// TestSeedFormatBackwardCompatible asserts the original single-index
// byte format (what the seed's Save emitted) still loads: an index
// saved without sharding must round-trip through Load and answer
// identically.
func TestSeedFormatBackwardCompatible(t *testing.T) {
	trajs := shardedTestCorpus(t)
	ix, err := Build(trajs, nil) // monolithic ⇒ seed v1 byte format
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(buf.Bytes(), []byte(shardMagic)) {
		t.Fatal("monolithic Save must keep emitting the seed format")
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 1 {
		t.Fatalf("seed format loaded as %d shards", loaded.Shards())
	}
	assertSameAnswers(t, ix, loaded, trajs)
}

func TestLoadShardedRejectsGarbage(t *testing.T) {
	if _, err := LoadSharded(bytes.NewReader([]byte("CNCTmeta junk"))); !errors.Is(err, ErrBadShardContainer) {
		t.Fatalf("want ErrBadShardContainer, got %v", err)
	}
	// A truncated container must error, not hang or panic.
	trajs := [][]uint32{{1, 2, 3}, {2, 3, 4}}
	opts := DefaultOptions()
	opts.Shards = 2
	ix, err := Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated container must fail to load")
	}
}

func TestBuildShardedDefaults(t *testing.T) {
	trajs := [][]uint32{{1, 2}, {2, 3}, {3, 4}, {4, 5}}
	// Shards = 0 ⇒ GOMAXPROCS, clamped to the trajectory count.
	si, err := BuildSharded(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if si.NumShards() < 1 || si.NumShards() > len(trajs) {
		t.Fatalf("NumShards = %d", si.NumShards())
	}
	// More shards than trajectories clamps to one per trajectory.
	opts := DefaultOptions()
	opts.Shards = 64
	ix, err := Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Shards() != len(trajs) {
		t.Fatalf("Shards() = %d, want %d", ix.Shards(), len(trajs))
	}
	if _, err := Build(trajs, &Options{Block: 63, SampleRate: 64, Shards: -1}); err == nil {
		t.Fatal("negative Shards must error")
	}
	if _, err := Build([][]uint32{{1}, {}}, opts); err == nil {
		t.Fatal("empty trajectory must error under sharding")
	}
}

func TestShardedNoLocate(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 2
	opts.SampleRate = 0
	ix, err := Build([][]uint32{{1, 2}, {2, 3}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Count([]uint32{2}); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if _, err := ix.Find([]uint32{2}, 0); !errors.Is(err, ErrNoLocate) {
		t.Fatalf("want ErrNoLocate, got %v", err)
	}
	if _, err := ix.FindTrajectories([]uint32{2}, 0); !errors.Is(err, ErrNoLocate) {
		t.Fatalf("want ErrNoLocate, got %v", err)
	}
}

// TestShardedConcurrentQueries hammers the fan-out query path from
// many goroutines; run with -race to verify the concurrency claims.
func TestShardedConcurrentQueries(t *testing.T) {
	trajs := shardedTestCorpus(t)
	opts := DefaultOptions()
	opts.Shards = 4
	ix, err := Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths := queryPaths(trajs)
	want := make([]int, len(paths))
	for i, p := range paths {
		want[i] = ix.Count(p)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (g + rep) % len(paths)
				if got := ix.Count(paths[i]); got != want[i] {
					errs <- "sharded Count changed under concurrency"
					return
				}
				if _, err := ix.Find(paths[i], 5); err != nil {
					errs <- err.Error()
					return
				}
				if _, err := ix.Trajectory((g*31 + rep) % ix.NumTrajectories()); err != nil {
					errs <- err.Error()
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestTemporalSharded checks the temporal layer composes with sharding
// (global IDs flow through to the timestamp store).
func TestTemporalSharded(t *testing.T) {
	trajs := [][]uint32{{1, 2, 3}, {2, 3}, {1, 2}}
	times := [][]int64{{100, 110, 120}, {200, 210}, {300, 310}}
	opts := DefaultOptions()
	opts.Shards = 2
	ix, err := BuildTemporal(trajs, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := ix.FindInInterval([]uint32{1, 2}, 250, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Trajectory != 2 || hits[0].EnteredAt != 300 {
		t.Fatalf("FindInInterval = %+v", hits)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTemporal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Shards() != 2 {
		t.Fatalf("loaded temporal index has %d shards", loaded.Shards())
	}
	hits2, err := loaded.FindInInterval([]uint32{1, 2}, 250, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hits, hits2) {
		t.Fatalf("round-trip changed answers: %+v vs %+v", hits, hits2)
	}
}
