package cinct

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"cinct/internal/trajstr"
)

// ShardedIndex partitions a trajectory corpus into K contiguous ranges
// and holds one complete CiNCT index per range. Construction runs the
// K shard builds on a bounded worker pool; Count/Find/FindTrajectories
// fan out over the shards concurrently and merge results under global
// trajectory IDs, while Trajectory/SubPath route directly to the
// owning shard. Like Index, a ShardedIndex is immutable after
// build/load and safe for concurrent use.
//
// Query results are identical to a monolithic Index over the same
// corpus: an occurrence never spans a trajectory boundary, so
// partitioning by whole trajectories preserves Count exactly, and the
// contiguous ID ranges make global (Trajectory, Offset) order the
// concatenation of per-shard orders.
type ShardedIndex struct {
	shards []*Index
	// bounds[s] is the global ID of shard s's first trajectory;
	// bounds[len(shards)] is the corpus size. Shard s owns global IDs
	// [bounds[s], bounds[s+1]).
	bounds []int
	edges  int // distinct edge IDs across all shards
	hasLoc bool
}

// BuildSharded indexes a corpus as Options.Shards partitions, treating
// Shards == 0 as runtime.GOMAXPROCS(0). opts may be nil, in which case
// defaults plus GOMAXPROCS shards are used. Corpora with fewer
// trajectories than shards get one shard per trajectory.
func BuildSharded(trajs [][]uint32, opts *Options) (*ShardedIndex, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	k := opts.Shards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return buildSharded(trajs, opts, k)
}

func buildSharded(trajs [][]uint32, opts *Options, k int) (*ShardedIndex, error) {
	if len(trajs) == 0 {
		return nil, trajstr.ErrEmptyCorpus
	}
	lengths := make([]int, len(trajs))
	for i, tr := range trajs {
		if len(tr) == 0 {
			return nil, fmt.Errorf("%w (index %d)", trajstr.ErrEmptyTrajectory, i)
		}
		lengths[i] = len(tr)
	}
	bounds := trajstr.PartitionBounds(lengths, k)
	corpora, err := trajstr.PartitionCorpus(trajs, bounds)
	if err != nil {
		return nil, err
	}
	si := &ShardedIndex{
		shards: make([]*Index, len(corpora)),
		bounds: bounds,
		edges:  trajstr.CountDistinctEdges(corpora),
		hasLoc: opts.SampleRate > 0,
	}
	// Bounded worker pool: up to min(K, GOMAXPROCS) shard builds in
	// flight (a build is CPU-bound; more workers than cores only adds
	// peak memory).
	workers := len(corpora)
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				si.shards[s] = buildOne(corpora[s], opts)
			}
		}()
	}
	for s := range corpora {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return si, nil
}

// shardOf returns the shard owning global trajectory ID g. It panics
// on out-of-range IDs, matching the monolithic index's behavior.
func (si *ShardedIndex) shardOf(g int) (shard, local int) {
	if g < 0 || g >= si.bounds[len(si.shards)] {
		panic(fmt.Sprintf("cinct: trajectory %d out of range [0,%d)", g, si.bounds[len(si.shards)]))
	}
	s := sort.Search(len(si.shards), func(i int) bool { return si.bounds[i+1] > g })
	return s, g - si.bounds[s]
}

// NumShards returns the number of partitions.
func (si *ShardedIndex) NumShards() int { return len(si.shards) }

// Shard returns the s-th partition's index (for inspection; its
// trajectory IDs are local to the shard).
func (si *ShardedIndex) Shard(s int) *Index { return si.shards[s] }

// ShardStart returns the global ID of shard s's first trajectory.
func (si *ShardedIndex) ShardStart(s int) int { return si.bounds[s] }

// NumTrajectories returns the number of indexed trajectories.
func (si *ShardedIndex) NumTrajectories() int { return si.bounds[len(si.shards)] }

// NumEdges returns the number of distinct road edges across shards.
func (si *ShardedIndex) NumEdges() int { return si.edges }

// Len returns the summed trajectory-string length over shards (each
// shard carries its own '#' terminator).
func (si *ShardedIndex) Len() int {
	n := 0
	for _, ix := range si.shards {
		n += ix.Len()
	}
	return n
}

// facade wraps the sharded index in the Index query surface, the form
// Search executes against. The shared streaming core (per-shard
// candidate collection, canonical k-way heap merge) lives behind
// Search; every ShardedIndex query method is a thin delegation.
func (si *ShardedIndex) facade() *Index {
	return &Index{sharded: si, hasLoc: si.hasLoc}
}

// Search executes a Query over the sharded index: per-shard candidate
// collection runs in parallel, and hits stream through a canonical
// (Trajectory, Offset) k-way merge under global trajectory IDs. See
// Index.Search.
func (si *ShardedIndex) Search(ctx context.Context, q Query) (*Results, error) {
	return si.facade().Search(ctx, q)
}

// Count fans the count query out over all shards in parallel and sums.
// Occurrences cannot span trajectories, so the sum equals the
// monolithic count.
func (si *ShardedIndex) Count(path []uint32) int {
	return si.facade().Count(path)
}

// Find returns up to limit occurrences in canonical (Trajectory,
// Offset) order under global trajectory IDs — identical to the
// monolithic index's answer regardless of shard count or layout.
// Semantics match Index.Find exactly; both delegate to Search, whose
// streaming merge applies the limit globally, never per shard.
func (si *ShardedIndex) Find(path []uint32, limit int) ([]Match, error) {
	return si.facade().Find(path, limit)
}

// FindTrajectories returns up to limit distinct trajectory IDs in
// ascending global order. Semantics match Index.FindTrajectories.
func (si *ShardedIndex) FindTrajectories(path []uint32, limit int) ([]int, error) {
	return si.facade().FindTrajectories(path, limit)
}

// Trajectory reconstructs trajectory id (global ID) in travel order.
func (si *ShardedIndex) Trajectory(id int) ([]uint32, error) {
	s, local := si.shardOf(id)
	return si.shards[s].Trajectory(local)
}

// TrajectoryLen returns the edge count of trajectory id (global ID).
func (si *ShardedIndex) TrajectoryLen(id int) int {
	s, local := si.shardOf(id)
	return si.shards[s].TrajectoryLen(local)
}

// SubPath extracts edges [from, to) of trajectory id (global ID).
func (si *ShardedIndex) SubPath(id, from, to int) ([]uint32, error) {
	s, local := si.shardOf(id)
	return si.shards[s].SubPath(local, from, to)
}

// Stats aggregates the per-shard breakdowns: counts and size fields
// sum, MaxLabel is the maximum, LabelEntropy is weighted by shard text
// length, and AvgOutDegree is recomputed from the summed ET-graph edge
// and node counts.
func (si *ShardedIndex) Stats() Stats {
	agg := Stats{Shards: len(si.shards), Edges: si.edges}
	var nodes, entropyBits, indexBits float64
	for _, ix := range si.shards {
		s := ix.Stats()
		agg.Trajectories += s.Trajectories
		agg.TextLen += s.TextLen
		agg.ETGraphEdges += s.ETGraphEdges
		agg.WaveletBits += s.WaveletBits
		agg.GraphBits += s.GraphBits
		agg.CArrayBits += s.CArrayBits
		agg.LocateBits += s.LocateBits
		if s.MaxLabel > agg.MaxLabel {
			agg.MaxLabel = s.MaxLabel
		}
		if s.AvgOutDegree > 0 {
			nodes += float64(s.ETGraphEdges) / s.AvgOutDegree
		}
		entropyBits += s.LabelEntropy * float64(s.TextLen)
		// BitsPerSymbol excludes locate structures (paper accounting).
		indexBits += float64(s.WaveletBits + s.GraphBits + s.CArrayBits)
	}
	if nodes > 0 {
		agg.AvgOutDegree = float64(agg.ETGraphEdges) / nodes
	}
	if agg.TextLen > 0 {
		agg.LabelEntropy = entropyBits / float64(agg.TextLen)
		agg.BitsPerSymbol = indexBits / float64(agg.TextLen)
	}
	return agg
}
