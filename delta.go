package cinct

import (
	"context"
	"fmt"

	"cinct/internal/trajstr"
)

// deltaShard is the uncompressed in-memory tail of a live corpus: the
// trajectories appended since the last seal, stored as plain edge
// slices (plus timestamp columns on temporal writers) so an Append is
// O(len) with no index rebuild. The shard is append-only — rows, once
// published, are never modified — which is what makes the lock-free
// snapshot protocol below sound: a reader that captured the slice
// headers and length under the Writer's lock can keep scanning its
// prefix while later appends extend the same backing arrays.
//
// Query support is a brute-force scan: the delta is bounded by the
// seal threshold, so O(rows × len) matching is cheaper than
// maintaining any incremental index, and it plugs into the same
// streaming Search core as the compressed shards (one more unit in
// the canonical k-way merge).
type deltaShard struct {
	// base is the global ID of the delta's first trajectory: all
	// sealed trajectories sort before every delta trajectory, which is
	// what keeps the canonical (Trajectory, Offset) merge a plain
	// concatenation across the seal boundary.
	base  int
	trajs [][]uint32
	// times is non-nil exactly when the owning Writer is temporal;
	// times[k] is aligned with trajs[k].
	times [][]int64
	// mins/maxs are the per-trajectory (min, max) timestamp summaries,
	// maintained incrementally on Append so interval queries prune
	// delta rows exactly like sealed ones — without them every
	// interval Search would scan timestamp columns the summaries could
	// have rejected.
	mins, maxs []int64
}

func newDeltaShard(base int, temporal bool) *deltaShard {
	d := &deltaShard{base: base}
	if temporal {
		d.times = [][]int64{}
	}
	return d
}

// append adds one row. The caller (Writer) holds the write lock and
// has already validated shape; edges/times are cloned so the caller's
// buffers stay free for reuse.
func (d *deltaShard) append(edges []uint32, times []int64) {
	row := make([]uint32, len(edges))
	copy(row, edges)
	d.trajs = append(d.trajs, row)
	if d.times == nil {
		return
	}
	col := make([]int64, len(times))
	copy(col, times)
	d.times = append(d.times, col)
	lo, hi := col[0], col[0]
	for _, t := range col[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	d.mins = append(d.mins, lo)
	d.maxs = append(d.maxs, hi)
}

// tail returns the delta that remains after sealing the first n rows:
// same backing arrays (rows past n were appended during the seal's
// build phase and stay live), base advanced past the sealed prefix.
func (d *deltaShard) tail(n int) *deltaShard {
	nd := &deltaShard{base: d.base + n, trajs: d.trajs[n:]}
	if d.times != nil {
		nd.times = d.times[n:]
		nd.mins = d.mins[n:]
		nd.maxs = d.maxs[n:]
	}
	return nd
}

// deltaSnap is an immutable view of the delta's published prefix,
// captured under the Writer's lock. The slice headers pin the length;
// concurrent appends only ever write past it.
type deltaSnap struct {
	base       int
	trajs      [][]uint32
	times      [][]int64
	mins, maxs []int64
}

// snap captures the current published prefix. Caller holds at least a
// read lock.
func (d *deltaShard) snap() *deltaSnap {
	return &deltaSnap{base: d.base, trajs: d.trajs, times: d.times, mins: d.mins, maxs: d.maxs}
}

func (s *deltaSnap) len() int { return len(s.trajs) }

// locate enumerates every occurrence of path in the snapshot,
// mirroring Index.locateOccurrences: visit(local trajectory, travel
// offset), ctx checked periodically, rows scanned accounted into st.
// Occurrences are produced in canonical order by construction (rows
// ascending, offsets ascending), but callers do not rely on that —
// they sort like any other unit.
func (s *deltaSnap) locate(ctx context.Context, path []uint32, st *QueryStats, visit func(doc, offset int)) error {
	if len(path) == 0 {
		return nil
	}
	for k, tr := range s.trajs {
		if k&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		st.DeltaRows++
	scan:
		for off := 0; off+len(path) <= len(tr); off++ {
			for i, e := range path {
				if tr[off+i] != e {
					continue scan
				}
			}
			visit(k, off)
		}
	}
	return nil
}

// count returns the occurrence count of path in the snapshot — the
// delta's contribution to a CountOnly query, rows scanned accounted
// into st.
func (s *deltaSnap) count(path []uint32, st *QueryStats) int {
	n := 0
	s.locate(context.Background(), path, st, func(int, int) { n++ }) //nolint:errcheck // background ctx never cancels
	return n
}

// minMax returns the row's timestamp summary; at probes one entry.
// Both panic on a spatial snapshot, exactly like a nil tempo.Store —
// Search only calls them under an interval, which Writer.Search gates
// on temporality.
func (s *deltaSnap) minMax(k int) (int64, int64) { return s.mins[k], s.maxs[k] }
func (s *deltaSnap) at(k, i int) int64           { return s.times[k][i] }

// MatchRow tests one trajectory row against a path+interval predicate
// and reports the first (canonically smallest) matching occurrence:
// its travel offset and, when times is non-nil, the entry time of the
// match's first edge. It is the standing-query evaluation primitive —
// notification layers run it against every freshly landed row — and it
// reuses the delta's brute-force scan machinery by wrapping the row as
// a one-row snapshot, so its semantics are exactly those of a Search
// against the live delta: iv (nil = unconstrained) filters on the
// entry time of the first matched edge, closed on both ends. A non-nil
// iv with nil times never matches (the row cannot satisfy a temporal
// predicate it has no timestamps for).
func MatchRow(edges []uint32, times []int64, path []uint32, iv *Interval) (offset int, enteredAt int64, ok bool) {
	if len(path) == 0 || (iv != nil && times == nil) {
		return 0, 0, false
	}
	s := &deltaSnap{trajs: [][]uint32{edges}, times: [][]int64{times}}
	var st QueryStats
	found := false
	// locate visits offsets in ascending order; keep the first survivor.
	s.locate(context.Background(), path, &st, func(_, off int) { //nolint:errcheck // background ctx never cancels
		if found {
			return
		}
		var at int64
		if times != nil {
			at = s.at(0, off)
			if iv != nil && (at < iv.From || at > iv.To) {
				return
			}
		}
		offset, enteredAt, found = off, at, true
	})
	return offset, enteredAt, found
}

// ErrBadAppend reports an Append rejected before touching the index:
// an empty trajectory, or timestamps that disagree with the writer's
// temporality or the trajectory length.
var ErrBadAppend = fmt.Errorf("cinct: bad append")

// validateAppend checks one row against the writer's shape contract.
func validateAppend(edges []uint32, times []int64, temporal bool) error {
	if len(edges) == 0 {
		return fmt.Errorf("%w: %v", ErrBadAppend, trajstr.ErrEmptyTrajectory)
	}
	switch {
	case temporal && len(times) != len(edges):
		return fmt.Errorf("%w: %d timestamps for %d edges", ErrBadAppend, len(times), len(edges))
	case !temporal && times != nil:
		return fmt.Errorf("%w: timestamps on a spatial writer", ErrBadAppend)
	}
	return nil
}
