package cinct

import (
	"context"
	"testing"
)

// TestQueryStatsAccounting checks the cost account against independent
// witnesses: the tempo AtSteps instrumentation for decode work, brute
// force for hit counts, and the shard layout for probe/skip counts.
func TestQueryStatsAccounting(t *testing.T) {
	trajs, times := denseTimedCorpus(31)
	path := frequentEdge(trajs)
	iv := &Interval{From: 20000, To: 60000}
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatalf("shards=%d: BuildTemporal: %v", shards, err)
		}
		resetAtSteps(tix)
		r, err := tix.Search(context.Background(), Query{Path: path, Kind: Occurrences, Interval: iv})
		if err != nil {
			t.Fatalf("shards=%d: Search: %v", shards, err)
		}
		hits := drain(t, r)
		st := r.Stats()
		if st.HitsEmitted != int64(len(hits)) {
			t.Errorf("shards=%d: HitsEmitted = %d, want %d", shards, st.HitsEmitted, len(hits))
		}
		if st.ShardsProbed != int64(shards) || st.ShardsSkipped != 0 {
			t.Errorf("shards=%d: probed/skipped = %d/%d, want %d/0",
				shards, st.ShardsProbed, st.ShardsSkipped, shards)
		}
		if st.LFSteps <= 0 {
			t.Errorf("shards=%d: LFSteps = %d, want > 0", shards, st.LFSteps)
		}
		if got := atSteps(tix); st.DecodeSteps != got {
			t.Errorf("shards=%d: DecodeSteps = %d, store counters say %d", shards, st.DecodeSteps, got)
		}
		if st.CandidateRows < st.HitsEmitted {
			t.Errorf("shards=%d: CandidateRows = %d < HitsEmitted = %d",
				shards, st.CandidateRows, st.HitsEmitted)
		}
		if st.DeltaRows != 0 {
			t.Errorf("shards=%d: DeltaRows = %d on an immutable index", shards, st.DeltaRows)
		}

		// CountOnly probes every unit and emits no hits.
		r, err = tix.Search(context.Background(), Query{Path: path, Kind: CountOnly, Interval: iv})
		if err != nil {
			t.Fatalf("shards=%d: count Search: %v", shards, err)
		}
		st = r.Stats()
		if st.ShardsProbed != int64(shards) || st.HitsEmitted != 0 {
			t.Errorf("shards=%d: count stats probed=%d hits=%d, want %d/0",
				shards, st.ShardsProbed, st.HitsEmitted, shards)
		}
	}
}

// TestQueryStatsCursorSkip pins the shard-skip accounting: resuming
// from a cursor positioned past a shard's ID range must dismiss that
// shard without probing it.
func TestQueryStatsCursorSkip(t *testing.T) {
	trajs, _ := denseTimedCorpus(32)
	opts := DefaultOptions()
	opts.Shards = 3
	ix, err := Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := frequentEdge(trajs)
	// Position the cursor on a hit near the end of the corpus so at
	// least the first shard falls wholly before the resume point.
	r, err := ix.Search(context.Background(), Query{Path: path, Kind: Occurrences})
	if err != nil {
		t.Fatal(err)
	}
	all := drain(t, r)
	if len(all) < 4 {
		t.Skipf("corpus too sparse: %d hits", len(all))
	}
	q := Query{Path: path, Kind: Occurrences}
	q.Cursor = q.CursorAfter(all[len(all)-2])
	r, err = ix.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	st := r.Stats()
	if st.ShardsSkipped == 0 {
		t.Errorf("ShardsSkipped = 0 with a deep resume cursor; probed = %d", st.ShardsProbed)
	}
	if st.ShardsProbed+st.ShardsSkipped != 3 {
		t.Errorf("probed+skipped = %d, want 3", st.ShardsProbed+st.ShardsSkipped)
	}
}

// TestQueryStatsDelta checks that the live Writer's uncompressed tail
// accounts its brute-force scan.
func TestQueryStatsDelta(t *testing.T) {
	w, err := NewWriter(WriterConfig{SealThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]uint32{1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	r, err := w.Search(context.Background(), Query{Path: []uint32{2, 3}, Kind: Occurrences})
	if err != nil {
		t.Fatal(err)
	}
	hits := drain(t, r)
	st := r.Stats()
	if len(hits) != 10 {
		t.Fatalf("hits = %d, want 10", len(hits))
	}
	if st.DeltaRows != 10 {
		t.Errorf("DeltaRows = %d, want 10", st.DeltaRows)
	}
	if st.LFSteps != 0 || st.DecodeSteps != 0 {
		t.Errorf("compressed-path counters moved on a pure delta: lf=%d decode=%d", st.LFSteps, st.DecodeSteps)
	}
}
