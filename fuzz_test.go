package cinct

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// The fuzz fortress pins the container-format and cursor surfaces:
// arbitrary bytes fed to Load / LoadTemporal / Query.Cursor must
// never panic and never allocate unboundedly — they either produce a
// working index or fail with a typed error. Seed corpora live under
// testdata/fuzz/ (regenerate with scripts/genfuzzseeds).

// maxFuzzInput bounds one fuzz input; larger blobs only slow
// exploration down without reaching new code.
const maxFuzzInput = 1 << 18

// fuzzCorpus is the deterministic corpus behind every generated seed
// and the FuzzCursor search target.
func fuzzCorpus() ([][]uint32, [][]int64) {
	trajs := [][]uint32{
		{1, 2, 3, 4},
		{2, 3, 4},
		{5, 1, 2, 3},
		{3, 4, 5, 1, 2},
		{9},
		{2, 3},
	}
	times := make([][]int64, len(trajs))
	for k, tr := range trajs {
		col := make([]int64, len(tr))
		for i := range col {
			col[i] = int64(100*k + 10*i)
		}
		times[k] = col
	}
	return trajs, times
}

// exerciseLoaded pokes a successfully loaded index: the metadata and
// query surface must hold up whatever bytes produced it.
func exerciseLoaded(t *testing.T, ix *Index) {
	t.Helper()
	_ = ix.NumTrajectories()
	_ = ix.NumEdges()
	_ = ix.Len()
	_ = ix.Shards()
	_ = ix.Stats()
	_ = ix.Count([]uint32{1, 2})
	if ix.NumTrajectories() > 0 {
		_ = ix.TrajectoryLen(0)
	}
	r, err := ix.Search(context.Background(), Query{Path: []uint32{2, 3}, Kind: Occurrences, Limit: 4})
	if err != nil {
		if !errors.Is(err, ErrNoLocate) {
			t.Fatalf("Search on loaded index: unexpected error %v", err)
		}
		return
	}
	for _, herr := range r.All() {
		if herr != nil {
			t.Fatalf("stream on loaded index: %v", herr)
		}
	}
}

// FuzzLoadSharded pins Load (both the sharded container and the
// single-index layout it falls back to): arbitrary bytes must load or
// fail typed — never panic, never allocate past a small multiple of
// the input.
func FuzzLoadSharded(f *testing.F) {
	trajs, _ := fuzzCorpus()
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		ix, err := Build(trajs, opts)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.Save(&buf); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		f.Add(append([]byte(nil), full...))
		f.Add(append([]byte(nil), full[:len(full)/2]...)) // truncation
	}
	f.Add([]byte(shardMagic))
	f.Add([]byte("CNCTshrd\x01\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip()
		}
		ix, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		exerciseLoaded(t, ix)
	})
}

// FuzzLoadTemporal pins LoadTemporal over the CNCTtemp container and
// the legacy unversioned layout.
func FuzzLoadTemporal(f *testing.F) {
	trajs, times := fuzzCorpus()
	for _, shards := range []int{1, 2} {
		opts := DefaultOptions()
		opts.Shards = shards
		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tix.Save(&buf); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		f.Add(append([]byte(nil), full...))
		f.Add(append([]byte(nil), full[:2*len(full)/3]...))
	}
	f.Add([]byte(temporalMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip()
		}
		tix, err := LoadTemporal(bytes.NewReader(data))
		if err != nil {
			return
		}
		exerciseLoaded(t, tix.Index)
		if tix.NumTrajectories() > 0 {
			_ = tix.Timestamps(0)
		}
		if _, err := tix.CountInInterval([]uint32{2, 3}, 0, 1<<40); err != nil && !errors.Is(err, ErrNoLocate) {
			t.Fatalf("CountInInterval on loaded index: %v", err)
		}
	})
}

// FuzzCursor pins the cursor surface: any token string handed to
// Search either resumes a stream or fails with ErrBadCursor — no
// panics, no silently wrong pages. The first input byte selects the
// query shape so foreign-shape tokens are exercised too.
func FuzzCursor(f *testing.F) {
	trajs, times := fuzzCorpus()
	tix, err := BuildTemporal(trajs, times, nil)
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	// Seed with genuine cursors from bounded searches of both shapes.
	for _, q := range []Query{
		{Path: []uint32{2, 3}, Kind: Occurrences, Limit: 1},
		{Path: []uint32{2, 3}, Kind: Trajectories, Limit: 1, Interval: &Interval{From: 0, To: 1 << 40}},
	} {
		r, err := tix.Search(ctx, q)
		if err != nil {
			f.Fatal(err)
		}
		for _, herr := range r.All() {
			if herr != nil {
				f.Fatal(herr)
			}
			break
		}
		f.Add([]byte("\x00" + r.Cursor()))
	}
	f.Add([]byte("\x01garbage-token"))
	f.Add([]byte{0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > maxFuzzInput {
			t.Skip()
		}
		sel, token := data[0], string(data[1:])
		q := Query{Path: []uint32{2, 3}, Kind: Kind(sel % 3), Limit: int(sel>>2) % 8, Cursor: token}
		if sel&1 != 0 {
			q.Interval = &Interval{From: 0, To: 1 << 40}
		}
		r, err := tix.Search(ctx, q)
		if err != nil {
			if !errors.Is(err, ErrBadCursor) {
				t.Fatalf("Search(cursor=%q): err = %v, want ErrBadCursor", token, err)
			}
			return
		}
		last := Match{Trajectory: -1, Offset: -1}
		for h, herr := range r.All() {
			if herr != nil {
				t.Fatalf("stream: %v", herr)
			}
			if q.Kind != Trajectories && !matchLess(last, h.Match) {
				t.Fatalf("resumed stream out of canonical order: %v then %v", last, h.Match)
			}
			last = h.Match
		}
	})
}

// FuzzLoadMapped pins the v3 zero-copy open path: arbitrary bytes
// mapped as a container must open or fail with ErrCorrupt — never
// panic, never fault past the mapping. A successfully opened index is
// queried; with the structural invariants validated at open, residual
// semantic corruption must surface as a typed error from the search
// layer, not a crash.
func FuzzLoadMapped(f *testing.F) {
	trajs, times := fuzzCorpus()
	for _, shards := range []int{1, 2} {
		opts := DefaultOptions()
		opts.Shards = shards
		ix, err := Build(trajs, opts)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.SaveV3(&buf); err != nil {
			f.Fatal(err)
		}
		full := buf.Bytes()
		f.Add(append([]byte(nil), full...))
		f.Add(append([]byte(nil), full[:len(full)/2]...)) // truncation

		tix, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			f.Fatal(err)
		}
		buf.Reset()
		if _, err := tix.SaveV3(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), buf.Bytes()...))
	}
	f.Add([]byte(v3Magic))
	// Header whose shard+store counts wrap uint64 (regression: the sum
	// used to be computed before the counts were bounded, panicking in
	// makeslice instead of returning ErrCorrupt).
	f.Add(craftedV3Header(v3FlavorTemporal, 0, ^uint64(0), 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxFuzzInput {
			t.Skip()
		}
		path := filepath.Join(t.TempDir(), "fuzz.cinct3")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if ix, err := OpenMapped(path); err == nil {
			exerciseMapped(t, ix, nil)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrCorruptIndex) {
			t.Fatalf("OpenMapped: untyped error %v", err)
		}
		if tix, err := OpenMappedTemporal(path); err == nil {
			exerciseMapped(t, tix.Index, tix)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrCorruptIndex) &&
			!errors.Is(err, ErrCorruptTimestamps) {
			t.Fatalf("OpenMappedTemporal: untyped error %v", err)
		}
	})
}

// exerciseMapped pokes a successfully mapped index. Unlike
// exerciseLoaded it tolerates typed corruption errors during queries:
// the open path validates structure, not the O(n) semantic
// invariants, so a corrupt-but-well-shaped container may first fail
// inside a search. What it must never do is panic.
func exerciseMapped(t *testing.T, ix *Index, tix *TemporalIndex) {
	t.Helper()
	_ = ix.NumTrajectories()
	_ = ix.Len()
	_ = ix.Count([]uint32{2, 3})
	q := Query{Path: []uint32{2, 3}, Kind: Occurrences, Limit: 4}
	if tix != nil {
		q.Interval = &Interval{From: 0, To: 1 << 40}
	}
	var r *Results
	var err error
	if tix != nil {
		r, err = tix.Search(context.Background(), q)
	} else {
		r, err = ix.Search(context.Background(), q)
	}
	if err != nil {
		if errors.Is(err, ErrNoLocate) || errors.Is(err, ErrCorruptIndex) {
			return
		}
		t.Fatalf("Search on mapped index: unexpected error %v", err)
	}
	for _, herr := range r.All() {
		if herr != nil {
			if errors.Is(herr, ErrCorruptIndex) {
				return
			}
			t.Fatalf("stream on mapped index: %v", herr)
		}
	}
	if ix.NumTrajectories() > 0 {
		_, _ = ix.SubPath(0, 0, ix.TrajectoryLen(0))
	}
}
