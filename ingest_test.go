package cinct

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"cinct/internal/trajgen"
)

// genTraj draws one random trajectory over a small alphabet (so query
// paths actually collide with stored data).
func genTraj(rng *rand.Rand) []uint32 {
	n := 1 + rng.Intn(12)
	tr := make([]uint32, n)
	for i := range tr {
		tr[i] = uint32(rng.Intn(26))
	}
	return tr
}

// genTimes draws a mostly-monotone timestamp column for a trajectory.
func genTimes(rng *rand.Rand, n int) []int64 {
	col := make([]int64, n)
	t := int64(rng.Intn(10_000))
	for i := range col {
		col[i] = t
		t += int64(rng.Intn(40)) - 5 // occasionally steps backwards
	}
	return col
}

// genPath draws a query path: usually a substring of an existing
// trajectory (guaranteed occurrences), sometimes fully random.
func genPath(rng *rand.Rand, trajs [][]uint32) []uint32 {
	if len(trajs) > 0 && rng.Intn(4) != 0 {
		tr := trajs[rng.Intn(len(trajs))]
		m := 1 + rng.Intn(3)
		if m > len(tr) {
			m = len(tr)
		}
		off := rng.Intn(len(tr) - m + 1)
		return append([]uint32(nil), tr[off:off+m]...)
	}
	p := make([]uint32, 1+rng.Intn(3))
	for i := range p {
		p[i] = uint32(rng.Intn(26))
	}
	return p
}

// oracleSearch answers a Query by brute force over the full live
// corpus (sealed plus delta — the oracle has no such distinction):
// hits in canonical order with EnteredAt populated under an interval,
// plus the CountOnly answer.
func oracleSearch(trajs [][]uint32, times [][]int64, q Query) (hits []Hit, count int) {
	occ := bruteMatches(trajs, q.Path)
	var all []Hit
	for _, m := range occ {
		h := Hit{Match: m}
		if q.Interval != nil {
			at := times[m.Trajectory][m.Offset]
			if at < q.Interval.From || at > q.Interval.To {
				continue
			}
			h.EnteredAt = at
		}
		all = append(all, h)
	}
	count = len(all)
	if q.Kind == CountOnly {
		return nil, count
	}
	if q.Kind == Trajectories {
		var distinct []Hit
		last := -1
		for _, h := range all {
			if h.Trajectory == last {
				continue
			}
			last = h.Trajectory
			h.Offset = -1
			distinct = append(distinct, h)
		}
		all = distinct
	}
	if q.Limit > 0 && len(all) > q.Limit {
		all = all[:q.Limit]
	}
	return all, count
}

func drainWriter(t *testing.T, w *Writer, q Query) ([]Hit, int) {
	t.Helper()
	r, err := w.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("Writer.Search(%+v): %v", q, err)
	}
	if q.Kind == CountOnly {
		n, cerr := r.Count()
		if cerr != nil {
			t.Fatalf("Count: %v", cerr)
		}
		return nil, n
	}
	return drain(t, r), 0
}

func sameHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIngestDifferentialProperty is the property-based acceptance
// test of live ingestion: for random corpora and random Append / Seal
// / Compact / Search interleavings — over every writer shape (spatial
// and temporal, empty, monolithic and sharded bases) — every Search
// answer must equal the brute-force oracle over the union of sealed
// and delta data, before and after a save/load round trip of the
// sealed state.
func TestIngestDifferentialProperty(t *testing.T) {
	type shape struct {
		name     string
		temporal bool
		base     int // 0 = empty, 1 = monolithic, 3 = sharded
	}
	shapes := []shape{
		{"spatial/empty", false, 0},
		{"spatial/mono", false, 1},
		{"spatial/sharded", false, 3},
		{"temporal/empty", true, 0},
		{"temporal/mono", true, 1},
		{"temporal/sharded", true, 3},
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(sh.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*100 + int64(len(sh.name))))
				var trajs [][]uint32
				var times [][]int64

				var w *Writer
				var err error
				if sh.base == 0 {
					if sh.temporal {
						w, err = NewTemporalWriter(WriterConfig{})
					} else {
						w, err = NewWriter(WriterConfig{})
					}
				} else {
					for i := 0; i < 40; i++ {
						tr := genTraj(rng)
						trajs = append(trajs, tr)
						times = append(times, genTimes(rng, len(tr)))
					}
					opts := DefaultOptions()
					opts.Shards = sh.base
					if sh.temporal {
						var base *TemporalIndex
						base, err = BuildTemporal(trajs, times, opts)
						if err == nil {
							w, err = NewTemporalWriterAt(base, WriterConfig{})
						}
					} else {
						var base *Index
						base, err = Build(trajs, opts)
						if err == nil {
							w, err = NewWriterAt(base, WriterConfig{})
						}
					}
				}
				if err != nil {
					t.Fatal(err)
				}

				check := func(tag string) {
					q := Query{Path: genPath(rng, trajs), Kind: Kind(rng.Intn(3))}
					switch rng.Intn(4) {
					case 0:
						q.Limit = 1
					case 1:
						q.Limit = 3
					}
					if sh.temporal && rng.Intn(2) == 0 {
						from := int64(rng.Intn(12_000)) - 1000
						q.Interval = &Interval{From: from, To: from + int64(rng.Intn(6000))}
					}
					gotHits, gotCount := drainWriter(t, w, q)
					wantHits, wantCount := oracleSearch(trajs, times, q)
					if q.Kind == CountOnly {
						if gotCount != wantCount {
							t.Fatalf("%s: Count(%+v) = %d, oracle %d", tag, q, gotCount, wantCount)
						}
						return
					}
					if !sameHits(gotHits, wantHits) {
						t.Fatalf("%s: Search(%+v) = %v, oracle %v (sealed %d, delta %d)",
							tag, q, gotHits, wantHits, w.SealedTrajectories(), w.DeltaTrajectories())
					}
				}

				for step := 0; step < 150; step++ {
					switch op := rng.Intn(10); {
					case op < 6: // append
						tr := genTraj(rng)
						var col []int64
						if sh.temporal {
							col = genTimes(rng, len(tr))
						}
						id, aerr := w.Append(tr, col)
						if aerr != nil {
							t.Fatalf("Append: %v", aerr)
						}
						if id != len(trajs) {
							t.Fatalf("Append assigned ID %d, want %d", id, len(trajs))
						}
						trajs = append(trajs, tr)
						times = append(times, col)
					case op < 7: // seal
						before := w.DeltaTrajectories()
						n, serr := w.Seal()
						if serr != nil {
							t.Fatalf("Seal: %v", serr)
						}
						if n != before {
							t.Fatalf("Seal compacted %d rows, delta held %d", n, before)
						}
					case op < 8: // compact one round
						policy := CompactionPolicy{MinShards: 2, MaxShards: 4, TierRatio: 8}
						if rng.Intn(3) == 0 {
							policy = FullCompaction
						}
						before := w.SealedShards()
						res, cerr := w.Compact(policy)
						if cerr != nil {
							t.Fatalf("Compact: %v", cerr)
						}
						if res.Merged > 0 && w.SealedShards() != before-res.Merged+1 {
							t.Fatalf("Compact claimed %d merged but shards went %d -> %d",
								res.Merged, before, w.SealedShards())
						}
					default:
						check("live")
					}
				}

				// Reconstruction must agree for sealed and delta rows alike.
				for i := 0; i < 10 && len(trajs) > 0; i++ {
					id := rng.Intn(len(trajs))
					got, terr := w.Trajectory(id)
					if terr != nil {
						t.Fatalf("Trajectory(%d): %v", id, terr)
					}
					if len(got) != len(trajs[id]) {
						t.Fatalf("Trajectory(%d) len %d, want %d", id, len(got), len(trajs[id]))
					}
					for j := range got {
						if got[j] != trajs[id][j] {
							t.Fatalf("Trajectory(%d) differs at %d", id, j)
						}
					}
				}

				// Final seal, then a save/load round trip of the sealed
				// state must answer identically to the oracle.
				if _, err := w.Seal(); err != nil {
					t.Fatal(err)
				}
				check("post-final-seal")
				ix, tix := w.Snapshot()
				if len(trajs) == 0 {
					return
				}
				var buf bytes.Buffer
				if sh.temporal {
					if _, err := tix.Save(&buf); err != nil {
						t.Fatal(err)
					}
					re, lerr := LoadTemporal(&buf)
					if lerr != nil {
						t.Fatal(lerr)
					}
					q := Query{Path: genPath(rng, trajs), Kind: Occurrences,
						Interval: &Interval{From: -1 << 60, To: 1 << 60}}
					got := searchHitsT(t, re, q)
					want, _ := oracleSearch(trajs, times, q)
					if !sameHits(got, want) {
						t.Fatalf("reloaded temporal: %v, oracle %v", got, want)
					}
				} else {
					if _, err := ix.Save(&buf); err != nil {
						t.Fatal(err)
					}
					re, lerr := Load(&buf)
					if lerr != nil {
						t.Fatal(lerr)
					}
					q := Query{Path: genPath(rng, trajs), Kind: Occurrences}
					got := searchHits(t, re, q)
					want, _ := oracleSearch(trajs, times, q)
					if !sameHits(got, want) {
						t.Fatalf("reloaded spatial: %v, oracle %v", got, want)
					}
				}
			})
		}
	}
}

func searchHitsT(t *testing.T, ix *TemporalIndex, q Query) []Hit {
	t.Helper()
	r, err := ix.Search(context.Background(), q)
	if err != nil {
		t.Fatalf("Search(%+v): %v", q, err)
	}
	return drain(t, r)
}

// TestWriterCursorSurvivesSeal pins the seal-boundary paging
// guarantee: a cursor taken from a page served partly by the delta
// resumes the exact suffix after the rows were compacted — global IDs
// are stable across seals, so pre-seal pages + post-seal pages
// concatenate to the unpaged stream.
func TestWriterCursorSurvivesSeal(t *testing.T) {
	w, err := NewWriter(WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := []uint32{7, 8}
	var trajs [][]uint32
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		tr := append(genTraj(rng), 7, 8) // guarantee a hit per row
		if _, err := w.Append(tr, nil); err != nil {
			t.Fatal(err)
		}
		trajs = append(trajs, tr)
		if i == 9 {
			if _, err := w.Seal(); err != nil { // mixed sealed+delta state
				t.Fatal(err)
			}
		}
	}

	full, _ := drainWriter(t, w, Query{Path: path, Kind: Occurrences})

	r, err := w.Search(context.Background(), Query{Path: path, Kind: Occurrences, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	page1 := drain(t, r)
	cursor := r.Cursor()
	if cursor == "" {
		t.Fatal("bounded page handed out no cursor")
	}

	if _, err := w.Seal(); err != nil { // the boundary under test
		t.Fatal(err)
	}

	rest, _ := drainWriter(t, w, Query{Path: path, Kind: Occurrences, Cursor: cursor})
	got := append(append([]Hit{}, page1...), rest...)
	if !sameHits(got, full) {
		t.Fatalf("pre-seal page + post-seal resume = %v, want %v", got, full)
	}
}

// TestWriterAppendValidation pins the typed-error contract of the
// write path.
func TestWriterAppendValidation(t *testing.T) {
	sw, err := NewWriter(WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tw, err := NewTemporalWriter(WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		w     *Writer
		edges []uint32
		times []int64
	}{
		{"empty trajectory", sw, nil, nil},
		{"times on spatial", sw, []uint32{1}, []int64{5}},
		{"missing times on temporal", tw, []uint32{1}, nil},
		{"short times", tw, []uint32{1, 2}, []int64{5}},
	}
	for _, tc := range cases {
		if _, err := tc.w.Append(tc.edges, tc.times); !errors.Is(err, ErrBadAppend) {
			t.Errorf("%s: err = %v, want ErrBadAppend", tc.name, err)
		}
	}
	if _, err := sw.AppendBatch([][]uint32{{1}, {}}, nil); !errors.Is(err, ErrBadAppend) {
		t.Errorf("batch with empty row: err = %v, want ErrBadAppend", err)
	}
	if sw.NumTrajectories() != 0 {
		t.Errorf("rejected appends left %d trajectories behind", sw.NumTrajectories())
	}
}

// TestWriterAutoSeal pins the background sealer: crossing the
// threshold compacts the delta without any explicit Seal call, and
// the OnSeal hook observes it.
func TestWriterAutoSeal(t *testing.T) {
	sealedCh := make(chan int, 8)
	w, err := NewWriter(WriterConfig{
		SealThreshold: 4,
		OnSeal:        func(n int) { sealedCh <- n },
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]uint32{1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
		total++
	}
	w.Close() // waits for in-flight background seals
	sealed := 0
	for {
		select {
		case n := <-sealedCh:
			sealed += n
			continue
		default:
		}
		break
	}
	if sealed == 0 {
		t.Fatal("no background seal fired past the threshold")
	}
	if got := w.SealedTrajectories(); got != sealed {
		t.Fatalf("SealedTrajectories = %d, OnSeal reported %d", got, sealed)
	}
	if got, want := w.NumTrajectories(), total; got != want {
		t.Fatalf("NumTrajectories = %d, want %d", got, want)
	}
	n, err := w.Search(context.Background(), Query{Path: []uint32{1, 2, 3}, Kind: CountOnly})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := n.Count(); c != total {
		t.Fatalf("Count = %d, want %d (lost rows across auto-seal)", c, total)
	}
}

// TestWriterBackgroundErrorHooks pins the error-routing contract of
// the background sealer: failures are no longer swallowed — they flow
// through WriterConfig.Logf and OnError.
func TestWriterBackgroundErrorHooks(t *testing.T) {
	var logged []string
	var reported []error
	w, err := NewWriter(WriterConfig{
		Logf:    func(format string, args ...any) { logged = append(logged, format) },
		OnError: func(op string, err error) { reported = append(reported, err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.reportError("seal", errors.New("disk on fire"))
	if len(logged) != 1 || len(reported) != 1 {
		t.Fatalf("hooks fired %d/%d times, want 1/1", len(logged), len(reported))
	}
	if reported[0].Error() != "disk on fire" {
		t.Fatalf("OnError got %v", reported[0])
	}
	// Hookless writers must stay safe to report through.
	bare, err := NewWriter(WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	bare.reportError("seal", errors.New("quietly"))
}

// TestWriterRejectsLegacyTemporalLayout pins ErrNotAppendable for the
// one layout a seal cannot extend.
func TestWriterRejectsLegacyTemporalLayout(t *testing.T) {
	cfg := trajgen.Config{GridW: 6, GridH: 6, NumTrajs: 20, MeanLen: 8, Seed: 3}
	d := trajgen.Singapore2(cfg)
	times := make([][]int64, len(d.Trajs))
	for k, tr := range d.Trajs {
		col := make([]int64, len(tr))
		for i := range col {
			col[i] = int64(k*100 + i)
		}
		times[k] = col
	}
	opts := DefaultOptions()
	opts.Shards = 3
	tix, err := BuildTemporal(d.Trajs, times, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Forge the legacy shape: sharded spatial index, one global store.
	legacy := &TemporalIndex{Index: tix.Index, stores: tix.stores[:1]}
	if _, err := NewTemporalWriterAt(legacy, WriterConfig{}); !errors.Is(err, ErrNotAppendable) {
		t.Fatalf("legacy layout: err = %v, want ErrNotAppendable", err)
	}
	if _, err := legacy.withShard(tix.Index.sharded.shards[0], tix.stores[0]); !errors.Is(err, ErrNotAppendable) {
		t.Fatalf("withShard on legacy layout: err = %v, want ErrNotAppendable", err)
	}
}

// TestAppendSealed pins the index-layer compaction primitive: the
// returned index serves the union while the receiver is untouched.
func TestAppendSealed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var trajs [][]uint32
	for i := 0; i < 25; i++ {
		trajs = append(trajs, genTraj(rng))
	}
	opts := DefaultOptions()
	opts.Shards = 2
	si, err := BuildSharded(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	extra := [][]uint32{{1, 2, 3}, {2, 3}}
	grown, err := si.AppendSealed(extra, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := grown.NumTrajectories(), len(trajs)+len(extra); got != want {
		t.Fatalf("grown holds %d trajectories, want %d", got, want)
	}
	if got, want := si.NumTrajectories(), len(trajs); got != want {
		t.Fatalf("AppendSealed mutated the receiver: %d trajectories, want %d", got, want)
	}
	all := append(append([][]uint32{}, trajs...), extra...)
	path := []uint32{2, 3}
	got, err := grown.Find(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteMatches(all, path)
	if len(got) != len(want) {
		t.Fatalf("Find = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Find = %v, want %v", got, want)
		}
	}
}
