// Command genfuzzseeds regenerates the committed fuzz seed corpora
// under testdata/fuzz/ and server/testdata/fuzz/: valid container
// files (monolithic, sharded, temporal), truncations, bare magics,
// genuine cursors and representative query bodies — the structured
// starting points that let short CI fuzz runs reach deep parser
// states immediately. Run from the repo root:
//
//	go run ./scripts/genfuzzseeds
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cinct"
	"cinct/internal/roadnet"
	"cinct/internal/wal"
)

// corpus mirrors fuzzCorpus in fuzz_test.go.
func corpus() ([][]uint32, [][]int64) {
	trajs := [][]uint32{
		{1, 2, 3, 4},
		{2, 3, 4},
		{5, 1, 2, 3},
		{3, 4, 5, 1, 2},
		{9},
		{2, 3},
	}
	times := make([][]int64, len(trajs))
	for k, tr := range trajs {
		col := make([]int64, len(tr))
		for i := range col {
			col[i] = int64(100*k + 10*i)
		}
		times[k] = col
	}
	return trajs, times
}

func writeSeed(dir, name string, data []byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d input bytes)\n", filepath.Join(dir, name), len(data))
}

func main() {
	trajs, times := corpus()

	// FuzzLoadSharded: monolithic + sharded containers and truncations.
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadSharded")
	for _, shards := range []int{1, 3} {
		opts := cinct.DefaultOptions()
		opts.Shards = shards
		ix, err := cinct.Build(trajs, opts)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.Save(&buf); err != nil {
			log.Fatal(err)
		}
		writeSeed(dir, fmt.Sprintf("valid-shards%d", shards), buf.Bytes())
		writeSeed(dir, fmt.Sprintf("truncated-shards%d", shards), buf.Bytes()[:buf.Len()/2])
	}
	writeSeed(dir, "magic-only", []byte("CNCTshrd"))

	// FuzzLoadTemporal: current container, legacy-shaped prefix, magic.
	dir = filepath.Join("testdata", "fuzz", "FuzzLoadTemporal")
	for _, shards := range []int{1, 2} {
		opts := cinct.DefaultOptions()
		opts.Shards = shards
		tix, err := cinct.BuildTemporal(trajs, times, opts)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := tix.Save(&buf); err != nil {
			log.Fatal(err)
		}
		writeSeed(dir, fmt.Sprintf("valid-shards%d", shards), buf.Bytes())
		writeSeed(dir, fmt.Sprintf("truncated-shards%d", shards), buf.Bytes()[:2*buf.Len()/3])
	}
	writeSeed(dir, "magic-only", []byte("CNCTtemp"))

	// FuzzCursor: genuine resume tokens (selector byte + token) and junk.
	dir = filepath.Join("testdata", "fuzz", "FuzzCursor")
	tix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	queries := []cinct.Query{
		{Path: []uint32{2, 3}, Kind: cinct.Occurrences, Limit: 1},
		{Path: []uint32{2, 3}, Kind: cinct.Trajectories, Limit: 1,
			Interval: &cinct.Interval{From: 0, To: 1 << 40}},
	}
	for i, q := range queries {
		r, err := tix.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		for _, herr := range r.All() {
			if herr != nil {
				log.Fatal(herr)
			}
			break
		}
		writeSeed(dir, fmt.Sprintf("valid-cursor%d", i), []byte("\x00"+r.Cursor()))
	}
	writeSeed(dir, "garbage", []byte("\x01garbage-token"))
	writeSeed(dir, "empty-token", []byte{0x02})

	// FuzzLoadMapped: v3 zero-copy containers (spatial and temporal),
	// truncations, bare magic.
	dir = filepath.Join("testdata", "fuzz", "FuzzLoadMapped")
	for _, shards := range []int{1, 2} {
		opts := cinct.DefaultOptions()
		opts.Shards = shards
		ix, err := cinct.Build(trajs, opts)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.SaveV3(&buf); err != nil {
			log.Fatal(err)
		}
		writeSeed(dir, fmt.Sprintf("v3-spatial-shards%d", shards), buf.Bytes())
		writeSeed(dir, fmt.Sprintf("v3-truncated-shards%d", shards), buf.Bytes()[:buf.Len()/2])
		tix, err := cinct.BuildTemporal(trajs, times, opts)
		if err != nil {
			log.Fatal(err)
		}
		buf.Reset()
		if _, err := tix.SaveV3(&buf); err != nil {
			log.Fatal(err)
		}
		writeSeed(dir, fmt.Sprintf("v3-temporal-shards%d", shards), buf.Bytes())
	}
	writeSeed(dir, "magic-only", []byte("CNCTidx3"))

	// FuzzWALReplay: a genuine two-batch segment (spatial + temporal
	// rows), its torn-tail truncation, a bit-flipped-CRC variant, and
	// the bare magic. The segment bytes come from the real writer: a
	// throwaway log in a temp dir.
	dir = filepath.Join("internal", "wal", "testdata", "fuzz", "FuzzWALReplay")
	tmp, err := os.MkdirTemp("", "walseed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	wlog, err := wal.Open(tmp, wal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	walBatches := []wal.Batch{
		{FirstID: 0, Trajs: [][]uint32{{1, 2, 3}, {4, 5}}},
		{FirstID: 2, Trajs: [][]uint32{{7, 8, 9}}, Times: [][]int64{{100, 90, 250}}},
	}
	for _, b := range walBatches {
		if err := wlog.Append(b); err != nil {
			log.Fatal(err)
		}
	}
	if err := wlog.Close(); err != nil {
		log.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(tmp, "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		log.Fatalf("expected one WAL segment, got %v (%v)", segs, err)
	}
	seg, err := os.ReadFile(segs[0])
	if err != nil {
		log.Fatal(err)
	}
	writeSeed(dir, "valid-segment", seg)
	writeSeed(dir, "truncated-tail", seg[:len(seg)-3])
	flipped := append([]byte(nil), seg...)
	flipped[8+5] ^= 0x01 // inside the first record's CRC field
	writeSeed(dir, "bitflipped-crc", flipped)
	writeSeed(dir, "magic-only", []byte("CNCTwal1"))

	// FuzzQueryUnmarshal: representative wire bodies.
	dir = filepath.Join("server", "testdata", "fuzz", "FuzzQueryUnmarshal")
	for i, body := range []string{
		`{"path":[1,2,3]}`,
		`{"path":[1],"kind":"count","limit":10}`,
		`{"path":[2,3],"kind":"trajectories","from":0,"to":999,"cursor":"AQ"}`,
		`{"path":[4294967295],"limit":-1}`,
		`{"kind":"nosuch"}`,
		`{`,
	} {
		writeSeed(dir, fmt.Sprintf("seed%d", i), []byte(body))
	}

	// FuzzLoadRoadnet: a genuine CNCTroad container, its truncation, a
	// count-corrupted variant and the bare magic.
	dir = filepath.Join("internal", "roadnet", "testdata", "fuzz", "FuzzLoadRoadnet")
	var road bytes.Buffer
	if err := roadnet.Grid(4, 3, 2).Save(&road); err != nil {
		log.Fatal(err)
	}
	writeSeed(dir, "valid-grid", road.Bytes())
	writeSeed(dir, "truncated", road.Bytes()[:road.Len()/2])
	overcount := append([]byte(nil), road.Bytes()...)
	overcount[16] = 0xFF // inflate the edge count past the body
	writeSeed(dir, "overcount-edges", overcount)
	writeSeed(dir, "magic-only", []byte("CNCTroad"))
}
