#!/usr/bin/env bash
# End-to-end smoke test of the serving stack: generate a corpus, build
# spatial + temporal indexes, start cinctd, hit every endpoint with
# curl (checking status and response schema with jq), round-trip the
# CLI's -remote mode, and shut the daemon down gracefully. CI runs
# this; it also works locally from the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bindir="$workdir/bin"
datadir="$workdir/data"
mkdir -p "$bindir" "$datadir"
daemon_pid=""
daemon_b_pid=""
oracle_pid=""

cleanup() {
  for pid in "$daemon_pid" "$daemon_b_pid" "$oracle_pid"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$bindir" ./cmd/trajgen ./cmd/cinct ./cmd/cinctd

echo "== generating corpus + timestamps"
"$bindir/trajgen" -dataset singapore2 -trajs 400 -meanlen 20 \
  -out "$workdir/corpus.txt" -times "$workdir/times.txt"

echo "== building indexes"
"$bindir/cinct" build -in "$workdir/corpus.txt" -index "$datadir/smoke.cinct" -shards 4
"$bindir/cinct" build-temporal -in "$workdir/corpus.txt" -times "$workdir/times.txt" \
  -index "$datadir/tsmoke.tcinct" -shards 2

addr="127.0.0.1:18132"
base="http://$addr"
echo "== starting cinctd on $addr"
"$bindir/cinctd" -data "$datadir" -addr "$addr" &
daemon_pid=$!

for i in $(seq 1 50); do
  if curl -sf "$base/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: cinctd exited before becoming ready" >&2; exit 1
  fi
  sleep 0.2
done

# check METHOD PATH JQ_ASSERTION — fails on non-200 or schema drift.
check() {
  local path=$1 assertion=$2 body
  body=$(curl -sf "$base$path") || { echo "smoke: GET $path failed" >&2; exit 1; }
  echo "$body" | jq -e "$assertion" >/dev/null \
    || { echo "smoke: GET $path: schema drift: $body" >&2; exit 1; }
  echo "ok GET $path"
}

# A query path guaranteed to exist: the first two edges of trajectory 0.
path=$("$bindir/cinct" show -remote "$base" -name smoke -traj 0 | awk '{print $1","$2}')

echo "== curling endpoints"
check "/v1/indexes" \
  '(.indexes | length) == 2 and (.indexes[] | select(.name=="smoke") | .stats.trajectories) == 400 and (.indexes[] | select(.name=="tsmoke") | .temporal) == true'
check "/v1/smoke/count?path=$path" \
  '.index == "smoke" and (.count | type) == "number" and .count >= 1'
check "/v1/smoke/find?path=$path&limit=5" \
  '.limit == 5 and (.matches | type) == "array" and (.matches | length) >= 1 and (.matches[0] | has("trajectory") and has("offset"))'
check "/v1/smoke/trajectory/0" \
  '.id == 0 and (.edges | length) >= 2'
check "/v1/smoke/subpath?traj=0&from=0&to=2" \
  '.from == 0 and .to == 2 and (.edges | length) == 2'
check "/v1/tsmoke/temporal/find?path=$path&limit=5" \
  '.index == "tsmoke" and (.matches | type) == "array" and (if (.matches | length) > 0 then (.matches[0] | has("enteredAt")) else true end)'
check "/v1/tsmoke/temporal/count?path=$path" \
  '.index == "tsmoke" and (.count | type) == "number" and .count >= 0'

# The all-time temporal count must agree with the spatial count of the
# same path on the same corpus.
tcount=$(curl -sf "$base/v1/tsmoke/temporal/count?path=$path" | jq .count)
scount=$(curl -sf "$base/v1/tsmoke/count?path=$path" | jq .count)
[ "$tcount" = "$scount" ] || {
  echo "smoke: temporal/count ($tcount) != spatial count ($scount)" >&2; exit 1
}
echo "ok temporal/count == spatial count"

echo "== metrics endpoint"
# Prometheus text format with the core series present.
ctype=$(curl -sf -o /dev/null -w '%{content_type}' "$base/metrics")
case "$ctype" in
  text/plain*) ;;
  *) echo "smoke: /metrics content type $ctype, want text/plain" >&2; exit 1 ;;
esac
scrape=$(curl -sf "$base/metrics")
for series in cinct_queries_total cinct_query_seconds cinct_http_requests_total \
  cinct_pool_capacity cinct_cache_entries; do
  echo "$scrape" | grep -q "^$series" \
    || { echo "smoke: /metrics missing $series" >&2; exit 1; }
done
# metric_value NAME — current value of a counter line in the last scrape.
metric_value() {
  echo "$scrape" | awk -v m="$1" '$1 == m {print $2}'
}
before=$(metric_value 'cinct_queries_total{kind="count"}')
curl -sf "$base/v1/smoke/count?path=$path" >/dev/null
scrape=$(curl -sf "$base/metrics")
after=$(metric_value 'cinct_queries_total{kind="count"}')
[ "${after:-0}" -gt "${before:-0}" ] || {
  echo "smoke: cinct_queries_total{kind=\"count\"} did not advance ($before -> $after)" >&2; exit 1
}
echo "ok GET /metrics (count queries: $before -> $after)"

echo "== unified streaming query endpoint"
# qpost INDEX JSON-BODY — POST to the NDJSON query endpoint.
qpost() {
  curl -sf -X POST -H 'Content-Type: application/json' -d "$2" "$base/v1/$1/query"
}
jpath="[${path//,/, }]"

# Count kind must agree with the legacy count endpoint.
qcount=$(qpost smoke "{\"path\":$jpath,\"kind\":\"count\"}" | jq -r 'select(.done == true).count')
legacy=$(curl -sf "$base/v1/smoke/count?path=$path" | jq .count)
[ "$qcount" = "$legacy" ] || {
  echo "smoke: query kind=count ($qcount) != legacy count ($legacy)" >&2; exit 1
}
echo "ok query kind=count == legacy count"

# Trajectories kind (FindTrajectories had no endpoint before this one):
# every record is a distinct id with offset -1, and there is at least one.
traj_stream=$(qpost smoke "{\"path\":$jpath,\"kind\":\"trajectories\"}")
ntraj=$(echo "$traj_stream" | jq -s '[.[] | select(has("done") | not)] | length')
[ "$ntraj" -ge 1 ] || { echo "smoke: query kind=trajectories returned no hits" >&2; exit 1; }
echo "$traj_stream" | jq -e -s '[.[] | select(has("done") | not) | .offset] | all(. == -1)' >/dev/null \
  || { echo "smoke: trajectories stream has non -1 offsets" >&2; exit 1; }
echo "ok query kind=trajectories ($ntraj ids)"

# Cursor pagination: pages of 2 followed via the summary cursor must
# concatenate to exactly the unpaged stream.
unpaged_file="$workdir/unpaged.ndjson"
paged_file="$workdir/paged.ndjson"
qpost smoke "{\"path\":$jpath}" | jq -c 'select(has("done") | not)' > "$unpaged_file"
: > "$paged_file"
cursor=""
pages=0
while :; do
  if [ -n "$cursor" ]; then
    body="{\"path\":$jpath,\"limit\":2,\"cursor\":\"$cursor\"}"
  else
    body="{\"path\":$jpath,\"limit\":2}"
  fi
  page=$(qpost smoke "$body")
  echo "$page" | jq -c 'select(has("done") | not)' >> "$paged_file"
  echo "$page" | jq -e 'select(.done == true)' >/dev/null \
    || { echo "smoke: query page missing summary record" >&2; exit 1; }
  cursor=$(echo "$page" | jq -r 'select(.done == true).cursor // empty')
  pages=$((pages + 1))
  [ -z "$cursor" ] && break
  [ "$pages" -gt 200 ] && { echo "smoke: cursor chain does not terminate" >&2; exit 1; }
done
cmp -s "$unpaged_file" "$paged_file" || {
  echo "smoke: concatenated cursor pages differ from unpaged stream" >&2
  diff "$unpaged_file" "$paged_file" >&2 || true
  exit 1
}
[ "$pages" -ge 2 ] || { echo "smoke: pagination made only $pages page(s); cursor untested" >&2; exit 1; }
echo "ok query cursor pagination ($pages pages == unpaged)"

# Temporal query through the unified endpoint: all-time interval count
# must equal the spatial count.
tq=$(qpost tsmoke "{\"path\":$jpath,\"kind\":\"count\",\"from\":0}" | jq -r 'select(.done == true).count')
[ "$tq" = "$scount" ] || {
  echo "smoke: temporal query count ($tq) != spatial count ($scount)" >&2; exit 1
}
echo "ok temporal query kind=count == spatial count"

# Limit rule: a negative limit is a 400 at the HTTP layer.
status=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
  -d "{\"path\":$jpath,\"limit\":-1}" "$base/v1/smoke/query")
[ "$status" = 400 ] || { echo "smoke: negative limit returned $status, want 400" >&2; exit 1; }
echo "ok 400 on negative limit"

status=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/nosuch/count?path=1")
[ "$status" = 404 ] || { echo "smoke: unknown index returned $status, want 404" >&2; exit 1; }
echo "ok 404 on unknown index"

gen=$(curl -sf -X POST "$base/v1/smoke/reload" | jq -e .generation)
[ "$gen" = 2 ] || { echo "smoke: reload generation $gen, want 2" >&2; exit 1; }
echo "ok POST /v1/smoke/reload"

echo "== CLI -remote round-trip"
# grep without -q consumes the whole stream: with pipefail, a -q grep
# that exits at the first match SIGPIPEs the CLI's later lines (e.g.
# find's trailing "next: -cursor ..." hint) and fails the pipeline.
"$bindir/cinct" count -remote "$base" -name smoke -path "${path//,/ }" | grep 'occurrences' >/dev/null \
  || { echo "smoke: remote count failed" >&2; exit 1; }
"$bindir/cinct" find -remote "$base" -name smoke -path "${path//,/ }" -limit 3 | grep 'match(es)' >/dev/null \
  || { echo "smoke: remote find failed" >&2; exit 1; }
"$bindir/cinct" find-traj -remote "$base" -name smoke -path "${path//,/ }" -limit 3 | grep 'trajectorie(s)' >/dev/null \
  || { echo "smoke: remote find-traj failed" >&2; exit 1; }
"$bindir/cinct" find-interval -remote "$base" -name tsmoke -path "${path//,/ }" -limit 3 | grep 'match(es)' >/dev/null \
  || { echo "smoke: remote find-interval failed" >&2; exit 1; }
"$bindir/cinct" count-interval -remote "$base" -name tsmoke -path "${path//,/ }" | grep 'occurrences in' >/dev/null \
  || { echo "smoke: remote count-interval failed" >&2; exit 1; }
"$bindir/cinct" verify -remote "$base" -name smoke -in "$workdir/corpus.txt" -samples 40 \
  || { echo "smoke: remote verify failed" >&2; exit 1; }

echo "== live ingestion"
# A marker path that cannot pre-exist (trajgen edge IDs are small).
mpath="900001,900002"
mjson="[${mpath//,/, }]"
pre=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$pre" = 0 ] || { echo "smoke: marker path pre-exists ($pre)" >&2; exit 1; }

# Ingest two trajectories carrying the marker into the spatial index.
ingest=$(printf '{"edges":[7,900001,900002]}\n{"edges":[900001,900002]}\n' \
  | curl -sf -X POST -H 'Content-Type: application/x-ndjson' --data-binary @- "$base/v1/smoke/ingest")
echo "$ingest" | jq -e '.appended == 2 and .firstId == 400 and .deltaTrajectories == 2' >/dev/null \
  || { echo "smoke: ingest response drift: $ingest" >&2; exit 1; }
echo "ok POST /v1/smoke/ingest (2 rows into the delta)"

# The delta is immediately queryable — legacy and unified endpoints.
post=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$post" = 2 ] || { echo "smoke: delta not queryable: count $post, want 2" >&2; exit 1; }
qc=$(qpost smoke "{\"path\":$mjson,\"kind\":\"count\"}" | jq -r 'select(.done == true).count')
[ "$qc" = 2 ] || { echo "smoke: unified query misses delta: $qc" >&2; exit 1; }
curl -sf "$base/v1/smoke/trajectory/401" | jq -e '.edges == [900001, 900002]' >/dev/null \
  || { echo "smoke: delta trajectory not reconstructible" >&2; exit 1; }
echo "ok delta queryable (count=2, reconstruction OK)"

# Seal: counts unchanged, delta drained, sealed shards persisted.
sealed=$(curl -sf -X POST "$base/v1/smoke/seal")
echo "$sealed" | jq -e '.sealed == 2 and .deltaTrajectories == 0' >/dev/null \
  || { echo "smoke: seal response drift: $sealed" >&2; exit 1; }
post=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$post" = 2 ] || { echo "smoke: seal changed count to $post" >&2; exit 1; }
echo "ok POST /v1/smoke/seal (counts stable across compaction)"

# Reload re-reads the persisted file: the ingested rows must survive.
curl -sf -X POST "$base/v1/smoke/reload" >/dev/null
post=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$post" = 2 ] || { echo "smoke: sealed rows lost after reload ($post)" >&2; exit 1; }
curl -sf "$base/v1/indexes" | jq -e '(.indexes[] | select(.name=="smoke") | .stats.trajectories) == 402' >/dev/null \
  || { echo "smoke: reloaded index lost ingested trajectories" >&2; exit 1; }
echo "ok sealed shards persisted (402 trajectories after reload)"

# Temporal ingest with inline seal + interval check over the new row.
tingest=$(printf '{"edges":[900001,900002],"times":[5000000,5000010]}\n' \
  | curl -sf -X POST --data-binary @- "$base/v1/tsmoke/ingest?seal=true")
echo "$tingest" | jq -e '.appended == 1 and .sealed == 1' >/dev/null \
  || { echo "smoke: temporal ingest drift: $tingest" >&2; exit 1; }
tcount=$(curl -sf "$base/v1/tsmoke/temporal/count?path=$mpath&from=4999999&to=5000001" | jq .count)
[ "$tcount" = 1 ] || { echo "smoke: temporal interval misses ingested row ($tcount)" >&2; exit 1; }
echo "ok temporal ingest + interval query over ingested timestamps"

# CLI ingest round trip against the daemon.
printf '7 900001 900002\n' > "$workdir/more.txt"
"$bindir/cinct" ingest -remote "$base" -name smoke -in "$workdir/more.txt" -seal | grep 'sealed' >/dev/null \
  || { echo "smoke: cinct ingest -remote failed" >&2; exit 1; }
post=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$post" = 3 ] || { echo "smoke: CLI ingest not visible (count $post, want 3)" >&2; exit 1; }
echo "ok cinct ingest -remote (count now 3)"

# Bad batches are 400s.
status=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary '{"edges":[]}' "$base/v1/smoke/ingest")
[ "$status" = 400 ] || { echo "smoke: empty-edges ingest returned $status, want 400" >&2; exit 1; }
status=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary '{"edges":[1]}' "$base/v1/tsmoke/ingest")
[ "$status" = 400 ] || { echo "smoke: missing-times ingest returned $status, want 400" >&2; exit 1; }
echo "ok 400 on malformed ingest batches"

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: cinctd did not exit on SIGTERM" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" = 0 ] || { echo "smoke: cinctd exited with $rc" >&2; exit 1; }
daemon_pid=""

echo "== converting indexes to v3 (page-aligned, mmap-ready)"
# In-place conversion is safe: convert loads the whole index before
# writing, and writes via a temp file + rename.
"$bindir/cinct" convert -in "$datadir/smoke.cinct" -out "$datadir/smoke.cinct"
"$bindir/cinct" convert -in "$datadir/tsmoke.tcinct" -out "$datadir/tsmoke.tcinct"

addr="127.0.0.1:18133"
base="http://$addr"
echo "== restarting cinctd -mmap on $addr (zero-copy serving)"
"$bindir/cinctd" -data "$datadir" -addr "$addr" -mmap &
daemon_pid=$!
for i in $(seq 1 50); do
  if curl -sf "$base/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: cinctd -mmap exited before becoming ready" >&2; exit 1
  fi
  sleep 0.2
done

# Both converted indexes must serve mapped, with every ingested row
# still present, and answers must match the heap-served run.
check "/v1/indexes" \
  '(.indexes[] | select(.name=="smoke") | .mapped) == true and (.indexes[] | select(.name=="tsmoke") | .mapped) == true and (.indexes[] | select(.name=="smoke") | .stats.trajectories) == 403'
post=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$post" = 3 ] || { echo "smoke: mmap count of marker path is $post, want 3" >&2; exit 1; }
scount2=$(curl -sf "$base/v1/smoke/count?path=$path" | jq .count)
[ "$scount2" = "$scount" ] || {
  echo "smoke: mmap count ($scount2) != heap count ($scount)" >&2; exit 1
}
tcount=$(curl -sf "$base/v1/tsmoke/temporal/count?path=$mpath&from=4999999&to=5000001" | jq .count)
[ "$tcount" = 1 ] || { echo "smoke: mmap temporal interval count $tcount, want 1" >&2; exit 1; }
echo "ok mmap serving answers match heap serving"

echo "== graceful shutdown (mmap daemon)"
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: cinctd -mmap did not exit on SIGTERM" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" = 0 ] || { echo "smoke: cinctd -mmap exited with $rc" >&2; exit 1; }
daemon_pid=""

waldir="$workdir/wal"
addr="127.0.0.1:18134"
base="http://$addr"
echo "== restarting cinctd with -wal on $addr (crash-recovery leg)"
"$bindir/cinctd" -data "$datadir" -addr "$addr" -wal "$waldir" &
daemon_pid=$!
for i in $(seq 1 50); do
  if curl -sf "$base/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: cinctd -wal exited before becoming ready" >&2; exit 1
  fi
  sleep 0.2
done

# Ingest two acknowledged rows and deliberately do NOT seal: without
# the WAL these would die with the process.
mpath2="900003,900004"
ingest=$(printf '{"edges":[900003,900004]}\n{"edges":[7,900003,900004]}\n' \
  | curl -sf -X POST --data-binary @- "$base/v1/smoke/ingest")
echo "$ingest" | jq -e '.appended == 2' >/dev/null \
  || { echo "smoke: WAL-leg ingest drift: $ingest" >&2; exit 1; }
post=$(curl -sf "$base/v1/smoke/count?path=$mpath2" | jq .count)
[ "$post" = 2 ] || { echo "smoke: pre-kill count $post, want 2" >&2; exit 1; }

echo "== SIGKILL (no shutdown, no seal)"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

addr="127.0.0.1:18135"
base="http://$addr"
echo "== restarting cinctd after the kill (WAL replay)"
"$bindir/cinctd" -data "$datadir" -addr "$addr" -wal "$waldir" &
daemon_pid=$!
for i in $(seq 1 50); do
  if curl -sf "$base/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: cinctd exited before becoming ready after kill" >&2; exit 1
  fi
  sleep 0.2
done
post=$(curl -sf "$base/v1/smoke/count?path=$mpath2" | jq .count)
[ "$post" = 2 ] || { echo "smoke: WAL replay lost acknowledged rows (count $post, want 2)" >&2; exit 1; }
curl -sf "$base/v1/smoke/trajectory/404" | jq -e '.edges == [7, 900003, 900004]' >/dev/null \
  || { echo "smoke: replayed trajectory not reconstructible" >&2; exit 1; }
echo "ok acknowledged rows survive SIGKILL via WAL replay"

echo "== compaction over HTTP"
# Seal the replayed delta, then merge every sealed shard into one.
curl -sf -X POST "$base/v1/smoke/seal" >/dev/null
shards_before=$(curl -sf "$base/v1/indexes" | jq '.indexes[] | select(.name=="smoke").stats.shards')
compacted=$(curl -sf -X POST "$base/v1/smoke/compact?full=true")
echo "$compacted" | jq -e '.shardsAfter == 1 and .merged >= 2' >/dev/null \
  || { echo "smoke: compact response drift ($shards_before shards before): $compacted" >&2; exit 1; }
post=$(curl -sf "$base/v1/smoke/count?path=$mpath2" | jq .count)
[ "$post" = 2 ] || { echo "smoke: compaction changed marker count to $post" >&2; exit 1; }
post=$(curl -sf "$base/v1/smoke/count?path=$mpath" | jq .count)
[ "$post" = 3 ] || { echo "smoke: compaction changed older marker count to $post" >&2; exit 1; }
# The compacted single-shard state must be what the file now holds.
curl -sf -X POST "$base/v1/smoke/reload" >/dev/null
curl -sf "$base/v1/indexes" | jq -e '(.indexes[] | select(.name=="smoke") | .stats.shards) == 1' >/dev/null \
  || { echo "smoke: compacted shard set not persisted" >&2; exit 1; }
echo "ok POST /v1/smoke/compact?full=true (merged $shards_before shards into 1, counts stable)"

echo "== graceful shutdown (WAL daemon)"
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: cinctd -wal did not exit on SIGTERM" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" = 0 ] || { echo "smoke: cinctd -wal exited with $rc" >&2; exit 1; }
daemon_pid=""

addr="127.0.0.1:18136"
base="http://$addr"
echo "== restarting cinctd with -rate-limit on $addr (traffic-management leg)"
"$bindir/cinctd" -data "$datadir" -addr "$addr" -rate-limit 5 -rate-burst 5 &
daemon_pid=$!
for i in $(seq 1 50); do
  if curl -sf -H 'X-Client-ID: probe' "$base/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: cinctd -rate-limit exited before becoming ready" >&2; exit 1
  fi
  sleep 0.2
done

# A client flooding past its 5-token bucket must see 429 with an
# integral Retry-After; a different client id keeps its own budget.
got429=0
retry_after=""
for i in $(seq 1 20); do
  code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Client-ID: flood' \
    "$base/v1/smoke/count?path=$path")
  if [ "$code" = 429 ]; then
    got429=1
    retry_after=$(curl -s -o /dev/null -D - -H 'X-Client-ID: flood' \
      "$base/v1/smoke/count?path=$path" \
      | awk 'tolower($1) == "retry-after:" {gsub(/\r/, ""); print $2}')
    break
  fi
done
[ "$got429" = 1 ] || { echo "smoke: flood of 20 requests never got a 429" >&2; exit 1; }
case "$retry_after" in
  ''|*[!0-9]*) echo "smoke: 429 Retry-After not an integer: '$retry_after'" >&2; exit 1 ;;
esac
[ "$retry_after" -ge 1 ] || { echo "smoke: 429 Retry-After $retry_after, want >= 1" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Client-ID: calm' \
  "$base/v1/smoke/count?path=$path")
[ "$code" = 200 ] || { echo "smoke: fresh client id got $code, want 200" >&2; exit 1; }
curl -sf -H 'X-Client-ID: probe' "$base/metrics" \
  | grep -q '^cinct_http_requests_total{code="429"}' \
  || { echo "smoke: 429s not visible in /metrics" >&2; exit 1; }
echo "ok 429 + Retry-After $retry_after for flooding client, fresh client unaffected"

echo "== graceful shutdown (rate-limit daemon)"
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: cinctd -rate-limit did not exit on SIGTERM" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" = 0 ] || { echo "smoke: cinctd -rate-limit exited with $rc" >&2; exit 1; }
daemon_pid=""

echo "== raw-GPS ingestion + standing queries"
# A synthetic road network, a temporal index whose corpus lives on it,
# and a daemon with the network attached for map-matched ingest.
gpsdir="$workdir/gpsdata"
mkdir -p "$gpsdir"
"$bindir/cinct" roadnet-gen -out "$workdir/net.road" -w 8 -h 8 -seed 7
"$bindir/cinct" gps-simulate -roadnet "$workdir/net.road" -out "$workdir/traces.ndjson" \
  -truth "$workdir/truth.txt" -n 4 -len 10 -noise 0.03 -start 50000 -dt 10 -seed 5
# The ground-truth walks double as the base corpus (with synthetic
# non-decreasing timestamps), so ingested IDs start at 4.
awk '{ line=""; for (i=1;i<=NF;i++) line = line (i>1?" ":"") (NR*1000 + i*10); print line }' \
  "$workdir/truth.txt" > "$workdir/truth-times.txt"
"$bindir/cinct" build-temporal -in "$workdir/truth.txt" -times "$workdir/truth-times.txt" \
  -index "$gpsdir/groads.tcinct"

addr="127.0.0.1:18137"
base="http://$addr"
echo "== starting cinctd -roadnet on $addr (gps leg)"
"$bindir/cinctd" -data "$gpsdir" -addr "$addr" -roadnet "groads=$workdir/net.road" &
daemon_pid=$!
for i in $(seq 1 50); do
  if curl -sf "$base/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: cinctd -roadnet exited before becoming ready" >&2; exit 1
  fi
  sleep 0.2
done

# A standing query on the first walk's opening bigram, registered and
# consuming over SSE before anything is ingested.
subpath=$(awk 'NR==1{print $1" "$2}' "$workdir/truth.txt")
"$bindir/cinct" subscribe -remote "$base" -name groads -path "$subpath" \
  > "$workdir/notify.ndjson" 2> "$workdir/subscribe.log" &
sub_pid=$!
for i in $(seq 1 50); do
  if grep -q 'subscribed:' "$workdir/subscribe.log" 2>/dev/null; then break; fi
  if ! kill -0 "$sub_pid" 2>/dev/null; then
    echo "smoke: cinct subscribe exited early: $(cat "$workdir/subscribe.log")" >&2; exit 1
  fi
  sleep 0.2
done

# Ingest the noisy traces: every one must map-match and append.
"$bindir/cinct" gps-ingest -remote "$base" -name groads -in "$workdir/traces.ndjson" \
  | grep 'ingested 4/4' >/dev/null \
  || { echo "smoke: gps-ingest did not accept all 4 traces" >&2; exit 1; }

# The matched trajectory is immediately queryable and reconstructs to
# exactly the ground-truth walk the trace was simulated along.
"$bindir/cinct" show -remote "$base" -name groads -traj 4 > "$workdir/matched.txt"
diff <(head -1 "$workdir/truth.txt") "$workdir/matched.txt" \
  || { echo "smoke: matched trajectory differs from ground truth" >&2; exit 1; }
gcount=$(curl -sf "$base/v1/groads/count?path=${subpath// /,}" | jq .count)
[ "$gcount" -ge 2 ] || { echo "smoke: ingested row not queryable (count $gcount)" >&2; exit 1; }
echo "ok gps-ingest (matched path == ground truth, queryable)"

# The standing query saw the append: at least one SSE push naming the
# index, a trajectory in the ingested range, and its entry timestamp.
for i in $(seq 1 50); do
  if [ -s "$workdir/notify.ndjson" ]; then break; fi
  sleep 0.2
done
[ -s "$workdir/notify.ndjson" ] || { echo "smoke: no SSE notification arrived" >&2; exit 1; }
head -1 "$workdir/notify.ndjson" | jq -e \
  '.index == "groads" and .trajectory >= 4 and (.enteredAt | type) == "number"' >/dev/null \
  || { echo "smoke: SSE notification drift: $(head -1 "$workdir/notify.ndjson")" >&2; exit 1; }
kill -INT "$sub_pid" 2>/dev/null || true
wait "$sub_pid" 2>/dev/null || true
echo "ok standing query received SSE push: $(head -1 "$workdir/notify.ndjson")"

# The long-poll fallback drains nothing new on a fresh subscription but
# answers cleanly, and cancel removes it.
subjson=$(curl -sf -X POST -H 'Content-Type: application/json' \
  -d "{\"path\":[${subpath// /, }]}" "$base/v1/groads/subscribe")
echo "$subjson" | jq -e '.index == "groads" and (.subscription | length) > 0' >/dev/null \
  || { echo "smoke: subscribe response drift: $subjson" >&2; exit 1; }
subid=$(echo "$subjson" | jq -r .subscription)
curl -sf "$base/v1/groads/subscriptions/$subid/poll?wait=0" \
  | jq -e '.notifications == [] and .closed == false' >/dev/null \
  || { echo "smoke: fresh-subscription poll drift" >&2; exit 1; }
curl -sf -X DELETE "$base/v1/groads/subscriptions/$subid" \
  | jq -e '.cancelled == true' >/dev/null \
  || { echo "smoke: cancel drift" >&2; exit 1; }
status=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/groads/subscriptions/$subid/poll?wait=0")
[ "$status" = 404 ] || { echo "smoke: poll after cancel returned $status, want 404" >&2; exit 1; }
echo "ok subscribe/poll/cancel lifecycle over HTTP"

echo "== graceful shutdown (gps daemon)"
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: cinctd -roadnet did not exit on SIGTERM" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" = 0 ] || { echo "smoke: cinctd -roadnet exited with $rc" >&2; exit 1; }
daemon_pid=""

echo "== cluster mode (two daemons, scatter-gather)"
# Two nodes over the same index files: answers through either node must
# be byte-identical to a single-node daemon, and killing one peer must
# turn into a typed partial failure (502 + X-CiNCT-Partial), never a
# silently truncated result set.
addrA="127.0.0.1:18138"
addrB="127.0.0.1:18139"
baseA="http://$addrA"
baseB="http://$addrB"
"$bindir/cinctd" -data "$datadir" -addr "$addrA" -advertise "$baseA" \
  -peer "$baseB" -cluster-slot 16 &
daemon_pid=$!
"$bindir/cinctd" -data "$datadir" -addr "$addrB" -advertise "$baseB" \
  -peer "$baseA" -cluster-slot 16 &
daemon_b_pid=$!
for i in $(seq 1 50); do
  if curl -sf "$baseA/v1/indexes" >/dev/null 2>&1 \
    && curl -sf "$baseB/v1/indexes" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$daemon_pid" 2>/dev/null || ! kill -0 "$daemon_b_pid" 2>/dev/null; then
    echo "smoke: a cluster daemon exited before becoming ready" >&2; exit 1
  fi
  sleep 0.2
done

# Both members report the same ring fingerprint and see each other.
fpA=$(curl -sf "$baseA/v1/indexes" | jq -r .cluster.fingerprint)
fpB=$(curl -sf "$baseB/v1/indexes" | jq -r .cluster.fingerprint)
[ -n "$fpA" ] && [ "$fpA" = "$fpB" ] || {
  echo "smoke: ring fingerprints diverge ($fpA vs $fpB)" >&2; exit 1
}
curl -sf "$baseA/v1/indexes" | jq -e \
  ".cluster.self == \"$baseA\" and .cluster.slotTrajectories == 16 and (.cluster.peers | length) == 1 and .cluster.peers[0].addr == \"$baseB\"" >/dev/null \
  || { echo "smoke: cluster block drift on node A" >&2; exit 1; }
echo "ok both nodes agree on ring $fpA"

# Scatter-gather answers from either coordinator must equal the
# single-node stream over the same files (the first daemon's unpaged
# run is long gone, so re-derive the oracle from a fresh local run).
oracle="$workdir/cluster-oracle.ndjson"
"$bindir/cinctd" -data "$datadir" -addr "127.0.0.1:18140" &
oracle_pid=$!
for i in $(seq 1 50); do
  if curl -sf "http://127.0.0.1:18140/v1/indexes" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf -X POST -H 'Content-Type: application/json' -d "{\"path\":$jpath}" \
  "http://127.0.0.1:18140/v1/smoke/query" | jq -c 'select(has("done") | not)' > "$oracle"
kill -TERM "$oracle_pid"; wait "$oracle_pid" 2>/dev/null || true
oracle_pid=""
for node in "$baseA" "$baseB"; do
  curl -sf -X POST -H 'Content-Type: application/json' -d "{\"path\":$jpath}" \
    "$node/v1/smoke/query" | jq -c 'select(has("done") | not)' > "$workdir/cluster-got.ndjson"
  cmp -s "$oracle" "$workdir/cluster-got.ndjson" || {
    echo "smoke: scatter-gather via $node differs from single-node" >&2
    diff "$oracle" "$workdir/cluster-got.ndjson" >&2 || true
    exit 1
  }
done
echo "ok scatter-gather == single-node through both coordinators"

# Cursor pagination across the cluster: pages of 2 through node A must
# concatenate to the oracle stream too.
: > "$workdir/cluster-paged.ndjson"
cursor=""
pages=0
while :; do
  if [ -n "$cursor" ]; then
    body="{\"path\":$jpath,\"limit\":2,\"cursor\":\"$cursor\"}"
  else
    body="{\"path\":$jpath,\"limit\":2}"
  fi
  page=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "$baseA/v1/smoke/query")
  echo "$page" | jq -c 'select(has("done") | not)' >> "$workdir/cluster-paged.ndjson"
  cursor=$(echo "$page" | jq -r 'select(.done == true).cursor // empty')
  pages=$((pages + 1))
  [ -z "$cursor" ] && break
  [ "$pages" -gt 200 ] && { echo "smoke: cluster cursor chain does not terminate" >&2; exit 1; }
done
cmp -s "$oracle" "$workdir/cluster-paged.ndjson" || {
  echo "smoke: cluster cursor pages differ from single-node stream" >&2; exit 1
}
[ "$pages" -ge 2 ] || { echo "smoke: cluster pagination made only $pages page(s)" >&2; exit 1; }
echo "ok cluster cursor pagination ($pages pages == single-node)"

# Kill node B: a scatter query through A must fail typed — 502 with the
# dead peer named in X-CiNCT-Partial — not return a truncated stream.
kill -9 "$daemon_b_pid"
wait "$daemon_b_pid" 2>/dev/null || true
daemon_b_pid=""
hdrs=$(curl -s -D - -o /dev/null -X POST -H 'Content-Type: application/json' \
  -d "{\"path\":$jpath}" "$baseA/v1/smoke/query")
echo "$hdrs" | head -1 | grep -q ' 502 ' \
  || { echo "smoke: dead-peer query status not 502: $(echo "$hdrs" | head -1)" >&2; exit 1; }
echo "$hdrs" | grep -i "^x-cinct-partial:" | grep -q "$baseB" \
  || { echo "smoke: 502 missing X-CiNCT-Partial naming $baseB" >&2; exit 1; }
# Count stays local (every node holds the full corpus) so it still works.
qc=$(curl -sf -X POST -H 'Content-Type: application/json' \
  -d "{\"path\":$jpath,\"kind\":\"count\"}" "$baseA/v1/smoke/query" \
  | jq -r 'select(.done == true).count')
[ "$qc" = "$legacy" ] || { echo "smoke: local count after peer death: $qc, want $legacy" >&2; exit 1; }
echo "ok dead peer => 502 + X-CiNCT-Partial, local counts unaffected"

echo "== graceful shutdown (cluster daemon A)"
kill -TERM "$daemon_pid"
for i in $(seq 1 50); do
  if ! kill -0 "$daemon_pid" 2>/dev/null; then break; fi
  sleep 0.2
done
if kill -0 "$daemon_pid" 2>/dev/null; then
  echo "smoke: cluster cinctd did not exit on SIGTERM" >&2; exit 1
fi
wait "$daemon_pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" = 0 ] || { echo "smoke: cluster cinctd exited with $rc" >&2; exit 1; }
daemon_pid=""

echo "== CLI compaction of a local file"
"$bindir/cinct" compact -index "$datadir/tsmoke.tcinct" | grep 'down to 1' >/dev/null \
  || { echo "smoke: cinct compact -index failed" >&2; exit 1; }
"$bindir/cinct" count-interval -index "$datadir/tsmoke.tcinct" -path "${mpath//,/ }" \
  | grep '1 occurrences in' >/dev/null \
  || { echo "smoke: compacted local file lost the ingested row" >&2; exit 1; }
echo "ok cinct compact -index (merged to one shard, answers intact)"

echo "smoke: all checks passed"
