// Quickstart: build a CiNCT index over a handful of trajectories and
// run the three core operations — count, find, reconstruct.
package main

import (
	"fmt"
	"log"

	"cinct"
)

func main() {
	// Trajectories are sequences of road edge IDs in travel order.
	// These are the paper's four example NCTs (Fig. 1a) with edges
	// A..F numbered 0..5.
	const (
		A, B, C, D, E, F = 0, 1, 2, 3, 4, 5
	)
	trajs := [][]uint32{
		{A, B, E, F}, // T1
		{A, B, C},    // T2
		{B, C},       // T3
		{A, D},       // T4
	}

	ix, err := cinct.Build(trajs, nil)
	if err != nil {
		log.Fatal(err)
	}

	// How many trajectories drove A then B?
	fmt.Println("Count(A→B)   =", ix.Count([]uint32{A, B})) // 2 (T1, T2)
	fmt.Println("Count(B→C)   =", ix.Count([]uint32{B, C})) // 2 (T2, T3)
	fmt.Println("Count(B→A)   =", ix.Count([]uint32{B, A})) // 0 (direction!)

	// Which ones, and where in the trajectory?
	hits, err := ix.Find([]uint32{A, B}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("A→B found in trajectory %d at offset %d\n", h.Trajectory, h.Offset)
	}

	// The index is a self-index: the original trajectories can be
	// reconstructed from the compressed form alone.
	t1, err := ix.Trajectory(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trajectory 0 =", t1)

	// And any sub-path can be decompressed without touching the rest.
	sub, err := ix.SubPath(0, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("edges [1,3) of trajectory 0 =", sub)

	s := ix.Stats()
	fmt.Printf("index: %d trajectories, %d distinct edges, %.1f bits/symbol\n",
		s.Trajectories, s.Edges, s.BitsPerSymbol)
}
