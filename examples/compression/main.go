// Compression bake-off: a Table-IV-style comparison of CiNCT against
// the baseline compressors on one synthetic corpus, illustrating the
// trade-off the paper targets — general-purpose compressors shrink
// the data but cannot answer path queries; CiNCT compresses *and*
// stays queryable.
package main

import (
	"fmt"
	"log"

	"cinct"
	"cinct/internal/bwzip"
	"cinct/internal/mel"
	"cinct/internal/press"
	"cinct/internal/repair"
	"cinct/internal/trajgen"
	"cinct/internal/trajstr"
)

func main() {
	cfg := trajgen.Config{GridW: 14, GridH: 14, NumTrajs: 6000, MeanLen: 40, Seed: 5}
	d := trajgen.Singapore2(cfg)
	corpus, err := trajstr.New(d.Trajs)
	if err != nil {
		log.Fatal(err)
	}
	var symbols int64
	for _, tr := range d.Trajs {
		symbols += int64(len(tr))
	}
	raw := symbols * 32
	fmt.Printf("corpus: %d trips, %d edge traversals, raw 32-bit size %d KiB\n\n",
		len(d.Trajs), symbols, raw/8/1024)

	type row struct {
		name      string
		bits      int64
		queryable string
	}
	var rows []row

	ix, err := cinct.Build(d.Trajs, nil)
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	rows = append(rows, row{"CiNCT", int64(s.WaveletBits + s.GraphBits + s.CArrayBits),
		"count+find+extract"})

	l := mel.Build(d.Graph, d.Trajs)
	rows = append(rows, row{"MEL+Huffman", l.CompressedSizeBits(d.Trajs), "no"})

	rp := repair.Compress(corpus.Text, corpus.Sigma)
	rows = append(rows, row{"Re-Pair", rp.SizeBits(), "no"})

	pr := press.Compress(d.Graph, d.Trajs)
	rows = append(rows, row{"PRESS*", pr.SizeBits(), "no"})

	bz := bwzip.Compress(corpus.Text, corpus.Sigma)
	rows = append(rows, row{"bwzip (global)", bz.SizeBits(), "no"})

	fmt.Printf("%-16s %10s %8s  %s\n", "compressor", "KiB", "ratio", "queries")
	for _, r := range rows {
		fmt.Printf("%-16s %10.1f %7.1fx  %s\n",
			r.name, float64(r.bits)/8/1024, float64(raw)/float64(r.bits), r.queryable)
	}

	// Prove the "queryable" column: answer a path query straight from
	// the compressed index.
	q := d.Trajs[0][:4]
	fmt.Printf("\npath query %v on the compressed index: %d occurrences\n", q, ix.Count(q))
}
