// Fleet analysis: the workload the paper's introduction motivates —
// a city operator holds millions of taxi trajectories and asks
// corridor questions: "how much traffic traversed this sequence of
// road segments, and which trips were they?"
//
// This example generates a synthetic fleet on a city grid, indexes it,
// and then answers corridor queries of growing length, showing how the
// match count narrows while query time stays microsecond-scale.
package main

import (
	"fmt"
	"log"
	"time"

	"cinct"
	"cinct/internal/trajgen"
)

func main() {
	// A fleet of 20k trips on a 26x26-intersection downtown grid.
	cfg := trajgen.Config{GridW: 26, GridH: 26, NumTrajs: 20000, MeanLen: 50, Seed: 7}
	fmt.Println("generating fleet (turn-biased city traffic)...")
	fleet := trajgen.Singapore2(cfg)

	t0 := time.Now()
	ix, err := cinct.Build(fleet.Trajs, nil)
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	fmt.Printf("indexed %d trips (%d road-segment traversals) in %v\n",
		s.Trajectories, s.TextLen, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("resident size: %.2f bits per traversal (raw edge IDs: 32)\n\n",
		s.BitsPerSymbol)

	// Take one busy trip as the corridor source and extend the queried
	// corridor one segment at a time.
	corridor := fleet.Trajs[0]
	if len(corridor) > 12 {
		corridor = corridor[:12]
	}
	fmt.Println("corridor drill-down (same start, growing length):")
	for l := 2; l <= len(corridor); l += 2 {
		q := corridor[:l]
		t1 := time.Now()
		n := ix.Count(q)
		dt := time.Since(t1)
		fmt.Printf("  len %2d: %6d trips traverse it   (%8v)\n", l, n, dt)
	}

	// Full report for the length-6 corridor: which trips, and at what
	// point of their route they entered it.
	q := corridor[:6]
	hits, err := ix.Find(q, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst %d trips through the 6-segment corridor:\n", len(hits))
	for _, h := range hits {
		total := ix.TrajectoryLen(h.Trajectory)
		fmt.Printf("  trip %5d entered at segment %3d of its %3d-segment route\n",
			h.Trajectory, h.Offset, total)
	}

	// Verify one report by decompressing just that slice of the trip.
	if len(hits) > 0 {
		h := hits[0]
		sub, err := ix.SubPath(h.Trajectory, h.Offset, h.Offset+len(q))
		if err != nil {
			log.Fatal(err)
		}
		match := true
		for i := range q {
			if sub[i] != q[i] {
				match = false
			}
		}
		fmt.Printf("\nspot-check: decompressed slice of trip %d matches corridor: %v\n",
			hits[0].Trajectory, match)
	}
}
