// Map-matching pipeline: the full journey of the paper's Roma dataset
// — raw GPS points → HMM map matching → network-constrained
// trajectories → compressed index — implemented end to end.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cinct"
	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

func main() {
	g := roadnet.Grid(16, 16, 3)
	rng := rand.New(rand.NewSource(42))
	fmt.Printf("road network: %d intersections, %d directed segments\n",
		g.NumNodes(), g.NumEdges())

	// Drive 300 ground-truth vehicles and record noisy GPS for each.
	var matched [][]uint32
	failures := 0
	for len(matched) < 300 {
		truth := drive(g, rng, 25)
		gps := mapmatch.SimulateTrace(g, truth, 0.12, rng)
		path, ok := mapmatch.Match(g, gps, mapmatch.DefaultConfig())
		if !ok {
			failures++
			continue
		}
		tr := make([]uint32, len(path))
		for i, e := range path {
			tr[i] = uint32(e)
		}
		matched = append(matched, tr)
	}
	fmt.Printf("map-matched 300 GPS traces (%d rejected by the matcher)\n", failures)

	ix, err := cinct.Build(matched, nil)
	if err != nil {
		log.Fatal(err)
	}
	s := ix.Stats()
	fmt.Printf("indexed: %.2f bits/symbol, ET-graph d̄ = %.2f (max out-degree %d)\n",
		s.BitsPerSymbol, s.AvgOutDegree, s.MaxLabel)

	// Query: the most traveled 3-segment path out of vehicle 0's route.
	route, err := ix.Trajectory(0)
	if err != nil {
		log.Fatal(err)
	}
	best, bestCount := route[:3], 0
	for i := 0; i+3 <= len(route); i++ {
		if n := ix.Count(route[i : i+3]); n > bestCount {
			best, bestCount = route[i:i+3], n
		}
	}
	fmt.Printf("hottest 3-segment stretch of vehicle 0's route: %v — %d vehicles\n",
		best, bestCount)
}

// drive produces a U-turn-free random route.
func drive(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	route := []roadnet.EdgeID{cur}
	for len(route) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			break
		}
		cur = choices[rng.Intn(len(choices))]
		route = append(route, cur)
	}
	return route
}
