package cinct

import (
	"errors"
	"fmt"

	"cinct/internal/tempo"
	"cinct/internal/trajstr"
)

// errCompactRaced reports a compaction whose victim shards were
// replaced between snapshot and swap. It cannot happen while
// compactions are serialized through Writer.Compact (seals only append
// shards), so surfacing it loudly beats silently dropping data.
var errCompactRaced = errors.New("cinct: compaction raced a shard-set change")

// CompactionPolicy tunes tiered compaction: when Writer.Compact (or
// the serving engine's background compactor) decides a run of sealed
// shards should be merged back into one CiNCT-compressed shard.
//
// Shards form tiers by size: each seal emits one roughly
// threshold-sized L0 shard, MinShards of those merge into one L1
// shard, MinShards L1 shards merge into one L2 shard, and so on —
// the classic tiered-LSM shape that bounds live shard count at
// O(MinShards · log(rows)) while every trajectory is rewritten only
// O(log(rows)) times. The zero value selects the defaults.
type CompactionPolicy struct {
	// MinShards is the tier fan-out: a contiguous run of at least this
	// many similar-sized shards is merged into one. 0 means 4; values
	// below 2 are treated as 2.
	MinShards int
	// MaxShards caps how many shards one compaction round rewrites,
	// bounding the memory and CPU of a single merge. 0 means 16.
	MaxShards int
	// TierRatio is the size coherence bound: shards belong to the same
	// tier while the largest is at most TierRatio times the smallest,
	// and a shard dwarfed by more than TierRatio by its newer neighbor
	// is absorbed into it. 0 means 8.
	TierRatio int
}

// maxTierRatio bounds TierRatio so size×ratio arithmetic cannot
// overflow (shard sizes are text lengths, well under 2^40).
const maxTierRatio = 1 << 20

// FullCompaction is the policy that merges every sealed shard into a
// single one in one round — the best-compression end state for an
// index that has stopped ingesting (one shared wavelet/ET-graph model
// instead of N), used by `cinct compact` and the engine's full mode.
var FullCompaction = CompactionPolicy{MinShards: 2, MaxShards: 1 << 20, TierRatio: maxTierRatio}

func (p CompactionPolicy) withDefaults() CompactionPolicy {
	if p.MinShards == 0 {
		p.MinShards = 4
	}
	if p.MinShards < 2 {
		p.MinShards = 2
	}
	if p.MaxShards <= 0 {
		p.MaxShards = 16
	}
	if p.MaxShards < p.MinShards {
		p.MaxShards = p.MinShards
	}
	if p.TierRatio <= 0 {
		p.TierRatio = 8
	}
	if p.TierRatio > maxTierRatio {
		p.TierRatio = maxTierRatio
	}
	return p
}

// pickCompaction selects the victim range [lo, hi) over the per-shard
// sizes (oldest first), or an empty range when the shard set is
// already within policy. Two triggers, newest-first because fresh
// seals are where fan-out accumulates:
//
//  1. Tier: the rightmost run of >= MinShards shards whose sizes stay
//     within TierRatio of each other, truncated to its newest
//     MaxShards members.
//  2. Dwarf absorption: the rightmost shard dwarfed (by > TierRatio)
//     by its *newer* neighbor is merged into it. The inverse case — a
//     fresh tiny shard after a big merged one — deliberately does not
//     trigger: absorbing every new seal into the big neighbor would
//     rewrite it per seal (unbounded write amplification), while the
//     tier rule batches those seals and merges them geometrically.
func pickCompaction(sizes []int, p CompactionPolicy) (lo, hi int) {
	p = p.withDefaults()
	n := len(sizes)
	for end := n; end >= p.MinShards; {
		start := end - 1
		mn, mx := sizes[start], sizes[start]
		for start > 0 {
			s := sizes[start-1]
			nm, nx := mn, mx
			if s < nm {
				nm = s
			}
			if s > nx {
				nx = s
			}
			if nm < 1 {
				nm = 1
			}
			if nx > nm*p.TierRatio {
				break
			}
			mn, mx = nm, nx
			start--
		}
		if end-start >= p.MinShards {
			if end-start > p.MaxShards {
				start = end - p.MaxShards
			}
			return start, end
		}
		end = start
	}
	for i := n - 2; i >= 0; i-- {
		lo := sizes[i]
		if lo < 1 {
			lo = 1
		}
		if lo*p.TierRatio < sizes[i+1] {
			return i, i + 2
		}
	}
	return 0, 0
}

// shardSizes returns the per-shard trajectory-string lengths, the size
// measure the compaction policy tiers on.
func shardSizes(si *ShardedIndex) []int {
	sizes := make([]int, len(si.shards))
	for i, s := range si.shards {
		sizes[i] = s.Len()
	}
	return sizes
}

// spliced is the one audited copy-on-write shard-set primitive: it
// returns a new ShardedIndex with shards[lo:hi) replaced by repl
// (lo == hi == len(shards) appends instead). Both mutations of the
// shard set — a seal appending one shard, a compaction substituting a
// merged shard for its victims — go through here. si is unchanged, so
// in-flight queries against the old value stay correct; a replacement
// must hold exactly the victims' trajectory count, so every global ID
// (and therefore every outstanding cursor) keeps its meaning.
func (si *ShardedIndex) spliced(lo, hi int, repl *Index) (*ShardedIndex, error) {
	switch {
	case lo < 0 || hi > len(si.shards) || lo > hi:
		return nil, fmt.Errorf("cinct: splice [%d,%d) outside shard range [0,%d]", lo, hi, len(si.shards))
	case lo == hi && lo != len(si.shards):
		return nil, fmt.Errorf("cinct: splice can only insert at the end of the shard list")
	case repl.hasLoc != si.hasLoc:
		return nil, fmt.Errorf("%w: existing shards and new shard disagree on locate support", ErrNotAppendable)
	}
	if lo < hi {
		if got, want := repl.NumTrajectories(), si.bounds[hi]-si.bounds[lo]; got != want {
			return nil, fmt.Errorf("cinct: splice replacement holds %d trajectories where victims held %d", got, want)
		}
	}
	shards := make([]*Index, 0, len(si.shards)-(hi-lo)+1)
	shards = append(shards, si.shards[:lo]...)
	shards = append(shards, repl)
	shards = append(shards, si.shards[hi:]...)
	// Replacements preserve the victims' row count and appends extend
	// past the old end, so every surviving bound is reusable verbatim.
	bounds := make([]int, 0, len(shards)+1)
	bounds = append(bounds, si.bounds[:lo+1]...)
	bounds = append(bounds, bounds[lo]+repl.NumTrajectories())
	bounds = append(bounds, si.bounds[hi+1:]...)
	// The distinct-edge union is recomputed over all shards: the count
	// alone cannot be merged incrementally (overlap with the new shard
	// is unknown), and the map build is dwarfed by the compression
	// build that preceded every call here.
	corpora := make([]*trajstr.Corpus, len(shards))
	for i, s := range shards {
		corpora[i] = s.corpus
	}
	return &ShardedIndex{
		shards: shards,
		bounds: bounds,
		edges:  trajstr.CountDistinctEdges(corpora),
		hasLoc: si.hasLoc,
	}, nil
}

// spliced mirrors ShardedIndex.spliced for a temporal index, keeping
// the per-shard timestamp stores aligned with the spatial shard list.
// The legacy layout (sharded spatial index, single global store)
// cannot be spliced: its store is indexed by global IDs and cannot
// absorb a per-shard column range.
func (t *TemporalIndex) spliced(lo, hi int, shard *Index, store *tempo.Store) (*TemporalIndex, error) {
	if t.Index.sharded != nil && !t.aligned() {
		return nil, fmt.Errorf("%w: legacy single-store temporal layout", ErrNotAppendable)
	}
	nsi, err := t.Index.asSharded().spliced(lo, hi, shard)
	if err != nil {
		return nil, err
	}
	if store.NumTrajectories() != shard.NumTrajectories() {
		return nil, fmt.Errorf("cinct: %d timestamp columns for a %d-trajectory shard",
			store.NumTrajectories(), shard.NumTrajectories())
	}
	stores := make([]*tempo.Store, 0, len(t.stores)-(hi-lo)+1)
	stores = append(stores, t.stores[:lo]...)
	stores = append(stores, store)
	stores = append(stores, t.stores[hi:]...)
	return &TemporalIndex{Index: &Index{sharded: nsi, hasLoc: nsi.hasLoc}, stores: stores}, nil
}

// mergeShards decodes every trajectory owned by shards[lo:hi) — in
// global-ID order, so the merged shard assigns each row the same
// global ID its victim shard did — and rebuilds them as one
// CiNCT-compressed shard sharing a single wavelet/ET-graph model.
func (si *ShardedIndex) mergeShards(lo, hi int, opts *Options) (*Index, error) {
	trajs := make([][]uint32, 0, si.bounds[hi]-si.bounds[lo])
	for s := lo; s < hi; s++ {
		ix := si.shards[s]
		for k, n := 0, ix.NumTrajectories(); k < n; k++ {
			tr, err := ix.Trajectory(k)
			if err != nil {
				return nil, fmt.Errorf("cinct: compaction decoding shard %d row %d: %w", s, k, err)
			}
			trajs = append(trajs, tr)
		}
	}
	return sealShard(trajs, opts)
}

// mergeStores decodes the timestamp columns of stores[lo:hi) into one
// combined store, aligned with mergeShards' row order.
func mergeStores(stores []*tempo.Store, lo, hi int) *tempo.Store {
	rows := 0
	for s := lo; s < hi; s++ {
		rows += stores[s].NumTrajectories()
	}
	cols := make([][]int64, 0, rows)
	for s := lo; s < hi; s++ {
		st := stores[s]
		for k, n := 0, st.NumTrajectories(); k < n; k++ {
			cols = append(cols, st.Column(k))
		}
	}
	return tempo.New(cols)
}

// CompactRange merges shards [lo, hi) into one CiNCT-compressed shard
// and returns the new index; si is unchanged (copy-on-write, like
// AppendSealed). Global trajectory IDs are preserved exactly: the
// victims form a contiguous ID range and the merged shard assigns the
// same IDs in the same order, so query answers — and outstanding
// (Trajectory, Offset) cursors — are identical before and after.
// opts nil means DefaultOptions.
func (si *ShardedIndex) CompactRange(lo, hi int, opts *Options) (*ShardedIndex, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if lo < 0 || hi > len(si.shards) || hi-lo < 2 {
		return nil, fmt.Errorf("cinct: CompactRange [%d,%d) needs at least two shards in [0,%d]", lo, hi, len(si.shards))
	}
	merged, err := si.mergeShards(lo, hi, opts)
	if err != nil {
		return nil, err
	}
	return si.spliced(lo, hi, merged)
}

// CompactRange merges shards [lo, hi) of a temporal index — spatial
// shards and their timestamp stores together. Semantics mirror
// ShardedIndex.CompactRange.
func (t *TemporalIndex) CompactRange(lo, hi int, opts *Options) (*TemporalIndex, error) {
	if opts == nil {
		opts = DefaultOptions()
	}
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	if opts.SampleRate == 0 {
		return nil, fmt.Errorf("cinct: temporal index requires SampleRate > 0")
	}
	if t.Index.sharded != nil && !t.aligned() {
		return nil, fmt.Errorf("%w: legacy single-store temporal layout", ErrNotAppendable)
	}
	si := t.Index.asSharded()
	if lo < 0 || hi > len(si.shards) || hi-lo < 2 {
		return nil, fmt.Errorf("cinct: CompactRange [%d,%d) needs at least two shards in [0,%d]", lo, hi, len(si.shards))
	}
	merged, err := si.mergeShards(lo, hi, opts)
	if err != nil {
		return nil, err
	}
	return t.spliced(lo, hi, merged, mergeStores(t.stores, lo, hi))
}

// CompactionResult reports one Writer.Compact round.
type CompactionResult struct {
	// Merged is the number of victim shards rewritten (0 when the
	// shard set was already within policy).
	Merged int
	// Rows is the number of trajectories re-compressed.
	Rows int
	// Lo, Hi bound the victim range within the sealed shard list.
	Lo, Hi int
	// ShardsBefore, ShardsAfter count sealed shards around the round.
	ShardsBefore, ShardsAfter int
}

// Compact runs one round of tiered compaction over the sealed shards:
// pick victims per policy, decode their trajectories (and timestamp
// columns), rebuild them as one CiNCT-compressed shard, and swap the
// spliced shard set in under the writer's generation lock. Returns a
// zero-Merged result when the shard set is already within policy.
//
// Appends, seals and searches proceed during the rebuild: like Seal,
// the expensive work runs against an immutable snapshot and only the
// final swap takes the write lock. Because the victims are a
// contiguous run of shards and the merged shard preserves their rows
// in global-ID order, the trajectory-ID space is untouched — in-flight
// Search iterators finish on the old shard set, and resumable cursors
// (which address by (Trajectory, Offset)) remain valid across the
// swap, exactly as they do across a seal. Call in a loop (until
// Merged == 0) to reach the policy's fixpoint, e.g. after a bulk load.
func (w *Writer) Compact(p CompactionPolicy) (CompactionResult, error) {
	// Serialized with other compactions (not seals): two concurrent
	// rounds could pick overlapping victims and splice each other's
	// work away.
	w.compactMu.Lock()
	defer w.compactMu.Unlock()
	w.mu.RLock()
	sealedIx, sealedT := w.sealed, w.temp
	w.mu.RUnlock()
	if sealedIx == nil {
		return CompactionResult{}, nil
	}
	snap := sealedIx.asSharded()
	res := CompactionResult{ShardsBefore: len(snap.shards), ShardsAfter: len(snap.shards)}
	lo, hi := pickCompaction(shardSizes(snap), p)
	if hi-lo < 2 {
		return res, nil
	}
	merged, err := snap.mergeShards(lo, hi, w.opts)
	if err != nil {
		return res, err
	}
	var store *tempo.Store
	if sealedT != nil {
		store = mergeStores(sealedT.stores, lo, hi)
	}
	w.mu.Lock()
	// Concurrent seals may have appended shards since the snapshot,
	// but shards [lo, hi) are still the victims: seals only ever
	// append, compactions are serialized above, and asSharded keeps
	// shard pointers stable across promotion. Verify anyway — a
	// silent mismatch here would corrupt the ID space.
	cur := w.sealed.asSharded()
	if len(cur.shards) < hi {
		w.mu.Unlock()
		return res, errCompactRaced
	}
	for i := lo; i < hi; i++ {
		if cur.shards[i] != snap.shards[i] {
			w.mu.Unlock()
			return res, errCompactRaced
		}
	}
	var newIx *Index
	var newT *TemporalIndex
	if w.temporal && w.temp != nil {
		newT, err = w.temp.spliced(lo, hi, merged, store)
		if err == nil {
			newIx = newT.Index
		}
	} else {
		var nsi *ShardedIndex
		nsi, err = cur.spliced(lo, hi, merged)
		if err == nil {
			newIx = &Index{sharded: nsi, hasLoc: nsi.hasLoc}
		}
	}
	if err != nil {
		w.mu.Unlock()
		return res, err
	}
	w.sealed, w.temp = newIx, newT
	w.gen++
	w.mu.Unlock()
	res.Merged = hi - lo
	res.Rows = merged.NumTrajectories()
	res.Lo, res.Hi = lo, hi
	res.ShardsAfter = res.ShardsBefore - res.Merged + 1
	return res, nil
}

// SealedShards returns the number of compressed shards in the sealed
// index — the fan-out every Search pays for, and the quantity
// compaction exists to bound.
func (w *Writer) SealedShards() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.sealed == nil {
		return 0
	}
	if w.sealed.sharded == nil {
		return 1
	}
	return len(w.sealed.sharded.shards)
}
