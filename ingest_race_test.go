package cinct

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentIngest hammers one temporal Writer with concurrent
// appenders, an explicit sealer, the background auto-sealer, a tiered
// compactor and many searchers under -race, then asserts the seal and
// compaction boundaries lost and duplicated nothing: every marker
// trajectory appended is found exactly once, and a cursor taken
// mid-churn resumes to a stream that concatenates without gaps or
// repeats.
func TestConcurrentIngest(t *testing.T) {
	marker := []uint32{91, 92, 93}
	w, err := NewTemporalWriter(WriterConfig{SealThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const (
		appenders   = 4
		perAppender = 150
	)
	ctx := context.Background()
	var appendWg, wg sync.WaitGroup
	errc := make(chan error, appenders+8)

	for g := 0; g < appenders; g++ {
		appendWg.Add(1)
		go func(g int) {
			defer appendWg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perAppender; i++ {
				tr := append(genTraj(rng), marker...)
				if _, err := w.Append(tr, genTimes(rng, len(tr))); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}

	stop := make(chan struct{})
	wg.Add(1)
	go func() { // explicit sealer racing the auto-sealer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Seal(); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // tiered compactor racing seals and searches
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Compact(CompactionPolicy{MinShards: 2, MaxShards: 4}); err != nil {
				errc <- err
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := 0
			for i := 0; i < 60; i++ {
				r, err := w.Search(ctx, Query{Path: marker, Kind: CountOnly})
				if err != nil {
					errc <- err
					return
				}
				n, err := r.Count()
				if err != nil {
					errc <- err
					return
				}
				// Appends only add marker hits; a count that shrinks
				// means a seal lost or double-counted rows.
				if n < prev {
					t.Errorf("marker count went backwards: %d after %d", n, prev)
					return
				}
				prev = n
				// Exercise the streaming + paging path too.
				pr, err := w.Search(ctx, Query{Path: marker, Kind: Occurrences, Limit: 10})
				if err != nil {
					errc <- err
					return
				}
				last := Match{Trajectory: -1, Offset: -1}
				for h, herr := range pr.All() {
					if herr != nil {
						errc <- herr
						return
					}
					if !matchLess(last, h.Match) {
						t.Errorf("stream out of canonical order: %v then %v", last, h.Match)
						return
					}
					last = h.Match
				}
				if id := w.NumTrajectories(); id > 0 {
					if _, err := w.Trajectory(id - 1); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}

	// Appenders finish on their own; then stop the sealer and wait for
	// the searchers.
	appendWg.Wait()
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce: one final seal, then the union must hold exactly every
	// appended marker trajectory once.
	if _, err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	r, err := w.Search(ctx, Query{Path: marker, Kind: Trajectories})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for h, herr := range r.All() {
		if herr != nil {
			t.Fatal(herr)
		}
		if seen[h.Trajectory] {
			t.Fatalf("trajectory %d yielded twice across the seal boundary", h.Trajectory)
		}
		seen[h.Trajectory] = true
	}
	if want := appenders * perAppender; len(seen) != want {
		t.Fatalf("found %d marker trajectories, appended %d (lost across seal)", len(seen), want)
	}
}
