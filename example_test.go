package cinct_test

import (
	"bytes"
	"fmt"
	"log"

	"cinct"
)

// The paper's running example (Fig. 1a): four trajectories over road
// segments A..F = 0..5.
func paperTrajectories() [][]uint32 {
	return [][]uint32{
		{0, 1, 4, 5}, // T1 = A B E F
		{0, 1, 2},    // T2 = A B C
		{1, 2},       // T3 = B C
		{0, 3},       // T4 = A D
	}
}

func ExampleBuild() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ix.NumTrajectories(), "trajectories over", ix.NumEdges(), "edges")
	// Output: 4 trajectories over 6 edges
}

func ExampleIndex_Count() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ix.Count([]uint32{0, 1})) // A→B: trips T1 and T2
	fmt.Println(ix.Count([]uint32{1, 0})) // B→A: never driven
	// Output:
	// 2
	// 0
}

func ExampleIndex_FindTrajectories() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := ix.FindTrajectories([]uint32{1, 2}, 0) // B→C
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [1 2]
}

func ExampleIndex_SubPath() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := ix.SubPath(0, 1, 3) // edges [1,3) of T1
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sub)
	// Output: [1 4]
}

func ExampleLoad() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := cinct.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(loaded.Count([]uint32{0, 1}))
	// Output: 2
}

func ExampleBuildTemporal() {
	trajs := paperTrajectories()
	times := [][]int64{
		{100, 160, 220, 280},
		{90, 150, 210},
		{400, 460},
		{100, 170},
	}
	ix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Who drove B→C between t=100 and t=300? Only T2 (entered B at 150);
	// T3 entered B at 400.
	hits, err := ix.FindInInterval([]uint32{1, 2}, 100, 300, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("trajectory %d entered at t=%d\n", h.Trajectory, h.EnteredAt)
	}
	// Output: trajectory 1 entered at t=150
}
