package cinct_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"cinct"
	"cinct/internal/engine"
	"cinct/internal/gps"
	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// The paper's running example (Fig. 1a): four trajectories over road
// segments A..F = 0..5.
func paperTrajectories() [][]uint32 {
	return [][]uint32{
		{0, 1, 4, 5}, // T1 = A B E F
		{0, 1, 2},    // T2 = A B C
		{1, 2},       // T3 = B C
		{0, 3},       // T4 = A D
	}
}

func ExampleBuild() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ix.NumTrajectories(), "trajectories over", ix.NumEdges(), "edges")
	// Output: 4 trajectories over 6 edges
}

func ExampleIndex_Count() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ix.Count([]uint32{0, 1})) // A→B: trips T1 and T2
	fmt.Println(ix.Count([]uint32{1, 0})) // B→A: never driven
	// Output:
	// 2
	// 0
}

func ExampleIndex_FindTrajectories() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ids, err := ix.FindTrajectories([]uint32{1, 2}, 0) // B→C
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [1 2]
}

func ExampleIndex_SubPath() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := ix.SubPath(0, 1, 3) // edges [1,3) of T1
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sub)
	// Output: [1 4]
}

func ExampleLoad() {
	ix, err := cinct.Build(paperTrajectories(), nil)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := cinct.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(loaded.Count([]uint32{0, 1}))
	// Output: 2
}

// Example_search shows the unified Query API: one descriptor for
// every retrieval, executed by Search as a lazy, cursor-resumable
// stream. The same descriptor shape drives the engine, the
// /v1/{index}/query endpoint, and the HTTP client.
func Example_search() {
	trajs := paperTrajectories()
	times := [][]int64{
		{100, 160, 220, 280},
		{90, 150, 210},
		{400, 460},
		{100, 170},
	}
	ix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Count A→B occurrences (the legacy Count).
	r, err := ix.Search(ctx, cinct.Query{Path: []uint32{0, 1}, Kind: cinct.CountOnly})
	if err != nil {
		log.Fatal(err)
	}
	n, _ := r.Count()
	fmt.Println("count:", n)

	// Stream occurrences lazily, stopping after the first hit — the
	// iterator does no further locate-or-decode work past the break.
	r, err = ix.Search(ctx, cinct.Query{Path: []uint32{0, 1}, Kind: cinct.Occurrences})
	if err != nil {
		log.Fatal(err)
	}
	for h, err := range r.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("first: trajectory %d @ offset %d\n", h.Trajectory, h.Offset)
		break
	}
	// Resume exactly where the loop stopped, on a fresh query.
	r2, err := ix.Search(ctx, cinct.Query{Path: []uint32{0, 1}, Kind: cinct.Occurrences, Cursor: r.Cursor()})
	if err != nil {
		log.Fatal(err)
	}
	for h, err := range r2.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed: trajectory %d @ offset %d\n", h.Trajectory, h.Offset)
	}

	// A strict path query is the same descriptor plus an Interval.
	r, err = ix.Search(ctx, cinct.Query{
		Path:     []uint32{1, 2},
		Interval: &cinct.Interval{From: 100, To: 300},
		Kind:     cinct.Trajectories,
	})
	if err != nil {
		log.Fatal(err)
	}
	for h, err := range r.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("in window: trajectory %d entered at t=%d\n", h.Trajectory, h.EnteredAt)
	}
	// Output:
	// count: 2
	// first: trajectory 0 @ offset 0
	// resumed: trajectory 1 @ offset 0
	// in window: trajectory 1 entered at t=150
}

// Example_ingest shows the live write path: a Writer accepts appended
// trajectories into an in-memory delta that is immediately queryable,
// and Seal compacts the delta into a real compressed shard without
// changing any answer (global IDs are stable across seals).
func Example_ingest() {
	w, err := cinct.NewWriterAt(mustBuild(paperTrajectories()), cinct.WriterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	// A new vehicle drives A→B→C; it is searchable before any seal.
	id, err := w.Append([]uint32{0, 1, 2}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("appended as trajectory", id)

	count := func() int {
		r, err := w.Search(context.Background(), cinct.Query{Path: []uint32{0, 1}, Kind: cinct.CountOnly})
		if err != nil {
			log.Fatal(err)
		}
		n, err := r.Count()
		if err != nil {
			log.Fatal(err)
		}
		return n
	}
	fmt.Println("A->B occurrences with hot delta:", count())

	// Compact the delta into a compressed shard: same answers, and the
	// sealed state can now be persisted with Snapshot + Save.
	sealed, err := w.Seal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed %d trajectories; A->B occurrences: %d\n", sealed, count())
	// Output:
	// appended as trajectory 4
	// A->B occurrences with hot delta: 3
	// sealed 1 trajectories; A->B occurrences: 3
}

func mustBuild(trajs [][]uint32) *cinct.Index {
	ix, err := cinct.Build(trajs, nil)
	if err != nil {
		log.Fatal(err)
	}
	return ix
}

func ExampleBuildTemporal() {
	trajs := paperTrajectories()
	times := [][]int64{
		{100, 160, 220, 280},
		{90, 150, 210},
		{400, 460},
		{100, 170},
	}
	ix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Who drove B→C between t=100 and t=300? Only T2 (entered B at 150);
	// T3 entered B at 400.
	hits, err := ix.FindInInterval([]uint32{1, 2}, 100, 300, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("trajectory %d entered at t=%d\n", h.Trajectory, h.EnteredAt)
	}
	// Output: trajectory 1 entered at t=150
}

// Example_gpsIngest walks the raw-GPS pipeline end to end: a road
// network, a noisy device trace simulated along a known path, a
// standing query registered before the ingest, and the map-matched
// result landing as a queryable trajectory plus one push
// notification.
func Example_gpsIngest() {
	g := roadnet.Grid(6, 6, 3)
	rng := rand.New(rand.NewSource(7))

	// The ground-truth path: a U-turn-free walk over the grid
	// (immediate reversals are unrecoverable for a position-only
	// matcher).
	walk := []roadnet.EdgeID{roadnet.EdgeID(rng.Intn(g.NumEdges()))}
	for len(walk) < 8 {
		cur := walk[len(walk)-1]
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			break
		}
		walk = append(walk, choices[rng.Intn(len(choices))])
	}

	// A one-row base corpus on the same network, so the index exists.
	base := make([]uint32, len(walk))
	times := make([]int64, len(walk))
	for i, e := range walk {
		base[i] = uint32(e)
		times[i] = int64(100 + 10*i)
	}
	tix, err := cinct.BuildTemporal([][]uint32{base}, [][]int64{times}, nil)
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(engine.Options{SealThreshold: -1})
	defer eng.CloseAll()
	defer eng.Shutdown()
	eng.RegisterTemporal("roads", tix)
	eng.AttachRoadnet("roads", g, mapmatch.Config{})

	// A standing query on the path, registered before anything lands.
	sub, err := eng.Subscribe("roads", engine.Predicate{Path: base}, engine.SubscribeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// A noisy timed trace simulated along the walk, map-matched and
	// appended in one call.
	tr := gps.Simulate(g, walk, 0.02, 50_000, 15, rng)
	res, err := eng.IngestGPS(context.Background(), "roads", []gps.Trace{tr})
	if err != nil {
		log.Fatal(err)
	}
	r := res.Results[0]
	fmt.Printf("accepted as trajectory %d (%d edges)\n", r.ID, r.Edges)

	// The append path tested the new row against the predicate and
	// pushed the match.
	n := <-sub.C()
	fmt.Printf("notified: trajectory %d at offset %d, entered at t=%d\n",
		n.Trajectory, n.Offset, n.EnteredAt)
	// Output:
	// accepted as trajectory 1 (8 edges)
	// notified: trajectory 1 at offset 0, entered at t=50000
}
