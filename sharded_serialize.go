package cinct

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cinct/internal/trajstr"
)

// Sharded container format (versioned):
//
//	magic   "CNCTshrd"                 8 bytes
//	version uvarint                    currently 1
//	K       uvarint                    shard count
//	routing K × uvarint                trajectories per shard
//	frames  K × (uvarint len, bytes)   each the single-index format
//
// The routing table is redundant with the framed shards (each frame
// embeds its document table) but lets a reader size the ID space and
// validate frames without trusting them; the length prefixes make the
// frames skippable for future selective/lazy shard loading.

const (
	shardMagic   = "CNCTshrd"
	shardVersion = 1
)

// ErrBadShardContainer reports a malformed sharded index stream.
var ErrBadShardContainer = errors.New("cinct: bad sharded index container")

// Save writes the sharded container format.
func (si *ShardedIndex) Save(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	writeUvarint := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := bw.Write(buf[:k])
		return err
	}
	if _, err := bw.WriteString(shardMagic); err != nil {
		return n, err
	}
	n += int64(len(shardMagic))
	if err := writeUvarint(shardVersion); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(si.shards))); err != nil {
		return n, err
	}
	for _, ix := range si.shards {
		if err := writeUvarint(uint64(ix.NumTrajectories())); err != nil {
			return n, err
		}
	}
	var frame bytes.Buffer
	for s, ix := range si.shards {
		frame.Reset()
		if _, err := ix.saveOne(&frame); err != nil {
			return n, fmt.Errorf("cinct: saving shard %d: %w", s, err)
		}
		if err := writeUvarint(uint64(frame.Len())); err != nil {
			return n, err
		}
		k, err := bw.Write(frame.Bytes())
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadSharded reads a sharded index written by ShardedIndex.Save. Most
// callers want Load, which dispatches on the container magic and
// accepts either format.
func LoadSharded(r io.Reader) (*ShardedIndex, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadShardContainer, err)
	}
	if string(got) != shardMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadShardContainer)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil || version != shardVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadShardContainer, version)
	}
	k, err := binary.ReadUvarint(br)
	if err != nil || k == 0 || k > 1<<20 {
		return nil, fmt.Errorf("%w: shard count %d", ErrBadShardContainer, k)
	}
	routing := make([]uint64, k)
	bounds := make([]int, 1, k+1)
	total := 0
	for s := range routing {
		routing[s], err = binary.ReadUvarint(br)
		if err != nil || routing[s] == 0 {
			return nil, fmt.Errorf("%w: routing table", ErrBadShardContainer)
		}
		total += int(routing[s])
		bounds = append(bounds, total)
	}
	si := &ShardedIndex{
		shards: make([]*Index, k),
		bounds: bounds,
	}
	corpora := make([]*trajstr.Corpus, k)
	for s := range si.shards {
		frameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d frame length", ErrBadShardContainer, s)
		}
		// LimitReader confines each shard loader to its frame so a
		// short or overlong frame is an error here, not a corrupt read
		// of the next shard; the drain repositions br at the next
		// frame even if the loader under-consumed.
		lr := io.LimitReader(br, int64(frameLen))
		ix, err := loadOne(bufio.NewReader(lr))
		if err != nil {
			return nil, fmt.Errorf("cinct: loading shard %d: %w", s, err)
		}
		if _, err := io.Copy(io.Discard, lr); err != nil {
			return nil, fmt.Errorf("%w: shard %d frame", ErrBadShardContainer, s)
		}
		if ix.NumTrajectories() != int(routing[s]) {
			return nil, fmt.Errorf("%w: shard %d holds %d trajectories, routing table says %d",
				ErrBadShardContainer, s, ix.NumTrajectories(), routing[s])
		}
		if s > 0 && ix.hasLoc != si.hasLoc {
			return nil, fmt.Errorf("%w: shards disagree on locate support", ErrBadShardContainer)
		}
		si.hasLoc = ix.hasLoc
		si.shards[s] = ix
		corpora[s] = ix.corpus
	}
	si.edges = trajstr.CountDistinctEdges(corpora)
	return si, nil
}
