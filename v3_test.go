package cinct

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// saveV3Bytes serializes via SaveV3 into memory.
func saveV3Bytes(t *testing.T, ix *Index, tix *TemporalIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if tix != nil {
		_, err = tix.SaveV3(&buf)
	} else {
		_, err = ix.SaveV3(&buf)
	}
	if err != nil {
		t.Fatalf("SaveV3: %v", err)
	}
	if buf.Len()%v3PageSize != 0 {
		t.Fatalf("v3 container is %d bytes, not page-aligned", buf.Len())
	}
	return buf.Bytes()
}

// mapV3 writes the container to a temp file and opens it zero-copy.
func mapV3(t *testing.T, data []byte) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.cinct3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	return ix
}

// TestV3RoundTrip pins SaveV3 → Load (heap view) and SaveV3 →
// OpenMapped (zero-copy view) against the in-memory original, over
// monolithic and sharded spatial indexes, with and without locate
// support. All three instances must answer the full PR-4 query matrix
// identically.
func TestV3RoundTrip(t *testing.T) {
	trajs := shardedTestCorpus(t)
	for _, shards := range []int{1, 4} {
		for _, sa := range []int{DefaultOptions().SampleRate, 0} {
			opts := DefaultOptions()
			opts.Shards = shards
			opts.SampleRate = sa
			orig, err := Build(trajs, opts)
			if err != nil {
				t.Fatal(err)
			}
			data := saveV3Bytes(t, orig, nil)
			heap, err := Load(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("shards=%d sa=%d: Load(v3): %v", shards, sa, err)
			}
			mapped := mapV3(t, data)
			if !mapped.Mapped() {
				t.Fatal("OpenMapped index does not report Mapped")
			}
			if heap.Mapped() {
				t.Fatal("heap-loaded index reports Mapped")
			}
			for _, ix := range []*Index{heap, mapped} {
				if ix.NumTrajectories() != orig.NumTrajectories() ||
					ix.Shards() != orig.Shards() || ix.Len() != orig.Len() ||
					ix.NumEdges() != orig.NumEdges() {
					t.Fatalf("shards=%d sa=%d: metadata mismatch", shards, sa)
				}
				checkSameAnswers(t, trajs, orig, ix, sa > 0)
			}
		}
	}
}

// checkSameAnswers runs the query matrix against want and got and
// requires byte-identical results.
func checkSameAnswers(t *testing.T, trajs [][]uint32, want, got *Index, hasLoc bool) {
	t.Helper()
	for qi, path := range queryPaths(trajs) {
		if w, g := want.Count(path), got.Count(path); w != g {
			t.Fatalf("q%d: Count = %d, want %d", qi, g, w)
		}
		if !hasLoc {
			if _, err := got.Find(path, 0); !errors.Is(err, ErrNoLocate) {
				t.Fatalf("q%d: no-locate index Find err = %v, want ErrNoLocate", qi, err)
			}
			continue
		}
		for _, limit := range []int{0, 3} {
			wm, err := want.Find(path, limit)
			if err != nil {
				t.Fatal(err)
			}
			gm, err := got.Find(path, limit)
			if err != nil {
				t.Fatalf("q%d limit=%d: Find: %v", qi, limit, err)
			}
			if len(wm) != len(gm) {
				t.Fatalf("q%d limit=%d: %d matches, want %d", qi, limit, len(gm), len(wm))
			}
			for i := range wm {
				if wm[i] != gm[i] {
					t.Fatalf("q%d limit=%d: match %d = %+v, want %+v", qi, limit, i, gm[i], wm[i])
				}
			}
		}
	}
	if hasLoc {
		for id := 0; id < want.NumTrajectories(); id += 7 {
			w, err := want.Trajectory(id)
			if err != nil {
				t.Fatal(err)
			}
			g, err := got.Trajectory(id)
			if err != nil {
				t.Fatalf("Trajectory(%d): %v", id, err)
			}
			if len(w) != len(g) {
				t.Fatalf("Trajectory(%d): len %d, want %d", id, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("Trajectory(%d) differs at %d", id, i)
				}
			}
		}
	}
}

// TestV3TemporalRoundTrip pins the temporal container: SaveV3 →
// LoadTemporal and → OpenMappedTemporal must answer interval queries
// identically to the original, over aligned sharded stores.
func TestV3TemporalRoundTrip(t *testing.T) {
	trajs, times := timedCorpus(11)
	ctx := context.Background()
	for _, shards := range []int{1, 3} {
		opts := DefaultOptions()
		opts.Shards = shards
		orig, err := BuildTemporal(trajs, times, opts)
		if err != nil {
			t.Fatal(err)
		}
		data := saveV3Bytes(t, nil, orig)
		heap, err := LoadTemporal(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("shards=%d: LoadTemporal(v3): %v", shards, err)
		}
		path := filepath.Join(t.TempDir(), "index.cinct3")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenMappedTemporal(path)
		if err != nil {
			t.Fatalf("shards=%d: OpenMappedTemporal: %v", shards, err)
		}
		if !mapped.Index.Mapped() {
			t.Fatal("mapped temporal index does not report Mapped")
		}
		pat := frequentEdge(trajs)
		queries := []Query{
			{Path: pat, Kind: CountOnly},
			{Path: pat, Kind: Occurrences},
			{Path: pat, Kind: CountOnly, Interval: &Interval{From: 0, To: 1 << 62}},
			{Path: pat, Kind: Occurrences, Interval: &Interval{From: 200, To: 4000}},
			{Path: pat, Kind: Trajectories, Interval: &Interval{From: 200, To: 4000}, Limit: 3},
		}
		for qi, q := range queries {
			wr, err := orig.Search(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			want := drain(t, wr)
			for _, tix := range []*TemporalIndex{heap, mapped} {
				gr, err := tix.Search(ctx, q)
				if err != nil {
					t.Fatalf("shards=%d q%d: %v", shards, qi, err)
				}
				got := drain(t, gr)
				if len(want) != len(got) {
					t.Fatalf("shards=%d q%d: %d hits, want %d", shards, qi, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("shards=%d q%d: hit %d = %+v, want %+v", shards, qi, i, got[i], want[i])
					}
				}
			}
		}
		// Timestamps must decode identically through the mapped store.
		for id := 0; id < orig.Index.NumTrajectories(); id += 5 {
			w := orig.Timestamps(id)
			g := mapped.Timestamps(id)
			if len(w) != len(g) {
				t.Fatalf("Timestamps(%d): len %d, want %d", id, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("Timestamps(%d) differs at %d", id, i)
				}
			}
		}
	}
}

// TestV3LegacyFormatsStillLoad pins backward compatibility: the v1
// monolithic/sharded container and the v2 temporal container must
// still load, and must answer the query matrix identically to the v3
// view of the same index.
func TestV3LegacyFormatsStillLoad(t *testing.T) {
	trajs := shardedTestCorpus(t)
	for _, shards := range []int{1, 4} {
		opts := DefaultOptions()
		opts.Shards = shards
		orig, err := Build(trajs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var v1 bytes.Buffer
		if _, err := orig.Save(&v1); err != nil {
			t.Fatal(err)
		}
		legacy, err := Load(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("shards=%d: Load(v1): %v", shards, err)
		}
		mapped := mapV3(t, saveV3Bytes(t, orig, nil))
		checkSameAnswers(t, trajs, legacy, mapped, true)
	}
	trajsT, times := timedCorpus(13)
	origT, err := BuildTemporal(trajsT, times, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if _, err := origT.Save(&v2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTemporal(bytes.NewReader(v2.Bytes())); err != nil {
		t.Fatalf("LoadTemporal(v2): %v", err)
	}
}

// TestV3FlavorMismatch pins the flavor gate: a spatial container must
// not open as temporal and vice versa.
func TestV3FlavorMismatch(t *testing.T) {
	trajs, times := timedCorpus(17)
	ix, err := Build(trajs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tix, err := BuildTemporal(trajs, times, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	spatial := saveV3Bytes(t, ix, nil)
	temporal := saveV3Bytes(t, nil, tix)
	if _, err := LoadTemporal(bytes.NewReader(spatial)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadTemporal(spatial v3) err = %v, want ErrCorrupt", err)
	}
	// A temporal container opened spatially still carries a valid
	// spatial index, but the flavor gate rejects it outright: the
	// caller asked for the wrong thing.
	if _, err := Load(bytes.NewReader(temporal)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load(temporal v3) err = %v, want ErrCorrupt", err)
	}
}

// TestV3CorruptContainer flips words across the container: every
// mutation must either fail typed at open or produce an index whose
// queries fail typed — never a panic escaping the API.
func TestV3CorruptContainer(t *testing.T) {
	trajs, times := fuzzCorpus()
	tix, err := BuildTemporal(trajs, times, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base := saveV3Bytes(t, nil, tix)
	// Sample ~200 word offsets; every mutation runs a full load plus a
	// query, so an exhaustive sweep belongs to the fuzzer, not CI.
	step := len(base) / 200 / 8 * 8
	if step < 8 {
		step = 8
	}
	pat := []uint32{2, 3}
	for off := 0; off+8 <= len(base); off += step {
		for _, bit := range []int{0, 17, 63} {
			mut := append([]byte(nil), base...)
			mut[off+bit/8] ^= 1 << (bit % 8)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("offset %d bit %d: panic escaped: %v", off, bit, r)
					}
				}()
				got, err := LoadTemporal(bytes.NewReader(mut))
				if err != nil {
					// A flip inside the magic diverts to the legacy
					// loaders, whose own typed errors are fine; with
					// the v3 magic intact the error must be typed.
					if isV3Magic(mut[:8]) &&
						!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrCorruptIndex) &&
						!errors.Is(err, ErrCorruptTimestamps) {
						t.Fatalf("offset %d bit %d: untyped error %v", off, bit, err)
					}
					return
				}
				// Loaded despite the flip: queries must answer or
				// fail typed, not crash.
				r, err := got.Search(context.Background(),
					Query{Path: pat, Kind: Occurrences, Interval: &Interval{From: 0, To: 1 << 62}})
				if err != nil {
					return
				}
				for _, herr := range r.All() {
					if herr != nil {
						return
					}
				}
				_, _ = got.Index.SubPath(0, 0, got.Index.TrajectoryLen(0))
			}()
		}
	}
}

// TestOpenMappedErrors pins the open-path failure modes.
func TestOpenMappedErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenMapped(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("OpenMapped(missing) succeeded")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("CNCTidx3"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(short); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenMapped(short) err = %v, want ErrCorrupt", err)
	}
	v1 := filepath.Join(dir, "v1")
	trajs := testCorpus()
	ix, err := Build(trajs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenMapped(v1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenMapped(v1 container) err = %v, want ErrCorrupt", err)
	}
}

// craftedV3Header builds a one-page file carrying an otherwise valid
// v3 header with the given flavor and counts — no TOC, no sections.
func craftedV3Header(flavor, nSec, shardCount, storeCount uint64) []byte {
	b := make([]byte, v3PageSize)
	for i, w := range []uint64{
		v3MagicWord(), v3Version, flavor, nSec, v3PageSize, shardCount, storeCount, 0,
	} {
		binary.LittleEndian.PutUint64(b[8*i:], w)
	}
	return b
}

// TestV3HeaderCountOverflow pins the open-boundary guard against
// headers whose counts are chosen so shardCount+storeCount wraps
// uint64 (e.g. 2^64-1 shards + 1 store = 0 sections): the loaders
// must return ErrCorrupt, not panic sizing a 2^64-1-element slice.
func TestV3HeaderCountOverflow(t *testing.T) {
	cases := []struct {
		name                 string
		flavor               uint64
		nSec, shards, stores uint64
	}{
		{"wrapping shard count", v3FlavorTemporal, 0, ^uint64(0), 1},
		{"wrapping store count", v3FlavorTemporal, 0, 0, ^uint64(0)},
		{"huge section count", v3FlavorSpatial, ^uint64(0), ^uint64(0) - 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := craftedV3Header(tc.flavor, tc.nSec, tc.shards, tc.stores)
			if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load err = %v, want ErrCorrupt", err)
			}
			if _, err := LoadTemporal(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("LoadTemporal err = %v, want ErrCorrupt", err)
			}
			path := filepath.Join(t.TempDir(), "crafted.cinct3")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenMapped(path); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenMapped err = %v, want ErrCorrupt", err)
			}
			if _, err := OpenMappedTemporal(path); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenMappedTemporal err = %v, want ErrCorrupt", err)
			}
		})
	}
}
