package cinct

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"cinct/internal/tempo"
)

// containCorrupt runs fn and converts any panic escaping it into an
// ErrCorruptIndex error. View constructors over mmap'd v3 containers
// validate structural invariants in O(metadata) but deliberately skip
// O(n) semantic checks (label-in-context, LF-cycle coverage), so deep
// corruption can first surface as an out-of-bounds panic inside a
// query. Go guarantees such faults are recoverable panics rather than
// memory unsafety; this wrapper is the containment boundary that turns
// them into a typed error at the query API instead of crashing the
// process.
func containCorrupt(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: query panicked: %v", ErrCorruptIndex, r)
		}
	}()
	return fn()
}

// Hit is one streamed Search result. For Occurrences queries it is an
// occurrence — Match plus, when the query carried an Interval, the
// entry time of the path's first edge. For Trajectories queries,
// Trajectory identifies the distinct trajectory, Offset is -1, and
// EnteredAt (interval queries only) is the entry time of the first
// occurrence that satisfied the interval.
type Hit struct {
	Match
	// EnteredAt is meaningful only when the Query had an Interval.
	EnteredAt int64
}

// Results is the handle returned by Search: a lazy, single-pass view
// over the result stream. All yields hits in canonical (Trajectory,
// Offset) order, decoding timestamps and deduplicating on demand —
// breaking out of the loop stops that work immediately. Iteration may
// be resumed by ranging over All again; Count drains whatever remains.
// A Results is not safe for concurrent use.
type Results struct {
	q      Query
	count  int // CountOnly answer
	merged *mergeIter
	units  []*unitCursor // every search unit, for Stats aggregation

	n         int // hits yielded so far
	last      Hit
	hasLast   bool
	exhausted bool
	err       error
}

// All returns the hit stream. The first ranged loop starts it;
// breaking out pauses it (the underlying shard iterators keep their
// position, and a later range resumes), and iteration ends for good
// when the stream is exhausted or Limit hits have been yielded. A
// context cancellation or decoding error is yielded once as the final
// element's error.
func (r *Results) All() iter.Seq2[Hit, error] {
	return func(yield func(Hit, error) bool) {
		if r.merged == nil || r.exhausted {
			return
		}
		if r.err != nil {
			yield(Hit{}, r.err)
			return
		}
		for {
			if r.q.Limit > 0 && r.n >= r.q.Limit {
				return
			}
			h, ok, err := r.merged.next()
			if err != nil {
				r.err = err
				yield(Hit{}, err)
				return
			}
			if !ok {
				r.exhausted = true
				return
			}
			r.n++
			r.last, r.hasLast = h, true
			if !yield(h, nil) {
				return
			}
		}
	}
}

// Count returns the query's count. For CountOnly queries it is the
// full occurrence count, computed eagerly by Search. For other kinds
// it drains any hits not yet consumed through All and returns the
// total number of hits yielded (bounded by Limit).
func (r *Results) Count() (int, error) {
	if r.merged == nil {
		return r.count, r.err
	}
	for _, err := range r.All() {
		if err != nil {
			return r.n, err
		}
	}
	return r.n, nil
}

// Cursor returns the opaque token that resumes the query just past the
// last hit yielded so far: pass it as Query.Cursor (same path,
// interval and kind; any Limit) to receive the exact suffix of the
// stream. It returns "" when the stream is known exhausted or nothing
// has been yielded yet. A page that stopped exactly at the last hit
// returns a valid cursor whose next page is empty.
func (r *Results) Cursor() string {
	if r.exhausted || !r.hasLast {
		return ""
	}
	return r.q.CursorAfter(r.last)
}

// compiled is the resolved execution form of a Query.
type compiled struct {
	path        []uint32
	kind        Kind
	hasInterval bool
	from, to    int64
	limit       int
	hasAfter    bool
	afterT      int // cursor resume position, global coordinates
	afterO      int
}

func compile(q Query) (compiled, error) {
	if err := q.validate(); err != nil {
		return compiled{}, err
	}
	c := compiled{path: q.Path, kind: q.Kind, limit: q.Limit}
	if q.Interval != nil {
		c.hasInterval = true
		c.from, c.to = q.Interval.From, q.Interval.To
	}
	if q.Kind != CountOnly {
		var err error
		c.afterT, c.afterO, c.hasAfter, err = q.decodeCursor()
		if err != nil {
			return compiled{}, err
		}
	}
	return c, nil
}

// Search executes a Query against the index, monolithic or sharded.
// CountOnly queries are answered eagerly; Occurrences and Trajectories
// queries locate and canonically order the candidate set per shard (in
// parallel), then stream hits lazily through Results — timestamp
// decoding, interval filtering and deduplication happen on pull, so a
// small Limit or an abandoned iteration does proportionally less work.
// Interval queries require a TemporalIndex (use TemporalIndex.Search);
// on a plain Index they fail with ErrNoTimestamps.
func (ix *Index) Search(ctx context.Context, q Query) (*Results, error) {
	if q.Interval != nil {
		return nil, ErrNoTimestamps
	}
	return search(ctx, q, ix, nil)
}

// Search executes a Query against the temporal index; unlike
// Index.Search it accepts interval-constrained queries, pruning
// candidates against per-trajectory (min, max) summaries before any
// timestamp decode and probing timestamps lazily during iteration.
func (t *TemporalIndex) Search(ctx context.Context, q Query) (*Results, error) {
	return search(ctx, q, t.Index, t)
}

func search(ctx context.Context, q Query, ix *Index, t *TemporalIndex) (*Results, error) {
	return runSearch(ctx, q, assembleUnits(ix, t), ix.hasLoc)
}

// runSearch is the transport between a compiled query and the
// streaming merge, shared by the immutable indexes and the live
// Writer: the units may be compressed shards, a delta snapshot, or
// any mix — each contributes candidates through the same collect /
// advance protocol. hasLoc reports whether the compressed units can
// locate (delta units always can).
func runSearch(ctx context.Context, q Query, units []*unitCursor, hasLoc bool) (*Results, error) {
	c, err := compile(q)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.kind == CountOnly {
		n, err := countUnits(ctx, c, units)
		if err != nil {
			return nil, err
		}
		return &Results{q: q, count: n, exhausted: true, units: units}, nil
	}
	if !hasLoc {
		return nil, ErrNoLocate
	}
	runUnits(units, func(_ int, u *unitCursor) {
		u.err = containCorrupt(func() error { return u.collect(ctx, c) })
	})
	for _, u := range units {
		if u.err != nil {
			return nil, u.err
		}
	}
	shared := &searchShared{ctx: ctx, c: c}
	m := &mergeIter{shared: shared}
	for _, u := range units {
		u.lastTraj = -1
		u.advance(shared)
		if u.err != nil {
			return nil, u.err
		}
		if u.hasHead {
			m.units = append(m.units, u)
		}
	}
	m.init()
	return &Results{q: q, merged: m, units: units}, nil
}

// unitCursor is one shard's contribution to a Search: an index over a
// contiguous global-ID range, its timestamp store (when temporal), the
// canonically sorted candidate set produced by collect, and the lazy
// iteration state advanced during the merge. A unit is backed either
// by a compressed monolithic index (ix) or by a live delta snapshot
// (d) — the collect/advance protocol is identical, only the locate
// and timestamp probes dispatch differently.
type unitCursor struct {
	ix   *Index     // monolithic shard index; nil for a delta unit
	d    *deltaSnap // uncompressed delta snapshot; nil for sealed units
	base int        // global ID of the unit's first trajectory
	n    int        // trajectories in the unit
	// ts is the timestamp store probed for interval queries; nil for
	// purely spatial searches. tsGlobal marks the legacy layout where a
	// single corpus-wide store is shared by all units and probed with
	// global IDs instead of shard-local ones.
	ts       *tempo.Store
	tsGlobal bool

	cands []Match // shard-local, canonically sorted
	pos   int

	lastTraj int // last yielded trajectory (global), for dedupe; -1 none
	head     Hit
	hasHead  bool
	err      error

	// st is the unit's work account. Plain fields are sound: collect
	// and count touch the unit from a single goroutine of the parallel
	// fan-out, and advance runs only on the merge goroutine after that
	// fan-out has joined.
	st QueryStats
}

// probeID returns the trajectory ID in the coordinate space of the
// unit's timestamp store.
func (u *unitCursor) probeID(local int) int {
	if u.tsGlobal {
		return local + u.base
	}
	return local
}

// locate enumerates every occurrence of path in the unit — the
// backward-search + SA-sample walk for compressed units, a plain scan
// for the delta.
func (u *unitCursor) locate(ctx context.Context, path []uint32, visit func(doc, offset int)) error {
	if u.d != nil {
		return u.d.locate(ctx, path, &u.st, visit)
	}
	return u.ix.locateOccurrences(ctx, path, &u.st, visit)
}

// countPath answers the no-interval CountOnly contribution of the
// unit.
func (u *unitCursor) countPath(path []uint32) int {
	if u.d != nil {
		return u.d.count(path, &u.st)
	}
	return u.ix.countOne(path)
}

// tsMinMax returns the (min, max) timestamp summary of a shard-local
// trajectory; tsAt probes one timestamp. Valid only under an interval
// query, where every unit carries temporal data.
func (u *unitCursor) tsMinMax(local int) (int64, int64) {
	if u.d != nil {
		return u.d.minMax(local)
	}
	return u.ts.MinMax(u.probeID(local))
}

func (u *unitCursor) tsAt(local, offset int) int64 {
	if u.d != nil {
		u.st.DecodeSteps++ // one plain column access
		return u.d.at(local, offset)
	}
	v, decodes := u.ts.AtCounted(u.probeID(local), offset)
	u.st.DecodeSteps += int64(decodes)
	return v
}

// assembleUnits flattens an index (and its optional temporal stores)
// into per-shard search units. Build only produces store layouts
// aligned with the spatial shards; the one legacy layout — a sharded
// spatial index with a single corpus-wide store — is handled by
// marking the shared store global.
func assembleUnits(ix *Index, t *TemporalIndex) []*unitCursor {
	if si := ix.sharded; si != nil {
		units := make([]*unitCursor, len(si.shards))
		for s, shard := range si.shards {
			units[s] = &unitCursor{ix: shard, base: si.bounds[s], n: si.bounds[s+1] - si.bounds[s]}
			if t != nil {
				if t.aligned() {
					units[s].ts = t.stores[s]
				} else {
					units[s].ts, units[s].tsGlobal = t.stores[0], true
				}
			}
		}
		return units
	}
	u := &unitCursor{ix: ix, base: 0, n: ix.corpus.NumTrajectories()}
	if t != nil {
		u.ts = t.stores[0]
	}
	return []*unitCursor{u}
}

// runUnits executes fn once per unit, in parallel when there is more
// than one (mirroring the sharded fan-out).
func runUnits(units []*unitCursor, fn func(i int, u *unitCursor)) {
	if len(units) == 1 {
		fn(0, units[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(units))
	for i, u := range units {
		go func(i int, u *unitCursor) {
			defer wg.Done()
			fn(i, u)
		}(i, u)
	}
	wg.Wait()
}

// countUnits answers a CountOnly query: a parallel per-unit count —
// the O(|path|) backward search when there is no interval, otherwise a
// locate-prune-probe scan per unit.
func countUnits(ctx context.Context, c compiled, units []*unitCursor) (int, error) {
	counts := make([]int, len(units))
	errs := make([]error, len(units))
	runUnits(units, func(i int, u *unitCursor) {
		errs[i] = containCorrupt(func() error {
			u.st.ShardsProbed++
			if !c.hasInterval {
				counts[i] = u.countPath(c.path)
				return nil
			}
			n := 0
			err := u.locate(ctx, c.path, func(doc, offset int) {
				if lo, hi := u.tsMinMax(doc); hi < c.from || lo > c.to {
					u.st.SummaryPruned++
					return
				}
				if at := u.tsAt(doc, offset); at >= c.from && at <= c.to {
					n++
				}
			})
			counts[i] = n
			return err
		})
	})
	total := 0
	for i := range units {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += counts[i]
	}
	return total, nil
}

// collect runs the locate phase for one unit: enumerate the suffix
// range (checking ctx periodically), skip candidates at or before the
// resume cursor, prune against timestamp summaries when an interval is
// present, bound the working set to the smallest `limit` candidates
// when no interval filtering can reject them later, and sort the
// survivors canonically. The result is the unit's lazily consumed
// candidate stream.
func (u *unitCursor) collect(ctx context.Context, c compiled) error {
	if c.hasAfter {
		// Units wholly at or before the cursor position contribute
		// nothing; skip their locate scan entirely.
		if c.kind == Trajectories && u.base+u.n-1 <= c.afterT {
			u.st.ShardsSkipped++
			return nil
		}
		if c.kind == Occurrences && u.base+u.n-1 < c.afterT {
			u.st.ShardsSkipped++
			return nil
		}
	}
	u.st.ShardsProbed++
	switch {
	case c.kind == Trajectories && !c.hasInterval:
		return u.collectDistinct(ctx, c)
	case c.limit > 0 && !c.hasInterval:
		return u.collectBounded(ctx, c)
	}
	return u.collectAll(ctx, c)
}

// skipByCursor reports whether a shard-local candidate falls at or
// before the resume position.
func (u *unitCursor) skipByCursor(c compiled, doc, offset int) bool {
	if !c.hasAfter {
		return false
	}
	g := doc + u.base
	if c.kind == Trajectories {
		return g <= c.afterT
	}
	return g < c.afterT || (g == c.afterT && offset <= c.afterO)
}

// collectAll gathers every candidate (summary-pruned when temporal)
// and sorts canonically — the path taken when interval filtering may
// reject candidates later, so the working set cannot be bounded by the
// limit up front.
func (u *unitCursor) collectAll(ctx context.Context, c compiled) error {
	err := u.locate(ctx, c.path, func(doc, offset int) {
		if u.skipByCursor(c, doc, offset) {
			return
		}
		if c.hasInterval {
			if lo, hi := u.tsMinMax(doc); hi < c.from || lo > c.to {
				u.st.SummaryPruned++
				return
			}
		}
		u.cands = append(u.cands, Match{Trajectory: doc, Offset: offset})
	})
	if err != nil {
		return err
	}
	u.st.CandidateRows += int64(len(u.cands))
	sortMatches(u.cands)
	return nil
}

// collectBounded keeps only the canonically smallest `limit`
// occurrences in a bounded max-heap — O(limit) memory regardless of
// how many occurrences the suffix range holds. Valid only when every
// candidate is a definite hit (no interval filter).
func (u *unitCursor) collectBounded(ctx context.Context, c compiled) error {
	h := matchHeap{}
	err := u.locate(ctx, c.path, func(doc, offset int) {
		if u.skipByCursor(c, doc, offset) {
			return
		}
		m := Match{Trajectory: doc, Offset: offset}
		if len(h) < c.limit {
			h.push(m)
			return
		}
		if matchLess(m, h[0]) {
			h[0] = m
			h.siftDown(0)
		}
	})
	if err != nil {
		return err
	}
	u.cands = []Match(h)
	u.st.CandidateRows += int64(len(u.cands))
	sortMatches(u.cands)
	return nil
}

// collectDistinct gathers distinct trajectory IDs for a Trajectories
// query with no interval — bounded to the smallest `limit` distinct
// IDs when a limit is set. IDs ride the shared matchHeap as
// Match{Trajectory, -1} candidates (matchLess on distinct IDs orders
// purely by trajectory), so the bounded-distinct path cannot drift
// from the canonical order.
func (u *unitCursor) collectDistinct(ctx context.Context, c compiled) error {
	seen := make(map[int]struct{})
	h := matchHeap{}
	err := u.locate(ctx, c.path, func(doc, offset int) {
		if u.skipByCursor(c, doc, offset) {
			return
		}
		if _, dup := seen[doc]; dup {
			return
		}
		m := Match{Trajectory: doc, Offset: -1}
		if c.limit <= 0 || len(h) < c.limit {
			seen[doc] = struct{}{}
			h.push(m)
			return
		}
		if doc < h[0].Trajectory {
			delete(seen, h[0].Trajectory)
			seen[doc] = struct{}{}
			h[0] = m
			h.siftDown(0)
		}
	})
	if err != nil {
		return err
	}
	u.cands = []Match(h)
	u.st.CandidateRows += int64(len(u.cands))
	sortMatches(u.cands)
	return nil
}

// searchShared is the per-search state every unit's advance consults.
type searchShared struct {
	ctx context.Context
	c   compiled
}

// advance moves the unit to its next qualifying hit: the pull step
// where interval filtering (one checkpointed timestamp probe per
// candidate) and trajectory deduplication happen. It stops on context
// cancellation, so an abandoned or cancelled iteration performs no
// further decodes. Timestamp probes against a corrupt mapped store are
// contained here: a panic surfaces as ErrCorruptIndex on the unit.
func (u *unitCursor) advance(s *searchShared) {
	if err := containCorrupt(func() error { u.advanceStep(s); return nil }); err != nil {
		u.err = err
		u.hasHead = false
	}
}

func (u *unitCursor) advanceStep(s *searchShared) {
	c := s.c
	for u.pos < len(u.cands) {
		if err := s.ctx.Err(); err != nil {
			u.err = err
			u.hasHead = false
			return
		}
		m := u.cands[u.pos]
		u.pos++
		global := m.Trajectory + u.base
		if c.kind == Trajectories && global == u.lastTraj {
			continue
		}
		h := Hit{Match: Match{Trajectory: global, Offset: m.Offset}}
		if c.hasInterval {
			at := u.tsAt(m.Trajectory, m.Offset)
			if at < c.from || at > c.to {
				continue
			}
			h.EnteredAt = at
		}
		if c.kind == Trajectories {
			u.lastTraj = global
			h.Offset = -1
		}
		u.head, u.hasHead = h, true
		return
	}
	u.hasHead = false
}

// mergeIter is the canonical-order streaming k-way merge over per-unit
// candidate streams: a binary min-heap of units keyed by their current
// head hit. Shards own contiguous ID ranges, so the heap degenerates
// to concatenation under today's layout — but correctness does not
// hinge on that invariant.
type mergeIter struct {
	units  []*unitCursor // min-heap by head (Trajectory, Offset)
	shared *searchShared
}

func (m *mergeIter) init() {
	for i := len(m.units)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *mergeIter) less(i, j int) bool {
	return matchLess(m.units[i].head.Match, m.units[j].head.Match)
}

func (m *mergeIter) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.units) && m.less(l, smallest) {
			smallest = l
		}
		if r < len(m.units) && m.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.units[i], m.units[smallest] = m.units[smallest], m.units[i]
		i = smallest
	}
}

// next pops the globally smallest head, advances its unit, and
// restores the heap.
func (m *mergeIter) next() (Hit, bool, error) {
	if len(m.units) == 0 {
		return Hit{}, false, nil
	}
	u := m.units[0]
	h := u.head
	u.advance(m.shared)
	if u.err != nil {
		return Hit{}, false, u.err
	}
	if !u.hasHead {
		last := len(m.units) - 1
		m.units[0] = m.units[last]
		m.units = m.units[:last]
	}
	if len(m.units) > 0 {
		m.siftDown(0)
	}
	return h, true, nil
}

// matchLess is the one canonical (Trajectory, Offset) comparison: the
// per-shard sort, the bounded heaps, and the k-way merge all order
// through it, so they cannot disagree.
func matchLess(a, b Match) bool {
	if a.Trajectory != b.Trajectory {
		return a.Trajectory < b.Trajectory
	}
	return a.Offset < b.Offset
}

// matchHeap is a max-heap of matches under canonical order, used to
// keep the smallest `limit` candidates in O(limit) memory.
type matchHeap []Match

func (h *matchHeap) push(m Match) {
	*h = append(*h, m)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !matchLess((*h)[p], (*h)[i]) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h matchHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h) && matchLess(h[largest], h[l]) {
			largest = l
		}
		if r < len(h) && matchLess(h[largest], h[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
