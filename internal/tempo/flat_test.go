package tempo

import (
	"math/rand"
	"testing"

	"cinct/internal/flat"
)

func TestFlatStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	times := make([][]int64, 40)
	for k := range times {
		col := make([]int64, rng.Intn(300))
		tm := int64(rng.Intn(1 << 30))
		for i := range col {
			tm += int64(rng.Intn(100)) - 3 // mostly increasing, some regressions
			col[i] = tm
		}
		times[k] = col
	}
	orig := New(times)
	w := flat.NewWriter()
	orig.AppendFlat(w)
	c := flat.NewCursor(w.Words())
	view, err := ViewFlat(c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Remaining() != 0 {
		t.Fatalf("%d words left over", c.Remaining())
	}
	if view.NumTrajectories() != len(times) {
		t.Fatalf("NumTrajectories = %d, want %d", view.NumTrajectories(), len(times))
	}
	for k, col := range times {
		if view.Len(k) != len(col) {
			t.Fatalf("Len(%d) = %d, want %d", k, view.Len(k), len(col))
		}
		wantMin, wantMax := orig.MinMax(k)
		gotMin, gotMax := view.MinMax(k)
		if gotMin != wantMin || gotMax != wantMax {
			t.Fatalf("MinMax(%d) = (%d,%d), want (%d,%d)", k, gotMin, gotMax, wantMin, wantMax)
		}
		for i, want := range col {
			if got := view.At(k, i); got != want {
				t.Fatalf("At(%d,%d) = %d, want %d", k, i, got, want)
			}
		}
	}
}

// A checkpoint offset near MaxInt64 must be rejected at ViewFlat
// (regression: starts[k]+ckOff used to wrap negative and slip past
// the blob-bound check, deferring the failure to query time).
func TestFlatStoreCheckpointOffsetOverflow(t *testing.T) {
	// Two columns longer than BlockSize: column 1 has starts[1] > 0 and
	// at least one checkpoint, the combination that made the old
	// additive check wrap.
	col := make([]int64, 2*BlockSize)
	for i := range col {
		col[i] = int64(i)
	}
	s := New([][]int64{col, col})
	if s.ckStart[1] >= s.ckStart[2] || s.starts[1] <= 0 {
		t.Fatalf("fixture lacks a checkpoint in a non-zero-start column")
	}
	s.ckOff[s.ckStart[1]] = int64(^uint64(0) >> 1) // MaxInt64
	w := flat.NewWriter()
	s.AppendFlat(w)
	if _, err := ViewFlat(flat.NewCursor(w.Words())); err == nil {
		t.Fatal("ViewFlat accepted a checkpoint offset past the blob")
	}
}

// Single-word perturbations must yield ErrCorrupt or a view whose At
// calls stay in bounds (wrong values are acceptable; faults are not).
func TestFlatStoreCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	times := make([][]int64, 8)
	for k := range times {
		col := make([]int64, 100+rng.Intn(100))
		for i := range col {
			col[i] = int64(i * 1000)
		}
		times[k] = col
	}
	w := flat.NewWriter()
	New(times).AppendFlat(w)
	base := w.Words()
	for i := range base {
		for _, delta := range []uint64{1, ^uint64(0), 1 << 45} {
			mut := append([]uint64(nil), base...)
			mut[i] += delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("word %d +%#x: panic: %v", i, delta, r)
					}
				}()
				v, err := ViewFlat(flat.NewCursor(mut))
				if err != nil {
					return
				}
				for k := 0; k < v.NumTrajectories(); k++ {
					for j := 0; j < v.Len(k); j += 17 {
						v.At(k, j)
					}
				}
			}()
		}
	}
}
