// Package tempo stores per-edge timestamps for trajectory corpora in
// delta-compressed form. The paper deliberately leaves timestamp
// compression orthogonal (§I, §VII) but positions CiNCT as the spatial
// half of systems like SNT-index [6] and CTR [3] that answer *strict
// path queries* — "find trajectories that traveled path P within time
// interval I". This package supplies the temporal half: lossless
// delta+varint columns (the choice of [3]) with O(len) random access.
package tempo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Store holds one timestamp column per trajectory, delta-compressed.
type Store struct {
	// blob holds zig-zag varint deltas, all trajectories back to back.
	blob []byte
	// starts[k] is the byte offset of trajectory k's column; lens[k]
	// its entry count.
	starts []int32
	lens   []int32
}

// ErrMismatch reports timestamp columns inconsistent with trajectories.
var ErrMismatch = errors.New("tempo: timestamp/trajectory shape mismatch")

// New builds a store. times[k][i] is the entry time (any int64 clock)
// of trajectory k's i-th edge; len(times[k]) must equal the trajectory
// length. Timestamps need not be monotone (zig-zag coding), though
// they almost always are, which is what makes deltas small.
func New(times [][]int64) *Store {
	s := &Store{
		starts: make([]int32, len(times)),
		lens:   make([]int32, len(times)),
	}
	var buf [binary.MaxVarintLen64]byte
	for k, col := range times {
		s.starts[k] = int32(len(s.blob))
		s.lens[k] = int32(len(col))
		prev := int64(0)
		for _, t := range col {
			n := binary.PutVarint(buf[:], t-prev)
			s.blob = append(s.blob, buf[:n]...)
			prev = t
		}
	}
	return s
}

// NumTrajectories returns the number of columns.
func (s *Store) NumTrajectories() int { return len(s.starts) }

// Len returns the entry count of trajectory k.
func (s *Store) Len(k int) int { return int(s.lens[k]) }

// Column decodes the full timestamp column of trajectory k.
func (s *Store) Column(k int) []int64 {
	out := make([]int64, s.lens[k])
	pos := int(s.starts[k])
	prev := int64(0)
	for i := range out {
		d, n := binary.Varint(s.blob[pos:])
		if n <= 0 {
			panic(fmt.Sprintf("tempo: corrupt column %d", k))
		}
		pos += n
		prev += d
		out[i] = prev
	}
	return out
}

// At returns the timestamp of trajectory k's edge i, decoding only the
// column prefix.
func (s *Store) At(k, i int) int64 {
	if i < 0 || i >= int(s.lens[k]) {
		panic(fmt.Sprintf("tempo: At(%d,%d) out of range [0,%d)", k, i, s.lens[k]))
	}
	pos := int(s.starts[k])
	prev := int64(0)
	for j := 0; j <= i; j++ {
		d, n := binary.Varint(s.blob[pos:])
		if n <= 0 {
			panic(fmt.Sprintf("tempo: corrupt column %d", k))
		}
		pos += n
		prev += d
	}
	return prev
}

// SizeBits returns the compressed footprint.
func (s *Store) SizeBits() int {
	return len(s.blob)*8 + len(s.starts)*32 + len(s.lens)*32
}

// Save writes the store.
func (s *Store) Save(w io.Writer) (int64, error) {
	var n int64
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := w.Write(buf[:k])
		return err
	}
	if err := put(uint64(len(s.starts))); err != nil {
		return n, err
	}
	for k := range s.starts {
		if err := put(uint64(s.lens[k])); err != nil {
			return n, err
		}
	}
	if err := put(uint64(len(s.blob))); err != nil {
		return n, err
	}
	m, err := w.Write(s.blob)
	return n + int64(m), err
}

// Load reads a store written by Save.
func Load(r io.ByteReader) (*Store, error) {
	nTraj, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tempo: %w", err)
	}
	s := &Store{
		starts: make([]int32, nTraj),
		lens:   make([]int32, nTraj),
	}
	for k := range s.lens {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tempo: %w", err)
		}
		s.lens[k] = int32(l)
	}
	blobLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tempo: %w", err)
	}
	s.blob = make([]byte, blobLen)
	for i := range s.blob {
		b, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("tempo: %w", err)
		}
		s.blob[i] = b
	}
	// Recompute starts by walking the varints.
	pos := 0
	for k := range s.starts {
		s.starts[k] = int32(pos)
		for j := int32(0); j < s.lens[k]; j++ {
			_, n := binary.Varint(s.blob[pos:])
			if n <= 0 {
				return nil, errors.New("tempo: corrupt blob")
			}
			pos += n
		}
	}
	if pos != len(s.blob) {
		return nil, errors.New("tempo: trailing bytes in blob")
	}
	return s, nil
}
