// Package tempo stores per-edge timestamps for trajectory corpora in
// delta-compressed form. The paper deliberately leaves timestamp
// compression orthogonal (§I, §VII) but positions CiNCT as the spatial
// half of systems like SNT-index [6] and CTR [3] that answer *strict
// path queries* — "find trajectories that traveled path P within time
// interval I". This package supplies the temporal half: lossless
// delta+varint columns (the choice of [3]), block-structured so random
// access decodes at most one block instead of the whole column prefix,
// with per-trajectory (min, max) summaries that let interval queries
// skip entire trajectories without touching the compressed blob.
package tempo

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// BlockSize is the checkpoint spacing: At decodes at most BlockSize
// varints. 64 keeps the checkpoint overhead near 2 bits/entry while
// making random access ~len/128 times cheaper than a prefix decode on
// average.
const BlockSize = 64

// Store holds one timestamp column per trajectory, delta-compressed
// with absolute checkpoints every BlockSize entries.
type Store struct {
	// blob holds zig-zag varint deltas, all trajectories back to back.
	blob []byte
	// starts[k] is the byte offset of trajectory k's column. int64:
	// int32 silently overflowed once the blob crossed 2 GiB — exactly
	// the massive-corpus regime the store exists for.
	starts []int64
	// lens[k] is the entry count of trajectory k.
	lens []int32
	// Checkpoints: for column k and block b >= 1, entry
	// ckStart[k]+b-1 records the absolute timestamp of element
	// b*BlockSize and the byte offset (relative to starts[k]) just
	// past its varint, so decoding resumes mid-column. Block 0 needs
	// none (prev = 0 at the column start).
	ckTime  []int64
	ckOff   []int64
	ckStart []int64 // len = NumTrajectories()+1; column k owns [ckStart[k], ckStart[k+1])
	// Per-trajectory summaries for interval pushdown. An empty column
	// has min > max so it never intersects any interval.
	mins, maxs []int64
	// atSteps counts varint decodes performed by At (instrumentation
	// for early-exit and checkpoint regression tests).
	atSteps atomic.Int64
}

// ErrCorrupt reports a blob that does not decode to the declared
// column shape.
var ErrCorrupt = errors.New("tempo: corrupt timestamp store")

// New builds a store. times[k][i] is the entry time (any int64 clock)
// of trajectory k's i-th edge; len(times[k]) must equal the trajectory
// length. Timestamps need not be monotone (zig-zag coding), though
// they almost always are, which is what makes deltas small.
func New(times [][]int64) *Store {
	var blob []byte
	lens := make([]int32, len(times))
	var buf [binary.MaxVarintLen64]byte
	for k, col := range times {
		lens[k] = int32(len(col))
		prev := int64(0)
		for _, t := range col {
			n := binary.PutVarint(buf[:], t-prev)
			blob = append(blob, buf[:n]...)
			prev = t
		}
	}
	s, err := derive(blob, lens)
	if err != nil {
		// derive can only fail on a blob it did not just encode.
		panic(fmt.Sprintf("tempo: %v", err))
	}
	return s
}

// derive walks the blob once, validating that it decodes to exactly
// the declared column lengths while building the random-access
// structures (starts, checkpoints, min/max summaries). It is the
// single decoder both New and Load funnel through, so a Store that
// exists is a Store whose blob is known well-formed — Column and At
// cannot hit a corrupt varint afterwards.
func derive(blob []byte, lens []int32) (*Store, error) {
	s := &Store{
		blob:    blob,
		lens:    lens,
		starts:  make([]int64, len(lens)),
		ckStart: make([]int64, len(lens)+1),
		mins:    make([]int64, len(lens)),
		maxs:    make([]int64, len(lens)),
	}
	pos := 0
	for k, l := range lens {
		if l < 0 {
			return nil, fmt.Errorf("%w: negative length for column %d", ErrCorrupt, k)
		}
		s.starts[k] = int64(pos)
		s.ckStart[k] = int64(len(s.ckTime))
		prev := int64(0)
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for i := int32(0); i < l; i++ {
			d, n := binary.Varint(blob[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: column %d truncated at entry %d", ErrCorrupt, k, i)
			}
			pos += n
			prev += d
			if prev < lo {
				lo = prev
			}
			if prev > hi {
				hi = prev
			}
			if i > 0 && i%BlockSize == 0 {
				s.ckTime = append(s.ckTime, prev)
				s.ckOff = append(s.ckOff, int64(pos)-s.starts[k])
			}
		}
		s.mins[k], s.maxs[k] = lo, hi
	}
	s.ckStart[len(lens)] = int64(len(s.ckTime))
	if pos != len(blob) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(blob)-pos)
	}
	return s, nil
}

// NumTrajectories returns the number of columns.
func (s *Store) NumTrajectories() int { return len(s.starts) }

// Len returns the entry count of trajectory k.
func (s *Store) Len(k int) int { return int(s.lens[k]) }

// MinMax returns the smallest and largest timestamp of trajectory k.
// An interval query skips column k entirely when [from, to] does not
// intersect [min, max] — no blob bytes are touched. For an empty
// column min > max, so it intersects nothing.
func (s *Store) MinMax(k int) (min, max int64) { return s.mins[k], s.maxs[k] }

// Column decodes the full timestamp column of trajectory k.
func (s *Store) Column(k int) []int64 {
	out := make([]int64, s.lens[k])
	pos := s.starts[k]
	prev := int64(0)
	for i := range out {
		d, n := binary.Varint(s.blob[pos:])
		pos += int64(n)
		prev += d
		out[i] = prev
	}
	return out
}

// At returns the timestamp of trajectory k's edge i, decoding at most
// BlockSize varints: it resumes from the nearest preceding checkpoint
// instead of the column start.
func (s *Store) At(k, i int) int64 {
	v, _ := s.AtCounted(k, i)
	return v
}

// AtCounted is At plus the number of varint decodes this one probe
// performed — the per-probe decode cost the serving layers account
// against queries. The store-global AtSteps counter accumulates the
// same quantity across probes.
func (s *Store) AtCounted(k, i int) (v int64, decodes int) {
	if i < 0 || i >= int(s.lens[k]) {
		panic(fmt.Sprintf("tempo: At(%d,%d) out of range [0,%d)", k, i, s.lens[k]))
	}
	pos := s.starts[k]
	prev := int64(0)
	steps := i + 1
	if b := i / BlockSize; b > 0 {
		ck := s.ckStart[k] + int64(b) - 1
		prev = s.ckTime[ck]
		pos += s.ckOff[ck]
		steps = i - b*BlockSize
	}
	s.atSteps.Add(int64(steps))
	for j := 0; j < steps; j++ {
		d, n := binary.Varint(s.blob[pos:])
		pos += int64(n)
		prev += d
	}
	return prev, steps
}

// AtSteps returns the cumulative number of varint decodes performed by
// At since construction (or the last ResetAtSteps). Tests use it to
// prove that checkpointed access and limit early-exit actually bound
// the decode work.
func (s *Store) AtSteps() int64 { return s.atSteps.Load() }

// ResetAtSteps zeroes the At decode counter.
func (s *Store) ResetAtSteps() { s.atSteps.Store(0) }

// SizeBits returns the in-memory footprint of the compressed blob plus
// every random-access structure at its actual width.
func (s *Store) SizeBits() int {
	return len(s.blob)*8 +
		len(s.starts)*64 + len(s.lens)*32 +
		len(s.ckTime)*64 + len(s.ckOff)*64 + len(s.ckStart)*64 +
		(len(s.mins)+len(s.maxs))*64
}

// Save writes the store. The on-disk layout carries only the blob and
// column lengths — checkpoints, summaries and offsets are derived at
// Load — so files written before the block-structured rework load
// identically and files written now load in pre-rework readers.
func (s *Store) Save(w io.Writer) (int64, error) {
	var n int64
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := w.Write(buf[:k])
		return err
	}
	if err := put(uint64(len(s.starts))); err != nil {
		return n, err
	}
	for k := range s.starts {
		if err := put(uint64(s.lens[k])); err != nil {
			return n, err
		}
	}
	if err := put(uint64(len(s.blob))); err != nil {
		return n, err
	}
	m, err := w.Write(s.blob)
	return n + int64(m), err
}

// Load reads a store written by Save, validating the whole blob: every
// column must decode to exactly its declared length with no trailing
// bytes, so corruption surfaces here as ErrCorrupt instead of as a
// panic inside a later At or Column on a serving goroutine.
func Load(r *bufio.Reader) (*Store, error) {
	nTraj, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tempo: %w", err)
	}
	if nTraj > math.MaxInt32 {
		return nil, fmt.Errorf("%w: column count %d", ErrCorrupt, nTraj)
	}
	// Grow lens as lengths actually arrive rather than trusting nTraj
	// with one huge up-front allocation: a corrupt count then fails at
	// the read, not in make.
	lens := make([]int32, 0, min(int(nTraj), 1<<20))
	var entries int64
	for k := 0; k < int(nTraj); k++ {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("tempo: %w", err)
		}
		if l > math.MaxInt32 {
			return nil, fmt.Errorf("%w: column %d length %d", ErrCorrupt, k, l)
		}
		lens = append(lens, int32(l))
		entries += int64(l)
		if entries > math.MaxInt64/binary.MaxVarintLen64 {
			return nil, fmt.Errorf("%w: %d total entries", ErrCorrupt, entries)
		}
	}
	blobLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("tempo: %w", err)
	}
	// Every entry takes 1..MaxVarintLen64 blob bytes, so a declared
	// length outside that envelope is corruption — reject it before
	// allocating, not by panicking in make or OOMing on a lie.
	if int64(blobLen) < entries || int64(blobLen) > entries*binary.MaxVarintLen64 {
		return nil, fmt.Errorf("%w: blob length %d for %d entries", ErrCorrupt, blobLen, entries)
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("tempo: %w", err)
	}
	return derive(blob, lens)
}
