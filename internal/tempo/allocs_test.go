package tempo

import (
	"math/rand"
	"testing"
)

// TestHotPathAllocs asserts that At (the checkpointed timestamp probe
// behind every interval-filtered hit) and MinMax (the per-trajectory
// summary prune) allocate nothing.
func TestHotPathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	cols := make([][]int64, 20)
	for k := range cols {
		l := 1 + rng.Intn(400)
		col := make([]int64, l)
		ts := rng.Int63n(1 << 40)
		for i := range col {
			ts += rng.Int63n(1000)
			col[i] = ts
		}
		cols[k] = col
	}
	s := New(cols)
	var sink int64
	if got := testing.AllocsPerRun(200, func() {
		for k := range cols {
			sink += s.At(k, len(cols[k])-1)
		}
	}); got != 0 {
		t.Errorf("At: %v allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		for k := range cols {
			lo, hi := s.MinMax(k)
			sink += lo + hi
		}
	}); got != 0 {
		t.Errorf("MinMax: %v allocs/op, want 0", got)
	}
	// AtCounted is the stats-accounted probe the Search hot path uses;
	// surfacing the decode count must not cost an allocation either.
	if got := testing.AllocsPerRun(200, func() {
		for k := range cols {
			v, steps := s.AtCounted(k, len(cols[k])-1)
			sink += v + int64(steps)
		}
	}); got != 0 {
		t.Errorf("AtCounted: %v allocs/op, want 0", got)
	}
	_ = sink
}
