package tempo

import (
	"fmt"

	"cinct/internal/flat"
)

// Flat (v3) form. Unlike Save — which carries only blob+lens and
// re-derives everything with an O(entries) decode at Load — the flat
// form carries the derived structures (starts, checkpoints, summaries)
// so a view opens without touching the blob. ViewFlat validates the
// shape relations At indexes by in O(columns + checkpoints): every
// checkpoint and column start must land inside the blob, and the
// checkpoint table must be exactly contiguous. A blob whose *contents*
// were tampered with then decodes to wrong timestamps, but every
// access stays inside the mapping: At and Column advance their byte
// position only by what binary.Varint actually consumed, which never
// exceeds the slice it was handed.

// AppendFlat writes the store, derived structures included.
func (s *Store) AppendFlat(w *flat.Writer) {
	w.U8s(s.blob)
	w.I64s(s.starts)
	w.I32s(s.lens)
	w.I64s(s.ckTime)
	w.I64s(s.ckOff)
	w.I64s(s.ckStart)
	w.I64s(s.mins)
	w.I64s(s.maxs)
}

// ViewFlat wraps a flat store in place.
func ViewFlat(c *flat.Cursor) (*Store, error) {
	s := &Store{
		blob:    c.U8s(),
		starts:  c.I64s(),
		lens:    c.I32s(),
		ckTime:  c.I64s(),
		ckOff:   c.I64s(),
		ckStart: c.I64s(),
		mins:    c.I64s(),
		maxs:    c.I64s(),
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	nTraj := len(s.starts)
	nCk := len(s.ckTime)
	if len(s.lens) != nTraj || len(s.mins) != nTraj || len(s.maxs) != nTraj ||
		len(s.ckOff) != nCk || len(s.ckStart) != nTraj+1 {
		return nil, fmt.Errorf("%w: flat table lengths", ErrCorrupt)
	}
	if s.ckStart[0] != 0 || s.ckStart[nTraj] != int64(nCk) {
		return nil, fmt.Errorf("%w: checkpoint table spans [%d,%d) for %d checkpoints",
			ErrCorrupt, s.ckStart[0], s.ckStart[nTraj], nCk)
	}
	blobLen := int64(len(s.blob))
	for k := 0; k < nTraj; k++ {
		l := int64(s.lens[k])
		if l < 0 {
			return nil, fmt.Errorf("%w: negative length for column %d", ErrCorrupt, k)
		}
		end := blobLen
		if k+1 < nTraj {
			end = s.starts[k+1]
		}
		// Each entry is at least one varint byte, so the column's byte
		// range must hold at least l bytes.
		if s.starts[k] < 0 || s.starts[k] > end || end-s.starts[k] < l || end > blobLen {
			return nil, fmt.Errorf("%w: column %d spans [%d,%d) with %d entries in %d-byte blob",
				ErrCorrupt, k, s.starts[k], end, l, blobLen)
		}
		nBlocks := int64(0)
		if l > 0 {
			nBlocks = (l - 1) / BlockSize
		}
		if s.ckStart[k+1] != s.ckStart[k]+nBlocks {
			return nil, fmt.Errorf("%w: column %d has %d checkpoints, want %d",
				ErrCorrupt, k, s.ckStart[k+1]-s.ckStart[k], nBlocks)
		}
		for ck := s.ckStart[k]; ck < s.ckStart[k+1]; ck++ {
			// Compare by subtraction from blobLen (starts[k] <= blobLen is
			// already validated) so a huge ckOff cannot wrap the sum negative.
			if s.ckOff[ck] < 0 || s.ckOff[ck] > blobLen-s.starts[k] {
				return nil, fmt.Errorf("%w: column %d checkpoint %d offset %d",
					ErrCorrupt, k, ck-s.ckStart[k], s.ckOff[ck])
			}
		}
	}
	return s, nil
}
