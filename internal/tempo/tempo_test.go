package tempo

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

func randomColumns(rng *rand.Rand, n int) [][]int64 {
	out := make([][]int64, n)
	for k := range out {
		l := 1 + rng.Intn(40)
		col := make([]int64, l)
		t := int64(1600000000) + rng.Int63n(1e6)
		for i := range col {
			t += rng.Int63n(120) // seconds between edges
			col[i] = t
		}
		out[k] = col
	}
	return out
}

func TestColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	times := randomColumns(rng, 50)
	s := New(times)
	if s.NumTrajectories() != 50 {
		t.Fatalf("NumTrajectories = %d", s.NumTrajectories())
	}
	for k, want := range times {
		if s.Len(k) != len(want) {
			t.Fatalf("Len(%d) = %d", k, s.Len(k))
		}
		got := s.Column(k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Column(%d)[%d] = %d, want %d", k, i, got[i], want[i])
			}
		}
		for i := range want {
			if at := s.At(k, i); at != want[i] {
				t.Fatalf("At(%d,%d) = %d, want %d", k, i, at, want[i])
			}
		}
	}
}

func TestNonMonotoneTimestamps(t *testing.T) {
	times := [][]int64{{100, 50, -3, 50, 100}}
	s := New(times)
	got := s.Column(0)
	for i, want := range times[0] {
		if got[i] != want {
			t.Fatalf("non-monotone column broken at %d", i)
		}
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	times := randomColumns(rng, 500)
	s := New(times)
	var entries int
	for _, c := range times {
		entries += len(c)
	}
	raw := entries * 64
	if s.SizeBits() >= raw/2 {
		t.Fatalf("delta coding too weak: %d bits vs %d raw", s.SizeBits(), raw)
	}
}

func TestSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	times := randomColumns(rng, 30)
	s := New(times)
	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		got := loaded.Column(k)
		for i := range times[k] {
			if got[i] != times[k][i] {
				t.Fatalf("reloaded column %d differs at %d", k, i)
			}
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	s := New([][]int64{{1, 2, 3}})
	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Load(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	s := New([][]int64{{5}})
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	s.At(0, 1)
}
