package tempo

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

func randomColumns(rng *rand.Rand, n int) [][]int64 {
	return randomColumnsMaxLen(rng, n, 40)
}

// randomColumnsMaxLen draws columns whose lengths straddle several
// checkpoint blocks when maxLen >> BlockSize.
func randomColumnsMaxLen(rng *rand.Rand, n, maxLen int) [][]int64 {
	out := make([][]int64, n)
	for k := range out {
		l := 1 + rng.Intn(maxLen)
		col := make([]int64, l)
		t := int64(1600000000) + rng.Int63n(1e6)
		for i := range col {
			t += rng.Int63n(120) // seconds between edges
			col[i] = t
		}
		out[k] = col
	}
	return out
}

func TestColumnRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	times := randomColumns(rng, 50)
	s := New(times)
	if s.NumTrajectories() != 50 {
		t.Fatalf("NumTrajectories = %d", s.NumTrajectories())
	}
	for k, want := range times {
		if s.Len(k) != len(want) {
			t.Fatalf("Len(%d) = %d", k, s.Len(k))
		}
		got := s.Column(k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Column(%d)[%d] = %d, want %d", k, i, got[i], want[i])
			}
		}
		for i := range want {
			if at := s.At(k, i); at != want[i] {
				t.Fatalf("At(%d,%d) = %d, want %d", k, i, at, want[i])
			}
		}
	}
}

func TestNonMonotoneTimestamps(t *testing.T) {
	times := [][]int64{{100, 50, -3, 50, 100}}
	s := New(times)
	got := s.Column(0)
	for i, want := range times[0] {
		if got[i] != want {
			t.Fatalf("non-monotone column broken at %d", i)
		}
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	times := randomColumns(rng, 500)
	s := New(times)
	var entries int
	for _, c := range times {
		entries += len(c)
	}
	raw := entries * 64
	if s.SizeBits() >= raw/2 {
		t.Fatalf("delta coding too weak: %d bits vs %d raw", s.SizeBits(), raw)
	}
}

func TestSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	times := randomColumns(rng, 30)
	s := New(times)
	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for k := range times {
		got := loaded.Column(k)
		for i := range times[k] {
			if got[i] != times[k][i] {
				t.Fatalf("reloaded column %d differs at %d", k, i)
			}
		}
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	s := New([][]int64{{1, 2, 3}})
	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := Load(bufio.NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// TestAtMatchesColumnProperty is the checkpoint correctness property:
// for random columns spanning many blocks (and non-monotone deltas),
// every At(k, i) must equal the full Column decode at i.
func TestAtMatchesColumnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		times := randomColumnsMaxLen(rng, 8, 6*BlockSize)
		// Mix in non-monotone columns: deltas may be negative.
		for _, col := range times {
			for i := range col {
				if rng.Intn(4) == 0 {
					col[i] -= rng.Int63n(500)
				}
			}
		}
		s := New(times)
		for k := range times {
			col := s.Column(k)
			for i := range col {
				if at := s.At(k, i); at != col[i] {
					t.Fatalf("trial %d: At(%d,%d) = %d, Column = %d", trial, k, i, at, col[i])
				}
			}
		}
	}
}

// TestAtDecodesAtMostOneBlock pins the whole point of the checkpoint
// rework: a probe at the end of a long column must decode O(BlockSize)
// varints, not the O(offset) prefix.
func TestAtDecodesAtMostOneBlock(t *testing.T) {
	col := make([]int64, 50*BlockSize)
	for i := range col {
		col[i] = int64(1000 * i)
	}
	s := New([][]int64{col})
	for _, i := range []int{0, BlockSize - 1, BlockSize, 7 * BlockSize, len(col) - 1} {
		s.ResetAtSteps()
		if at := s.At(0, i); at != col[i] {
			t.Fatalf("At(0,%d) = %d, want %d", i, at, col[i])
		}
		if steps := s.AtSteps(); steps > BlockSize {
			t.Fatalf("At(0,%d) decoded %d varints, want <= %d", i, steps, BlockSize)
		}
	}
}

func TestMinMax(t *testing.T) {
	s := New([][]int64{{100, 50, 300, 7}, {42}})
	if lo, hi := s.MinMax(0); lo != 7 || hi != 300 {
		t.Fatalf("MinMax(0) = (%d, %d), want (7, 300)", lo, hi)
	}
	if lo, hi := s.MinMax(1); lo != 42 || hi != 42 {
		t.Fatalf("MinMax(1) = (%d, %d), want (42, 42)", lo, hi)
	}
	// Empty columns must intersect no interval.
	if lo, hi := New([][]int64{{}}).MinMax(0); lo <= hi {
		t.Fatalf("empty column MinMax = (%d, %d), want min > max", lo, hi)
	}
}

// TestLoadRejectsCorruptBlob flips blob bytes so columns no longer
// decode to their declared lengths; Load must fail (the serving path
// relies on load-time validation to keep At/Column panic-free).
func TestLoadRejectsCorruptBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := New(randomColumnsMaxLen(rng, 5, 200))
	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rejected := 0
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(nil), full...)
		// Mutate within the blob region (skip the tiny header) to a
		// continuation byte, stretching varints past the declared shape.
		mut[len(mut)-1-rng.Intn(len(mut)/2)] = 0x80
		if _, err := Load(bufio.NewReader(bytes.NewReader(mut))); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no corrupted blob was rejected")
	}
}

func TestSizeBitsAccountsOffsets(t *testing.T) {
	s := New([][]int64{{1, 2, 3}, {4}})
	// At minimum: 64-bit starts, 32-bit lens, 64-bit min/max summaries.
	if s.SizeBits() < 2*64+2*32+4*64 {
		t.Fatalf("SizeBits = %d accounts less than the offset structures", s.SizeBits())
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	s := New([][]int64{{5}})
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	s.At(0, 1)
}
