package mapmatch

import (
	"errors"
	"math/rand"
	"testing"

	"cinct/internal/roadnet"
)

// truePath builds a connected random walk of the given length,
// avoiding immediate U-turns: the two directions of one street are
// geometrically identical, so a U-turn is unrecoverable for any
// position-only map matcher (including Newson–Krumm).
func truePath(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []roadnet.EdgeID{cur}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			choices = g.NextEdges(cur)
			if len(choices) == 0 {
				break
			}
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, cur)
	}
	return path
}

func connected(g *roadnet.Graph, path []roadnet.EdgeID) bool {
	for i := 1; i < len(path); i++ {
		ok := false
		for _, nx := range g.NextEdges(path[i-1]) {
			if nx == path[i] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestMatchRecoversCleanTrace(t *testing.T) {
	g := roadnet.Grid(8, 8, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		path := truePath(g, rng, 12)
		pts := SimulateTrace(g, path, 0.01, rng) // nearly noise-free
		got, ok := Match(g, pts, DefaultConfig())
		if !ok {
			t.Fatalf("trial %d: match failed", trial)
		}
		if !connected(g, got) {
			t.Fatalf("trial %d: matched path is not connected", trial)
		}
		// With negligible noise, the match must recover the exact path.
		if len(got) != len(path) {
			t.Fatalf("trial %d: matched %d edges, want %d (%v vs %v)",
				trial, len(got), len(path), got, path)
		}
		for i := range path {
			if got[i] != path[i] {
				t.Fatalf("trial %d: edge %d mismatch", trial, i)
			}
		}
	}
}

func TestMatchNoisyTraceIsConnectedAndClose(t *testing.T) {
	g := roadnet.Grid(10, 10, 3)
	rng := rand.New(rand.NewSource(4))
	okCount, totalEdges, correctEdges := 0, 0, 0
	for trial := 0; trial < 15; trial++ {
		path := truePath(g, rng, 15)
		pts := SimulateTrace(g, path, 0.12, rng)
		got, ok := Match(g, pts, DefaultConfig())
		if !ok {
			continue
		}
		okCount++
		if !connected(g, got) {
			t.Fatalf("trial %d: matched path is not connected", trial)
		}
		// Count how many true edges appear in the match (recall proxy).
		inGot := map[roadnet.EdgeID]bool{}
		for _, e := range got {
			inGot[e] = true
		}
		for _, e := range path {
			totalEdges++
			if inGot[e] {
				correctEdges++
			}
		}
	}
	if okCount < 10 {
		t.Fatalf("only %d/15 traces matched", okCount)
	}
	if recall := float64(correctEdges) / float64(totalEdges); recall < 0.7 {
		t.Fatalf("recall %.2f too low for moderate noise", recall)
	}
}

func TestMatchFailsFarFromNetwork(t *testing.T) {
	g := roadnet.Grid(4, 4, 5)
	pts := []Point{{100, 100}, {101, 101}}
	if _, ok := Match(g, pts, DefaultConfig()); ok {
		t.Fatal("points far from any edge should not match")
	}
	if _, ok := Match(g, nil, DefaultConfig()); ok {
		t.Fatal("empty trace should not match")
	}
}

func TestHopDistance(t *testing.T) {
	g := roadnet.Grid(5, 5, 6)
	e := roadnet.EdgeID(0)
	if d, ok := hopDistance(g, e, e, 3); !ok || d != 0 {
		t.Fatalf("hopDistance(e,e) = %d,%v", d, ok)
	}
	for _, nx := range g.NextEdges(e) {
		if d, ok := hopDistance(g, e, nx, 3); !ok || d != 1 {
			t.Fatalf("hopDistance to direct successor = %d,%v", d, ok)
		}
	}
}

// TestMatchTraceRejects drives MatchTrace through the reject-reason
// catalog with a table of malformed traces: empty, endpoints off the
// network (must fail typed, never silently truncate), interior
// dropouts below/at/over MaxGap, and fully off-network traces.
func TestMatchTraceRejects(t *testing.T) {
	g := roadnet.Grid(6, 6, 9)
	rng := rand.New(rand.NewSource(11))
	path := truePath(g, rng, 8)
	clean := SimulateTrace(g, path, 0.02, rng)
	far := Point{100, 100}

	withFirstFar := append([]Point{far}, clean...)
	withLastFar := append(append([]Point{}, clean...), far)
	gap1 := append(append(append([]Point{}, clean[:4]...), far), clean[4:]...)
	gap3 := append(append(append([]Point{}, clean[:4]...), far, far, far), clean[4:]...)

	cfgGap := DefaultConfig()
	cfgGap.MaxGap = 2

	cases := []struct {
		name   string
		pts    []Point
		cfg    Config
		reason Reason
		point  int // -1: don't check
	}{
		{"empty trace", nil, DefaultConfig(), RejectEmptyTrace, -1},
		{"all points off network", []Point{far, {101, 101}}, DefaultConfig(), RejectNoCandidates, 0},
		{"first point off network", withFirstFar, cfgGap, RejectNoCandidates, 0},
		{"last point off network", withLastFar, cfgGap, RejectNoCandidates, len(withLastFar) - 1},
		{"interior dropout, skipping disabled", gap1, DefaultConfig(), RejectNoCandidates, 4},
		{"interior dropout run over MaxGap", gap3, cfgGap, RejectGapTooLong, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MatchTrace(g, tc.pts, tc.cfg)
			var rej *RejectError
			if !errors.As(err, &rej) {
				t.Fatalf("MatchTrace = %v, want *RejectError", err)
			}
			if rej.Reason != tc.reason {
				t.Fatalf("reason = %q, want %q", rej.Reason, tc.reason)
			}
			if tc.point >= 0 && rej.Point != tc.point {
				t.Fatalf("point = %d, want %d", rej.Point, tc.point)
			}
			if p, ok := Match(g, tc.pts, tc.cfg); ok {
				t.Fatalf("Match accepted a rejected trace: %v", p)
			}
		})
	}
}

// TestMatchTraceSkipsGaps checks that an interior dropout within
// MaxGap is skipped and the full path is still recovered.
func TestMatchTraceSkipsGaps(t *testing.T) {
	g := roadnet.Grid(8, 8, 12)
	rng := rand.New(rand.NewSource(13))
	cfg := DefaultConfig()
	cfg.MaxGap = 2
	for trial := 0; trial < 8; trial++ {
		path := truePath(g, rng, 10)
		pts := SimulateTrace(g, path, 0.02, rng)
		// Drop out two interior points (replace with far-off noise).
		pts[4] = Point{200, 200}
		pts[5] = Point{200, 201}
		r, err := MatchTrace(g, pts, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Skipped != 2 {
			t.Fatalf("trial %d: skipped = %d, want 2", trial, r.Skipped)
		}
		if !connected(g, r.Path) {
			t.Fatalf("trial %d: path not connected", trial)
		}
		inGot := map[roadnet.EdgeID]bool{}
		for _, e := range r.Path {
			inGot[e] = true
		}
		// Endpoints are anchored, so first and last true edges must be
		// present even with the interior dropout.
		if !inGot[path[0]] || !inGot[path[len(path)-1]] {
			t.Fatalf("trial %d: endpoints missing from %v (want %v)", trial, r.Path, path)
		}
	}
}

// TestMatchTracePointIdx checks the observation attribution invariants
// on noisy traces: aligned lengths, -1 only on connectors, anchor
// indexes strictly increasing, endpoints anchored.
func TestMatchTracePointIdx(t *testing.T) {
	g := roadnet.Grid(10, 10, 14)
	rng := rand.New(rand.NewSource(15))
	matched := 0
	for trial := 0; trial < 10; trial++ {
		path := truePath(g, rng, 12)
		pts := SimulateTrace(g, path, 0.08, rng)
		r, err := MatchTrace(g, pts, DefaultConfig())
		if err != nil {
			continue
		}
		matched++
		if len(r.PointIdx) != len(r.Path) {
			t.Fatalf("trial %d: PointIdx len %d != Path len %d", trial, len(r.PointIdx), len(r.Path))
		}
		lastAnchor := -1
		for i, pi := range r.PointIdx {
			if pi == -1 {
				continue
			}
			if pi <= lastAnchor {
				t.Fatalf("trial %d: anchor %d at %d not increasing (prev %d)", trial, pi, i, lastAnchor)
			}
			if pi >= len(pts) {
				t.Fatalf("trial %d: anchor %d out of range", trial, pi)
			}
			lastAnchor = pi
		}
		if r.PointIdx[0] == -1 {
			t.Fatalf("trial %d: first edge unanchored", trial)
		}
		if r.PointIdx[len(r.PointIdx)-1] == -1 {
			t.Fatalf("trial %d: last edge unanchored", trial)
		}
	}
	if matched < 7 {
		t.Fatalf("only %d/10 traces matched", matched)
	}
}

// TestMatchTraceAmbiguity: with a huge margin every multi-candidate
// trace is "ambiguous" only if the runner-up decodes differently, so a
// clean trace still matches; and a rejected-one carries the typed
// reason.
func TestMatchTraceAmbiguity(t *testing.T) {
	g := roadnet.Grid(8, 8, 16)
	rng := rand.New(rand.NewSource(17))
	cfg := DefaultConfig()
	cfg.MinMargin = 1e9 // any differing runner-up within this margin rejects
	sawAmbiguous := false
	sawAccept := false
	for trial := 0; trial < 30; trial++ {
		path := truePath(g, rng, 10)
		pts := SimulateTrace(g, path, 0.10, rng)
		_, err := MatchTrace(g, pts, cfg)
		if err == nil {
			sawAccept = true
			continue
		}
		var rej *RejectError
		if errors.As(err, &rej) && rej.Reason == RejectAmbiguous {
			sawAmbiguous = true
		}
	}
	if !sawAmbiguous {
		t.Fatal("no trace rejected as ambiguous at an extreme margin")
	}
	_ = sawAccept // noisy grids may legitimately reject everything at this margin
	// A margin of 0 disables the check entirely.
	cfg.MinMargin = 0
	okCount := 0
	for trial := 0; trial < 10; trial++ {
		path := truePath(g, rng, 10)
		pts := SimulateTrace(g, path, 0.05, rng)
		if _, err := MatchTrace(g, pts, cfg); err == nil {
			okCount++
		}
	}
	if okCount < 7 {
		t.Fatalf("only %d/10 matched with ambiguity check disabled", okCount)
	}
}

func TestSimulateTraceNearPath(t *testing.T) {
	g := roadnet.Grid(6, 6, 7)
	rng := rand.New(rand.NewSource(8))
	path := truePath(g, rng, 10)
	pts := SimulateTrace(g, path, 0.05, rng)
	if len(pts) != len(path) {
		t.Fatalf("%d points for %d edges", len(pts), len(path))
	}
	for i, p := range pts {
		if d := g.PointToEdgeDistance(p.X, p.Y, path[i]); d > 0.5 {
			t.Fatalf("point %d is %.2f away from its edge", i, d)
		}
	}
}
