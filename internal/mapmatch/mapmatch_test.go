package mapmatch

import (
	"math/rand"
	"testing"

	"cinct/internal/roadnet"
)

// truePath builds a connected random walk of the given length,
// avoiding immediate U-turns: the two directions of one street are
// geometrically identical, so a U-turn is unrecoverable for any
// position-only map matcher (including Newson–Krumm).
func truePath(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []roadnet.EdgeID{cur}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			choices = g.NextEdges(cur)
			if len(choices) == 0 {
				break
			}
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, cur)
	}
	return path
}

func connected(g *roadnet.Graph, path []roadnet.EdgeID) bool {
	for i := 1; i < len(path); i++ {
		ok := false
		for _, nx := range g.NextEdges(path[i-1]) {
			if nx == path[i] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func TestMatchRecoversCleanTrace(t *testing.T) {
	g := roadnet.Grid(8, 8, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		path := truePath(g, rng, 12)
		pts := SimulateTrace(g, path, 0.01, rng) // nearly noise-free
		got, ok := Match(g, pts, DefaultConfig())
		if !ok {
			t.Fatalf("trial %d: match failed", trial)
		}
		if !connected(g, got) {
			t.Fatalf("trial %d: matched path is not connected", trial)
		}
		// With negligible noise, the match must recover the exact path.
		if len(got) != len(path) {
			t.Fatalf("trial %d: matched %d edges, want %d (%v vs %v)",
				trial, len(got), len(path), got, path)
		}
		for i := range path {
			if got[i] != path[i] {
				t.Fatalf("trial %d: edge %d mismatch", trial, i)
			}
		}
	}
}

func TestMatchNoisyTraceIsConnectedAndClose(t *testing.T) {
	g := roadnet.Grid(10, 10, 3)
	rng := rand.New(rand.NewSource(4))
	okCount, totalEdges, correctEdges := 0, 0, 0
	for trial := 0; trial < 15; trial++ {
		path := truePath(g, rng, 15)
		pts := SimulateTrace(g, path, 0.12, rng)
		got, ok := Match(g, pts, DefaultConfig())
		if !ok {
			continue
		}
		okCount++
		if !connected(g, got) {
			t.Fatalf("trial %d: matched path is not connected", trial)
		}
		// Count how many true edges appear in the match (recall proxy).
		inGot := map[roadnet.EdgeID]bool{}
		for _, e := range got {
			inGot[e] = true
		}
		for _, e := range path {
			totalEdges++
			if inGot[e] {
				correctEdges++
			}
		}
	}
	if okCount < 10 {
		t.Fatalf("only %d/15 traces matched", okCount)
	}
	if recall := float64(correctEdges) / float64(totalEdges); recall < 0.7 {
		t.Fatalf("recall %.2f too low for moderate noise", recall)
	}
}

func TestMatchFailsFarFromNetwork(t *testing.T) {
	g := roadnet.Grid(4, 4, 5)
	pts := []Point{{100, 100}, {101, 101}}
	if _, ok := Match(g, pts, DefaultConfig()); ok {
		t.Fatal("points far from any edge should not match")
	}
	if _, ok := Match(g, nil, DefaultConfig()); ok {
		t.Fatal("empty trace should not match")
	}
}

func TestHopDistance(t *testing.T) {
	g := roadnet.Grid(5, 5, 6)
	e := roadnet.EdgeID(0)
	if d, ok := hopDistance(g, e, e, 3); !ok || d != 0 {
		t.Fatalf("hopDistance(e,e) = %d,%v", d, ok)
	}
	for _, nx := range g.NextEdges(e) {
		if d, ok := hopDistance(g, e, nx, 3); !ok || d != 1 {
			t.Fatalf("hopDistance to direct successor = %d,%v", d, ok)
		}
	}
}

func TestSimulateTraceNearPath(t *testing.T) {
	g := roadnet.Grid(6, 6, 7)
	rng := rand.New(rand.NewSource(8))
	path := truePath(g, rng, 10)
	pts := SimulateTrace(g, path, 0.05, rng)
	if len(pts) != len(path) {
		t.Fatalf("%d points for %d edges", len(pts), len(path))
	}
	for i, p := range pts {
		if d := g.PointToEdgeDistance(p.X, p.Y, path[i]); d > 0.5 {
			t.Fatalf("point %d is %.2f away from its edge", i, d)
		}
	}
}
