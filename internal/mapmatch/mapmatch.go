// Package mapmatch implements Viterbi-based hidden-Markov-model map
// matching in the style of Newson and Krumm (GIS 2009): noisy GPS
// points are snapped to road edges by combining an emission model
// (Gaussian in point-to-edge distance) with a transition model that
// penalizes detours (network hop distance between consecutive candidate
// edges). The paper's Roma dataset is produced by exactly this kind of
// pipeline; here it turns our synthetic noisy GPS traces back into
// NCTs.
package mapmatch

import (
	"math"
	"math/rand"

	"cinct/internal/roadnet"
)

// Point is one GPS observation.
type Point struct {
	X, Y float64
}

// Config tunes the matcher.
type Config struct {
	// SigmaGPS is the standard deviation of GPS noise (emission model).
	SigmaGPS float64
	// CandidateRadius bounds the candidate edges per point.
	CandidateRadius float64
	// MaxHops bounds the network distance (in edges) between the
	// matched edges of consecutive points.
	MaxHops int
	// HopPenalty is the per-hop log-space transition penalty.
	HopPenalty float64
}

// DefaultConfig is tuned for unit-length grid edges.
func DefaultConfig() Config {
	return Config{SigmaGPS: 0.15, CandidateRadius: 0.8, MaxHops: 4, HopPenalty: 0.6}
}

// SimulateTrace samples GPS points along a path of edges: one point per
// edge at a random position, displaced by Gaussian noise. It is the
// synthetic stand-in for a real GPS trace of the paper's Roma taxis.
func SimulateTrace(g *roadnet.Graph, path []roadnet.EdgeID, noise float64, rng *rand.Rand) []Point {
	pts := make([]Point, 0, len(path))
	for _, e := range path {
		t := 0.2 + 0.6*rng.Float64()
		x, y := g.PointAlongEdge(e, t)
		pts = append(pts, Point{
			X: x + rng.NormFloat64()*noise,
			Y: y + rng.NormFloat64()*noise,
		})
	}
	return pts
}

// spatialIndex buckets edge midpoints on a uniform grid for candidate
// lookup.
type spatialIndex struct {
	g       *roadnet.Graph
	cell    float64
	buckets map[[2]int][]roadnet.EdgeID
}

func newSpatialIndex(g *roadnet.Graph, cell float64) *spatialIndex {
	si := &spatialIndex{g: g, cell: cell, buckets: make(map[[2]int][]roadnet.EdgeID)}
	for _, e := range g.Edges {
		x, y := g.EdgeMidpoint(e.ID)
		k := [2]int{int(math.Floor(x / cell)), int(math.Floor(y / cell))}
		si.buckets[k] = append(si.buckets[k], e.ID)
	}
	return si
}

// near returns edges whose segment lies within radius of (x, y).
func (si *spatialIndex) near(x, y, radius float64) []roadnet.EdgeID {
	var out []roadnet.EdgeID
	r := int(math.Ceil(radius/si.cell)) + 1
	cx, cy := int(math.Floor(x/si.cell)), int(math.Floor(y/si.cell))
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, e := range si.buckets[[2]int{cx + dx, cy + dy}] {
				if si.g.PointToEdgeDistance(x, y, e) <= radius {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// hopDistance returns the number of edge transitions needed to go from
// edge a to edge b (0 if a == b, 1 if b directly follows a, …), capped
// at maxHops; ok=false beyond the cap.
func hopDistance(g *roadnet.Graph, a, b roadnet.EdgeID, maxHops int) (int, bool) {
	if a == b {
		return 0, true
	}
	frontier := []roadnet.EdgeID{a}
	seen := map[roadnet.EdgeID]bool{a: true}
	for hop := 1; hop <= maxHops; hop++ {
		var next []roadnet.EdgeID
		for _, e := range frontier {
			for _, nx := range g.NextEdges(e) {
				if nx == b {
					return hop, true
				}
				if !seen[nx] {
					seen[nx] = true
					next = append(next, nx)
				}
			}
		}
		frontier = next
	}
	return 0, false
}

// Match runs Viterbi decoding over candidate edges and returns the
// matched edge path, connected through the network (consecutive
// distinct matched edges are joined by shortest paths, so the result is
// a valid NCT). ok is false when some point has no candidates or no
// connected state sequence exists.
func Match(g *roadnet.Graph, pts []Point, cfg Config) ([]roadnet.EdgeID, bool) {
	if len(pts) == 0 {
		return nil, false
	}
	si := newSpatialIndex(g, math.Max(cfg.CandidateRadius, 0.25))

	type state struct {
		edge roadnet.EdgeID
		lp   float64 // best log-probability so far
		prev int     // index into previous layer
	}
	var prevLayer []state
	var layers [][]state
	emission := func(p Point, e roadnet.EdgeID) float64 {
		d := g.PointToEdgeDistance(p.X, p.Y, e)
		return -d * d / (2 * cfg.SigmaGPS * cfg.SigmaGPS)
	}
	for i, p := range pts {
		cands := si.near(p.X, p.Y, cfg.CandidateRadius)
		if len(cands) == 0 {
			return nil, false
		}
		layer := make([]state, 0, len(cands))
		for _, e := range cands {
			em := emission(p, e)
			if i == 0 {
				layer = append(layer, state{edge: e, lp: em, prev: -1})
				continue
			}
			best := math.Inf(-1)
			bestPrev := -1
			for pi, ps := range prevLayer {
				hops, ok := hopDistance(g, ps.edge, e, cfg.MaxHops)
				if !ok {
					continue
				}
				lp := ps.lp + em - cfg.HopPenalty*float64(hops)
				if lp > best {
					best = lp
					bestPrev = pi
				}
			}
			if bestPrev >= 0 {
				layer = append(layer, state{edge: e, lp: best, prev: bestPrev})
			}
		}
		if len(layer) == 0 {
			return nil, false
		}
		layers = append(layers, layer)
		prevLayer = layer
	}
	// Backtrack the best final state.
	bestIdx, best := 0, math.Inf(-1)
	last := layers[len(layers)-1]
	for i, s := range last {
		if s.lp > best {
			best, bestIdx = s.lp, i
		}
	}
	matched := make([]roadnet.EdgeID, len(layers))
	for i, idx := len(layers)-1, bestIdx; i >= 0; i-- {
		matched[i] = layers[i][idx].edge
		idx = layers[i][idx].prev
	}
	// Stitch into a connected NCT.
	path := []roadnet.EdgeID{matched[0]}
	for i := 1; i < len(matched); i++ {
		cur := path[len(path)-1]
		nxt := matched[i]
		if nxt == cur {
			continue
		}
		mid, ok := g.ConnectEdges(cur, nxt)
		if !ok {
			return nil, false
		}
		path = append(path, mid...)
		path = append(path, nxt)
	}
	return path, true
}
