// Package mapmatch implements Viterbi-based hidden-Markov-model map
// matching in the style of Newson and Krumm (GIS 2009): noisy GPS
// points are snapped to road edges by combining an emission model
// (Gaussian in point-to-edge distance) with a transition model that
// penalizes detours (network hop distance between consecutive candidate
// edges). The paper's Roma dataset is produced by exactly this kind of
// pipeline; here it turns our synthetic noisy GPS traces back into
// NCTs.
package mapmatch

import (
	"fmt"
	"math"
	"math/rand"

	"cinct/internal/roadnet"
)

// Point is one GPS observation.
type Point struct {
	X, Y float64
}

// Config tunes the matcher.
type Config struct {
	// SigmaGPS is the standard deviation of GPS noise (emission model).
	SigmaGPS float64
	// CandidateRadius bounds the candidate edges per point.
	CandidateRadius float64
	// MaxHops bounds the network distance (in edges) between the
	// matched edges of consecutive points.
	MaxHops int
	// HopPenalty is the per-hop log-space transition penalty.
	HopPenalty float64
	// MaxGap is the longest run of consecutive interior points with no
	// candidate edge that the matcher may skip (GPS dropouts, tunnel
	// shadows). The first and last points of a trace must always have
	// candidates — a trace is never silently truncated at either end.
	// 0 disables skipping: any point without candidates rejects.
	MaxGap int
	// MinMargin, when positive, rejects ambiguous traces: if the best
	// and second-best Viterbi decodings disagree on the path and their
	// final log-probabilities differ by less than MinMargin, the trace
	// is rejected instead of committing to a coin-flip.
	MinMargin float64
}

// DefaultConfig is tuned for unit-length grid edges.
func DefaultConfig() Config {
	return Config{SigmaGPS: 0.15, CandidateRadius: 0.8, MaxHops: 4, HopPenalty: 0.6}
}

// Reason classifies why a trace was rejected.
type Reason string

// The reject-reason catalog. Every rejection carries exactly one of
// these; the GPS ingestion layer reports them verbatim on the wire.
const (
	// RejectEmptyTrace: the trace had no points.
	RejectEmptyTrace Reason = "empty_trace"
	// RejectNoCandidates: a point had no candidate edge within
	// CandidateRadius and could not be skipped (it was the first or
	// last point, or MaxGap is 0).
	RejectNoCandidates Reason = "no_candidates"
	// RejectGapTooLong: a run of more than MaxGap consecutive interior
	// points had no candidates.
	RejectGapTooLong Reason = "gap_too_long"
	// RejectDisconnected: no state sequence connects the candidate
	// edges within MaxHops, or the decoded edges cannot be stitched
	// into a connected path.
	RejectDisconnected Reason = "disconnected"
	// RejectAmbiguous: two materially different decodings score within
	// MinMargin of each other.
	RejectAmbiguous Reason = "ambiguous"
)

// RejectError is the typed failure returned by MatchTrace. Point is
// the index of the offending observation (-1 when no single point is
// at fault, e.g. an empty trace).
type RejectError struct {
	Reason Reason
	Point  int
}

func (e *RejectError) Error() string {
	if e.Point < 0 {
		return fmt.Sprintf("mapmatch: trace rejected: %s", e.Reason)
	}
	return fmt.Sprintf("mapmatch: trace rejected at point %d: %s", e.Point, e.Reason)
}

// Result is a successful match. PointIdx is aligned with Path:
// PointIdx[i] is the index of the observation whose candidate produced
// Path[i], or -1 for connector edges inserted by shortest-path
// stitching (and for edges matched only by skipped-over duplicates).
// Callers use it to interpolate per-edge timestamps from per-point
// ones.
type Result struct {
	Path     []roadnet.EdgeID
	PointIdx []int
	// Skipped counts interior points dropped as candidate-free gaps.
	Skipped int
}

// SimulateTrace samples GPS points along a path of edges: one point per
// edge at a random position, displaced by Gaussian noise. It is the
// synthetic stand-in for a real GPS trace of the paper's Roma taxis.
func SimulateTrace(g *roadnet.Graph, path []roadnet.EdgeID, noise float64, rng *rand.Rand) []Point {
	pts := make([]Point, 0, len(path))
	for _, e := range path {
		t := 0.2 + 0.6*rng.Float64()
		x, y := g.PointAlongEdge(e, t)
		pts = append(pts, Point{
			X: x + rng.NormFloat64()*noise,
			Y: y + rng.NormFloat64()*noise,
		})
	}
	return pts
}

// spatialIndex buckets edge midpoints on a uniform grid for candidate
// lookup.
type spatialIndex struct {
	g       *roadnet.Graph
	cell    float64
	buckets map[[2]int][]roadnet.EdgeID
}

func newSpatialIndex(g *roadnet.Graph, cell float64) *spatialIndex {
	si := &spatialIndex{g: g, cell: cell, buckets: make(map[[2]int][]roadnet.EdgeID)}
	for _, e := range g.Edges {
		x, y := g.EdgeMidpoint(e.ID)
		k := [2]int{int(math.Floor(x / cell)), int(math.Floor(y / cell))}
		si.buckets[k] = append(si.buckets[k], e.ID)
	}
	return si
}

// near returns edges whose segment lies within radius of (x, y).
func (si *spatialIndex) near(x, y, radius float64) []roadnet.EdgeID {
	var out []roadnet.EdgeID
	r := int(math.Ceil(radius/si.cell)) + 1
	cx, cy := int(math.Floor(x/si.cell)), int(math.Floor(y/si.cell))
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for _, e := range si.buckets[[2]int{cx + dx, cy + dy}] {
				if si.g.PointToEdgeDistance(x, y, e) <= radius {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// hopDistance returns the number of edge transitions needed to go from
// edge a to edge b (0 if a == b, 1 if b directly follows a, …), capped
// at maxHops; ok=false beyond the cap.
func hopDistance(g *roadnet.Graph, a, b roadnet.EdgeID, maxHops int) (int, bool) {
	if a == b {
		return 0, true
	}
	frontier := []roadnet.EdgeID{a}
	seen := map[roadnet.EdgeID]bool{a: true}
	for hop := 1; hop <= maxHops; hop++ {
		var next []roadnet.EdgeID
		for _, e := range frontier {
			for _, nx := range g.NextEdges(e) {
				if nx == b {
					return hop, true
				}
				if !seen[nx] {
					seen[nx] = true
					next = append(next, nx)
				}
			}
		}
		frontier = next
	}
	return 0, false
}

// Match runs Viterbi decoding over candidate edges and returns the
// matched edge path, connected through the network. ok is false when
// the trace is rejected for any reason; callers that need the reason
// (or per-edge point attribution) use MatchTrace.
func Match(g *roadnet.Graph, pts []Point, cfg Config) ([]roadnet.EdgeID, bool) {
	r, err := MatchTrace(g, pts, cfg)
	if err != nil {
		return nil, false
	}
	return r.Path, true
}

// layer is one Viterbi column: the candidate states for one observed
// point that survived the transition model.
type layer struct {
	ptIdx  int // index of the observation this layer decodes
	states []state
}

type state struct {
	edge roadnet.EdgeID
	lp   float64 // best log-probability so far
	prev int     // index into previous layer
}

// MatchTrace runs Viterbi decoding over candidate edges and returns
// the matched edge path, connected through the network (consecutive
// distinct matched edges are joined by shortest paths, so the result
// is a valid NCT), together with per-edge observation attribution. A
// failed match returns a *RejectError naming the reason and offending
// point; in particular a trace whose first or last point has no
// candidate edge fails typed rather than silently truncating.
func MatchTrace(g *roadnet.Graph, pts []Point, cfg Config) (Result, error) {
	if len(pts) == 0 {
		return Result{}, &RejectError{Reason: RejectEmptyTrace, Point: -1}
	}
	si := newSpatialIndex(g, math.Max(cfg.CandidateRadius, 0.25))

	var layers []layer
	emission := func(p Point, e roadnet.EdgeID) float64 {
		d := g.PointToEdgeDistance(p.X, p.Y, e)
		return -d * d / (2 * cfg.SigmaGPS * cfg.SigmaGPS)
	}
	gap, skipped := 0, 0
	for i, p := range pts {
		cands := si.near(p.X, p.Y, cfg.CandidateRadius)
		if len(cands) == 0 {
			// Endpoints must anchor the match: a candidate-free first
			// point rejects immediately, a candidate-free last point is
			// caught after the loop (gap > 0 on exit). Interior points
			// may be skipped, but only MaxGap in a row.
			if i == 0 {
				return Result{}, &RejectError{Reason: RejectNoCandidates, Point: 0}
			}
			gap++
			if gap > cfg.MaxGap {
				reason := RejectGapTooLong
				if cfg.MaxGap == 0 {
					reason = RejectNoCandidates
				}
				return Result{}, &RejectError{Reason: reason, Point: i}
			}
			continue
		}
		skipped += gap
		gap = 0
		prev := []state(nil)
		if len(layers) > 0 {
			prev = layers[len(layers)-1].states
		}
		states := make([]state, 0, len(cands))
		for _, e := range cands {
			em := emission(p, e)
			if prev == nil {
				states = append(states, state{edge: e, lp: em, prev: -1})
				continue
			}
			best := math.Inf(-1)
			bestPrev := -1
			for pi, ps := range prev {
				hops, ok := hopDistance(g, ps.edge, e, cfg.MaxHops)
				if !ok {
					continue
				}
				lp := ps.lp + em - cfg.HopPenalty*float64(hops)
				if lp > best {
					best = lp
					bestPrev = pi
				}
			}
			if bestPrev >= 0 {
				states = append(states, state{edge: e, lp: best, prev: bestPrev})
			}
		}
		if len(states) == 0 {
			return Result{}, &RejectError{Reason: RejectDisconnected, Point: i}
		}
		layers = append(layers, layer{ptIdx: i, states: states})
	}
	if gap > 0 {
		// The trace ended on a candidate-free run: the last point has
		// no anchor, so the tail cannot be matched — fail, never
		// truncate.
		return Result{}, &RejectError{Reason: RejectNoCandidates, Point: len(pts) - 1}
	}

	// Backtrack the best final state; remember the runner-up for the
	// ambiguity check.
	last := layers[len(layers)-1].states
	bestIdx, best := 0, math.Inf(-1)
	secondIdx, second := -1, math.Inf(-1)
	for i, s := range last {
		switch {
		case s.lp > best:
			second, secondIdx = best, bestIdx
			best, bestIdx = s.lp, i
		case s.lp > second:
			second, secondIdx = s.lp, i
		}
	}
	decode := func(idx int) []roadnet.EdgeID {
		m := make([]roadnet.EdgeID, len(layers))
		for i := len(layers) - 1; i >= 0; i-- {
			m[i] = layers[i].states[idx].edge
			idx = layers[i].states[idx].prev
		}
		return m
	}
	matched := decode(bestIdx)
	if cfg.MinMargin > 0 && secondIdx >= 0 && best-second < cfg.MinMargin {
		// Only a materially different runner-up path makes the trace
		// ambiguous; a photo-finish between identical decodings is fine.
		if alt := decode(secondIdx); !equalPaths(matched, alt) {
			return Result{}, &RejectError{Reason: RejectAmbiguous, Point: layers[len(layers)-1].ptIdx}
		}
	}

	// Stitch into a connected NCT, attributing each path edge to the
	// observation that produced it (-1 for connector edges).
	path := []roadnet.EdgeID{matched[0]}
	ptIdx := []int{layers[0].ptIdx}
	for i := 1; i < len(matched); i++ {
		cur := path[len(path)-1]
		nxt := matched[i]
		if nxt == cur {
			continue
		}
		mid, ok := g.ConnectEdges(cur, nxt)
		if !ok {
			return Result{}, &RejectError{Reason: RejectDisconnected, Point: layers[i].ptIdx}
		}
		for range mid {
			ptIdx = append(ptIdx, -1)
		}
		path = append(path, mid...)
		path = append(path, nxt)
		ptIdx = append(ptIdx, layers[i].ptIdx)
	}
	return Result{Path: path, PointIdx: ptIdx, Skipped: skipped}, nil
}

func equalPaths(a, b []roadnet.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
