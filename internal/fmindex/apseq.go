package fmindex

import (
	"math/bits"
	"sort"

	"cinct/internal/wavelet"
)

// apSeq is an alphabet-partitioned sequence (Barbay, Gagie, Navarro,
// Nekrich — ISAAC 2010), the structure behind the paper's FM-AP-HYB
// baseline. Symbols are sorted by frequency; the symbol of global
// frequency rank r is assigned to class floor(lg(r+1)), so class k
// holds at most 2^k symbols. The per-position class sequence (a small,
// heavily skewed alphabet) is stored in a Huffman-shaped wavelet tree;
// for each class, the subsequence of within-class symbol indexes is
// stored in a wavelet matrix. Rank and access become two-level queries.
type apSeq struct {
	n     int
	sigma int

	classOf    []uint8  // symbol -> class (0xff if absent)
	idxInClass []uint32 // symbol -> index within its class
	symbolOf   [][]uint32

	classSeq *wavelet.HWT
	subs     []*wavelet.WM
}

func newAPSeq(seq []uint32, sigma, block int) *apSeq {
	a := &apSeq{n: len(seq), sigma: sigma}

	freqs := make([]uint64, sigma)
	for _, s := range seq {
		freqs[s]++
	}
	// Frequency-rank the used symbols.
	order := make([]uint32, 0, sigma)
	for s := 0; s < sigma; s++ {
		if freqs[s] > 0 {
			order = append(order, uint32(s))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if freqs[order[i]] != freqs[order[j]] {
			return freqs[order[i]] > freqs[order[j]]
		}
		return order[i] < order[j]
	})

	a.classOf = make([]uint8, sigma)
	for s := range a.classOf {
		a.classOf[s] = 0xff
	}
	a.idxInClass = make([]uint32, sigma)
	nClasses := 0
	for r, s := range order {
		k := bits.Len(uint(r+1)) - 1 // floor(lg(r+1))
		if k+1 > nClasses {
			nClasses = k + 1
		}
		a.classOf[s] = uint8(k)
		for len(a.symbolOf) <= k {
			a.symbolOf = append(a.symbolOf, nil)
		}
		a.idxInClass[s] = uint32(len(a.symbolOf[k]))
		a.symbolOf[k] = append(a.symbolOf[k], s)
	}

	// Build the class sequence and per-class subsequences.
	classes := make([]uint32, len(seq))
	subSeqs := make([][]uint32, nClasses)
	for i, s := range seq {
		k := a.classOf[s]
		classes[i] = uint32(k)
		subSeqs[k] = append(subSeqs[k], a.idxInClass[s])
	}
	a.classSeq = wavelet.NewHWT(classes, max(nClasses, 1), wavelet.RRRSpec(block))
	a.subs = make([]*wavelet.WM, nClasses)
	for k := range a.subs {
		a.subs[k] = wavelet.NewWM(subSeqs[k], len(a.symbolOf[k]), wavelet.RRRSpec(block))
	}
	return a
}

func (a *apSeq) Len() int   { return a.n }
func (a *apSeq) Sigma() int { return a.sigma }

func (a *apSeq) Access(i int) uint32 {
	k := a.classSeq.Access(i)
	r := a.classSeq.Rank(k, i)
	idx := a.subs[k].Access(r)
	return a.symbolOf[k][idx]
}

func (a *apSeq) Rank(c uint32, i int) int {
	if int(c) >= a.sigma || a.classOf[c] == 0xff {
		return 0
	}
	k := a.classOf[c]
	r := a.classSeq.Rank(uint32(k), i)
	return a.subs[k].Rank(a.idxInClass[c], r)
}

func (a *apSeq) AccessRank(i int) (uint32, int) {
	k, kr := a.classSeq.AccessRank(i)
	idx, r := a.subs[k].AccessRank(kr)
	return a.symbolOf[k][idx], r
}

func (a *apSeq) SizeBits() int {
	total := a.classSeq.SizeBits()
	for _, s := range a.subs {
		total += s.SizeBits()
	}
	// Symbol maps: classOf (8b) + idxInClass (32b) per symbol, plus the
	// reverse tables.
	total += a.sigma * (8 + 32)
	for _, syms := range a.symbolOf {
		total += 32 * len(syms)
	}
	return total
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
