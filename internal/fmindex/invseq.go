package fmindex

import "sort"

// invSeq stores the raw sequence plus, per symbol, the sorted list of
// its occurrence positions; Rank is a binary search in that list. It
// is our documented stand-in for FM-GMR: an *uncompressed* structure
// whose rank cost is independent of the alphabet size — fast and
// large, the role FM-GMR plays in the paper's Figs. 10–13.
type invSeq struct {
	n     int
	sigma int
	raw   []uint32
	occ   [][]int32
}

func newInvSeq(seq []uint32, sigma int) *invSeq {
	s := &invSeq{n: len(seq), sigma: sigma, raw: seq, occ: make([][]int32, sigma)}
	counts := make([]int32, sigma)
	for _, c := range seq {
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt > 0 {
			s.occ[c] = make([]int32, 0, cnt)
		}
	}
	for i, c := range seq {
		s.occ[c] = append(s.occ[c], int32(i))
	}
	return s
}

func (s *invSeq) Len() int   { return s.n }
func (s *invSeq) Sigma() int { return s.sigma }

func (s *invSeq) Access(i int) uint32 { return s.raw[i] }

func (s *invSeq) Rank(c uint32, i int) int {
	if int(c) >= s.sigma {
		return 0
	}
	list := s.occ[c]
	return sort.Search(len(list), func(k int) bool { return int(list[k]) >= i })
}

func (s *invSeq) AccessRank(i int) (uint32, int) {
	c := s.raw[i]
	return c, s.Rank(c, i)
}

func (s *invSeq) SizeBits() int {
	// Raw sequence (32 bits/symbol) + one 32-bit position per symbol
	// occurrence + per-symbol slice headers.
	return 32*s.n + 32*s.n + 64*s.sigma
}
