package fmindex

import (
	"math/rand"
	"testing"

	"cinct/internal/suffix"
)

// markovText mirrors the helper in internal/core's tests: reversed
// random walks with '$' separators and a '#' terminator.
func markovText(rng *rand.Rand, nWalks, walkLen, nStates, deg int) ([]uint32, int) {
	succ := make([][]uint32, nStates)
	for s := range succ {
		succ[s] = make([]uint32, deg)
		for d := range succ[s] {
			succ[s][d] = uint32(rng.Intn(nStates))
		}
	}
	sigma := nStates + 2
	var text []uint32
	for w := 0; w < nWalks; w++ {
		walk := make([]uint32, walkLen)
		cur := uint32(rng.Intn(nStates))
		for i := range walk {
			walk[i] = cur + 2
			d := 0
			if rng.Float64() > 0.6 {
				d = rng.Intn(deg)
			}
			cur = succ[cur][d]
		}
		for i := walkLen - 1; i >= 0; i-- {
			text = append(text, walk[i])
		}
		text = append(text, 1)
	}
	text = append(text, 0)
	return text, sigma
}

func naiveOccurrences(text, pat []uint32) int {
	if len(pat) == 0 {
		return len(text)
	}
	count := 0
outer:
	for i := 0; i+len(pat) <= len(text); i++ {
		for k := range pat {
			if text[i+k] != pat[k] {
				continue outer
			}
		}
		count++
	}
	return count
}

func TestAllMethodsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text, sigma := markovText(rng, 30, 25, 20, 3)
	for _, m := range Methods {
		ix := Build(text, sigma, m, 31)
		if ix.Method() != m || ix.Len() != len(text) || ix.Sigma() != sigma {
			t.Fatalf("%v: bad header", m)
		}
		for trial := 0; trial < 200; trial++ {
			// Patterns never contain the '#' terminator: the paper's
			// queries are paths P ∈ E* (Theorem 5), and '#' patterns can
			// match the cyclic wraparound rotation.
			var pat []uint32
			pl := 1 + rng.Intn(6)
			if trial%2 == 0 {
				start := rng.Intn(len(text) - pl - 1)
				pat = append(pat, text[start:start+pl]...)
			} else {
				for k := 0; k < pl; k++ {
					pat = append(pat, 1+uint32(rng.Intn(sigma-1)))
				}
			}
			if got, want := int(ix.Count(pat)), naiveOccurrences(text, pat); got != want {
				t.Fatalf("%v trial %d: Count(%v) = %d, want %d", m, trial, pat, got, want)
			}
		}
	}
}

func TestMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text, sigma := markovText(rng, 25, 30, 15, 3)
	bwt, _ := suffix.Transform(text, sigma)
	indexes := make([]*Index, len(Methods))
	for i, m := range Methods {
		indexes[i] = BuildFromBWT(bwt, sigma, m, 63)
	}
	for trial := 0; trial < 100; trial++ {
		m := 1 + rng.Intn(8)
		start := rng.Intn(len(text) - m)
		pat := text[start : start+m]
		s0, e0, ok0 := indexes[0].SuffixRange(pat)
		for _, ix := range indexes[1:] {
			s, e, ok := ix.SuffixRange(pat)
			if s != s0 || e != e0 || ok != ok0 {
				t.Fatalf("%v disagrees with %v on %v", ix.Method(), indexes[0].Method(), pat)
			}
		}
	}
}

func TestExtractAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text, sigma := markovText(rng, 15, 20, 12, 3)
	sa := suffix.Array(text, sigma)
	bwt := suffix.BWT(text, sa)
	n := len(text)
	for _, m := range Methods {
		ix := BuildFromBWT(bwt, sigma, m, 63)
		for trial := 0; trial < 50; trial++ {
			j := rng.Intn(n)
			l := 1 + rng.Intn(12)
			got := ix.Extract(int64(j), l)
			i := int(sa[j])
			for k := 0; k < l; k++ {
				want := text[((i-l+k)%n+n)%n]
				if got[k] != want {
					t.Fatalf("%v: Extract(%d,%d)[%d] = %d, want %d", m, j, l, k, got[k], want)
				}
			}
		}
	}
}

func TestEmptyAndInvalidPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	text, sigma := markovText(rng, 5, 10, 8, 2)
	for _, m := range Methods {
		ix := Build(text, sigma, m, 15)
		if sp, ep, ok := ix.SuffixRange(nil); !ok || sp != 0 || ep != int64(len(text)) {
			t.Fatalf("%v: empty pattern", m)
		}
		if _, _, ok := ix.SuffixRange([]uint32{uint32(sigma + 5)}); ok {
			t.Fatalf("%v: out-of-alphabet pattern matched", m)
		}
	}
}

func TestSizeOrdering(t *testing.T) {
	// On skewed data the compressed variants must be smaller than the
	// uncompressed ones — the qualitative shape of Fig. 10's x-axis.
	// n/sigma must be large enough (paper: ~800) that per-node RRR
	// overheads (problem P2, §II-B) amortize.
	rng := rand.New(rand.NewSource(5))
	text, sigma := markovText(rng, 2000, 50, 500, 3)
	bwt, _ := suffix.Transform(text, sigma)
	sizes := map[Method]float64{}
	for _, m := range Methods {
		sizes[m] = BuildFromBWT(bwt, sigma, m, 63).BitsPerSymbol()
	}
	if sizes[ICBHuff] >= sizes[UFMI] {
		t.Fatalf("ICB-Huff (%.2f) should be smaller than UFMI (%.2f)",
			sizes[ICBHuff], sizes[UFMI])
	}
	if sizes[ICBWM] >= sizes[UFMI] {
		t.Fatalf("ICB-WM (%.2f) should be smaller than UFMI (%.2f)",
			sizes[ICBWM], sizes[UFMI])
	}
	if sizes[FMInv] <= sizes[ICBHuff] {
		t.Fatalf("FM-Inv (%.2f) should be larger than ICB-Huff (%.2f)",
			sizes[FMInv], sizes[ICBHuff])
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		UFMI: "UFMI", ICBWM: "ICB-WM", ICBHuff: "ICB-Huff",
		FMAP: "FM-AP", FMInv: "FM-Inv(GMR*)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should stringify")
	}
}
