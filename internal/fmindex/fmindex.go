// Package fmindex implements the baseline FM-index variants the paper
// compares CiNCT against (Table II): backward search (Algorithm 1)
// over a rank-indexed BWT, with the BWT stored in one of several
// sequence representations:
//
//   - UFMI     — wavelet matrix over plain bit vectors (uncompressed)
//   - ICB-WM   — wavelet matrix over RRR (implicit compression boosting)
//   - ICB-Huff — Huffman-shaped wavelet tree over RRR
//   - FM-AP    — alphabet partitioning (Barbay et al., ISAAC 2010)
//   - FM-Inv   — per-symbol occurrence lists with binary-search rank;
//     our stand-in for FM-GMR: uncompressed and fast for huge alphabets
//     (see DESIGN.md for the substitution rationale)
//
// None of these exploit ET-graph sparsity; that is the gap CiNCT fills.
package fmindex

import (
	"fmt"
	"time"

	"cinct/internal/bitvec"
	"cinct/internal/suffix"
	"cinct/internal/wavelet"
)

// Method selects a baseline representation.
type Method int

const (
	// UFMI is an uncompressed wavelet matrix.
	UFMI Method = iota
	// ICBWM is a wavelet matrix over RRR bit vectors.
	ICBWM
	// ICBHuff is a Huffman-shaped wavelet tree over RRR bit vectors.
	ICBHuff
	// FMAP is alphabet partitioning.
	FMAP
	// FMInv is the inverted-occurrence-list stand-in for FM-GMR.
	FMInv
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case UFMI:
		return "UFMI"
	case ICBWM:
		return "ICB-WM"
	case ICBHuff:
		return "ICB-Huff"
	case FMAP:
		return "FM-AP"
	case FMInv:
		return "FM-Inv(GMR*)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all baselines in presentation order.
var Methods = []Method{UFMI, ICBWM, ICBHuff, FMAP, FMInv}

// BuildStats mirrors core.BuildStats for Fig. 16.
type BuildStats struct {
	BWT   time.Duration
	WT    time.Duration
	Total time.Duration
}

// Index is a baseline FM-index.
type Index struct {
	n      int
	sigma  int
	method Method
	c      *bitvec.PackedInts // lg(n+1)-bit packed C array, len sigma+1
	seq    wavelet.Sequence
	// Stats describes the construction-time breakdown.
	Stats BuildStats
}

// Build constructs a baseline index over text with symbols in
// [0, sigma); text must end with a unique smallest terminator, as for
// the core index. block is the RRR block size for the compressed
// variants (ignored by UFMI and FMInv).
func Build(text []uint32, sigma int, method Method, block int) *Index {
	t0 := time.Now()
	bwt, _ := suffix.Transform(text, sigma)
	bwtTime := time.Since(t0)
	ix := BuildFromBWT(bwt, sigma, method, block)
	ix.Stats.BWT = bwtTime
	ix.Stats.Total = time.Since(t0)
	return ix
}

// BuildFromBWT constructs a baseline index from a precomputed BWT.
func BuildFromBWT(bwt []uint32, sigma int, method Method, block int) *Index {
	if block == 0 {
		block = 63
	}
	ix := &Index{n: len(bwt), sigma: sigma, method: method}
	rawC := make([]uint64, sigma+1)
	for _, w := range bwt {
		rawC[w+1]++
	}
	for w := 1; w <= sigma; w++ {
		rawC[w] += rawC[w-1]
	}
	ix.c = bitvec.PackInts(rawC)
	tWT := time.Now()
	switch method {
	case UFMI:
		ix.seq = wavelet.NewWM(bwt, sigma, wavelet.PlainSpec)
	case ICBWM:
		ix.seq = wavelet.NewWM(bwt, sigma, wavelet.RRRSpec(block))
	case ICBHuff:
		ix.seq = wavelet.NewHWT(bwt, sigma, wavelet.RRRSpec(block))
	case FMAP:
		ix.seq = newAPSeq(bwt, sigma, block)
	case FMInv:
		ix.seq = newInvSeq(bwt, sigma)
	default:
		panic(fmt.Sprintf("fmindex: unknown method %d", method))
	}
	ix.Stats.WT = time.Since(tWT)
	return ix
}

// Len returns |T|.
func (ix *Index) Len() int { return ix.n }

// Sigma returns the alphabet size.
func (ix *Index) Sigma() int { return ix.sigma }

// Method returns the representation in use.
func (ix *Index) Method() Method { return ix.method }

// SuffixRange runs Algorithm 1 (SearchFM) for a pattern in text order.
func (ix *Index) SuffixRange(pat []uint32) (sp, ep int64, ok bool) {
	m := len(pat)
	if m == 0 {
		return 0, int64(ix.n), true
	}
	w := pat[m-1]
	if int(w) >= ix.sigma {
		return 0, 0, false
	}
	sp, ep = ix.cAt(int(w)), ix.cAt(int(w)+1)
	for i := m - 2; i >= 0; i-- {
		if sp >= ep {
			return 0, 0, false
		}
		w = pat[i]
		if int(w) >= ix.sigma {
			return 0, 0, false
		}
		sp = ix.cAt(int(w)) + int64(ix.seq.Rank(w, int(sp)))
		ep = ix.cAt(int(w)) + int64(ix.seq.Rank(w, int(ep)))
	}
	if sp >= ep {
		return 0, 0, false
	}
	return sp, ep, true
}

// Count returns the number of occurrences of the pattern.
func (ix *Index) Count(pat []uint32) int64 {
	sp, ep, ok := ix.SuffixRange(pat)
	if !ok {
		return 0
	}
	return ep - sp
}

// LF performs one LF-mapping step using direct rank on the BWT.
func (ix *Index) LF(j int64) (next int64, sym uint32) {
	sym, r := ix.seq.AccessRank(int(j))
	return ix.cAt(int(sym)) + int64(r), sym
}

// Extract returns the l text symbols preceding position SA[j]
// (cyclically), like core.Index.Extract but via direct rank.
func (ix *Index) Extract(j int64, l int) []uint32 {
	out := make([]uint32, l)
	for k := 1; k <= l; k++ {
		next, sym := ix.LF(j)
		out[l-k] = sym
		j = next
	}
	return out
}

// cAt reads the packed C array.
func (ix *Index) cAt(w int) int64 { return int64(ix.c.Get(w)) }

// SizeBits returns the index footprint: sequence plus C array.
func (ix *Index) SizeBits() int {
	return ix.seq.SizeBits() + ix.c.SizeBits()
}

// BitsPerSymbol returns SizeBits scaled per text symbol.
func (ix *Index) BitsPerSymbol() float64 {
	return float64(ix.SizeBits()) / float64(ix.n)
}
