package engine

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
)

// queryCache is a bounded LRU for query results, shared by every index
// in a Catalog. Keys embed the owning entry's generation number, so a
// Reload — which bumps the generation — instantly orphans every cached
// result of the old index state: stale keys can never be looked up
// again and age out of the LRU like any other cold entry. That makes
// invalidation O(1) and lock-free with respect to the cache itself.
//
// Values are stored and returned by reference; callers must treat
// cached slices as immutable (Engine's query methods already promise
// this to their callers).
type queryCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	byK          map[string]*list.Element
	hits, misses uint64
}

type cacheItem struct {
	key string
	val any
}

// newQueryCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every lookup misses).
func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap: capacity,
		ll:  list.New(),
		byK: make(map[string]*list.Element),
	}
}

// searchKey builds the cache key for a Search result: the index name,
// the entry generation the result was computed against, and the SHA-256
// of the query's canonical binary encoding. Every legacy operation is a
// Query, so one key scheme covers the whole surface; hashing keeps keys
// fixed-size however long the path, and the canonical encoding
// guarantees two keys collide only if the queries are semantically
// identical (modulo a SHA-256 collision).
func searchKey(name string, gen uint64, encodedQuery []byte) string {
	sum := sha256.Sum256(encodedQuery)
	var b strings.Builder
	fmt.Fprintf(&b, "q|%s|%d|%x", name, gen, sum)
	return b.String()
}

func (c *queryCache) get(key string) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

func (c *queryCache) put(key string, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheItem).val = val
		return
	}
	c.byK[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheItem).key)
	}
}

// stats reports lifetime hit/miss counters (for /v1/indexes and tests).
func (c *queryCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
