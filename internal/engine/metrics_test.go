package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cinct"
	"cinct/internal/metrics"
)

// TestEngineMetricsExactness soaks Search/Append/Compact concurrently
// (run under -race) and then checks the registry against ground truth:
// every accepted query is counted exactly once per kind, every query
// closes exactly one latency/cost account, cache hits and misses
// partition the query stream, append rows match what was ingested, and
// the pool gauge returns to zero once the streams drain.
func TestEngineMetricsExactness(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(31, 150)
	writeIndexes(t, dir, trajs)

	reg := metrics.NewRegistry()
	e := New(Options{Metrics: reg})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}

	const (
		searchers   = 6
		perSearcher = 40
		appenders   = 2
		perAppender = 25
		compactions = 3
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, searchers+appenders+1)

	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSearcher; i++ {
				tr := trajs[(g*perSearcher+i)%len(trajs)]
				path := tr[:min(2, len(tr))]
				q := cinct.Query{Path: path, Kind: cinct.CountOnly}
				if i%2 == 1 {
					q = cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 3}
				}
				r, err := e.Search(ctx, "spatial", q)
				if err != nil {
					errc <- err
					return
				}
				if q.Kind == cinct.CountOnly {
					_, err = r.Count()
				} else {
					for _, herr := range r.All() {
						err = herr
					}
				}
				r.Close()
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				if _, err := e.Append(ctx, "spatial", [][]uint32{{1, 2, 3}}, nil); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < compactions; i++ {
			if _, err := e.Compact(ctx, "spatial", false); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Handles re-registered with the same shape are the engine's own.
	total := searchers * perSearcher
	counts := reg.CounterVec("cinct_queries_total", "", "kind")
	gotCount := counts.With("count").Value()
	gotOcc := counts.With("occurrences").Value()
	if gotCount+gotOcc != int64(total) {
		t.Fatalf("cinct_queries_total = %d count + %d occurrences, want %d total", gotCount, gotOcc, total)
	}
	if want := int64(searchers * (perSearcher / 2)); gotOcc != want {
		t.Fatalf("cinct_queries_total{kind=occurrences} = %d, want %d", gotOcc, want)
	}
	hits := reg.Counter("cinct_cache_hits_total", "").Value()
	misses := reg.Counter("cinct_cache_misses_total", "").Value()
	if hits+misses != int64(total) {
		t.Fatalf("cache hits %d + misses %d != %d queries", hits, misses, total)
	}
	lat := reg.Histogram("cinct_query_seconds", "", metrics.ExpBuckets(0.0001, 4, 10))
	if lat.Count() != uint64(total) {
		t.Fatalf("latency observations = %d, want %d (exactly one account per query)", lat.Count(), total)
	}
	cost := reg.Histogram("cinct_query_cost_steps", "", metrics.ExpBuckets(1, 8, 10))
	if cost.Count() != uint64(total) || cost.Sum() <= 0 {
		t.Fatalf("cost observations = %d (sum %v), want %d with positive sum", cost.Count(), cost.Sum(), total)
	}
	if rows := reg.Counter("cinct_append_rows_total", "").Value(); rows != appenders*perAppender {
		t.Fatalf("cinct_append_rows_total = %d, want %d", rows, appenders*perAppender)
	}
	if errs := reg.Counter("cinct_query_errors_total", "").Value(); errs != 0 {
		t.Fatalf("cinct_query_errors_total = %d, want 0", errs)
	}
	if inflight, capacity := e.PoolStats(); inflight != 0 || capacity < 1 {
		t.Fatalf("PoolStats after drain = (%d, %d), want (0, >=1)", inflight, capacity)
	}

	// The scrape surface agrees with the handles.
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()
	for _, want := range []string{
		"# TYPE cinct_queries_total counter",
		fmt.Sprintf("cinct_queries_total{kind=\"occurrences\"} %d", gotOcc),
		fmt.Sprintf("cinct_query_seconds_count %d", total),
		"cinct_pool_inflight 0",
		fmt.Sprintf("cinct_append_rows_total %d", appenders*perAppender),
		"# TYPE cinct_compaction_seconds histogram",
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape missing %q:\n%s", want, scrape)
		}
	}
}

// TestAdmissionControl pins the shedding contract: with the pool
// saturated, queries whose cost estimate reaches ShedCost fail fast
// with ErrOverloaded while cheap queries still queue; with shedding
// disabled (ShedCost 0) even unbounded queries queue.
func TestAdmissionControl(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(37, 100)
	writeIndexes(t, dir, trajs)

	reg := metrics.NewRegistry()
	// One worker, cache off so every Search needs a slot.
	e := New(Options{Workers: 1, CacheEntries: -1, ShedCost: 1000, Metrics: reg})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := trajs[0][:1]

	// Occupy the only slot with an undrained live stream.
	hold, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()

	// Unbounded scan: estimate is costUnbounded >= ShedCost → shed.
	if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("unbounded Search on saturated pool: err = %v, want ErrOverloaded", err)
	}
	// Large bounded stream crosses the threshold too (Limit*64).
	if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 64}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expensive bounded Search: err = %v, want ErrOverloaded", err)
	}
	if shed := reg.Counter("cinct_queries_shed_total", "").Value(); shed != 2 {
		t.Fatalf("cinct_queries_shed_total = %d, want 2", shed)
	}

	// A cheap count (cost = len(path) = 1) queues instead of shedding:
	// with the slot held it times out rather than erroring Overloaded.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := e.Search(short, "spatial", cinct.Query{Path: path, Kind: cinct.CountOnly}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cheap Search on saturated pool: err = %v, want DeadlineExceeded (queued, not shed)", err)
	}

	// Releasing the slot lets the same expensive query through.
	hold.Close()
	r, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if err != nil {
		t.Fatalf("Search after release: %v", err)
	}
	r.Close()

	// Shedding disabled: unbounded queries queue like before PR 8.
	e2 := New(Options{Workers: 1, CacheEntries: -1})
	defer e2.CloseAll()
	if _, err := e2.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	hold2, err := e2.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if err != nil {
		t.Fatal(err)
	}
	defer hold2.Close()
	short2, cancel2 := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel2()
	if _, err := e2.Search(short2, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ShedCost=0 unbounded Search: err = %v, want DeadlineExceeded", err)
	}
}

// TestSlowQueryLog checks that queries crossing the SlowQuery
// threshold are counted and logged with their full QueryStats.
func TestSlowQueryLog(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(41, 100)
	writeIndexes(t, dir, trajs)

	var mu sync.Mutex
	var log bytes.Buffer
	reg := metrics.NewRegistry()
	e := New(Options{
		Metrics:   reg,
		SlowQuery: time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			mu.Lock()
			fmt.Fprintf(&log, format+"\n", args...)
			mu.Unlock()
		},
	})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	r, err := e.Search(context.Background(), "spatial", cinct.Query{Path: trajs[0][:2], Kind: cinct.Occurrences, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, herr := range r.All() {
		if herr != nil {
			t.Fatal(herr)
		}
	}
	r.Close()
	if slow := reg.Counter("cinct_slow_queries_total", "").Value(); slow < 1 {
		t.Fatalf("cinct_slow_queries_total = %d, want >= 1", slow)
	}
	mu.Lock()
	got := log.String()
	mu.Unlock()
	for _, want := range []string{"slow query", "kind=occurrences", "stats{lf=", "cost="} {
		if !strings.Contains(got, want) {
			t.Fatalf("slow-query log missing %q:\n%s", want, got)
		}
	}
}
