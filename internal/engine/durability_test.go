package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cinct"
)

// walEngine opens an engine over dir with write-ahead logging rooted
// at wal; SyncBytes -1 keeps every test append on disk immediately.
func walEngine(t *testing.T, dir, wal string) *Engine {
	t.Helper()
	e := New(Options{
		SealThreshold: -1,
		WAL:           WALOptions{Dir: wal, SyncBytes: -1},
	})
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	return e
}

// TestEngineWALKillReplay is the crash-recovery acceptance test: rows
// acknowledged by Append but never sealed must survive the process
// dying without any shutdown, via WAL replay on the next open. The
// first engine is simply abandoned — no Seal, no Shutdown, no Close —
// exactly what SIGKILL leaves behind.
func TestEngineWALKillReplay(t *testing.T) {
	dir, wal := t.TempDir(), t.TempDir()
	trajs := testCorpus(17, 40)
	writeIndexes(t, dir, trajs)
	ctx := context.Background()
	marker := []uint32{211, 212, 213}

	e1 := walEngine(t, dir, wal)
	// Spatial: two batches, never sealed.
	if _, err := e1.Append(ctx, "spatial", [][]uint32{marker, append([]uint32{3}, marker...)}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Append(ctx, "spatial", [][]uint32{{5, 6, 7}}, nil); err != nil {
		t.Fatal(err)
	}
	// Temporal: one batch, never sealed.
	if _, err := e1.Append(ctx, "temporal", [][]uint32{marker}, [][]int64{{10, 20, 30}}); err != nil {
		t.Fatal(err)
	}
	// e1 is now "killed": no cleanup of any kind.

	e2 := walEngine(t, dir, wal)
	defer e2.Shutdown()
	defer e2.CloseAll()
	n, err := e2.Count(ctx, "spatial", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed spatial marker count = %d, want 2", n)
	}
	info, err := e2.Info("spatial")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := info.Stats.Trajectories, len(trajs)+3; got != want {
		t.Fatalf("spatial rows after replay = %d, want %d", got, want)
	}
	// Replayed rows reconstruct with their original IDs.
	tr, err := e2.Trajectory(ctx, "spatial", len(trajs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != len(marker) || tr[0] != marker[0] {
		t.Fatalf("replayed Trajectory(%d) = %v", len(trajs), tr)
	}
	// Temporal replay keeps the timestamp column.
	hits, err := e2.FindInInterval(ctx, "temporal", marker, 10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Trajectory != len(trajs) || hits[0].EnteredAt != 10 {
		t.Fatalf("replayed temporal hit = %+v", hits)
	}
}

// TestEngineWALSealRetiresAndNoDoubleReplay pins the watermark
// contract: sealed rows live in the v3/persisted file and must NOT be
// replayed again (that would duplicate them), while rows appended
// after the seal still are. It also checks the seal retired the
// covered segments.
func TestEngineWALSealRetiresAndNoDoubleReplay(t *testing.T) {
	dir, wal := t.TempDir(), t.TempDir()
	trajs := testCorpus(19, 30)
	writeIndexes(t, dir, trajs)
	ctx := context.Background()
	marker := []uint32{221, 222}

	e1 := walEngine(t, dir, wal)
	if _, err := e1.Append(ctx, "spatial", [][]uint32{marker, marker}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Seal(ctx, "spatial"); err != nil {
		t.Fatal(err)
	}
	info, err := e1.Info("spatial")
	if err != nil {
		t.Fatal(err)
	}
	if info.WALSegments != 1 {
		t.Fatalf("after seal: %d WAL segments, want the 1 empty active", info.WALSegments)
	}
	// One more acknowledged batch after the seal, then "kill".
	if _, err := e1.Append(ctx, "spatial", [][]uint32{marker}, nil); err != nil {
		t.Fatal(err)
	}

	e2 := walEngine(t, dir, wal)
	defer e2.Shutdown()
	defer e2.CloseAll()
	n, err := e2.Count(ctx, "spatial", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("marker count after replay = %d, want 3 (2 sealed + 1 replayed, no duplicates)", n)
	}
	info, err = e2.Info("spatial")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := info.Stats.Trajectories, len(trajs)+3; got != want {
		t.Fatalf("rows after replay = %d, want %d", got, want)
	}
}

// TestEngineWALGapFailsLoudly pins the missing-data contract: a WAL
// that resumes past the persisted row count means acknowledged rows
// are gone, and the engine must refuse to serve rather than silently
// come up short.
func TestEngineWALGapFailsLoudly(t *testing.T) {
	dir, wal := t.TempDir(), t.TempDir()
	trajs := testCorpus(23, 20)
	writeIndexes(t, dir, trajs)
	ctx := context.Background()

	e1 := walEngine(t, dir, wal)
	if _, err := e1.Append(ctx, "spatial", [][]uint32{{1, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Seal(ctx, "spatial"); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Append(ctx, "spatial", [][]uint32{{3, 4}}, nil); err != nil {
		t.Fatal(err)
	}
	e1.Shutdown()
	e1.CloseAll()

	// Roll the index file back to its pre-ingestion state: the WAL now
	// resumes at a row the file does not hold.
	writeIndexes(t, dir, trajs[:len(trajs)-1])
	e := New(Options{SealThreshold: -1, WAL: WALOptions{Dir: wal, SyncBytes: -1}})
	if _, err := e.OpenDir(dir); err == nil {
		e.CloseAll()
		t.Fatal("OpenDir served an index whose WAL proves acknowledged rows are missing")
	}
}

// TestEngineWALAppendFailurePoisonsUntilReload pins the no-gap
// contract: when a batch lands in the delta but its WAL record fails,
// the rows hold assigned global IDs the log lacks — a further logged
// append would write a gapped FirstID that a later replay must refuse,
// bricking the index. So the entry must refuse appends until a Reload
// rebuilds the delta from the log, and the log must replay cleanly on
// the next open.
func TestEngineWALAppendFailurePoisonsUntilReload(t *testing.T) {
	dir, wal := t.TempDir(), t.TempDir()
	trajs := testCorpus(41, 20)
	writeIndexes(t, dir, trajs)
	ctx := context.Background()
	marker := []uint32{241, 242}

	e := walEngine(t, dir, wal)
	if _, err := e.Append(ctx, "spatial", [][]uint32{marker}, nil); err != nil {
		t.Fatal(err)
	}
	// Break the log out from under the engine: the next append's rows
	// reach the delta, but the WAL record fails.
	en, err := e.cat.get("spatial")
	if err != nil {
		t.Fatal(err)
	}
	en.mu.RLock()
	wl := en.wal
	en.mu.RUnlock()
	if wl == nil {
		t.Fatal("entry has no WAL handle")
	}
	wl.Close()
	if _, err := e.Append(ctx, "spatial", [][]uint32{{3, 4}}, nil); err == nil {
		t.Fatal("append with a broken WAL was acknowledged")
	}
	// Poisoned: a retry must be refused outright — were it logged, its
	// FirstID would skip the unlogged rows sitting in the delta.
	if _, err := e.Append(ctx, "spatial", [][]uint32{{5, 6}}, nil); err == nil {
		t.Fatal("append after a WAL failure was acknowledged — would create an ID gap")
	}
	// Reload rebuilds the delta from the log (dropping the unlogged,
	// never-acknowledged rows) and lifts the poison.
	if _, err := e.Reload("spatial"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(ctx, "spatial", [][]uint32{marker}, nil); err != nil {
		t.Fatalf("append after reload still refused: %v", err)
	}
	// e is now "killed". A fresh engine must replay the log cleanly —
	// exactly the acknowledged batches, no gap error, no bricked index.
	e2 := walEngine(t, dir, wal)
	defer e2.Shutdown()
	defer e2.CloseAll()
	n, err := e2.Count(ctx, "spatial", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("marker count after crash replay = %d, want the 2 acknowledged", n)
	}
	info, err := e2.Info("spatial")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := info.Stats.Trajectories, len(trajs)+2; got != want {
		t.Fatalf("rows after crash replay = %d, want %d (acknowledged batches only)", got, want)
	}
}

// TestEngineCompactPersists drives Engine.Compact end to end: a burst
// of tiny seals fans the shard set out, a full compaction brings it
// back to one shard without changing any answer, and the compacted
// state lands in the backing file so a Reload serves it.
func TestEngineCompactPersists(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(29, 40)
	writeIndexes(t, dir, trajs)
	e := New(Options{SealThreshold: -1})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	marker := []uint32{231, 232}

	rows := 0
	for i := 0; i < 5; i++ {
		if _, err := e.Append(ctx, "temporal", [][]uint32{append([]uint32{uint32(i)}, marker...)},
			[][]int64{{int64(i), int64(i) + 1, int64(i) + 2}}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Seal(ctx, "temporal"); err != nil {
			t.Fatal(err)
		}
		rows++
	}
	info, err := e.Info("temporal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Shards < 5 {
		t.Fatalf("per-seal fan-out missing: %d shards after 5 seals", info.Stats.Shards)
	}
	before, _ := drainEngine(t, e, "temporal", cinct.Query{Path: marker, Kind: cinct.Occurrences})
	if len(before) != rows {
		t.Fatalf("pre-compaction marker hits = %d, want %d", len(before), rows)
	}

	res, err := e.Compact(ctx, "temporal", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 || res.ShardsAfter != 1 {
		t.Fatalf("CompactResult = %+v, want a merge down to 1 shard", res)
	}
	after, _ := drainEngine(t, e, "temporal", cinct.Query{Path: marker, Kind: cinct.Occurrences})
	if len(after) != len(before) {
		t.Fatalf("compaction changed answers: %d hits vs %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("compaction changed answers: %v vs %v", before, after)
		}
	}

	// Idempotence: a second full compaction finds nothing to do.
	res, err = e.Compact(ctx, "temporal", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != 0 {
		t.Fatalf("second Compact merged %d shards on a 1-shard index", res.Merged)
	}

	// Persistence: Reload discards the writer and re-reads the file.
	if _, err := e.Reload("temporal"); err != nil {
		t.Fatal(err)
	}
	info, err = e.Info("temporal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Shards != 1 {
		t.Fatalf("reloaded file holds %d shards, want the compacted 1", info.Stats.Shards)
	}
	n, err := e.Count(ctx, "temporal", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("post-reload marker count = %d, want %d", n, rows)
	}
}

// TestEngineBackgroundCompaction pins the compactor goroutine: with a
// short sweep interval, a fanned-out live index converges to the
// tiered policy bound without any explicit Compact call.
func TestEngineBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(31, 30)
	writeIndexes(t, dir, trajs)
	e := New(Options{
		SealThreshold: -1,
		Compaction: CompactionOptions{
			Interval: 5 * time.Millisecond,
			Policy:   cinct.CompactionPolicy{MinShards: 2, MaxShards: 16, TierRatio: 1 << 20},
		},
	})
	defer e.CloseAll()
	defer e.Shutdown()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := e.Append(ctx, "spatial", [][]uint32{{uint32(i), 7, 8}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Seal(ctx, "spatial"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := e.Info("spatial")
		if err != nil {
			t.Fatal(err)
		}
		// MinShards 2 with an unbounded ratio converges to a single
		// sealed shard (reported alongside any delta-free writer state).
		if info.Stats.Shards <= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never converged: still %d shards", info.Stats.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}
	n, err := e.Count(ctx, "spatial", []uint32{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("post-compaction count = %d, want 6", n)
	}
}

// TestEngineWALRetireKeepsDirBounded pins segment retirement under a
// seal-per-batch workload: the WAL directory must not accumulate one
// segment per batch forever.
func TestEngineWALRetireKeepsDirBounded(t *testing.T) {
	dir, wal := t.TempDir(), t.TempDir()
	trajs := testCorpus(37, 20)
	writeIndexes(t, dir, trajs)
	e := walEngine(t, dir, wal)
	defer e.CloseAll()
	defer e.Shutdown()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := e.Append(ctx, "spatial", [][]uint32{{1, 2, 3}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Seal(ctx, "spatial"); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(wal, "spatial", "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 2 {
		t.Fatalf("WAL dir holds %d segments after 8 sealed batches, want retirement to bound it", len(segs))
	}
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil && fi.Size() > 1<<20 {
			t.Fatalf("retired WAL kept %d bytes in %s", fi.Size(), s)
		}
	}
}
