package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"cinct"
	"cinct/internal/wal"
)

// WALOptions configures the ingestion write-ahead log.
type WALOptions struct {
	// Dir is the root directory holding one WAL subdirectory per
	// index. "" disables write-ahead logging.
	Dir string
	// SyncInterval is the group-commit fsync window (0 = 50ms,
	// negative = no timer). Acknowledged appends survive process death
	// regardless — the record's write(2) completes before the ack —
	// the window only bounds exposure to whole-machine failure.
	SyncInterval time.Duration
	// SyncBytes forces an fsync once this many unsynced bytes
	// accumulate (0 = 1 MiB, negative = every append).
	SyncBytes int
}

// CompactionOptions configures background tiered compaction.
type CompactionOptions struct {
	// Interval is the cadence at which the compactor sweeps every
	// live-ingestion entry for merge candidates. 0 disables the
	// background loop (Engine.Compact still compacts on demand).
	Interval time.Duration
	// Policy tunes the tiered victim selection; the zero value uses
	// the library defaults (tiers of 4, ratio 8, at most 16 shards
	// per round).
	Policy cinct.CompactionPolicy
}

// walDir returns the per-index WAL directory: one subdirectory per
// index name, so segment sequences never collide across indexes.
func (e *Engine) walDir(name string) string {
	return filepath.Join(e.walOpts.Dir, name)
}

// openWAL attaches a write-ahead log to a file-backed entry not yet
// published in the catalog (fresh loads attach the log before install,
// so no Append can ever reach an entry whose log is missing or
// mid-replay). Published entries must use openWALLocked under the
// entry's ingestMu instead.
func (e *Engine) openWAL(en *entry) error {
	en.ingestMu.Lock()
	defer en.ingestMu.Unlock()
	return e.openWALLocked(en)
}

// openWALLocked opens (recovering and truncating a torn tail),
// replays every batch the persisted index file does not already hold
// into the entry's delta, retires fully covered segments, and
// publishes the log handle for Append. A no-op when the engine runs
// without Options.WAL or the entry has no backing file.
//
// Caller holds en.ingestMu: Append reads the (writer, wal) pair under
// that lock, so holding it from dropping the old handle to publishing
// the new one leaves no window where an append is acknowledged
// without a log record or logged against a stale handle.
func (e *Engine) openWALLocked(en *entry) error {
	if e.walOpts.Dir == "" || en.path == "" {
		return nil
	}
	// Reload path: drop the previous log handle first; its segments
	// stay on disk and are re-read by the fresh Open below.
	en.mu.Lock()
	if old := en.wal; old != nil {
		old.Close() //nolint:errcheck // synced again by the reopen below
		en.wal = nil
	}
	en.mu.Unlock()
	l, err := wal.Open(e.walDir(en.name), wal.Options{
		SyncInterval: e.walOpts.SyncInterval,
		SyncBytes:    e.walOpts.SyncBytes,
	})
	if err != nil {
		return fmt.Errorf("engine: opening %q write-ahead log: %w", en.name, err)
	}
	if tr := l.Truncated(); tr > 0 {
		e.logf("engine: %q wal: truncated %d torn-tail bytes", en.name, tr)
	}
	replayed, err := e.replayWAL(en, l.Pending())
	if err != nil {
		l.Close() //nolint:errcheck // surfacing the replay error
		return err
	}
	if replayed > 0 {
		e.logf("engine: %q wal: replayed %d unsealed trajectories into the delta", en.name, replayed)
		en.bumpGen()
	}
	// Segments wholly below the persisted row count survived only
	// because the crash beat the retirement; drop them now.
	en.mu.RLock()
	w := en.w
	en.mu.RUnlock()
	durable := 0
	if w != nil {
		durable = w.SealedTrajectories()
	} else if v, verr := en.snapshot(); verr == nil {
		durable = v.numTrajectories()
	}
	if err := l.Retire(durable); err != nil {
		e.logf("engine: retiring %q wal segments: %v", en.name, err)
	}
	en.mu.Lock()
	if en.closed {
		en.mu.Unlock()
		l.Close() //nolint:errcheck // entry raced away; nothing to attach to
		return nil
	}
	en.wal = l
	en.mu.Unlock()
	// The delta was rebuilt from the log, so the gap a failed WAL
	// append left behind (never-acknowledged delta rows with no log
	// record) is gone: lift the ingestion poison. ingestMu is held.
	en.walErr = nil
	return nil
}

// replayWAL feeds logged batches back into the entry's delta,
// skipping rows the persisted index already holds (their seal beat
// the crash) and erroring on a gap — a log that starts past the
// persisted rows means acknowledged data is simply gone, which must
// fail loudly, not serve silently short.
func (e *Engine) replayWAL(en *entry, pending []wal.Batch) (int, error) {
	replayed := 0
	for _, b := range pending {
		if len(b.Trajs) == 0 {
			continue
		}
		w, err := e.writerFor(en)
		if err != nil {
			return replayed, fmt.Errorf("engine: replaying %q write-ahead log: %w", en.name, err)
		}
		have := w.NumTrajectories()
		switch {
		case b.FirstID+len(b.Trajs) <= have:
			continue // fully sealed into the persisted file
		case b.FirstID > have:
			return replayed, fmt.Errorf("%w: %q write-ahead log resumes at row %d but the index holds %d — acknowledged rows are missing",
				ErrCorrupt, en.name, b.FirstID, have)
		}
		off := have - b.FirstID
		trajs := b.Trajs[off:]
		var times [][]int64
		if b.Times != nil {
			times = b.Times[off:]
		}
		if _, err := w.AppendBatch(trajs, times); err != nil {
			return replayed, fmt.Errorf("engine: replaying %q write-ahead log: %w", en.name, err)
		}
		replayed += len(trajs)
	}
	return replayed, nil
}

// CompactResult summarizes an Engine.Compact call.
type CompactResult struct {
	// Merged is the total number of victim shards rewritten across
	// all rounds (0 when the shard set was already within policy).
	Merged int `json:"merged"`
	// Rows is the total number of trajectories re-compressed.
	Rows int `json:"rows"`
	// Rounds is the number of merge rounds run to reach the fixpoint.
	Rounds int `json:"rounds"`
	// ShardsBefore / ShardsAfter count sealed shards around the call.
	ShardsBefore int `json:"shardsBefore"`
	ShardsAfter  int `json:"shardsAfter"`
	// Generation is the entry generation. Compaction does not bump
	// it: answers are unchanged, so cached results and outstanding
	// cursors both stay valid — the same contract as Seal.
	Generation uint64 `json:"generation"`
}

// Compact merges index name's sealed shards per the engine's
// compaction policy (or down to a single shard when full is set),
// looping until the shard set reaches the policy's fixpoint, then
// persists the compacted state for file-backed entries. Queries,
// appends and seals proceed throughout; global trajectory IDs — and
// therefore outstanding cursors — are untouched.
func (e *Engine) Compact(ctx context.Context, name string, full bool) (CompactResult, error) {
	if err := ctx.Err(); err != nil {
		return CompactResult{}, err
	}
	en, err := e.cat.get(name)
	if err != nil {
		return CompactResult{}, err
	}
	w, err := e.writerFor(en)
	if err != nil {
		return CompactResult{}, err
	}
	policy := e.compaction.Policy
	if full {
		policy = cinct.FullCompaction
	}
	res := CompactResult{ShardsBefore: w.SealedShards(), ShardsAfter: w.SealedShards()}
	t0 := time.Now()
	defer func() { e.metrics.compactSec.Observe(time.Since(t0).Seconds()) }()
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		r, cerr := w.Compact(policy)
		if cerr != nil {
			return res, cerr
		}
		if r.Merged == 0 {
			break
		}
		res.Merged += r.Merged
		res.Rows += r.Rows
		res.Rounds++
		res.ShardsAfter = r.ShardsAfter
	}
	if res.Merged > 0 {
		e.logf("engine: %q compacted %d shards down to %d (%d trajectories re-compressed, %d rounds)",
			name, res.ShardsBefore, res.ShardsAfter, res.Rows, res.Rounds)
		e.persistEntry(en, "compaction", res.Rows)
		en.mu.RLock()
		perr := en.sealErr
		en.mu.RUnlock()
		if perr != nil {
			return res, perr
		}
	}
	en.mu.RLock()
	res.Generation = en.gen
	en.mu.RUnlock()
	return res, nil
}

// compactLoop is the background compactor: every Interval it sweeps
// the catalog and runs one merge round per live-ingestion entry whose
// shard set is out of policy. One round per sweep keeps any single
// index from monopolizing the CPU; a backlog converges over
// successive sweeps.
func (e *Engine) compactLoop() {
	defer e.bg.Done()
	t := time.NewTicker(e.compaction.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
		}
		for _, name := range e.cat.names() {
			select {
			case <-e.done:
				return
			default:
			}
			e.compactOnce(name)
		}
	}
}

// compactOnce runs one policy round against name if it has a live
// writer (an index nobody appends to keeps whatever shape its file
// has — compaction exists to bound ingestion-driven fan-out).
func (e *Engine) compactOnce(name string) {
	en, err := e.cat.get(name)
	if err != nil {
		return
	}
	en.mu.RLock()
	w := en.w
	en.mu.RUnlock()
	if w == nil {
		return
	}
	t0 := time.Now()
	r, err := w.Compact(e.compaction.Policy)
	e.metrics.compactSec.Observe(time.Since(t0).Seconds())
	if err != nil {
		e.logf("engine: background compaction of %q: %v", name, err)
		return
	}
	if r.Merged == 0 {
		return
	}
	e.logf("engine: %q compacted shards [%d,%d) — %d trajectories, %d shards left",
		name, r.Lo, r.Hi, r.Rows, r.ShardsAfter)
	e.persistEntry(en, "compaction", r.Rows)
}

// Shutdown stops the background compactor, ends every standing-query
// subscription (their streams close, expiry timers stop), and syncs
// and closes every write-ahead log. Call it after the serving layer
// has drained; queries still work afterwards, but appends to
// WAL-backed entries will fail.
func (e *Engine) Shutdown() {
	if e.done != nil {
		e.stopOnce.Do(func() { close(e.done) })
		e.bg.Wait()
	}
	e.subs.closeAll()
	for _, name := range e.cat.names() {
		en, err := e.cat.get(name)
		if err != nil {
			continue
		}
		en.mu.Lock()
		wl := en.wal
		en.wal = nil
		w := en.w
		en.mu.Unlock()
		if w != nil {
			// Stop background seals so nothing writes after the WAL
			// closes.
			w.Close()
		}
		if wl != nil {
			if err := wl.Close(); err != nil {
				e.logf("engine: closing %q wal: %v", name, err)
			}
		}
	}
}
