package engine

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cinct"
)

func drainEngine(t *testing.T, e *Engine, name string, q cinct.Query) ([]cinct.Hit, string) {
	t.Helper()
	r, err := e.Search(context.Background(), name, q)
	if err != nil {
		t.Fatalf("Search(%+v): %v", q, err)
	}
	defer r.Close()
	var hits []cinct.Hit
	for h, herr := range r.All() {
		if herr != nil {
			t.Fatalf("stream: %v", herr)
		}
		hits = append(hits, h)
	}
	return hits, r.Cursor()
}

// TestEngineAppendSealPersist drives the whole engine write path: an
// append is immediately queryable (with the cache invalidated by the
// generation bump), a seal compacts without changing any answer, and
// the sealed state lands in the backing file so a Reload serves the
// ingested rows.
func TestEngineAppendSealPersist(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(7, 60)
	writeIndexes(t, dir, trajs)
	e := New(Options{SealThreshold: -1})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	marker := []uint32{201, 202, 203}
	before, err := e.Count(ctx, "temporal", marker)
	if err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Fatalf("marker path pre-exists: count %d", before)
	}

	batch := [][]uint32{append([]uint32{9}, marker...), marker}
	times := [][]int64{{5, 10, 20, 30}, {100, 110, 120}}
	res, err := e.Append(ctx, "temporal", batch, times)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstID != len(trajs) || res.Appended != 2 || res.Delta != 2 {
		t.Fatalf("AppendResult = %+v, want firstId %d appended 2 delta 2", res, len(trajs))
	}

	// The cached zero-count must be orphaned by the generation bump.
	after, err := e.Count(ctx, "temporal", marker)
	if err != nil {
		t.Fatal(err)
	}
	if after != 2 {
		t.Fatalf("post-append count = %d, want 2 (stale cache?)", after)
	}
	// Temporal pushdown over the delta.
	fi, err := e.FindInInterval(ctx, "temporal", marker, 100, 130, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fi) != 1 || fi[0].Trajectory != len(trajs)+1 || fi[0].EnteredAt != 100 {
		t.Fatalf("FindInInterval over delta = %+v", fi)
	}
	// Delta rows reconstruct through the engine.
	tr, err := e.Trajectory(ctx, "temporal", len(trajs))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 4 || tr[1] != marker[0] {
		t.Fatalf("delta Trajectory = %v", tr)
	}

	hitsBefore, _ := drainEngine(t, e, "temporal", cinct.Query{Path: marker, Kind: cinct.Occurrences})
	sres, err := e.Seal(ctx, "temporal")
	if err != nil {
		t.Fatal(err)
	}
	if sres.Sealed != 2 || sres.Delta != 0 {
		t.Fatalf("SealResult = %+v, want sealed 2 delta 0", sres)
	}
	hitsAfter, _ := drainEngine(t, e, "temporal", cinct.Query{Path: marker, Kind: cinct.Occurrences})
	if len(hitsBefore) != len(hitsAfter) {
		t.Fatalf("seal changed answers: %v vs %v", hitsBefore, hitsAfter)
	}
	for i := range hitsBefore {
		if hitsBefore[i] != hitsAfter[i] {
			t.Fatalf("seal changed answers: %v vs %v", hitsBefore, hitsAfter)
		}
	}

	// Persistence: the backing file now holds the sealed rows, so a
	// Reload (which discards the writer) still serves them.
	if _, err := e.Reload("temporal"); err != nil {
		t.Fatal(err)
	}
	n, err := e.Count(ctx, "temporal", marker)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("post-reload count = %d, want 2 (seal not persisted)", n)
	}

	info, err := e.Info("temporal")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Trajectories != len(trajs)+2 || info.Delta != 0 {
		t.Fatalf("Info = %+v, want %d trajectories, 0 delta", info, len(trajs)+2)
	}
}

// TestEngineAppendValidation pins the engine-boundary typed errors of
// the write path.
func TestEngineAppendValidation(t *testing.T) {
	e := New(Options{SealThreshold: -1})
	defer e.CloseAll()
	trajs := testCorpus(1, 30)
	ix, err := cinct.Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Register("mem", ix)
	ctx := context.Background()

	if _, err := e.Append(ctx, "nosuch", [][]uint32{{1}}, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown index: err = %v, want ErrNotFound", err)
	}
	if _, err := e.Append(ctx, "mem", [][]uint32{{}}, nil); !errors.Is(err, cinct.ErrBadAppend) {
		t.Fatalf("empty row: err = %v, want ErrBadAppend", err)
	}
	if _, err := e.Append(ctx, "mem", [][]uint32{{1}}, [][]int64{{5}}); !errors.Is(err, cinct.ErrBadAppend) {
		t.Fatalf("times on spatial: err = %v, want ErrBadAppend", err)
	}

	// A count-only base (no locate samples) cannot grow locate-capable
	// shards: the writer refuses rather than building a broken mix.
	countOnly, err := cinct.Build(trajs, &cinct.Options{Block: 63, SampleRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	e.Register("countonly", countOnly)
	if _, err := e.Append(ctx, "countonly", [][]uint32{{1}}, nil); !errors.Is(err, cinct.ErrNotAppendable) {
		t.Fatalf("count-only base: err = %v, want ErrNotAppendable", err)
	}
}

// TestEngineStaleCursor is the regression test for the
// generation-change audit: a cursor minted before a Reload fails with
// ErrStaleCursor instead of silently paging through renumbered data,
// while cursors survive Append and Seal (the ID space only extends).
func TestEngineStaleCursor(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(9, 80)
	writeIndexes(t, dir, trajs)
	e := New(Options{SealThreshold: -1})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := trajs[0][:2]

	full, _ := drainEngine(t, e, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if len(full) < 3 {
		t.Skipf("corpus gave only %d hits; need >= 3", len(full))
	}

	page, cursor := drainEngine(t, e, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 2})
	if cursor == "" {
		t.Fatal("bounded page handed out no cursor")
	}

	// Append: the cursor must keep working (IDs only extend).
	if _, err := e.Append(ctx, "spatial", [][]uint32{{1, 2, 3}}, nil); err != nil {
		t.Fatal(err)
	}
	rest, _ := drainEngine(t, e, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences, Cursor: cursor})
	got := append(append([]cinct.Hit{}, page...), rest...)
	for i := range full {
		if got[i] != full[i] {
			t.Fatalf("resume after append diverged: %v vs %v", got, full)
		}
	}

	// Seal: still valid.
	if _, err := e.Seal(ctx, "spatial"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences, Cursor: cursor}); err != nil {
		t.Fatalf("cursor across seal: %v", err)
	}

	// Reload: the epoch advances and the cursor is dead.
	if _, err := e.Reload("spatial"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences, Cursor: cursor}); !errors.Is(err, ErrStaleCursor) {
		t.Fatalf("cursor across reload: err = %v, want ErrStaleCursor", err)
	}

	// Library tokens, garbage, and an envelope with no inner token
	// (which would silently restart from page one) never unwrap.
	lib := cinct.Query{Path: path, Kind: cinct.Occurrences}.CursorAfter(cinct.Hit{})
	empty := base64.RawURLEncoding.EncodeToString(binary.AppendUvarint([]byte{engineCursorVersion}, 2))
	for _, tok := range []string{lib, "garbage", "!!!", empty} {
		if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences, Cursor: tok}); !errors.Is(err, cinct.ErrBadCursor) {
			t.Fatalf("cursor %q: err = %v, want ErrBadCursor", tok, err)
		}
	}
}

// TestEngineSealSurfacesPersistFailure pins that a compaction whose
// disk write failed is reported as an error, not a durable success.
func TestEngineSealSurfacesPersistFailure(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(2, 30)
	writeIndexes(t, dir, trajs)
	e := New(Options{SealThreshold: -1})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.Append(ctx, "spatial", [][]uint32{{1, 2}}, nil); err != nil {
		t.Fatal(err)
	}
	// Make the backing path unwritable by removing its directory.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Seal(ctx, "spatial"); err == nil {
		t.Fatal("Seal reported success although persistence failed")
	}
	// The rows are still queryable in memory — only durability failed.
	if n, err := e.Count(ctx, "spatial", []uint32{1, 2}); err != nil || n == 0 {
		t.Fatalf("sealed rows lost in memory too: n=%d err=%v", n, err)
	}
}

// TestEngineAutoSealPersists pins the background sealer: crossing the
// threshold compacts and persists without any explicit Seal call.
func TestEngineAutoSealPersists(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(3, 40)
	writeIndexes(t, dir, trajs)
	e := New(Options{SealThreshold: 4})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := e.Append(ctx, "spatial", [][]uint32{{7, 7, 7}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// The background seal races this check; poll the persisted file.
	deadline := 200
	for ; deadline > 0; deadline-- {
		f, err := os.Open(filepath.Join(dir, "spatial"+ExtSpatial))
		if err != nil {
			t.Fatal(err)
		}
		ix, err := cinct.Load(f)
		f.Close()
		if err == nil && ix.NumTrajectories() > len(trajs) {
			return // sealed rows reached disk
		}
		if deadline == 1 {
			t.Fatalf("auto-seal never persisted (file holds %v)", err)
		}
	}
}

// TestEngineIngestSoak extends the concurrency soak to the write
// path: concurrent Append + Seal + Search + reload churn (on a
// sibling index, so the shared cache and worker pool see mixed
// traffic) under -race, asserting no hit is lost or duplicated across
// seal boundaries and that a cursor taken pre-seal resumes correctly
// post-seal.
func TestEngineIngestSoak(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(5, 120)
	writeIndexes(t, dir, trajs)
	e := New(Options{Workers: 4, CacheEntries: 64, SealThreshold: 32})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	marker := []uint32{151, 152}

	const (
		appenders   = 3
		perAppender = 80
	)
	var appendWg, wg sync.WaitGroup
	errc := make(chan error, 16)
	stop := make(chan struct{})

	for g := 0; g < appenders; g++ {
		appendWg.Add(1)
		go func(g int) {
			defer appendWg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perAppender; i++ {
				tr := append([]uint32{uint32(rng.Intn(50))}, marker...)
				col := []int64{int64(i), int64(i + 1), int64(i + 2)}
				if _, err := e.Append(ctx, "temporal", [][]uint32{tr}, [][]int64{col}); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() { // explicit sealer racing the auto-sealer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Seal(ctx, "temporal"); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // reload churn on the sibling index
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Reload("spatial"); err != nil {
				errc <- err
				return
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := e.Count(ctx, "temporal", marker)
				if err != nil {
					errc <- err
					return
				}
				if n < prev {
					t.Errorf("marker count went backwards: %d after %d", n, prev)
					return
				}
				prev = n
				// Page with a cursor, then resume — possibly across a
				// seal that lands in between.
				q := cinct.Query{Path: marker, Kind: cinct.Occurrences, Limit: 5}
				r, err := e.Search(ctx, "temporal", q)
				if err != nil {
					errc <- err
					return
				}
				var page []cinct.Hit
				for h, herr := range r.All() {
					if herr != nil {
						errc <- herr
						return
					}
					page = append(page, h)
				}
				cur := r.Cursor()
				r.Close()
				if cur == "" {
					continue
				}
				q.Cursor = cur
				q.Limit = 5
				r2, err := e.Search(ctx, "temporal", q)
				if err != nil {
					errc <- err
					return
				}
				last := -1
				if len(page) > 0 {
					last = page[len(page)-1].Trajectory*1_000_000 + page[len(page)-1].Offset
				}
				for h, herr := range r2.All() {
					if herr != nil {
						errc <- herr
						return
					}
					if key := h.Trajectory*1_000_000 + h.Offset; key <= last {
						t.Errorf("resumed page duplicated or reordered hits across seal: %v then %v", page, h)
						r2.Close()
						return
					}
				}
				r2.Close()
			}
		}(g)
	}

	appendWg.Wait()
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesce and verify nothing was lost or duplicated.
	if _, err := e.Seal(ctx, "temporal"); err != nil {
		t.Fatal(err)
	}
	n, err := e.Count(ctx, "temporal", marker)
	if err != nil {
		t.Fatal(err)
	}
	if want := appenders * perAppender; n != want {
		t.Fatalf("marker count = %d, want %d (lost or duplicated across seals)", n, want)
	}
}
