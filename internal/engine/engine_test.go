package engine

import (
	"context"
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"cinct"
	"cinct/internal/querygen"
	"cinct/internal/trajgen"
)

func testCorpus(seed int64, n int) [][]uint32 {
	cfg := trajgen.Config{GridW: 8, GridH: 8, NumTrajs: n, MeanLen: 16, Seed: seed}
	return trajgen.Singapore2(cfg).Trajs
}

func testTimes(trajs [][]uint32) [][]int64 {
	times := make([][]int64, len(trajs))
	for k, tr := range trajs {
		col := make([]int64, len(tr))
		t := int64(1000 * k)
		for i := range col {
			col[i] = t
			t += int64(10 + (k+i)%30)
		}
		times[k] = col
	}
	return times
}

// writeIndexes persists a spatial (sharded) and a temporal index for
// one corpus into dir.
func writeIndexes(t *testing.T, dir string, trajs [][]uint32) {
	t.Helper()
	opts := cinct.DefaultOptions()
	opts.Shards = 3
	ix, err := cinct.Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	saveTo(t, filepath.Join(dir, "spatial"+ExtSpatial), ix.Save)
	tix, err := cinct.BuildTemporal(trajs, testTimes(trajs), nil)
	if err != nil {
		t.Fatal(err)
	}
	saveTo(t, filepath.Join(dir, "temporal"+ExtTemporal), tix.Save)
}

func saveTo(t *testing.T, path string, save func(w io.Writer) (int64, error)) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineLifecycle(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(1, 150)
	writeIndexes(t, dir, trajs)

	eng := New(Options{})
	defer eng.CloseAll()
	names, err := eng.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Names(); !reflect.DeepEqual(got, []string{"spatial", "temporal"}) {
		t.Fatalf("Names() = %v (OpenDir returned %v)", got, names)
	}

	ctx := context.Background()
	path := trajs[0][:2]
	want := querygen.NaiveCount(trajs, path)
	for _, name := range []string{"spatial", "temporal"} {
		if got, err := eng.Count(ctx, name, path); err != nil || got != want {
			t.Fatalf("Count(%s) = %d, %v; want %d", name, got, err, want)
		}
	}

	// Temporal-only query routing.
	if _, err := eng.FindInInterval(ctx, "spatial", path, 0, 1<<60, 0); !errors.Is(err, ErrNotTemporal) {
		t.Fatalf("FindInInterval on spatial index: %v, want ErrNotTemporal", err)
	}
	hits, err := eng.FindInInterval(ctx, "temporal", path, 0, 1<<60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != want {
		t.Fatalf("FindInInterval over all time: %d hits, want %d", len(hits), want)
	}

	// Out-of-range IDs become errors, not panics.
	if _, err := eng.Trajectory(ctx, "spatial", len(trajs)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Trajectory(out of range): %v, want ErrOutOfRange", err)
	}
	if _, err := eng.SubPath(ctx, "spatial", 0, 0, len(trajs[0])+5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("SubPath(bad range): %v, want ErrOutOfRange", err)
	}

	// Unknown names and closed entries 404.
	if _, err := eng.Count(ctx, "nope", path); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Count(unknown) err = %v, want ErrNotFound", err)
	}
	if err := eng.Close("spatial"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Count(ctx, "spatial", path); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Count(closed) err = %v, want ErrNotFound", err)
	}

	// A canceled context fails deterministically.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.Count(canceled, "temporal", path); !errors.Is(err, context.Canceled) {
		t.Fatalf("Count(canceled ctx) err = %v, want context.Canceled", err)
	}
}

// TestEngineReloadInvalidatesCache swaps the backing file under a
// loaded index and checks both the generation bump and that no stale
// cached answer survives the reload.
func TestEngineReloadInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	trajsA := testCorpus(1, 120)
	trajsB := testCorpus(2, 180) // different corpus → different answers
	file := filepath.Join(dir, "ix"+ExtSpatial)

	ixA, err := cinct.Build(trajsA, nil)
	if err != nil {
		t.Fatal(err)
	}
	saveTo(t, file, ixA.Save)

	eng := New(Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	path := trajsA[0][:2]
	wantA := querygen.NaiveCount(trajsA, path)
	// Twice: the second call must be a cache hit.
	for i := 0; i < 2; i++ {
		if got, err := eng.Count(ctx, "ix", path); err != nil || got != wantA {
			t.Fatalf("Count = %d, %v; want %d", got, err, wantA)
		}
	}
	if hits, _, _ := eng.CacheStats(); hits == 0 {
		t.Fatal("expected a cache hit on the repeated Count")
	}

	ixB, err := cinct.Build(trajsB, nil)
	if err != nil {
		t.Fatal(err)
	}
	saveTo(t, file, ixB.Save)
	gen, err := eng.Reload("ix")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("Reload returned generation %d, want 2", gen)
	}
	info, err := eng.Info("ix")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 {
		t.Fatalf("generation after reload = %d, want 2", info.Generation)
	}
	wantB := querygen.NaiveCount(trajsB, path)
	if got, err := eng.Count(ctx, "ix", path); err != nil || got != wantB {
		t.Fatalf("Count after reload = %d, %v; want %d (stale pre-reload answer was %d)",
			got, err, wantB, wantA)
	}

	// Reload of a memory-registered index must refuse.
	eng.Register("mem", ixA)
	if _, err := eng.Reload("mem"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("Reload(mem) err = %v, want ErrNoFile", err)
	}

	// Replacing a name via Load (not Reload) must also orphan cached
	// results: the new entry continues the old generation sequence.
	fileA := filepath.Join(dir, "re"+ExtSpatial)
	saveTo(t, fileA, ixA.Save)
	if err := eng.Load("re", fileA); err != nil {
		t.Fatal(err)
	}
	if got, err := eng.Count(ctx, "re", path); err != nil || got != wantA {
		t.Fatalf("Count(re) = %d, %v; want %d", got, err, wantA)
	}
	saveTo(t, fileA, ixB.Save)
	if err := eng.Load("re", fileA); err != nil {
		t.Fatal(err)
	}
	if got, err := eng.Count(ctx, "re", path); err != nil || got != wantB {
		t.Fatalf("Count(re) after Load replacement = %d, %v; want %d (stale answer was %d)",
			got, err, wantB, wantA)
	}
	reInfo, err := eng.Info("re")
	if err != nil {
		t.Fatal(err)
	}
	if reInfo.Generation != 2 {
		t.Fatalf("generation after Load replacement = %d, want 2", reInfo.Generation)
	}
}

// TestEngineTemporalCacheAndReload closes the one gap the temporal
// path used to have: interval queries must hit the LRU cache like
// every other op, distinct intervals must not collide, and a reload
// must orphan cached temporal answers.
func TestEngineTemporalCacheAndReload(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(4, 120)
	times := testTimes(trajs)
	file := filepath.Join(dir, "tix"+ExtTemporal)

	build := func(times [][]int64) {
		tix, err := cinct.BuildTemporal(trajs, times, nil)
		if err != nil {
			t.Fatal(err)
		}
		saveTo(t, file, tix.Save)
	}
	build(times)

	eng := New(Options{})
	defer eng.CloseAll()
	if _, err := eng.OpenDir(dir); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	path := trajs[0][:2]
	from, to := int64(math.MinInt64), int64(math.MaxInt64)

	_, misses0, _ := cacheCounters(eng)
	first, err := eng.FindInInterval(ctx, "tix", path, from, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("expected temporal matches over all time")
	}
	hits0, misses1, _ := cacheCounters(eng)
	if misses1 != misses0+1 {
		t.Fatalf("first FindInInterval: misses %d -> %d, want one new miss", misses0, misses1)
	}
	again, err := eng.FindInInterval(ctx, "tix", path, from, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses2, _ := cacheCounters(eng)
	if hits1 != hits0+1 || misses2 != misses1 {
		t.Fatalf("repeated FindInInterval was not a cache hit (hits %d->%d, misses %d->%d)",
			hits0, hits1, misses1, misses2)
	}
	if !reflect.DeepEqual(again, first) {
		t.Fatal("cache hit returned a different answer")
	}

	// A different interval must be a different cache entry, not a
	// collision with the previous key.
	narrow, err := eng.FindInInterval(ctx, "tix", path, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(narrow, first) {
		t.Fatal("narrow interval returned the all-time answer: cache key collision")
	}

	// CountInInterval caches too and agrees with the find.
	n, err := eng.CountInInterval(ctx, "tix", path, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(first) {
		t.Fatalf("CountInInterval = %d, FindInInterval returned %d", n, len(first))
	}
	hitsBefore, _, _ := cacheCounters(eng)
	if _, err := eng.CountInInterval(ctx, "tix", path, from, to); err != nil {
		t.Fatal(err)
	}
	if hitsAfter, _, _ := cacheCounters(eng); hitsAfter != hitsBefore+1 {
		t.Fatal("repeated CountInInterval was not a cache hit")
	}

	// Reload with shifted timestamps: the generation bump must orphan
	// every cached temporal answer.
	const shift = int64(1) << 40
	shifted := make([][]int64, len(times))
	for k, col := range times {
		out := make([]int64, len(col))
		for i, at := range col {
			out[i] = at + shift
		}
		shifted[k] = out
	}
	build(shifted)
	if _, err := eng.Reload("tix"); err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.FindInInterval(ctx, "tix", path, from, to, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(first) {
		t.Fatalf("after reload: %d matches, want %d", len(fresh), len(first))
	}
	if fresh[0].EnteredAt != first[0].EnteredAt+shift {
		t.Fatalf("after reload EnteredAt = %d, want %d: stale cached answer survived the reload",
			fresh[0].EnteredAt, first[0].EnteredAt+shift)
	}
	if n, err := eng.CountInInterval(ctx, "tix", path, 0, shift-1); err != nil || n != 0 {
		t.Fatalf("pre-shift interval after reload: %d, %v; want 0 (stale store?)", n, err)
	}
}

func cacheCounters(e *Engine) (hits, misses uint64, entries int) { return e.CacheStats() }

// TestSearchKeyNoCollision pins the cache-key contract: keys hash the
// query's canonical binary encoding, in which every field occupies a
// self-delimiting slot — so neighboring numeric fields can never merge
// into the same key, and any semantic difference (interval bounds,
// sign, limit, kind, cursor) yields a distinct key.
func TestSearchKeyNoCollision(t *testing.T) {
	mk := func(q cinct.Query) string {
		enc, err := q.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary(%+v): %v", q, err)
		}
		return searchKey("ix", 1, enc)
	}
	path := []uint32{1, 2}
	pairs := [][2]cinct.Query{
		{
			{Path: path, Interval: &cinct.Interval{From: 1, To: 23}},
			{Path: path, Interval: &cinct.Interval{From: 12, To: 3}},
		},
		{
			{Path: path, Interval: &cinct.Interval{From: -1, To: 1}},
			{Path: path, Interval: &cinct.Interval{From: 1, To: -1}},
		},
		{
			{Path: path, Kind: cinct.Occurrences, Limit: 12},
			{Path: path, Kind: cinct.Occurrences, Limit: 1},
		},
		{
			{Path: path, Kind: cinct.Occurrences},
			{Path: path, Kind: cinct.Trajectories},
		},
		{
			{Path: []uint32{1, 2, 3}},
			{Path: []uint32{12, 3}},
		},
	}
	for i, p := range pairs {
		if a, b := mk(p[0]), mk(p[1]); a == b {
			t.Errorf("pair %d: colliding cache keys %q", i, a)
		}
	}
}

// TestRecoverQuery pins the engine-boundary panic contract for
// temporal queries: a panic surfacing from corrupt index state becomes
// ErrCorrupt instead of killing the goroutine.
func TestRecoverQuery(t *testing.T) {
	err := func() (err error) {
		defer recoverQuery(&err)
		panic("tempo: corrupt column")
	}()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovered err = %v, want ErrCorrupt", err)
	}
}

// TestEngineConcurrentSoak is the load test: many goroutines issue
// mixed Count/Find/SubPath against one cached Engine under -race,
// asserting every answer is identical to an uncached engine over the
// same index — cache hits must be indistinguishable from misses —
// while a reloader goroutine swaps generations underneath them.
func TestEngineConcurrentSoak(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(3, 200)
	opts := cinct.DefaultOptions()
	opts.Shards = 3
	ix, err := cinct.Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, "soak"+ExtSpatial)
	saveTo(t, file, ix.Save)

	cached := New(Options{Workers: 4, CacheEntries: 64}) // small: forces eviction churn
	defer cached.CloseAll()
	uncached := New(Options{Workers: 4, CacheEntries: -1})
	defer uncached.CloseAll()
	for _, e := range []*Engine{cached, uncached} {
		if _, err := e.OpenDir(dir); err != nil {
			t.Fatal(err)
		}
	}

	// A small pool of queries so the cache actually gets hits.
	queries := querygen.New(trajs, 1, 4, 42).Draw(16)

	const (
		goroutines = 8
		iters      = 400
	)
	ctx := context.Background()
	var wg, wgReload sync.WaitGroup
	errc := make(chan error, goroutines+1)
	stopReload := make(chan struct{})
	wgReload.Add(1)
	go func() { // reloader: generation churn during the soak
		defer wgReload.Done()
		for {
			select {
			case <-stopReload:
				return
			default:
			}
			if _, err := cached.Reload("soak"); err != nil {
				errc <- err
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				path := queries[rng.Intn(len(queries))]
				switch i % 4 {
				case 0:
					got, err := cached.Count(ctx, "soak", path)
					if err != nil {
						errc <- err
						return
					}
					want, err := uncached.Count(ctx, "soak", path)
					if err != nil {
						errc <- err
						return
					}
					if got != want {
						t.Errorf("soak Count(%v) = %d, want %d", path, got, want)
						return
					}
				case 1:
					limit := rng.Intn(5) // includes 0 = all
					got, err := cached.Find(ctx, "soak", path, limit)
					if err != nil {
						errc <- err
						return
					}
					want, err := uncached.Find(ctx, "soak", path, limit)
					if err != nil {
						errc <- err
						return
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("soak Find(%v, %d) = %v, want %v", path, limit, got, want)
						return
					}
				case 2:
					id := rng.Intn(len(trajs))
					to := len(trajs[id])
					from := rng.Intn(to)
					got, err := cached.SubPath(ctx, "soak", id, from, to)
					if err != nil {
						errc <- err
						return
					}
					want := trajs[id][from:to]
					if !reflect.DeepEqual(got, want) {
						t.Errorf("soak SubPath(%d, %d, %d) = %v, want %v", id, from, to, got, want)
						return
					}
				case 3:
					// Streaming Search under reload churn: drain a bounded
					// page from the cached engine (live or replayed,
					// depending on what the generation bumps left behind)
					// and compare to the uncached engine.
					q := cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 1 + rng.Intn(4)}
					collect := func(e *Engine) ([]cinct.Hit, error) {
						r, err := e.Search(ctx, "soak", q)
						if err != nil {
							return nil, err
						}
						defer r.Close()
						var hits []cinct.Hit
						for h, herr := range r.All() {
							if herr != nil {
								return nil, herr
							}
							hits = append(hits, h)
						}
						return hits, nil
					}
					got, err := collect(cached)
					if err != nil {
						errc <- err
						return
					}
					want, err := collect(uncached)
					if err != nil {
						errc <- err
						return
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("soak Search(%v, %d) = %v, want %v", q.Path, q.Limit, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopReload) // then stop the reloader
	wgReload.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	hits, misses, _ := cached.CacheStats()
	if hits == 0 {
		t.Fatalf("soak produced no cache hits (misses = %d); the cache path went untested", misses)
	}
	t.Logf("soak: %d cache hits, %d misses", hits, misses)
}
