package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"

	"cinct"
)

// Options tunes an Engine. The zero value picks sensible defaults.
type Options struct {
	// Workers bounds the number of wavelet-tree traversals in flight
	// at once; queries beyond it wait (or fail when their context
	// expires first). 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheEntries is the LRU capacity for Count/Find results across
	// all indexes. 0 means 4096; negative disables caching.
	CacheEntries int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cacheEntries() int {
	switch {
	case o.CacheEntries > 0:
		return o.CacheEntries
	case o.CacheEntries < 0:
		return 0
	}
	return 4096
}

// Engine serves queries over a Catalog of named indexes. It is the
// single concurrency point of the system: every transport (HTTP
// daemon, CLI, tests) funnels through the same bounded worker pool and
// shares the same result cache, so answers and load behavior cannot
// diverge between in-process and remote callers.
type Engine struct {
	cat   *Catalog
	cache *queryCache
	sem   chan struct{}
}

// New creates an empty engine; load indexes with OpenDir, Load or
// Register.
func New(opts Options) *Engine {
	return &Engine{
		cat:   newCatalog(),
		cache: newQueryCache(opts.cacheEntries()),
		sem:   make(chan struct{}, opts.workers()),
	}
}

// acquire takes a worker slot, honoring context cancellation while
// waiting.
func (e *Engine) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		// Deterministic failure for already-expired contexts (select
		// picks randomly among ready cases).
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// OpenDir loads every index file under dir: *.cinct as spatial
// indexes, *.tcinct as temporal ones, each registered under its base
// filename. Returns the loaded names.
func (e *Engine) OpenDir(dir string) ([]string, error) {
	entries, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, en := range entries {
		ix, t, err := en.loadFromFile()
		if err != nil {
			return names, err
		}
		en.gen = 1
		en.spatial, en.temp = ix, t
		e.cat.install(en)
		names = append(names, en.name)
	}
	return names, nil
}

// Load reads one index file and registers it under name, replacing any
// previous index of that name. Temporal indexes are recognized by the
// .tcinct extension.
func (e *Engine) Load(name, path string) error {
	_, temporal, ok := nameForFile(path)
	if !ok {
		// Unrecognized extension: treat as spatial, the common case
		// for ad-hoc CLI files.
		temporal = false
	}
	return e.loadAs(name, path, temporal)
}

// LoadTemporal is Load forcing the temporal format regardless of
// extension.
func (e *Engine) LoadTemporal(name, path string) error {
	return e.loadAs(name, path, true)
}

func (e *Engine) loadAs(name, path string, temporal bool) error {
	en := &entry{name: name, path: path, temporal: temporal}
	ix, t, err := en.loadFromFile()
	if err != nil {
		return err
	}
	en.gen = 1
	en.spatial, en.temp = ix, t
	e.cat.install(en)
	return nil
}

// Register publishes an in-memory spatial index under name (no backing
// file; Reload will fail with ErrNoFile).
func (e *Engine) Register(name string, ix *cinct.Index) {
	e.cat.install(&entry{name: name, gen: 1, spatial: ix})
}

// RegisterTemporal publishes an in-memory temporal index under name.
func (e *Engine) RegisterTemporal(name string, t *cinct.TemporalIndex) {
	e.cat.install(&entry{name: name, gen: 1, temp: t, temporal: true})
}

// Reload re-reads name's backing file, atomically swaps the new index
// in, and returns the new generation (so concurrent reloaders can each
// pair their call with the swap it produced). In-flight queries finish
// against the old generation; cached results of the old generation
// become unreachable at once (see queryCache). The old index stays
// valid until its last query returns.
func (e *Engine) Reload(name string) (uint64, error) {
	en, err := e.cat.get(name)
	if err != nil {
		return 0, err
	}
	if en.path == "" {
		return 0, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	en.loadMu.Lock()
	defer en.loadMu.Unlock()
	ix, t, err := en.loadFromFile()
	if err != nil {
		return 0, err
	}
	return en.swap(ix, t)
}

// Close unregisters name and releases its index for collection once
// in-flight queries drain.
func (e *Engine) Close(name string) error { return e.cat.remove(name) }

// CloseAll closes every index.
func (e *Engine) CloseAll() {
	for _, name := range e.cat.names() {
		e.cat.remove(name) //nolint:errcheck // raced removals are fine
	}
}

// Names lists the registered indexes, sorted.
func (e *Engine) Names() []string { return e.cat.names() }

// Info describes one catalog entry.
type Info struct {
	Name       string `json:"name"`
	Temporal   bool   `json:"temporal"`
	Path       string `json:"path,omitempty"`
	Generation uint64 `json:"generation"`
	// TimestampBits is the compressed temporal store size (temporal
	// indexes only).
	TimestampBits int         `json:"timestampBits,omitempty"`
	Stats         cinct.Stats `json:"stats"`
}

// Info reports metadata and size statistics for name.
func (e *Engine) Info(name string) (Info, error) {
	// One lookup: snapshot and path must come from the same entry or a
	// concurrent replacement could mix two indexes' metadata.
	en, err := e.cat.get(name)
	if err != nil {
		return Info{}, err
	}
	v, err := en.snapshot()
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Name:       v.name,
		Temporal:   v.temporal,
		Path:       en.path,
		Generation: v.gen,
		Stats:      v.index().Stats(),
	}
	if v.temp != nil {
		info.TimestampBits = v.temp.TimestampBits()
	}
	return info, nil
}

// CacheStats reports the shared result cache's lifetime counters.
func (e *Engine) CacheStats() (hits, misses uint64, entries int) {
	return e.cache.stats()
}

// page is the materialized, immutable form of one Search run — the
// value the shared LRU holds. CountOnly pages carry only the count;
// hit pages carry the hits in canonical order plus the resume cursor
// the run ended with.
type page struct {
	count  int
	hits   []cinct.Hit
	cursor string
}

// Results is the engine's streaming query handle: either a replay of a
// cached page or a live library run that accumulates into the cache as
// it is consumed. A live Results holds one engine worker slot until
// the stream is drained, fails, or Close is called — callers that may
// abandon iteration early must defer Close (draining consumers, like
// the legacy wrappers and the HTTP handler, get the release for free).
// Not safe for concurrent use.
type Results struct {
	q    cinct.Query
	page *page // replay source; nil while live
	pos  int

	live *cinct.Results
	pull func() (cinct.Hit, error, bool)
	stop func()
	e    *Engine
	key  string
	held bool
	// acc accumulates live hits for cache population; it is dropped
	// (and tooBig set) once the page exceeds maxCachedPageHits, so an
	// unbounded streaming query never materializes O(result) memory
	// server-side.
	acc    []cinct.Hit
	tooBig bool
	closed bool

	n int
	// last/hasLast track the replay position for Cursor; the live path
	// gets its cursor from the library handle instead.
	last    cinct.Hit
	hasLast bool
	err     error
}

// maxCachedPageHits bounds the size of a Search page the engine will
// hold in the shared LRU (which caps entries, not bytes). Larger
// streams still serve fine — they just recompute on the next identical
// query instead of pinning a huge slice in cache memory.
const maxCachedPageHits = 4096

// All returns the hit stream in canonical (Trajectory, Offset) order.
// Like the library iterator it may be resumed after a break; a query
// or decode failure is yielded once as the final element's error.
func (r *Results) All() iter.Seq2[cinct.Hit, error] {
	return func(yield func(cinct.Hit, error) bool) {
		if r.err != nil {
			yield(cinct.Hit{}, r.err)
			return
		}
		if r.page != nil {
			for r.pos < len(r.page.hits) {
				h := r.page.hits[r.pos]
				r.pos++
				r.n++
				r.last, r.hasLast = h, true
				if !yield(h, nil) {
					return
				}
			}
			return
		}
		if r.live == nil || r.closed {
			return
		}
		if r.pull == nil {
			r.pull, r.stop = iter.Pull2(r.live.All())
		}
		for {
			h, herr, ok, perr := r.pullOne()
			if perr != nil {
				r.fail(perr)
				yield(cinct.Hit{}, perr)
				return
			}
			if !ok {
				r.finishLive()
				return
			}
			if herr != nil {
				r.fail(herr)
				yield(cinct.Hit{}, herr)
				return
			}
			if !r.tooBig {
				r.acc = append(r.acc, h)
				if len(r.acc) > maxCachedPageHits {
					r.acc, r.tooBig = nil, true
				}
			}
			r.n++
			if !yield(h, nil) {
				return
			}
		}
	}
}

// pullOne advances the live library iterator one step, converting a
// panic over corrupt index state into ErrCorrupt (the same boundary
// contract recoverQuery gives every query).
func (r *Results) pullOne() (h cinct.Hit, herr error, ok bool, perr error) {
	defer recoverQuery(&perr)
	h, herr, ok = r.pull()
	return h, herr, ok, nil
}

// finishLive runs when the live stream ends naturally (exhausted, or
// Limit hits yielded): the accumulated page enters the shared cache —
// unless the stream outgrew maxCachedPageHits — so the next identical
// Query replays without touching the index.
func (r *Results) finishLive() {
	r.closed = true
	if !r.tooBig {
		r.e.cache.put(r.key, &page{hits: r.acc, count: len(r.acc), cursor: r.live.Cursor()})
	}
	r.releaseSlot()
}

func (r *Results) fail(err error) {
	r.err = err
	r.releaseSlot()
}

func (r *Results) releaseSlot() {
	if r.stop != nil {
		r.stop()
		r.stop, r.pull = nil, nil
	}
	if r.held {
		r.held = false
		r.e.release()
	}
}

// Close releases the worker slot held by a live run whose iteration
// was abandoned before the stream ended, and ends the stream: a later
// All yields nothing (the engine's concurrency bound must not be
// bypassed by resuming a slot-less iterator). Idempotent; a no-op for
// replayed or drained Results.
func (r *Results) Close() {
	if r.live != nil {
		r.closed = true
	}
	r.releaseSlot()
}

// Count returns the query's count: the full occurrence count for
// CountOnly queries, otherwise the total number of hits after draining
// whatever the iterator has not yielded yet.
func (r *Results) Count() (int, error) {
	if r.q.Kind == cinct.CountOnly {
		if r.err != nil {
			return 0, r.err
		}
		return r.page.count, nil
	}
	for _, err := range r.All() {
		if err != nil {
			return r.n, err
		}
	}
	return r.n, nil
}

// Cursor returns the token that resumes the query just past the last
// hit yielded, or "" when the stream is known exhausted (or nothing
// has been yielded). Semantics mirror cinct.Results.Cursor.
func (r *Results) Cursor() string {
	if r.err != nil {
		return ""
	}
	if r.live != nil {
		return r.live.Cursor()
	}
	if r.page != nil {
		if r.pos >= len(r.page.hits) {
			return r.page.cursor
		}
		if r.hasLast {
			return r.q.CursorAfter(r.last)
		}
	}
	return ""
}

// Search is the engine's single query entry point: every operation —
// spatial or temporal, counting, locating or listing trajectories — is
// a cinct.Query executed here, cached here, and bounded by the same
// worker pool. Results are keyed by (index, generation, SHA-256 of the
// canonical query encoding), so a Reload instantly orphans stale
// pages. Interval queries against a spatial-only index fail with
// ErrNotTemporal; descriptor violations (negative limit, unknown kind)
// fail with cinct.ErrBadQuery before any index work.
func (e *Engine) Search(ctx context.Context, name string, q cinct.Query) (*Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enc, err := q.MarshalBinary()
	if err != nil {
		return nil, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if q.Interval != nil && v.temp == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotTemporal, v.name)
	}
	key := searchKey(v.name, v.gen, enc)
	if val, ok := e.cache.get(key); ok {
		return &Results{q: q, page: val.(*page)}, nil
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	lr, err := func() (lr *cinct.Results, err error) {
		defer recoverQuery(&err)
		if v.temp != nil {
			return v.temp.Search(ctx, q)
		}
		return v.spatial.Search(ctx, q)
	}()
	if err != nil {
		e.release()
		return nil, err
	}
	if q.Kind == cinct.CountOnly {
		n, cerr := lr.Count()
		e.release()
		if cerr != nil {
			return nil, cerr
		}
		p := &page{count: n}
		e.cache.put(key, p)
		return &Results{q: q, page: p}, nil
	}
	return &Results{q: q, live: lr, e: e, key: key, held: true, acc: make([]cinct.Hit, 0, 16)}, nil
}

// Count returns the number of occurrences of path in index name.
// Count is the legacy form of Search with Kind CountOnly; results are
// served from the shared LRU cache when the index generation matches.
func (e *Engine) Count(ctx context.Context, name string, path []uint32) (int, error) {
	r, err := e.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.CountOnly})
	if err != nil {
		return 0, err
	}
	return r.Count()
}

// Find returns up to limit occurrences of path in index name (limit <=
// 0 means all), in canonical (Trajectory, Offset) order. Find is the
// legacy form of Search with Kind Occurrences.
func (e *Engine) Find(ctx context.Context, name string, path []uint32, limit int) ([]cinct.Match, error) {
	if limit < 0 {
		limit = 0
	}
	r, err := e.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: limit})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []cinct.Match
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		out = append(out, h.Match)
	}
	return out, nil
}

// FindTrajectories returns up to limit distinct trajectory IDs
// containing path, ascending. FindTrajectories is the legacy form of
// Search with Kind Trajectories.
func (e *Engine) FindTrajectories(ctx context.Context, name string, path []uint32, limit int) ([]int, error) {
	if limit < 0 {
		limit = 0
	}
	r, err := e.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.Trajectories, Limit: limit})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	ids := make([]int, 0)
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		ids = append(ids, h.Trajectory)
	}
	return ids, nil
}

// checkTrajectory validates a trajectory ID against the snapshot,
// converting the library's documented panic-on-bad-ID contract into an
// error a server can map to a 4xx.
func checkTrajectory(v view, id int) error {
	if n := v.index().NumTrajectories(); id < 0 || id >= n {
		return fmt.Errorf("%w: trajectory %d not in [0,%d)", ErrOutOfRange, id, n)
	}
	return nil
}

// Trajectory reconstructs trajectory id of index name.
func (e *Engine) Trajectory(ctx context.Context, name string, id int) ([]uint32, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if err := checkTrajectory(v, id); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	return v.index().Trajectory(id)
}

// SubPath extracts edges [from, to) of trajectory id of index name.
func (e *Engine) SubPath(ctx context.Context, name string, id, from, to int) ([]uint32, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if err := checkTrajectory(v, id); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	sub, err := v.index().SubPath(id, from, to)
	if err != nil {
		if errors.Is(err, cinct.ErrNoLocate) {
			// Index capability, not bad parameters — don't blame the
			// caller's range.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrOutOfRange, err)
	}
	return sub, nil
}

// recoverQuery converts a panic escaping a library query into a typed
// error, so corrupt in-memory state degrades a single request instead
// of crashing the serving process — the same panic-to-error contract
// checkTrajectory gives the spatial ops.
func recoverQuery(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrCorrupt, r)
	}
}

// FindInInterval runs a strict path query (path traveled with entry
// time in [from, to]) against a temporal index. FindInInterval is the
// legacy form of Search with an Interval and Kind Occurrences.
func (e *Engine) FindInInterval(ctx context.Context, name string, path []uint32, from, to int64, limit int) ([]cinct.TemporalMatch, error) {
	if limit < 0 {
		limit = 0
	}
	q := cinct.Query{
		Path:     path,
		Interval: &cinct.Interval{From: from, To: to},
		Kind:     cinct.Occurrences,
		Limit:    limit,
	}
	r, err := e.Search(ctx, name, q)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []cinct.TemporalMatch
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		out = append(out, cinct.TemporalMatch{Match: h.Match, EnteredAt: h.EnteredAt})
	}
	return out, nil
}

// CountInInterval counts strict-path-query matches (path traveled with
// entry time in [from, to]) against a temporal index. CountInInterval
// is the legacy form of Search with an Interval and Kind CountOnly.
func (e *Engine) CountInInterval(ctx context.Context, name string, path []uint32, from, to int64) (int, error) {
	q := cinct.Query{Path: path, Interval: &cinct.Interval{From: from, To: to}, Kind: cinct.CountOnly}
	r, err := e.Search(ctx, name, q)
	if err != nil {
		return 0, err
	}
	return r.Count()
}
