package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"cinct"
)

// Options tunes an Engine. The zero value picks sensible defaults.
type Options struct {
	// Workers bounds the number of wavelet-tree traversals in flight
	// at once; queries beyond it wait (or fail when their context
	// expires first). 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheEntries is the LRU capacity for Count/Find results across
	// all indexes. 0 means 4096; negative disables caching.
	CacheEntries int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cacheEntries() int {
	switch {
	case o.CacheEntries > 0:
		return o.CacheEntries
	case o.CacheEntries < 0:
		return 0
	}
	return 4096
}

// Engine serves queries over a Catalog of named indexes. It is the
// single concurrency point of the system: every transport (HTTP
// daemon, CLI, tests) funnels through the same bounded worker pool and
// shares the same result cache, so answers and load behavior cannot
// diverge between in-process and remote callers.
type Engine struct {
	cat   *Catalog
	cache *queryCache
	sem   chan struct{}
}

// New creates an empty engine; load indexes with OpenDir, Load or
// Register.
func New(opts Options) *Engine {
	return &Engine{
		cat:   newCatalog(),
		cache: newQueryCache(opts.cacheEntries()),
		sem:   make(chan struct{}, opts.workers()),
	}
}

// acquire takes a worker slot, honoring context cancellation while
// waiting.
func (e *Engine) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		// Deterministic failure for already-expired contexts (select
		// picks randomly among ready cases).
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// OpenDir loads every index file under dir: *.cinct as spatial
// indexes, *.tcinct as temporal ones, each registered under its base
// filename. Returns the loaded names.
func (e *Engine) OpenDir(dir string) ([]string, error) {
	entries, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, en := range entries {
		ix, t, err := en.loadFromFile()
		if err != nil {
			return names, err
		}
		en.gen = 1
		en.spatial, en.temp = ix, t
		e.cat.install(en)
		names = append(names, en.name)
	}
	return names, nil
}

// Load reads one index file and registers it under name, replacing any
// previous index of that name. Temporal indexes are recognized by the
// .tcinct extension.
func (e *Engine) Load(name, path string) error {
	_, temporal, ok := nameForFile(path)
	if !ok {
		// Unrecognized extension: treat as spatial, the common case
		// for ad-hoc CLI files.
		temporal = false
	}
	return e.loadAs(name, path, temporal)
}

// LoadTemporal is Load forcing the temporal format regardless of
// extension.
func (e *Engine) LoadTemporal(name, path string) error {
	return e.loadAs(name, path, true)
}

func (e *Engine) loadAs(name, path string, temporal bool) error {
	en := &entry{name: name, path: path, temporal: temporal}
	ix, t, err := en.loadFromFile()
	if err != nil {
		return err
	}
	en.gen = 1
	en.spatial, en.temp = ix, t
	e.cat.install(en)
	return nil
}

// Register publishes an in-memory spatial index under name (no backing
// file; Reload will fail with ErrNoFile).
func (e *Engine) Register(name string, ix *cinct.Index) {
	e.cat.install(&entry{name: name, gen: 1, spatial: ix})
}

// RegisterTemporal publishes an in-memory temporal index under name.
func (e *Engine) RegisterTemporal(name string, t *cinct.TemporalIndex) {
	e.cat.install(&entry{name: name, gen: 1, temp: t, temporal: true})
}

// Reload re-reads name's backing file, atomically swaps the new index
// in, and returns the new generation (so concurrent reloaders can each
// pair their call with the swap it produced). In-flight queries finish
// against the old generation; cached results of the old generation
// become unreachable at once (see queryCache). The old index stays
// valid until its last query returns.
func (e *Engine) Reload(name string) (uint64, error) {
	en, err := e.cat.get(name)
	if err != nil {
		return 0, err
	}
	if en.path == "" {
		return 0, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	en.loadMu.Lock()
	defer en.loadMu.Unlock()
	ix, t, err := en.loadFromFile()
	if err != nil {
		return 0, err
	}
	return en.swap(ix, t)
}

// Close unregisters name and releases its index for collection once
// in-flight queries drain.
func (e *Engine) Close(name string) error { return e.cat.remove(name) }

// CloseAll closes every index.
func (e *Engine) CloseAll() {
	for _, name := range e.cat.names() {
		e.cat.remove(name) //nolint:errcheck // raced removals are fine
	}
}

// Names lists the registered indexes, sorted.
func (e *Engine) Names() []string { return e.cat.names() }

// Info describes one catalog entry.
type Info struct {
	Name       string `json:"name"`
	Temporal   bool   `json:"temporal"`
	Path       string `json:"path,omitempty"`
	Generation uint64 `json:"generation"`
	// TimestampBits is the compressed temporal store size (temporal
	// indexes only).
	TimestampBits int         `json:"timestampBits,omitempty"`
	Stats         cinct.Stats `json:"stats"`
}

// Info reports metadata and size statistics for name.
func (e *Engine) Info(name string) (Info, error) {
	// One lookup: snapshot and path must come from the same entry or a
	// concurrent replacement could mix two indexes' metadata.
	en, err := e.cat.get(name)
	if err != nil {
		return Info{}, err
	}
	v, err := en.snapshot()
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Name:       v.name,
		Temporal:   v.temporal,
		Path:       en.path,
		Generation: v.gen,
		Stats:      v.index().Stats(),
	}
	if v.temp != nil {
		info.TimestampBits = v.temp.TimestampBits()
	}
	return info, nil
}

// CacheStats reports the shared result cache's lifetime counters.
func (e *Engine) CacheStats() (hits, misses uint64, entries int) {
	return e.cache.stats()
}

// Count returns the number of occurrences of path in index name.
// Results are served from the LRU cache when the index generation
// matches.
func (e *Engine) Count(ctx context.Context, name string, path []uint32) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return 0, err
	}
	key := cacheKey("count", v.name, v.gen, path)
	if val, ok := e.cache.get(key); ok {
		return val.(int), nil
	}
	if err := e.acquire(ctx); err != nil {
		return 0, err
	}
	defer e.release()
	n := v.index().Count(path)
	e.cache.put(key, n)
	return n, nil
}

// Find returns up to limit occurrences of path in index name (limit <=
// 0 means all), in canonical (Trajectory, Offset) order. The returned
// slice may be shared with the cache: callers must not modify it.
func (e *Engine) Find(ctx context.Context, name string, path []uint32, limit int) ([]cinct.Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if limit < 0 {
		limit = 0
	}
	key := cacheKey("find", v.name, v.gen, path, int64(limit))
	if val, ok := e.cache.get(key); ok {
		return val.([]cinct.Match), nil
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	hits, err := v.index().Find(path, limit)
	if err != nil {
		return nil, err
	}
	e.cache.put(key, hits)
	return hits, nil
}

// FindTrajectories returns up to limit distinct trajectory IDs
// containing path, ascending. The returned slice may be shared with
// the cache: callers must not modify it.
func (e *Engine) FindTrajectories(ctx context.Context, name string, path []uint32, limit int) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if limit < 0 {
		limit = 0
	}
	key := cacheKey("findtraj", v.name, v.gen, path, int64(limit))
	if val, ok := e.cache.get(key); ok {
		return val.([]int), nil
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	ids, err := v.index().FindTrajectories(path, limit)
	if err != nil {
		return nil, err
	}
	e.cache.put(key, ids)
	return ids, nil
}

// checkTrajectory validates a trajectory ID against the snapshot,
// converting the library's documented panic-on-bad-ID contract into an
// error a server can map to a 4xx.
func checkTrajectory(v view, id int) error {
	if n := v.index().NumTrajectories(); id < 0 || id >= n {
		return fmt.Errorf("%w: trajectory %d not in [0,%d)", ErrOutOfRange, id, n)
	}
	return nil
}

// Trajectory reconstructs trajectory id of index name.
func (e *Engine) Trajectory(ctx context.Context, name string, id int) ([]uint32, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if err := checkTrajectory(v, id); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	return v.index().Trajectory(id)
}

// SubPath extracts edges [from, to) of trajectory id of index name.
func (e *Engine) SubPath(ctx context.Context, name string, id, from, to int) ([]uint32, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if err := checkTrajectory(v, id); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	sub, err := v.index().SubPath(id, from, to)
	if err != nil {
		if errors.Is(err, cinct.ErrNoLocate) {
			// Index capability, not bad parameters — don't blame the
			// caller's range.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrOutOfRange, err)
	}
	return sub, nil
}

// temporalView resolves name to a snapshot carrying a temporal index.
func (e *Engine) temporalView(name string) (view, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return view{}, err
	}
	if v.temp == nil {
		return view{}, fmt.Errorf("%w: %q", ErrNotTemporal, name)
	}
	return v, nil
}

// recoverQuery converts a panic escaping a library query into a typed
// error, so corrupt in-memory state degrades a single request instead
// of crashing the serving process — the same panic-to-error contract
// checkTrajectory gives the spatial ops.
func recoverQuery(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrCorrupt, r)
	}
}

// FindInInterval runs a strict path query (path traveled with entry
// time in [from, to]) against a temporal index. Results are served
// from the LRU cache when the index generation matches, exactly like
// the spatial query ops. The returned slice may be shared with the
// cache: callers must not modify it.
func (e *Engine) FindInInterval(ctx context.Context, name string, path []uint32, from, to int64, limit int) ([]cinct.TemporalMatch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := e.temporalView(name)
	if err != nil {
		return nil, err
	}
	if limit < 0 {
		limit = 0
	}
	key := cacheKey("tfind", v.name, v.gen, path, from, to, int64(limit))
	if val, ok := e.cache.get(key); ok {
		return val.([]cinct.TemporalMatch), nil
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	hits, err := func() (hits []cinct.TemporalMatch, err error) {
		defer recoverQuery(&err)
		return v.temp.FindInInterval(path, from, to, limit)
	}()
	if err != nil {
		return nil, err
	}
	e.cache.put(key, hits)
	return hits, nil
}

// CountInInterval counts strict-path-query matches (path traveled with
// entry time in [from, to]) against a temporal index, served from the
// LRU cache when the index generation matches.
func (e *Engine) CountInInterval(ctx context.Context, name string, path []uint32, from, to int64) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	v, err := e.temporalView(name)
	if err != nil {
		return 0, err
	}
	key := cacheKey("tcount", v.name, v.gen, path, from, to)
	if val, ok := e.cache.get(key); ok {
		return val.(int), nil
	}
	if err := e.acquire(ctx); err != nil {
		return 0, err
	}
	defer e.release()
	n, err := func() (n int, err error) {
		defer recoverQuery(&err)
		return v.temp.CountInInterval(path, from, to)
	}()
	if err != nil {
		return 0, err
	}
	e.cache.put(key, n)
	return n, nil
}
