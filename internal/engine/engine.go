package engine

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"cinct"
	"cinct/internal/cluster"
	"cinct/internal/metrics"
	"cinct/internal/wal"
)

// Options tunes an Engine. The zero value picks sensible defaults.
type Options struct {
	// Workers bounds the number of wavelet-tree traversals in flight
	// at once; queries beyond it wait (or fail when their context
	// expires first). 0 means runtime.GOMAXPROCS(0).
	Workers int
	// CacheEntries is the LRU capacity for Count/Find results across
	// all indexes. 0 means 4096; negative disables caching.
	CacheEntries int
	// SealThreshold starts a background seal whenever an Append leaves
	// an index's delta holding at least this many trajectories. 0
	// means 4096; negative disables auto-sealing (Seal must be called
	// explicitly).
	SealThreshold int
	// Logf, when non-nil, receives operational log lines (background
	// seals, persistence failures). nil discards them.
	Logf func(format string, args ...any)
	// Mmap serves v3 container files zero-copy via mmap instead of
	// decoding them onto the heap: open is O(metadata), resident
	// memory is bounded by the pages a query actually touches, and
	// seal persistence writes the v3 format so reloads stay mapped.
	// Files in the v1/v2 formats still heap-load (convert them with
	// `cinct convert`).
	Mmap bool
	// WAL enables the ingestion write-ahead log: appended batches are
	// framed, CRC'd and written to per-index segment files before the
	// append is acknowledged, and replayed into the delta when the
	// index is opened — so unsealed rows survive a crash. Zero value
	// disables it.
	WAL WALOptions
	// Compaction configures tiered background compaction of sealed
	// shards, bounding query fan-out under long-lived ingestion. Zero
	// value disables the background compactor; Engine.Compact still
	// works on demand.
	Compaction CompactionOptions
	// Metrics is the registry the engine records its operational series
	// into (query latency and cost, cache hit/miss, pool occupancy and
	// wait, seal/compaction durations, WAL footprint). nil creates a
	// private registry, reachable through Engine.Metrics.
	Metrics *metrics.Registry
	// SlowQuery logs every query whose wall time reaches this duration
	// through Logf, with its full cinct.QueryStats cost account. 0
	// disables the slow-query log.
	SlowQuery time.Duration
	// ShedCost enables cost-aware admission control: when every worker
	// slot is busy, a query whose estimated cost (see estimateCost)
	// reaches this threshold fails immediately with ErrOverloaded
	// instead of queueing. 0 disables shedding — saturated queries
	// queue, the pre-admission-control behavior.
	ShedCost int64
	// Cluster, when non-nil, turns the engine into one node of a
	// phase-1 cluster: hit-producing Searches scatter-gather across the
	// peer set (see SearchScoped) and owned-scope queries from peers are
	// answered from the routing ring's local share. The engine wires
	// the cluster's fetch events into its metrics registry.
	Cluster *cluster.Cluster
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) cacheEntries() int {
	switch {
	case o.CacheEntries > 0:
		return o.CacheEntries
	case o.CacheEntries < 0:
		return 0
	}
	return 4096
}

func (o Options) sealThreshold() int {
	switch {
	case o.SealThreshold > 0:
		return o.SealThreshold
	case o.SealThreshold < 0:
		return 0
	}
	return 4096
}

// Engine serves queries over a Catalog of named indexes. It is the
// single concurrency point of the system: every transport (HTTP
// daemon, CLI, tests) funnels through the same bounded worker pool and
// shares the same result cache, so answers and load behavior cannot
// diverge between in-process and remote callers.
type Engine struct {
	cat       *Catalog
	cache     *queryCache
	sem       chan struct{}
	sealAt    int
	mmap      bool
	logf      func(format string, args ...any)
	metrics   *engineMetrics
	slowQuery time.Duration
	shedCost  int64

	roadnets *roadnetCatalog
	subs     *subRegistry
	cluster  *cluster.Cluster

	walOpts    WALOptions
	compaction CompactionOptions
	// Background-compactor lifecycle: stop closes done (once), bg
	// waits the loop out. done is nil when the compactor is disabled.
	done     chan struct{}
	stopOnce sync.Once
	bg       sync.WaitGroup
}

// New creates an empty engine; load indexes with OpenDir, Load or
// Register.
func New(opts Options) *Engine {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e := &Engine{
		cat:        newCatalog(),
		cache:      newQueryCache(opts.cacheEntries()),
		sem:        make(chan struct{}, opts.workers()),
		sealAt:     opts.sealThreshold(),
		mmap:       opts.Mmap,
		logf:       logf,
		slowQuery:  opts.SlowQuery,
		shedCost:   opts.ShedCost,
		roadnets:   newRoadnetCatalog(),
		subs:       newSubRegistry(),
		cluster:    opts.Cluster,
		walOpts:    opts.WAL,
		compaction: opts.Compaction,
	}
	e.metrics = newEngineMetrics(opts.Metrics, e)
	if e.cluster != nil {
		e.cluster.SetObserver(func(ev cluster.FetchEvent) {
			e.metrics.peerRequests.With(ev.Peer).Inc()
			if ev.Err != nil {
				e.metrics.peerErrors.With(ev.Peer).Inc()
			} else {
				e.metrics.peerLatency.Observe(ev.Duration.Seconds())
			}
			if ev.Hedged {
				e.metrics.peerHedges.With(ev.Peer).Inc()
			}
		})
	}
	if e.compaction.Interval > 0 {
		e.done = make(chan struct{})
		e.bg.Add(1)
		go e.compactLoop()
	}
	return e
}

// OpenDir loads every index file under dir: *.cinct as spatial
// indexes, *.tcinct as temporal ones, each registered under its base
// filename. Returns the loaded names.
func (e *Engine) OpenDir(dir string) ([]string, error) {
	entries, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, en := range entries {
		en.mmap = e.mmap
		ix, t, err := en.loadFromFile()
		if err != nil {
			return names, err
		}
		en.gen, en.epoch = 1, 1
		en.spatial, en.temp = ix, t
		en.sig = indexSig(ix, t)
		// WAL before install: once the entry is reachable through the
		// catalog an Append must find a live log handle, or its batch
		// would be acknowledged without a record.
		if err := e.openWAL(en); err != nil {
			return names, err
		}
		e.cat.install(en)
		names = append(names, en.name)
	}
	return names, nil
}

// Load reads one index file and registers it under name, replacing any
// previous index of that name. Temporal indexes are recognized by the
// .tcinct extension.
func (e *Engine) Load(name, path string) error {
	_, temporal, ok := nameForFile(path)
	if !ok {
		// Unrecognized extension: treat as spatial, the common case
		// for ad-hoc CLI files.
		temporal = false
	}
	return e.loadAs(name, path, temporal)
}

// LoadTemporal is Load forcing the temporal format regardless of
// extension.
func (e *Engine) LoadTemporal(name, path string) error {
	return e.loadAs(name, path, true)
}

func (e *Engine) loadAs(name, path string, temporal bool) error {
	en := &entry{name: name, path: path, temporal: temporal, mmap: e.mmap}
	ix, t, err := en.loadFromFile()
	if err != nil {
		return err
	}
	en.gen, en.epoch = 1, 1
	en.spatial, en.temp = ix, t
	en.sig = indexSig(ix, t)
	// WAL before install, so no Append can reach an entry whose log is
	// missing or mid-replay (see OpenDir).
	if err := e.openWAL(en); err != nil {
		return err
	}
	e.cat.install(en)
	return nil
}

// Register publishes an in-memory spatial index under name (no backing
// file; Reload will fail with ErrNoFile).
func (e *Engine) Register(name string, ix *cinct.Index) {
	e.cat.install(&entry{name: name, gen: 1, epoch: 1, sig: indexSig(ix, nil), spatial: ix})
}

// RegisterTemporal publishes an in-memory temporal index under name.
func (e *Engine) RegisterTemporal(name string, t *cinct.TemporalIndex) {
	e.cat.install(&entry{name: name, gen: 1, epoch: 1, sig: indexSig(nil, t), temp: t, temporal: true})
}

// Reload re-reads name's backing file, atomically swaps the new index
// in, and returns the new generation (so concurrent reloaders can each
// pair their call with the swap it produced). In-flight queries finish
// against the old generation; cached results of the old generation
// become unreachable at once (see queryCache). The old index stays
// valid until its last query returns.
func (e *Engine) Reload(name string) (uint64, error) {
	en, err := e.cat.get(name)
	if err != nil {
		return 0, err
	}
	if en.path == "" {
		return 0, fmt.Errorf("%w: %q", ErrNoFile, name)
	}
	en.loadMu.Lock()
	defer en.loadMu.Unlock()
	ix, t, err := en.loadFromFile()
	if err != nil {
		return 0, err
	}
	// ingestMu is held from the swap through the WAL reopen: a
	// concurrent Append either completes (memtable write + log record)
	// against the old binding before the swap, or waits and re-checks,
	// finding the fresh writer and the fresh log together. Without
	// this, an append could land in a writer the swap discards (acked
	// rows silently dropped) or be acknowledged while en.wal is nil
	// (acked rows never logged).
	en.ingestMu.Lock()
	gen, err := en.swap(ix, t)
	if err != nil {
		en.ingestMu.Unlock()
		return 0, err
	}
	// The swap discarded any live writer (and with it the unsealed
	// delta), but the WAL still holds those rows: reopen and replay it
	// against the freshly loaded file so a reload loses nothing that
	// was acknowledged.
	werr := e.openWALLocked(en)
	en.ingestMu.Unlock()
	if werr != nil {
		return gen, werr
	}
	return gen, nil
}

// Close unregisters name, ends its standing queries, and releases its
// index for collection once in-flight queries drain.
func (e *Engine) Close(name string) error {
	e.subs.closeIndex(name)
	return e.cat.remove(name)
}

// CloseAll closes every index.
func (e *Engine) CloseAll() {
	for _, name := range e.cat.names() {
		e.subs.closeIndex(name)
		e.cat.remove(name) //nolint:errcheck // raced removals are fine
	}
}

// Names lists the registered indexes, sorted.
func (e *Engine) Names() []string { return e.cat.names() }

// Info describes one catalog entry.
type Info struct {
	Name       string `json:"name"`
	Temporal   bool   `json:"temporal"`
	Path       string `json:"path,omitempty"`
	Generation uint64 `json:"generation"`
	// Epoch identifies the trajectory-ID space: it advances on Reload
	// and replacement (invalidating cursors) but not on Append/Seal.
	Epoch uint64 `json:"epoch"`
	// Delta is the number of appended trajectories still in the
	// uncompressed delta (live-ingestion entries only).
	Delta int `json:"deltaTrajectories,omitempty"`
	// TimestampBits is the compressed temporal store size (temporal
	// indexes only).
	TimestampBits int `json:"timestampBits,omitempty"`
	// Mapped reports that the index is served zero-copy from an
	// mmap'd v3 container rather than decoded onto the heap.
	Mapped bool `json:"mapped,omitempty"`
	// WALSegments / WALBytes describe the entry's write-ahead log
	// footprint (entries running with Options.WAL only).
	WALSegments int         `json:"walSegments,omitempty"`
	WALBytes    int64       `json:"walBytes,omitempty"`
	Stats       cinct.Stats `json:"stats"`
}

// Info reports metadata and size statistics for name.
func (e *Engine) Info(name string) (Info, error) {
	// One lookup: snapshot and path must come from the same entry or a
	// concurrent replacement could mix two indexes' metadata.
	en, err := e.cat.get(name)
	if err != nil {
		return Info{}, err
	}
	v, err := en.snapshot()
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Name:       v.name,
		Temporal:   v.temporal,
		Path:       en.path,
		Generation: v.gen,
		Epoch:      v.epoch,
	}
	en.mu.RLock()
	wl := en.wal
	en.mu.RUnlock()
	if wl != nil {
		info.WALSegments, info.WALBytes = wl.Stats()
	}
	if v.w != nil {
		info.Stats = v.w.Stats()
		info.Delta = v.w.DeltaTrajectories()
		if _, t := v.w.Snapshot(); t != nil {
			info.TimestampBits = t.TimestampBits()
		}
		return info, nil
	}
	info.Stats = v.index().Stats()
	info.Mapped = v.index().Mapped()
	if v.temp != nil {
		info.TimestampBits = v.temp.TimestampBits()
	}
	return info, nil
}

// AppendResult summarizes one accepted ingest batch.
type AppendResult struct {
	// FirstID is the global trajectory ID assigned to the batch's
	// first row; rows get consecutive IDs.
	FirstID int `json:"firstId"`
	// Appended is the number of rows accepted (the whole batch — a
	// batch is atomic).
	Appended int `json:"appended"`
	// Delta is the number of trajectories in the uncompressed delta
	// after the batch landed.
	Delta int `json:"deltaTrajectories"`
	// Generation is the index generation after the batch; every cached
	// result of earlier generations is orphaned.
	Generation uint64 `json:"generation"`
}

// Append ingests a batch of trajectories into index name, creating
// the live writer on first use (the index's current state becomes the
// writer's sealed base). The batch is atomic and immediately
// queryable; the generation bump orphans every cached result computed
// before it. times must be nil for a spatial index and row-aligned
// for a temporal one. When the delta crosses the engine's seal
// threshold a background seal compacts it (and persists the sealed
// state for file-backed entries) without blocking queries or appends.
func (e *Engine) Append(ctx context.Context, name string, trajs [][]uint32, times [][]int64) (AppendResult, error) {
	if err := ctx.Err(); err != nil {
		return AppendResult{}, err
	}
	en, err := e.cat.get(name)
	if err != nil {
		return AppendResult{}, err
	}
	// ingestMu keeps (ID assignment, WAL record) atomic across
	// concurrent appenders so the log replays in global-ID order, and
	// it is the same lock Reload holds across (index swap, WAL reopen)
	// — so the writer and log handle read under it are always a
	// matched pair, never an orphaned writer or a log mid-replay. The
	// memtable write comes first — it owns ID assignment — and the
	// batch is only acknowledged once its WAL record's write(2) has
	// completed; a failure in between leaves an unacknowledged batch
	// in the delta, an error on the wire, and the entry poisoned (see
	// walErr): the delta now holds IDs the log lacks, so any further
	// logged append would write a gapped FirstID that a later replay
	// must refuse. A Reload rebuilds the delta from the log and lifts
	// the poison.
	for {
		w, err := e.writerFor(en)
		if err != nil {
			return AppendResult{}, err
		}
		en.ingestMu.Lock()
		en.mu.RLock()
		wl, cur := en.wal, en.w
		en.mu.RUnlock()
		if cur != w {
			// A Reload swapped the binding between writerFor and the
			// lock: rows appended to the orphaned writer would be
			// acknowledged and then silently dropped. Retry against
			// the fresh binding.
			en.ingestMu.Unlock()
			continue
		}
		if perr := en.walErr; perr != nil {
			en.ingestMu.Unlock()
			return AppendResult{}, perr
		}
		first, err := w.AppendBatch(trajs, times)
		if err != nil {
			en.ingestMu.Unlock()
			return AppendResult{}, err
		}
		if wl != nil {
			if werr := wl.Append(wal.Batch{FirstID: first, Trajs: trajs, Times: times}); werr != nil {
				en.walErr = fmt.Errorf("engine: %q write-ahead log: %w (appends disabled until reload: the failed batch holds IDs the log lacks)", en.name, werr)
				perr := en.walErr
				en.ingestMu.Unlock()
				return AppendResult{}, perr
			}
		}
		en.ingestMu.Unlock()
		gen := en.bumpGen()
		e.metrics.appendRows.Add(int64(len(trajs)))
		return AppendResult{FirstID: first, Appended: len(trajs), Delta: w.DeltaTrajectories(), Generation: gen}, nil
	}
}

// writerFor returns the entry's live writer, creating it on first use
// with the engine's seal threshold and the persistence hook.
func (e *Engine) writerFor(en *entry) (*cinct.Writer, error) {
	en.mu.Lock()
	defer en.mu.Unlock()
	if en.closed {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, en.name)
	}
	if en.w != nil {
		return en.w, nil
	}
	cfg := cinct.WriterConfig{
		SealThreshold: e.sealAt,
		OnSeal:        func(n int) { e.afterSeal(en, n) },
		Logf:          e.logf,
		// A background seal that fails before reaching OnSeal (the
		// compaction build itself, not persistence) must not vanish:
		// record it where the next explicit Seal will surface it.
		OnError: func(op string, err error) {
			en.mu.Lock()
			en.sealErr = fmt.Errorf("engine: %q background %s: %w", en.name, op, err)
			en.mu.Unlock()
		},
		// Standing queries: every landed row is tested against the
		// index's registered predicates on the appending goroutine,
		// right after the rows become visible to Search.
		OnAppend: func(first int, trajs [][]uint32, times [][]int64) {
			e.publishAppend(en.name, first, trajs, times)
		},
	}
	var w *cinct.Writer
	var err error
	if en.temporal {
		w, err = cinct.NewTemporalWriterAt(en.temp, cfg)
	} else {
		w, err = cinct.NewWriterAt(en.spatial, cfg)
	}
	if err != nil {
		return nil, err
	}
	en.w = w
	return w, nil
}

// SealResult summarizes one compaction.
type SealResult struct {
	// Sealed is the number of delta trajectories compacted (0 when the
	// delta was already empty).
	Sealed int `json:"sealed"`
	// Delta is the number of trajectories still unsealed afterwards
	// (rows appended while the seal ran).
	Delta int `json:"deltaTrajectories"`
	// Generation is the entry generation after the seal. Sealing does
	// not bump it: query answers are unchanged by compaction, so
	// cached results stay valid.
	Generation uint64 `json:"generation"`
}

// Seal compacts index name's delta into a compressed shard and, for
// file-backed entries, persists the new sealed state to the backing
// file (atomic tmp+rename). Queries and appends proceed throughout.
// An index with no live writer (nothing ever appended) seals
// trivially. A compaction whose persistence failed — disk error, or a
// concurrent Reload that discarded the writer mid-seal — returns that
// error rather than reporting durable success.
func (e *Engine) Seal(ctx context.Context, name string) (SealResult, error) {
	if err := ctx.Err(); err != nil {
		return SealResult{}, err
	}
	en, err := e.cat.get(name)
	if err != nil {
		return SealResult{}, err
	}
	v, err := en.snapshot()
	if err != nil {
		return SealResult{}, err
	}
	if v.w == nil {
		return SealResult{Generation: v.gen}, nil
	}
	t0 := time.Now()
	n, err := v.w.Seal() // afterSeal (the OnSeal hook) persists
	e.metrics.sealSec.Observe(time.Since(t0).Seconds())
	if err != nil {
		return SealResult{}, err
	}
	en.mu.RLock()
	gen, perr := en.gen, en.sealErr
	en.mu.RUnlock()
	res := SealResult{Sealed: n, Delta: v.w.DeltaTrajectories(), Generation: gen}
	if perr != nil {
		// Retry persistence — this covers both a failure during this
		// seal and one left behind by an earlier background seal — and
		// report the outcome instead of a silently non-durable success.
		e.afterSeal(en, n)
		en.mu.RLock()
		perr = en.sealErr
		en.mu.RUnlock()
		if perr != nil {
			return res, perr
		}
	}
	return res, nil
}

// afterSeal is every writer's OnSeal hook: it logs the compaction and
// persists the sealed state for file-backed entries, recording the
// outcome in entry.sealErr so Engine.Seal can surface it. It
// deliberately leaves the generation alone — a seal changes the
// representation, not the answers, so cached pages and outstanding
// cursors both stay valid.
func (e *Engine) afterSeal(en *entry, sealed int) {
	e.logf("engine: %q sealed %d trajectories", en.name, sealed)
	e.persistEntry(en, "seal", sealed)
}

// persistEntry writes the entry's sealed state to its backing file
// (tmp+rename) after a seal or compaction changed it, retires WAL
// segments wholly covered by the persisted rows, and records the
// outcome in entry.sealErr so Engine.Seal / Engine.Compact can
// surface it.
func (e *Engine) persistEntry(en *entry, what string, rows int) {
	en.mu.RLock()
	closed, path, w, wl := en.closed, en.path, en.w, en.wal
	en.mu.RUnlock()
	var err error
	switch {
	case closed || w == nil:
		// A Reload or Close raced the operation and discarded the
		// writer: the compacted rows exist only in the orphaned writer
		// and will not reach disk.
		err = fmt.Errorf("engine: %q was reloaded or closed during the %s; %d trajectories were discarded",
			en.name, what, rows)
	case path == "":
		// Memory-registered entry: nothing to persist, by design.
	default:
		sealedRows, perr := persistWriter(w, path, e.mmap)
		if perr != nil {
			err = fmt.Errorf("engine: persisting %q after %s: %w", en.name, what, perr)
		} else if wl != nil {
			// Every row below sealedRows is durable in the index file;
			// segments holding only such rows are dead weight.
			if rerr := wl.Retire(sealedRows); rerr != nil {
				e.logf("engine: retiring %q wal segments: %v", en.name, rerr)
			}
		}
	}
	if err != nil {
		e.logf("%v", err)
	}
	en.mu.Lock()
	en.sealErr = err
	en.mu.Unlock()
}

// persistWriter saves the writer's sealed snapshot to path via a
// temporary file, fsync, and an atomic rename (with the parent
// directory fsynced after it), so readers of the data dir never
// observe a torn index file and a power failure cannot undo a
// persistence the caller already acted on. The full fsync discipline
// matters because persistEntry retires WAL segments the moment this
// function returns success: the renamed file must be durable before
// the log stops covering its rows. It returns the number of
// trajectories the persisted file holds — the WAL retirement
// watermark.
func persistWriter(w *cinct.Writer, path string, v3 bool) (rows int, err error) {
	ix, t := w.Snapshot()
	if ix == nil && t == nil {
		return 0, nil
	}
	rows = ix.NumTrajectories()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	switch {
	case t != nil && v3:
		_, err = t.SaveV3(f)
	case t != nil:
		_, err = t.Save(f)
	case v3:
		_, err = ix.SaveV3(f)
	default:
		_, err = ix.Save(f)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return rows, syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss — without it the rename itself may not be on disk when the WAL
// segments covering the file's rows are already gone.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// CacheStats reports the shared result cache's lifetime counters.
func (e *Engine) CacheStats() (hits, misses uint64, entries int) {
	return e.cache.stats()
}

// Engine cursors are the library's opaque tokens wrapped in an
// envelope binding them to the identity of the index binding they were
// minted against: the in-process epoch plus the load-time signature
// (see indexSig). The library token positions into a result sequence
// by (trajectory, offset); that position keeps meaning across Append
// and Seal (IDs only ever extend) but not across Reload, where the
// file may hold renumbered data and a resume would return silently
// wrong pages. The epoch catches reloads within a process; the
// signature catches the file changing across a restart, where every
// epoch resets to 1 and would falsely validate.
//
// 0xE2, not 1: the library's own tokens start with their version byte
// 1, and the envelope byte must not collide with them or a bare
// library token would "unwrap" into garbage instead of failing as
// ErrBadCursor. (0xE1 was the pre-signature envelope; changing the
// byte makes old tokens fail as bad cursors rather than misparse.)
const engineCursorVersion = 0xE2

// wrapCursor envelopes a library cursor token with the identity it was
// minted under. Empty tokens (exhausted streams) stay empty.
func wrapCursor(epoch, sig uint64, token string) string {
	if token == "" {
		return ""
	}
	b := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(token))
	b = append(b, engineCursorVersion)
	b = binary.AppendUvarint(b, epoch)
	b = binary.AppendUvarint(b, sig)
	b = append(b, token...)
	return base64.RawURLEncoding.EncodeToString(b)
}

// unwrapCursor decodes an engine cursor envelope back into the inner
// library token and its minting identity. Malformed envelopes
// (including bare library tokens, which never leave the engine) fail
// with cinct.ErrBadCursor; shape validation of the inner token stays
// with the library.
func unwrapCursor(s string) (epoch, sig uint64, token string, err error) {
	raw, derr := base64.RawURLEncoding.DecodeString(s)
	if derr != nil || len(raw) < 2 || raw[0] != engineCursorVersion {
		return 0, 0, "", fmt.Errorf("%w: not an engine cursor", cinct.ErrBadCursor)
	}
	epoch, n := binary.Uvarint(raw[1:])
	if n <= 0 {
		return 0, 0, "", fmt.Errorf("%w: malformed engine cursor", cinct.ErrBadCursor)
	}
	sig, m := binary.Uvarint(raw[1+n:])
	if m <= 0 || len(raw) == 1+n+m {
		// An envelope with no inner token would silently restart the
		// query from page one instead of resuming it.
		return 0, 0, "", fmt.Errorf("%w: malformed engine cursor", cinct.ErrBadCursor)
	}
	return epoch, sig, string(raw[1+n+m:]), nil
}

// page is the materialized, immutable form of one Search run — the
// value the shared LRU holds. CountOnly pages carry only the count;
// hit pages carry the hits in canonical order plus the resume cursor
// the run ended with, in its final (enveloped) form.
type page struct {
	count  int
	hits   []cinct.Hit
	cursor string
}

// hitStream is what a live Results iterates: a plain library run
// (libStream), an ownership-filtered run serving a peer (ownedStream),
// or the coordinator's k-way merge over the cluster (clusterStream).
// Cursor returns the final caller-facing resume token — envelopes
// included — positioned after the last yielded hit, or "" when the
// stream is exhausted. close releases stream-private resources and
// must be idempotent; the engine worker slot stays the Results' own
// concern.
type hitStream interface {
	All() iter.Seq2[cinct.Hit, error]
	Cursor() string
	Stats() cinct.QueryStats
	close()
}

// libStream adapts a plain library run: the cursor is the library
// token in this node's identity envelope.
type libStream struct {
	lr         *cinct.Results
	epoch, sig uint64
}

func (s libStream) All() iter.Seq2[cinct.Hit, error] { return s.lr.All() }
func (s libStream) Cursor() string                   { return wrapCursor(s.epoch, s.sig, s.lr.Cursor()) }
func (s libStream) Stats() cinct.QueryStats          { return s.lr.Stats() }
func (s libStream) close()                           {}

// Results is the engine's streaming query handle: either a replay of a
// cached page or a live library run that accumulates into the cache as
// it is consumed. A live Results holds one engine worker slot until
// the stream is drained, fails, or Close is called — callers that may
// abandon iteration early must defer Close (draining consumers, like
// the legacy wrappers and the HTTP handler, get the release for free).
// Not safe for concurrent use.
type Results struct {
	q     cinct.Query
	epoch uint64 // identity the search ran at; binds handed-out cursors
	sig   uint64
	// ident is the serving identity token peers read from scoped query
	// summaries; set only on owned-scope results.
	ident string
	page  *page // replay source; nil while live
	pos   int

	live hitStream
	pull func() (cinct.Hit, error, bool)
	stop func()
	e    *Engine
	key  string
	held bool
	// name/start/recorded close the metrics account exactly once when
	// the live stream finishes, fails, or is abandoned via Close.
	name     string
	start    time.Time
	recorded bool
	// acc accumulates live hits for cache population; it is dropped
	// (and tooBig set) once the page exceeds maxCachedPageHits, so an
	// unbounded streaming query never materializes O(result) memory
	// server-side.
	acc    []cinct.Hit
	tooBig bool
	closed bool

	n int
	// last/hasLast track the replay position for Cursor; the live path
	// gets its cursor from the library handle instead.
	last    cinct.Hit
	hasLast bool
	err     error
}

// maxCachedPageHits bounds the size of a Search page the engine will
// hold in the shared LRU (which caps entries, not bytes). Larger
// streams still serve fine — they just recompute on the next identical
// query instead of pinning a huge slice in cache memory.
const maxCachedPageHits = 4096

// All returns the hit stream in canonical (Trajectory, Offset) order.
// Like the library iterator it may be resumed after a break; a query
// or decode failure is yielded once as the final element's error.
func (r *Results) All() iter.Seq2[cinct.Hit, error] {
	return func(yield func(cinct.Hit, error) bool) {
		if r.err != nil {
			yield(cinct.Hit{}, r.err)
			return
		}
		if r.page != nil {
			for r.pos < len(r.page.hits) {
				h := r.page.hits[r.pos]
				r.pos++
				r.n++
				r.last, r.hasLast = h, true
				if !yield(h, nil) {
					return
				}
			}
			return
		}
		if r.live == nil || r.closed {
			return
		}
		if r.pull == nil {
			r.pull, r.stop = iter.Pull2(r.live.All())
		}
		for {
			h, herr, ok, perr := r.pullOne()
			if perr != nil {
				r.fail(perr)
				yield(cinct.Hit{}, perr)
				return
			}
			if !ok {
				r.finishLive()
				return
			}
			if herr != nil {
				r.fail(herr)
				yield(cinct.Hit{}, herr)
				return
			}
			if !r.tooBig {
				r.acc = append(r.acc, h)
				if len(r.acc) > maxCachedPageHits {
					r.acc, r.tooBig = nil, true
				}
			}
			r.n++
			if !yield(h, nil) {
				return
			}
		}
	}
}

// pullOne advances the live library iterator one step, converting a
// panic over corrupt index state into ErrCorrupt (the same boundary
// contract recoverQuery gives every query).
func (r *Results) pullOne() (h cinct.Hit, herr error, ok bool, perr error) {
	defer recoverQuery(&perr)
	h, herr, ok = r.pull()
	return h, herr, ok, nil
}

// finishLive runs when the live stream ends naturally (exhausted, or
// Limit hits yielded): the accumulated page enters the shared cache —
// unless the stream outgrew maxCachedPageHits — so the next identical
// Query replays without touching the index.
func (r *Results) finishLive() {
	r.closed = true
	if !r.tooBig {
		r.e.cache.put(r.key, &page{hits: r.acc, count: len(r.acc), cursor: r.live.Cursor()})
	}
	r.record(nil)
	r.releaseSlot()
}

func (r *Results) fail(err error) {
	r.err = err
	r.record(err)
	r.releaseSlot()
}

// record closes the live run's metrics account (latency, cost,
// slow-query log) exactly once, whichever of finishLive, fail or Close
// gets there first.
func (r *Results) record(err error) {
	if r.recorded || r.live == nil {
		return
	}
	r.recorded = true
	r.e.recordQuery(r.name, r.q, r.start, r.live.Stats(), err)
}

func (r *Results) releaseSlot() {
	if r.stop != nil {
		r.stop()
		r.stop, r.pull = nil, nil
	}
	if r.live != nil {
		r.live.close()
	}
	if r.held {
		r.held = false
		r.e.release()
	}
}

// Close releases the worker slot held by a live run whose iteration
// was abandoned before the stream ended, and ends the stream: a later
// All yields nothing (the engine's concurrency bound must not be
// bypassed by resuming a slot-less iterator). Idempotent; a no-op for
// replayed or drained Results.
func (r *Results) Close() {
	if r.live != nil {
		r.closed = true
		r.record(r.err)
	}
	r.releaseSlot()
}

// Count returns the query's count: the full occurrence count for
// CountOnly queries, otherwise the total number of hits after draining
// whatever the iterator has not yielded yet.
func (r *Results) Count() (int, error) {
	if r.q.Kind == cinct.CountOnly {
		if r.err != nil {
			return 0, r.err
		}
		return r.page.count, nil
	}
	for _, err := range r.All() {
		if err != nil {
			return r.n, err
		}
	}
	return r.n, nil
}

// Cursor returns the token that resumes the query just past the last
// hit yielded, or "" when the stream is known exhausted (or nothing
// has been yielded). Semantics mirror cinct.Results.Cursor, except
// that engine cursors carry the epoch envelope: resuming after a
// Reload fails with ErrStaleCursor instead of paging through
// renumbered data, while resuming across Append or Seal keeps
// working.
func (r *Results) Cursor() string {
	if r.err != nil {
		return ""
	}
	if r.live != nil {
		return r.live.Cursor()
	}
	if r.page != nil {
		if r.pos >= len(r.page.hits) {
			return r.page.cursor
		}
		if r.hasLast {
			return wrapCursor(r.epoch, r.sig, r.q.CursorAfter(r.last))
		}
	}
	return ""
}

// Ident returns the serving index's identity token for owned-scope
// results ("" otherwise); scoped query summaries carry it so a cluster
// coordinator can mint per-node resume cursors.
func (r *Results) Ident() string { return r.ident }

// Search is the engine's single query entry point: every operation —
// spatial or temporal, counting, locating or listing trajectories — is
// a cinct.Query executed here, cached here, and bounded by the same
// worker pool. Results are keyed by (index, generation, SHA-256 of the
// canonical query encoding), so a Reload instantly orphans stale
// pages. Interval queries against a spatial-only index fail with
// ErrNotTemporal; descriptor violations (negative limit, unknown kind)
// fail with cinct.ErrBadQuery before any index work.
func (e *Engine) Search(ctx context.Context, name string, q cinct.Query) (*Results, error) {
	return e.SearchScoped(ctx, name, q, ScopeAuto)
}

// SearchScoped is Search with explicit cluster scope. ScopeAuto is
// what Search does: scatter-gather on a clustered engine (except
// CountOnly, which every node answers exactly from its full local
// copy), plain local serving otherwise. ScopeOwned answers only from
// ring-owned trajectories and never fans out — it is the scope peers
// request from each other, and fails on a non-clustered engine.
func (e *Engine) SearchScoped(ctx context.Context, name string, q cinct.Query, scope Scope) (*Results, error) {
	if scope == ScopeOwned {
		return e.searchOwned(ctx, name, q)
	}
	if e.cluster != nil && q.Kind != cinct.CountOnly {
		return e.searchCluster(ctx, name, q)
	}
	return e.searchLocal(ctx, name, q)
}

func (e *Engine) searchLocal(ctx context.Context, name string, q cinct.Query) (*Results, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if q.Cursor != "" {
		epoch, sig, inner, cerr := unwrapCursor(q.Cursor)
		if cerr != nil {
			return nil, cerr
		}
		if epoch != v.epoch || sig != v.sig {
			return nil, fmt.Errorf("%w: %q changed since the cursor was issued", ErrStaleCursor, v.name)
		}
		// The library sees only its own token; the cache key is built
		// from the unwrapped form so a page is reusable whatever
		// identity envelope it arrived in.
		q.Cursor = inner
	}
	enc, err := q.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if q.Interval != nil && !v.isTemporal() {
		return nil, fmt.Errorf("%w: %q", ErrNotTemporal, v.name)
	}
	key := searchKey(v.name, v.gen, enc)
	start := time.Now()
	e.metrics.queries.With(kindLabel(q.Kind)).Inc()
	if val, ok := e.cache.get(key); ok {
		e.metrics.cacheHits.Inc()
		e.recordQuery(v.name, q, start, cinct.QueryStats{}, nil)
		return &Results{q: q, epoch: v.epoch, sig: v.sig, page: val.(*page)}, nil
	}
	e.metrics.cacheMisses.Inc()
	if err := e.acquire(ctx, estimateCost(q)); err != nil {
		e.recordQuery(v.name, q, start, cinct.QueryStats{}, err)
		return nil, err
	}
	lr, err := func() (lr *cinct.Results, err error) {
		defer recoverQuery(&err)
		switch {
		case v.w != nil:
			return v.w.Search(ctx, q)
		case v.temp != nil:
			return v.temp.Search(ctx, q)
		}
		return v.spatial.Search(ctx, q)
	}()
	if err != nil {
		e.release()
		e.recordQuery(v.name, q, start, cinct.QueryStats{}, err)
		return nil, err
	}
	if q.Kind == cinct.CountOnly {
		n, cerr := lr.Count()
		e.release()
		e.recordQuery(v.name, q, start, lr.Stats(), cerr)
		if cerr != nil {
			return nil, cerr
		}
		p := &page{count: n}
		e.cache.put(key, p)
		return &Results{q: q, epoch: v.epoch, sig: v.sig, page: p}, nil
	}
	return &Results{q: q, epoch: v.epoch, sig: v.sig,
		live: libStream{lr: lr, epoch: v.epoch, sig: v.sig}, e: e, key: key, held: true,
		name: v.name, start: start, acc: make([]cinct.Hit, 0, 16)}, nil
}

// Count returns the number of occurrences of path in index name.
// Count is the legacy form of Search with Kind CountOnly; results are
// served from the shared LRU cache when the index generation matches.
func (e *Engine) Count(ctx context.Context, name string, path []uint32) (int, error) {
	r, err := e.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.CountOnly})
	if err != nil {
		return 0, err
	}
	return r.Count()
}

// Find returns up to limit occurrences of path in index name (limit <=
// 0 means all), in canonical (Trajectory, Offset) order. Find is the
// legacy form of Search with Kind Occurrences.
func (e *Engine) Find(ctx context.Context, name string, path []uint32, limit int) ([]cinct.Match, error) {
	if limit < 0 {
		limit = 0
	}
	r, err := e.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: limit})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []cinct.Match
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		out = append(out, h.Match)
	}
	return out, nil
}

// FindTrajectories returns up to limit distinct trajectory IDs
// containing path, ascending. FindTrajectories is the legacy form of
// Search with Kind Trajectories.
func (e *Engine) FindTrajectories(ctx context.Context, name string, path []uint32, limit int) ([]int, error) {
	if limit < 0 {
		limit = 0
	}
	r, err := e.Search(ctx, name, cinct.Query{Path: path, Kind: cinct.Trajectories, Limit: limit})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	ids := make([]int, 0)
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		ids = append(ids, h.Trajectory)
	}
	return ids, nil
}

// checkTrajectory validates a trajectory ID against the snapshot
// (including unsealed delta rows), converting the library's
// documented panic-on-bad-ID contract into an error a server can map
// to a 4xx.
func checkTrajectory(v view, id int) error {
	if n := v.numTrajectories(); id < 0 || id >= n {
		return fmt.Errorf("%w: trajectory %d not in [0,%d)", ErrOutOfRange, id, n)
	}
	return nil
}

// Trajectory reconstructs trajectory id of index name.
func (e *Engine) Trajectory(ctx context.Context, name string, id int) ([]uint32, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if err := checkTrajectory(v, id); err != nil {
		return nil, err
	}
	// Extraction cost is one trajectory's length — never sheddable.
	if err := e.acquire(ctx, 1); err != nil {
		return nil, err
	}
	defer e.release()
	if v.w != nil {
		return v.w.Trajectory(id)
	}
	return v.index().Trajectory(id)
}

// SubPath extracts edges [from, to) of trajectory id of index name.
func (e *Engine) SubPath(ctx context.Context, name string, id, from, to int) ([]uint32, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if err := checkTrajectory(v, id); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx, 1); err != nil {
		return nil, err
	}
	defer e.release()
	var sub []uint32
	if v.w != nil {
		sub, err = v.w.SubPath(id, from, to)
	} else {
		sub, err = v.index().SubPath(id, from, to)
	}
	if err != nil {
		if errors.Is(err, cinct.ErrNoLocate) {
			// Index capability, not bad parameters — don't blame the
			// caller's range.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrOutOfRange, err)
	}
	return sub, nil
}

// recoverQuery converts a panic escaping a library query into a typed
// error, so corrupt in-memory state degrades a single request instead
// of crashing the serving process — the same panic-to-error contract
// checkTrajectory gives the spatial ops.
func recoverQuery(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrCorrupt, r)
	}
}

// FindInInterval runs a strict path query (path traveled with entry
// time in [from, to]) against a temporal index. FindInInterval is the
// legacy form of Search with an Interval and Kind Occurrences.
func (e *Engine) FindInInterval(ctx context.Context, name string, path []uint32, from, to int64, limit int) ([]cinct.TemporalMatch, error) {
	if limit < 0 {
		limit = 0
	}
	q := cinct.Query{
		Path:     path,
		Interval: &cinct.Interval{From: from, To: to},
		Kind:     cinct.Occurrences,
		Limit:    limit,
	}
	r, err := e.Search(ctx, name, q)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []cinct.TemporalMatch
	for h, herr := range r.All() {
		if herr != nil {
			return nil, herr
		}
		out = append(out, cinct.TemporalMatch{Match: h.Match, EnteredAt: h.EnteredAt})
	}
	return out, nil
}

// CountInInterval counts strict-path-query matches (path traveled with
// entry time in [from, to]) against a temporal index. CountInInterval
// is the legacy form of Search with an Interval and Kind CountOnly.
func (e *Engine) CountInInterval(ctx context.Context, name string, path []uint32, from, to int64) (int, error) {
	q := cinct.Query{Path: path, Interval: &cinct.Interval{From: from, To: to}, Kind: cinct.CountOnly}
	r, err := e.Search(ctx, name, q)
	if err != nil {
		return 0, err
	}
	return r.Count()
}
