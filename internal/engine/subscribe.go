package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cinct"
)

// Standing queries: a client registers a path+interval predicate
// against an index and the writer's append path tests every freshly
// landed trajectory against it, pushing matches to the subscriber.
// Evaluation reuses the delta's brute-force scan machinery
// (cinct.MatchRow), so a notification fires exactly when a Search for
// the same predicate would have found the new row.
//
// Delivery is decoupled from the append path by a bounded per-
// subscriber buffer: the appender never blocks on a slow consumer —
// when the buffer is full the notification is dropped and counted
// (observable per subscription and in aggregate), the standard
// pub/sub backpressure contract for at-most-once push feeds.

// ErrBadSubscription reports a subscription request rejected before
// registration: an empty path, or an interval predicate against a
// spatial index.
var ErrBadSubscription = errors.New("engine: bad subscription")

// Predicate is what a standing query watches for: a path (required),
// optionally constrained to entry times within a closed interval.
type Predicate struct {
	Path     []uint32
	Interval *cinct.Interval
}

// SubscribeOptions tunes one subscription. Zero values pick defaults.
type SubscribeOptions struct {
	// TTL bounds the subscription's lifetime; it is removed (and its
	// channel closed) when the TTL elapses. 0 means 15 minutes, capped
	// at 24 hours.
	TTL time.Duration
	// Buffer is the per-subscriber notification buffer; when it is
	// full, further notifications are dropped and counted rather than
	// blocking the append path. 0 means 64, capped at 4096.
	Buffer int
}

const (
	defaultSubTTL    = 15 * time.Minute
	maxSubTTL        = 24 * time.Hour
	defaultSubBuffer = 64
	maxSubBuffer     = 4096
)

// Notification is one standing-query match: a freshly appended
// trajectory satisfied the subscription's predicate. A final
// drop-report notification — Trajectory and Offset both -1 — is
// delivered when the stream closes with drops the consumer has not
// seen in-band yet, so losses are observable even when no further
// match ever arrives.
type Notification struct {
	Subscription string `json:"subscription"`
	Index        string `json:"index"`
	// Trajectory/Offset locate the first matching occurrence in the
	// new row, exactly as a Search hit would; both are -1 on the final
	// drop-report notification.
	Trajectory int `json:"trajectory"`
	Offset     int `json:"offset"`
	// EnteredAt is the entry time of the match's first edge (timed
	// rows only).
	EnteredAt int64 `json:"enteredAt,omitempty"`
	// Dropped is the subscription's cumulative dropped-notification
	// count at send time, so a consumer can detect losses in-band.
	Dropped uint64 `json:"dropped,omitempty"`
}

// Subscription is one registered standing query. Consumers receive
// from C until it is closed (cancel, expiry, index close or engine
// shutdown).
type Subscription struct {
	id      string
	index   string
	pred    Predicate
	expires time.Time
	ch      chan Notification
	timer   *time.Timer

	// mu orders push against close: a send on a closed channel would
	// panic, so both the send and the close happen under mu.
	mu     sync.Mutex
	closed bool
	// reported is the drop count the consumer has seen in-band (the
	// Dropped field of the last successfully buffered notification).
	// close compares it against dropped to decide whether a final
	// drop-report notification is owed. Guarded by mu.
	reported uint64
	dropped  atomic.Uint64
}

// ID returns the subscription's registry key.
func (s *Subscription) ID() string { return s.id }

// Index returns the index the subscription watches.
func (s *Subscription) Index() string { return s.index }

// Predicate returns the registered predicate.
func (s *Subscription) Predicate() Predicate { return s.pred }

// ExpiresAt returns the subscription's expiry deadline.
func (s *Subscription) ExpiresAt() time.Time { return s.expires }

// Dropped returns the number of notifications dropped because the
// consumer was too slow.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// C is the notification stream; it is closed when the subscription
// ends for any reason.
func (s *Subscription) C() <-chan Notification { return s.ch }

// push delivers one notification without ever blocking: delivered
// reports a successful buffered send, droppedNow that the consumer's
// buffer was full (counted). A closed subscription reports neither.
func (s *Subscription) push(n Notification) (delivered, droppedNow bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, false
	}
	n.Dropped = s.dropped.Load()
	select {
	case s.ch <- n:
		// Only a *successful* send makes the snapshot visible; a drop
		// whose count was snapshotted into a notification that never
		// left stays unreported until close settles the account.
		s.reported = n.Dropped
		return true, false
	default:
		s.dropped.Add(1)
		return false, true
	}
}

// close ends the stream exactly once. If notifications were dropped
// after the last count the consumer saw in-band, a final drop-report
// notification (Trajectory/Offset -1) is delivered first — evicting
// the oldest buffered notification if the buffer is still full — so a
// consumer whose very last notification was dropped still learns of
// the loss instead of seeing a clean close.
func (s *Subscription) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if d := s.dropped.Load(); d > s.reported {
		n := Notification{Subscription: s.id, Index: s.index, Trajectory: -1, Offset: -1, Dropped: d}
		select {
		case s.ch <- n:
			s.reported = d
		default:
			select {
			case <-s.ch:
			default:
			}
			select {
			case s.ch <- n:
				s.reported = d
			default:
			}
		}
	}
	s.closed = true
	close(s.ch)
}

// subRegistry holds every live subscription, keyed by index then
// subscription ID.
type subRegistry struct {
	mu      sync.RWMutex
	byIndex map[string]map[string]*Subscription
	seq     uint64
	closed  bool
}

func newSubRegistry() *subRegistry {
	return &subRegistry{byIndex: make(map[string]map[string]*Subscription)}
}

func (r *subRegistry) add(index string, pred Predicate, ttl time.Duration, buffer int, onExpire func(*Subscription)) (*Subscription, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("%w: engine shut down", ErrBadSubscription)
	}
	r.seq++
	s := &Subscription{
		id:      fmt.Sprintf("sub-%d", r.seq),
		index:   index,
		pred:    pred,
		expires: time.Now().Add(ttl),
		ch:      make(chan Notification, buffer),
	}
	m := r.byIndex[index]
	if m == nil {
		m = make(map[string]*Subscription)
		r.byIndex[index] = m
	}
	m[s.id] = s
	s.timer = time.AfterFunc(ttl, func() { onExpire(s) })
	return s, nil
}

// remove unregisters and closes the subscription; it reports whether
// this call was the one that removed it. A TTL timer that has already
// started firing when Stop is called simply loses the race: its
// onExpire finds the subscription gone (this function returns false
// for it), close is idempotent, and only the winning caller counts —
// no double-close, no metric double-count. The timer handle is
// captured under the registry lock so remove never races the add that
// published it.
func (r *subRegistry) remove(index, id string) bool {
	r.mu.Lock()
	s := r.byIndex[index][id]
	var t *time.Timer
	if s != nil {
		delete(r.byIndex[index], id)
		if len(r.byIndex[index]) == 0 {
			delete(r.byIndex, index)
		}
		t = s.timer
	}
	r.mu.Unlock()
	if s == nil {
		return false
	}
	if t != nil {
		t.Stop()
	}
	s.close()
	return true
}

func (r *subRegistry) get(index, id string) *Subscription {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byIndex[index][id]
}

// forIndex snapshots the index's subscriptions for lock-free iteration
// on the publish path.
func (r *subRegistry) forIndex(index string) []*Subscription {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m := r.byIndex[index]
	if len(m) == 0 {
		return nil
	}
	out := make([]*Subscription, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	return out
}

func (r *subRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, m := range r.byIndex {
		n += len(m)
	}
	return n
}

// closeIndex ends every subscription watching index (the index was
// closed or the engine is shutting down).
func (r *subRegistry) closeIndex(index string) {
	r.mu.Lock()
	m := r.byIndex[index]
	delete(r.byIndex, index)
	timers := make([]*time.Timer, 0, len(m))
	for _, s := range m {
		timers = append(timers, s.timer)
	}
	r.mu.Unlock()
	for _, t := range timers {
		if t != nil {
			t.Stop()
		}
	}
	for _, s := range m {
		s.close()
	}
}

// closeAll ends every subscription and refuses new ones.
func (r *subRegistry) closeAll() {
	r.mu.Lock()
	all := r.byIndex
	r.byIndex = make(map[string]map[string]*Subscription)
	r.closed = true
	var timers []*time.Timer
	for _, m := range all {
		for _, s := range m {
			timers = append(timers, s.timer)
		}
	}
	r.mu.Unlock()
	for _, t := range timers {
		if t != nil {
			t.Stop()
		}
	}
	for _, m := range all {
		for _, s := range m {
			s.close()
		}
	}
}

// Subscribe registers a standing query against index name. The
// predicate must carry a non-empty path; an interval predicate
// requires a temporal index. The returned subscription streams
// matches over C until cancelled or expired.
func (e *Engine) Subscribe(name string, pred Predicate, opts SubscribeOptions) (*Subscription, error) {
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if len(pred.Path) == 0 {
		return nil, fmt.Errorf("%w: empty path", ErrBadSubscription)
	}
	if pred.Interval != nil && !v.isTemporal() {
		return nil, fmt.Errorf("%w: %q", ErrNotTemporal, name)
	}
	ttl := opts.TTL
	switch {
	case ttl <= 0:
		ttl = defaultSubTTL
	case ttl > maxSubTTL:
		ttl = maxSubTTL
	}
	buffer := opts.Buffer
	switch {
	case buffer <= 0:
		buffer = defaultSubBuffer
	case buffer > maxSubBuffer:
		buffer = maxSubBuffer
	}
	s, err := e.subs.add(name, pred, ttl, buffer, func(s *Subscription) {
		if e.subs.remove(s.index, s.id) {
			e.metrics.subsExpired.Inc()
		}
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Unsubscribe cancels a subscription; the consumer's channel closes.
func (e *Engine) Unsubscribe(name, id string) error {
	if !e.subs.remove(name, id) {
		return fmt.Errorf("%w: subscription %q on %q", ErrNotFound, id, name)
	}
	return nil
}

// GetSubscription returns a live subscription by ID.
func (e *Engine) GetSubscription(name, id string) (*Subscription, error) {
	s := e.subs.get(name, id)
	if s == nil {
		return nil, fmt.Errorf("%w: subscription %q on %q", ErrNotFound, id, name)
	}
	return s, nil
}

// publishAppend is the writers' OnAppend hook: it tests every landed
// row against the index's registered predicates and pushes matches.
// It runs on the appending goroutine (the rows are already visible to
// Search), so delivery never blocks: slow consumers drop and count.
func (e *Engine) publishAppend(index string, first int, trajs [][]uint32, times [][]int64) {
	subs := e.subs.forIndex(index)
	if len(subs) == 0 {
		return
	}
	for _, s := range subs {
		for k, row := range trajs {
			var col []int64
			if times != nil {
				col = times[k]
			}
			off, at, ok := cinct.MatchRow(row, col, s.pred.Path, s.pred.Interval)
			if !ok {
				continue
			}
			delivered, droppedNow := s.push(Notification{
				Subscription: s.id,
				Index:        index,
				Trajectory:   first + k,
				Offset:       off,
				EnteredAt:    at,
			})
			switch {
			case delivered:
				e.metrics.notifSent.Inc()
			case droppedNow:
				e.metrics.notifDropped.Inc()
			}
		}
	}
}
