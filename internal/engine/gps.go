package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cinct/internal/gps"
	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// The engine's road-network catalog: each index may have a road
// network (with a default matching configuration) attached, and raw
// GPS traces posted to that index are map-matched against it before
// entering the ordinary Append → WAL → delta → seal flow. A graph
// attached under the empty name is the fallback for every index
// without its own.

// ErrNoRoadnet reports a GPS ingest against an index with no road
// network attached (neither its own nor a default).
var ErrNoRoadnet = errors.New("engine: no road network attached")

// roadnetCatalog maps index names to their serving matchers.
type roadnetCatalog struct {
	mu sync.RWMutex
	m  map[string]*gps.Matcher // "" is the default binding
}

func newRoadnetCatalog() *roadnetCatalog {
	return &roadnetCatalog{m: make(map[string]*gps.Matcher)}
}

func (c *roadnetCatalog) set(index string, m *gps.Matcher) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m == nil {
		delete(c.m, index)
		return
	}
	c.m[index] = m
}

func (c *roadnetCatalog) resolve(index string) *gps.Matcher {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m := c.m[index]; m != nil {
		return m
	}
	return c.m[""]
}

// AttachRoadnet binds a road network (with a default matching
// configuration; zero cfg picks gps.NewMatcher's default) to index
// name. name "" attaches the fallback used by every index without its
// own binding. A nil graph detaches.
func (e *Engine) AttachRoadnet(name string, g *roadnet.Graph, cfg mapmatch.Config) {
	if g == nil {
		e.roadnets.set(name, nil)
		return
	}
	e.roadnets.set(name, gps.NewMatcher(g, cfg))
}

// LoadRoadnet reads a CNCTroad container and attaches it to index
// name ("" = default for all indexes) with the default matching
// configuration.
func (e *Engine) LoadRoadnet(name, path string) error {
	g, err := roadnet.LoadFile(path)
	if err != nil {
		return err
	}
	e.AttachRoadnet(name, g, mapmatch.Config{})
	e.logf("engine: road network %s attached to %q (%d nodes, %d edges)",
		path, name, len(g.Nodes), len(g.Edges))
	return nil
}

// Roadnet returns the matcher serving index name (its own binding or
// the default), nil when neither exists.
func (e *Engine) Roadnet(name string) *gps.Matcher { return e.roadnets.resolve(name) }

// GPSTraceResult is the typed per-trace outcome of a GPS ingest: the
// batch is not atomic across traces — each is accepted or rejected on
// its own — so callers get one result per input trace, in order.
type GPSTraceResult struct {
	Accepted bool `json:"accepted"`
	// ID is the accepted trajectory's global ID.
	ID int `json:"id,omitempty"`
	// Edges is the matched path length (stitched connectors included).
	Edges int `json:"edges,omitempty"`
	// Skipped counts interior points dropped as candidate-free gaps.
	Skipped int `json:"skippedPoints,omitempty"`
	// Reject is the reason code from the gps/mapmatch catalog;
	// Point is the offending observation (-1 when not point-specific).
	Reject string `json:"reject,omitempty"`
	Point  int    `json:"point,omitempty"`
}

// GPSResult summarizes one GPS ingest batch.
type GPSResult struct {
	Results  []GPSTraceResult `json:"results"`
	Points   int              `json:"points"`
	Accepted int              `json:"accepted"`
	Rejected int              `json:"rejected"`
	// FirstID/Delta/Generation mirror AppendResult for the accepted
	// rows (meaningful only when Accepted > 0). Accepted traces get
	// consecutive IDs in input order.
	FirstID    int    `json:"firstId"`
	Delta      int    `json:"deltaTrajectories,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
}

// IngestGPS map-matches a batch of raw GPS traces against index
// name's road network and appends the accepted ones atomically (one
// Append batch: consecutive IDs, one WAL record, one generation
// bump). Each trace is accepted or rejected independently with a
// typed reason; a batch where every trace rejects is not an error.
// Standing queries registered on the index see the accepted rows via
// the append path's notification hook.
func (e *Engine) IngestGPS(ctx context.Context, name string, traces []gps.Trace) (GPSResult, error) {
	if err := ctx.Err(); err != nil {
		return GPSResult{}, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return GPSResult{}, err
	}
	matcher := e.Roadnet(name)
	if matcher == nil {
		return GPSResult{}, fmt.Errorf("%w: index %q", ErrNoRoadnet, name)
	}
	temporal := v.isTemporal()

	res := GPSResult{Results: make([]GPSTraceResult, len(traces))}
	var rows [][]uint32
	var cols [][]int64
	accepted := make([]int, 0, len(traces)) // indexes into traces, in append order
	for i, tr := range traces {
		res.Points += len(tr.Points)
		e.metrics.gpsPoints.Add(int64(len(tr.Points)))
		t0 := time.Now()
		m, merr := matcher.Match(tr)
		e.metrics.gpsMatchSec.Observe(time.Since(t0).Seconds())
		if merr == nil && temporal && m.Times == nil {
			// A temporal index cannot absorb an untimed row; reject it
			// typed instead of failing the whole batch in Append.
			merr = &gps.Reject{Reason: gps.RejectUntimed, Point: -1}
		}
		if merr != nil {
			var rej *gps.Reject
			if !errors.As(merr, &rej) {
				rej = &gps.Reject{Reason: gps.RejectNoRoadnet, Point: -1}
			}
			res.Results[i] = GPSTraceResult{Reject: rej.Reason, Point: rej.Point}
			res.Rejected++
			e.metrics.gpsRejected.With(rej.Reason).Inc()
			continue
		}
		res.Results[i] = GPSTraceResult{Accepted: true, Edges: len(m.Edges), Skipped: m.Skipped}
		rows = append(rows, m.Edges)
		if temporal {
			cols = append(cols, m.Times)
		}
		accepted = append(accepted, i)
		res.Accepted++
		e.metrics.gpsMatched.Inc()
	}
	if len(rows) == 0 {
		return res, nil
	}
	ar, err := e.Append(ctx, name, rows, cols)
	if err != nil {
		return GPSResult{}, err
	}
	for k, i := range accepted {
		res.Results[i].ID = ar.FirstID + k
	}
	res.FirstID = ar.FirstID
	res.Delta = ar.Delta
	res.Generation = ar.Generation
	return res, nil
}
