package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"cinct"
)

// drainSearch runs one engine Search and collects the stream.
func drainSearch(t *testing.T, e *Engine, name string, q cinct.Query) ([]cinct.Hit, string) {
	t.Helper()
	r, err := e.Search(context.Background(), name, q)
	if err != nil {
		t.Fatalf("Search(%+v): %v", q, err)
	}
	defer r.Close()
	var hits []cinct.Hit
	for h, herr := range r.All() {
		if herr != nil {
			t.Fatalf("Search(%+v) stream: %v", q, herr)
		}
		hits = append(hits, h)
	}
	return hits, r.Cursor()
}

// TestEngineSearchCachesPages pins the single-entry-point cache
// contract: an identical Query replays the cached page (hit counters
// advance, results identical, including the resume cursor), a
// different Limit is a different key, and cursor-linked pages
// concatenate to the unpaged stream.
func TestEngineSearchCachesPages(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(17, 150)
	writeIndexes(t, dir, trajs)
	e := New(Options{})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	path := trajs[3][:2]

	q := cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 3}
	first, cur1 := drainSearch(t, e, "spatial", q)
	h0, m0, _ := e.CacheStats()
	second, cur2 := drainSearch(t, e, "spatial", q)
	h1, _, _ := e.CacheStats()
	if h1 <= h0 {
		t.Fatalf("second identical Search did not hit the cache (hits %d -> %d, misses %d)", h0, h1, m0)
	}
	if len(first) != len(second) || cur1 != cur2 {
		t.Fatalf("cache replay differs: %d/%d hits, cursors %q vs %q", len(first), len(second), cur1, cur2)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cache replay hit %d: %+v vs %+v", i, first[i], second[i])
		}
	}

	// Page through with cursors; the concatenation must equal the
	// unpaged stream.
	full, endCursor := drainSearch(t, e, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if endCursor != "" {
		t.Fatalf("exhausted unpaged stream still hands out cursor %q", endCursor)
	}
	var paged []cinct.Hit
	cursor := ""
	for {
		pq := cinct.Query{Path: path, Kind: cinct.Occurrences, Limit: 2, Cursor: cursor}
		hits, next := drainSearch(t, e, "spatial", pq)
		paged = append(paged, hits...)
		if next == "" {
			break
		}
		cursor = next
		if len(paged) > len(full)+2 {
			t.Fatal("cursor chain does not terminate")
		}
	}
	if len(paged) != len(full) {
		t.Fatalf("paged %d hits, unpaged %d", len(paged), len(full))
	}
	for i := range paged {
		if paged[i] != full[i] {
			t.Fatalf("paged[%d] = %+v, want %+v", i, paged[i], full[i])
		}
	}

	// CountOnly goes through the same cache.
	cq := cinct.Query{Path: path, Kind: cinct.CountOnly}
	r, err := e.Search(context.Background(), "spatial", cq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Count()
	if err != nil {
		t.Fatal(err)
	}
	hits, _, _ := e.CacheStats()
	r2, err := e.Search(context.Background(), "spatial", cq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if hits2, _, _ := e.CacheStats(); hits2 <= hits {
		t.Fatal("repeated CountOnly Search did not hit the cache")
	}
	if got != want {
		t.Fatalf("cached CountOnly = %d, want %d", got, want)
	}
}

// TestEngineSearchLimitRule pins the unified limit semantics at the
// engine layer: negative limits are cinct.ErrBadQuery for every kind,
// and interval queries on spatial indexes are ErrNotTemporal.
func TestEngineSearchLimitRule(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(19, 80)
	writeIndexes(t, dir, trajs)
	e := New(Options{})
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	path := trajs[0][:2]
	for _, kind := range []cinct.Kind{cinct.Occurrences, cinct.Trajectories, cinct.CountOnly} {
		if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Kind: kind, Limit: -1}); !errors.Is(err, cinct.ErrBadQuery) {
			t.Fatalf("kind %v limit -1: err = %v, want ErrBadQuery", kind, err)
		}
	}
	iv := &cinct.Interval{From: 0, To: 1}
	if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Interval: iv}); !errors.Is(err, ErrNotTemporal) {
		t.Fatalf("interval on spatial index: err = %v, want ErrNotTemporal", err)
	}
	if _, err := e.Search(ctx, "nosuch", cinct.Query{Path: path}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown index: err = %v, want ErrNotFound", err)
	}
	if _, err := e.Search(ctx, "spatial", cinct.Query{Path: path, Cursor: "garbage"}); !errors.Is(err, cinct.ErrBadCursor) {
		t.Fatalf("bad cursor: err = %v, want ErrBadCursor", err)
	}
}

// TestEngineSearchCloseReleasesSlot pins the worker-pool contract for
// abandoned streams: a live Results holds one slot; Close hands it
// back, and only then can the next query run on a one-worker engine.
func TestEngineSearchCloseReleasesSlot(t *testing.T) {
	dir := t.TempDir()
	trajs := testCorpus(23, 80)
	writeIndexes(t, dir, trajs)
	e := New(Options{Workers: 1, CacheEntries: -1}) // cache off: every Search goes live
	defer e.CloseAll()
	if _, err := e.OpenDir(dir); err != nil {
		t.Fatal(err)
	}
	path := trajs[0][:1]
	r, err := e.Search(context.Background(), "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if err != nil {
		t.Fatal(err)
	}
	// Consume one hit, then abandon without draining.
	for _, herr := range r.All() {
		if herr != nil {
			t.Fatal(herr)
		}
		break
	}
	// The slot is still held: a second query must time out.
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := e.Search(short, "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Search with held slot: err = %v, want DeadlineExceeded", err)
	}
	r.Close()
	// Close is terminal: resuming the closed handle must not restart
	// index work without a worker slot.
	for range r.All() {
		t.Fatal("closed Results yielded a hit")
	}
	r2, err := e.Search(context.Background(), "spatial", cinct.Query{Path: path, Kind: cinct.Occurrences})
	if err != nil {
		t.Fatalf("Search after Close: %v", err)
	}
	defer r2.Close()
	if _, err := r2.Count(); err != nil {
		t.Fatal(err)
	}
}
