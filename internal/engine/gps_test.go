package engine

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"cinct"
	"cinct/internal/gps"
	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// gridWalk builds a connected random walk on g avoiding immediate
// U-turns (geometrically unrecoverable for any position-only matcher).
func gridWalk(g *roadnet.Graph, rng *rand.Rand, length int) []roadnet.EdgeID {
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	path := []roadnet.EdgeID{cur}
	for len(path) < length {
		rev, hasRev := g.Reverse(cur)
		var choices []roadnet.EdgeID
		for _, nx := range g.NextEdges(cur) {
			if hasRev && nx == rev {
				continue
			}
			choices = append(choices, nx)
		}
		if len(choices) == 0 {
			choices = g.NextEdges(cur)
			if len(choices) == 0 {
				break
			}
		}
		cur = choices[rng.Intn(len(choices))]
		path = append(path, cur)
	}
	return path
}

func edgesOf(path []roadnet.EdgeID) []uint32 {
	out := make([]uint32, len(path))
	for i, e := range path {
		out[i] = uint32(e)
	}
	return out
}

// gpsEngine builds an engine serving one temporal index whose corpus
// lives on a roadnet grid, with the grid attached for GPS ingest.
func gpsEngine(t *testing.T, opts Options) (*Engine, *roadnet.Graph, *rand.Rand) {
	t.Helper()
	g := roadnet.Grid(8, 8, 31)
	rng := rand.New(rand.NewSource(32))
	var trajs [][]uint32
	var times [][]int64
	for i := 0; i < 12; i++ {
		row := edgesOf(gridWalk(g, rng, 10))
		col := make([]int64, len(row))
		for j := range col {
			col[j] = int64(1000*i + 10*j)
		}
		trajs = append(trajs, row)
		times = append(times, col)
	}
	tix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := New(opts)
	t.Cleanup(e.Shutdown)
	t.Cleanup(e.CloseAll)
	e.RegisterTemporal("roads", tix)
	e.AttachRoadnet("roads", g, mapmatch.Config{})
	return e, g, rng
}

// TestIngestGPSEndToEnd is the differential core: a simulated noisy
// trace over a known edge path must ingest, be findable via Search,
// and reconstruct to exactly the ground-truth path.
func TestIngestGPSEndToEnd(t *testing.T) {
	e, g, rng := gpsEngine(t, Options{SealThreshold: -1})
	ctx := context.Background()

	path := gridWalk(g, rng, 12)
	truth := edgesOf(path)
	tr := gps.Simulate(g, path, 0.02, 50_000, 15, rng)

	res, err := e.IngestGPS(ctx, "roads", []gps.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Rejected != 0 {
		t.Fatalf("accepted %d rejected %d, want 1/0", res.Accepted, res.Rejected)
	}
	tres := res.Results[0]
	if !tres.Accepted || tres.ID != 12 {
		t.Fatalf("trace result %+v, want accepted id 12", tres)
	}
	if res.Points != len(tr.Points) {
		t.Fatalf("points %d, want %d", res.Points, len(tr.Points))
	}

	// The matched trajectory reconstructs to the ground truth.
	got, err := e.Trajectory(ctx, "roads", tres.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(truth) {
		t.Fatalf("trajectory %v, want %v", got, truth)
	}
	for i := range truth {
		if got[i] != truth[i] {
			t.Fatalf("edge %d: %d != %d", i, got[i], truth[i])
		}
	}

	// And it is findable through the ordinary query path.
	ids, err := e.FindTrajectories(ctx, "roads", truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == tres.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("FindTrajectories(%v) = %v, missing %d", truth, ids, tres.ID)
	}

	// Interval query: the trace's timestamps landed (entry time of the
	// first edge is the first observation's time).
	n, err := e.CountInInterval(ctx, "roads", truth[:2], 50_000, 50_100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("CountInInterval = %d, want 1", n)
	}
}

// TestIngestGPSPerTraceResults: rejects are per-trace and typed; one
// bad trace does not poison the batch.
func TestIngestGPSPerTraceResults(t *testing.T) {
	e, g, rng := gpsEngine(t, Options{SealThreshold: -1})
	ctx := context.Background()

	good := gps.Simulate(g, gridWalk(g, rng, 8), 0.02, 1000, 10, rng)
	offNetwork := gps.Trace{Points: []gps.Point{{Lat: 900, Lon: 900, T: 1}, {Lat: 901, Lon: 900, T: 2}}}
	untimed := gps.Simulate(g, gridWalk(g, rng, 8), 0.02, 0, 0, rng)
	backwards := gps.Simulate(g, gridWalk(g, rng, 8), 0.02, 1000, 10, rng)
	backwards.Points[2].T = 5

	res, err := e.IngestGPS(ctx, "roads", []gps.Trace{good, offNetwork, untimed, backwards})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || res.Rejected != 3 {
		t.Fatalf("accepted %d rejected %d, want 1/3: %+v", res.Accepted, res.Rejected, res.Results)
	}
	if !res.Results[0].Accepted {
		t.Fatalf("good trace rejected: %+v", res.Results[0])
	}
	wantReasons := []string{"", string(mapmatch.RejectNoCandidates), gps.RejectUntimed, gps.RejectBadTimestamps}
	for i := 1; i < 4; i++ {
		if res.Results[i].Accepted || res.Results[i].Reject != wantReasons[i] {
			t.Fatalf("trace %d result %+v, want reject %q", i, res.Results[i], wantReasons[i])
		}
	}

	// An all-reject batch is not an error.
	res, err = e.IngestGPS(ctx, "roads", []gps.Trace{offNetwork})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Rejected != 1 {
		t.Fatalf("all-reject batch: %+v", res)
	}
}

func TestIngestGPSErrors(t *testing.T) {
	e, _, rng := gpsEngine(t, Options{SealThreshold: -1})
	ctx := context.Background()

	if _, err := e.IngestGPS(ctx, "nosuch", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown index: %v, want ErrNotFound", err)
	}

	// An index with no roadnet (and no default) fails typed.
	g2 := roadnet.Grid(4, 4, 33)
	tr := gps.Simulate(g2, gridWalk(g2, rng, 5), 0.02, 1, 1, rng)
	ix, err := cinct.Build([][]uint32{{1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Register("bare", ix)
	if _, err := e.IngestGPS(ctx, "bare", []gps.Trace{tr}); !errors.Is(err, ErrNoRoadnet) {
		t.Fatalf("no roadnet: %v, want ErrNoRoadnet", err)
	}

	// A default ("") binding serves indexes without their own.
	e.AttachRoadnet("", g2, mapmatch.Config{})
	res, err := e.IngestGPS(ctx, "bare", []gps.Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 {
		t.Fatalf("default binding ingest: %+v", res)
	}
	// Spatial index: the timed trace lands without a timestamp column.
	got, err := e.Trajectory(ctx, "bare", res.Results[0].ID)
	if err != nil || len(got) == 0 {
		t.Fatalf("Trajectory after spatial GPS ingest: %v %v", got, err)
	}
}

func TestLoadRoadnetFromContainer(t *testing.T) {
	g := roadnet.Grid(5, 5, 35)
	dir := t.TempDir()
	path := filepath.Join(dir, "net.road")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	defer e.Shutdown()
	if err := e.LoadRoadnet("any", path); err != nil {
		t.Fatal(err)
	}
	if e.Roadnet("any") == nil {
		t.Fatal("roadnet not attached")
	}
	if e.Roadnet("other") != nil {
		t.Fatal("binding leaked to other index")
	}
	if err := e.LoadRoadnet("x", filepath.Join(dir, "missing.road")); err == nil {
		t.Fatal("missing file should fail")
	}
}
