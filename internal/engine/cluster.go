package engine

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"cinct"
	"cinct/internal/cluster"
	"cinct/internal/wire"
)

// ErrPartial reports a scatter-gather query that could not cover the
// whole cluster: one or more peers were unreachable after retry, so
// rather than silently serving a truncated answer the query fails
// typed. Wraps as *PartialError carrying the unreachable peer list.
var ErrPartial = errors.New("engine: partial cluster result (peers unreachable)")

// PartialError lists the peers a scatter-gather could not reach. It
// unwraps to ErrPartial so callers can errors.Is it; transports
// surface the peer list (the HTTP server sets X-CiNCT-Partial).
type PartialError struct {
	Peers []string
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("engine: partial cluster result: unreachable peers %v", e.Peers)
}

func (e *PartialError) Unwrap() error { return ErrPartial }

// Scope selects how much of the cluster a Search covers.
type Scope int

const (
	// ScopeAuto is the default: on a clustered engine, hit-producing
	// queries scatter-gather across the peer set; on a single node (or
	// for CountOnly, which every node can answer exactly from its full
	// local copy) the query runs locally.
	ScopeAuto Scope = iota
	// ScopeOwned answers only from trajectories this node owns under
	// the cluster's routing ring, and never fans out. It is the scope
	// peers request from each other (X-CiNCT-Scope: owned); the union
	// of every node's owned answer is exactly the global answer.
	ScopeOwned
)

// Cluster returns the engine's cluster view, nil when not clustered.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// identity tokens ----------------------------------------------------

// encodeIdent packs an index binding's (epoch, load signature) into the
// opaque token scoped query summaries carry, so a coordinator can mint
// resume cursors that the owning peer will validate.
func encodeIdent(epoch, sig uint64) string {
	b := binary.AppendUvarint(nil, epoch)
	b = binary.AppendUvarint(b, sig)
	return base64.RawURLEncoding.EncodeToString(b)
}

func decodeIdent(s string) (epoch, sig uint64, err error) {
	raw, derr := base64.RawURLEncoding.DecodeString(s)
	if derr != nil {
		return 0, 0, fmt.Errorf("engine: bad ident token")
	}
	epoch, n := binary.Uvarint(raw)
	if n <= 0 {
		return 0, 0, fmt.Errorf("engine: bad ident token")
	}
	sig, m := binary.Uvarint(raw[n:])
	if m <= 0 || n+m != len(raw) {
		return 0, 0, fmt.Errorf("engine: bad ident token")
	}
	return epoch, sig, nil
}

// cluster cursors ----------------------------------------------------

// clusterCursorVersion tags a coordinator-minted resume token. Distinct
// from engineCursorVersion: a cluster cursor resumes a scatter-gather
// (position + per-node identities), an engine cursor resumes one node's
// stream.
const clusterCursorVersion = 0xE3

// nodeCursorEntry is one not-yet-exhausted node in a cluster cursor:
// its address plus the (epoch, sig) identity its data had when the
// cursor was minted, so the resumed per-node suffix re-routes to its
// owner and fails typed if that owner's index changed.
type nodeCursorEntry struct {
	addr       string
	epoch, sig uint64
}

// clusterCursor is the decoded form: the ring configuration it was
// minted under, the global resume position (last yielded hit — every
// node resumes past it, since all nodes share the canonical order),
// and the surviving nodes. A node absent from entries was exhausted.
type clusterCursor struct {
	ringFP uint64
	last   cinct.Hit
	nodes  []nodeCursorEntry
}

func (cc *clusterCursor) entry(addr string) (nodeCursorEntry, bool) {
	for _, n := range cc.nodes {
		if n.addr == addr {
			return n, true
		}
	}
	return nodeCursorEntry{}, false
}

func encodeClusterCursor(ringFP uint64, last cinct.Hit, entries []nodeCursorEntry) string {
	b := make([]byte, 0, 64)
	b = append(b, clusterCursorVersion)
	b = binary.AppendUvarint(b, ringFP)
	b = binary.AppendVarint(b, int64(last.Trajectory))
	b = binary.AppendVarint(b, int64(last.Offset))
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		b = binary.AppendUvarint(b, uint64(len(e.addr)))
		b = append(b, e.addr...)
		b = binary.AppendUvarint(b, e.epoch)
		b = binary.AppendUvarint(b, e.sig)
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodeClusterCursor validates shape and ring identity: a cursor
// minted under a different node set or slot width must not resume —
// ownership moved, so pages would be wrong, not just stale.
func decodeClusterCursor(s string, wantFP uint64) (*clusterCursor, error) {
	bad := func() (*clusterCursor, error) {
		return nil, fmt.Errorf("%w: malformed cluster cursor", cinct.ErrBadCursor)
	}
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil || len(raw) < 2 || raw[0] != clusterCursorVersion {
		return nil, fmt.Errorf("%w: not a cluster cursor", cinct.ErrBadCursor)
	}
	p := raw[1:]
	ringFP, n := binary.Uvarint(p)
	if n <= 0 {
		return bad()
	}
	p = p[n:]
	traj, n := binary.Varint(p)
	if n <= 0 {
		return bad()
	}
	p = p[n:]
	off, n := binary.Varint(p)
	if n <= 0 {
		return bad()
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > 1<<16 {
		return bad()
	}
	p = p[n:]
	cc := &clusterCursor{ringFP: ringFP,
		last: cinct.Hit{Match: cinct.Match{Trajectory: int(traj), Offset: int(off)}}}
	for i := uint64(0); i < count; i++ {
		alen, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < alen {
			return bad()
		}
		addr := string(p[n : n+int(alen)])
		p = p[n+int(alen):]
		epoch, n := binary.Uvarint(p)
		if n <= 0 {
			return bad()
		}
		p = p[n:]
		sig, n := binary.Uvarint(p)
		if n <= 0 {
			return bad()
		}
		p = p[n:]
		cc.nodes = append(cc.nodes, nodeCursorEntry{addr: addr, epoch: epoch, sig: sig})
	}
	if len(p) != 0 {
		return bad()
	}
	if ringFP != wantFP {
		return nil, fmt.Errorf("%w: cluster membership or slot width changed since the cursor was issued", ErrStaleCursor)
	}
	return cc, nil
}

// owned-scope serving ------------------------------------------------

// ownedStream filters one node's full-corpus library stream down to
// the trajectories the routing ring assigns to this node, applying the
// request limit after the filter (the library runs unbounded, lazily,
// so filtered-out hits cost only their traversal). Its cursor is the
// node's own engine envelope positioned after the last owned hit.
type ownedStream struct {
	lr         *cinct.Results
	epoch, sig uint64
	owns       func(int) bool
	limit      int

	n    int
	pull func() (cinct.Hit, error, bool)
	stop func()
	done bool
}

func (s *ownedStream) All() iter.Seq2[cinct.Hit, error] {
	return func(yield func(cinct.Hit, error) bool) {
		if s.done {
			return
		}
		if s.pull == nil {
			s.pull, s.stop = iter.Pull2(s.lr.All())
		}
		for {
			h, herr, ok := s.pull()
			if !ok {
				s.done = true
				return
			}
			if herr != nil {
				yield(cinct.Hit{}, herr)
				return
			}
			if !s.owns(h.Trajectory) {
				continue
			}
			s.n++
			hitLimit := s.limit > 0 && s.n >= s.limit
			if hitLimit {
				s.done = true
			}
			if !yield(h, nil) {
				return
			}
			if hitLimit {
				return
			}
		}
	}
}

func (s *ownedStream) Cursor() string {
	return wrapCursor(s.epoch, s.sig, s.lr.Cursor())
}

func (s *ownedStream) Stats() cinct.QueryStats { return s.lr.Stats() }

func (s *ownedStream) close() {
	if s.stop != nil {
		s.stop()
		s.stop, s.pull = nil, nil
	}
}

// searchOwned runs the owned-scope path: the local index serves only
// ring-owned trajectories. It mirrors searchLocal's caching and
// admission, with the cache key prefixed by the ring fingerprint —
// "owned under this routing" and "everything" are different answers to
// the same query bytes.
func (e *Engine) searchOwned(ctx context.Context, name string, q cinct.Query) (*Results, error) {
	cl := e.cluster
	if cl == nil {
		return nil, fmt.Errorf("%w: owned-scope query on a non-clustered node", cinct.ErrBadQuery)
	}
	if q.Kind == cinct.CountOnly {
		// An "owned count" has no caller: counts never fan out (every
		// node holds the full corpus and can answer exactly).
		return nil, fmt.Errorf("%w: count queries cannot be owner-scoped", cinct.ErrBadQuery)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v, err := e.cat.view(name)
	if err != nil {
		return nil, err
	}
	if q.Cursor != "" {
		epoch, sig, inner, cerr := unwrapCursor(q.Cursor)
		if cerr != nil {
			return nil, cerr
		}
		if epoch != v.epoch || sig != v.sig {
			return nil, fmt.Errorf("%w: %q changed since the cursor was issued", ErrStaleCursor, v.name)
		}
		q.Cursor = inner
	}
	enc, err := q.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if q.Interval != nil && !v.isTemporal() {
		return nil, fmt.Errorf("%w: %q", ErrNotTemporal, v.name)
	}
	key := fmt.Sprintf("o|%x|", cl.Fingerprint()) + searchKey(v.name, v.gen, enc)
	start := time.Now()
	ident := encodeIdent(v.epoch, v.sig)
	e.metrics.queries.With(kindLabel(q.Kind)).Inc()
	if val, ok := e.cache.get(key); ok {
		e.metrics.cacheHits.Inc()
		e.recordQuery(v.name, q, start, cinct.QueryStats{}, nil)
		return &Results{q: q, epoch: v.epoch, sig: v.sig, ident: ident, page: val.(*page)}, nil
	}
	e.metrics.cacheMisses.Inc()
	if err := e.acquire(ctx, estimateCost(q)); err != nil {
		e.recordQuery(v.name, q, start, cinct.QueryStats{}, err)
		return nil, err
	}
	// The library runs unbounded and lazy; the limit applies to owned
	// hits only, inside the filter.
	lq := q
	lq.Limit = 0
	lr, err := func() (lr *cinct.Results, err error) {
		defer recoverQuery(&err)
		switch {
		case v.w != nil:
			return v.w.Search(ctx, lq)
		case v.temp != nil:
			return v.temp.Search(ctx, lq)
		}
		return v.spatial.Search(ctx, lq)
	}()
	if err != nil {
		e.release()
		e.recordQuery(v.name, q, start, cinct.QueryStats{}, err)
		return nil, err
	}
	src := &ownedStream{lr: lr, epoch: v.epoch, sig: v.sig, owns: cl.Owns, limit: q.Limit}
	return &Results{q: q, epoch: v.epoch, sig: v.sig, ident: ident, live: src, e: e,
		key: key, held: true, name: v.name, start: start, acc: make([]cinct.Hit, 0, 16)}, nil
}

// scatter-gather -----------------------------------------------------

// clusterPageSize is the per-peer page size of a scatter-gather leg:
// large enough to amortize the HTTP round trip, small enough that a
// limited query does not drag whole result sets across the wire.
const clusterPageSize = 1024

func remotePageLimit(queryLimit int) int {
	if queryLimit > 0 && queryLimit < clusterPageSize {
		return queryLimit
	}
	return clusterPageSize
}

// mergeSrc is one node's hit stream inside the coordinator's k-way
// merge: a one-hit lookahead (head/ok) over a pull function, plus the
// identity needed to mint this node's cluster-cursor entry.
type mergeSrc struct {
	addr string
	// ident reports the node's current (epoch, sig) — read at
	// cursor-minting time, since a remote node's identity is learned
	// (and refreshed) from its page summaries.
	ident     func() (epoch, sig uint64)
	head      cinct.Hit
	ok        bool
	exhausted bool
	next      func() (cinct.Hit, bool, error)
	closefn   func()
}

func (m *mergeSrc) advance() error {
	h, ok, err := m.next()
	if err != nil {
		return err
	}
	if !ok {
		m.exhausted = true
		return nil
	}
	m.head, m.ok = h, true
	return nil
}

// clusterStream merges per-node owned streams back into the canonical
// (Trajectory, Offset) order — the same order the single-node engine
// yields, which is what makes distributed answers byte-identical.
type clusterStream struct {
	srcs   []*mergeSrc
	ringFP uint64
	limit  int

	n       int
	last    cinct.Hit
	hasLast bool
	done    bool
	closed  bool
}

func hitLess(a, b cinct.Hit) bool {
	if a.Trajectory != b.Trajectory {
		return a.Trajectory < b.Trajectory
	}
	return a.Offset < b.Offset
}

func (s *clusterStream) All() iter.Seq2[cinct.Hit, error] {
	return func(yield func(cinct.Hit, error) bool) {
		if s.done || s.closed {
			return
		}
		for {
			for _, src := range s.srcs {
				if !src.ok && !src.exhausted {
					if err := src.advance(); err != nil {
						yield(cinct.Hit{}, err)
						return
					}
				}
			}
			best := -1
			for i, src := range s.srcs {
				if src.ok && (best < 0 || hitLess(src.head, s.srcs[best].head)) {
					best = i
				}
			}
			if best < 0 {
				s.done = true
				return
			}
			h := s.srcs[best].head
			s.srcs[best].ok = false
			s.n++
			s.last, s.hasLast = h, true
			atLimit := s.limit > 0 && s.n >= s.limit
			if atLimit {
				s.done = true
			}
			if !yield(h, nil) {
				return
			}
			if atLimit {
				return
			}
		}
	}
}

// Cursor mints the cluster resume token: the global position once,
// plus one identity entry per node that may still hold hits past it.
// A fully-merged-out node is omitted — that is how a resume knows not
// to contact it — and when every node is merged out the stream is
// exhausted and the cursor is empty.
func (s *clusterStream) Cursor() string {
	if !s.hasLast {
		return ""
	}
	var entries []nodeCursorEntry
	for _, src := range s.srcs {
		if src.exhausted && !src.ok {
			continue
		}
		epoch, sig := src.ident()
		entries = append(entries, nodeCursorEntry{addr: src.addr, epoch: epoch, sig: sig})
	}
	if len(entries) == 0 {
		return ""
	}
	return encodeClusterCursor(s.ringFP, s.last, entries)
}

// Stats is empty for the coordinator view: the traversal cost was paid
// (and recorded) by each node's own scoped query.
func (s *clusterStream) Stats() cinct.QueryStats { return cinct.QueryStats{} }

func (s *clusterStream) close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, src := range s.srcs {
		if src.closefn != nil {
			src.closefn()
		}
	}
}

// remoteSrc pages one peer's owned stream through the NDJSON query
// endpoint, recording the peer's index identity from each summary.
type remoteSrc struct {
	ctx        context.Context
	e          *Engine
	peer       string
	index      string
	base       wire.Request
	buf        []cinct.Hit
	pos        int
	nextCursor string
	pageDone   bool // nextCursor == "" after the latest page
	epoch, sig uint64
}

func (r *remoteSrc) absorb(p *wire.Page) error {
	r.buf, r.pos = p.Hits, 0
	r.nextCursor = p.Cursor
	r.pageDone = p.Cursor == ""
	if p.Ident != "" {
		epoch, sig, err := decodeIdent(p.Ident)
		if err != nil {
			return fmt.Errorf("engine: peer %s sent %v", r.peer, err)
		}
		r.epoch, r.sig = epoch, sig
	}
	return nil
}

func (r *remoteSrc) next() (cinct.Hit, bool, error) {
	for {
		if r.pos < len(r.buf) {
			h := r.buf[r.pos]
			r.pos++
			return h, true, nil
		}
		if r.pageDone {
			return cinct.Hit{}, false, nil
		}
		req := r.base
		req.Cursor = r.nextCursor
		p, err := r.e.cluster.FetchPage(r.ctx, r.peer, r.index, req)
		if err != nil {
			return cinct.Hit{}, false, peerFetchError(r.peer, err)
		}
		if err := r.absorb(p); err != nil {
			return cinct.Hit{}, false, err
		}
	}
}

// peerFetchError types a failed peer fetch: a 410 means the peer's
// index changed under the cursor (stale, not partial); anything else
// after retry means the peer is unreachable for this query's purposes.
func peerFetchError(peer string, err error) error {
	var he *cluster.HTTPError
	if errors.As(err, &he) && he.Status == 410 {
		return fmt.Errorf("%w: peer %s: %s", ErrStaleCursor, peer, he.Msg)
	}
	return &PartialError{Peers: []string{peer}}
}

// searchCluster is the coordinator path: the local index serves its
// owned trajectories in-process while every peer streams its owned
// hits through the query endpoint, all feeding one canonical merge.
// The first page of every remote leg is fetched up front, in parallel,
// so an unreachable peer fails the query typed (*PartialError) before
// any hit is streamed.
func (e *Engine) searchCluster(ctx context.Context, name string, q cinct.Query) (*Results, error) {
	cl := e.cluster
	var cc *clusterCursor
	if q.Cursor != "" {
		var err error
		cc, err = decodeClusterCursor(q.Cursor, cl.Fingerprint())
		if err != nil {
			return nil, err
		}
	}
	e.metrics.clusterQueries.Inc()

	// Local leg first: it validates the query (bad descriptors, missing
	// timestamps, overload) before any network fan-out.
	var inner *Results
	includeLocal := true
	lq := q
	lq.Limit = 0
	lq.Cursor = ""
	if cc != nil {
		ent, ok := cc.entry(cl.Self())
		if !ok {
			includeLocal = false
		} else {
			lq.Cursor = wrapCursor(ent.epoch, ent.sig, q.CursorAfter(cc.last))
		}
	}
	if includeLocal {
		var err error
		inner, err = e.searchOwned(ctx, name, lq)
		if err != nil {
			return nil, err
		}
	}

	// Remote legs: first pages in parallel.
	base := wire.FromQuery(q)
	base.Cursor = ""
	base.Limit = remotePageLimit(q.Limit)
	type leg struct {
		peer string
		req  wire.Request
		page *wire.Page
		err  error
	}
	var legs []*leg
	for _, peer := range cl.Peers() {
		req := base
		if cc != nil {
			ent, ok := cc.entry(peer)
			if !ok {
				continue // exhausted before the cursor was minted
			}
			req.Cursor = wrapCursor(ent.epoch, ent.sig, q.CursorAfter(cc.last))
		}
		legs = append(legs, &leg{peer: peer, req: req})
	}
	var wg sync.WaitGroup
	for _, l := range legs {
		wg.Add(1)
		go func(l *leg) {
			defer wg.Done()
			l.page, l.err = cl.FetchPage(ctx, l.peer, name, l.req)
		}(l)
	}
	wg.Wait()

	var unreachable []string
	var fatal error
	for _, l := range legs {
		if l.err == nil {
			continue
		}
		err := peerFetchError(l.peer, l.err)
		var pe *PartialError
		switch {
		case errors.As(err, &pe):
			unreachable = append(unreachable, pe.Peers...)
		case fatal == nil:
			// Stale cursors and configuration errors (ring mismatch,
			// scoped query refused) surface directly: a retry with the
			// same inputs cannot succeed.
			fatal = err
		}
	}
	if fatal != nil || len(unreachable) > 0 {
		if inner != nil {
			inner.Close()
		}
		if fatal != nil {
			return nil, fatal
		}
		e.metrics.clusterPartial.Inc()
		return nil, &PartialError{Peers: unreachable}
	}

	// Assemble the merge.
	cs := &clusterStream{ringFP: cl.Fingerprint(), limit: q.Limit}
	if inner != nil {
		pull, stop := iter.Pull2(inner.All())
		cs.srcs = append(cs.srcs, &mergeSrc{
			addr:  cl.Self(),
			ident: func() (uint64, uint64) { return inner.epoch, inner.sig },
			next: func() (cinct.Hit, bool, error) {
				h, herr, ok := pull()
				if !ok {
					return cinct.Hit{}, false, nil
				}
				if herr != nil {
					return cinct.Hit{}, false, herr
				}
				return h, true, nil
			},
			closefn: func() { stop(); inner.Close() },
		})
	}
	for _, l := range legs {
		rs := &remoteSrc{ctx: ctx, e: e, peer: l.peer, index: name, base: base}
		if err := rs.absorb(l.page); err != nil {
			cs.close()
			return nil, err
		}
		cs.srcs = append(cs.srcs, &mergeSrc{
			addr:  l.peer,
			ident: func() (uint64, uint64) { return rs.epoch, rs.sig },
			next:  rs.next,
		})
	}

	// The outer Results is a pure merge view: the inner scoped queries
	// did (and recorded) the real work, so it neither re-records
	// metrics nor re-enters the cache.
	return &Results{q: q, live: cs, e: e, name: name, start: time.Now(),
		recorded: true, tooBig: true}, nil
}
