// Package engine is the serving layer between the cinct library and
// any front end (the cinctd HTTP daemon, the cinct CLI, tests): a
// Catalog of named, independently loaded indexes behind one Engine
// type with context-aware query methods, a bounded LRU result cache,
// and a worker pool that bounds concurrent wavelet-tree traversals.
//
// The split mirrors the daemon → router → handler layering of large Go
// servers: the engine owns index lifecycle and concurrency; transports
// stay trivial.
package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cinct"
	"cinct/internal/wal"
)

// File extensions recognized by OpenDir. A ".cinct" file holds a
// spatial index (monolithic or sharded container — cinct.Load accepts
// both); a ".tcinct" file holds a temporal index (spatial index
// followed by the timestamp store).
const (
	ExtSpatial  = ".cinct"
	ExtTemporal = ".tcinct"
)

var (
	// ErrNotFound reports a query against an index name the catalog
	// does not hold (never loaded, or closed).
	ErrNotFound = errors.New("engine: no such index")
	// ErrNotTemporal reports a temporal query against a spatial-only
	// index.
	ErrNotTemporal = errors.New("engine: index has no timestamps")
	// ErrOutOfRange reports a trajectory ID or sub-path slice outside
	// the index's bounds.
	ErrOutOfRange = errors.New("engine: out of range")
	// ErrNoFile reports a Reload of an index registered directly from
	// memory, with no backing file to re-read.
	ErrNoFile = errors.New("engine: index has no backing file")
	// ErrCorrupt reports a query that panicked over corrupt index
	// state; the panic is contained at the engine boundary so one bad
	// index degrades its own requests instead of the whole process.
	ErrCorrupt = errors.New("engine: corrupt index state")
	// ErrStaleCursor reports a resume cursor minted before the index
	// was reloaded or replaced: the trajectory-ID space may have been
	// renumbered, so resuming would silently page through wrong data.
	// Re-issue the query without a cursor. Cursors survive Append and
	// Seal — only wholesale swaps invalidate them.
	ErrStaleCursor = errors.New("engine: stale cursor (index reloaded since it was issued)")
)

// entry is one named index in the catalog. The immutable cinct index
// itself needs no locking; the entry's RWMutex guards the *binding*
// from name to index state (which load generation is current, whether
// the entry is closed). Queries snapshot the binding under RLock and
// then run lock-free against the immutable index, so a slow traversal
// never blocks a Reload and a Reload never blocks in-flight queries —
// they simply finish against the generation they started on.
type entry struct {
	name     string
	path     string // backing file; "" when registered from memory
	temporal bool
	// mmap opts the entry into zero-copy serving: v3 container files
	// open via cinct.OpenMapped / OpenMappedTemporal instead of a heap
	// decode. Non-v3 files fall back to the heap loaders.
	mmap bool

	// loadMu serializes disk loads (concurrent Reloads), keeping the
	// read path's mu free during the expensive file read.
	loadMu sync.Mutex
	// ingestMu orders Append's two effects — the writer's ID
	// assignment and the WAL record — so the log's record order always
	// matches global-ID order and replay never sees interleaved
	// batches.
	ingestMu sync.Mutex

	mu  sync.RWMutex
	gen uint64
	// sig fingerprints the index as loaded (a hash of its structural
	// Stats). Unlike the epoch — which restarts at 1 in every process —
	// the sig is derived from the data, so a cursor carrying (epoch,
	// sig) stays resumable across a restart of an unchanged index but
	// fails typed when the file changed while the process was down.
	// It is computed at load/register/swap time only, never on Append
	// or Seal: cursors survive in-process ingestion by design.
	sig uint64
	// epoch tracks the identity of the trajectory-ID space: it bumps
	// only when the binding is replaced wholesale (Reload, or a Load
	// over the same name), never on Append or Seal — those extend the
	// ID space without renumbering. Cursors are bound to the epoch
	// they were minted in (see wrapCursor), so a resume against a
	// reloaded index fails with ErrStaleCursor instead of silently
	// paging through renumbered data, while a resume across a seal
	// keeps working.
	epoch   uint64
	spatial *cinct.Index
	temp    *cinct.TemporalIndex // non-nil iff temporal
	// w is the live ingestion writer, created lazily on the first
	// Append. Once present it supersedes spatial/temp (which remain
	// the writer's original base) as the query target.
	w *cinct.Writer
	// sealErr records the outcome of the most recent seal's
	// persistence attempt (nil on success or when there is nothing to
	// persist). Engine.Seal returns it so a failed disk write is never
	// reported as a successful compaction.
	sealErr error
	// wal is the entry's write-ahead log, non-nil only when the engine
	// runs with Options.WAL.Dir on a file-backed entry. Appends are
	// logged before being acknowledged; replayed into the delta on
	// open; retired once sealed rows persist.
	wal    *wal.Log
	closed bool

	// walErr poisons ingestion after a WAL append failed: the failed
	// batch's rows sit in the delta holding assigned global IDs with
	// no log record, so any further logged append would write a gapped
	// FirstID that a later replay must refuse as missing acknowledged
	// data. Guarded by ingestMu (not mu); cleared when openWAL
	// attaches a fresh log — a Reload rebuilds the delta from the log,
	// discarding the never-acknowledged gap rows.
	walErr error
}

// view is an immutable snapshot of an entry's current binding.
type view struct {
	name     string
	gen      uint64
	epoch    uint64
	sig      uint64
	spatial  *cinct.Index
	temp     *cinct.TemporalIndex
	w        *cinct.Writer
	temporal bool
}

// indexSig fingerprints an index's structural identity from its Stats:
// corpus shape plus the exact compressed-structure sizes. Any change to
// the file a node serves (rebuild, different corpus, sealed-in rows)
// moves at least one of these, which is what lets cursors detect "the
// index on disk is not the one this cursor was minted against" across
// process restarts where epochs reset.
func indexSig(ix *cinct.Index, t *cinct.TemporalIndex) uint64 {
	if t != nil {
		ix = t.Index
	}
	if ix == nil {
		return 0
	}
	st := ix.Stats()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		st.Shards, st.Trajectories, st.Edges, st.TextLen, st.MaxLabel,
		st.ETGraphEdges, st.WaveletBits, st.GraphBits, st.CArrayBits, st.LocateBits)
	if t != nil {
		fmt.Fprintf(h, "|t%d", t.TimestampBits())
	}
	return h.Sum64()
}

// index returns the spatial index backing the snapshot (a temporal
// index embeds one). It is the query target only when the snapshot
// has no live writer.
func (v view) index() *cinct.Index {
	if v.temp != nil {
		return v.temp.Index
	}
	return v.spatial
}

// numTrajectories returns the snapshot's trajectory-ID space size,
// including any unsealed delta rows.
func (v view) numTrajectories() int {
	if v.w != nil {
		return v.w.NumTrajectories()
	}
	return v.index().NumTrajectories()
}

// isTemporal reports whether the snapshot answers interval queries.
func (v view) isTemporal() bool {
	if v.w != nil {
		return v.w.Temporal()
	}
	return v.temp != nil
}

// snapshot captures the entry's current binding, failing if closed.
func (en *entry) snapshot() (view, error) {
	en.mu.RLock()
	defer en.mu.RUnlock()
	if en.closed {
		return view{}, fmt.Errorf("%w: %q", ErrNotFound, en.name)
	}
	return view{name: en.name, gen: en.gen, epoch: en.epoch, sig: en.sig,
		spatial: en.spatial, temp: en.temp, w: en.w, temporal: en.temporal}, nil
}

// swap installs a freshly loaded index, bumps the generation
// (orphaning every cached result computed against the old one) and
// the epoch (invalidating outstanding cursors — the reloaded file may
// hold arbitrarily different data), and discards any live writer: an
// unsealed delta does not survive a reload. It returns the new
// generation.
func (en *entry) swap(ix *cinct.Index, t *cinct.TemporalIndex) (uint64, error) {
	en.mu.Lock()
	defer en.mu.Unlock()
	if en.closed {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, en.name)
	}
	en.gen++
	en.epoch++
	en.spatial, en.temp = ix, t
	en.sig = indexSig(ix, t)
	en.w = nil
	return en.gen, nil
}

// bumpGen advances the generation after a data change (Append),
// orphaning cached results; the epoch is untouched because appended
// IDs extend, never renumber, the ID space.
func (en *entry) bumpGen() uint64 {
	en.mu.Lock()
	defer en.mu.Unlock()
	en.gen++
	return en.gen
}

// loadFromFile reads the entry's backing file into a fresh index pair.
// With mmap set and a v3 container on disk, the file is mapped
// zero-copy; anything else decodes onto the heap.
func (en *entry) loadFromFile() (*cinct.Index, *cinct.TemporalIndex, error) {
	if en.mmap {
		if v3, err := isV3File(en.path); err != nil {
			return nil, nil, err
		} else if v3 {
			if en.temporal {
				t, err := cinct.OpenMappedTemporal(en.path)
				if err != nil {
					return nil, nil, fmt.Errorf("engine: mapping %q from %s: %w", en.name, en.path, err)
				}
				return nil, t, nil
			}
			ix, err := cinct.OpenMapped(en.path)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: mapping %q from %s: %w", en.name, en.path, err)
			}
			return ix, nil, nil
		}
	}
	f, err := os.Open(en.path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if en.temporal {
		t, err := cinct.LoadTemporal(f)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: loading %q from %s: %w", en.name, en.path, err)
		}
		return nil, t, nil
	}
	ix, err := cinct.Load(f)
	if err != nil {
		return nil, nil, fmt.Errorf("engine: loading %q from %s: %w", en.name, en.path, err)
	}
	return ix, nil, nil
}

// isV3File sniffs the file's magic without reading the body.
func isV3File(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		// Too short to be any container; let the heap loader produce
		// its usual typed error.
		return false, nil
	}
	return cinct.IsV3Container(magic[:]), nil
}

// Catalog maps names to independently loaded indexes. All methods are
// safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

func newCatalog() *Catalog {
	return &Catalog{entries: make(map[string]*entry)}
}

func (c *Catalog) get(name string) (*entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	en, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return en, nil
}

// view resolves name to a consistent snapshot of its current index.
func (c *Catalog) view(name string) (view, error) {
	en, err := c.get(name)
	if err != nil {
		return view{}, err
	}
	return en.snapshot()
}

// install publishes a new or replacement entry under name. A
// replacement continues the old entry's generation and epoch
// sequences — the cache keys embed (name, generation) and cursors
// embed the epoch, so a Load over an existing name must orphan old
// results and cursors exactly like Reload does.
func (c *Catalog) install(en *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[en.name]; ok {
		gen, epoch := old.markClosed()
		en.gen, en.epoch = gen+1, epoch+1
	}
	c.entries[en.name] = en
}

// markClosed closes the entry and returns its final generation and
// epoch. The WAL is synced and closed — its segments stay on disk, so
// unsealed rows replay when the entry is opened again.
func (en *entry) markClosed() (gen, epoch uint64) {
	en.mu.Lock()
	defer en.mu.Unlock()
	en.closed = true
	en.spatial, en.temp, en.w = nil, nil, nil
	if en.wal != nil {
		en.wal.Close() //nolint:errcheck // best-effort final sync; segments replay regardless
		en.wal = nil
	}
	return en.gen, en.epoch
}

// remove closes and unregisters name.
func (c *Catalog) remove(name string) error {
	c.mu.Lock()
	en, ok := c.entries[name]
	if ok {
		delete(c.entries, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	en.markClosed()
	return nil
}

// names returns the registered index names, sorted.
func (c *Catalog) names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.entries))
	for name := range c.entries {
		out = append(out, name)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// nameForFile maps a data-dir filename to (index name, temporal),
// returning ok=false for files the catalog does not manage.
func nameForFile(filename string) (name string, temporal, ok bool) {
	switch {
	case strings.HasSuffix(filename, ExtTemporal):
		return strings.TrimSuffix(filename, ExtTemporal), true, true
	case strings.HasSuffix(filename, ExtSpatial):
		return strings.TrimSuffix(filename, ExtSpatial), false, true
	}
	return "", false, false
}

// scanDir lists the loadable index files under dir.
func scanDir(dir string) ([]*entry, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*entry
	seen := make(map[string]string)
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		name, temporal, ok := nameForFile(f.Name())
		if !ok || name == "" {
			continue
		}
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("engine: index name %q claimed by both %s and %s", name, prev, f.Name())
		}
		seen[name] = f.Name()
		out = append(out, &entry{name: name, path: filepath.Join(dir, f.Name()), temporal: temporal})
	}
	return out, nil
}
