package engine

import (
	"time"

	"cinct"
	"cinct/internal/metrics"
)

// engineMetrics is the engine's instrument set, registered once at New
// so every hot-path update is a lock-free handle operation. Gauges
// whose source of truth already lives in the engine (pool occupancy,
// WAL footprint, cache entries) are scrape-time callbacks instead of
// shadow state that could drift.
type engineMetrics struct {
	reg *metrics.Registry

	queries     *metrics.CounterVec // by query kind
	queryErrors *metrics.Counter
	slow        *metrics.Counter
	shed        *metrics.Counter
	latency     *metrics.Histogram // seconds
	cost        *metrics.Histogram // QueryStats.Cost steps
	cacheHits   *metrics.Counter
	cacheMisses *metrics.Counter
	poolWait    *metrics.Histogram // seconds
	appendRows  *metrics.Counter
	sealSec     *metrics.Histogram
	compactSec  *metrics.Histogram

	// Raw-GPS ingestion pipeline.
	gpsPoints   *metrics.Counter
	gpsMatched  *metrics.Counter
	gpsRejected *metrics.CounterVec // by reject reason
	gpsMatchSec *metrics.Histogram

	// Standing queries.
	notifSent    *metrics.Counter
	notifDropped *metrics.Counter
	subsExpired  *metrics.Counter

	// Cluster scatter-gather.
	clusterQueries *metrics.Counter
	clusterPartial *metrics.Counter
	peerRequests   *metrics.CounterVec // by peer
	peerErrors     *metrics.CounterVec // by peer
	peerHedges     *metrics.CounterVec // by peer
	peerLatency    *metrics.Histogram  // seconds
}

func newEngineMetrics(reg *metrics.Registry, e *Engine) *engineMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	m := &engineMetrics{
		reg:         reg,
		queries:     reg.CounterVec("cinct_queries_total", "Queries accepted by Engine.Search, by kind.", "kind"),
		queryErrors: reg.Counter("cinct_query_errors_total", "Queries that ended in an error."),
		slow:        reg.Counter("cinct_slow_queries_total", "Queries that crossed the slow-query threshold."),
		shed:        reg.Counter("cinct_queries_shed_total", "Queries rejected by cost-aware admission control."),
		latency:     reg.Histogram("cinct_query_seconds", "Query wall time from Search to stream completion.", metrics.ExpBuckets(0.0001, 4, 10)),
		cost:        reg.Histogram("cinct_query_cost_steps", "Per-query decode cost (LF steps + timestamp decodes + delta rows).", metrics.ExpBuckets(1, 8, 10)),
		cacheHits:   reg.Counter("cinct_cache_hits_total", "Result-cache hits."),
		cacheMisses: reg.Counter("cinct_cache_misses_total", "Result-cache misses."),
		poolWait:    reg.Histogram("cinct_pool_wait_seconds", "Time admitted queries spent waiting for a worker slot.", metrics.ExpBuckets(0.0001, 4, 8)),
		appendRows:  reg.Counter("cinct_append_rows_total", "Trajectories accepted by Append."),
		sealSec:     reg.Histogram("cinct_seal_seconds", "Explicit seal durations.", metrics.ExpBuckets(0.001, 4, 8)),
		compactSec:  reg.Histogram("cinct_compaction_seconds", "Compact call durations.", metrics.ExpBuckets(0.001, 4, 8)),

		gpsPoints:   reg.Counter("cinct_gps_points_total", "Raw GPS observations received for map matching."),
		gpsMatched:  reg.Counter("cinct_gps_traces_matched_total", "GPS traces map-matched and appended."),
		gpsRejected: reg.CounterVec("cinct_gps_traces_rejected_total", "GPS traces rejected, by reason.", "reason"),
		gpsMatchSec: reg.Histogram("cinct_gps_match_seconds", "Per-trace map-matching wall time.", metrics.ExpBuckets(0.0001, 4, 10)),

		notifSent:    reg.Counter("cinct_notifications_total", "Standing-query notifications delivered to subscriber buffers."),
		notifDropped: reg.Counter("cinct_notifications_dropped_total", "Standing-query notifications dropped on full subscriber buffers."),
		subsExpired:  reg.Counter("cinct_subscriptions_expired_total", "Subscriptions removed by TTL expiry."),

		clusterQueries: reg.Counter("cinct_cluster_queries_total", "Searches that scatter-gathered across the cluster."),
		clusterPartial: reg.Counter("cinct_cluster_partial_total", "Scatter-gathers that failed partial (peers unreachable)."),
		peerRequests:   reg.CounterVec("cinct_peer_requests_total", "Page-fetch attempts against peers, by peer.", "peer"),
		peerErrors:     reg.CounterVec("cinct_peer_errors_total", "Failed page-fetch attempts against peers, by peer.", "peer"),
		peerHedges:     reg.CounterVec("cinct_peer_hedges_total", "Hedged (duplicate) page-fetch attempts, by peer.", "peer"),
		peerLatency:    reg.Histogram("cinct_peer_seconds", "Successful peer page-fetch latency.", metrics.ExpBuckets(0.0001, 4, 10)),
	}
	reg.GaugeFunc("cinct_pool_inflight", "Worker slots currently held.", func() int64 {
		inflight, _ := e.PoolStats()
		return int64(inflight)
	})
	reg.GaugeFunc("cinct_pool_capacity", "Worker slots total.", func() int64 {
		_, capacity := e.PoolStats()
		return int64(capacity)
	})
	reg.GaugeFunc("cinct_subscriptions_active", "Standing-query subscriptions currently registered.", func() int64 {
		return int64(e.subs.count())
	})
	reg.GaugeFunc("cinct_cache_entries", "Result-cache entries resident.", func() int64 {
		_, _, entries := e.CacheStats()
		return int64(entries)
	})
	reg.GaugeFunc("cinct_wal_segments", "Live WAL segment files across all indexes.", func() int64 {
		segs, _, _ := e.WALStats()
		return int64(segs)
	})
	reg.GaugeFunc("cinct_wal_bytes", "Total WAL bytes on disk across all indexes.", func() int64 {
		_, bytes, _ := e.WALStats()
		return bytes
	})
	reg.GaugeFunc("cinct_wal_fsyncs_total", "Successful WAL fsyncs across all indexes (resets on reload).", func() int64 {
		_, _, fsyncs := e.WALStats()
		return fsyncs
	})
	return m
}

// Metrics returns the registry the engine records into, so the serving
// layer can expose it and register its own series alongside.
func (e *Engine) Metrics() *metrics.Registry { return e.metrics.reg }

// kindLabel maps a query kind to its metric label value.
func kindLabel(k cinct.Kind) string {
	switch k {
	case cinct.CountOnly:
		return "count"
	case cinct.Occurrences:
		return "occurrences"
	case cinct.Trajectories:
		return "trajectories"
	}
	return "unknown"
}

// recordQuery closes one query's account: latency and cost histograms
// always, the error counter on failure, and — past the configured
// threshold — one slow-query log line carrying the full QueryStats, so
// an operator can see *why* a query was expensive (scan width, decode
// volume, shard fan-out), not just that it was slow.
func (e *Engine) recordQuery(name string, q cinct.Query, start time.Time, st cinct.QueryStats, qerr error) {
	d := time.Since(start)
	e.metrics.latency.Observe(d.Seconds())
	e.metrics.cost.Observe(float64(st.Cost()))
	if qerr != nil {
		e.metrics.queryErrors.Inc()
	}
	if e.slowQuery > 0 && d >= e.slowQuery {
		e.metrics.slow.Inc()
		e.logf("engine: slow query on %q: kind=%s path_len=%d limit=%d interval=%v took=%s cost=%d stats{%s} err=%v",
			name, kindLabel(q.Kind), len(q.Path), q.Limit, q.Interval != nil, d, st.Cost(), st, qerr)
	}
}
