package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"cinct"
)

// ErrOverloaded reports a query shed by admission control: the worker
// pool was saturated and the query's estimated cost crossed the
// engine's shedding threshold, so it was rejected immediately instead
// of queueing behind work it would only make slower. Callers should
// back off and retry; the HTTP layer maps this to 503 with a
// Retry-After hint.
var ErrOverloaded = errors.New("engine: overloaded")

// costUnbounded is the estimated cost of a query whose locate work is
// not bounded by its descriptor — an unlimited Occurrences or
// Trajectories listing, or any interval query, all of which must
// enumerate the full suffix range. Any positive ShedCost sheds these
// first.
const costUnbounded = int64(1) << 62

// estimateCost prices a query before execution, in the same currency
// QueryStats.Cost reports after it: decode-side steps. The estimate is
// deliberately coarse — its only consumer is admission control, which
// needs to separate O(|path|) counts and limit-bounded streams from
// full-range scans, not to predict latency.
func estimateCost(q cinct.Query) int64 {
	switch {
	case q.Kind == cinct.CountOnly && q.Interval == nil:
		// Pure backward search: one wavelet rank per path symbol.
		return int64(len(q.Path))
	case q.Limit > 0 && q.Interval == nil:
		// Bounded stream: ~one SA-sample LF walk per retained hit. The
		// locate scan itself is range-sized, but the per-shard heaps
		// bound the memory and the merge stops at Limit, so treat it as
		// limit-proportional.
		return int64(q.Limit) * 64
	}
	return costUnbounded
}

// acquire takes a worker slot, honoring context cancellation while
// waiting. When the pool is saturated and shedding is enabled
// (Options.ShedCost > 0), a query whose estimated cost reaches the
// threshold fails fast with ErrOverloaded instead of joining the
// queue — under overload the expensive scans are exactly the ones that
// turn a full pool into an unbounded backlog. Time spent waiting by
// admitted queries is observed into the pool-wait histogram.
func (e *Engine) acquire(ctx context.Context, cost int64) error {
	if err := ctx.Err(); err != nil {
		// Deterministic failure for already-expired contexts (select
		// picks randomly among ready cases).
		return err
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	if e.shedCost > 0 && cost >= e.shedCost {
		e.metrics.shed.Inc()
		return fmt.Errorf("%w: %d workers busy and query cost estimate %d >= shed threshold %d",
			ErrOverloaded, cap(e.sem), cost, e.shedCost)
	}
	t0 := time.Now()
	select {
	case e.sem <- struct{}{}:
		e.metrics.poolWait.Observe(time.Since(t0).Seconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// PoolStats reports the worker pool's current occupancy and capacity —
// the admission gate's gauge pair.
func (e *Engine) PoolStats() (inflight, capacity int) {
	return len(e.sem), cap(e.sem)
}

// WALStats aggregates write-ahead-log footprint and fsync counts
// across every catalog entry that carries a log.
func (e *Engine) WALStats() (segments int, bytes int64, fsyncs int64) {
	for _, name := range e.cat.names() {
		en, err := e.cat.get(name)
		if err != nil {
			continue
		}
		en.mu.RLock()
		wl := en.wal
		en.mu.RUnlock()
		if wl == nil {
			continue
		}
		s, b := wl.Stats()
		segments += s
		bytes += b
		fsyncs += wl.Fsyncs()
	}
	return segments, bytes, fsyncs
}
