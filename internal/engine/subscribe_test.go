package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cinct"
)

// subEngine serves one temporal index "t" and one spatial index "s",
// both registered in-memory, ready for Append.
func subEngine(t *testing.T) *Engine {
	t.Helper()
	trajs := [][]uint32{{1, 2, 3}, {4, 5, 6}}
	times := [][]int64{{10, 20, 30}, {40, 50, 60}}
	tix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := cinct.Build(trajs, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{SealThreshold: -1})
	t.Cleanup(e.Shutdown)
	t.Cleanup(e.CloseAll)
	e.RegisterTemporal("t", tix)
	e.Register("s", ix)
	return e
}

// recv pulls one notification or fails after a timeout.
func recv(t *testing.T, s *Subscription) Notification {
	t.Helper()
	select {
	case n, ok := <-s.C():
		if !ok {
			t.Fatal("subscription channel closed before notification")
		}
		return n
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for notification")
		panic("unreachable")
	}
}

// assertClosed requires the stream to terminate (without further
// notifications pending consumption being an error).
func assertClosed(t *testing.T, s *Subscription) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-s.C():
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscription channel not closed")
		}
	}
}

func TestSubscribeLifecycle(t *testing.T) {
	e := subEngine(t)
	ctx := context.Background()

	s, err := e.Subscribe("t", Predicate{Path: []uint32{8, 9}}, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() == "" || s.Index() != "t" {
		t.Fatalf("subscription identity: %q %q", s.ID(), s.Index())
	}
	if got, err := e.GetSubscription("t", s.ID()); err != nil || got != s {
		t.Fatalf("GetSubscription: %v %v", got, err)
	}

	// A non-matching append stays silent; a matching one notifies with
	// the same locator a Search would produce.
	if _, err := e.Append(ctx, "t", [][]uint32{{1, 2, 3}}, [][]int64{{70, 80, 90}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(ctx, "t", [][]uint32{{7, 8, 9, 1}}, [][]int64{{100, 110, 120, 130}}); err != nil {
		t.Fatal(err)
	}
	n := recv(t, s)
	if n.Subscription != s.ID() || n.Index != "t" || n.Trajectory != 3 || n.Offset != 1 || n.EnteredAt != 110 {
		t.Fatalf("notification %+v", n)
	}
	select {
	case extra := <-s.C():
		t.Fatalf("unexpected extra notification %+v", extra)
	default:
	}

	// Cancel closes the stream; a second cancel is ErrNotFound.
	if err := e.Unsubscribe("t", s.ID()); err != nil {
		t.Fatal(err)
	}
	assertClosed(t, s)
	if err := e.Unsubscribe("t", s.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double cancel: %v", err)
	}
	if _, err := e.GetSubscription("t", s.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetSubscription after cancel: %v", err)
	}

	// Cancelled subscriptions no longer receive.
	if _, err := e.Append(ctx, "t", [][]uint32{{8, 9}}, [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped after cancel: %d", s.Dropped())
	}
}

func TestSubscribeIntervalPredicate(t *testing.T) {
	e := subEngine(t)
	ctx := context.Background()

	s, err := e.Subscribe("t", Predicate{
		Path:     []uint32{5, 6},
		Interval: &cinct.Interval{From: 100, To: 200},
	}, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Entry time 50 is outside [100, 200]; entry time 150 is inside.
	if _, err := e.Append(ctx, "t", [][]uint32{{5, 6}}, [][]int64{{50, 60}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(ctx, "t", [][]uint32{{5, 6}}, [][]int64{{150, 160}}); err != nil {
		t.Fatal(err)
	}
	n := recv(t, s)
	if n.Trajectory != 3 || n.EnteredAt != 150 {
		t.Fatalf("notification %+v, want trajectory 3 entered at 150", n)
	}
}

func TestSubscribeValidation(t *testing.T) {
	e := subEngine(t)
	if _, err := e.Subscribe("nosuch", Predicate{Path: []uint32{1}}, SubscribeOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown index: %v", err)
	}
	if _, err := e.Subscribe("t", Predicate{}, SubscribeOptions{}); !errors.Is(err, ErrBadSubscription) {
		t.Fatalf("empty path: %v", err)
	}
	iv := &cinct.Interval{From: 1, To: 2}
	if _, err := e.Subscribe("s", Predicate{Path: []uint32{1}, Interval: iv}, SubscribeOptions{}); !errors.Is(err, ErrNotTemporal) {
		t.Fatalf("interval on spatial index: %v", err)
	}
	// A path-only subscription on a spatial index is fine.
	s, err := e.Subscribe("s", Predicate{Path: []uint32{2, 3}}, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(context.Background(), "s", [][]uint32{{1, 2, 3}}, nil); err != nil {
		t.Fatal(err)
	}
	if n := recv(t, s); n.Trajectory != 2 || n.Offset != 1 {
		t.Fatalf("spatial notification %+v", n)
	}
}

func TestSubscribeExpiry(t *testing.T) {
	e := subEngine(t)
	s, err := e.Subscribe("t", Predicate{Path: []uint32{1}}, SubscribeOptions{TTL: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	assertClosed(t, s)
	if _, err := e.GetSubscription("t", s.ID()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired subscription still registered: %v", err)
	}
}

func TestSubscribeSlowConsumerDrops(t *testing.T) {
	e := subEngine(t)
	ctx := context.Background()

	s, err := e.Subscribe("t", Predicate{Path: []uint32{9}}, SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Four matching rows against a buffer of one: the first is
	// delivered, three drop and count.
	rows := [][]uint32{{9, 1}, {9, 2}, {9, 3}, {9, 4}}
	cols := [][]int64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	if _, err := e.Append(ctx, "t", rows, cols); err != nil {
		t.Fatal(err)
	}
	if got := s.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	first := recv(t, s)
	if first.Trajectory != 2 || first.Dropped != 0 {
		t.Fatalf("first notification %+v", first)
	}
	// The next delivery carries the loss count in-band.
	if _, err := e.Append(ctx, "t", [][]uint32{{9, 5}}, [][]int64{{9, 10}}); err != nil {
		t.Fatal(err)
	}
	n := recv(t, s)
	if n.Trajectory != 6 || n.Dropped != 3 {
		t.Fatalf("post-drop notification %+v, want trajectory 6 with dropped=3", n)
	}
}

// TestSubscribeFinalDropReport pins the close-time accounting: when
// the very last notification before cancel was dropped, the consumer
// must still learn of the loss through the final in-band drop-report
// (Trajectory/Offset -1) rather than seeing a clean close.
func TestSubscribeFinalDropReport(t *testing.T) {
	e := subEngine(t)
	ctx := context.Background()

	s, err := e.Subscribe("t", Predicate{Path: []uint32{9}}, SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First match fills the buffer; second drops. No further match will
	// ever arrive, so without the close-time report the drop would be
	// invisible.
	if _, err := e.Append(ctx, "t", [][]uint32{{9, 1}}, [][]int64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(ctx, "t", [][]uint32{{9, 2}}, [][]int64{{3, 4}}); err != nil {
		t.Fatal(err)
	}
	first := recv(t, s)
	if first.Trajectory != 2 || first.Dropped != 0 {
		t.Fatalf("first notification %+v", first)
	}
	if err := e.Unsubscribe("t", s.ID()); err != nil {
		t.Fatal(err)
	}
	rep := recv(t, s)
	if rep.Trajectory != -1 || rep.Offset != -1 || rep.Dropped != 1 {
		t.Fatalf("final drop-report %+v, want trajectory/offset -1 with dropped=1", rep)
	}
	assertClosed(t, s)
}

// TestSubscribeFinalDropReportEvicts covers the full-buffer close: the
// report evicts the oldest buffered notification rather than being
// silently discarded.
func TestSubscribeFinalDropReportEvicts(t *testing.T) {
	e := subEngine(t)
	ctx := context.Background()

	s, err := e.Subscribe("t", Predicate{Path: []uint32{9}}, SubscribeOptions{Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(ctx, "t", [][]uint32{{9, 1}, {9, 2}}, [][]int64{{1, 2}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	// Buffer holds trajectory 2; trajectory 3's notification dropped.
	// Close with the consumer never reading: the report must displace
	// the buffered notification.
	if err := e.Unsubscribe("t", s.ID()); err != nil {
		t.Fatal(err)
	}
	rep := recv(t, s)
	if rep.Trajectory != -1 || rep.Offset != -1 || rep.Dropped != 1 {
		t.Fatalf("final drop-report %+v, want trajectory/offset -1 with dropped=1", rep)
	}
	assertClosed(t, s)

	// A subscription with no unreported drops closes cleanly — no
	// spurious report.
	s2, err := e.Subscribe("t", Predicate{Path: []uint32{9}}, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(ctx, "t", [][]uint32{{9, 3}}, [][]int64{{5, 6}}); err != nil {
		t.Fatal(err)
	}
	if n := recv(t, s2); n.Trajectory != 4 {
		t.Fatalf("notification %+v", n)
	}
	if err := e.Unsubscribe("t", s2.ID()); err != nil {
		t.Fatal(err)
	}
	if n, ok := <-s2.C(); ok {
		t.Fatalf("unexpected notification after clean close: %+v", n)
	}
}

// TestSubscribeExpiryCancelRace drives the TTL timer against
// concurrent cancellation: whichever side wins, the subscription is
// removed exactly once — the expiry metric and successful Unsubscribe
// calls together account for every subscription, with no double count
// and no double close.
func TestSubscribeExpiryCancelRace(t *testing.T) {
	e := subEngine(t)
	const n = 64

	base := e.metrics.subsExpired.Value()
	var cancelled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		s, err := e.Subscribe("t", Predicate{Path: []uint32{1}}, SubscribeOptions{TTL: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := e.Unsubscribe("t", id); err == nil {
				cancelled.Add(1)
			} else if !errors.Is(err, ErrNotFound) {
				t.Errorf("unsubscribe: %v", err)
			}
		}(s.ID())
		go func() {
			for range s.C() {
			}
		}()
	}
	wg.Wait()
	// Let every timer that won its race finish firing.
	deadline := time.Now().Add(2 * time.Second)
	for e.subs.count() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cnt := e.subs.count(); cnt != 0 {
		t.Fatalf("%d subscriptions leaked", cnt)
	}
	// Expiries keep racing Unsubscribe after it loses, so poll until
	// the account settles.
	for time.Now().Before(deadline) {
		if e.metrics.subsExpired.Value()-base+cancelled.Load() == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	expired := e.metrics.subsExpired.Value() - base
	if expired+cancelled.Load() != n {
		t.Fatalf("expired %d + cancelled %d != %d subscriptions", expired, cancelled.Load(), n)
	}
}

// TestSubscribeExpiryCloseIndexRace races index close against firing
// TTL timers; the loser must neither double-close nor double-count.
func TestSubscribeExpiryCloseIndexRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		e := subEngine(t)
		base := e.metrics.subsExpired.Value()
		const n = 16
		for i := 0; i < n; i++ {
			s, err := e.Subscribe("t", Predicate{Path: []uint32{1}}, SubscribeOptions{TTL: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				for range s.C() {
				}
			}()
		}
		time.Sleep(time.Millisecond) // let some timers fire mid-close
		if err := e.Close("t"); err != nil {
			t.Fatal(err)
		}
		if cnt := e.subs.count(); cnt != 0 {
			t.Fatalf("round %d: %d subscriptions leaked", round, cnt)
		}
		if expired := e.metrics.subsExpired.Value() - base; expired > n {
			t.Fatalf("round %d: %d expiries counted for %d subscriptions", round, expired, n)
		}
	}
}

func TestSubscribeClosedWithIndex(t *testing.T) {
	e := subEngine(t)
	s, err := e.Subscribe("t", Predicate{Path: []uint32{1}}, SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close("t"); err != nil {
		t.Fatal(err)
	}
	assertClosed(t, s)
	if _, err := e.Subscribe("t", Predicate{Path: []uint32{1}}, SubscribeOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("subscribe after close: %v", err)
	}
}

// TestSubscribeChurn is the -race soak: appends, seals, subscribes,
// cancels and consumers all churning the same index concurrently.
func TestSubscribeChurn(t *testing.T) {
	e := subEngine(t)
	ctx := context.Background()

	const (
		appenders = 3
		churners  = 3
		rounds    = 120
	)
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				row := []uint32{uint32(rng.Intn(8) + 1), uint32(rng.Intn(8) + 1)}
				col := []int64{int64(i), int64(i + 1)}
				if _, err := e.Append(ctx, "t", [][]uint32{row}, [][]int64{col}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if i%40 == 0 {
					if _, err := e.Seal(ctx, "t"); err != nil {
						t.Errorf("seal: %v", err)
						return
					}
				}
			}
		}(int64(a))
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < rounds; i++ {
				s, err := e.Subscribe("t", Predicate{Path: []uint32{uint32(rng.Intn(8) + 1)}}, SubscribeOptions{Buffer: 2})
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				// Consume whatever arrives while the subscription lives.
				done := make(chan struct{})
				go func() {
					for range s.C() {
					}
					close(done)
				}()
				if rng.Intn(4) > 0 {
					if err := e.Unsubscribe("t", s.ID()); err != nil {
						t.Errorf("unsubscribe: %v", err)
					}
				} else {
					e.subs.remove("t", s.ID())
				}
				<-done
			}
		}(int64(c))
	}
	wg.Wait()
	if n := e.subs.count(); n != 0 {
		t.Fatalf("%d subscriptions leaked", n)
	}
}
