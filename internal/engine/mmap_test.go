package engine

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"cinct"
)

// TestEngineMmapServing pins the zero-copy serving path: an engine
// with Options.Mmap opens v3 containers mapped (reported via
// Info.Mapped), answers queries identically to a heap engine over the
// same files, heap-loads legacy v1/v2 files transparently, and — after
// an ingest + seal cycle — persists the sealed state back in v3 so a
// Reload maps it again.
func TestEngineMmapServing(t *testing.T) {
	trajs := testCorpus(41, 60)
	times := testTimes(trajs)
	dir := t.TempDir()

	opts := cinct.DefaultOptions()
	opts.Shards = 3
	ix, err := cinct.Build(trajs, opts)
	if err != nil {
		t.Fatal(err)
	}
	saveTo(t, filepath.Join(dir, "spatial"+ExtSpatial), ix.SaveV3)
	tix, err := cinct.BuildTemporal(trajs, times, nil)
	if err != nil {
		t.Fatal(err)
	}
	saveTo(t, filepath.Join(dir, "temporal"+ExtTemporal), tix.SaveV3)
	// A legacy v1 file in the same dir must still heap-load.
	saveTo(t, filepath.Join(dir, "legacy"+ExtSpatial), ix.Save)

	mapped := New(Options{Mmap: true})
	defer mapped.CloseAll()
	names, err := mapped.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("OpenDir loaded %v, want 3 names", names)
	}
	heap := New(Options{})
	defer heap.CloseAll()
	if _, err := heap.OpenDir(dir); err != nil {
		t.Fatal(err)
	}

	for name, wantMapped := range map[string]bool{
		"spatial": true, "temporal": true, "legacy": false,
	} {
		info, err := mapped.Info(name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Mapped != wantMapped {
			t.Fatalf("Info(%q).Mapped = %v, want %v", name, info.Mapped, wantMapped)
		}
	}

	ctx := context.Background()
	pat := trajs[0][:2]
	for _, name := range []string{"spatial", "temporal", "legacy"} {
		wc, err := heap.Count(ctx, name, pat)
		if err != nil {
			t.Fatal(err)
		}
		gc, err := mapped.Count(ctx, name, pat)
		if err != nil {
			t.Fatal(err)
		}
		if wc != gc {
			t.Fatalf("%s: mapped Count = %d, heap %d", name, gc, wc)
		}
		wm, err := heap.Find(ctx, name, pat, 0)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := mapped.Find(ctx, name, pat, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(wm) != len(gm) {
			t.Fatalf("%s: mapped Find %d matches, heap %d", name, len(gm), len(wm))
		}
		for i := range wm {
			if wm[i] != gm[i] {
				t.Fatalf("%s: match %d = %+v, want %+v", name, i, gm[i], wm[i])
			}
		}
	}

	// Ingest into the mapped temporal index, seal, and confirm the
	// persisted file is a v3 container that reloads mapped.
	extra := testCorpus(43, 8)
	if _, err := mapped.Append(ctx, "temporal", extra, testTimes(extra)); err != nil {
		t.Fatal(err)
	}
	if _, err := mapped.Seal(ctx, "temporal"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "temporal"+ExtTemporal))
	if err != nil {
		t.Fatal(err)
	}
	magic := make([]byte, 8)
	if _, err := f.Read(magic); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !cinct.IsV3Container(magic) {
		t.Fatalf("seal persisted magic %q, want a v3 container", magic)
	}
	if _, err := mapped.Reload("temporal"); err != nil {
		t.Fatal(err)
	}
	info, err := mapped.Info("temporal")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Mapped {
		t.Fatal("reloaded sealed index is not mapped")
	}
	n, err := mapped.Count(ctx, "temporal", extra[0][:2])
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("sealed trajectories not queryable after mapped reload")
	}
}
