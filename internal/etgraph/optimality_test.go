package etgraph

import (
	"math"
	"math/rand"
	"testing"

	"cinct/internal/entropy"
)

// TestTheorem3Exhaustive verifies the optimality theorem directly on a
// small instance: among ALL valid RML functions (every combination of
// per-context label permutations), the bigram-sorted assignment attains
// the minimum H0 of the label multiset. The label multiset of φ(Tbwt)
// is determined by the bigram counts alone — each occurrence of bigram
// "w w′" contributes one occurrence of φ(w|w′) — so entropies can be
// computed from the ET-graph without building the index.
func TestTheorem3Exhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		// Small random text: sigma ≤ 5 keeps the labeling space tiny.
		sigma := 3 + rng.Intn(3)
		text := make([]uint32, 60+rng.Intn(60))
		for i := range text {
			text[i] = uint32(rng.Intn(sigma))
		}
		g := Build(text, sigma, BigramSorted, 0)

		// Collect per-context bigram count vectors.
		var contexts [][]int64
		for wp := uint32(0); int(wp) < sigma; wp++ {
			es := g.OutEdges(wp)
			if len(es) == 0 {
				continue
			}
			counts := make([]int64, len(es))
			for i, e := range es {
				counts[i] = e.Count
			}
			contexts = append(contexts, counts)
		}

		// H0 of the bigram-sorted labeling: context counts are already
		// descending, so label i+1 receives counts[i].
		optimal := labelEntropy(contexts, nil)

		// Exhaustively try every combination of permutations (capped:
		// skip trials whose labeling space is too large).
		space := 1
		for _, c := range contexts {
			space *= factorial(len(c))
			if space > 5000 {
				break
			}
		}
		if space > 5000 {
			continue
		}
		best := math.Inf(1)
		perms := make([][]int, len(contexts))
		var walk func(d int)
		walk = func(d int) {
			if d == len(contexts) {
				h := labelEntropy(contexts, perms)
				if h < best {
					best = h
				}
				return
			}
			permute(len(contexts[d]), func(p []int) {
				perms[d] = p
				walk(d + 1)
			})
		}
		walk(0)

		if optimal > best+1e-9 {
			t.Fatalf("trial %d: bigram-sorted H0=%.6f but a labeling achieves %.6f",
				trial, optimal, best)
		}
	}
}

// labelEntropy computes H0 of the global label histogram: context d's
// count vector is assigned labels by perms[d] (identity if perms is
// nil or perms[d] is nil — counts[i] gets label i+1).
func labelEntropy(contexts [][]int64, perms [][]int) float64 {
	hist := map[int]int64{}
	for d, counts := range contexts {
		for i, c := range counts {
			label := i + 1
			if perms != nil && perms[d] != nil {
				label = perms[d][i] + 1
			}
			hist[label] += c
		}
	}
	flat := make([]uint32, 0, 256)
	for label, c := range hist {
		for k := int64(0); k < c; k++ {
			flat = append(flat, uint32(label))
		}
	}
	return entropy.H0(flat)
}

// permute calls f with every permutation of [0, n).
func permute(n int, f func([]int)) {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			f(p)
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}
