package etgraph

import (
	"fmt"

	"cinct/internal/bitvec"
	"cinct/internal/flat"
)

// Flat (v3) form: the CSR representation written as three packed
// arrays. ViewFlat validates the row structure Decode and Z index by
// (monotone cumulative degrees, in-alphabet targets) so label
// arithmetic on a corrupt file stays inside the arrays.

// AppendFlat writes the compacted graph. It panics on a building-form
// graph; callers compact before saving, as the v1 serializer does.
func (g *Graph) AppendFlat(w *flat.Writer) {
	if g.starts == nil {
		panic("etgraph: AppendFlat on a non-compacted graph")
	}
	w.U64(uint64(g.sigma))
	w.U64(uint64(g.edges))
	w.U64(uint64(g.maxDeg))
	g.starts.AppendFlat(w)
	g.tos.AppendFlat(w)
	g.zs.AppendFlat(w)
}

// ViewFlat wraps a flat graph in place.
func ViewFlat(c *flat.Cursor) (*Graph, error) {
	sigma := c.Int()
	edges := c.Int()
	maxDeg := c.Int()
	if err := c.Err(); err != nil {
		return nil, err
	}
	starts, err := bitvec.ViewPackedInts(c)
	if err != nil {
		return nil, err
	}
	tos, err := bitvec.ViewPackedInts(c)
	if err != nil {
		return nil, err
	}
	zs, err := bitvec.ViewPackedInts(c)
	if err != nil {
		return nil, err
	}
	if starts.Len() != sigma+1 || tos.Len() != edges || zs.Len() != edges {
		return nil, fmt.Errorf("%w: ET-graph arrays (sigma=%d edges=%d starts=%d tos=%d zs=%d)",
			flat.ErrCorrupt, sigma, edges, starts.Len(), tos.Len(), zs.Len())
	}
	gotMax := 0
	prev := uint64(0)
	for wp := 0; wp <= sigma; wp++ {
		s := starts.Get(wp)
		if s < prev || s > uint64(edges) {
			return nil, fmt.Errorf("%w: ET-graph cumulative degree row %d", flat.ErrCorrupt, wp)
		}
		if wp > 0 && int(s-prev) > gotMax {
			gotMax = int(s - prev)
		}
		prev = s
	}
	if starts.Get(sigma) != uint64(edges) || gotMax != maxDeg {
		return nil, fmt.Errorf("%w: ET-graph degree totals (edges=%d maxDeg=%d got %d/%d)",
			flat.ErrCorrupt, edges, maxDeg, starts.Get(sigma), gotMax)
	}
	for i := 0; i < edges; i++ {
		if tos.Get(i) >= uint64(sigma) {
			return nil, fmt.Errorf("%w: ET-graph edge %d targets symbol %d outside alphabet %d",
				flat.ErrCorrupt, i, tos.Get(i), sigma)
		}
	}
	return &Graph{sigma: sigma, edges: edges, maxDeg: maxDeg,
		starts: starts, tos: tos, zs: zs}, nil
}
