// Package etgraph builds the empirical transition graph (ET-graph,
// Definition 3) of a trajectory string and the relative movement
// labeling (RML) function φ on its edges (§III-B). The ET-graph has a
// vertex per alphabet symbol and an edge (w′, w) iff the substring
// "w w′" occurs in T — i.e. iff a movement w′→w is observed (T stores
// reversed trajectories). RML assigns each out-edge of w′ a small
// integer label, distinct per w′; the bigram-sorted strategy (most
// frequent transition gets label 1) is the entropy-optimal assignment
// of Theorem 3.
package etgraph

import (
	"fmt"
	"math/rand"
	"sort"

	"cinct/internal/bitvec"
)

// Strategy selects how labels are assigned within each out-vertex set.
type Strategy int

const (
	// BigramSorted assigns label 1 to the most frequent transition,
	// label 2 to the next, … — the optimal strategy of Theorem 3.
	BigramSorted Strategy = iota
	// RandomShuffle assigns the labels of each out-vertex set in a
	// random order (the "random sorting" baseline of Fig. 14).
	RandomShuffle
)

// Edge is one ET-graph edge (w′ → To) with its bigram count and, once
// the index is built, the PseudoRank correction term Z_{w′,To} (Eq. 7).
type Edge struct {
	To    uint32
	Count int64
	Z     int64
}

// Graph is the ET-graph with an RML labeling: out[w′] is sorted in
// label order, so φ(out[w′][i].To | w′) = i+1 and decoding a label is a
// single slice access.
//
// The graph has two representations. Build produces the *building*
// form (adjacency slices with bigram counts), which the index
// construction mutates (SetZ). Compact converts to a CSR layout of
// packed integer arrays — the resident form whose size the paper's
// experiments account for — after which the graph is immutable.
type Graph struct {
	sigma  int
	out    [][]Edge
	edges  int
	maxDeg int

	// Compact (CSR) representation; non-nil after Compact.
	starts *bitvec.PackedInts // len sigma+1, cumulative out-degrees
	tos    *bitvec.PackedInts // len edges, target symbols in label order
	zs     *bitvec.PackedInts // len edges, zig-zag correction terms
}

// Build scans the trajectory string (including the cyclic wraparound
// bigram, so the BWT row of the full-string rotation is labelable) and
// constructs the labeled ET-graph.
func Build(text []uint32, sigma int, strat Strategy, seed int64) *Graph {
	g := &Graph{sigma: sigma, out: make([][]Edge, sigma)}
	n := len(text)
	if n == 0 {
		return g
	}
	// counts[w'] maps w -> bigram count of "w w'" in T.
	counts := make([]map[uint32]int64, sigma)
	bump := func(w, wPrime uint32) {
		m := counts[wPrime]
		if m == nil {
			m = make(map[uint32]int64, 4)
			counts[wPrime] = m
		}
		m[w]++
	}
	for i := 0; i+1 < n; i++ {
		bump(text[i], text[i+1])
	}
	if n > 1 {
		bump(text[n-1], text[0]) // wraparound rotation bigram
	}

	var rng *rand.Rand
	if strat == RandomShuffle {
		rng = rand.New(rand.NewSource(seed))
	}
	for wp := 0; wp < sigma; wp++ {
		m := counts[wp]
		if len(m) == 0 {
			continue
		}
		es := make([]Edge, 0, len(m))
		for w, c := range m {
			es = append(es, Edge{To: w, Count: c})
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].Count != es[j].Count {
				return es[i].Count > es[j].Count
			}
			return es[i].To < es[j].To
		})
		if strat == RandomShuffle {
			rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		}
		g.out[wp] = es
		g.edges += len(es)
		if len(es) > g.maxDeg {
			g.maxDeg = len(es)
		}
	}
	return g
}

// FromAdjacency reconstructs a graph from label-ordered adjacency
// lists (used by index deserialization). The slices are retained.
func FromAdjacency(out [][]Edge) *Graph {
	g := &Graph{sigma: len(out), out: out}
	for _, es := range out {
		g.edges += len(es)
		if len(es) > g.maxDeg {
			g.maxDeg = len(es)
		}
	}
	return g
}

// Sigma returns the vertex count (alphabet size).
func (g *Graph) Sigma() int { return g.sigma }

// NumEdges returns |E_T|.
func (g *Graph) NumEdges() int { return g.edges }

// MaxOutDegree returns the largest out-vertex set size — the alphabet
// size of the labeled BWT.
func (g *Graph) MaxOutDegree() int { return g.maxDeg }

// AvgOutDegree returns d̄: |E_T| divided by the number of vertices with
// at least one out-edge (Table III's sparsity statistic).
func (g *Graph) AvgOutDegree() float64 {
	nz := 0
	if g.starts != nil {
		// Compact dropped the adjacency slices; count non-empty CSR rows.
		for wp := 0; wp < g.sigma; wp++ {
			if g.starts.Get(wp+1) > g.starts.Get(wp) {
				nz++
			}
		}
	} else {
		for _, es := range g.out {
			if len(es) > 0 {
				nz++
			}
		}
	}
	if nz == 0 {
		return 0
	}
	return float64(g.edges) / float64(nz)
}

// Compact converts the graph to its resident CSR form: cumulative
// out-degrees, target symbols and zig-zag Z terms, each in a packed
// integer array at minimal width. Bigram counts (construction-only)
// are dropped. Idempotent.
func (g *Graph) Compact() {
	if g.starts != nil {
		return
	}
	starts := make([]uint64, g.sigma+1)
	tos := make([]uint64, 0, g.edges)
	zs := make([]uint64, 0, g.edges)
	for wp := 0; wp < g.sigma; wp++ {
		starts[wp] = uint64(len(tos))
		for _, e := range g.out[wp] {
			tos = append(tos, uint64(e.To))
			zs = append(zs, bitvec.ZigZag(e.Z))
		}
	}
	starts[g.sigma] = uint64(len(tos))
	g.starts = bitvec.PackInts(starts)
	g.tos = bitvec.PackInts(tos)
	g.zs = bitvec.PackInts(zs)
	g.out = nil
}

// IsCompact reports whether Compact has run.
func (g *Graph) IsCompact() bool { return g.starts != nil }

// Label returns φ(w|w′), the 1-based label of the transition w′→w, or
// ok=false if (w′, w) is not an ET-graph edge — in which case no
// occurrence of the pattern exists (the paper's Line 5 early exit).
// Runs in O(δ) by linear search, as in §III-C3.
func (g *Graph) Label(w, wPrime uint32) (label uint32, ok bool) {
	if int(wPrime) >= g.sigma {
		return 0, false
	}
	if g.starts != nil {
		lo, hi := int(g.starts.Get(int(wPrime))), int(g.starts.Get(int(wPrime)+1))
		for i := lo; i < hi; i++ {
			if uint32(g.tos.Get(i)) == w {
				return uint32(i-lo) + 1, true
			}
		}
		return 0, false
	}
	for i, e := range g.out[wPrime] {
		if e.To == w {
			return uint32(i) + 1, true
		}
	}
	return 0, false
}

// Decode returns the symbol w with φ(w|w′) = label, in O(1). It panics
// on labels outside [1, OutDegree(w′)].
func (g *Graph) Decode(label, wPrime uint32) uint32 {
	deg := g.OutDegree(wPrime)
	if label == 0 || int(label) > deg {
		panic(fmt.Sprintf("etgraph: label %d invalid for context %d (out-degree %d)",
			label, wPrime, deg))
	}
	if g.starts != nil {
		return uint32(g.tos.Get(int(g.starts.Get(int(wPrime))) + int(label) - 1))
	}
	return g.out[wPrime][label-1].To
}

// OutDegree returns |Nout(w′)|.
func (g *Graph) OutDegree(wPrime uint32) int {
	if g.starts != nil {
		return int(g.starts.Get(int(wPrime)+1) - g.starts.Get(int(wPrime)))
	}
	return len(g.out[wPrime])
}

// OutEdges exposes the out-edge slice of w′ in label order (building
// form only). The slice is owned by the graph; callers may update Z in
// place (the index builder does) but must not reorder it.
func (g *Graph) OutEdges(wPrime uint32) []Edge {
	if g.starts != nil {
		panic("etgraph: OutEdges on a compacted graph")
	}
	return g.out[wPrime]
}

// Edges reconstructs the (To, Z) pairs of w′ in label order, working
// in either representation (used by serialization).
func (g *Graph) Edges(wPrime uint32) []Edge {
	if g.starts == nil {
		return g.out[wPrime]
	}
	lo, hi := int(g.starts.Get(int(wPrime))), int(g.starts.Get(int(wPrime)+1))
	es := make([]Edge, hi-lo)
	for i := lo; i < hi; i++ {
		es[i-lo] = Edge{To: uint32(g.tos.Get(i)), Z: bitvec.UnZigZag(g.zs.Get(i))}
	}
	return es
}

// SetZ stores the correction term for the edge with the given label
// (building form only).
func (g *Graph) SetZ(wPrime, label uint32, z int64) {
	g.out[wPrime][label-1].Z = z
}

// Z returns the correction term Z_{w′w} for the edge with the given
// label out of w′.
func (g *Graph) Z(wPrime, label uint32) int64 {
	if g.starts != nil {
		return bitvec.UnZigZag(g.zs.Get(int(g.starts.Get(int(wPrime))) + int(label) - 1))
	}
	return g.out[wPrime][label-1].Z
}

// SizeBits returns the storage footprint of the adjacency structure.
// After Compact it is the exact packed size; before, an estimate of
// the same layout. Bigram counts are construction-only and never
// counted, matching the paper's "CiNCT (with ET-graph)" accounting.
func (g *Graph) SizeBits() int {
	if g.starts != nil {
		return g.starts.SizeBits() + g.tos.SizeBits() + g.zs.SizeBits()
	}
	// Estimate with the widths Compact would choose.
	widthOf := func(maxV uint64) int {
		w := 0
		for v := maxV; v > 0; v >>= 1 {
			w++
		}
		if w == 0 {
			w = 1
		}
		return w
	}
	var maxTo, maxZ uint64
	for wp := range g.out {
		for _, e := range g.out[wp] {
			if uint64(e.To) > maxTo {
				maxTo = uint64(e.To)
			}
			if z := bitvec.ZigZag(e.Z); z > maxZ {
				maxZ = z
			}
		}
	}
	return (g.sigma+1)*widthOf(uint64(g.edges)) +
		g.edges*(widthOf(maxTo)+widthOf(maxZ)) + 3*64
}
