package etgraph

import (
	"math/rand"
	"testing"

	"cinct/internal/entropy"
)

// paperText is T = FEBA$CBA$CB$DA$# over symbols #=0 $=1 A=2 … F=7.
func paperText() ([]uint32, int) {
	return []uint32{7, 6, 3, 2, 1, 4, 3, 2, 1, 4, 3, 1, 5, 2, 1, 0}, 8
}

func TestPaperETGraph(t *testing.T) {
	text, sigma := paperText()
	g := Build(text, sigma, BigramSorted, 0)

	const (
		symHash = 0
		symSep  = 1
		symA    = 2
		symB    = 3
		symC    = 4
		symD    = 5
		symE    = 6
		symF    = 7
	)
	// Fig. 6(a): from A the movements are A→B (bigram "BA" ×2) labeled 1
	// and A→D (bigram "DA" ×1) labeled 2.
	if l, ok := g.Label(symB, symA); !ok || l != 1 {
		t.Fatalf("φ(B|A) = %d,%v want 1", l, ok)
	}
	if l, ok := g.Label(symD, symA); !ok || l != 2 {
		t.Fatalf("φ(D|A) = %d,%v want 2", l, ok)
	}
	// Movements out of B: B→E ("EB") and B→C ("CB"×2) and B→$ ("$B")?
	// Bigrams with previous symbol B: positions where text[i+1]==B:
	// "EB" (i=1), "CB" (i=5), "CB" (i=9). So Nout(B) = {E, C}:
	// C labeled 1 (count 2), E labeled 2 (count 1).
	if l, ok := g.Label(symC, symB); !ok || l != 1 {
		t.Fatalf("φ(C|B) = %d,%v want 1", l, ok)
	}
	if l, ok := g.Label(symE, symB); !ok || l != 2 {
		t.Fatalf("φ(E|B) = %d,%v want 2", l, ok)
	}
	// No edge B→D.
	if _, ok := g.Label(symD, symB); ok {
		t.Fatal("φ(D|B) should not exist")
	}
	// Wraparound: "#F" means F→# … i.e. bigram (text[15]=#, text[0]=F):
	// edge (F → #)? The bigram is (w=#, w'=F): edge (F, #) with w'=F.
	if l, ok := g.Label(symHash, symF); !ok || l != 1 {
		t.Fatalf("φ(#|F) = %d,%v want 1", l, ok)
	}
	// Out of $: "$C" ×2, "$D" ×1 — wait bigrams (w,w') with w'=$:
	// positions with text[i+1]=$: "A$" ×3, "B$" ×1 — those are edges
	// ($→A) and ($→B): from a boundary the next reversed symbol.
	if l, ok := g.Label(symA, symSep); !ok || l != 1 {
		t.Fatalf("φ(A|$) = %d,%v want 1", l, ok)
	}
	if l, ok := g.Label(symB, symSep); !ok || l != 2 {
		t.Fatalf("φ(B|$) = %d,%v want 2", l, ok)
	}
}

func TestDecodeInvertsLabel(t *testing.T) {
	text, sigma := paperText()
	g := Build(text, sigma, BigramSorted, 0)
	for wp := uint32(0); int(wp) < sigma; wp++ {
		for _, e := range g.OutEdges(wp) {
			l, ok := g.Label(e.To, wp)
			if !ok {
				t.Fatalf("edge (%d,%d) lost", wp, e.To)
			}
			if g.Decode(l, wp) != e.To {
				t.Fatalf("Decode(Label) mismatch at (%d,%d)", wp, e.To)
			}
		}
	}
}

func TestLabelsAreDistinctPerContext(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text := make([]uint32, 5000)
	for i := range text {
		text[i] = uint32(rng.Intn(50))
	}
	for _, strat := range []Strategy{BigramSorted, RandomShuffle} {
		g := Build(text, 50, strat, 7)
		for wp := uint32(0); wp < 50; wp++ {
			seen := map[uint32]bool{}
			for i, e := range g.OutEdges(wp) {
				if seen[e.To] {
					t.Fatalf("duplicate out-edge %d from %d", e.To, wp)
				}
				seen[e.To] = true
				l, ok := g.Label(e.To, wp)
				if !ok || int(l) != i+1 {
					t.Fatalf("label of edge %d from %d = %d,%v want %d", e.To, wp, l, ok, i+1)
				}
			}
		}
	}
}

func TestBigramSortedIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := make([]uint32, 20000)
	for i := range text {
		text[i] = uint32(rng.Intn(30))
	}
	g := Build(text, 30, BigramSorted, 0)
	for wp := uint32(0); wp < 30; wp++ {
		es := g.OutEdges(wp)
		for i := 1; i < len(es); i++ {
			if es[i].Count > es[i-1].Count {
				t.Fatalf("counts not descending out of %d", wp)
			}
		}
	}
}

// Labeling the text itself with bigram-sorted RML must give lower (or
// equal) H0 than a random labeling — the optimality of Theorem 3
// observed on the first-order conversion of Eq. 14.
func TestBigramLabelingLowersEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Strongly biased transitions: from each state, one successor is
	// much more likely.
	sigma := 40
	next := make([][]uint32, sigma)
	for s := range next {
		perm := rng.Perm(sigma)
		next[s] = []uint32{uint32(perm[0]), uint32(perm[1]), uint32(perm[2]), uint32(perm[3])}
	}
	text := make([]uint32, 50000)
	cur := uint32(0)
	for i := range text {
		r := rng.Float64()
		switch {
		case r < 0.7:
			cur = next[cur][0]
		case r < 0.85:
			cur = next[cur][1]
		case r < 0.95:
			cur = next[cur][2]
		default:
			cur = next[cur][3]
		}
		text[i] = cur
	}
	gOpt := Build(text, sigma, BigramSorted, 0)
	gRnd := Build(text, sigma, RandomShuffle, 99)
	label := func(g *Graph) []uint32 {
		out := make([]uint32, 0, len(text)-1)
		for i := 0; i+1 < len(text); i++ {
			// Movement text[i] -> text[i+1]: in T's reversed encoding the
			// bigram is (text[i+1], text[i]), i.e. Label(to, from) with
			// from = text[i]. Here we label the forward sequence directly
			// using counts of (w, w') = (next, prev) as built from this
			// forward text: Build counted (text[j], text[j+1]) as edge
			// (text[j+1] -> text[j]), so "context" is the *successor*.
			// For an entropy comparison the direction convention only
			// needs to be consistent.
			l, ok := g.Label(text[i], text[i+1])
			if !ok {
				t.Fatal("observed transition missing from ET-graph")
			}
			out = append(out, l)
		}
		return out
	}
	hOpt := entropy.H0(label(gOpt))
	hRnd := entropy.H0(label(gRnd))
	if hOpt > hRnd+1e-9 {
		t.Fatalf("bigram-sorted H0=%.4f exceeds random H0=%.4f", hOpt, hRnd)
	}
	if hOpt > 0.95*hRnd {
		t.Fatalf("expected clear entropy gap: opt=%.4f rnd=%.4f", hOpt, hRnd)
	}
}

func TestGraphStats(t *testing.T) {
	text, sigma := paperText()
	g := Build(text, sigma, BigramSorted, 0)
	if g.MaxOutDegree() < 2 {
		t.Fatalf("MaxOutDegree = %d", g.MaxOutDegree())
	}
	if g.NumEdges() == 0 || g.SizeBits() == 0 {
		t.Fatal("graph should be non-empty")
	}
	if d := g.AvgOutDegree(); d <= 0 || d > float64(g.MaxOutDegree()) {
		t.Fatalf("AvgOutDegree = %v", d)
	}
	if g.Sigma() != sigma {
		t.Fatalf("Sigma = %d", g.Sigma())
	}
}

func TestEmptyText(t *testing.T) {
	g := Build(nil, 4, BigramSorted, 0)
	if g.NumEdges() != 0 || g.MaxOutDegree() != 0 || g.AvgOutDegree() != 0 {
		t.Fatal("empty text should give empty graph")
	}
}

func TestZStorage(t *testing.T) {
	text, sigma := paperText()
	g := Build(text, sigma, BigramSorted, 0)
	g.SetZ(2, 1, 42)
	if g.Z(2, 1) != 42 {
		t.Fatal("Z round trip failed")
	}
}

func TestCompactPreservesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	text := make([]uint32, 8000)
	for i := range text {
		text[i] = uint32(rng.Intn(40))
	}
	g := Build(text, 40, BigramSorted, 0)
	// Set some negative and positive Z terms before compacting.
	for wp := uint32(0); wp < 40; wp++ {
		for i := range g.OutEdges(wp) {
			g.SetZ(wp, uint32(i)+1, int64(i*7)-13)
		}
	}
	// Snapshot the building-form answers.
	type snap struct {
		deg    int
		labels map[uint32]uint32
		zs     []int64
	}
	snaps := make([]snap, 40)
	for wp := uint32(0); wp < 40; wp++ {
		s := snap{deg: g.OutDegree(wp), labels: map[uint32]uint32{}}
		for _, e := range g.OutEdges(wp) {
			l, _ := g.Label(e.To, wp)
			s.labels[e.To] = l
		}
		for i := 1; i <= s.deg; i++ {
			s.zs = append(s.zs, g.Z(wp, uint32(i)))
		}
		snaps[wp] = s
	}
	estimate := g.SizeBits()

	g.Compact()
	if !g.IsCompact() {
		t.Fatal("IsCompact should be true")
	}
	for wp := uint32(0); wp < 40; wp++ {
		s := snaps[wp]
		if g.OutDegree(wp) != s.deg {
			t.Fatalf("context %d: degree changed", wp)
		}
		for to, l := range s.labels {
			got, ok := g.Label(to, wp)
			if !ok || got != l {
				t.Fatalf("context %d: Label(%d) = %d,%v want %d", wp, to, got, ok, l)
			}
			if g.Decode(l, wp) != to {
				t.Fatalf("context %d: Decode(%d) broken", wp, l)
			}
		}
		for i := 1; i <= s.deg; i++ {
			if g.Z(wp, uint32(i)) != s.zs[i-1] {
				t.Fatalf("context %d: Z(%d) changed", wp, i)
			}
		}
		// Edges() must reproduce (To, Z) in label order.
		for i, e := range g.Edges(wp) {
			if e.Z != s.zs[i] {
				t.Fatalf("context %d: Edges()[%d].Z mismatch", wp, i)
			}
		}
	}
	// The building-form estimate should approximate the packed truth.
	real := g.SizeBits()
	if real <= 0 {
		t.Fatal("compact size must be positive")
	}
	if float64(estimate) < 0.5*float64(real) || float64(estimate) > 2*float64(real) {
		t.Fatalf("estimate %d far from packed %d", estimate, real)
	}
	// Compact is idempotent.
	g.Compact()
	// OutEdges must refuse on compact graphs.
	defer func() {
		if recover() == nil {
			t.Fatal("OutEdges on compact graph should panic")
		}
	}()
	g.OutEdges(0)
}

func TestCompactUnknownLabelPanics(t *testing.T) {
	text, sigma := paperText()
	g := Build(text, sigma, BigramSorted, 0)
	g.Compact()
	defer func() {
		if recover() == nil {
			t.Fatal("Decode of invalid label should panic")
		}
	}()
	g.Decode(99, 2)
}
