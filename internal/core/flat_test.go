package core

import (
	"math/rand"
	"testing"

	"cinct/internal/flat"
)

func TestFlatIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	text, sigma := markovText(rng, 30, 25, 20, 3)
	for _, opt := range []Options{DefaultOptions(), {Spec: DefaultOptions().Spec}} {
		orig := Build(text, sigma, opt)
		w := flat.NewWriter()
		orig.AppendFlat(w)
		c := flat.NewCursor(w.Words())
		view, err := ViewFlat(c)
		if err != nil {
			t.Fatal(err)
		}
		if c.Remaining() != 0 {
			t.Fatalf("%d words left over", c.Remaining())
		}
		if view.Len() != orig.Len() || view.Sigma() != orig.Sigma() ||
			view.MaxLabel() != orig.MaxLabel() || view.SampleRate() != orig.SampleRate() {
			t.Fatal("viewed header mismatch")
		}
		for trial := 0; trial < 200; trial++ {
			m := 1 + rng.Intn(5)
			start := rng.Intn(len(text) - m)
			pat := text[start : start+m]
			s1, e1, ok1 := orig.SuffixRange(pat)
			s2, e2, ok2 := view.SuffixRange(pat)
			if s1 != s2 || e1 != e2 || ok1 != ok2 {
				t.Fatalf("trial %d: ranges differ: [%d,%d)%v vs [%d,%d)%v",
					trial, s1, e1, ok1, s2, e2, ok2)
			}
		}
		for trial := 0; trial < 50; trial++ {
			j := int64(rng.Intn(len(text)))
			a := orig.Extract(j, 10)
			b := view.Extract(j, 10)
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("extract differs at row %d", j)
				}
			}
			if opt.SASample > 0 && orig.Locate(j) != view.Locate(j) {
				t.Fatalf("Locate(%d) differs", j)
			}
		}
	}
}

// ViewFlat itself must never panic on corrupt words — it either
// errors or hands back a structurally bounded index. (Semantic
// corruption may still surface later as a panic inside a query, which
// the search layer contains; the view must not fault.)
func TestFlatIndexCorruptView(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	text, sigma := markovText(rng, 15, 12, 10, 3)
	orig := Build(text, sigma, DefaultOptions())
	w := flat.NewWriter()
	orig.AppendFlat(w)
	base := w.Words()
	step := 1
	if len(base) > 4096 {
		step = len(base) / 4096
	}
	for i := 0; i < len(base); i += step {
		for _, delta := range []uint64{1, ^uint64(0), 1 << 50} {
			mut := append([]uint64(nil), base...)
			mut[i] += delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("word %d +%#x: panic in ViewFlat: %v", i, delta, r)
					}
				}()
				_, _ = ViewFlat(flat.NewCursor(mut))
			}()
		}
	}
}
