package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cinct/internal/bitvec"
	"cinct/internal/entropy"
	"cinct/internal/etgraph"
	"cinct/internal/huffman"
	"cinct/internal/wavelet"
)

// Serialization format: the labeled BWT is written Huffman-coded (so a
// file is close to the in-memory entropy-compressed size) together
// with the ET-graph, C array and locate samples; the wavelet tree is
// rebuilt in linear time on load. All integers are little-endian;
// variable counts use unsigned varints and signed values zig-zag.

const magic = "CiNCTv1\x00"

// ErrBadFormat reports a malformed or truncated index stream.
var ErrBadFormat = errors.New("core: bad index format")

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], v)
	cw.n += int64(k)
	_, err := cw.w.Write(buf[:k])
	return err
}

func (cw *countingWriter) varint(v int64) error {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutVarint(buf[:], v)
	cw.n += int64(k)
	_, err := cw.w.Write(buf[:k])
	return err
}

func (cw *countingWriter) bytes(b []byte) error {
	cw.n += int64(len(b))
	_, err := cw.w.Write(b)
	return err
}

// Save writes the index to w and returns the number of bytes written.
func (ix *Index) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if err := cw.bytes([]byte(magic)); err != nil {
		return cw.n, err
	}
	hdr := []uint64{
		uint64(ix.n), uint64(ix.sigma), uint64(ix.maxLabel),
		uint64(ix.opt.Spec.Kind), uint64(ix.opt.Spec.Block),
		uint64(ix.opt.Strategy), uint64(ix.opt.Seed),
		uint64(ix.sampleRate),
	}
	for _, v := range hdr {
		if err := cw.uvarint(v); err != nil {
			return cw.n, err
		}
	}
	// C array (delta-coded: counts per symbol).
	for wSym := 0; wSym < ix.sigma; wSym++ {
		if err := cw.uvarint(ix.c.Get(wSym+1) - ix.c.Get(wSym)); err != nil {
			return cw.n, err
		}
	}
	// ET-graph: out-degree then (To, Z) per edge in label order. Label
	// order is positional, so bigram counts need not be stored.
	for wp := 0; wp < ix.sigma; wp++ {
		es := ix.graph.Edges(uint32(wp))
		if err := cw.uvarint(uint64(len(es))); err != nil {
			return cw.n, err
		}
		for _, e := range es {
			if err := cw.uvarint(uint64(e.To)); err != nil {
				return cw.n, err
			}
			if err := cw.varint(e.Z); err != nil {
				return cw.n, err
			}
		}
	}
	// Labeled BWT, Huffman-coded.
	freqs := make([]uint64, ix.maxLabel+1)
	for j := 0; j < ix.n; j++ {
		freqs[ix.labeled.Access(j)]++
	}
	cb := huffman.Build(freqs)
	if err := cw.bytes(cb.Lengths()); err != nil {
		return cw.n, err
	}
	enc := huffman.NewEncoder(cb)
	for j := 0; j < ix.n; j++ {
		enc.Encode(int(ix.labeled.Access(j)))
	}
	words, nbits := enc.Bits()
	if err := cw.uvarint(uint64(nbits)); err != nil {
		return cw.n, err
	}
	var wb [8]byte
	for _, word := range words {
		binary.LittleEndian.PutUint64(wb[:], word)
		if err := cw.bytes(wb[:]); err != nil {
			return cw.n, err
		}
	}
	// Locate structures are not stored: Load rebuilds them from one LF
	// walk over the permutation (the index is a self-index).
	return cw.n, cw.w.Flush()
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	readS := func() (int64, error) { return binary.ReadVarint(br) }

	var hdr [8]uint64
	for i := range hdr {
		v, err := readU()
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
		}
		hdr[i] = v
	}
	n, sigma, maxLabel := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if n < 0 || sigma < 2 || maxLabel < 0 || maxLabel > sigma {
		return nil, fmt.Errorf("%w: implausible header (n=%d sigma=%d maxLabel=%d)",
			ErrBadFormat, n, sigma, maxLabel)
	}
	ix := &Index{
		n: n, sigma: sigma, maxLabel: maxLabel,
		opt: Options{
			Spec:     wavelet.BitvecSpec{Kind: wavelet.BitvecKind(hdr[3]), Block: int(hdr[4])},
			Strategy: etgraph.Strategy(hdr[5]),
			Seed:     int64(hdr[6]),
			SASample: int(hdr[7]),
		},
		sampleRate: int(hdr[7]),
	}
	rawC := make([]uint64, sigma+1)
	for w := 0; w < sigma; w++ {
		d, err := readU()
		if err != nil {
			return nil, fmt.Errorf("%w: C array: %v", ErrBadFormat, err)
		}
		rawC[w+1] = rawC[w] + d
	}
	if rawC[sigma] != uint64(n) {
		return nil, fmt.Errorf("%w: C array sums to %d, want %d", ErrBadFormat, rawC[sigma], n)
	}
	ix.c = bitvec.PackInts(rawC)
	// ET-graph.
	adj := make([][]etgraph.Edge, sigma)
	for wp := 0; wp < sigma; wp++ {
		deg, err := readU()
		if err != nil || deg > uint64(sigma) {
			return nil, fmt.Errorf("%w: adjacency of %d", ErrBadFormat, wp)
		}
		es := make([]etgraph.Edge, deg)
		for i := range es {
			to, err := readU()
			if err != nil || to >= uint64(sigma) {
				return nil, fmt.Errorf("%w: edge target", ErrBadFormat)
			}
			z, err := readS()
			if err != nil {
				return nil, fmt.Errorf("%w: edge Z", ErrBadFormat)
			}
			es[i] = etgraph.Edge{To: uint32(to), Z: z}
		}
		adj[wp] = es
	}
	ix.graph = etgraph.FromAdjacency(adj)
	if ix.graph.MaxOutDegree() != maxLabel {
		return nil, fmt.Errorf("%w: max out-degree %d != header maxLabel %d",
			ErrBadFormat, ix.graph.MaxOutDegree(), maxLabel)
	}
	ix.graph.Compact()
	// Labeled BWT.
	lengths := make([]uint8, maxLabel+1)
	if _, err := io.ReadFull(br, lengths); err != nil {
		return nil, fmt.Errorf("%w: code lengths: %v", ErrBadFormat, err)
	}
	cb := huffman.FromLengths(lengths)
	nbits, err := readU()
	if err != nil {
		return nil, fmt.Errorf("%w: bit count: %v", ErrBadFormat, err)
	}
	words := make([]uint64, (nbits+63)/64)
	var wb [8]byte
	for i := range words {
		if _, err := io.ReadFull(br, wb[:]); err != nil {
			return nil, fmt.Errorf("%w: bit stream: %v", ErrBadFormat, err)
		}
		words[i] = binary.LittleEndian.Uint64(wb[:])
	}
	dec := huffman.NewDecoder(cb)
	labels := make([]uint32, n)
	pos := 0
	for j := 0; j < n; j++ {
		var sym int
		sym, pos = dec.Decode(words, pos)
		if pos > int(nbits) {
			return nil, fmt.Errorf("%w: bit stream overrun", ErrBadFormat)
		}
		labels[j] = uint32(sym)
	}
	freqs := make([]uint64, maxLabel+1)
	for _, l := range labels {
		freqs[l]++
	}
	ix.labeled = wavelet.NewHWTFreqs(labels, freqs, ix.opt.Spec)
	ix.h0Labeled = entropy.H0Freqs(freqs)
	// Rebuild locate structures by walking the LF permutation once
	// (O(n) rank operations): the walk from row 0 (SA[0] = n−1) visits
	// every row and reveals its suffix position.
	if ix.sampleRate > 0 {
		ix.rebuildLocate()
	}
	return ix, nil
}

// rebuildLocate reconstructs the sampled-row bit vector, the SA samples
// and the ISA samples from the loaded structures alone — the index is a
// self-index, so the suffix positions are implicit in LF.
func (ix *Index) rebuildLocate() {
	rate := ix.sampleRate
	saOfRow := make([]int32, ix.n) // only filled at sampled rows; -1 elsewhere
	for i := range saOfRow {
		saOfRow[i] = -1
	}
	ix.isaSamples = make([]int32, (ix.n+rate-1)/rate)
	j := int64(0)
	pos := int64(ix.n - 1) // SA[0] = n-1: the terminator suffix
	wPrime := ix.contextOf(j)
	for k := 0; k < ix.n; k++ {
		if pos%int64(rate) == 0 {
			saOfRow[j] = int32(pos)
			ix.isaSamples[pos/int64(rate)] = int32(j)
		}
		j, wPrime = ix.lfFrom(j, wPrime)
		pos--
		if pos < 0 {
			pos += int64(ix.n)
		}
	}
	bld := bitvec.NewBuilder(ix.n)
	ix.samples = ix.samples[:0]
	for _, p := range saOfRow {
		bld.PushBit(p >= 0)
		if p >= 0 {
			ix.samples = append(ix.samples, p)
		}
	}
	ix.mark = bld.Plain()
}
