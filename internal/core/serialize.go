package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cinct/internal/bitvec"
	"cinct/internal/entropy"
	"cinct/internal/etgraph"
	"cinct/internal/huffman"
	"cinct/internal/wavelet"
)

// Serialization format: the labeled BWT is written Huffman-coded (so a
// file is close to the in-memory entropy-compressed size) together
// with the ET-graph, C array and locate samples; the wavelet tree is
// rebuilt in linear time on load. All integers are little-endian;
// variable counts use unsigned varints and signed values zig-zag.

const magic = "CiNCTv1\x00"

// ErrBadFormat reports a malformed or truncated index stream.
var ErrBadFormat = errors.New("core: bad index format")

type countingWriter struct {
	w *bufio.Writer
	n int64
}

func (cw *countingWriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], v)
	cw.n += int64(k)
	_, err := cw.w.Write(buf[:k])
	return err
}

func (cw *countingWriter) varint(v int64) error {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutVarint(buf[:], v)
	cw.n += int64(k)
	_, err := cw.w.Write(buf[:k])
	return err
}

func (cw *countingWriter) bytes(b []byte) error {
	cw.n += int64(len(b))
	_, err := cw.w.Write(b)
	return err
}

// Save writes the index to w and returns the number of bytes written.
func (ix *Index) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	if err := cw.bytes([]byte(magic)); err != nil {
		return cw.n, err
	}
	hdr := []uint64{
		uint64(ix.n), uint64(ix.sigma), uint64(ix.maxLabel),
		uint64(ix.opt.Spec.Kind), uint64(ix.opt.Spec.Block),
		uint64(ix.opt.Strategy), uint64(ix.opt.Seed),
		uint64(ix.sampleRate),
	}
	for _, v := range hdr {
		if err := cw.uvarint(v); err != nil {
			return cw.n, err
		}
	}
	// C array (delta-coded: counts per symbol).
	for wSym := 0; wSym < ix.sigma; wSym++ {
		if err := cw.uvarint(ix.c.Get(wSym+1) - ix.c.Get(wSym)); err != nil {
			return cw.n, err
		}
	}
	// ET-graph: out-degree then (To, Z) per edge in label order. Label
	// order is positional, so bigram counts need not be stored.
	for wp := 0; wp < ix.sigma; wp++ {
		es := ix.graph.Edges(uint32(wp))
		if err := cw.uvarint(uint64(len(es))); err != nil {
			return cw.n, err
		}
		for _, e := range es {
			if err := cw.uvarint(uint64(e.To)); err != nil {
				return cw.n, err
			}
			if err := cw.varint(e.Z); err != nil {
				return cw.n, err
			}
		}
	}
	// Labeled BWT, Huffman-coded.
	freqs := make([]uint64, ix.maxLabel+1)
	for j := 0; j < ix.n; j++ {
		freqs[ix.labeled.Access(j)]++
	}
	cb := huffman.Build(freqs)
	if err := cw.bytes(cb.Lengths()); err != nil {
		return cw.n, err
	}
	enc := huffman.NewEncoder(cb)
	for j := 0; j < ix.n; j++ {
		enc.Encode(int(ix.labeled.Access(j)))
	}
	words, nbits := enc.Bits()
	if err := cw.uvarint(uint64(nbits)); err != nil {
		return cw.n, err
	}
	var wb [8]byte
	for _, word := range words {
		binary.LittleEndian.PutUint64(wb[:], word)
		if err := cw.bytes(wb[:]); err != nil {
			return cw.n, err
		}
	}
	// Locate structures are not stored: Load rebuilds them from one LF
	// walk over the permutation (the index is a self-index).
	return cw.n, cw.w.Flush()
}

// minCap bounds an initial slice capacity by a declared-but-untrusted
// count: allocation then grows with the data actually parsed, so a
// lying header cannot make Load allocate more than a small multiple
// of the real input size.
func minCap(declared, cap int) int {
	if declared < cap {
		return declared
	}
	return cap
}

// Load reads an index previously written by Save. It is hardened
// against arbitrary bytes: declared counts never translate into
// upfront allocations (slices grow with the data actually parsed),
// structural invariants are checked before use, and any residual
// panic from inconsistent-but-parseable structures is converted into
// ErrBadFormat — corrupt input yields a typed error, never a crash.
func Load(r io.Reader) (ix *Index, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			ix, err = nil, fmt.Errorf("%w: %v", ErrBadFormat, rec)
		}
	}()
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	readS := func() (int64, error) { return binary.ReadVarint(br) }

	var hdr [8]uint64
	for i := range hdr {
		v, err := readU()
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
		}
		hdr[i] = v
	}
	n, sigma, maxLabel := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if n < 0 || sigma < 2 || maxLabel < 0 || maxLabel > sigma {
		return nil, fmt.Errorf("%w: implausible header (n=%d sigma=%d maxLabel=%d)",
			ErrBadFormat, n, sigma, maxLabel)
	}
	spec := wavelet.BitvecSpec{Kind: wavelet.BitvecKind(hdr[3]), Block: int(hdr[4])}
	switch {
	case spec.Kind == wavelet.PlainBits:
	case spec.Kind == wavelet.RRRBits && (spec.Block == 15 || spec.Block == 31 || spec.Block == 63):
	default:
		return nil, fmt.Errorf("%w: unknown bit-vector spec (kind=%d block=%d)", ErrBadFormat, hdr[3], hdr[4])
	}
	ix = &Index{
		n: n, sigma: sigma, maxLabel: maxLabel,
		opt: Options{
			Spec:     spec,
			Strategy: etgraph.Strategy(hdr[5]),
			Seed:     int64(hdr[6]),
			SASample: int(hdr[7]),
		},
		sampleRate: int(hdr[7]),
	}
	rawC := make([]uint64, 1, minCap(sigma+1, 1<<16))
	for w := 0; w < sigma; w++ {
		d, err := readU()
		if err != nil {
			return nil, fmt.Errorf("%w: C array: %v", ErrBadFormat, err)
		}
		rawC = append(rawC, rawC[w]+d)
	}
	if rawC[sigma] != uint64(n) {
		return nil, fmt.Errorf("%w: C array sums to %d, want %d", ErrBadFormat, rawC[sigma], n)
	}
	ix.c = bitvec.PackInts(rawC)
	// ET-graph.
	adj := make([][]etgraph.Edge, 0, minCap(sigma, 1<<16))
	for wp := 0; wp < sigma; wp++ {
		deg, err := readU()
		if err != nil || deg > uint64(sigma) {
			return nil, fmt.Errorf("%w: adjacency of %d", ErrBadFormat, wp)
		}
		es := make([]etgraph.Edge, 0, minCap(int(deg), 1<<12))
		for i := 0; i < int(deg); i++ {
			to, err := readU()
			if err != nil || to >= uint64(sigma) {
				return nil, fmt.Errorf("%w: edge target", ErrBadFormat)
			}
			z, err := readS()
			if err != nil {
				return nil, fmt.Errorf("%w: edge Z", ErrBadFormat)
			}
			es = append(es, etgraph.Edge{To: uint32(to), Z: z})
		}
		adj = append(adj, es)
	}
	ix.graph = etgraph.FromAdjacency(adj)
	if ix.graph.MaxOutDegree() != maxLabel {
		return nil, fmt.Errorf("%w: max out-degree %d != header maxLabel %d",
			ErrBadFormat, ix.graph.MaxOutDegree(), maxLabel)
	}
	ix.graph.Compact()
	// Labeled BWT. The code-length table is read in bounded chunks (a
	// lying maxLabel dies at the first truncated read, not at a huge
	// make), and every length is validated against the 63-bit code
	// bound FromLengths enforces by panic.
	lengths := make([]uint8, 0, minCap(maxLabel+1, 1<<16))
	var chunk [4096]byte
	for len(lengths) < maxLabel+1 {
		k := maxLabel + 1 - len(lengths)
		if k > len(chunk) {
			k = len(chunk)
		}
		if _, err := io.ReadFull(br, chunk[:k]); err != nil {
			return nil, fmt.Errorf("%w: code lengths: %v", ErrBadFormat, err)
		}
		lengths = append(lengths, chunk[:k]...)
	}
	for s, l := range lengths {
		if l > 63 {
			return nil, fmt.Errorf("%w: code length %d for label %d", ErrBadFormat, l, s)
		}
	}
	cb := huffman.FromLengths(lengths)
	nbits, err := readU()
	if err != nil {
		return nil, fmt.Errorf("%w: bit count: %v", ErrBadFormat, err)
	}
	// Every Huffman code is at least one bit (a single-symbol alphabet
	// gets length 1), so n > nbits is corrupt — and rejecting it here
	// bounds the label allocation by the bit stream actually read.
	if uint64(n) > nbits {
		return nil, fmt.Errorf("%w: %d symbols in %d bits", ErrBadFormat, n, nbits)
	}
	nwords := int(nbits / 64)
	if nbits%64 != 0 {
		nwords++
	}
	words := make([]uint64, 0, minCap(nwords+1, 1<<16))
	var wb [8]byte
	for i := 0; i < nwords; i++ {
		if _, err := io.ReadFull(br, wb[:]); err != nil {
			return nil, fmt.Errorf("%w: bit stream: %v", ErrBadFormat, err)
		}
		words = append(words, binary.LittleEndian.Uint64(wb[:]))
	}
	// Guard word: a corrupt stream can send the decoder walking up to
	// 63 bits past nbits before the overrun check fires; the pad keeps
	// that walk in bounds so it fails as ErrBadFormat, not a panic.
	words = append(words, 0)
	dec := huffman.NewDecoder(cb)
	labels := make([]uint32, 0, minCap(n, 1<<20))
	pos := 0
	for j := 0; j < n; j++ {
		var sym int
		sym, pos = dec.Decode(words, pos)
		if pos > int(nbits) {
			return nil, fmt.Errorf("%w: bit stream overrun", ErrBadFormat)
		}
		labels = append(labels, uint32(sym))
	}
	// Every row's label must be decodable in its context (rows with
	// context w occupy C[w]..C[w+1); labels are 1-based ranks into the
	// context's out-edges): a label outside [1, outdeg] would panic
	// deep inside a query's LF step — on a fan-out goroutine no
	// recover can reach — so reject it here.
	for w := 0; w < sigma; w++ {
		deg := uint32(ix.graph.OutDegree(uint32(w)))
		for j := rawC[w]; j < rawC[w+1]; j++ {
			if labels[j] < 1 || labels[j] > deg {
				return nil, fmt.Errorf("%w: label %d at row %d outside [1,%d] for context %d",
					ErrBadFormat, labels[j], j, deg, w)
			}
		}
	}
	freqs := make([]uint64, maxLabel+1)
	for _, l := range labels {
		freqs[l]++
	}
	ix.labeled = wavelet.NewHWTFreqs(labels, freqs, ix.opt.Spec)
	ix.h0Labeled = entropy.H0Freqs(freqs)
	// Rebuild locate structures by walking the LF permutation once
	// (O(n) rank operations): the walk from row 0 (SA[0] = n−1) visits
	// every row and reveals its suffix position — and doubles as the
	// permutation check: an LF that revisits a row before covering all
	// n would strand later Locate walks on unsampled cycles.
	if ix.sampleRate > 0 {
		if err := ix.rebuildLocate(); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// rebuildLocate reconstructs the sampled-row bit vector, the SA samples
// and the ISA samples from the loaded structures alone — the index is a
// self-index, so the suffix positions are implicit in LF. It fails with
// ErrBadFormat when the LF walk is not a single n-cycle: a corrupt
// stream can parse into a mapping that collapses onto a short cycle,
// leaving rows no Locate walk could ever escape from.
func (ix *Index) rebuildLocate() error {
	rate := ix.sampleRate
	saOfRow := make([]int32, ix.n) // only filled at sampled rows; -1 elsewhere
	for i := range saOfRow {
		saOfRow[i] = -1
	}
	visited := make([]bool, ix.n)
	ix.isaSamples = make([]int32, (ix.n+rate-1)/rate)
	j := int64(0)
	pos := int64(ix.n - 1) // SA[0] = n-1: the terminator suffix
	wPrime := ix.contextOf(j)
	for k := 0; k < ix.n; k++ {
		if visited[j] {
			return fmt.Errorf("%w: LF mapping revisits row %d after %d steps", ErrBadFormat, j, k)
		}
		visited[j] = true
		if pos%int64(rate) == 0 {
			saOfRow[j] = int32(pos)
			ix.isaSamples[pos/int64(rate)] = int32(j)
		}
		j, wPrime = ix.lfFrom(j, wPrime)
		pos--
		if pos < 0 {
			pos += int64(ix.n)
		}
	}
	bld := bitvec.NewBuilder(ix.n)
	ix.samples = ix.samples[:0]
	for _, p := range saOfRow {
		bld.PushBit(p >= 0)
		if p >= 0 {
			ix.samples = append(ix.samples, p)
		}
	}
	ix.mark = bld.Plain()
	return nil
}
