// Package core implements the CiNCT index itself (§III–IV of the
// paper): the BWT of the trajectory string is re-labeled by the RML
// function φ of its ET-graph, the labeled BWT φ(Tbwt) is stored in a
// Huffman-shaped wavelet tree over RRR bit vectors, and all queries run
// through PseudoRank (Theorem 2), which simulates rank on the original
// BWT using only the labeled one plus per-edge correction terms.
package core

import (
	"fmt"
	"time"

	"cinct/internal/bitvec"
	"cinct/internal/entropy"
	"cinct/internal/etgraph"
	"cinct/internal/suffix"
	"cinct/internal/wavelet"
)

// Options configures index construction.
type Options struct {
	// Spec selects the bit-vector representation of the wavelet tree.
	// The paper's configuration is RRR with b = 63.
	Spec wavelet.BitvecSpec
	// Strategy selects the RML label assignment (bigram-sorted is the
	// optimal strategy of Theorem 3; random is the Fig. 14 baseline).
	Strategy etgraph.Strategy
	// Seed drives the random labeling strategy.
	Seed int64
	// SASample, if > 0, stores every SASample-th suffix-array value so
	// Locate can report text positions. 0 disables locate support.
	SASample int
}

// DefaultOptions is the paper's configuration: HWT + RRR(63),
// bigram-sorted RML, locate sampling every 64 text positions.
func DefaultOptions() Options {
	return Options{Spec: wavelet.RRRSpec(63), Strategy: etgraph.BigramSorted, SASample: 64}
}

// BuildStats records the construction-time breakdown reported in
// Fig. 16.
type BuildStats struct {
	BWT     time.Duration // suffix array + BWT
	ETGraph time.Duration // graph build + labeling + correction terms
	WT      time.Duration // wavelet tree build
	Total   time.Duration
}

// Index is a CiNCT index over a symbol sequence (a trajectory string
// or any sequence with a sparse ET-graph).
type Index struct {
	n        int
	sigma    int
	maxLabel int
	opt      Options

	c         *bitvec.PackedInts // C[w] = #symbols < w in T; len sigma+1, lg(n+1) bits each
	graph     *etgraph.Graph
	labeled   *wavelet.HWT // φ(Tbwt)
	h0Labeled float64      // H0(φ(Tbwt)), the paper's headline statistic

	// Locate support (optional).
	sampleRate int
	mark       *bitvec.Plain // BWT rows whose SA value is sampled
	samples    []int32       // SA values at marked rows, in row order
	isaSamples []int32       // isaSamples[k] = BWT row of the suffix at text position k*rate

	// Stats describes how long each construction stage took.
	Stats BuildStats
}

// Build constructs a CiNCT index for text, whose symbols lie in
// [0, sigma). The text must end with a unique smallest terminator
// (symbol 0 occurring exactly once, at the end) — the trajectory
// string of Def. 2 by construction.
func Build(text []uint32, sigma int, opt Options) *Index {
	t0 := time.Now()
	sa := suffix.Array(text, sigma)
	bwt := suffix.BWT(text, sa)
	bwtTime := time.Since(t0)
	ix := BuildFromBWT(text, bwt, sa, sigma, opt)
	ix.Stats.BWT = bwtTime
	ix.Stats.Total = time.Since(t0)
	return ix
}

// BuildFromBWT constructs the index from a precomputed BWT (and suffix
// array, which is only required when opt.SASample > 0). It lets the
// benchmark harness share one BWT across all competing indexes.
func BuildFromBWT(text, bwt []uint32, sa []int32, sigma int, opt Options) *Index {
	n := len(text)
	if len(bwt) != n {
		panic(fmt.Sprintf("core: |bwt|=%d but |text|=%d", len(bwt), n))
	}
	// The whole construction rests on the terminator precondition
	// (suffix order ≡ rotation order); check it explicitly rather than
	// failing obscurely later.
	if n > 0 {
		if text[n-1] != 0 {
			panic("core: text must end with terminator symbol 0")
		}
		for _, w := range text[:n-1] {
			if w == 0 {
				panic("core: terminator symbol 0 must occur only at the end")
			}
			if int(w) >= sigma {
				panic(fmt.Sprintf("core: symbol %d outside alphabet [0,%d)", w, sigma))
			}
		}
	}
	if opt.Spec.Kind == wavelet.RRRBits && opt.Spec.Block == 0 {
		opt.Spec.Block = 63
	}
	ix := &Index{n: n, sigma: sigma, opt: opt}

	tGraph := time.Now()
	ix.graph = etgraph.Build(text, sigma, opt.Strategy, opt.Seed)
	ix.maxLabel = ix.graph.MaxOutDegree()

	// C array from symbol counts; kept as a plain slice through
	// construction, packed for residency afterwards.
	rawC := make([]uint64, sigma+1)
	for _, w := range text {
		rawC[w+1]++
	}
	for w := 1; w <= sigma; w++ {
		rawC[w] += rawC[w-1]
	}

	labels := ix.labelBWT(bwt, rawC)
	ix.computeCorrections(bwt, labels, rawC)
	ix.graph.Compact()
	ix.c = bitvec.PackInts(rawC)
	ix.Stats.ETGraph = time.Since(tGraph)

	tWT := time.Now()
	freqs := make([]uint64, ix.maxLabel+1)
	for _, l := range labels {
		freqs[l]++
	}
	ix.labeled = wavelet.NewHWTFreqs(labels, freqs, opt.Spec)
	ix.h0Labeled = entropy.H0Freqs(freqs)
	ix.Stats.WT = time.Since(tWT)

	if opt.SASample > 0 {
		if sa == nil {
			panic("core: SASample > 0 requires the suffix array")
		}
		ix.buildSamples(sa, opt.SASample)
	}
	return ix
}

// labelBWT converts Tbwt into φ(Tbwt) (§III-C1): position j in the
// context block [C[w′], C[w′+1]) gets the label φ(Tbwt[j] | w′).
func (ix *Index) labelBWT(bwt []uint32, rawC []uint64) []uint32 {
	labels := make([]uint32, ix.n)
	scratch := make([]uint32, ix.sigma) // symbol -> label within current context
	for wp := 0; wp < ix.sigma; wp++ {
		lo, hi := rawC[wp], rawC[wp+1]
		if lo == hi {
			continue
		}
		es := ix.graph.OutEdges(uint32(wp))
		for i, e := range es {
			scratch[e.To] = uint32(i) + 1
		}
		for j := lo; j < hi; j++ {
			l := scratch[bwt[j]]
			if l == 0 {
				panic(fmt.Sprintf("core: BWT symbol %d at row %d not in Nout(%d)", bwt[j], j, wp))
			}
			labels[j] = l
		}
		for _, e := range es {
			scratch[e.To] = 0
		}
	}
	return labels
}

// computeCorrections fills the correction terms Z_{w′w} (Eq. 7) in one
// sweep: at each context boundary j = C[w′], the running symbol and
// label counters are exactly rank_w(Tbwt, C[w′]) and
// rank_η(φ(Tbwt), C[w′]).
func (ix *Index) computeCorrections(bwt, labels []uint32, rawC []uint64) {
	cntSym := make([]int64, ix.sigma)
	cntLab := make([]int64, ix.maxLabel+1)
	for wp := 0; wp < ix.sigma; wp++ {
		es := ix.graph.OutEdges(uint32(wp))
		for i, e := range es {
			ix.graph.SetZ(uint32(wp), uint32(i)+1, cntLab[i+1]-cntSym[e.To])
		}
		for j := rawC[wp]; j < rawC[wp+1]; j++ {
			cntSym[bwt[j]]++
			cntLab[labels[j]]++
		}
	}
}

func (ix *Index) buildSamples(sa []int32, rate int) {
	ix.sampleRate = rate
	bld := bitvec.NewBuilder(ix.n)
	for _, p := range sa {
		bld.PushBit(int(p)%rate == 0)
	}
	ix.mark = bld.Plain()
	ix.samples = make([]int32, 0, ix.n/rate+1)
	for _, p := range sa {
		if int(p)%rate == 0 {
			ix.samples = append(ix.samples, p)
		}
	}
	ix.isaSamples = make([]int32, (ix.n+rate-1)/rate)
	for j, p := range sa {
		if int(p)%rate == 0 {
			ix.isaSamples[int(p)/rate] = int32(j)
		}
	}
}

// Len returns |T|.
func (ix *Index) Len() int { return ix.n }

// Sigma returns the alphabet size.
func (ix *Index) Sigma() int { return ix.sigma }

// MaxLabel returns the alphabet size of the labeled BWT (= the maximum
// out-degree of the ET-graph).
func (ix *Index) MaxLabel() int { return ix.maxLabel }

// Graph exposes the ET-graph (read-only use).
func (ix *Index) Graph() *etgraph.Graph { return ix.graph }

// Labeled exposes the wavelet tree of φ(Tbwt) (used by the analysis
// tests).
func (ix *Index) Labeled() *wavelet.HWT { return ix.labeled }

// LabelEntropy returns H0(φ(Tbwt)) in bits per symbol — the quantity
// Eq. (10) shows collapses under RML and which drives both the index
// size (§V-B) and the search speed (Theorem 1). Computed at build time.
func (ix *Index) LabelEntropy() float64 { return ix.h0Labeled }

// C returns C[w] (the number of symbols in T smaller than w). w may
// equal Sigma().
func (ix *Index) C(w uint32) int64 { return ix.cAt(int(w)) }

// cAt reads the packed C array.
func (ix *Index) cAt(w int) int64 { return int64(ix.c.Get(w)) }

// SampleRate returns the locate sampling rate (0 = no locate support).
func (ix *Index) SampleRate() int { return ix.sampleRate }

// pseudoRank computes rank_w(Tbwt, j) = rank_η(φ(Tbwt), j) − Z_{w′w}
// (Theorem 2). The caller guarantees w ∈ Nout(w′) (label/z already
// resolved) and C[w′] ≤ j ≤ C[w′+1].
func (ix *Index) pseudoRank(j int, label uint32, z int64) int64 {
	return int64(ix.labeled.Rank(label, j)) - z
}

// SuffixRange runs LabeledSearchFM (Algorithm 3) for a pattern given in
// *text order* (i.e. the caller has already reversed a travel-order
// path). It returns the suffix range [sp, ep) of the pattern in Tbwt;
// ok is false when the pattern does not occur. An empty pattern matches
// the whole string.
func (ix *Index) SuffixRange(pat []uint32) (sp, ep int64, ok bool) {
	m := len(pat)
	if m == 0 {
		return 0, int64(ix.n), true
	}
	w := pat[m-1]
	if int(w) >= ix.sigma {
		return 0, 0, false
	}
	sp, ep = ix.cAt(int(w)), ix.cAt(int(w)+1)
	for i := m - 2; i >= 0; i-- {
		if sp >= ep {
			return 0, 0, false
		}
		wPrime := pat[i+1]
		w = pat[i]
		if int(w) >= ix.sigma {
			return 0, 0, false
		}
		label, found := ix.graph.Label(w, wPrime)
		if !found {
			// w ∉ Nout(w′): the bigram never occurs (Line 5–6).
			return 0, 0, false
		}
		z := ix.graph.Z(wPrime, label)
		sp = ix.cAt(int(w)) + ix.pseudoRank(int(sp), label, z)
		ep = ix.cAt(int(w)) + ix.pseudoRank(int(ep), label, z)
	}
	if sp >= ep {
		return 0, 0, false
	}
	return sp, ep, true
}

// Count returns the number of occurrences of the (text-order) pattern.
func (ix *Index) Count(pat []uint32) int64 {
	sp, ep, ok := ix.SuffixRange(pat)
	if !ok {
		return 0
	}
	return ep - sp
}

// contextOf returns the symbol w′ with C[w′] ≤ j < C[w′+1]: the first
// symbol of the j-th sorted suffix (Line 1 of Algorithm 4).
func (ix *Index) contextOf(j int64) uint32 {
	// Find the smallest w with C[w+1] > j. Manual binary search: this
	// runs on every LF step and sort.Search's func value would be the
	// hot path's only allocation.
	lo, hi := 0, ix.sigma
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.cAt(mid+1) > j {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint32(lo)
}

// LF performs one LF-mapping step from BWT row j using only the
// labeled BWT: it returns the row of the text position SA[j]−1 (mod n)
// and the BWT symbol Tbwt[j] it consumed.
func (ix *Index) LF(j int64) (next int64, sym uint32) {
	return ix.lfFrom(j, ix.contextOf(j))
}

// lfFrom is LF with the context symbol w′ of row j already known.
// Every LF chain exploits Algorithm 4's Line 5 (w′ ← w): the decoded
// symbol of this step is the context of the next, so the binary search
// over C happens once per chain, not once per step. The combined
// AccessRank gives label and rank_η in one wavelet-tree walk.
func (ix *Index) lfFrom(j int64, wPrime uint32) (next int64, sym uint32) {
	label, lrank := ix.labeled.AccessRank(int(j))
	sym = ix.graph.Decode(label, wPrime)
	z := ix.graph.Z(wPrime, label)
	next = ix.cAt(int(sym)) + int64(lrank) - z
	return next, sym
}

// Extract implements Algorithm 4: it returns the l symbols of T that
// precede text position SA[j], i.e. T[SA[j]−l, SA[j]) (cyclically).
func (ix *Index) Extract(j int64, l int) []uint32 {
	if j < 0 || j >= int64(ix.n) {
		panic(fmt.Sprintf("core: Extract row %d out of range [0,%d)", j, ix.n))
	}
	out := make([]uint32, l)
	wPrime := ix.contextOf(j) // Line 1: binary search, once
	for k := 1; k <= l; k++ {
		next, sym := ix.lfFrom(j, wPrime)
		out[l-k] = sym
		j = next
		wPrime = sym // Line 5: save previous symbol
	}
	return out
}

// Locate returns SA[j]: the text position of the suffix at BWT row j.
// It requires SASample > 0 at build time, walking LF until a sampled
// row (at most SASample steps).
func (ix *Index) Locate(j int64) int64 {
	pos, _ := ix.LocateSteps(j)
	return pos
}

// LocateSteps is Locate plus the number of LF-mapping steps the walk
// performed before hitting a sampled row — the per-occurrence unit of
// locate cost that the serving layers account against queries.
func (ix *Index) LocateSteps(j int64) (pos, lfSteps int64) {
	if ix.sampleRate == 0 {
		panic("core: index built without locate support (SASample = 0)")
	}
	steps := int64(0)
	wPrime := uint32(0)
	haveCtx := false
	for !ix.mark.Get(int(j)) {
		if steps > int64(ix.n) {
			// A healthy index marks a row at least every SASample LF
			// steps; exceeding n steps means the mark bits or the LF
			// permutation are corrupt (possible only on a mapped view,
			// whose O(n) invariants are not validated at open). Panic
			// rather than spin — the search layer converts this to a
			// typed corruption error.
			panic("core: Locate walked past n LF steps; corrupt index")
		}
		if !haveCtx {
			wPrime = ix.contextOf(j)
			haveCtx = true
		}
		j, wPrime = ix.lfFrom(j, wPrime)
		steps++
	}
	p := int64(ix.samples[ix.mark.Rank1(int(j))]) + steps
	if p >= int64(ix.n) {
		p -= int64(ix.n)
	}
	return p, steps
}

// RowOf returns the BWT row of the suffix starting at text position
// pos (the inverse suffix array, j = ISA[pos]). Requires locate
// support; it walks at most SASample LF steps from the next sampled
// position.
func (ix *Index) RowOf(pos int64) int64 {
	if ix.sampleRate == 0 {
		panic("core: index built without locate support (SASample = 0)")
	}
	if pos < 0 || pos >= int64(ix.n) {
		panic(fmt.Sprintf("core: RowOf(%d) out of range [0,%d)", pos, ix.n))
	}
	rate := int64(ix.sampleRate)
	next := (pos + rate - 1) / rate * rate
	var j int64
	if next >= int64(ix.n) {
		// SA[0] = n-1 (the terminator suffix) serves as the anchor.
		next = int64(ix.n) - 1
		j = 0
	} else {
		j = int64(ix.isaSamples[next/rate])
	}
	// LF maps the row of the suffix at q to the row of the suffix at
	// q-1, so walk next-pos steps, carrying the context across steps.
	if next > pos {
		wPrime := ix.contextOf(j)
		for ; next > pos; next-- {
			j, wPrime = ix.lfFrom(j, wPrime)
		}
	}
	return j
}

// ExtractRange returns T[a, b) using only the compressed index: the
// row of the suffix at b is found via RowOf and Algorithm 4 walks
// backward b−a symbols. Requires locate support. b may equal Len().
func (ix *Index) ExtractRange(a, b int64) []uint32 {
	if a < 0 || b > int64(ix.n) || a > b {
		panic(fmt.Sprintf("core: ExtractRange(%d,%d) invalid for n=%d", a, b, ix.n))
	}
	if a == b {
		return nil
	}
	var j int64
	if b == int64(ix.n) {
		// The suffix at position n does not exist; but T[n-1] is the
		// terminator whose row is 0 and extracting from row 0 yields
		// symbols before position n-1, so extract T[a,n-1) then append
		// the terminator... simpler: use the cyclic property — row 0 is
		// the suffix at n-1; Extract from the row of the *rotation*
		// start works because extraction is cyclic. Walk from row of
		// position n-1 one symbol short, then add T[n-1] = 0.
		out := append(ix.Extract(ix.RowOf(int64(ix.n)-1), int(b-a-1)), 0)
		return out
	}
	j = ix.RowOf(b)
	return ix.Extract(j, int(b-a))
}

// Sizes breaks down the index footprint in bits (the accounting used
// by the size experiments; the paper's "CiNCT" curve includes the
// ET-graph, the "w/o ET-graph" curve does not).
type Sizes struct {
	LabeledWT int // wavelet tree of φ(Tbwt), incl. RRR structures
	ETGraph   int // adjacency lists with labels and Z terms
	CArray    int // the C array (all FM variants carry this)
	Locate    int // SA samples + mark bit vector
}

// Total returns the full footprint in bits.
func (s Sizes) Total() int { return s.LabeledWT + s.ETGraph + s.CArray + s.Locate }

// Sizes reports the index footprint.
func (ix *Index) Sizes() Sizes {
	s := Sizes{
		LabeledWT: ix.labeled.SizeBits(),
		ETGraph:   ix.graph.SizeBits(),
		CArray:    ix.c.SizeBits(),
	}
	if ix.sampleRate > 0 {
		s.Locate = ix.mark.SizeBits() + len(ix.samples)*32 + len(ix.isaSamples)*32
	}
	return s
}

// BitsPerSymbol returns the index size in bits per text symbol.
// includeGraph toggles the ET-graph term (Fig. 10's two CiNCT curves);
// locate structures are excluded to match the paper's accounting, which
// benchmarks count/extract indexes.
func (ix *Index) BitsPerSymbol(includeGraph bool) float64 {
	s := ix.Sizes()
	bits := s.LabeledWT + s.CArray
	if includeGraph {
		bits += s.ETGraph
	}
	return float64(bits) / float64(ix.n)
}
