package core

import (
	"fmt"

	"cinct/internal/bitvec"
	"cinct/internal/etgraph"
	"cinct/internal/flat"
	"cinct/internal/wavelet"
)

// Flat (v3) form of the whole index. Where the v1 stream stores the
// labeled BWT Huffman-coded and rebuilds the wavelet tree and locate
// structures in O(n) at load, the flat form stores every resident
// structure directly, so ViewFlat is O(σ + |E| + nodes + n/rate):
// opening is proportional to the directories, never the text. The
// price is that the O(n) semantic checks v1 performs (every label
// decodable in its context, LF a single n-cycle) are skipped — deep
// content corruption surfaces as a contained panic in the search
// layer, which converts it to a typed error, instead of at open.

// AppendFlat writes the index into a word stream. The graph is
// compacted first (idempotent) — the flat form only has a CSR layout.
func (ix *Index) AppendFlat(w *flat.Writer) {
	ix.graph.Compact()
	w.U64(uint64(ix.n))
	w.U64(uint64(ix.sigma))
	w.U64(uint64(ix.maxLabel))
	w.U64(uint64(ix.opt.Spec.Kind))
	w.U64(uint64(ix.opt.Spec.Block))
	w.U64(uint64(ix.opt.Strategy))
	w.I64(ix.opt.Seed)
	w.U64(uint64(ix.opt.SASample))
	w.U64(uint64(ix.sampleRate))
	w.F64(ix.h0Labeled)
	ix.c.AppendFlat(w)
	ix.graph.AppendFlat(w)
	ix.labeled.AppendFlat(w)
	if ix.sampleRate > 0 {
		ix.mark.AppendFlat(w)
		w.I32s(ix.samples)
		w.I32s(ix.isaSamples)
	}
}

// ViewFlat wraps a flat index in place.
func ViewFlat(c *flat.Cursor) (*Index, error) {
	n := c.Int()
	sigma := c.Int()
	maxLabel := c.Int()
	specKind := c.U64()
	specBlock := c.Int()
	strategy := c.U64()
	seed := c.I64()
	saSample := c.Int()
	sampleRate := c.Int()
	h0 := c.F64()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if sigma < 2 || maxLabel > sigma {
		return nil, fmt.Errorf("%w: implausible header (n=%d sigma=%d maxLabel=%d)",
			flat.ErrCorrupt, n, sigma, maxLabel)
	}
	spec := wavelet.BitvecSpec{Kind: wavelet.BitvecKind(specKind), Block: specBlock}
	switch {
	case spec.Kind == wavelet.PlainBits:
	case spec.Kind == wavelet.RRRBits && (spec.Block == 15 || spec.Block == 31 || spec.Block == 63):
	default:
		return nil, fmt.Errorf("%w: unknown bit-vector spec (kind=%d block=%d)",
			flat.ErrCorrupt, specKind, specBlock)
	}
	ix := &Index{
		n: n, sigma: sigma, maxLabel: maxLabel,
		opt: Options{Spec: spec, Strategy: etgraph.Strategy(strategy),
			Seed: seed, SASample: saSample},
		sampleRate: sampleRate,
		h0Labeled:  h0,
	}
	var err error
	if ix.c, err = bitvec.ViewPackedInts(c); err != nil {
		return nil, err
	}
	if ix.c.Len() != sigma+1 {
		return nil, fmt.Errorf("%w: C array has %d entries for alphabet %d",
			flat.ErrCorrupt, ix.c.Len(), sigma)
	}
	prev := uint64(0)
	for w := 0; w <= sigma; w++ {
		v := ix.c.Get(w)
		if v < prev || v > uint64(n) {
			return nil, fmt.Errorf("%w: C array not monotone at %d", flat.ErrCorrupt, w)
		}
		prev = v
	}
	if ix.c.Get(0) != 0 || ix.c.Get(sigma) != uint64(n) {
		return nil, fmt.Errorf("%w: C array spans [%d,%d], want [0,%d]",
			flat.ErrCorrupt, ix.c.Get(0), ix.c.Get(sigma), n)
	}
	if ix.graph, err = etgraph.ViewFlat(c); err != nil {
		return nil, err
	}
	if ix.graph.Sigma() != sigma || ix.graph.MaxOutDegree() != maxLabel {
		return nil, fmt.Errorf("%w: ET-graph (sigma=%d maxDeg=%d) disagrees with header (%d, %d)",
			flat.ErrCorrupt, ix.graph.Sigma(), ix.graph.MaxOutDegree(), sigma, maxLabel)
	}
	if ix.labeled, err = wavelet.ViewHWT(c); err != nil {
		return nil, err
	}
	if ix.labeled.Len() != n || ix.labeled.Sigma() != maxLabel+1 {
		return nil, fmt.Errorf("%w: labeled BWT shape (len=%d sigma=%d), want (%d, %d)",
			flat.ErrCorrupt, ix.labeled.Len(), ix.labeled.Sigma(), n, maxLabel+1)
	}
	if sampleRate > 0 {
		if ix.mark, err = bitvec.ViewPlain(c); err != nil {
			return nil, err
		}
		ix.samples = c.I32s()
		ix.isaSamples = c.I32s()
		if err := c.Err(); err != nil {
			return nil, err
		}
		if ix.mark.Len() != n || len(ix.samples) != ix.mark.Ones() ||
			len(ix.isaSamples) != (n+sampleRate-1)/sampleRate {
			return nil, fmt.Errorf("%w: locate structures (mark=%d samples=%d isa=%d)",
				flat.ErrCorrupt, ix.mark.Len(), len(ix.samples), len(ix.isaSamples))
		}
		// Sample values are deliberately not swept here — that would
		// make opening a mapped container O(n). A corrupt sample is a
		// position fed into slice lookups that are bounds-checked (and
		// Locate's LF walk is step-capped), so the damage is a contained
		// panic or a wrong answer, never unbounded work or wild reads.
	}
	return ix, nil
}
