package core

import (
	"math/rand"
	"testing"

	"cinct/internal/suffix"
)

func TestRowOfInvertsSA(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, rate := range []int{1, 3, 8, 64} {
		text, sigma := markovText(rng, 15, 20, 12, 3)
		sa := suffix.Array(text, sigma)
		bwt := suffix.BWT(text, sa)
		opt := DefaultOptions()
		opt.SASample = rate
		ix := BuildFromBWT(text, bwt, sa, sigma, opt)
		// ISA: invert sa.
		isa := make([]int64, len(text))
		for j, p := range sa {
			isa[p] = int64(j)
		}
		for pos := 0; pos < len(text); pos++ {
			if got := ix.RowOf(int64(pos)); got != isa[pos] {
				t.Fatalf("rate %d: RowOf(%d) = %d, want %d", rate, pos, got, isa[pos])
			}
		}
	}
}

func TestExtractRangeMatchesText(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	text, sigma := markovText(rng, 20, 18, 15, 3)
	ix := Build(text, sigma, DefaultOptions())
	n := int64(len(text))
	for trial := 0; trial < 300; trial++ {
		a := int64(rng.Intn(len(text)))
		b := a + int64(rng.Intn(len(text)-int(a)+1))
		got := ix.ExtractRange(a, b)
		if int64(len(got)) != b-a {
			t.Fatalf("ExtractRange(%d,%d) length %d", a, b, len(got))
		}
		for k := range got {
			if got[k] != text[a+int64(k)] {
				t.Fatalf("ExtractRange(%d,%d)[%d] = %d, want %d", a, b, k, got[k], text[a+int64(k)])
			}
		}
	}
	// Full-text extraction.
	full := ix.ExtractRange(0, n)
	for i := range text {
		if full[i] != text[i] {
			t.Fatalf("full extraction differs at %d", i)
		}
	}
	if len(ix.ExtractRange(5, 5)) != 0 {
		t.Fatal("empty range should return nil/empty")
	}
}

func TestExtractRangePanicsOnBadRange(t *testing.T) {
	text, sigma := paperText()
	ix := Build(text, sigma, DefaultOptions())
	for _, c := range [][2]int64{{-1, 3}, {3, 2}, {0, int64(len(text)) + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ExtractRange(%d,%d) should panic", c[0], c[1])
				}
			}()
			ix.ExtractRange(c[0], c[1])
		}()
	}
}
