package core

import (
	"math/rand"
	"testing"
)

// TestHotPathAllocs asserts that the per-step FM-index operations —
// LF, contextOf, Locate and the full SuffixRange backward search —
// allocate nothing. The backward search runs one PseudoRank per
// pattern symbol and locate walks LF until a marked row; any per-step
// allocation would swamp the zero-copy serving path this package
// feeds.
func TestHotPathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	text, sigma := markovText(rng, 40, 30, 25, 3)
	ix := Build(text, sigma, DefaultOptions())
	pat := text[5:9]
	var sinkI int64
	var sinkU uint32
	var sinkB bool
	cases := []struct {
		name string
		fn   func()
	}{
		{"LF", func() {
			next, sym := ix.LF(int64(ix.Len() / 2))
			sinkI, sinkU = next, sym
		}},
		{"contextOf", func() { sinkU = ix.contextOf(int64(ix.Len() / 3)) }},
		{"Locate", func() { sinkI = ix.Locate(int64(ix.Len() / 2)) }},
		{"LocateSteps", func() {
			// The stats-accounted form the Search hot path uses: the
			// step count must ride back for free.
			pos, steps := ix.LocateSteps(int64(ix.Len() / 2))
			sinkI = pos + steps
		}},
		{"SuffixRange", func() {
			sp, ep, ok := ix.SuffixRange(pat)
			sinkI, sinkB = sp+ep, ok
		}},
	}
	for _, tc := range cases {
		if got := testing.AllocsPerRun(200, tc.fn); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, got)
		}
	}
	_ = sinkI
	_ = sinkU
	_ = sinkB
}
