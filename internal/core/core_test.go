package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cinct/internal/etgraph"
	"cinct/internal/suffix"
	"cinct/internal/wavelet"
)

// paperText is T = FEBA$CBA$CB$DA$# (#=0 $=1 A=2 … F=7).
func paperText() ([]uint32, int) {
	return []uint32{7, 6, 3, 2, 1, 4, 3, 2, 1, 4, 3, 1, 5, 2, 1, 0}, 8
}

// markovText builds a trajectory-string-like sequence: random walks on
// a sparse successor map, reversed, '$'-separated, '#'-terminated.
func markovText(rng *rand.Rand, nWalks, walkLen, nStates, deg int) ([]uint32, int) {
	succ := make([][]uint32, nStates)
	for s := range succ {
		succ[s] = make([]uint32, deg)
		for d := range succ[s] {
			succ[s][d] = uint32(rng.Intn(nStates))
		}
	}
	sigma := nStates + 2
	var text []uint32
	for w := 0; w < nWalks; w++ {
		walk := make([]uint32, walkLen)
		cur := uint32(rng.Intn(nStates))
		for i := range walk {
			walk[i] = cur + 2
			// Biased choice: favor successor 0 to get skewed bigrams.
			d := 0
			if rng.Float64() > 0.6 {
				d = rng.Intn(deg)
			}
			cur = succ[cur][d]
		}
		for i := walkLen - 1; i >= 0; i-- { // reversed, per Def. 2
			text = append(text, walk[i])
		}
		text = append(text, 1)
	}
	text = append(text, 0)
	return text, sigma
}

// naiveOccurrences counts occurrences of pat as a substring of text.
func naiveOccurrences(text, pat []uint32) int {
	if len(pat) == 0 {
		return len(text)
	}
	count := 0
outer:
	for i := 0; i+len(pat) <= len(text); i++ {
		for k := range pat {
			if text[i+k] != pat[k] {
				continue outer
			}
		}
		count++
	}
	return count
}

func buildOpts() map[string]Options {
	return map[string]Options{
		"rrr63":  {Spec: wavelet.RRRSpec(63), Strategy: etgraph.BigramSorted, SASample: 8},
		"rrr15":  {Spec: wavelet.RRRSpec(15), Strategy: etgraph.BigramSorted, SASample: 8},
		"plain":  {Spec: wavelet.PlainSpec, Strategy: etgraph.BigramSorted, SASample: 8},
		"random": {Spec: wavelet.RRRSpec(31), Strategy: etgraph.RandomShuffle, Seed: 5, SASample: 8},
	}
}

func TestPaperExampleSuffixRange(t *testing.T) {
	text, sigma := paperText()
	ix := Build(text, sigma, DefaultOptions())
	// R(BA) = [9, 11) per Fig. 2. Pattern in text order: B A = 3 2.
	sp, ep, ok := ix.SuffixRange([]uint32{3, 2})
	if !ok || sp != 9 || ep != 11 {
		t.Fatalf("R(BA) = [%d,%d),%v want [9,11)", sp, ep, ok)
	}
	// R(A) = [5, 8): C[A]=5, C[B]=8.
	sp, ep, ok = ix.SuffixRange([]uint32{2})
	if !ok || sp != 5 || ep != 8 {
		t.Fatalf("R(A) = [%d,%d),%v want [5,8)", sp, ep, ok)
	}
	// "DA" never occurs in text order D,A? In T, "DA" appears once
	// (positions 12,13).
	if c := ix.Count([]uint32{5, 2}); c != 1 {
		t.Fatalf("Count(DA) = %d, want 1", c)
	}
	// "AD" never occurs in T.
	if _, _, ok := ix.SuffixRange([]uint32{2, 5}); ok {
		t.Fatal("AD should not be found")
	}
}

func TestSuffixRangeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, opt := range buildOpts() {
		text, sigma := markovText(rng, 40, 30, 25, 3)
		ix := Build(text, sigma, opt)
		for trial := 0; trial < 300; trial++ {
			// Random patterns: half sampled from the text (should hit),
			// half random (mostly miss). Neither kind contains the '#'
			// terminator — paper queries are P ∈ E*, and '#' patterns can
			// match the cyclic wraparound rotation.
			var pat []uint32
			m := 1 + rng.Intn(6)
			if trial%2 == 0 {
				start := rng.Intn(len(text) - m - 1)
				pat = append(pat, text[start:start+m]...)
			} else {
				for k := 0; k < m; k++ {
					pat = append(pat, 1+uint32(rng.Intn(sigma-1)))
				}
			}
			want := naiveOccurrences(text, pat)
			got := int(ix.Count(pat))
			if got != want {
				t.Fatalf("%s trial %d: Count(%v) = %d, want %d", name, trial, pat, got, want)
			}
		}
	}
}

func TestPseudoRankMatchesDirectRank(t *testing.T) {
	// PseudoRank must equal rank on the raw BWT wherever its
	// precondition holds (Theorem 2).
	rng := rand.New(rand.NewSource(2))
	text, sigma := markovText(rng, 20, 25, 15, 3)
	sa := suffix.Array(text, sigma)
	bwt := suffix.BWT(text, sa)
	ix := BuildFromBWT(text, bwt, sa, sigma, DefaultOptions())

	naiveRank := func(w uint32, j int64) int64 {
		var r int64
		for _, c := range bwt[:j] {
			if c == w {
				r++
			}
		}
		return r
	}
	for wp := uint32(0); int(wp) < sigma; wp++ {
		for _, e := range ix.Graph().Edges(wp) {
			label, ok := ix.Graph().Label(e.To, wp)
			if !ok {
				t.Fatal("edge lost")
			}
			z := ix.Graph().Z(wp, label)
			lo, hi := ix.C(wp), ix.C(wp+1)
			for j := lo; j <= hi; j++ {
				got := ix.pseudoRank(int(j), label, z)
				want := naiveRank(e.To, j)
				if got != want {
					t.Fatalf("pseudoRank(w=%d, w'=%d, j=%d) = %d, want %d",
						e.To, wp, j, got, want)
				}
			}
		}
	}
}

func TestExtractMatchesText(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text, sigma := markovText(rng, 30, 20, 20, 3)
	sa := suffix.Array(text, sigma)
	bwt := suffix.BWT(text, sa)
	ix := BuildFromBWT(text, bwt, sa, sigma, DefaultOptions())
	n := len(text)
	for trial := 0; trial < 200; trial++ {
		j := rng.Intn(n)
		l := 1 + rng.Intn(15)
		got := ix.Extract(int64(j), l)
		// Expected: T[SA[j]-l, SA[j]) cyclically.
		i := int(sa[j])
		for k := 0; k < l; k++ {
			want := text[((i-l+k)%n+n)%n]
			if got[k] != want {
				t.Fatalf("Extract(%d,%d)[%d] = %d, want %d (SA[j]=%d)", j, l, k, got[k], want, i)
			}
		}
	}
}

func TestExtractWholeText(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	text, sigma := markovText(rng, 10, 15, 12, 2)
	sa := suffix.Array(text, sigma)
	bwt := suffix.BWT(text, sa)
	ix := BuildFromBWT(text, bwt, sa, sigma, DefaultOptions())
	n := len(text)
	// Row 0 is the '#' suffix: SA[0] = n-1. Extract(0, n-1) yields
	// T[0, n-1): everything except the terminator.
	if sa[0] != int32(n-1) {
		t.Fatalf("SA[0] = %d, want %d", sa[0], n-1)
	}
	got := ix.Extract(0, n-1)
	for k := 0; k < n-1; k++ {
		if got[k] != text[k] {
			t.Fatalf("whole-text extract differs at %d", k)
		}
	}
}

func TestLocateMatchesSA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, rate := range []int{1, 4, 8, 64} {
		text, sigma := markovText(rng, 20, 20, 15, 3)
		sa := suffix.Array(text, sigma)
		bwt := suffix.BWT(text, sa)
		opt := DefaultOptions()
		opt.SASample = rate
		ix := BuildFromBWT(text, bwt, sa, sigma, opt)
		for j := 0; j < len(text); j++ {
			if got := ix.Locate(int64(j)); got != int64(sa[j]) {
				t.Fatalf("rate %d: Locate(%d) = %d, want %d", rate, j, got, sa[j])
			}
		}
	}
}

func TestLocatePanicsWithoutSamples(t *testing.T) {
	text, sigma := paperText()
	opt := DefaultOptions()
	opt.SASample = 0
	ix := Build(text, sigma, opt)
	defer func() {
		if recover() == nil {
			t.Fatal("Locate should panic without samples")
		}
	}()
	ix.Locate(0)
}

func TestLFWalkVisitsAllRows(t *testing.T) {
	// LF is a permutation of [0, n): walking n steps from row 0 must
	// visit every row exactly once.
	text, sigma := paperText()
	ix := Build(text, sigma, DefaultOptions())
	n := ix.Len()
	seen := make([]bool, n)
	j := int64(0)
	for k := 0; k < n; k++ {
		if seen[j] {
			t.Fatalf("row %d revisited after %d steps", j, k)
		}
		seen[j] = true
		j, _ = ix.LF(j)
	}
	if j != 0 {
		t.Fatalf("LF walk did not return to row 0 (at %d)", j)
	}
}

func TestEmptyPattern(t *testing.T) {
	text, sigma := paperText()
	ix := Build(text, sigma, DefaultOptions())
	sp, ep, ok := ix.SuffixRange(nil)
	if !ok || sp != 0 || ep != int64(ix.Len()) {
		t.Fatalf("empty pattern = [%d,%d),%v", sp, ep, ok)
	}
}

func TestOutOfAlphabetPattern(t *testing.T) {
	text, sigma := paperText()
	ix := Build(text, sigma, DefaultOptions())
	if _, _, ok := ix.SuffixRange([]uint32{200}); ok {
		t.Fatal("out-of-alphabet symbol should not match")
	}
	if _, _, ok := ix.SuffixRange([]uint32{3, 200}); ok {
		t.Fatal("out-of-alphabet symbol should not match")
	}
}

func TestSizesAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	text, sigma := markovText(rng, 50, 40, 30, 3)
	ix := Build(text, sigma, DefaultOptions())
	s := ix.Sizes()
	if s.LabeledWT <= 0 || s.ETGraph <= 0 || s.CArray <= 0 || s.Locate <= 0 {
		t.Fatalf("sizes should be positive: %+v", s)
	}
	if s.Total() != s.LabeledWT+s.ETGraph+s.CArray+s.Locate {
		t.Fatal("Total mismatch")
	}
	if ix.BitsPerSymbol(true) <= ix.BitsPerSymbol(false) {
		t.Fatal("graph-inclusive size must exceed exclusive size")
	}
	if ix.Stats.Total <= 0 || ix.Stats.BWT <= 0 {
		t.Fatal("build stats not recorded")
	}
	if ix.MaxLabel() < 1 || ix.MaxLabel() > sigma {
		t.Fatalf("MaxLabel = %d", ix.MaxLabel())
	}
}

func TestCountQuickAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text, sigma := markovText(rng, 25, 25, 12, 3)
	ix := Build(text, sigma, DefaultOptions())
	f := func(seedRaw uint32, mRaw uint8) bool {
		r := rand.New(rand.NewSource(int64(seedRaw)))
		m := 1 + int(mRaw)%5
		start := r.Intn(len(text) - m)
		pat := text[start : start+m]
		return int(ix.Count(pat)) == naiveOccurrences(text, pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
