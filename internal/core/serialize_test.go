package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text, sigma := markovText(rng, 30, 25, 20, 3)
	orig := Build(text, sigma, DefaultOptions())

	var buf bytes.Buffer
	n, err := orig.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Save reported %d bytes, wrote %d", n, buf.Len())
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.Sigma() != orig.Sigma() ||
		loaded.MaxLabel() != orig.MaxLabel() {
		t.Fatal("loaded header mismatch")
	}
	// Same query results.
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(5)
		start := rng.Intn(len(text) - m)
		pat := text[start : start+m]
		s1, e1, ok1 := orig.SuffixRange(pat)
		s2, e2, ok2 := loaded.SuffixRange(pat)
		if s1 != s2 || e1 != e2 || ok1 != ok2 {
			t.Fatalf("trial %d: ranges differ: [%d,%d)%v vs [%d,%d)%v",
				trial, s1, e1, ok1, s2, e2, ok2)
		}
	}
	// Same extraction and locate.
	for trial := 0; trial < 50; trial++ {
		j := int64(rng.Intn(len(text)))
		a := orig.Extract(j, 10)
		b := loaded.Extract(j, 10)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("extract differs at row %d", j)
			}
		}
		if orig.Locate(j) != loaded.Locate(j) {
			t.Fatalf("Locate(%d) differs", j)
		}
	}
}

func TestSaveLoadWithoutLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text, sigma := markovText(rng, 10, 15, 10, 2)
	opt := DefaultOptions()
	opt.SASample = 0
	orig := Build(text, sigma, opt)
	var buf bytes.Buffer
	if _, err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Count(text[3:6]), orig.Count(text[3:6]); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
	if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat on empty, got %v", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text, sigma := markovText(rng, 10, 15, 10, 2)
	orig := Build(text, sigma, DefaultOptions())
	var buf bytes.Buffer
	if _, err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(full)) * frac)
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}
