package core

import (
	"testing"

	"cinct/internal/etgraph"
	"cinct/internal/wavelet"
)

// FuzzSearchMatchesNaive decodes arbitrary bytes into a corpus-shaped
// text and a pattern and cross-checks Count against a naive scan. Run
// with `go test -fuzz FuzzSearchMatchesNaive ./internal/core`; the
// seeds below execute under plain `go test`.
func FuzzSearchMatchesNaive(f *testing.F) {
	f.Add([]byte{3, 4, 5, 3, 4, 1, 3, 4, 5, 1}, []byte{3, 4})
	f.Add([]byte{2, 2, 2, 2, 1, 2, 2, 1}, []byte{2, 2, 2})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1}, []byte{9})
	f.Add([]byte{2}, []byte{2})
	f.Fuzz(func(t *testing.T, rawText, rawPat []byte) {
		if len(rawText) == 0 || len(rawText) > 2000 || len(rawPat) > 8 {
			t.Skip()
		}
		const sigma = 10
		// Build a valid trajectory string: symbols in [2, sigma), '$'
		// separators allowed, single '#' terminator appended.
		text := make([]uint32, 0, len(rawText)+1)
		for _, b := range rawText {
			s := uint32(b) % (sigma - 1)
			if s == 0 {
				s = 1 // '$'
			} else {
				s++ // edges 2..sigma-1
			}
			text = append(text, s)
		}
		text = append(text, 0)
		pat := make([]uint32, 0, len(rawPat))
		for _, b := range rawPat {
			s := uint32(b) % (sigma - 1)
			if s == 0 {
				s = 1
			} else {
				s++
			}
			pat = append(pat, s)
		}
		opt := Options{Spec: wavelet.RRRSpec(15), Strategy: etgraph.BigramSorted, SASample: 4}
		ix := Build(text, sigma, opt)
		got := int(ix.Count(pat))
		want := naiveOccurrences(text, pat)
		if got != want {
			t.Fatalf("Count(%v) = %d, want %d (text %v)", pat, got, want, text)
		}
		// Locate must invert extraction on every row.
		for j := int64(0); j < int64(len(text)); j += 7 {
			pos := ix.Locate(j)
			if pos < 0 || pos >= int64(len(text)) {
				t.Fatalf("Locate(%d) = %d out of range", j, pos)
			}
		}
	})
}
