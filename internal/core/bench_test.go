package core

import (
	"math/rand"
	"testing"

	"cinct/internal/suffix"
	"cinct/internal/wavelet"
)

// benchIndex builds a mid-sized index once per benchmark binary.
func benchIndex(b *testing.B) (*Index, []uint32, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	text, sigma := markovText(rng, 2000, 50, 400, 4)
	ix := Build(text, sigma, DefaultOptions())
	return ix, text, sigma
}

func BenchmarkSuffixRange20(b *testing.B) {
	ix, text, _ := benchIndex(b)
	rng := rand.New(rand.NewSource(1))
	pats := make([][]uint32, 256)
	for i := range pats {
		start := rng.Intn(len(text) - 22)
		pats[i] = text[start : start+20]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SuffixRange(pats[i%len(pats)])
	}
}

func BenchmarkLFStep(b *testing.B) {
	ix, _, _ := benchIndex(b)
	j := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, _ = ix.LF(j)
	}
}

func BenchmarkExtract64(b *testing.B) {
	ix, _, _ := benchIndex(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Extract(int64(rng.Intn(ix.Len())), 64)
	}
}

func BenchmarkLocate(b *testing.B) {
	ix, _, _ := benchIndex(b)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Locate(int64(rng.Intn(ix.Len())))
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	text, sigma := markovText(rng, 500, 50, 200, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(text, sigma, DefaultOptions())
	}
	b.SetBytes(int64(4 * len(text)))
}

func BenchmarkBuildFromBWT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	text, sigma := markovText(rng, 500, 50, 200, 4)
	sa := suffix.Array(text, sigma)
	bwt := suffix.BWT(text, sa)
	opt := Options{Spec: wavelet.RRRSpec(63), SASample: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromBWT(text, bwt, nil, sigma, opt)
	}
	b.SetBytes(int64(4 * len(text)))
}
