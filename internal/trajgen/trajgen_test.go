package trajgen

import (
	"testing"

	"cinct/internal/entropy"
	"cinct/internal/etgraph"
	"cinct/internal/roadnet"
	"cinct/internal/trajstr"
)

// smallCfg keeps generator tests fast.
func smallCfg() Config {
	return Config{GridW: 10, GridH: 10, NumTrajs: 120, MeanLen: 25, Seed: 7}
}

// connectedFraction returns the fraction of transitions that follow
// physically connected edges.
func connectedFraction(g *roadnet.Graph, trajs [][]uint32) float64 {
	total, conn := 0, 0
	for _, tr := range trajs {
		for i := 1; i < len(tr); i++ {
			total++
			for _, nx := range g.NextEdges(roadnet.EdgeID(tr[i-1])) {
				if uint32(nx) == tr[i] {
					conn++
					break
				}
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(conn) / float64(total)
}

// avgDegreeOf builds the corpus ET-graph and reports d̄ (as Table III).
func avgDegreeOf(trajs [][]uint32) float64 {
	c, err := trajstr.New(trajs)
	if err != nil {
		panic(err)
	}
	g := etgraph.Build(c.Text, c.Sigma, etgraph.BigramSorted, 0)
	return g.AvgOutDegree()
}

func TestSingaporeHasGaps(t *testing.T) {
	d := Singapore(smallCfg())
	if d.Name != "singapore" || d.Graph == nil {
		t.Fatal("bad dataset header")
	}
	frac := connectedFraction(d.Graph, d.Trajs)
	if frac > 0.97 {
		t.Fatalf("expected gapped transitions, connected fraction = %.3f", frac)
	}
	if frac < 0.80 {
		t.Fatalf("too many gaps, connected fraction = %.3f", frac)
	}
}

func TestSingapore2RepairsGaps(t *testing.T) {
	d2 := Singapore2(smallCfg())
	frac := connectedFraction(d2.Graph, d2.Trajs)
	if frac < 0.999 {
		t.Fatalf("Singapore-2 must be fully connected, got %.4f", frac)
	}
	// The d̄ drop of Table III: gapped corpus must have a denser
	// ET-graph than the repaired one.
	d1 := Singapore(smallCfg())
	dg1, dg2 := avgDegreeOf(d1.Trajs), avgDegreeOf(d2.Trajs)
	if dg2 >= dg1 {
		t.Fatalf("repair should reduce d̄: singapore=%.2f singapore2=%.2f", dg1, dg2)
	}
}

func TestSingapore2LongerThanSingapore(t *testing.T) {
	// Interpolation inserts edges, so the repaired corpus is larger
	// (paper: 53M -> 75M symbols).
	d1 := Singapore(smallCfg())
	d2 := Singapore2(smallCfg())
	if d2.TotalSymbols() <= d1.TotalSymbols() {
		t.Fatalf("interpolated corpus should grow: %d vs %d",
			d2.TotalSymbols(), d1.TotalSymbols())
	}
}

func TestRomaIsConnectedAndLowEntropy(t *testing.T) {
	cfg := smallCfg()
	cfg.NumTrajs = 60
	d := Roma(cfg)
	if len(d.Trajs) != 60 {
		t.Fatalf("got %d trajectories", len(d.Trajs))
	}
	if frac := connectedFraction(d.Graph, d.Trajs); frac < 0.999 {
		t.Fatalf("map-matched output must be connected, got %.4f", frac)
	}
}

func TestMOGenPathsAreConnected(t *testing.T) {
	cfg := smallCfg()
	cfg.NumTrajs = 80
	d := MOGen(cfg)
	if frac := connectedFraction(d.Graph, d.Trajs); frac < 0.999 {
		t.Fatalf("OD trips must be connected, got %.4f", frac)
	}
	if d.TotalSymbols() == 0 {
		t.Fatal("empty corpus")
	}
}

func TestChessIsSparseDeepCorpus(t *testing.T) {
	cfg := smallCfg()
	cfg.NumTrajs = 3000
	d := Chess(cfg)
	if d.Graph != nil {
		t.Fatal("chess has no road network")
	}
	for _, tr := range d.Trajs {
		if len(tr) != 10 {
			t.Fatalf("opening length %d, want 10", len(tr))
		}
	}
	// Table III signature: low average out-degree despite a large
	// alphabet.
	if dg := avgDegreeOf(d.Trajs); dg > 3.0 {
		t.Fatalf("chess analog d̄ = %.2f, want small (paper: 1.6)", dg)
	}
}

func TestRandWalkControlsSigmaAndLength(t *testing.T) {
	d := RandWalk(512, 4, 40000, 3)
	if got := d.TotalSymbols(); got < 40000 || got > 40200 {
		t.Fatalf("total symbols = %d, want ~40000", got)
	}
	seen := map[uint32]bool{}
	for _, tr := range d.Trajs {
		for _, e := range tr {
			if e >= 512 {
				t.Fatalf("state %d out of range", e)
			}
			seen[e] = true
		}
	}
	if len(seen) < 256 {
		t.Fatalf("only %d states visited", len(seen))
	}
}

func TestRandWalkDegreeScales(t *testing.T) {
	d4 := RandWalk(256, 4, 60000, 5)
	d16 := RandWalk(256, 16, 60000, 5)
	g4, g16 := avgDegreeOf(d4.Trajs), avgDegreeOf(d16.Trajs)
	if g16 <= g4 {
		t.Fatalf("d̄ should grow with avgDeg: %.2f vs %.2f", g4, g16)
	}
}

func TestDeterminism(t *testing.T) {
	a := Singapore(smallCfg())
	b := Singapore(smallCfg())
	if len(a.Trajs) != len(b.Trajs) {
		t.Fatal("same seed, different corpus size")
	}
	for k := range a.Trajs {
		if len(a.Trajs[k]) != len(b.Trajs[k]) {
			t.Fatalf("trajectory %d length differs", k)
		}
		for i := range a.Trajs[k] {
			if a.Trajs[k][i] != b.Trajs[k][i] {
				t.Fatalf("trajectory %d differs at %d", k, i)
			}
		}
	}
}

// The headline precondition of the whole paper: every dataset analog
// must have H0(φ(Tbwt)) ≪ H0(T) — strong relative-movement structure.
func TestLabeledEntropyIsMuchSmaller(t *testing.T) {
	cfg := smallCfg()
	cfg.NumTrajs = 150
	sets := []Dataset{Singapore(cfg), Singapore2(cfg), MOGen(cfg)}
	for _, d := range sets {
		c, err := trajstr.New(d.Trajs)
		if err != nil {
			t.Fatal(err)
		}
		h0 := entropy.H0(c.Text)
		// Label the forward text as a cheap proxy for H0(φ(Tbwt)) — the
		// full check runs in the integration tests.
		g := etgraph.Build(c.Text, c.Sigma, etgraph.BigramSorted, 0)
		labels := make([]uint32, 0, len(c.Text)-1)
		for i := 0; i+1 < len(c.Text); i++ {
			l, ok := g.Label(c.Text[i], c.Text[i+1])
			if !ok {
				t.Fatalf("%s: transition missing from ET-graph", d.Name)
			}
			labels = append(labels, l)
		}
		hPhi := entropy.H0(labels)
		if hPhi > 0.5*h0 {
			t.Fatalf("%s: H0(φ)=%.2f not ≪ H0(T)=%.2f", d.Name, hPhi, h0)
		}
	}
}
