// Package trajgen generates the dataset analogs of the paper's
// evaluation (§VI-A4). The real corpora (Singapore/Roma taxi NCTs,
// MO-gen output, chess openings) are not redistributable, so each is
// replaced by a synthetic generator that reproduces the statistical
// property CiNCT is sensitive to — the shape and sparsity of the
// ET-graph — as documented in DESIGN.md:
//
//   - Singapore:   turn-biased walks on a city grid with transition
//     gaps injected (non-adjacent hops), inflating d̄ like the noisy
//     original (paper: d̄ = 26.8);
//   - Singapore-2: the same walks with every gap repaired by
//     shortest-path interpolation (paper: d̄ drops to 4.0);
//   - Roma:        noisy GPS traces HMM-map-matched back onto the
//     network — the pipeline that produced the real Roma NCTs;
//   - MO-gen:      origin–destination (near-)shortest-path trips, the
//     mechanism of Brinkhoff's moving object generator;
//   - Chess:       random walks over a deep, low-branching synthetic
//     state graph (openings-trie analog: large σ, d̄ ≈ 1.6);
//   - RandWalk:    walks on a random transition graph with exact
//     control of σ and d̄ (Figs. 12–13).
package trajgen

import (
	"fmt"
	"math"
	"math/rand"

	"cinct/internal/mapmatch"
	"cinct/internal/roadnet"
)

// Dataset is a generated NCT corpus.
type Dataset struct {
	Name  string
	Trajs [][]uint32
	// Graph is the underlying road network, when one exists (nil for
	// Chess and RandWalk).
	Graph *roadnet.Graph
}

// Config scales a generated dataset.
type Config struct {
	// GridW, GridH size the city grid.
	GridW, GridH int
	// NumTrajs is the number of trajectories.
	NumTrajs int
	// MeanLen is the average trajectory length in edges.
	MeanLen int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultConfig produces a small but statistically representative
// corpus (~10^5 symbols); scale NumTrajs/MeanLen up for full runs.
func DefaultConfig() Config {
	return Config{GridW: 24, GridH: 24, NumTrajs: 2000, MeanLen: 50, Seed: 1}
}

func (c Config) validate() {
	if c.GridW < 2 || c.GridH < 2 || c.NumTrajs < 1 || c.MeanLen < 1 {
		panic(fmt.Sprintf("trajgen: invalid config %+v", c))
	}
}

// turnBiasedStep picks the next edge from cur, strongly preferring to
// continue straight, avoiding U-turns when possible — the "vehicles go
// toward their destinations" bias of §II-B.
func turnBiasedStep(g *roadnet.Graph, cur roadnet.EdgeID, rng *rand.Rand) (roadnet.EdgeID, bool) {
	nexts := g.NextEdges(cur)
	if len(nexts) == 0 {
		return 0, false
	}
	rev, hasRev := g.Reverse(cur)
	dx, dy := g.Direction(cur)
	var best roadnet.EdgeID
	bestDot := -2.0
	var others []roadnet.EdgeID
	for _, nx := range nexts {
		if hasRev && nx == rev && len(nexts) > 1 {
			continue
		}
		ex, ey := g.Direction(nx)
		dot := dx*ex + dy*ey
		if dot > bestDot {
			if bestDot > -2 {
				others = append(others, best)
			}
			best, bestDot = nx, dot
		} else {
			others = append(others, nx)
		}
	}
	// 75% straight-ahead, otherwise a uniform turn.
	if len(others) == 0 || rng.Float64() < 0.75 {
		return best, true
	}
	return others[rng.Intn(len(others))], true
}

// biasedWalk produces one connected turn-biased walk of ~meanLen edges.
func biasedWalk(g *roadnet.Graph, meanLen int, rng *rand.Rand) []uint32 {
	length := 1 + rng.Intn(2*meanLen-1) // uniform with the desired mean
	cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
	out := []uint32{uint32(cur)}
	for len(out) < length {
		nx, ok := turnBiasedStep(g, cur, rng)
		if !ok {
			break
		}
		cur = nx
		out = append(out, uint32(cur))
	}
	return out
}

// gappedWalks generates Singapore-style corpora: connected walks where
// ~gapRate of the transitions teleport to a random edge within a few
// hops *without recording the intermediate edges*, mimicking the
// unmatched "gapped" transitions of the raw Singapore data.
func gappedWalks(g *roadnet.Graph, cfg Config, gapRate float64) ([][]uint32, [][]int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trajs := make([][]uint32, cfg.NumTrajs)
	gaps := make([][]int, cfg.NumTrajs) // indexes i where traj[i]->traj[i+1] is a gap
	for k := range trajs {
		length := 1 + rng.Intn(2*cfg.MeanLen-1)
		cur := roadnet.EdgeID(rng.Intn(g.NumEdges()))
		tr := []uint32{uint32(cur)}
		for len(tr) < length {
			if rng.Float64() < gapRate {
				// Teleport 2–4 hops ahead along random successors,
				// recording only the landing edge.
				hop := cur
				for h := 0; h < 2+rng.Intn(3); h++ {
					nexts := g.NextEdges(hop)
					if len(nexts) == 0 {
						break
					}
					hop = nexts[rng.Intn(len(nexts))]
				}
				if hop != cur {
					gaps[k] = append(gaps[k], len(tr)-1)
					cur = hop
					tr = append(tr, uint32(cur))
					continue
				}
			}
			nx, ok := turnBiasedStep(g, cur, rng)
			if !ok {
				break
			}
			cur = nx
			tr = append(tr, uint32(cur))
		}
		trajs[k] = tr
	}
	return trajs, gaps
}

// Singapore generates the gapped-taxi analog.
func Singapore(cfg Config) Dataset {
	cfg.validate()
	g := roadnet.Grid(cfg.GridW, cfg.GridH, cfg.Seed)
	trajs, _ := gappedWalks(g, cfg, 0.08)
	return Dataset{Name: "singapore", Trajs: trajs, Graph: g}
}

// Singapore2 regenerates the same gapped corpus and repairs every gap
// with the network shortest path, exactly the preprocessing the paper
// applied to obtain Singapore-2.
func Singapore2(cfg Config) Dataset {
	cfg.validate()
	g := roadnet.Grid(cfg.GridW, cfg.GridH, cfg.Seed)
	trajs, gaps := gappedWalks(g, cfg, 0.08)
	repaired := make([][]uint32, len(trajs))
	for k, tr := range trajs {
		gapSet := make(map[int]bool, len(gaps[k]))
		for _, i := range gaps[k] {
			gapSet[i] = true
		}
		out := make([]uint32, 0, len(tr))
		for i := 0; i < len(tr); i++ {
			out = append(out, tr[i])
			if i+1 < len(tr) && gapSet[i] {
				mid, ok := g.ConnectEdges(roadnet.EdgeID(tr[i]), roadnet.EdgeID(tr[i+1]))
				if ok {
					for _, e := range mid {
						out = append(out, uint32(e))
					}
				}
			}
		}
		repaired[k] = out
	}
	return Dataset{Name: "singapore2", Trajs: repaired, Graph: g}
}

// Roma generates the map-matched-GPS analog: true paths are sampled as
// noisy GPS traces and recovered with the HMM matcher. Trajectories the
// matcher rejects are dropped, as a real pipeline would.
func Roma(cfg Config) Dataset {
	cfg.validate()
	g := roadnet.Grid(cfg.GridW, cfg.GridH, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	mm := mapmatch.DefaultConfig()
	trajs := make([][]uint32, 0, cfg.NumTrajs)
	for len(trajs) < cfg.NumTrajs {
		truth := biasedWalk(g, cfg.MeanLen, rng)
		path := make([]roadnet.EdgeID, len(truth))
		for i, e := range truth {
			path[i] = roadnet.EdgeID(e)
		}
		pts := mapmatch.SimulateTrace(g, path, 0.10, rng)
		matched, ok := mapmatch.Match(g, pts, mm)
		if !ok || len(matched) == 0 {
			continue
		}
		tr := make([]uint32, len(matched))
		for i, e := range matched {
			tr[i] = uint32(e)
		}
		trajs = append(trajs, tr)
	}
	return Dataset{Name: "roma", Trajs: trajs, Graph: g}
}

// MOGen generates origin–destination trips: shortest paths, with a
// random intermediate waypoint on 30% of trips (Brinkhoff-style routed
// movement with detours).
func MOGen(cfg Config) Dataset {
	cfg.validate()
	g := roadnet.Grid(cfg.GridW, cfg.GridH, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	trajs := make([][]uint32, 0, cfg.NumTrajs)
	nn := g.NumNodes()
	for len(trajs) < cfg.NumTrajs {
		o := roadnet.NodeID(rng.Intn(nn))
		d := roadnet.NodeID(rng.Intn(nn))
		if o == d {
			continue
		}
		var path []roadnet.EdgeID
		if rng.Float64() < 0.3 {
			w := roadnet.NodeID(rng.Intn(nn))
			p1, _, ok1 := g.ShortestPath(o, w)
			p2, _, ok2 := g.ShortestPath(w, d)
			if !ok1 || !ok2 {
				continue
			}
			path = append(p1, p2...)
		} else {
			p, _, ok := g.ShortestPath(o, d)
			if !ok {
				continue
			}
			path = p
		}
		if len(path) == 0 {
			continue
		}
		tr := make([]uint32, len(path))
		for i, e := range path {
			tr[i] = uint32(e)
		}
		trajs = append(trajs, tr)
	}
	return Dataset{Name: "mogen", Trajs: trajs, Graph: g}
}

// Chess generates the openings-corpus analog as a Chinese Restaurant
// Process over a trie of positions: from a node visited v times, a
// *new* move is played with probability θ/(θ+v) and an existing move m
// with probability count(m)/(θ+v). This reproduces the two signatures
// of real opening books that matter here: the state count *saturates*
// (grows ~θ·log of the game count, like theory converging) and move
// popularity is Zipf-like, so the ET-graph is huge-alphabet,
// low-out-degree, strongly skewed — the paper's Chess regime
// (lg σ = 18.8, d̄ = 1.6).
func Chess(cfg Config) Dataset {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// θ tunes novelty. 0.3 lands the corpus near the paper's regime
	// (n/σ ≈ 40 at millions of moves): most games follow known theory,
	// novelties are rare and mostly deep.
	const theta = 1.0
	type trieNode struct {
		children []uint32 // state IDs, in discovery order
		counts   []int64  // play counts per child
		visits   int64
	}
	nodes := []trieNode{{}} // state 0 = initial position
	nextState := uint32(1)
	depth := 10 // the paper indexes 10-move openings
	trajs := make([][]uint32, cfg.NumTrajs)
	for k := range trajs {
		tr := make([]uint32, 0, depth)
		cur := uint32(0)
		for d := 0; d < depth; d++ {
			var nxt uint32
			var childIdx int
			isNew := rng.Float64()*(theta+float64(nodes[cur].visits)) < theta
			if isNew {
				// Grow the node arena before taking the pointer below:
				// append may reallocate and would invalidate it.
				nodes = append(nodes, trieNode{})
			}
			nd := &nodes[cur]
			if isNew {
				nxt = nextState
				nextState++
				childIdx = len(nd.children)
				nd.children = append(nd.children, nxt)
				nd.counts = append(nd.counts, 0)
			} else {
				// Pick an existing move proportionally to its count.
				r := rng.Int63n(nd.visits)
				for r >= nd.counts[childIdx] {
					r -= nd.counts[childIdx]
					childIdx++
				}
				nxt = nd.children[childIdx]
			}
			nd.counts[childIdx]++
			nd.visits++
			tr = append(tr, nxt)
			cur = nxt
		}
		trajs[k] = tr
	}
	return Dataset{Name: "chess", Trajs: trajs}
}

// RandWalk generates walks on a random directed transition graph with
// sigma states and out-degrees Poisson-distributed around avgDeg
// (minimum 1), with Zipf-skewed transition probabilities. totalLen is
// the approximate total symbol count (the paper uses |T| = 800σ for
// Fig. 12 and fixed |T| for Fig. 13).
func RandWalk(sigma, avgDeg, totalLen int, seed int64) Dataset {
	if sigma < 2 || avgDeg < 1 || totalLen < 1 {
		panic(fmt.Sprintf("trajgen: invalid RandWalk(%d,%d,%d)", sigma, avgDeg, totalLen))
	}
	rng := rand.New(rand.NewSource(seed))
	succ := make([][]uint32, sigma)
	for s := range succ {
		deg := poisson(rng, float64(avgDeg-1)) + 1
		if deg > sigma {
			deg = sigma
		}
		set := make(map[uint32]bool, deg)
		for len(set) < deg {
			set[uint32(rng.Intn(sigma))] = true
		}
		succ[s] = make([]uint32, 0, deg)
		for t := range set {
			succ[s] = append(succ[s], t)
		}
	}
	const walkLen = 100
	nWalks := (totalLen + walkLen - 1) / walkLen
	trajs := make([][]uint32, nWalks)
	for k := range trajs {
		tr := make([]uint32, walkLen)
		cur := uint32(rng.Intn(sigma))
		for i := range tr {
			tr[i] = cur
			cands := succ[cur]
			// Zipf-ish pick: favor low indexes.
			j := 0
			for j+1 < len(cands) && rng.Float64() < 0.5 {
				j++
			}
			cur = cands[j]
		}
		trajs[k] = tr
	}
	return Dataset{Name: fmt.Sprintf("randwalk-s%d-d%d", sigma, avgDeg), Trajs: trajs}
}

// poisson samples a Poisson variate by Knuth's method (fine for small
// lambda).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	threshold := math.Exp(-lambda)
	l := 1.0
	for i := 0; ; i++ {
		l *= rng.Float64()
		if l < threshold {
			return i
		}
	}
}

// TotalSymbols returns the symbol count of the corpus.
func (d Dataset) TotalSymbols() int {
	total := 0
	for _, tr := range d.Trajs {
		total += len(tr)
	}
	return total
}
