package trajio

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	trajs := [][]uint32{
		{1, 2, 3},
		{4294967295},
		{7, 7, 7, 7},
	}
	var buf bytes.Buffer
	if err := Write(&buf, trajs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trajs) {
		t.Fatalf("%d trajectories, want %d", len(back), len(trajs))
	}
	for k := range trajs {
		for i := range trajs[k] {
			if back[k][i] != trajs[k][i] {
				t.Fatalf("trajectory %d differs at %d", k, i)
			}
		}
	}
}

func TestReadSkipsBlanksAndHandlesWhitespace(t *testing.T) {
	in := "1 2  3\n\n\t\n4\t5\n"
	trajs, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 2 || len(trajs[0]) != 3 || len(trajs[1]) != 2 {
		t.Fatalf("parsed %v", trajs)
	}
}

func TestTimesRoundTrip(t *testing.T) {
	times := [][]int64{
		{100, 200, 300},
		{-5, 0, 9223372036854775807},
		{42},
	}
	var buf bytes.Buffer
	if err := WriteTimes(&buf, times); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTimes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(times) {
		t.Fatalf("%d columns, want %d", len(back), len(times))
	}
	for k := range times {
		for i := range times[k] {
			if back[k][i] != times[k][i] {
				t.Fatalf("column %d differs at %d", k, i)
			}
		}
	}
}

func TestReadTimesRejectsGarbage(t *testing.T) {
	if _, err := ReadTimes(strings.NewReader("1 2 zzz\n")); err == nil {
		t.Fatal("non-numeric timestamp should error")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("1 2 x\n")); err == nil {
		t.Fatal("non-numeric token should error")
	}
	if _, err := Read(strings.NewReader("99999999999999999999\n")); err == nil {
		t.Fatal("overflow token should error")
	}
}
