// Package trajio reads and writes trajectory corpora as text files:
// one trajectory per line, space-separated edge IDs. The format is
// deliberately trivial so corpora can be produced by any tool.
package trajio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Write renders the corpus.
func Write(w io.Writer, trajs [][]uint32) error {
	bw := bufio.NewWriter(w)
	for _, tr := range trajs {
		for i, e := range tr {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(e), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTimes renders timestamp columns in the same line-per-trajectory
// format (int64 values).
func WriteTimes(w io.Writer, times [][]int64) error {
	bw := bufio.NewWriter(w)
	for _, col := range times {
		for i, t := range col {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatInt(t, 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTimes parses timestamp columns. Unlike Read, blank lines are NOT
// skipped: row k must align with trajectory k, and an empty trajectory
// is invalid anyway.
func ReadTimes(r io.Reader) ([][]int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out [][]int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := splitFields(sc.Text())
		col := make([]int64, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trajio: line %d: %w", lineNo, err)
			}
			col = append(col, v)
		}
		out = append(out, col)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trajio: %w", err)
	}
	return out, nil
}

func splitFields(line string) []string {
	var out []string
	start := -1
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' || line[i] == '\t' {
			if start >= 0 {
				out = append(out, line[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, line[start:])
	}
	return out
}

// Read parses a corpus. Blank lines are skipped; malformed tokens are
// reported with their line number.
func Read(r io.Reader) ([][]uint32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out [][]uint32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		var tr []uint32
		start := -1
		flush := func(end int) error {
			if start < 0 {
				return nil
			}
			v, err := strconv.ParseUint(line[start:end], 10, 32)
			if err != nil {
				return fmt.Errorf("trajio: line %d: %w", lineNo, err)
			}
			tr = append(tr, uint32(v))
			start = -1
			return nil
		}
		for i := 0; i < len(line); i++ {
			if line[i] == ' ' || line[i] == '\t' {
				if err := flush(i); err != nil {
					return nil, err
				}
			} else if start < 0 {
				start = i
			}
		}
		if err := flush(len(line)); err != nil {
			return nil, err
		}
		if len(tr) > 0 {
			out = append(out, tr)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trajio: %w", err)
	}
	return out, nil
}
