package repair

import (
	"math/rand"
	"testing"
	"time"
)

func TestLargeInputFinishesQuickly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2_000_000
	seq := make([]uint32, n)
	cur := uint32(0)
	for i := range seq {
		if rng.Float64() < 0.2 {
			cur = uint32(rng.Intn(500))
		}
		seq[i] = cur
	}
	t0 := time.Now()
	g := Compress(seq, 500)
	dt := time.Since(t0)
	t.Logf("2M symbols: %d rules, %d residual, %v", len(g.Rules), len(g.Seq), dt)
	if dt > 60*time.Second {
		t.Fatalf("Re-Pair too slow: %v", dt)
	}
	back := g.Decompress()
	for i := range seq {
		if back[i] != seq[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}
