// Package repair implements the Re-Pair grammar compressor (Larsson &
// Moffat, DCC 1999), the stringology benchmark of the paper's Table IV:
// the most frequent adjacent symbol pair is repeatedly replaced by a
// fresh nonterminal until no pair repeats; the output is the rule table
// plus the residual sequence. Decompression expands rules recursively.
package repair

import (
	"container/heap"
	"math/bits"
)

// Grammar is a compressed sequence: Rules[i] is the pair that
// nonterminal (firstNT + i) expands to; Seq is the residual sequence
// over terminals and nonterminals.
type Grammar struct {
	FirstNT uint32 // first nonterminal symbol value (= input alphabet bound)
	Rules   [][2]uint32
	Seq     []uint32
}

// pairEntry tracks one pair's occurrences during compression.
// positions is a lazily-maintained candidate list: entries may be
// stale (the symbols at that position have since changed) and are
// re-validated before use, which is what makes each replacement pass
// proportional to the pair's own occurrence count rather than to the
// sequence length (Larsson & Moffat's key property).
type pairEntry struct {
	pair      [2]uint32
	count     int
	positions []int32
	index     int // heap index; -1 when popped
}

type pairHeap []*pairEntry

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].count > h[j].count }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *pairHeap) Push(x interface{}) { e := x.(*pairEntry); e.index = len(*h); *h = append(*h, e) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	e.index = -1
	*h = old[:n-1]
	return e
}

// Compress grammar-compresses seq (symbols in [0, sigma)). It stops
// when no adjacent pair occurs twice.
func Compress(seq []uint32, sigma int) *Grammar {
	g := &Grammar{FirstNT: uint32(sigma)}
	n := len(seq)
	if n == 0 {
		return g
	}
	// Doubly linked list over a copy of the sequence; holes are marked
	// with ^uint32(0).
	const hole = ^uint32(0)
	cur := make([]uint32, n)
	copy(cur, seq)
	next := make([]int32, n)
	prev := make([]int32, n)
	for i := range cur {
		next[i] = int32(i + 1)
		prev[i] = int32(i - 1)
	}
	next[n-1] = -1

	counts := make(map[[2]uint32]*pairEntry, n/2)
	var h pairHeap
	bump := func(p [2]uint32, d int, pos int32) {
		e := counts[p]
		if e == nil {
			if d <= 0 {
				return
			}
			e = &pairEntry{pair: p, count: d, index: -1}
			if pos >= 0 {
				e.positions = append(e.positions, pos)
			}
			counts[p] = e
			heap.Push(&h, e)
			return
		}
		e.count += d
		if d > 0 && pos >= 0 {
			e.positions = append(e.positions, pos)
		}
		if e.index >= 0 {
			heap.Fix(&h, e.index)
		}
	}
	for i := 0; i+1 < n; i++ {
		bump([2]uint32{cur[i], cur[i+1]}, 1, int32(i))
	}

	nextSym := uint32(sigma)
	for h.Len() > 0 {
		top := heap.Pop(&h).(*pairEntry)
		if top.count < 2 {
			delete(counts, top.pair)
			continue // singleton pairs are never worth a rule
		}
		p := top.pair
		newSym := nextSym
		replaced := 0
		for _, i := range top.positions {
			// Validate: the candidate may be stale (symbols replaced
			// since it was recorded, or consumed by an overlapping
			// occurrence of this very pair).
			if cur[i] != p[0] {
				continue
			}
			j := next[i]
			if j < 0 || cur[j] != p[1] {
				continue
			}
			// Replace (i, j) by newSym at i.
			pi, nj := prev[i], next[j]
			if pi >= 0 {
				bump([2]uint32{cur[pi], cur[i]}, -1, -1)
			}
			if nj >= 0 {
				bump([2]uint32{cur[j], cur[nj]}, -1, -1)
			}
			cur[i] = newSym
			cur[j] = hole
			next[i] = nj
			if nj >= 0 {
				prev[nj] = i
			}
			if pi >= 0 {
				bump([2]uint32{cur[pi], newSym}, 1, pi)
			}
			if nj >= 0 {
				bump([2]uint32{newSym, cur[nj]}, 1, i)
			}
			replaced++
		}
		delete(counts, p)
		if replaced >= 1 {
			// A lone surviving replacement still yields a correct (if
			// marginally suboptimal) grammar; keep the rule.
			g.Rules = append(g.Rules, p)
			nextSym++
		}
	}
	// Collect the residual sequence.
	for i := int32(0); i >= 0; i = next[i] {
		g.Seq = append(g.Seq, cur[i])
	}
	return g
}

// Decompress expands the grammar back to the original sequence.
func (g *Grammar) Decompress() []uint32 {
	var out []uint32
	// Iterative expansion with an explicit stack.
	var stack []uint32
	for _, s := range g.Seq {
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if top < g.FirstNT {
				out = append(out, top)
				continue
			}
			r := g.Rules[top-g.FirstNT]
			stack = append(stack, r[1], r[0])
		}
	}
	return out
}

// SizeBits returns the compressed footprint: every rule is two symbols
// and every residual element one symbol, each of ceil(lg(maxSym)) bits
// — the standard Re-Pair size accounting.
func (g *Grammar) SizeBits() int64 {
	maxSym := g.FirstNT + uint32(len(g.Rules))
	if maxSym < 2 {
		maxSym = 2
	}
	w := int64(bits.Len32(maxSym - 1))
	return w * int64(2*len(g.Rules)+len(g.Seq))
}
