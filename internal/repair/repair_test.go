package repair

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripSimple(t *testing.T) {
	cases := [][]uint32{
		{},
		{5},
		{1, 2, 1, 2, 1, 2, 1, 2},
		{0, 0, 0, 0, 0, 0, 0, 0},
		{3, 1, 4, 1, 5, 9, 2, 6},
		{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3},
	}
	for _, seq := range cases {
		g := Compress(seq, 10)
		back := g.Decompress()
		if len(back) != len(seq) {
			t.Fatalf("seq %v: length %d after round trip", seq, len(back))
		}
		for i := range seq {
			if back[i] != seq[i] {
				t.Fatalf("seq %v: differs at %d: %v", seq, i, back)
			}
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3000)
		sigma := 2 + rng.Intn(30)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = uint32(rng.Intn(sigma))
		}
		g := Compress(seq, sigma)
		back := g.Decompress()
		if len(back) != len(seq) {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range seq {
			if back[i] != seq[i] {
				t.Fatalf("trial %d: differs at %d", trial, i)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]uint32, len(raw))
		for i, b := range raw {
			seq[i] = uint32(b % 8)
		}
		g := Compress(seq, 8)
		back := g.Decompress()
		if len(back) != len(seq) {
			return false
		}
		for i := range seq {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	// Highly repetitive input must shrink dramatically.
	seq := make([]uint32, 0, 4096)
	pattern := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	for len(seq) < 4096 {
		seq = append(seq, pattern...)
	}
	g := Compress(seq, 16)
	if g.SizeBits() >= int64(len(seq))*4 {
		t.Fatalf("repetitive data compressed to %d bits (raw entropy 3n = %d)",
			g.SizeBits(), len(seq)*3)
	}
	if len(g.Seq) >= len(seq)/8 {
		t.Fatalf("residual sequence %d not much shorter than input %d", len(g.Seq), len(seq))
	}
}

func TestNoRulesForIncompressible(t *testing.T) {
	// A strictly increasing sequence has no repeated pair.
	seq := make([]uint32, 100)
	for i := range seq {
		seq[i] = uint32(i)
	}
	g := Compress(seq, 100)
	if len(g.Rules) != 0 {
		t.Fatalf("expected no rules, got %d", len(g.Rules))
	}
	if len(g.Seq) != 100 {
		t.Fatalf("residual length %d", len(g.Seq))
	}
}

func TestSizeBitsPositive(t *testing.T) {
	g := Compress([]uint32{1, 1, 1, 1}, 2)
	if g.SizeBits() <= 0 {
		t.Fatal("SizeBits must be positive for non-empty input")
	}
}
