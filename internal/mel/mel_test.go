package mel

import (
	"testing"

	"cinct/internal/roadnet"
	"cinct/internal/trajgen"
)

func corpus(t *testing.T) trajgen.Dataset {
	t.Helper()
	cfg := trajgen.Config{GridW: 10, GridH: 10, NumTrajs: 150, MeanLen: 30, Seed: 3}
	return trajgen.Singapore2(cfg)
}

func TestLabelsDistinctPerHeadNode(t *testing.T) {
	d := corpus(t)
	l := Build(d.Graph, d.Trajs)
	// Edges sharing a head node must have distinct labels.
	for n := 0; n < d.Graph.NumNodes(); n++ {
		seen := map[uint32]bool{}
		for _, e := range d.Graph.InEdgesOf(roadnet.NodeID(n)) {
			lab, ok := l.Label(uint32(e))
			if !ok {
				t.Fatalf("network edge %d unlabeled", e)
			}
			if lab == 0 {
				t.Fatalf("labels must be 1-based, edge %d got 0", e)
			}
			if seen[lab] {
				t.Fatalf("duplicate label %d at node %d", lab, n)
			}
			seen[lab] = true
		}
	}
	if l.MaxLabel() == 0 {
		t.Fatal("no labels assigned")
	}
}

func TestApplyShape(t *testing.T) {
	d := corpus(t)
	l := Build(d.Graph, d.Trajs)
	labeled := l.Apply(d.Trajs)
	if len(labeled) != len(d.Trajs) {
		t.Fatal("trajectory count changed")
	}
	for k := range labeled {
		if len(labeled[k]) != len(d.Trajs[k]) {
			t.Fatalf("trajectory %d length changed", k)
		}
	}
}

func TestEntropyBelowRaw(t *testing.T) {
	d := corpus(t)
	l := Build(d.Graph, d.Trajs)
	hMEL := l.Entropy(d.Trajs)
	// Raw H0 over edge IDs is ~lg(distinct edges); MEL must be far
	// below it.
	if hMEL > 6 {
		t.Fatalf("MEL entropy %.2f implausibly high", hMEL)
	}
	if hMEL <= 0 {
		t.Fatalf("MEL entropy %.2f must be positive on varied data", hMEL)
	}
}

func TestCompressedSizeBeatsRaw(t *testing.T) {
	d := corpus(t)
	l := Build(d.Graph, d.Trajs)
	bits := l.CompressedSizeBits(d.Trajs)
	var symbols int64
	for _, tr := range d.Trajs {
		symbols += int64(len(tr))
	}
	raw := symbols * 32
	if bits >= raw/4 {
		t.Fatalf("MEL compression too weak: %d bits vs %d raw", bits, raw)
	}
}

func TestUnknownEdge(t *testing.T) {
	d := corpus(t)
	l := Build(d.Graph, d.Trajs)
	if _, ok := l.Label(99999999); ok {
		t.Fatal("off-network edge should not be labeled")
	}
	// Apply must tolerate it (label 0).
	out := l.Apply([][]uint32{{99999999}})
	if out[0][0] != 0 {
		t.Fatal("off-network edge should map to 0")
	}
}
