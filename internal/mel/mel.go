// Package mel implements minimum entropy labeling (MEL, Han et al.,
// "COMPRESS", TODS 2017), the labeling baseline the paper compares RML
// against (§V-D, Tables IV and V). MEL relabels each road segment by
// its frequency rank *among the segments sharing its head node*: a
// position-independent map ψ: E → N (Eq. 13), in contrast to RML's
// context-dependent φ(w|w′) (Eq. 14). The labeled sequence is then
// entropy-coded (Huffman, as in the original evaluation).
package mel

import (
	"sort"

	"cinct/internal/entropy"
	"cinct/internal/huffman"
	"cinct/internal/roadnet"
)

// Labeling is a MEL function ψ.
type Labeling struct {
	psi      map[uint32]uint32 // edge -> label (1-based within head group)
	maxLabel uint32
}

// Build derives ψ from unigram frequencies: edges that share a head
// node are ranked by corpus frequency; the most frequent gets label 1.
// Edges absent from the corpus get the next labels in ID order, so ψ is
// total on the network.
func Build(g *roadnet.Graph, trajs [][]uint32) *Labeling {
	freq := make(map[uint32]int64)
	for _, tr := range trajs {
		for _, e := range tr {
			freq[e]++
		}
	}
	l := &Labeling{psi: make(map[uint32]uint32, g.NumEdges())}
	for n := 0; n < g.NumNodes(); n++ {
		// Edges whose head (To) is n share labels: a vehicle entering n
		// came via one of them, which is what MEL disambiguates.
		in := g.InEdgesOf(roadnet.NodeID(n))
		es := make([]uint32, len(in))
		for i, e := range in {
			es[i] = uint32(e)
		}
		sort.Slice(es, func(i, j int) bool {
			if freq[es[i]] != freq[es[j]] {
				return freq[es[i]] > freq[es[j]]
			}
			return es[i] < es[j]
		})
		for i, e := range es {
			label := uint32(i) + 1
			l.psi[e] = label
			if label > l.maxLabel {
				l.maxLabel = label
			}
		}
	}
	return l
}

// Label returns ψ(e); ok is false for edges not on the network.
func (l *Labeling) Label(e uint32) (uint32, bool) {
	v, ok := l.psi[e]
	return v, ok
}

// MaxLabel returns the largest label in use.
func (l *Labeling) MaxLabel() uint32 { return l.maxLabel }

// Apply converts a corpus to its MEL label sequences.
func (l *Labeling) Apply(trajs [][]uint32) [][]uint32 {
	out := make([][]uint32, len(trajs))
	for k, tr := range trajs {
		lt := make([]uint32, len(tr))
		for i, e := range tr {
			v, ok := l.psi[e]
			if !ok {
				// Off-network edge (gapped data): give it label 0, which
				// the entropy accounting treats as its own symbol.
				v = 0
			}
			lt[i] = v
		}
		out[k] = lt
	}
	return out
}

// Entropy returns H0 of the MEL-labeled corpus (Table V's MEL column).
func (l *Labeling) Entropy(trajs [][]uint32) float64 {
	labeled := l.Apply(trajs)
	var flat []uint32
	for _, tr := range labeled {
		flat = append(flat, tr...)
	}
	return entropy.H0(flat)
}

// CompressedSizeBits returns the size of the Huffman-coded MEL label
// stream plus its codebook — the MEL entry of Table IV. Trajectory
// boundaries add one separator label per trajectory, mirroring the
// trajectory-string accounting used for the other compressors.
func (l *Labeling) CompressedSizeBits(trajs [][]uint32) int64 {
	labeled := l.Apply(trajs)
	sep := l.maxLabel + 1
	freqs := make([]uint64, sep+1)
	for _, tr := range labeled {
		for _, v := range tr {
			freqs[v]++
		}
		freqs[sep]++
	}
	cb := huffman.Build(freqs)
	bits := int64(cb.EncodedBits(freqs))
	// Codebook: 8 bits of code length per symbol.
	bits += int64(len(freqs)) * 8
	return bits
}
