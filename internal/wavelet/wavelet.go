// Package wavelet implements the two sequence representations used in
// the paper's evaluation: the Huffman-shaped wavelet tree (HWT) — the
// structure CiNCT and ICB-Huff store the (labeled) BWT in — and the
// wavelet matrix (WM) used by the UFMI and ICB-WM baselines. Both are
// parameterized by the underlying bit vector (plain or RRR), which is
// exactly the axis the paper's Table II varies.
package wavelet

import "cinct/internal/bitvec"

// Sequence is a rank-indexed integer sequence: the operations FM-index
// backward search needs from its BWT representation.
type Sequence interface {
	// Len returns the sequence length.
	Len() int
	// Sigma returns an exclusive upper bound on symbol values.
	Sigma() int
	// Access returns the i-th symbol.
	Access(i int) uint32
	// Rank returns the number of occurrences of c in the prefix [0, i).
	Rank(c uint32, i int) int
	// AccessRank returns (Access(i), Rank(Access(i), i)) — the combined
	// operation one LF-mapping step needs — cheaper than the two calls.
	AccessRank(i int) (uint32, int)
	// SizeBits returns the storage footprint in bits.
	SizeBits() int
}

// BitvecKind selects the bit-vector representation inside a wavelet
// structure.
type BitvecKind int

const (
	// PlainBits stores uncompressed bit vectors (UFMI).
	PlainBits BitvecKind = iota
	// RRRBits stores RRR-compressed bit vectors (CiNCT, ICB-Huff, ICB-WM).
	RRRBits
)

// BitvecSpec configures the bit vectors of a wavelet structure. Block
// is the RRR block size b (15, 31 or 63) and is ignored for PlainBits.
type BitvecSpec struct {
	Kind  BitvecKind
	Block int
}

// PlainSpec is the uncompressed configuration.
var PlainSpec = BitvecSpec{Kind: PlainBits}

// RRRSpec returns an RRR configuration with block size b.
func RRRSpec(b int) BitvecSpec { return BitvecSpec{Kind: RRRBits, Block: b} }

func (s BitvecSpec) build(b *bitvec.Builder) bitvec.Vector {
	if s.Kind == PlainBits {
		return b.Plain()
	}
	return b.RRR(s.Block)
}
