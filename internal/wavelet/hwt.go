package wavelet

import (
	"fmt"

	"cinct/internal/bitvec"
	"cinct/internal/huffman"
)

// HWT is a Huffman-shaped wavelet tree: the tree has the shape of the
// Huffman tree of the sequence, so a symbol of frequency f sits at depth
// ~lg(n/f) and rank/access touch that many bit vectors. Total bit-vector
// length is n(1+H0(S)) — the property Theorem 1 and the paper's size and
// speed analysis (§V) rest on.
type HWT struct {
	n     int
	sigma int
	cb    *huffman.Codebook
	nodes []hwtNode
	// root is the index of the root node, or -1 when the effective
	// alphabet has a single symbol (no bits stored at all).
	root       int
	soleSymbol uint32
}

type hwtNode struct {
	bv bitvec.Vector
	// Children: values >= 0 index into nodes; values < 0 encode a leaf
	// symbol as ^symbol.
	left, right int32
}

const hwtLeaf = int32(-1) // placeholder during construction

// NewHWT builds a Huffman-shaped wavelet tree over seq, whose symbols
// must lie in [0, sigma). Bit vectors are built per spec.
func NewHWT(seq []uint32, sigma int, spec BitvecSpec) *HWT {
	freqs := make([]uint64, sigma)
	for _, s := range seq {
		if int(s) >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d out of alphabet [0,%d)", s, sigma))
		}
		freqs[s]++
	}
	return NewHWTFreqs(seq, freqs, spec)
}

// NewHWTFreqs is NewHWT with precomputed frequencies (freqs[s] must
// equal the occurrence count of s in seq).
func NewHWTFreqs(seq []uint32, freqs []uint64, spec BitvecSpec) *HWT {
	sigma := len(freqs)
	cb := huffman.Build(freqs)
	h := &HWT{n: len(seq), sigma: sigma, cb: cb, root: -1}

	used := 0
	var sole uint32
	for s, f := range freqs {
		if f > 0 {
			used++
			sole = uint32(s)
		}
	}
	if used <= 1 {
		h.soleSymbol = sole
		return h
	}

	// Recursive stable partition guided by the codewords. Scratch
	// buffers are reused across sibling recursions by splitting slices.
	h.root = h.buildNode(seq, 0, spec)
	return h
}

// buildNode creates the node for the code prefix at the given depth and
// returns its index in h.nodes. seq holds exactly the elements whose
// codewords share the current prefix.
func (h *HWT) buildNode(seq []uint32, depth int, spec BitvecSpec) int {
	bld := bitvec.NewBuilder(len(seq))
	nLeft := 0
	for _, s := range seq {
		c := h.cb.Codes[s]
		bit := c.Bits >> (uint(c.Len) - 1 - uint(depth)) & 1
		bld.PushBit(bit == 1)
		if bit == 0 {
			nLeft++
		}
	}
	left := make([]uint32, 0, nLeft)
	right := make([]uint32, 0, len(seq)-nLeft)
	for _, s := range seq {
		c := h.cb.Codes[s]
		if c.Bits>>(uint(c.Len)-1-uint(depth))&1 == 0 {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}

	idx := len(h.nodes)
	h.nodes = append(h.nodes, hwtNode{bv: spec.build(bld), left: hwtLeaf, right: hwtLeaf})

	h.nodes[idx].left = h.childFor(left, depth+1, spec)
	h.nodes[idx].right = h.childFor(right, depth+1, spec)
	return idx
}

// childFor returns either a leaf encoding or a recursively built child
// node index for the elements in part.
func (h *HWT) childFor(part []uint32, depth int, spec BitvecSpec) int32 {
	if len(part) == 0 {
		// Unreachable for a proper Huffman tree, but keep a sane value.
		return hwtLeaf
	}
	s := part[0]
	if int(h.cb.Codes[s].Len) == depth {
		return ^int32(s)
	}
	return int32(h.buildNode(part, depth, spec))
}

// Len returns the sequence length.
func (h *HWT) Len() int { return h.n }

// Sigma returns the alphabet bound.
func (h *HWT) Sigma() int { return h.sigma }

// Codebook exposes the underlying Huffman codebook (used by the size
// analysis and tests).
func (h *HWT) Codebook() *huffman.Codebook { return h.cb }

// Access returns the i-th symbol.
func (h *HWT) Access(i int) uint32 {
	if i < 0 || i >= h.n {
		panic(fmt.Sprintf("wavelet: Access(%d) out of range [0,%d)", i, h.n))
	}
	if h.root < 0 {
		return h.soleSymbol
	}
	node := int32(h.root)
	for {
		nd := &h.nodes[node]
		bit, r1 := nd.bv.AccessRank1(i)
		if bit {
			i = r1
			node = nd.right
		} else {
			i -= r1
			node = nd.left
		}
		if node < 0 {
			return uint32(^node)
		}
	}
}

// AccessRank returns the i-th symbol and its rank up to i in a single
// root-to-leaf walk: the AccessRank1 descent maintains exactly the
// in-node position that Rank would recompute.
func (h *HWT) AccessRank(i int) (uint32, int) {
	if i < 0 || i >= h.n {
		panic(fmt.Sprintf("wavelet: AccessRank(%d) out of range [0,%d)", i, h.n))
	}
	if h.root < 0 {
		return h.soleSymbol, i
	}
	node := int32(h.root)
	for {
		nd := &h.nodes[node]
		bit, r1 := nd.bv.AccessRank1(i)
		if bit {
			i = r1
			node = nd.right
		} else {
			i -= r1
			node = nd.left
		}
		if node < 0 {
			return uint32(^node), i
		}
	}
}

// Rank returns the number of occurrences of c in [0, i). Symbols not in
// the effective alphabet have rank 0 everywhere.
func (h *HWT) Rank(c uint32, i int) int {
	if i < 0 || i > h.n {
		panic(fmt.Sprintf("wavelet: Rank(%d) out of range [0,%d]", i, h.n))
	}
	if int(c) >= h.sigma {
		return 0
	}
	if h.root < 0 {
		if c == h.soleSymbol && h.n > 0 {
			return i
		}
		return 0
	}
	code := h.cb.Codes[c]
	if code.Len == 0 {
		return 0
	}
	node := int32(h.root)
	for d := 0; d < int(code.Len); d++ {
		nd := &h.nodes[node]
		if code.Bits>>(uint(code.Len)-1-uint(d))&1 == 1 {
			i = nd.bv.Rank1(i)
			node = nd.right
		} else {
			i = nd.bv.Rank0(i)
			node = nd.left
		}
		if node < 0 {
			return i
		}
	}
	return i
}

// SizeBits returns the total footprint: node bit vectors, tree pointers
// (2x32 bits per node) and the code-length table (8 bits per symbol),
// mirroring the paper's accounting of wavelet-tree overheads (P2).
func (h *HWT) SizeBits() int {
	total := 0
	for i := range h.nodes {
		total += h.nodes[i].bv.SizeBits() + 64
	}
	total += 8 * h.sigma
	return total
}

// Depth returns the codeword length of symbol c (0 if absent): the
// number of bit-vector rank operations Rank(c, ·) performs.
func (h *HWT) Depth(c uint32) int {
	if int(c) >= h.sigma {
		return 0
	}
	return int(h.cb.Codes[c].Len)
}
