package wavelet

import (
	"math/rand"
	"testing"

	"cinct/internal/flat"
)

func randSeq(n, sigma int, rng *rand.Rand) []uint32 {
	seq := make([]uint32, n)
	for i := range seq {
		// Skewed draw so the Huffman shape is non-trivial.
		s := rng.Intn(sigma)
		if rng.Float64() < 0.5 {
			s = s * s / sigma
		}
		seq[i] = uint32(s)
	}
	return seq
}

func checkHWTEqual(t *testing.T, seq []uint32, sigma int, got *HWT) {
	t.Helper()
	if got.Len() != len(seq) || got.Sigma() != sigma {
		t.Fatalf("shape: (%d,%d), want (%d,%d)", got.Len(), got.Sigma(), len(seq), sigma)
	}
	counts := make([]int, sigma)
	for i, s := range seq {
		if got.Access(i) != s {
			t.Fatalf("Access(%d) = %d, want %d", i, got.Access(i), s)
		}
		if got.Rank(s, i) != counts[s] {
			t.Fatalf("Rank(%d,%d) = %d, want %d", s, i, got.Rank(s, i), counts[s])
		}
		b, r := got.AccessRank(i)
		if b != s || r != counts[s] {
			t.Fatalf("AccessRank(%d) = (%d,%d), want (%d,%d)", i, b, r, s, counts[s])
		}
		counts[s]++
	}
}

func TestFlatHWTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][2]int{{0, 1}, {1, 1}, {50, 2}, {2000, 17}, {5000, 300}}
	for _, spec := range []BitvecSpec{PlainSpec, RRRSpec(63)} {
		for _, cs := range cases {
			n, sigma := cs[0], cs[1]
			seq := randSeq(n, sigma, rng)
			orig := NewHWT(seq, sigma, spec)
			w := flat.NewWriter()
			orig.AppendFlat(w)
			c := flat.NewCursor(w.Words())
			view, err := ViewHWT(c)
			if err != nil {
				t.Fatalf("n=%d sigma=%d: %v", n, sigma, err)
			}
			if c.Remaining() != 0 {
				t.Fatalf("n=%d sigma=%d: %d words left over", n, sigma, c.Remaining())
			}
			checkHWTEqual(t, seq, sigma, view)
		}
	}
}

func TestFlatWMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, cs := range [][2]int{{0, 1}, {1, 1}, {50, 2}, {2000, 17}, {5000, 300}} {
		n, sigma := cs[0], cs[1]
		seq := randSeq(n, sigma, rng)
		orig := NewWM(seq, sigma, PlainSpec)
		w := flat.NewWriter()
		orig.AppendFlat(w)
		c := flat.NewCursor(w.Words())
		view, err := ViewWM(c)
		if err != nil {
			t.Fatalf("n=%d sigma=%d: %v", n, sigma, err)
		}
		if c.Remaining() != 0 {
			t.Fatalf("n=%d sigma=%d: %d words left over", n, sigma, c.Remaining())
		}
		counts := make([]int, sigma)
		for i, s := range seq {
			if view.Access(i) != s {
				t.Fatalf("Access(%d) = %d, want %d", i, view.Access(i), s)
			}
			if view.Rank(s, i) != counts[s] {
				t.Fatalf("Rank(%d,%d) mismatch", s, i)
			}
			counts[s]++
		}
	}
}

// Perturbing any single word must yield a typed error or a structure
// whose reads stay in recoverable territory — the view itself must
// never panic.
func TestFlatHWTCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seq := randSeq(1500, 40, rng)
	orig := NewHWT(seq, 40, RRRSpec(31))
	w := flat.NewWriter()
	orig.AppendFlat(w)
	base := w.Words()
	for i := range base {
		for _, delta := range []uint64{1, ^uint64(0), 1 << 33} {
			mut := append([]uint64(nil), base...)
			mut[i] += delta
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("word %d +%#x: panic in view: %v", i, delta, r)
					}
				}()
				_, _ = ViewHWT(flat.NewCursor(mut))
			}()
		}
	}
}
