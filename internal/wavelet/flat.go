package wavelet

import (
	"fmt"
	"math/bits"

	"cinct/internal/bitvec"
	"cinct/internal/flat"
	"cinct/internal/huffman"
)

// Flat (v3) forms. The codebook travels as its canonical code lengths
// (FromLengths rebuilds identical codes), nodes as (left, right,
// vector) triples in build order. Views validate the structural
// invariants descent relies on: children index strictly forward (so
// every walk terminates), leaves name in-alphabet symbols, and each
// child vector is exactly as long as the parent's matching bit count
// (so a descent step cannot leave the child's index range while the
// rank directories are consistent).

// AppendFlat writes the tree into a word stream.
func (h *HWT) AppendFlat(w *flat.Writer) {
	w.U64(uint64(h.n))
	w.U64(uint64(h.sigma))
	w.I64(int64(h.root))
	w.U64(uint64(h.soleSymbol))
	w.U8s(h.cb.Lengths())
	w.U64(uint64(len(h.nodes)))
	for i := range h.nodes {
		w.I64(int64(h.nodes[i].left))
		w.I64(int64(h.nodes[i].right))
		bitvec.AppendVector(w, h.nodes[i].bv)
	}
}

// ViewHWT wraps a flat HWT in place.
func ViewHWT(c *flat.Cursor) (*HWT, error) {
	n := c.Int()
	sigma := c.Int()
	root := c.I64()
	soleSymbol := c.U64()
	lengths := c.U8s()
	nNodes := c.Int()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(lengths) != sigma {
		return nil, fmt.Errorf("%w: HWT codebook has %d lengths for alphabet %d",
			flat.ErrCorrupt, len(lengths), sigma)
	}
	for s, l := range lengths {
		if l > 63 {
			return nil, fmt.Errorf("%w: HWT code length %d for symbol %d", flat.ErrCorrupt, l, s)
		}
	}
	// Each node occupies at least three words, which bounds a lying
	// count before it sizes an allocation.
	if nNodes < 0 || nNodes > c.Remaining()/3 {
		return nil, fmt.Errorf("%w: HWT claims %d nodes in %d words",
			flat.ErrCorrupt, nNodes, c.Remaining())
	}
	h := &HWT{n: n, sigma: sigma, cb: huffman.FromLengths(lengths),
		root: int(root), soleSymbol: uint32(soleSymbol)}
	if nNodes > 0 {
		h.nodes = make([]hwtNode, nNodes)
	}
	for i := 0; i < nNodes; i++ {
		left := c.I64()
		right := c.I64()
		bv, err := bitvec.ViewVector(c)
		if err != nil {
			return nil, err
		}
		h.nodes[i] = hwtNode{bv: bv, left: int32(left), right: int32(right)}
		for _, child := range []int64{left, right} {
			if child < 0 {
				if int64(^int32(child)) != ^child || int(^child) >= sigma {
					return nil, fmt.Errorf("%w: HWT node %d leaf symbol out of range",
						flat.ErrCorrupt, i)
				}
			} else if child <= int64(i) || child >= int64(nNodes) {
				return nil, fmt.Errorf("%w: HWT node %d child %d not strictly forward",
					flat.ErrCorrupt, i, child)
			}
		}
	}
	// Children were only range-checked above; with all vectors in hand,
	// check the partition sizes parent-to-child descent relies on.
	for i := 0; i < nNodes; i++ {
		nd := &h.nodes[i]
		total := nd.bv.Len()
		zeros := total - nd.bv.Ones()
		for _, ch := range [2]struct {
			idx  int32
			want int
		}{{nd.left, zeros}, {nd.right, total - zeros}} {
			if ch.idx >= 0 && h.nodes[ch.idx].bv.Len() != ch.want {
				return nil, fmt.Errorf("%w: HWT node %d child partition mismatch",
					flat.ErrCorrupt, i)
			}
		}
	}
	switch {
	case int(root) == -1:
		if nNodes != 0 || (n > 0 && int(soleSymbol) >= sigma) {
			return nil, fmt.Errorf("%w: HWT leafless shape (n=%d nodes=%d)",
				flat.ErrCorrupt, n, nNodes)
		}
	case int(root) == 0 && nNodes > 0:
		if h.nodes[0].bv.Len() != n {
			return nil, fmt.Errorf("%w: HWT root vector length %d != n %d",
				flat.ErrCorrupt, h.nodes[0].bv.Len(), n)
		}
	default:
		return nil, fmt.Errorf("%w: HWT root %d with %d nodes", flat.ErrCorrupt, root, nNodes)
	}
	return h, nil
}

// AppendFlat writes the matrix into a word stream.
func (w *WM) AppendFlat(fw *flat.Writer) {
	fw.U64(uint64(w.n))
	fw.U64(uint64(w.sigma))
	fw.U64(uint64(len(w.levels)))
	for l := range w.levels {
		fw.U64(uint64(w.zeros[l]))
		bitvec.AppendVector(fw, w.levels[l])
	}
}

// ViewWM wraps a flat WM in place.
func ViewWM(c *flat.Cursor) (*WM, error) {
	n := c.Int()
	sigma := c.Int()
	nLevels := c.Int()
	if err := c.Err(); err != nil {
		return nil, err
	}
	wantLevels := bits.Len(uint(sigma - 1))
	if wantLevels == 0 {
		wantLevels = 1
	}
	if sigma < 1 || nLevels != wantLevels {
		return nil, fmt.Errorf("%w: WM shape (sigma=%d levels=%d)", flat.ErrCorrupt, sigma, nLevels)
	}
	w := &WM{n: n, sigma: sigma,
		levels: make([]bitvec.Vector, nLevels), zeros: make([]int, nLevels)}
	for l := 0; l < nLevels; l++ {
		w.zeros[l] = c.Int()
		bv, err := bitvec.ViewVector(c)
		if err != nil {
			return nil, err
		}
		if bv.Len() != n || w.zeros[l] != n-bv.Ones() {
			return nil, fmt.Errorf("%w: WM level %d (len=%d zeros=%d)",
				flat.ErrCorrupt, l, bv.Len(), w.zeros[l])
		}
		w.levels[l] = bv
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return w, nil
}
