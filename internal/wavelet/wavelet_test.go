package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveRank counts c in seq[0:i].
func naiveRank(seq []uint32, c uint32, i int) int {
	r := 0
	for _, s := range seq[:i] {
		if s == c {
			r++
		}
	}
	return r
}

func randomSeq(rng *rand.Rand, n, sigma int, skew float64) []uint32 {
	seq := make([]uint32, n)
	for i := range seq {
		s := int(math.Pow(rng.Float64(), skew) * float64(sigma))
		if s >= sigma {
			s = sigma - 1
		}
		seq[i] = uint32(s)
	}
	return seq
}

func specs() map[string]BitvecSpec {
	return map[string]BitvecSpec{
		"plain": PlainSpec,
		"rrr15": RRRSpec(15),
		"rrr63": RRRSpec(63),
	}
}

func TestHWTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, spec := range specs() {
		for _, sigma := range []int{2, 3, 7, 40, 256} {
			seq := randomSeq(rng, 800, sigma, 2.5)
			h := NewHWT(seq, sigma, spec)
			if h.Len() != len(seq) || h.Sigma() != sigma {
				t.Fatalf("%s sigma=%d: bad Len/Sigma", name, sigma)
			}
			for i, want := range seq {
				if got := h.Access(i); got != want {
					t.Fatalf("%s sigma=%d: Access(%d)=%d want %d", name, sigma, i, got, want)
				}
			}
			for trial := 0; trial < 200; trial++ {
				c := uint32(rng.Intn(sigma))
				i := rng.Intn(len(seq) + 1)
				if got, want := h.Rank(c, i), naiveRank(seq, c, i); got != want {
					t.Fatalf("%s sigma=%d: Rank(%d,%d)=%d want %d", name, sigma, c, i, got, want)
				}
			}
		}
	}
}

func TestWMAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for name, spec := range specs() {
		for _, sigma := range []int{2, 3, 7, 40, 256, 1000} {
			seq := randomSeq(rng, 800, sigma, 1.0)
			w := NewWM(seq, sigma, spec)
			for i, want := range seq {
				if got := w.Access(i); got != want {
					t.Fatalf("%s sigma=%d: Access(%d)=%d want %d", name, sigma, i, got, want)
				}
			}
			for trial := 0; trial < 200; trial++ {
				c := uint32(rng.Intn(sigma))
				i := rng.Intn(len(seq) + 1)
				if got, want := w.Rank(c, i), naiveRank(seq, c, i); got != want {
					t.Fatalf("%s sigma=%d: Rank(%d,%d)=%d want %d", name, sigma, c, i, got, want)
				}
			}
		}
	}
}

func TestAccessRankAgainstSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for name, spec := range specs() {
		for _, sigma := range []int{2, 9, 70} {
			seq := randomSeq(rng, 600, sigma, 2)
			h := NewHWT(seq, sigma, spec)
			w := NewWM(seq, sigma, spec)
			for _, s := range []Sequence{h, w} {
				for i := range seq {
					sym, r := s.AccessRank(i)
					if sym != seq[i] {
						t.Fatalf("%s sigma=%d: AccessRank(%d) symbol %d want %d",
							name, sigma, i, sym, seq[i])
					}
					if want := naiveRank(seq, sym, i); r != want {
						t.Fatalf("%s sigma=%d: AccessRank(%d) rank %d want %d",
							name, sigma, i, r, want)
					}
				}
			}
		}
	}
}

func TestSingleSymbolSequences(t *testing.T) {
	seq := make([]uint32, 100)
	for i := range seq {
		seq[i] = 5
	}
	h := NewHWT(seq, 10, PlainSpec)
	w := NewWM(seq, 10, PlainSpec)
	for _, s := range []Sequence{h, w} {
		if s.Access(42) != 5 {
			t.Fatal("Access on constant sequence")
		}
		if s.Rank(5, 100) != 100 || s.Rank(5, 17) != 17 {
			t.Fatal("Rank of sole symbol")
		}
		if s.Rank(3, 100) != 0 {
			t.Fatal("Rank of absent symbol should be 0")
		}
	}
}

func TestEmptySequence(t *testing.T) {
	h := NewHWT(nil, 4, PlainSpec)
	w := NewWM(nil, 4, PlainSpec)
	for _, s := range []Sequence{h, w} {
		if s.Len() != 0 {
			t.Fatal("empty sequence should have Len 0")
		}
		if s.Rank(1, 0) != 0 {
			t.Fatal("Rank on empty sequence")
		}
	}
}

func TestRankOfAbsentAndOutOfAlphabetSymbols(t *testing.T) {
	seq := []uint32{0, 2, 0, 2, 2} // symbol 1 unused
	h := NewHWT(seq, 3, PlainSpec)
	w := NewWM(seq, 3, PlainSpec)
	for _, s := range []Sequence{h, w} {
		if s.Rank(1, 5) != 0 {
			t.Fatal("Rank of unused symbol should be 0")
		}
		if s.Rank(99, 5) != 0 {
			t.Fatal("Rank of out-of-alphabet symbol should be 0")
		}
	}
}

func TestHWTDepthMatchesHuffman(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seq := randomSeq(rng, 5000, 50, 3)
	h := NewHWT(seq, 50, PlainSpec)
	freq := make([]int, 50)
	for _, s := range seq {
		freq[s]++
	}
	// The most frequent symbol must sit no deeper than any other symbol.
	best, bestF := uint32(0), -1
	for s, f := range freq {
		if f > bestF {
			best, bestF = uint32(s), f
		}
	}
	for s, f := range freq {
		if f > 0 && h.Depth(uint32(s)) < h.Depth(best) {
			t.Fatalf("symbol %d (freq %d) shallower than most frequent", s, f)
		}
	}
}

// Skewed sequences must make the HWT smaller than the WM when both use
// RRR — the effect the paper's §V-B analysis relies on.
func TestHWTBeatsWMOnSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, sigma := 50000, 64
	seq := make([]uint32, n)
	for i := range seq {
		// ~90% of mass on symbol 0.
		if rng.Float64() < 0.9 {
			seq[i] = 0
		} else {
			seq[i] = uint32(1 + rng.Intn(sigma-1))
		}
	}
	h := NewHWT(seq, sigma, RRRSpec(63))
	w := NewWM(seq, sigma, RRRSpec(63))
	if h.SizeBits() >= w.SizeBits() {
		t.Fatalf("HWT (%d bits) should beat WM (%d bits) on skewed data",
			h.SizeBits(), w.SizeBits())
	}
}

func TestRankConsistencyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sigma := 20
	seq := randomSeq(rng, 2000, sigma, 2)
	h := NewHWT(seq, sigma, RRRSpec(31))
	w := NewWM(seq, sigma, RRRSpec(31))
	f := func(c uint8, iRaw uint16) bool {
		cc := uint32(c) % uint32(sigma)
		i := int(iRaw) % (len(seq) + 1)
		want := naiveRank(seq, cc, i)
		return h.Rank(cc, i) == want && w.Rank(cc, i) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Sum over all symbols of Rank(c, n) must equal n.
func TestRankPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sigma := 30
	seq := randomSeq(rng, 1500, sigma, 1.5)
	h := NewHWT(seq, sigma, RRRSpec(15))
	w := NewWM(seq, sigma, PlainSpec)
	for _, s := range []Sequence{h, w} {
		total := 0
		for c := 0; c < sigma; c++ {
			total += s.Rank(uint32(c), s.Len())
		}
		if total != s.Len() {
			t.Fatalf("ranks sum to %d, want %d", total, s.Len())
		}
	}
}

func BenchmarkHWTRankSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n, sigma := 1<<18, 8
	seq := make([]uint32, n)
	for i := range seq {
		if rng.Float64() < 0.85 {
			seq[i] = 0
		} else {
			seq[i] = uint32(1 + rng.Intn(sigma-1))
		}
	}
	h := NewHWT(seq, sigma, RRRSpec(63))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Rank(seq[(i*7919)%n], (i*104729)%n)
	}
}

func BenchmarkWMRankLargeAlphabet(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n, sigma := 1<<18, 1<<15
	seq := randomSeq(rng, n, sigma, 1)
	w := NewWM(seq, sigma, RRRSpec(63))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Rank(seq[(i*7919)%n], (i*104729)%n)
	}
}
