package wavelet

import (
	"math/rand"
	"testing"
)

// TestHotPathAllocs asserts that Access, Rank and AccessRank — the
// per-LF-step wavelet operations behind every backward-search step —
// allocate nothing, for both the Huffman-shaped tree and the matrix.
func TestHotPathAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	seq := randSeq(50_000, 40, rng)
	for _, spec := range []BitvecSpec{PlainSpec, RRRSpec(63)} {
		h := NewHWT(seq, 41, spec)
		w := NewWM(seq, 41, spec)
		var sinkC uint32
		var sinkR int
		cases := []struct {
			name string
			fn   func()
		}{
			{"HWT.Access", func() { sinkC = h.Access(len(seq) / 2) }},
			{"HWT.Rank", func() { sinkR = h.Rank(seq[7], len(seq)-1) }},
			{"HWT.AccessRank", func() {
				c, r := h.AccessRank(len(seq) / 3)
				sinkC, sinkR = c, r
			}},
			{"WM.Access", func() { sinkC = w.Access(len(seq) / 2) }},
			{"WM.Rank", func() { sinkR = w.Rank(seq[7], len(seq)-1) }},
			{"WM.AccessRank", func() {
				c, r := w.AccessRank(len(seq) / 3)
				sinkC, sinkR = c, r
			}},
		}
		for _, tc := range cases {
			if got := testing.AllocsPerRun(200, tc.fn); got != 0 {
				t.Errorf("%s (%v): %v allocs/op, want 0", tc.name, spec.Kind, got)
			}
		}
		_ = sinkC
		_ = sinkR
	}
}
