package wavelet

import (
	"fmt"
	"math/bits"

	"cinct/internal/bitvec"
)

// WM is a wavelet matrix (Claude & Navarro, SPIRE 2012): a balanced,
// pointerless alternative to the wavelet tree. Level l stores bit l
// (from the MSB) of every symbol after stable-partitioning the previous
// level by its bits; zeros[l] counts the zero bits at level l. Rank and
// access cost ceil(lg sigma) bit-vector ranks regardless of symbol
// frequency — which is why the paper's UFMI/ICB-WM baselines slow down
// as the alphabet grows while CiNCT does not.
type WM struct {
	n      int
	sigma  int
	levels []bitvec.Vector
	zeros  []int
}

// NewWM builds a wavelet matrix over seq with symbols in [0, sigma).
func NewWM(seq []uint32, sigma int, spec BitvecSpec) *WM {
	if sigma < 1 {
		sigma = 1
	}
	nLevels := bits.Len(uint(sigma - 1))
	if nLevels == 0 {
		nLevels = 1
	}
	w := &WM{n: len(seq), sigma: sigma,
		levels: make([]bitvec.Vector, nLevels),
		zeros:  make([]int, nLevels)}

	cur := make([]uint32, len(seq))
	copy(cur, seq)
	next := make([]uint32, len(seq))
	for l := 0; l < nLevels; l++ {
		shift := uint(nLevels - 1 - l)
		bld := bitvec.NewBuilder(len(cur))
		nz := 0
		for _, s := range cur {
			if int(s) >= sigma {
				panic(fmt.Sprintf("wavelet: symbol %d out of alphabet [0,%d)", s, sigma))
			}
			one := s>>shift&1 == 1
			bld.PushBit(one)
			if !one {
				nz++
			}
		}
		w.levels[l] = spec.build(bld)
		w.zeros[l] = nz
		// Stable partition: zeros first, then ones.
		zi, oi := 0, nz
		for _, s := range cur {
			if s>>shift&1 == 0 {
				next[zi] = s
				zi++
			} else {
				next[oi] = s
				oi++
			}
		}
		cur, next = next, cur
	}
	return w
}

// Len returns the sequence length.
func (w *WM) Len() int { return w.n }

// Sigma returns the alphabet bound.
func (w *WM) Sigma() int { return w.sigma }

// Levels returns the number of bit-vector levels (= ceil(lg sigma)).
func (w *WM) Levels() int { return len(w.levels) }

// Access returns the i-th symbol.
func (w *WM) Access(i int) uint32 {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("wavelet: Access(%d) out of range [0,%d)", i, w.n))
	}
	var sym uint32
	for l, bv := range w.levels {
		sym <<= 1
		bit, r1 := bv.AccessRank1(i)
		if bit {
			sym |= 1
			i = w.zeros[l] + r1
		} else {
			i -= r1
		}
	}
	return sym
}

// AccessRank returns the i-th symbol and its rank up to i: the access
// descent yields start(c) + rank, and a second zl-guided walk recovers
// start(c).
func (w *WM) AccessRank(i int) (uint32, int) {
	if i < 0 || i >= w.n {
		panic(fmt.Sprintf("wavelet: AccessRank(%d) out of range [0,%d)", i, w.n))
	}
	var sym uint32
	for l, bv := range w.levels {
		sym <<= 1
		bit, r1 := bv.AccessRank1(i)
		if bit {
			sym |= 1
			i = w.zeros[l] + r1
		} else {
			i -= r1
		}
	}
	// i is now start(sym) + rank; subtract the bucket start.
	s := 0
	for l, bv := range w.levels {
		shift := uint(len(w.levels) - 1 - l)
		if sym>>shift&1 == 1 {
			s = w.zeros[l] + bv.Rank1(s)
		} else {
			s = bv.Rank0(s)
		}
	}
	return sym, i - s
}

// Rank returns the number of occurrences of c in [0, i).
func (w *WM) Rank(c uint32, i int) int {
	if i < 0 || i > w.n {
		panic(fmt.Sprintf("wavelet: Rank(%d) out of range [0,%d]", i, w.n))
	}
	if int(c) >= w.sigma {
		return 0
	}
	s, e := 0, i
	for l, bv := range w.levels {
		shift := uint(len(w.levels) - 1 - l)
		if c>>shift&1 == 1 {
			s = w.zeros[l] + bv.Rank1(s)
			e = w.zeros[l] + bv.Rank1(e)
		} else {
			s = bv.Rank0(s)
			e = bv.Rank0(e)
		}
	}
	return e - s
}

// SizeBits returns the footprint: level bit vectors plus the zeros
// table.
func (w *WM) SizeBits() int {
	total := 64 * len(w.zeros)
	for _, bv := range w.levels {
		total += bv.SizeBits()
	}
	return total
}
