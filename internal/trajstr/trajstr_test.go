package trajstr

import (
	"errors"
	"testing"
)

func paperCorpus(t *testing.T) *Corpus {
	t.Helper()
	// The paper's four example NCTs (Fig. 1a) with edge IDs
	// A..F -> 10..15 (arbitrary external IDs).
	trajs := [][]uint32{
		{10, 11, 14, 15}, // T1 = A B E F
		{10, 11, 12},     // T2 = A B C
		{11, 12},         // T3 = B C
		{10, 13},         // T4 = A D
	}
	c, err := New(trajs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPaperTrajectoryString(t *testing.T) {
	c := paperCorpus(t)
	// Expected: T = FEBA $ CBA $ CB $ DA $ #  (Eq. 1) with
	// A..F -> symbols 2..7.
	want := []uint32{7, 6, 3, 2, 1, 4, 3, 2, 1, 4, 3, 1, 5, 2, 1, 0}
	if len(c.Text) != len(want) {
		t.Fatalf("|T| = %d, want %d", len(c.Text), len(want))
	}
	for i := range want {
		if c.Text[i] != want[i] {
			t.Fatalf("T[%d] = %d, want %d", i, c.Text[i], want[i])
		}
	}
	if c.Sigma != 8 {
		t.Fatalf("Sigma = %d, want 8", c.Sigma)
	}
	if c.NumEdges() != 6 || c.NumTrajectories() != 4 {
		t.Fatalf("NumEdges=%d NumTrajectories=%d", c.NumEdges(), c.NumTrajectories())
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	trajs := [][]uint32{
		{100, 200, 300},
		{300, 100},
		{42},
	}
	c, err := New(trajs)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range trajs {
		got := c.Trajectory(k)
		if len(got) != len(want) {
			t.Fatalf("trajectory %d: length %d, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trajectory %d: edge %d = %d, want %d", k, i, got[i], want[i])
			}
		}
		if c.TrajectoryLen(k) != len(want) {
			t.Fatalf("TrajectoryLen(%d) = %d", k, c.TrajectoryLen(k))
		}
	}
}

func TestEncodeAndReversedPattern(t *testing.T) {
	c := paperCorpus(t)
	enc, ok := c.EncodePath([]uint32{10, 11}) // A B
	if !ok || enc[0] != 2 || enc[1] != 3 {
		t.Fatalf("EncodePath = %v, %v", enc, ok)
	}
	rev, ok := c.ReversedPattern([]uint32{10, 11}) // -> B A
	if !ok || rev[0] != 3 || rev[1] != 2 {
		t.Fatalf("ReversedPattern = %v, %v", rev, ok)
	}
	if _, ok := c.EncodePath([]uint32{10, 999}); ok {
		t.Fatal("unknown edge should fail to encode")
	}
}

func TestDocAt(t *testing.T) {
	c := paperCorpus(t)
	// Position 0 is 'F', the last edge of trajectory 0 (offset 3).
	if doc, off, ok := c.DocAt(0); !ok || doc != 0 || off != 3 {
		t.Fatalf("DocAt(0) = %d,%d,%v", doc, off, ok)
	}
	// Position 3 is 'A', the first edge of trajectory 0.
	if doc, off, ok := c.DocAt(3); !ok || doc != 0 || off != 0 {
		t.Fatalf("DocAt(3) = %d,%d,%v", doc, off, ok)
	}
	// Position 4 is '$'.
	if _, _, ok := c.DocAt(4); ok {
		t.Fatal("DocAt on separator should report !ok")
	}
	// Position 13 is 'A' of trajectory 3 (D A reversed = A? no: T4 = AD,
	// reversed DA, so position 12 is D (offset 1), 13 is A (offset 0)).
	if doc, off, ok := c.DocAt(12); !ok || doc != 3 || off != 1 {
		t.Fatalf("DocAt(12) = %d,%d,%v", doc, off, ok)
	}
	if doc, off, ok := c.DocAt(13); !ok || doc != 3 || off != 0 {
		t.Fatalf("DocAt(13) = %d,%d,%v", doc, off, ok)
	}
	// Final '#'.
	if _, _, ok := c.DocAt(len(c.Text) - 1); ok {
		t.Fatal("DocAt on terminator should report !ok")
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("want ErrEmptyCorpus, got %v", err)
	}
	if _, err := New([][]uint32{{1}, {}}); !errors.Is(err, ErrEmptyTrajectory) {
		t.Fatalf("want ErrEmptyTrajectory, got %v", err)
	}
}

func TestEdgeSymbolMapping(t *testing.T) {
	c := paperCorpus(t)
	for _, e := range []uint32{10, 11, 12, 13, 14, 15} {
		s, ok := c.SymbolFor(e)
		if !ok {
			t.Fatalf("edge %d not mapped", e)
		}
		if c.EdgeFor(s) != e {
			t.Fatalf("EdgeFor(SymbolFor(%d)) = %d", e, c.EdgeFor(s))
		}
	}
	if _, ok := c.SymbolFor(9999); ok {
		t.Fatal("unknown edge should not map")
	}
}

func TestEdgeForPanicsOnSentinel(t *testing.T) {
	c := paperCorpus(t)
	defer func() {
		if recover() == nil {
			t.Fatal("EdgeFor(SymSep) should panic")
		}
	}()
	c.EdgeFor(SymSep)
}
