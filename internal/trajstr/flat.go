package trajstr

import (
	"fmt"

	"cinct/internal/flat"
)

// Flat (v3) form of the corpus metadata: the edge mapping and document
// tables, without the text (the index is a self-index; Build drops
// Text once the succinct structures exist). The symbol map is the only
// piece rebuilt at view time — O(edges) — since Go maps cannot be
// memory-mapped; everything else is wrapped in place.

// AppendFlatMeta writes the corpus metadata (not the text).
func (c *Corpus) AppendFlatMeta(w *flat.Writer) {
	w.U64(uint64(c.Sigma))
	w.U32s(c.symToEdge)
	w.I32s(c.docStarts)
	w.I32s(c.docLens)
}

// ViewFlatMeta wraps flat corpus metadata. The document tables must
// describe a contiguous text layout — the invariant DocAtByTables'
// binary search and SubPath's offset arithmetic rely on.
func ViewFlatMeta(c *flat.Cursor) (*Corpus, error) {
	sigma := c.Int()
	symToEdge := c.U32s()
	docStarts := c.I32s()
	docLens := c.I32s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if sigma != len(symToEdge)+int(FirstEdgeSym) || len(docStarts) != len(docLens) ||
		len(docStarts) == 0 {
		return nil, fmt.Errorf("%w: corpus tables (sigma=%d edges=%d docs=%d/%d)",
			flat.ErrCorrupt, sigma, len(symToEdge), len(docStarts), len(docLens))
	}
	for i := 1; i < len(symToEdge); i++ {
		if symToEdge[i] <= symToEdge[i-1] {
			return nil, fmt.Errorf("%w: edge IDs not strictly increasing at %d", flat.ErrCorrupt, i)
		}
	}
	// Only the table's endpoints are validated — a full contiguity
	// sweep would make opening a mapped container O(trajectories).
	// An interior row that lies about its start or length misdirects
	// the binary search or the extraction range; both end in a
	// bounds-checked panic the query layer contains, or a wrong
	// answer, never a wild read.
	last := len(docStarts) - 1
	if docStarts[0] != 0 || docLens[last] < 1 || docStarts[last] < int32(last) {
		return nil, fmt.Errorf("%w: document table endpoints (start0=%d lastStart=%d lastLen=%d)",
			flat.ErrCorrupt, docStarts[0], docStarts[last], docLens[last])
	}
	corpus := &Corpus{
		Sigma:     sigma,
		edgeToSym: make(map[uint32]uint32, len(symToEdge)),
		symToEdge: symToEdge,
		docStarts: docStarts,
		docLens:   docLens,
	}
	for i, e := range symToEdge {
		corpus.edgeToSym[e] = uint32(i) + FirstEdgeSym
	}
	return corpus, nil
}
