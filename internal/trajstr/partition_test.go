package trajstr

import (
	"math/rand"
	"testing"
)

func TestPartitionBoundsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		k := 1 + rng.Intn(12)
		lengths := make([]int, n)
		for i := range lengths {
			lengths[i] = 1 + rng.Intn(100)
		}
		b := PartitionBounds(lengths, k)
		if b[0] != 0 || b[len(b)-1] != n {
			t.Fatalf("n=%d k=%d: bounds %v do not cover [0,%d)", n, k, b, n)
		}
		want := k
		if want > n {
			want = n
		}
		if len(b)-1 != want {
			t.Fatalf("n=%d k=%d: %d chunks, want %d (%v)", n, k, len(b)-1, want, b)
		}
		for s := 0; s+1 < len(b); s++ {
			if b[s] >= b[s+1] {
				t.Fatalf("n=%d k=%d: empty or reversed chunk in %v", n, k, b)
			}
		}
	}
}

func TestPartitionBoundsBalance(t *testing.T) {
	// Uniform lengths must split near-evenly.
	lengths := make([]int, 1000)
	for i := range lengths {
		lengths[i] = 10
	}
	b := PartitionBounds(lengths, 4)
	for s := 0; s+1 < len(b); s++ {
		if sz := b[s+1] - b[s]; sz < 240 || sz > 260 {
			t.Fatalf("chunk %d holds %d docs, want ~250 (%v)", s, sz, b)
		}
	}
	// One huge document must not starve the other chunks.
	lengths = []int{1, 1, 100000, 1, 1, 1}
	b = PartitionBounds(lengths, 3)
	if len(b) != 4 {
		t.Fatalf("bounds %v", b)
	}
}

func TestPartitionCorpusRoundTrip(t *testing.T) {
	trajs := [][]uint32{
		{10, 20, 30},
		{20, 40},
		{50, 10, 20, 60},
		{70},
		{10, 70},
	}
	bounds := PartitionBounds([]int{3, 2, 4, 1, 2}, 2)
	shards, err := PartitionCorpus(trajs, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("%d shards", len(shards))
	}
	g := 0
	for s, c := range shards {
		for k := 0; k < c.NumTrajectories(); k++ {
			got := c.Trajectory(k)
			want := trajs[g]
			if len(got) != len(want) {
				t.Fatalf("shard %d traj %d: %v vs %v", s, k, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shard %d traj %d: %v vs %v", s, k, got, want)
				}
			}
			g++
		}
	}
	if g != len(trajs) {
		t.Fatalf("shards cover %d trajectories, want %d", g, len(trajs))
	}
	// 10, 20, 30, 40 in shard 0; 10, 20, 50, 60, 70 in shard 1; 7 distinct.
	if n := CountDistinctEdges(shards); n != 7 {
		t.Fatalf("CountDistinctEdges = %d, want 7", n)
	}
	if n := CountDistinctEdges(shards[:1]); n != shards[0].NumEdges() {
		t.Fatalf("single-shard distinct edges = %d, want %d", n, shards[0].NumEdges())
	}
}

func TestPartitionCorpusEmptyTrajectory(t *testing.T) {
	trajs := [][]uint32{{1}, {}}
	if _, err := PartitionCorpus(trajs, []int{0, 1, 2}); err == nil {
		t.Fatal("empty trajectory in a shard must error")
	}
}
