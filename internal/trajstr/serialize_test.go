package trajstr

import (
	"bytes"
	"errors"
	"testing"
)

func TestMetaRoundTrip(t *testing.T) {
	trajs := [][]uint32{
		{100, 200, 300},
		{300, 100},
		{4000000000}, // near the uint32 ceiling
	}
	c, err := New(trajs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.SaveMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("SaveMeta reported %d, wrote %d", n, buf.Len())
	}
	loaded, err := LoadMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sigma != c.Sigma || loaded.NumEdges() != c.NumEdges() ||
		loaded.NumTrajectories() != c.NumTrajectories() {
		t.Fatal("header mismatch after reload")
	}
	// Edge mapping survives.
	for _, e := range []uint32{100, 200, 300, 4000000000} {
		s1, ok1 := c.SymbolFor(e)
		s2, ok2 := loaded.SymbolFor(e)
		if ok1 != ok2 || s1 != s2 {
			t.Fatalf("edge %d maps differently after reload", e)
		}
		if loaded.EdgeFor(s2) != e {
			t.Fatalf("EdgeFor broken for %d", e)
		}
	}
	// Document tables survive (text-free DocAt).
	for pos := 0; pos < c.Len(); pos++ {
		d1, o1, ok1 := c.DocAtByTables(pos)
		d2, o2, ok2 := loaded.DocAtByTables(pos)
		if d1 != d2 || o1 != o2 || ok1 != ok2 {
			t.Fatalf("DocAtByTables(%d) differs after reload", pos)
		}
	}
	// The loaded corpus has no text.
	if loaded.Text != nil {
		t.Fatal("LoadMeta should not materialize text")
	}
}

func TestLoadMetaRejectsGarbage(t *testing.T) {
	if _, err := LoadMeta(bytes.NewReader([]byte("bogus"))); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("want ErrBadMeta, got %v", err)
	}
	c, _ := New([][]uint32{{1, 2}})
	var buf bytes.Buffer
	if _, err := c.SaveMeta(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, len(full) - 1} {
		if _, err := LoadMeta(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDocAtByTablesMatchesDocAt(t *testing.T) {
	trajs := [][]uint32{{5, 6, 7}, {8}, {9, 10}}
	c, err := New(trajs)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < c.Len(); pos++ {
		d1, o1, ok1 := c.DocAt(pos)
		d2, o2, ok2 := c.DocAtByTables(pos)
		if d1 != d2 || o1 != o2 || ok1 != ok2 {
			t.Fatalf("position %d: DocAt=(%d,%d,%v) tables=(%d,%d,%v)",
				pos, d1, o1, ok1, d2, o2, ok2)
		}
	}
}
