// Package trajstr implements the trajectory string of Definition 2: a
// corpus of network-constrained trajectories is concatenated as
// T = rev(T₁) $ rev(T₂) $ … rev(T_N) $ #, with '#' the unique smallest
// terminator and '$' the document separator. It owns the mapping
// between external road-segment (edge) IDs and the dense internal
// alphabet, and the mapping from text positions back to trajectory IDs
// and offsets (used by locate).
package trajstr

import (
	"errors"
	"fmt"
	"sort"
)

// Internal alphabet layout. Road edges occupy [FirstEdgeSym, Sigma).
const (
	SymHash      uint32 = 0 // '#', end of the trajectory string
	SymSep       uint32 = 1 // '$', trajectory boundary
	FirstEdgeSym uint32 = 2
)

// Corpus is an encoded trajectory corpus.
type Corpus struct {
	// Text is the trajectory string T over the dense alphabet.
	Text []uint32
	// Sigma is the alphabet size (distinct edges + 2 sentinels).
	Sigma int

	edgeToSym map[uint32]uint32
	symToEdge []uint32 // symToEdge[sym-FirstEdgeSym] = external edge ID
	docStarts []int32  // text position of each reversed trajectory's first symbol
	docLens   []int32
}

// ErrEmptyTrajectory is returned when a trajectory has no edges.
var ErrEmptyTrajectory = errors.New("trajstr: empty trajectory")

// ErrEmptyCorpus is returned when no trajectories are supplied.
var ErrEmptyCorpus = errors.New("trajstr: empty corpus")

// New encodes the corpus. Edge IDs are mapped to dense symbols in
// increasing ID order (the paper notes any lexicographic order works).
func New(trajs [][]uint32) (*Corpus, error) {
	if len(trajs) == 0 {
		return nil, ErrEmptyCorpus
	}
	total := 0
	edgeSet := make(map[uint32]struct{}, 1024)
	for i, tr := range trajs {
		if len(tr) == 0 {
			return nil, fmt.Errorf("%w (index %d)", ErrEmptyTrajectory, i)
		}
		total += len(tr)
		for _, e := range tr {
			edgeSet[e] = struct{}{}
		}
	}
	edges := make([]uint32, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })

	c := &Corpus{
		Sigma:     len(edges) + int(FirstEdgeSym),
		edgeToSym: make(map[uint32]uint32, len(edges)),
		symToEdge: edges,
		docStarts: make([]int32, len(trajs)),
		docLens:   make([]int32, len(trajs)),
	}
	for i, e := range edges {
		c.edgeToSym[e] = uint32(i) + FirstEdgeSym
	}

	c.Text = make([]uint32, 0, total+len(trajs)+1)
	for k, tr := range trajs {
		c.docStarts[k] = int32(len(c.Text))
		c.docLens[k] = int32(len(tr))
		for i := len(tr) - 1; i >= 0; i-- { // reversed per Def. 2
			c.Text = append(c.Text, c.edgeToSym[tr[i]])
		}
		c.Text = append(c.Text, SymSep)
	}
	c.Text = append(c.Text, SymHash)
	return c, nil
}

// NumTrajectories returns the number of documents in the corpus.
func (c *Corpus) NumTrajectories() int { return len(c.docStarts) }

// Len returns the trajectory string length |T|.
func (c *Corpus) Len() int { return len(c.Text) }

// TextLenFromTables returns |T| as implied by the document tables
// alone (equal to Len when the text is present): all documents with
// their '$' separators, plus the trailing '#'. Loaders use it to
// cross-check corpus metadata against the self-index it was paired
// with.
func (c *Corpus) TextLenFromTables() int {
	k := len(c.docStarts) - 1
	if k < 0 {
		return 1
	}
	return int(c.docStarts[k]) + int(c.docLens[k]) + 2
}

// NumEdges returns the number of distinct road edges.
func (c *Corpus) NumEdges() int { return len(c.symToEdge) }

// SymbolFor maps an external edge ID to its dense symbol.
func (c *Corpus) SymbolFor(edge uint32) (uint32, bool) {
	s, ok := c.edgeToSym[edge]
	return s, ok
}

// EdgeFor maps a dense symbol back to the external edge ID. It panics
// on sentinel or out-of-range symbols.
func (c *Corpus) EdgeFor(sym uint32) uint32 {
	if sym < FirstEdgeSym || int(sym) >= c.Sigma {
		panic(fmt.Sprintf("trajstr: symbol %d is not an edge", sym))
	}
	return c.symToEdge[sym-FirstEdgeSym]
}

// EncodePath maps a path of external edge IDs (in travel order) to
// internal symbols. ok is false if any edge never occurs in the corpus
// — in which case no trajectory can match it.
func (c *Corpus) EncodePath(path []uint32) ([]uint32, bool) {
	out := make([]uint32, len(path))
	for i, e := range path {
		s, ok := c.edgeToSym[e]
		if !ok {
			return nil, false
		}
		out[i] = s
	}
	return out, true
}

// ReversedPattern encodes path and reverses it: the trajectory string
// stores reversed trajectories, so a travel-order path e₁…e_m occurs in
// T as e_m…e₁.
func (c *Corpus) ReversedPattern(path []uint32) ([]uint32, bool) {
	enc, ok := c.EncodePath(path)
	if !ok {
		return nil, false
	}
	for i, j := 0, len(enc)-1; i < j; i, j = i+1, j-1 {
		enc[i], enc[j] = enc[j], enc[i]
	}
	return enc, ok
}

// Trajectory reconstructs trajectory k in travel order, as external
// edge IDs.
func (c *Corpus) Trajectory(k int) []uint32 {
	if k < 0 || k >= len(c.docStarts) {
		panic(fmt.Sprintf("trajstr: trajectory %d out of range [0,%d)", k, len(c.docStarts)))
	}
	start, ln := int(c.docStarts[k]), int(c.docLens[k])
	out := make([]uint32, ln)
	for i := 0; i < ln; i++ {
		// Text holds the reversal; undo it.
		out[ln-1-i] = c.EdgeFor(c.Text[start+i])
	}
	return out
}

// TrajectoryLen returns the number of edges of trajectory k.
func (c *Corpus) TrajectoryLen(k int) int { return int(c.docLens[k]) }

// DocAt maps a text position to (trajectory ID, offset in travel
// order). ok is false when pos points at a '$' or '#' sentinel. It
// requires the corpus text to be present.
func (c *Corpus) DocAt(pos int) (doc, offset int, ok bool) {
	if pos < 0 || pos >= len(c.Text) {
		panic(fmt.Sprintf("trajstr: position %d out of range [0,%d)", pos, len(c.Text)))
	}
	if c.Text[pos] < FirstEdgeSym {
		return 0, 0, false
	}
	return c.DocAtByTables(pos)
}

// DocAtByTables is DocAt computed from the document tables alone — it
// works after the text has been dropped (the index is a self-index).
// Sentinel positions are detected as positions past a document's edges.
func (c *Corpus) DocAtByTables(pos int) (doc, offset int, ok bool) {
	if pos < 0 {
		panic(fmt.Sprintf("trajstr: position %d negative", pos))
	}
	// Manual binary search for the last start <= pos: this runs once
	// per located occurrence and sort.Search's func value would be the
	// only allocation on that path.
	lo, hi := 0, len(c.docStarts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(c.docStarts[mid]) > pos {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	k := lo - 1
	if k < 0 {
		return 0, 0, false
	}
	revOff := pos - int(c.docStarts[k])
	if revOff >= int(c.docLens[k]) {
		return 0, 0, false // '$' after document k, or the final '#'
	}
	return k, int(c.docLens[k]) - 1 - revOff, true
}

// DocStart returns the text position of trajectory k's first (reversed)
// symbol.
func (c *Corpus) DocStart(k int) int { return int(c.docStarts[k]) }
