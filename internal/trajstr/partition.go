package trajstr

import "fmt"

// Corpus partitioning for sharded indexes: a corpus of N trajectories
// is split into K contiguous chunks balanced by total edge count, and
// each chunk becomes an independent Corpus (its own edge map, text and
// document tables). Contiguity keeps shard routing trivial — global
// trajectory ID g lives in the shard whose [bounds[s], bounds[s+1])
// range contains g, at local ID g - bounds[s].

// PartitionBounds splits n = len(lengths) documents into at most k
// contiguous non-empty chunks, balancing the summed lengths greedily:
// chunk s ends at the first document whose cumulative length reaches
// (s+1)/k of the total. The result is a bounds slice B with B[0] = 0
// and B[len(B)-1] = n; chunk s is [B[s], B[s+1]). Fewer than k chunks
// are returned when n < k. It panics if k < 1 or n == 0.
func PartitionBounds(lengths []int, k int) []int {
	n := len(lengths)
	if k < 1 {
		panic(fmt.Sprintf("trajstr: partition into %d chunks", k))
	}
	if n == 0 {
		panic("trajstr: partition of empty corpus")
	}
	if k > n {
		k = n
	}
	total := int64(0)
	for _, l := range lengths {
		total += int64(l)
	}
	bounds := make([]int, 1, k+1)
	cum := int64(0)
	next := 0 // first document of the current chunk
	for s := 0; s < k-1; s++ {
		// Cut after the document that crosses the s+1-th k-quantile of
		// the cumulative length, but always advance at least one
		// document and leave at least one per remaining chunk.
		target := total * int64(s+1) / int64(k)
		end := next
		for end < n-(k-1-s) && (end == next || cum < target) {
			cum += int64(lengths[end])
			end++
		}
		bounds = append(bounds, end)
		next = end
	}
	bounds = append(bounds, n)
	return bounds
}

// PartitionCorpus encodes each chunk of trajs described by bounds (as
// returned by PartitionBounds) as an independent Corpus. Each shard
// corpus carries its own dense edge alphabet and document tables over
// its local trajectory IDs.
func PartitionCorpus(trajs [][]uint32, bounds []int) ([]*Corpus, error) {
	shards := make([]*Corpus, len(bounds)-1)
	for s := range shards {
		c, err := New(trajs[bounds[s]:bounds[s+1]])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		shards[s] = c
	}
	return shards, nil
}

// EdgeIDs returns the distinct external edge IDs of the corpus in
// ascending order. The returned slice is owned by the Corpus and must
// not be modified.
func (c *Corpus) EdgeIDs() []uint32 { return c.symToEdge }

// CountDistinctEdges returns the number of distinct external edge IDs
// across all the given corpora (shards index disjoint trajectory
// ranges, but their edge sets overlap wherever vehicles share roads).
func CountDistinctEdges(shards []*Corpus) int {
	if len(shards) == 1 {
		return shards[0].NumEdges()
	}
	seen := make(map[uint32]struct{})
	for _, c := range shards {
		for _, e := range c.symToEdge {
			seen[e] = struct{}{}
		}
	}
	return len(seen)
}
