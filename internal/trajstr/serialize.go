package trajstr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Corpus metadata serialization: the edge map and document tables are
// enough to interpret a core index (the text itself is recoverable from
// the self-index and is not stored).

const metaMagic = "CNCTmeta"

// ErrBadMeta reports a malformed corpus metadata stream.
var ErrBadMeta = errors.New("trajstr: bad corpus metadata")

// SaveMeta writes the corpus metadata (not the text) to w.
func (c *Corpus) SaveMeta(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := bw.Write(buf[:k])
		return err
	}
	if _, err := bw.WriteString(metaMagic); err != nil {
		return n, err
	}
	n += int64(len(metaMagic))
	if err := write(uint64(c.Sigma)); err != nil {
		return n, err
	}
	if err := write(uint64(len(c.symToEdge))); err != nil {
		return n, err
	}
	// Edge IDs ascend (dense mapping is built sorted): delta-code them.
	prev := uint64(0)
	for _, e := range c.symToEdge {
		if err := write(uint64(e) - prev); err != nil {
			return n, err
		}
		prev = uint64(e)
	}
	if err := write(uint64(len(c.docStarts))); err != nil {
		return n, err
	}
	for _, l := range c.docLens {
		if err := write(uint64(l)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadMeta reads corpus metadata written by SaveMeta. The returned
// corpus has no Text; only table-based operations work.
func LoadMeta(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(metaMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	if string(got) != metaMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	sigma, err := read()
	if err != nil {
		return nil, fmt.Errorf("%w: sigma", ErrBadMeta)
	}
	nEdges, err := read()
	if err != nil || nEdges+uint64(FirstEdgeSym) != sigma {
		return nil, fmt.Errorf("%w: edge count %d vs sigma %d", ErrBadMeta, nEdges, sigma)
	}
	c := &Corpus{
		Sigma:     int(sigma),
		edgeToSym: make(map[uint32]uint32, nEdges),
		symToEdge: make([]uint32, nEdges),
	}
	prev := uint64(0)
	for i := range c.symToEdge {
		d, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: edge table", ErrBadMeta)
		}
		prev += d
		if prev > 1<<32-1 {
			return nil, fmt.Errorf("%w: edge ID overflow", ErrBadMeta)
		}
		c.symToEdge[i] = uint32(prev)
		c.edgeToSym[uint32(prev)] = uint32(i) + FirstEdgeSym
	}
	nDocs, err := read()
	if err != nil {
		return nil, fmt.Errorf("%w: doc count", ErrBadMeta)
	}
	c.docStarts = make([]int32, nDocs)
	c.docLens = make([]int32, nDocs)
	pos := int32(0)
	for k := range c.docLens {
		l, err := read()
		if err != nil || l == 0 || l > 1<<31-1 {
			return nil, fmt.Errorf("%w: doc length", ErrBadMeta)
		}
		c.docStarts[k] = pos
		c.docLens[k] = int32(l)
		pos += int32(l) + 1 // the '$'
	}
	return c, nil
}
