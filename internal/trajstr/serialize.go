package trajstr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Corpus metadata serialization: the edge map and document tables are
// enough to interpret a core index (the text itself is recoverable from
// the self-index and is not stored).

const metaMagic = "CNCTmeta"

// ErrBadMeta reports a malformed corpus metadata stream.
var ErrBadMeta = errors.New("trajstr: bad corpus metadata")

// SaveMeta writes the corpus metadata (not the text) to w.
func (c *Corpus) SaveMeta(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v uint64) error {
		var buf [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(buf[:], v)
		n += int64(k)
		_, err := bw.Write(buf[:k])
		return err
	}
	if _, err := bw.WriteString(metaMagic); err != nil {
		return n, err
	}
	n += int64(len(metaMagic))
	if err := write(uint64(c.Sigma)); err != nil {
		return n, err
	}
	if err := write(uint64(len(c.symToEdge))); err != nil {
		return n, err
	}
	// Edge IDs ascend (dense mapping is built sorted): delta-code them.
	prev := uint64(0)
	for _, e := range c.symToEdge {
		if err := write(uint64(e) - prev); err != nil {
			return n, err
		}
		prev = uint64(e)
	}
	if err := write(uint64(len(c.docStarts))); err != nil {
		return n, err
	}
	for _, l := range c.docLens {
		if err := write(uint64(l)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// LoadMeta reads corpus metadata written by SaveMeta. The returned
// corpus has no Text; only table-based operations work. Declared
// counts never translate into upfront allocations — the tables grow
// with the entries actually parsed, so arbitrary bytes cannot make
// LoadMeta allocate beyond a small multiple of the input size.
func LoadMeta(r io.Reader) (*Corpus, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(metaMagic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	if string(got) != metaMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadMeta)
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	sigma, err := read()
	if err != nil || sigma > 1<<32 {
		return nil, fmt.Errorf("%w: sigma", ErrBadMeta)
	}
	nEdges, err := read()
	if err != nil || nEdges+uint64(FirstEdgeSym) != sigma {
		return nil, fmt.Errorf("%w: edge count %d vs sigma %d", ErrBadMeta, nEdges, sigma)
	}
	capHint := func(declared uint64) int {
		if declared < 1<<16 {
			return int(declared)
		}
		return 1 << 16
	}
	c := &Corpus{
		Sigma:     int(sigma),
		edgeToSym: make(map[uint32]uint32, capHint(nEdges)),
		symToEdge: make([]uint32, 0, capHint(nEdges)),
	}
	prev := uint64(0)
	for i := uint64(0); i < nEdges; i++ {
		d, err := read()
		if err != nil {
			return nil, fmt.Errorf("%w: edge table", ErrBadMeta)
		}
		prev += d
		if prev > 1<<32-1 {
			return nil, fmt.Errorf("%w: edge ID overflow", ErrBadMeta)
		}
		c.symToEdge = append(c.symToEdge, uint32(prev))
		c.edgeToSym[uint32(prev)] = uint32(i) + FirstEdgeSym
	}
	nDocs, err := read()
	if err != nil {
		return nil, fmt.Errorf("%w: doc count", ErrBadMeta)
	}
	c.docStarts = make([]int32, 0, capHint(nDocs))
	c.docLens = make([]int32, 0, capHint(nDocs))
	pos := int64(0)
	for k := uint64(0); k < nDocs; k++ {
		l, err := read()
		if err != nil || l == 0 || l > 1<<31-1 {
			return nil, fmt.Errorf("%w: doc length", ErrBadMeta)
		}
		c.docStarts = append(c.docStarts, int32(pos))
		c.docLens = append(c.docLens, int32(l))
		pos += int64(l) + 1 // the '$'
		if pos > 1<<31-1 {
			return nil, fmt.Errorf("%w: text length overflows int32", ErrBadMeta)
		}
	}
	return c, nil
}
