package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWALReplay drives the segment decoder — the code path every
// engine start runs over bytes a crash may have mangled — with
// arbitrary input. Contract: never panic, never allocate beyond the
// input's implied size, report a good-offset that splits the input
// into a decodable prefix and a rejected tail, and decode losslessly
// (re-encoding the batches reproduces the accepted prefix).
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte(segMagic))
	f.Add([]byte("not a segment"))
	valid := validSegment(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := bytes.Clone(valid)
	flipped[len(segMagic)+5] ^= 0x01 // bit-flipped CRC field
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, good, err := readSegment(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0,%d]", good, len(data))
		}
		if err == nil && good != int64(len(data)) {
			t.Fatalf("clean decode stopped at %d of %d bytes", good, len(data))
		}
		if good == 0 && len(batches) > 0 {
			t.Fatalf("%d batches decoded from a rejected segment", len(batches))
		}
		if good == 0 {
			return
		}
		// Semantic round trip: whatever decoded must re-encode and
		// decode back to itself (byte equality is too strong — the
		// varint reader tolerates non-minimal encodings).
		out := []byte(segMagic)
		for _, b := range batches {
			rec, rerr := encodeRecord(b)
			if rerr != nil {
				t.Fatalf("decoded batch does not re-encode: %v", rerr)
			}
			out = append(out, rec...)
		}
		again, _, rerr := readSegment(out)
		if rerr != nil {
			t.Fatalf("re-encoded segment does not decode: %v", rerr)
		}
		if !reflect.DeepEqual(again, batches) {
			t.Fatalf("round trip drifted: %+v vs %+v", again, batches)
		}
	})
}

// validSegment builds an in-memory segment holding both a spatial and
// a temporal batch.
func validSegment(f *testing.F) []byte {
	f.Helper()
	out := []byte(segMagic)
	for _, b := range []Batch{
		{FirstID: 0, Trajs: [][]uint32{{1, 2, 3}, {4}}},
		{FirstID: 2, Trajs: [][]uint32{{7, 8}}, Times: [][]int64{{100, 90}}},
	} {
		rec, err := encodeRecord(b)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, rec...)
	}
	return out
}

// TestReadSegmentRejectsOversizedLength pins the allocation guard: a
// frame declaring a payload over the cap must fail without the decoder
// trying to honor it.
func TestReadSegmentRejectsOversizedLength(t *testing.T) {
	data := append([]byte(segMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0)
	if _, good, err := readSegment(data); err == nil || good != int64(len(segMagic)) {
		t.Fatalf("oversized length: good=%d err=%v", good, err)
	}
}

// TestDecodeBatchRoundTrip pins the payload coding against a
// representative batch, including negative and non-monotone
// timestamps (zig-zag deltas).
func TestDecodeBatchRoundTrip(t *testing.T) {
	want := Batch{
		FirstID: 41,
		Trajs:   [][]uint32{{1, 1 << 30, 3}, {2}},
		Times:   [][]int64{{-5, 1 << 40, 7}, {0}},
	}
	rec, err := encodeRecord(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBatch(rec[frameBytes:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}
