// Package wal is the ingestion write-ahead log: appended trajectory
// batches are framed, CRC'd and written to segment files before the
// engine acknowledges them, so rows still in the in-memory delta
// survive a crash. On open the log replays every intact record (the
// engine feeds them back into the delta, skipping rows the persisted
// index already holds), truncates a torn tail, and resumes appending;
// segments whose rows have been sealed into a persisted index file
// are retired.
//
// Durability model: every Append issues the write(2) before
// returning, so an acknowledged row survives process death (SIGKILL)
// unconditionally; fsync is batched — by byte threshold and by timer —
// so an acknowledged row survives power loss once the batch window
// has elapsed. This is the standard group-commit trade: per-append
// fsync costs milliseconds, the window costs at most SyncInterval of
// acknowledged-but-unsynced data on whole-machine failure. An fsync
// failure is fatal for the log: the kernel may have dropped the dirty
// pages the failed sync covered, so a later "successful" fsync proves
// nothing about them (the post-fsyncgate lesson) — the log refuses
// every further append until it is reopened and replayed.
//
// The decoder is fortress-grade in the repo's fuzz style: length- and
// CRC-checked frames, allocations bounded by input size, typed
// ErrCorrupt on any malformed byte, never a panic.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var (
	// ErrCorrupt reports a segment whose bytes do not decode to the
	// declared record shape. A corrupt non-final segment fails Open
	// (the log's history has a hole); a corrupt tail on the final
	// segment is truncated instead — indistinguishable from a torn
	// write, which is exactly what truncation exists for.
	ErrCorrupt = errors.New("wal: corrupt segment")
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// segMagic opens every segment file.
const segMagic = "CNCTwal1"

// recBatch is the only record type; the byte leaves room for future
// kinds (e.g. tombstones) without a format break.
const recBatch = 1

// maxRecordBytes bounds one record's payload — matching the serving
// layer's 64 MiB ingest-body cap — so a corrupt length field cannot
// drive a giant allocation.
const maxRecordBytes = 64 << 20

// frameBytes is the fixed frame header: u32 payload length, u32
// CRC-32C (Castagnoli) of the payload.
const frameBytes = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log. The zero value is a valid, conservative
// default.
type Options struct {
	// SyncInterval is the group-commit window: an fsync is scheduled
	// this long after the first unsynced append. 0 means 50ms;
	// negative disables the timer (fsync on byte threshold and Close
	// only).
	SyncInterval time.Duration
	// SyncBytes forces an immediate fsync once this many unsynced
	// bytes accumulate. 0 means 1 MiB; negative fsyncs every append.
	SyncBytes int
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size, bounding the unit of retirement. 0 means
	// 64 MiB.
	SegmentBytes int64
}

func (o Options) syncInterval() time.Duration {
	if o.SyncInterval == 0 {
		return 50 * time.Millisecond
	}
	return o.SyncInterval
}

func (o Options) syncBytes() int {
	if o.SyncBytes == 0 {
		return 1 << 20
	}
	return o.SyncBytes
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 64 << 20
	}
	return o.SegmentBytes
}

// Batch is one logged append: the rows of one Writer.Append or
// AppendBatch call, with the global ID of the first row. Times is nil
// for spatial batches and row-aligned for temporal ones.
type Batch struct {
	FirstID int
	Trajs   [][]uint32
	Times   [][]int64
}

// lastID returns the global ID of the batch's final row.
func (b Batch) lastID() int { return b.FirstID + len(b.Trajs) - 1 }

// segment is one on-disk file of the log.
type segment struct {
	seq    uint64
	path   string
	size   int64
	lastID int // highest global ID logged in the segment; -1 when empty
}

var segName = regexp.MustCompile(`^wal-(\d{8,16})\.seg$`)

// Log is an append-only, CRC-framed record log over numbered segment
// files in one directory. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         *os.File
	active    segment
	retired   []segment // older, closed segments (oldest first)
	pending   []Batch   // replayed on Open, consumed once via Pending
	truncated int64     // torn-tail bytes dropped during Open
	unsynced  int
	timer     *time.Timer
	syncErr   error // permanently sticky: a failed fsync poisons the log until reopen
	closed    bool

	// fsyncs counts successful segment fsyncs over the log's lifetime —
	// the group-commit rate the serving layer's metrics expose.
	fsyncs atomic.Int64
}

// Open creates or recovers the log in dir (created if missing).
// Every intact record across all segments is decoded into the
// replay set returned by Pending; a torn or corrupt tail on the final
// segment is truncated (see Truncated), while corruption in an
// earlier segment fails with ErrCorrupt. Appending resumes at the end
// of the final segment.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, f := range files {
		m := segName.FindStringSubmatch(f.Name())
		if f.IsDir() || m == nil {
			continue
		}
		var seq uint64
		fmt.Sscanf(m[1], "%d", &seq) //nolint:errcheck // digits-only by construction
		segs = append(segs, segment{seq: seq, path: filepath.Join(dir, f.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	l := &Log{dir: dir, opts: opts}
	for i := range segs {
		final := i == len(segs)-1
		batches, good, rerr := readSegmentFile(segs[i].path)
		if rerr != nil && !final {
			return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(segs[i].path), rerr)
		}
		segs[i].size = good
		segs[i].lastID = -1
		if n := len(batches); n > 0 {
			segs[i].lastID = batches[n-1].lastID()
		}
		l.pending = append(l.pending, batches...)
		if final && rerr != nil {
			// Torn tail: drop everything past the last whole record so
			// the segment is clean for appending. Records are framed,
			// so a partial write can only ever damage the tail.
			fi, serr := os.Stat(segs[i].path)
			if serr != nil {
				return nil, serr
			}
			if good == 0 && fi.Size() >= int64(len(segMagic)) {
				// The magic bytes are all present but wrong. A torn
				// write can only shorten the magic, never rewrite it, so
				// this is corruption — truncating would silently discard
				// every acknowledged record in the segment, and because
				// the loss is at the log's tail no replay gap check
				// could ever catch it. Refuse instead.
				return nil, fmt.Errorf("%w: %s: bad segment magic", ErrCorrupt, filepath.Base(segs[i].path))
			}
			l.truncated = fi.Size() - good
			if terr := os.Truncate(segs[i].path, good); terr != nil {
				return nil, terr
			}
		}
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	l.retired = segs[:len(segs)-1]
	l.active = segs[len(segs)-1]
	f, err := os.OpenFile(l.active.path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(l.active.size, 0); err != nil {
		f.Close()
		return nil, err
	}
	if l.active.size < int64(len(segMagic)) {
		// The final segment's own magic was torn (truncated to zero
		// above): re-stamp it so the segment is valid going forward.
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return nil, err
		}
		l.active.size = int64(len(segMagic))
	}
	l.f = f
	return l, nil
}

// openSegment creates segment seq and makes it active. Caller holds
// mu (or owns the log exclusively, as in Open). The directory entry is
// fsynced so a record synced into the new segment cannot be lost to a
// power failure that forgets the file itself.
func (l *Log) openSegment(seq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.seg", seq))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.active = segment{seq: seq, path: path, size: int64(len(segMagic)), lastID: -1}
	return nil
}

// syncDir fsyncs a directory, making renames and newly created files
// under it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Pending returns the batches replayed during Open, oldest first, and
// releases them; later calls return nil. The engine feeds these into
// the delta (skipping rows the persisted index already holds) before
// serving.
func (l *Log) Pending() []Batch {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.pending
	l.pending = nil
	return p
}

// Truncated returns the number of torn-tail bytes dropped during
// Open — zero after a clean shutdown; worth logging when not.
func (l *Log) Truncated() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Append logs one batch. The record's write(2) completes before
// Append returns — an acknowledged batch survives process death —
// and fsync follows per the configured batching policy. A sync
// failure is fatal: it surfaces on this and every later call until
// the log is reopened (and its surviving records replayed).
func (l *Log) Append(b Batch) error {
	if len(b.Trajs) == 0 {
		return nil
	}
	if b.Times != nil && len(b.Times) != len(b.Trajs) {
		return fmt.Errorf("wal: %d timestamp columns for %d trajectories", len(b.Times), len(b.Trajs))
	}
	rec, err := encodeRecord(b)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.active.size > int64(len(segMagic)) && l.active.size+int64(len(rec)) > l.opts.segmentBytes() {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	l.active.size += int64(len(rec))
	if id := b.lastID(); id > l.active.lastID {
		l.active.lastID = id
	}
	l.unsynced += len(rec)
	if sb := l.opts.syncBytes(); sb < 0 || l.unsynced >= sb {
		return l.syncLocked()
	}
	if l.timer == nil && l.opts.syncInterval() > 0 {
		l.timer = time.AfterFunc(l.opts.syncInterval(), l.timedSync)
	}
	return nil
}

// rotateLocked closes the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.retired = append(l.retired, l.active)
	return l.openSegment(l.active.seq + 1)
}

// timedSync is the group-commit timer callback.
func (l *Log) timedSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timer = nil
	if l.closed || l.unsynced == 0 {
		return
	}
	l.syncLocked() //nolint:errcheck // sticky in syncErr; surfaced on the next call
}

// syncLocked fsyncs the active segment. Caller holds mu. A failure is
// permanently sticky: the kernel may have evicted the dirty pages the
// failed fsync covered, so a later fsync succeeding would not make the
// records written before the failure durable — the log must not
// resume claiming durability it may have lost.
func (l *Log) syncLocked() error {
	if l.syncErr != nil {
		return l.syncErr
	}
	if err := l.f.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	l.fsyncs.Add(1)
	l.unsynced = 0
	return nil
}

// Sync forces an immediate fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Retire deletes every segment whose rows all have global IDs below
// sealedRows — they are durable in the persisted index file, so the
// log no longer needs them. The active segment rotates first if it
// too is fully covered, keeping steady-state disk usage at one mostly
// empty segment once ingestion pauses and seals catch up.
func (l *Log) Retire(sealedRows int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active.lastID >= 0 && l.active.lastID < sealedRows {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	var kept []segment
	var firstErr error
	for _, s := range l.retired {
		if firstErr == nil && s.lastID < sealedRows {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				firstErr = err
				kept = append(kept, s)
			}
			continue
		}
		kept = append(kept, s)
	}
	l.retired = kept
	return firstErr
}

// Stats reports the log's current footprint: live segment files and
// their total bytes.
func (l *Log) Stats() (segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segments = len(l.retired) + 1
	bytes = l.active.size
	for _, s := range l.retired {
		bytes += s.size
	}
	return segments, bytes
}

// Fsyncs returns the number of successful segment fsyncs the log has
// performed since Open.
func (l *Log) Fsyncs() int64 { return l.fsyncs.Load() }

// Close syncs and closes the log. Further calls fail with ErrClosed.
// A sticky sync failure is reported instead of attempting (and
// possibly "succeeding" at) a final fsync that proves nothing.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	err := l.syncErr
	if err == nil {
		if err = l.f.Sync(); err == nil {
			l.fsyncs.Add(1)
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeRecord frames one batch: u32 payload length, u32 CRC-32C,
// then the payload (type byte, firstID, row count, a times flag, and
// per row the edge IDs as uvarints plus — for temporal batches — the
// timestamps as zig-zag deltas, the same coding the tempo store
// uses).
func encodeRecord(b Batch) ([]byte, error) {
	if b.FirstID < 0 {
		return nil, fmt.Errorf("wal: negative first ID %d", b.FirstID)
	}
	payload := make([]byte, frameBytes, frameBytes+64*len(b.Trajs))
	payload = append(payload, recBatch)
	payload = binary.AppendUvarint(payload, uint64(b.FirstID))
	payload = binary.AppendUvarint(payload, uint64(len(b.Trajs)))
	hasTimes := byte(0)
	if b.Times != nil {
		hasTimes = 1
	}
	payload = append(payload, hasTimes)
	for k, tr := range b.Trajs {
		payload = binary.AppendUvarint(payload, uint64(len(tr)))
		for _, e := range tr {
			payload = binary.AppendUvarint(payload, uint64(e))
		}
		if hasTimes == 1 {
			col := b.Times[k]
			if len(col) != len(tr) {
				return nil, fmt.Errorf("wal: row %d has %d edges but %d timestamps", k, len(tr), len(col))
			}
			prev := int64(0)
			for _, t := range col {
				payload = binary.AppendVarint(payload, t-prev)
				prev = t
			}
		}
	}
	body := payload[frameBytes:]
	if len(body) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte cap", len(body), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.Checksum(body, crcTable))
	return payload, nil
}

// readSegmentFile reads and decodes one segment, returning its intact
// batches and the byte offset just past the last whole record. A
// non-nil error means the bytes from good onward are damaged (torn or
// corrupt); the batches before that point are still returned.
func readSegmentFile(path string) (batches []Batch, good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return readSegment(data)
}

// readSegment is the segment decoder (and the fuzz target): it never
// panics, allocates proportionally to its input, and reports the
// offset of the first damaged byte alongside everything decoded
// before it.
func readSegment(data []byte) (batches []Batch, good int64, err error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	pos := int64(len(segMagic))
	for int64(len(data))-pos >= frameBytes {
		n := int64(binary.LittleEndian.Uint32(data[pos : pos+4]))
		sum := binary.LittleEndian.Uint32(data[pos+4 : pos+8])
		if n > maxRecordBytes {
			return batches, pos, fmt.Errorf("%w: record length %d exceeds cap", ErrCorrupt, n)
		}
		if pos+frameBytes+n > int64(len(data)) {
			return batches, pos, fmt.Errorf("%w: truncated record", ErrCorrupt)
		}
		body := data[pos+frameBytes : pos+frameBytes+n]
		if crc32.Checksum(body, crcTable) != sum {
			return batches, pos, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
		}
		b, derr := decodeBatch(body)
		if derr != nil {
			return batches, pos, derr
		}
		batches = append(batches, b)
		pos += frameBytes + n
	}
	if pos != int64(len(data)) {
		return batches, pos, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	return batches, pos, nil
}

// decodeBatch decodes one CRC-validated payload. Row and edge counts
// are cross-checked against the remaining input before each
// allocation (every row and every edge costs at least one payload
// byte), so a hostile header cannot oversize a make.
func decodeBatch(body []byte) (Batch, error) {
	corrupt := func(what string) (Batch, error) {
		return Batch{}, fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
	if len(body) == 0 || body[0] != recBatch {
		return corrupt("unknown record type")
	}
	p := body[1:]
	firstID, n := binary.Uvarint(p)
	if n <= 0 || firstID > 1<<40 {
		return corrupt("bad first ID")
	}
	p = p[n:]
	rows, n := binary.Uvarint(p)
	if n <= 0 {
		return corrupt("bad row count")
	}
	p = p[n:]
	if len(p) == 0 {
		return corrupt("missing times flag")
	}
	hasTimes := p[0]
	if hasTimes > 1 {
		return corrupt("bad times flag")
	}
	p = p[1:]
	if rows > uint64(len(p)) {
		return corrupt("row count exceeds payload")
	}
	b := Batch{FirstID: int(firstID), Trajs: make([][]uint32, rows)}
	if hasTimes == 1 {
		b.Times = make([][]int64, rows)
	}
	for k := range b.Trajs {
		edges, n := binary.Uvarint(p)
		if n <= 0 {
			return corrupt("bad edge count")
		}
		p = p[n:]
		if edges == 0 || edges > uint64(len(p)) {
			return corrupt("edge count exceeds payload")
		}
		tr := make([]uint32, edges)
		for i := range tr {
			e, n := binary.Uvarint(p)
			if n <= 0 || e > 1<<32-1 {
				return corrupt("bad edge ID")
			}
			tr[i] = uint32(e)
			p = p[n:]
		}
		b.Trajs[k] = tr
		if hasTimes == 1 {
			col := make([]int64, edges)
			prev := int64(0)
			for i := range col {
				d, n := binary.Varint(p)
				if n <= 0 {
					return corrupt("bad timestamp delta")
				}
				prev += d
				col[i] = prev
				p = p[n:]
			}
			b.Times[k] = col
		}
	}
	if len(p) != 0 {
		return corrupt("trailing payload bytes")
	}
	return b, nil
}
