package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testBatches is a small mixed workload: consecutive IDs, spatial
// rows only (Times nil) or temporal rows, like the engine produces.
func testBatches(temporal bool) []Batch {
	bs := []Batch{
		{FirstID: 0, Trajs: [][]uint32{{1, 2, 3}, {4, 5}}},
		{FirstID: 2, Trajs: [][]uint32{{9}}},
		{FirstID: 3, Trajs: [][]uint32{{2, 3, 4, 5}, {1}, {7, 8}}},
	}
	if !temporal {
		return bs
	}
	for i := range bs {
		bs[i].Times = make([][]int64, len(bs[i].Trajs))
		for k, tr := range bs[i].Trajs {
			col := make([]int64, len(tr))
			for j := range col {
				col[j] = int64(1000*i + 100*k + 7*j - 50)
			}
			bs[i].Times[k] = col
		}
	}
	return bs
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendAll(t *testing.T, l *Log, bs []Batch) {
	t.Helper()
	for _, b := range bs {
		if err := l.Append(b); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func segPath(t *testing.T, dir string, i int) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || i >= len(names) {
		t.Fatalf("segment %d not found (have %v, err %v)", i, names, err)
	}
	return names[i]
}

func TestWALRoundTrip(t *testing.T) {
	for _, temporal := range []bool{false, true} {
		dir := t.TempDir()
		want := testBatches(temporal)
		l := mustOpen(t, dir, Options{})
		if p := l.Pending(); len(p) != 0 {
			t.Fatalf("fresh log has %d pending batches", len(p))
		}
		appendAll(t, l, want)
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2 := mustOpen(t, dir, Options{})
		got := l2.Pending()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("temporal=%v: replay mismatch\ngot  %+v\nwant %+v", temporal, got, want)
		}
		if tr := l2.Truncated(); tr != 0 {
			t.Fatalf("clean reopen truncated %d bytes", tr)
		}
		if p := l2.Pending(); p != nil {
			t.Fatalf("second Pending returned %d batches", len(p))
		}
		l2.Close()
	}
}

func TestWALAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	bs := testBatches(false)
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, bs[:2])
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := len(l.Pending()); got != 2 {
		t.Fatalf("replayed %d batches, want 2", got)
	}
	appendAll(t, l, bs[2:])
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := l.Pending(); !reflect.DeepEqual(got, bs) {
		t.Fatalf("replay mismatch after reopen-append: %+v", got)
	}
	l.Close()
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	bs := testBatches(true)
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, bs)
	l.Close()
	path := segPath(t, dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the final record: the first two batches
	// must survive, the torn third must be dropped and truncated away.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	got := l.Pending()
	if !reflect.DeepEqual(got, bs[:2]) {
		t.Fatalf("torn-tail replay: got %d batches, want the intact 2", len(got))
	}
	if l.Truncated() == 0 {
		t.Fatal("torn tail not reported")
	}
	// The log must be clean for appending again.
	appendAll(t, l, []Batch{{FirstID: 3, Trajs: [][]uint32{{42}}, Times: [][]int64{{5}}}})
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := l.Pending(); len(got) != 3 || got[2].Trajs[0][0] != 42 {
		t.Fatalf("post-truncation append lost: %+v", got)
	}
	l.Close()
}

func TestWALBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	bs := testBatches(false)
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, bs)
	l.Close()
	path := segPath(t, dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the file (inside record 2's
	// bytes): everything from that record on is dropped as a torn
	// tail, everything before survives.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	got := l.Pending()
	if len(got) >= len(bs) {
		t.Fatalf("corrupt record not dropped: %d batches", len(got))
	}
	for i, b := range got {
		if !reflect.DeepEqual(b, bs[i]) {
			t.Fatalf("surviving batch %d corrupted: %+v", i, b)
		}
	}
	if l.Truncated() == 0 {
		t.Fatal("corruption not reported via Truncated")
	}
	l.Close()
}

// TestWALBadMagicFailsOpen pins the corrupt-vs-torn distinction: a
// final segment whose magic bytes are all present but wrong is
// corruption — truncating it would silently discard every acknowledged
// record in the segment, invisibly to any replay gap check, so Open
// must refuse instead.
func TestWALBadMagicFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendAll(t, l, testBatches(false))
	l.Close()
	path := segPath(t, dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over bad-magic final segment: %v, want ErrCorrupt", err)
	}
}

// TestWALTornMagicTruncates is the companion case: a file shorter than
// the magic can only be a torn creation write (the magic is written
// first, before any record), so Open truncates and re-stamps it.
func TestWALTornMagicTruncates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	l.Close()
	path := segPath(t, dir, 0)
	if err := os.Truncate(path, 3); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	if got := len(l.Pending()); got != 0 {
		t.Fatalf("torn-magic segment replayed %d batches", got)
	}
	if l.Truncated() == 0 {
		t.Fatal("torn magic not reported via Truncated")
	}
	bs := testBatches(false)
	appendAll(t, l, bs)
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := l.Pending(); !reflect.DeepEqual(got, bs) {
		t.Fatalf("re-stamped segment replay mismatch: %+v", got)
	}
	l.Close()
}

// TestWALSyncFailureIsFatal pins the post-fsyncgate contract: once a
// sync has failed, records written before it may have been evicted
// from the page cache, so the log must refuse to resume — no later
// sync attempt may clear the sticky error.
func TestWALSyncFailureIsFatal(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{SyncInterval: -1})
	appendAll(t, l, testBatches(false)[:1]) // unsynced record in the active segment
	boom := errors.New("boom")
	l.mu.Lock()
	l.syncErr = boom
	l.mu.Unlock()
	if err := l.Append(testBatches(false)[0]); !errors.Is(err, boom) {
		t.Fatalf("Append after failed sync: %v, want the sticky error", err)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync after failed sync: %v, want the sticky error", err)
	}
	if err := l.Retire(100); !errors.Is(err, boom) {
		t.Fatalf("Retire rotation after failed sync: %v, want the sticky error", err)
	}
	if err := l.Append(testBatches(false)[0]); !errors.Is(err, boom) {
		t.Fatalf("sticky error cleared by a later sync attempt: %v", err)
	}
	if err := l.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close after failed sync: %v, want the sticky error", err)
	}
}

func TestWALCorruptEarlierSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every batch rotates to a new file.
	l := mustOpen(t, dir, Options{SegmentBytes: 16})
	appendAll(t, l, testBatches(false))
	l.Close()
	first := segPath(t, dir, 0)
	data, _ := os.ReadFile(first)
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt earlier segment: %v, want ErrCorrupt", err)
	}
}

func TestWALRotationAndRetire(t *testing.T) {
	dir := t.TempDir()
	bs := testBatches(false)
	l := mustOpen(t, dir, Options{SegmentBytes: 16})
	appendAll(t, l, bs)
	segs, bytes := l.Stats()
	if segs < 3 {
		t.Fatalf("expected one segment per batch, got %d (%d bytes)", segs, bytes)
	}
	// Rows 0..2 sealed: the first two segments (IDs 0-1 and 2) are
	// retirable; the active third (IDs 3-5) is not.
	if err := l.Retire(3); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if segs, _ = l.Stats(); segs != 1 {
		t.Fatalf("after Retire(3): %d segments, want the active one", segs)
	}
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := l.Pending(); !reflect.DeepEqual(got, bs[2:]) {
		t.Fatalf("post-retire replay: %+v, want the unsealed tail", got)
	}
	// Everything sealed: the remaining rows retire too, leaving one
	// empty active segment.
	if err := l.Retire(6); err != nil {
		t.Fatalf("Retire(6): %v", err)
	}
	if segs, _ := l.Stats(); segs != 1 {
		t.Fatalf("after full retire: %d segments, want 1", segs)
	}
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := l.Pending(); len(got) != 0 {
		t.Fatalf("fully retired log replayed %d batches", len(got))
	}
	l.Close()
}

func TestWALSyncEveryAppend(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SyncBytes: -1})
	appendAll(t, l, testBatches(false))
	l.Close()
	l = mustOpen(t, dir, Options{})
	if got := len(l.Pending()); got != 3 {
		t.Fatalf("replayed %d batches, want 3", got)
	}
	l.Close()
}

func TestWALRejectsBadBatches(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.Append(Batch{FirstID: -1, Trajs: [][]uint32{{1}}}); err == nil {
		t.Fatal("negative FirstID accepted")
	}
	if err := l.Append(Batch{FirstID: 0, Trajs: [][]uint32{{1}}, Times: [][]int64{{1}, {2}}}); err == nil {
		t.Fatal("misaligned Times accepted")
	}
	if err := l.Append(Batch{FirstID: 0, Trajs: [][]uint32{{1, 2}}, Times: [][]int64{{1}}}); err == nil {
		t.Fatal("short timestamp column accepted")
	}
	if err := l.Append(Batch{}); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

func TestWALClosed(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := l.Append(testBatches(false)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close: %v", err)
	}
	if err := l.Retire(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Retire after Close: %v", err)
	}
}
